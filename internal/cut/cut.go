package cut

import (
	"fmt"
	"math/bits"

	"mighash/internal/mig"
)

// MaxK is the largest supported cut width; 6 covers both the 4-input
// rewriting cuts and the 6-input LUT mapping cuts.
const MaxK = 6

// Cut is a set of at most MaxK leaves, sorted ascending. Sig is a 64-bit
// Bloom-style signature for fast subset tests.
//
// TT is the function of the cut root over the leaves — leaf i is variable
// i — stored expanded to 5 variables (unused upper variables are
// don't-cares), so it equals mig.ConeTT(root, leaves).Expand(5).Bits. It
// is computed incrementally during enumeration from the child cuts' truth
// tables and is only populated when enumerating with K <= 5; wider
// enumerations (LUT mapping) leave it zero. For cuts of at most four
// leaves the low 16 bits are exactly the 4-variable table (expansion
// duplicates the halves), which is what the K = 4 rewriting path reads.
type Cut struct {
	Sig uint64
	TT  uint32
	N   uint8
	L   [MaxK]mig.ID
}

// Leaves returns the leaf IDs of the cut in ascending order. The slice
// aliases the cut's storage.
func (c *Cut) Leaves() []mig.ID { return c.L[:c.N] }

// String renders the cut as {id id ...}.
func (c *Cut) String() string {
	s := "{"
	for i := uint8(0); i < c.N; i++ {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprint(c.L[i])
	}
	return s + "}"
}

func sigOf(id mig.ID) uint64 { return 1 << (uint(id) & 63) }

// proj5[i] is the truth table of variable i over 5 variables, the 32-bit
// analogue of tt.Var(5, i).
var proj5 = [5]uint32{0xAAAAAAAA, 0xCCCCCCCC, 0xF0F0F0F0, 0xFF00FF00, 0xFFFF0000}

// ttVar0 is the truth table of a single-leaf cut: variable 0 expanded to
// 5 variables.
const ttVar0 = 0xAAAAAAAA

// swapTT exchanges variables i < j of a 5-variable truth table; the
// 32-bit counterpart of tt.SwapVars.
func swapTT(bits uint32, i, j int) uint32 {
	pi, pj := proj5[i], proj5[j]
	sh := uint(1)<<uint(j) - uint(1)<<uint(i)
	keep := bits & (pi&pj | ^pi&^pj)
	up := (bits & pi &^ pj) << sh
	down := (bits & pj &^ pi) >> sh
	return keep | up | down
}

// stretchTT re-expresses the truth table of child cut c over the leaf
// positions of the merged cut d (c.L ⊆ d.L, both sorted). Because both
// leaf lists are ascending, variable i of c moves to a position p_i >= i
// with p_0 < p_1 < ..., so — walking from the highest variable down —
// each move is a swap with a position currently holding a don't-care
// variable, which in the expanded-to-5 representation is exact.
func stretchTT(c, d *Cut) uint32 {
	bits := c.TT
	j := int(d.N)
	for i := int(c.N) - 1; i >= 0; i-- {
		for j--; d.L[j] != c.L[i]; j-- {
		}
		if j != i {
			bits = swapTT(bits, i, j)
		}
	}
	return bits
}

// mergedTT computes the truth table of a gate over the leaves of the
// merged cut out: each child cut's function is stretched onto out's leaf
// positions, complemented per the fanin edge, and combined by majority.
func mergedTT(f [3]mig.Lit, a, b, c, out *Cut) uint32 {
	ta := stretchTT(a, out)
	if f[0].Comp() {
		ta = ^ta
	}
	tb := stretchTT(b, out)
	if f[1].Comp() {
		tb = ^tb
	}
	tc := stretchTT(c, out)
	if f[2].Comp() {
		tc = ^tc
	}
	return ta&tb | ta&tc | tb&tc
}

// subsetOf reports whether c ⊆ d.
func (c *Cut) subsetOf(d *Cut) bool {
	if c.N > d.N || c.Sig&^d.Sig != 0 {
		return false
	}
	i, j := uint8(0), uint8(0)
	for i < c.N {
		for j < d.N && d.L[j] < c.L[i] {
			j++
		}
		if j >= d.N || d.L[j] != c.L[i] {
			return false
		}
		i++
		j++
	}
	return true
}

// merge3 computes the union of three sorted cuts, failing when it exceeds k.
func merge3(a, b, c *Cut, k int) (Cut, bool) {
	// Signature prefilter: every leaf contributes one bit, so more set
	// bits than k means more than k distinct leaves. Collisions only
	// under-count, so this never rejects a feasible merge, but it throws
	// out the bulk of the |sa|·|sb|·|sc| infeasible combinations for the
	// cost of one popcount instead of a three-way merge walk.
	if bits.OnesCount64(a.Sig|b.Sig|c.Sig) > k {
		return Cut{}, false
	}
	var out Cut
	i, j, l := uint8(0), uint8(0), uint8(0)
	for i < a.N || j < b.N || l < c.N {
		best := mig.ID(^uint32(0))
		if i < a.N && a.L[i] < best {
			best = a.L[i]
		}
		if j < b.N && b.L[j] < best {
			best = b.L[j]
		}
		if l < c.N && c.L[l] < best {
			best = c.L[l]
		}
		if int(out.N) >= k {
			return Cut{}, false
		}
		out.L[out.N] = best
		out.N++
		if i < a.N && a.L[i] == best {
			i++
		}
		if j < b.N && b.L[j] == best {
			j++
		}
		if l < c.N && c.L[l] == best {
			l++
		}
	}
	out.Sig = a.Sig | b.Sig | c.Sig
	return out, true
}

// Options configures the enumeration.
type Options struct {
	K       int // maximum leaves per cut (2..MaxK); default 4
	MaxCuts int // cuts kept per node, excluding the trivial cut; default 24
}

func (o Options) withDefaults() Options {
	if o.K == 0 {
		o.K = 4
	}
	if o.K < 2 || o.K > MaxK {
		panic(fmt.Sprintf("cut: unsupported cut width %d", o.K))
	}
	if o.MaxCuts == 0 {
		o.MaxCuts = 24
	}
	return o
}

// Enumerate computes the cut sets of every node of m. The result is
// indexed by node ID; terminals get their defining cuts and every gate's
// set ends with the trivial cut {g}. With K <= 5 every cut also carries
// its truth table (see Cut.TT).
//
// Enumerate allocates fresh cut sets the caller may retain; the rewrite
// hot path reuses one arena across passes through Workspace.Enumerate.
func Enumerate(m *mig.MIG, opts Options) [][]Cut {
	return new(Workspace).Enumerate(m, opts)
}

// Workspace owns the cut-set arena of repeated enumerations: all cut
// slices of one Enumerate call are carved out of a single backing array
// that is reused by the next call, so steady-state enumeration allocates
// nothing. The sets returned by Workspace.Enumerate alias the arena and
// are invalidated by the next Enumerate on the same Workspace; a
// Workspace must not be used by two goroutines at once.
type Workspace struct {
	sets  [][]Cut
	arena []Cut
}

// NewWorkspace returns an empty enumeration workspace.
func NewWorkspace() *Workspace { return &Workspace{} }

// Enumerate is the arena-backed version of the package-level Enumerate.
func (w *Workspace) Enumerate(m *mig.MIG, opts Options) [][]Cut {
	opts = opts.withDefaults()
	n := m.NumNodes()
	per := opts.MaxCuts + 1 // every node's set is capped at MaxCuts plus the trivial cut
	if need := n * per; cap(w.arena) < need {
		w.arena = make([]Cut, need)
	}
	if cap(w.sets) < n {
		w.sets = make([][]Cut, n)
	}
	sets := w.sets[:n]
	// slot hands out node i's fixed-capacity arena window; appends beyond
	// per would reallocate out of the arena, which the cap in
	// addIrredundant rules out.
	slot := func(i int) []Cut { return w.arena[i*per : i*per : (i+1)*per] }
	withTT := opts.K <= 5
	sets[0] = append(slot(0), Cut{}) // constant node: the empty cut
	for i := 0; i < m.NumPIs(); i++ {
		id := int(m.Input(i).ID())
		c := Cut{Sig: sigOf(mig.ID(id)), N: 1, L: [MaxK]mig.ID{mig.ID(id)}}
		if withTT {
			c.TT = ttVar0
		}
		sets[id] = append(slot(id), c)
	}
	for id := m.NumPIs() + 1; id < n; id++ {
		gid := mig.ID(id)
		f := m.Fanin(gid)
		sets[id] = mergeSets(slot(id), sets[f[0].ID()], sets[f[1].ID()], sets[f[2].ID()], f, gid, opts, withTT)
	}
	return sets
}

// mergeSets computes the saturating union of the three child cut sets with
// irredundancy filtering and capping, then appends the trivial cut. out
// must be empty with capacity for MaxCuts+1 cuts.
func mergeSets(out []Cut, sa, sb, sc []Cut, f [3]mig.Lit, root mig.ID, opts Options, withTT bool) []Cut {
	for ia := range sa {
		for ib := range sb {
			for ic := range sc {
				c, ok := merge3(&sa[ia], &sb[ib], &sc[ic], opts.K)
				if !ok {
					continue
				}
				if withTT {
					c.TT = mergedTT(f, &sa[ia], &sb[ib], &sc[ic], &c)
				}
				out = addIrredundant(out, c, opts.MaxCuts)
			}
		}
	}
	triv := Cut{Sig: sigOf(root), N: 1, L: [MaxK]mig.ID{root}}
	if withTT {
		triv.TT = ttVar0
	}
	out = append(out, triv)
	return out
}

// addIrredundant inserts c into set unless it is dominated by an existing
// cut; cuts dominated by c are removed. The set is capped at maxCuts,
// preferring cuts with fewer leaves.
func addIrredundant(set []Cut, c Cut, maxCuts int) []Cut {
	for i := range set {
		if set[i].subsetOf(&c) {
			return set // dominated: an existing cut is contained in c
		}
	}
	n := 0
	for i := range set {
		if !c.subsetOf(&set[i]) {
			set[n] = set[i]
			n++
		}
	}
	set = set[:n]
	if len(set) < maxCuts {
		// Keep the set ordered by leaf count so capping drops wide cuts
		// last-in first.
		pos := len(set)
		for pos > 0 && set[pos-1].N > c.N {
			pos--
		}
		set = append(set, Cut{})
		copy(set[pos+1:], set[pos:])
		set[pos] = c
		return set
	}
	// Set full: replace the widest cut if c is narrower.
	if set[len(set)-1].N > c.N {
		pos := len(set) - 1
		for pos > 0 && set[pos-1].N > c.N {
			pos--
		}
		copy(set[pos+1:], set[pos:len(set)-1])
		set[pos] = c
	}
	return set
}
