// Package cut implements k-feasible cut enumeration on MIGs (Sec. II-C of
// the paper).
//
// A cut (v, L) of a node v is a set of leaf nodes L such that every path
// from v to a non-terminal passes through a leaf, and every leaf lies on at
// least one such path; paths to the constant node are exempt. Cuts are
// enumerated bottom-up with the saturating union ⊗k over the child cut
// sets, exactly as in the paper:
//
//	cuts_k(0) = {{}}
//	cuts_k(x) = {{x}}
//	cuts_k(g) = cuts_k(g1) ⊗k cuts_k(g2) ⊗k cuts_k(g3)
//
// The number of cuts kept per node is capped priority-cut style (the paper
// uses the same device for the candidate lists of its bottom-up rewriting,
// citing Mishchenko et al.'s priority cuts). The trivial cut {v} is always
// retained.
package cut

import (
	"fmt"

	"mighash/internal/mig"
)

// MaxK is the largest supported cut width; 6 covers both the 4-input
// rewriting cuts and the 6-input LUT mapping cuts.
const MaxK = 6

// Cut is a set of at most MaxK leaves, sorted ascending. Sig is a 64-bit
// Bloom-style signature for fast subset tests.
type Cut struct {
	Sig uint64
	N   uint8
	L   [MaxK]mig.ID
}

// Leaves returns the leaf IDs of the cut in ascending order. The slice
// aliases the cut's storage.
func (c *Cut) Leaves() []mig.ID { return c.L[:c.N] }

// String renders the cut as {id id ...}.
func (c *Cut) String() string {
	s := "{"
	for i := uint8(0); i < c.N; i++ {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprint(c.L[i])
	}
	return s + "}"
}

func sigOf(id mig.ID) uint64 { return 1 << (uint(id) & 63) }

// subsetOf reports whether c ⊆ d.
func (c *Cut) subsetOf(d *Cut) bool {
	if c.N > d.N || c.Sig&^d.Sig != 0 {
		return false
	}
	i, j := uint8(0), uint8(0)
	for i < c.N {
		for j < d.N && d.L[j] < c.L[i] {
			j++
		}
		if j >= d.N || d.L[j] != c.L[i] {
			return false
		}
		i++
		j++
	}
	return true
}

// merge3 computes the union of three sorted cuts, failing when it exceeds k.
func merge3(a, b, c *Cut, k int) (Cut, bool) {
	var out Cut
	i, j, l := uint8(0), uint8(0), uint8(0)
	for i < a.N || j < b.N || l < c.N {
		best := mig.ID(^uint32(0))
		if i < a.N && a.L[i] < best {
			best = a.L[i]
		}
		if j < b.N && b.L[j] < best {
			best = b.L[j]
		}
		if l < c.N && c.L[l] < best {
			best = c.L[l]
		}
		if int(out.N) >= k {
			return Cut{}, false
		}
		out.L[out.N] = best
		out.N++
		if i < a.N && a.L[i] == best {
			i++
		}
		if j < b.N && b.L[j] == best {
			j++
		}
		if l < c.N && c.L[l] == best {
			l++
		}
	}
	out.Sig = a.Sig | b.Sig | c.Sig
	return out, true
}

// Options configures the enumeration.
type Options struct {
	K       int // maximum leaves per cut (2..MaxK); default 4
	MaxCuts int // cuts kept per node, excluding the trivial cut; default 24
}

func (o Options) withDefaults() Options {
	if o.K == 0 {
		o.K = 4
	}
	if o.K < 2 || o.K > MaxK {
		panic(fmt.Sprintf("cut: unsupported cut width %d", o.K))
	}
	if o.MaxCuts == 0 {
		o.MaxCuts = 24
	}
	return o
}

// Enumerate computes the cut sets of every node of m. The result is
// indexed by node ID; terminals get their defining cuts and every gate's
// set ends with the trivial cut {g}.
func Enumerate(m *mig.MIG, opts Options) [][]Cut {
	opts = opts.withDefaults()
	sets := make([][]Cut, m.NumNodes())
	sets[0] = []Cut{{}} // constant node: the empty cut
	for i := 0; i < m.NumPIs(); i++ {
		id := m.Input(i).ID()
		sets[id] = []Cut{{Sig: sigOf(id), N: 1, L: [MaxK]mig.ID{id}}}
	}
	for id := m.NumPIs() + 1; id < m.NumNodes(); id++ {
		gid := mig.ID(id)
		f := m.Fanin(gid)
		sets[id] = mergeSets(sets[f[0].ID()], sets[f[1].ID()], sets[f[2].ID()], gid, opts)
	}
	return sets
}

// mergeSets computes the saturating union of the three child cut sets with
// irredundancy filtering and capping, then appends the trivial cut.
func mergeSets(sa, sb, sc []Cut, root mig.ID, opts Options) []Cut {
	out := make([]Cut, 0, opts.MaxCuts+1)
	for ia := range sa {
		for ib := range sb {
			for ic := range sc {
				c, ok := merge3(&sa[ia], &sb[ib], &sc[ic], opts.K)
				if !ok {
					continue
				}
				out = addIrredundant(out, c, opts.MaxCuts)
			}
		}
	}
	out = append(out, Cut{Sig: sigOf(root), N: 1, L: [MaxK]mig.ID{root}})
	return out
}

// addIrredundant inserts c into set unless it is dominated by an existing
// cut; cuts dominated by c are removed. The set is capped at maxCuts,
// preferring cuts with fewer leaves.
func addIrredundant(set []Cut, c Cut, maxCuts int) []Cut {
	for i := range set {
		if set[i].subsetOf(&c) {
			return set // dominated: an existing cut is contained in c
		}
	}
	n := 0
	for i := range set {
		if !c.subsetOf(&set[i]) {
			set[n] = set[i]
			n++
		}
	}
	set = set[:n]
	if len(set) < maxCuts {
		// Keep the set ordered by leaf count so capping drops wide cuts
		// last-in first.
		pos := len(set)
		for pos > 0 && set[pos-1].N > c.N {
			pos--
		}
		set = append(set, Cut{})
		copy(set[pos+1:], set[pos:])
		set[pos] = c
		return set
	}
	// Set full: replace the widest cut if c is narrower.
	if set[len(set)-1].N > c.N {
		pos := len(set) - 1
		for pos > 0 && set[pos-1].N > c.N {
			pos--
		}
		copy(set[pos+1:], set[pos:len(set)-1])
		set[pos] = c
	}
	return set
}
