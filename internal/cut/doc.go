// Package cut implements k-feasible cut enumeration on MIGs (Sec. II-C of
// the paper).
//
// A cut (v, L) of a node v is a set of leaf nodes L such that every path
// from v to a non-terminal passes through a leaf, and every leaf lies on at
// least one such path; paths to the constant node are exempt. Cuts are
// enumerated bottom-up with the saturating union ⊗k over the child cut
// sets, exactly as in the paper:
//
//	cuts_k(0) = {{}}
//	cuts_k(x) = {{x}}
//	cuts_k(g) = cuts_k(g1) ⊗k cuts_k(g2) ⊗k cuts_k(g3)
//
// The number of cuts kept per node is capped priority-cut style (the paper
// uses the same device for the candidate lists of its bottom-up rewriting,
// citing Mishchenko et al.'s priority cuts). The trivial cut {v} is always
// retained.
//
// Role in the functional-hashing flow: this is the first stage of the hot
// path. When enumerating with K ≤ 5 each cut carries its truth table
// (expanded to 5 variables; the low 16 bits are the 4-variable table for
// narrow cuts), computed incrementally from the child cuts' tables during
// the merge — so the rewriter (internal/rewrite) hands Cut.TT straight to
// NPN canonicalization and no cone is ever re-simulated. A popcount signature
// prefilter rejects infeasible merges before any set operation runs.
//
// Concurrency contract: enumeration only reads the MIG, so any number of
// enumerations over one frozen graph may run in parallel — provided each
// has its own Workspace. A Workspace owns the arena the per-node cut sets
// live in (steady-state enumeration is allocation-free) and is strictly
// single-goroutine; the FFR-parallel rewriter keeps one per worker.
package cut
