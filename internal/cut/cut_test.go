package cut

import (
	"math/rand"
	"testing"

	"mighash/internal/mig"
)

// buildFullAdder returns the Fig. 1 full adder and its sum/carry literals.
func buildFullAdder() (*mig.MIG, mig.Lit, mig.Lit) {
	m := mig.New(3)
	s, c := m.FullAdder(m.Input(0), m.Input(1), m.Input(2))
	m.AddOutput(s)
	m.AddOutput(c)
	return m, s, c
}

func TestTerminalCuts(t *testing.T) {
	m, _, _ := buildFullAdder()
	sets := Enumerate(m, Options{})
	if len(sets[0]) != 1 || sets[0][0].N != 0 {
		t.Errorf("constant node cuts = %v, want the empty cut", sets[0])
	}
	for i := 0; i < 3; i++ {
		id := m.Input(i).ID()
		if len(sets[id]) != 1 || sets[id][0].N != 1 || sets[id][0].L[0] != id {
			t.Errorf("input %d cuts = %v", i, sets[id])
		}
	}
}

func TestFullAdderCuts(t *testing.T) {
	m, s, c := buildFullAdder()
	sets := Enumerate(m, Options{})
	// The carry node 〈abc〉 has exactly the input cut and its trivial cut.
	carry := sets[c.ID()]
	if len(carry) != 2 {
		t.Fatalf("carry has %d cuts: %v", len(carry), carry)
	}
	if carry[0].N != 3 {
		t.Errorf("carry primary cut = %v, want the 3 inputs", carry[0].String())
	}
	if carry[len(carry)-1].N != 1 || carry[len(carry)-1].L[0] != c.ID() {
		t.Error("trivial cut missing or not last")
	}
	// The sum node must have a cut consisting of the three inputs.
	foundInputs := false
	for _, cc := range sets[s.ID()] {
		if cc.N == 3 && cc.L[0] == m.Input(0).ID() && cc.L[1] == m.Input(1).ID() && cc.L[2] == m.Input(2).ID() {
			foundInputs = true
		}
	}
	if !foundInputs {
		t.Errorf("sum node lacks the primary-input cut: %v", sets[s.ID()])
	}
}

// validateCut checks the two cut conditions of Sec. II-C by cone traversal.
func validateCut(m *mig.MIG, root mig.ID, c *Cut) bool {
	inL := map[mig.ID]bool{}
	for _, l := range c.Leaves() {
		inL[l] = true
	}
	used := map[mig.ID]bool{}
	ok := true
	var visit func(id mig.ID)
	seen := map[mig.ID]bool{}
	var rec func(id mig.ID)
	rec = func(id mig.ID) {
		if id == 0 {
			return // paths to the constant are exempt
		}
		if inL[id] {
			used[id] = true
			return
		}
		if !m.IsGate(id) {
			ok = false // reached an input that is not a leaf
			return
		}
		if seen[id] {
			return
		}
		seen[id] = true
		for _, ch := range m.Fanin(id) {
			rec(ch.ID())
		}
	}
	visit = rec
	visit(root)
	if !ok {
		return false
	}
	return len(used) == len(c.Leaves()) // every leaf on some path
}

func TestEnumeratedCutsAreValid(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		m := randomMIG(rng, 5, 25)
		sets := Enumerate(m, Options{K: 4, MaxCuts: 50})
		for id := m.NumPIs() + 1; id < m.NumNodes(); id++ {
			for i := range sets[id] {
				c := &sets[id][i]
				if int(c.N) > 4 {
					t.Fatalf("cut %v exceeds k", c)
				}
				if !validateCut(m, mig.ID(id), c) {
					t.Fatalf("trial %d: invalid cut %v of node %d", trial, c, id)
				}
			}
		}
	}
}

func TestCutFunctionsComposeCorrectly(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		m := randomMIG(rng, 5, 20)
		sets := Enumerate(m, Options{K: 4, MaxCuts: 20})
		// Node functions over the PIs, for cross-checking.
		ref := nodeTTs(m)
		for id := m.NumPIs() + 1; id < m.NumNodes(); id++ {
			for i := range sets[id] {
				c := &sets[id][i]
				local := m.ConeTT(mig.MakeLit(mig.ID(id), false), c.Leaves())
				// Compose: for every PI assignment, the cut function applied
				// to the leaf values must equal the node value.
				for j := uint(0); j < 32; j++ {
					var idx uint
					for li, leaf := range c.Leaves() {
						if ref[leaf].Eval(j) {
							idx |= 1 << uint(li)
						}
					}
					if local.Eval(idx) != ref[id].Eval(j) {
						t.Fatalf("trial %d node %d cut %v: composition mismatch at %d", trial, id, c, j)
					}
				}
			}
		}
	}
}

// TestCutTTMatchesConeTT checks the incrementally-maintained truth table
// of every enumerated cut against the reference cone re-simulation: the
// carried TT must equal ConeTT(root, leaves).Expand(5) exactly, which is
// what the rewrite hot path consumes instead of re-simulating. Both
// rewriting widths are covered; with K = 4 the low 16 bits must equally
// read back as the 4-variable table.
func TestCutTTMatchesConeTT(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 40; trial++ {
		m := randomMIG(rng, 5, 30)
		for _, k := range []int{4, 5} {
			sets := Enumerate(m, Options{K: k, MaxCuts: 30})
			for id := m.NumPIs() + 1; id < m.NumNodes(); id++ {
				for i := range sets[id] {
					c := &sets[id][i]
					want := m.ConeTT(mig.MakeLit(mig.ID(id), false), c.Leaves()).Expand(5)
					if uint64(c.TT) != want.Bits {
						t.Fatalf("trial %d k=%d node %d cut %v: TT %#08x, want %#08x",
							trial, k, id, c, c.TT, want.Bits)
					}
					if int(c.N) <= 4 {
						want4 := m.ConeTT(mig.MakeLit(mig.ID(id), false), c.Leaves()).Expand(4)
						if uint64(uint16(c.TT)) != want4.Bits {
							t.Fatalf("trial %d k=%d node %d cut %v: low TT half %#04x, want %#04x",
								trial, k, id, c, uint16(c.TT), want4.Bits)
						}
					}
				}
			}
		}
	}
}

// TestWorkspaceReuseMatchesFresh re-enumerates different graphs through
// one Workspace and checks the arena-backed sets equal fresh ones.
func TestWorkspaceReuseMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	w := NewWorkspace()
	for trial := 0; trial < 10; trial++ {
		m := randomMIG(rng, 5, 10+rng.Intn(60))
		got := w.Enumerate(m, Options{K: 4, MaxCuts: 12})
		want := Enumerate(m, Options{K: 4, MaxCuts: 12})
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d sets, want %d", trial, len(got), len(want))
		}
		for id := range want {
			if len(got[id]) != len(want[id]) {
				t.Fatalf("trial %d node %d: %d cuts, want %d", trial, id, len(got[id]), len(want[id]))
			}
			for i := range want[id] {
				if got[id][i] != want[id][i] {
					t.Fatalf("trial %d node %d cut %d: %+v != %+v", trial, id, i, got[id][i], want[id][i])
				}
			}
		}
	}
}

// TestWorkspaceEnumerateSteadyStateAllocs pins the arena property: after
// the first enumeration, re-enumerating the same graph allocates nothing.
func TestWorkspaceEnumerateSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	m := randomMIG(rng, 6, 300)
	w := NewWorkspace()
	w.Enumerate(m, Options{K: 4, MaxCuts: 24}) // warm the arena
	allocs := testing.AllocsPerRun(10, func() {
		w.Enumerate(m, Options{K: 4, MaxCuts: 24})
	})
	if allocs > 0 {
		t.Errorf("steady-state enumeration allocates %.1f objects/run, want 0", allocs)
	}
}

func TestIrredundance(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		m := randomMIG(rng, 5, 20)
		sets := Enumerate(m, Options{K: 4, MaxCuts: 50})
		for id := range sets {
			for i := range sets[id] {
				for j := range sets[id] {
					if i == j {
						continue
					}
					if sets[id][i].subsetOf(&sets[id][j]) {
						t.Fatalf("node %d keeps dominated cut %v ⊇ %v",
							id, sets[id][j].String(), sets[id][i].String())
					}
				}
			}
		}
	}
}

func TestMaxCutsCap(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m := randomMIG(rng, 6, 60)
	sets := Enumerate(m, Options{K: 4, MaxCuts: 5})
	for id, s := range sets {
		if len(s) > 6 { // 5 + trivial
			t.Errorf("node %d has %d cuts, cap is 5+trivial", id, len(s))
		}
	}
}

func TestWiderK(t *testing.T) {
	m := mig.New(6)
	x := m.Input(0)
	for i := 1; i < 6; i++ {
		x = m.And(x, m.Input(i))
	}
	m.AddOutput(x)
	sets := Enumerate(m, Options{K: 6, MaxCuts: 100})
	// The 6-input AND chain's top node must have the all-inputs cut.
	found := false
	for _, c := range sets[x.ID()] {
		if int(c.N) == 6 {
			found = true
		}
	}
	if !found {
		t.Error("6-feasible cut over all inputs not found")
	}
}

func TestMerge3Saturation(t *testing.T) {
	a := Cut{N: 3, L: [MaxK]mig.ID{1, 2, 3}}
	b := Cut{N: 3, L: [MaxK]mig.ID{4, 5, 6}}
	c := Cut{N: 0}
	if _, ok := merge3(&a, &b, &c, 4); ok {
		t.Error("merge exceeding k must fail")
	}
	if got, ok := merge3(&a, &a, &c, 4); !ok || got.N != 3 {
		t.Errorf("idempotent merge broken: %v %v", got, ok)
	}
}

func TestSubsetOf(t *testing.T) {
	mk := func(ids ...mig.ID) Cut {
		var c Cut
		for _, id := range ids {
			c.L[c.N] = id
			c.N++
			c.Sig |= sigOf(id)
		}
		return c
	}
	a := mk(1, 3)
	b := mk(1, 2, 3)
	if !a.subsetOf(&b) || b.subsetOf(&a) {
		t.Error("subsetOf broken")
	}
	e := mk()
	if !e.subsetOf(&a) {
		t.Error("empty cut must be subset of everything")
	}
}

// randomMIG builds a random MIG over n inputs with g gates.
func randomMIG(rng *rand.Rand, n, g int) *mig.MIG {
	m := mig.New(n)
	sigs := []mig.Lit{mig.Const0}
	for i := 0; i < n; i++ {
		sigs = append(sigs, m.Input(i))
	}
	for i := 0; i < g; i++ {
		pick := func() mig.Lit {
			return sigs[rng.Intn(len(sigs))].NotIf(rng.Intn(2) == 1)
		}
		sigs = append(sigs, m.Maj(pick(), pick(), pick()))
	}
	m.AddOutput(sigs[len(sigs)-1])
	return m
}

// nodeTTs returns the function of every node over the primary inputs.
func nodeTTs(m *mig.MIG) []ttLite {
	out := make([]ttLite, m.NumNodes())
	n := m.NumPIs()
	for i := 0; i < n; i++ {
		out[m.Input(i).ID()] = varTT(n, i)
	}
	for id := n + 1; id < m.NumNodes(); id++ {
		f := m.Fanin(mig.ID(id))
		a := out[f[0].ID()].notIf(f[0].Comp(), n)
		b := out[f[1].ID()].notIf(f[1].Comp(), n)
		c := out[f[2].ID()].notIf(f[2].Comp(), n)
		out[id] = ttLite(uint64(a)&uint64(b) | uint64(a)&uint64(c) | uint64(b)&uint64(c))
	}
	return out
}

type ttLite uint64

func varTT(n, i int) ttLite {
	var v uint64
	for j := uint(0); j < uint(1)<<uint(n); j++ {
		if (j>>uint(i))&1 == 1 {
			v |= 1 << j
		}
	}
	return ttLite(v)
}

func (t ttLite) notIf(c bool, n int) ttLite {
	if !c {
		return t
	}
	return ttLite(^uint64(t) & (1<<(1<<uint(n)) - 1))
}

func (t ttLite) Eval(j uint) bool { return uint64(t)>>j&1 == 1 }

func BenchmarkEnumerate(b *testing.B) {
	rng := rand.New(rand.NewSource(99))
	m := randomMIG(rng, 6, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Enumerate(m, Options{K: 4, MaxCuts: 12})
	}
}
