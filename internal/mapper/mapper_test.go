package mapper

import (
	"math/rand"
	"testing"

	"mighash/internal/circuits"
	"mighash/internal/mig"
)

func randomMIG(rng *rand.Rand, pis, gates, pos int) *mig.MIG {
	m := mig.New(pis)
	sigs := []mig.Lit{mig.Const0}
	for i := 0; i < pis; i++ {
		sigs = append(sigs, m.Input(i))
	}
	for g := 0; g < gates; g++ {
		pick := func() mig.Lit { return sigs[rng.Intn(len(sigs))].NotIf(rng.Intn(3) == 0) }
		sigs = append(sigs, m.Maj(pick(), pick(), pick()))
	}
	for o := 0; o < pos; o++ {
		m.AddOutput(sigs[len(sigs)-1-rng.Intn(4)].NotIf(rng.Intn(2) == 0))
	}
	return m
}

// TestFullAdderCoverExhaustive maps Fig. 1's full adder for every LUT size
// and compares the cover against the MIG on all 8 assignments.
func TestFullAdderCoverExhaustive(t *testing.T) {
	m := mig.New(3)
	s, c := m.FullAdder(m.Input(0), m.Input(1), m.Input(2))
	m.AddOutput(s)
	m.AddOutput(c)
	for k := 3; k <= 6; k++ {
		r := Map(m, Options{K: k})
		if r.Area == 0 || r.Depth == 0 {
			t.Fatalf("K=%d: degenerate mapping %v", k, r)
		}
		if k >= 3 && r.Area > 3 {
			t.Errorf("K=%d: full adder needs %d LUTs, expected at most 3", k, r.Area)
		}
		for v := 0; v < 8; v++ {
			in := []bool{v&1 == 1, v&2 == 2, v&4 == 4}
			got, want := r.Eval(in), m.EvalBits(in)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("K=%d vector %d output %d: cover %v, MIG %v", k, v, i, got[i], want[i])
				}
			}
		}
	}
}

// TestCoverMatchesCircuitExhaustive verifies covers of random small MIGs
// on all 2^n assignments.
func TestCoverMatchesCircuitExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for round := 0; round < 10; round++ {
		pis := 4 + rng.Intn(3)
		m := randomMIG(rng, pis, 25+rng.Intn(50), 3)
		r := Map(m, Options{K: 3 + rng.Intn(4)})
		for v := 0; v < 1<<uint(pis); v++ {
			in := make([]bool, pis)
			for i := range in {
				in[i] = v>>uint(i)&1 == 1
			}
			got, want := r.Eval(in), m.EvalBits(in)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("round %d vector %d output %d mismatch", round, v, i)
				}
			}
		}
	}
}

// TestMapsArithmeticCircuits maps the generated benchmarks and sanity
// checks the metrics: every cover must be smaller than the gate count and
// much shallower than the gate-level depth.
func TestMapsArithmeticCircuits(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for _, name := range []string{"Adder", "Max", "Sine"} {
		spec, _ := circuits.ByName(name)
		m := spec.Build()
		r := Map(m, Options{})
		if r.Area >= m.Size() {
			t.Errorf("%s: area %d not below gate count %d", name, r.Area, m.Size())
		}
		if r.Depth >= m.Depth() {
			t.Errorf("%s: LUT depth %d not below gate depth %d", name, r.Depth, m.Depth())
		}
		t.Logf("%s: gates=%d depth=%d → %v", name, m.Size(), m.Depth(), r)
		for v := 0; v < 5; v++ {
			in := make([]bool, spec.NumPIs)
			for i := range in {
				in[i] = rng.Intn(2) == 1
			}
			got, want := r.Eval(in), m.EvalBits(in)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s vector %d output %d mismatch", name, v, i)
				}
			}
		}
	}
}

// TestConstantAndPassthroughOutputs covers POs driven by terminals.
func TestConstantAndPassthroughOutputs(t *testing.T) {
	m := mig.New(2)
	m.AddOutput(mig.Const1)
	m.AddOutput(m.Input(1).Not())
	m.AddOutput(m.And(m.Input(0), m.Input(1)))
	r := Map(m, Options{K: 4})
	if r.Area != 1 {
		t.Fatalf("area %d, want 1 (only the AND needs a LUT)", r.Area)
	}
	for v := 0; v < 4; v++ {
		in := []bool{v&1 == 1, v&2 == 2}
		got, want := r.Eval(in), m.EvalBits(in)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("vector %d output %d mismatch", v, i)
			}
		}
	}
}

// TestAreaRecoveryEffect documents that area passes do not blow up area.
func TestAreaRecoveryEffect(t *testing.T) {
	spec, _ := circuits.ByName("Max")
	m := spec.Build()
	delayOnly := Map(m, Options{AreaPasses: 1})
	recovered := Map(m, Options{AreaPasses: 3})
	t.Logf("Max: 1 pass %v, 3 passes %v", delayOnly, recovered)
	if recovered.Area > delayOnly.Area*11/10 {
		t.Errorf("area recovery made things worse: %d → %d", delayOnly.Area, recovered.Area)
	}
}
