// Package mapper implements k-LUT technology mapping with priority cuts
// (Mishchenko et al., ICCAD'07 — reference [11] of the paper). It stands
// in for the ABC standard-cell mapping used in Table IV: a delay-oriented
// first pass chooses the arrival-minimal cut per node, then area-recovery
// passes re-select cuts by area flow among those meeting the required
// times. Area is the number of LUTs in the cover and depth its level
// count; both move with optimization quality exactly like the paper's
// mapped area/depth columns (see ARCHITECTURE.md for the substitution
// note).
//
// Role in the functional-hashing flow: mapping is a downstream consumer —
// it measures how the hashing passes' size/depth gains translate into
// technology terms. It shares the cut enumerator (internal/cut) with the
// rewriter, enumerating up to 6-input cuts (truth tables are not needed,
// so the cut TT fast path is bypassed).
//
// Concurrency contract: Map only reads its input graph and keeps all
// mapping state (arrival times, cut choices, cover) in private per-call
// buffers, so independent calls are safe on any number of goroutines.
package mapper
