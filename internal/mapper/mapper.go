package mapper

import (
	"fmt"
	"math"
	"time"

	"mighash/internal/cut"
	"mighash/internal/mig"
	"mighash/internal/tt"
)

// Options configures the mapper.
type Options struct {
	// K is the LUT input count, 3..6 (default 6; a 2-input LUT cannot
	// cover a majority gate).
	K int
	// MaxCuts caps the priority-cut sets per node (default 12).
	MaxCuts int
	// AreaPasses is the number of area-recovery iterations (default 2).
	AreaPasses int
}

func (o Options) withDefaults() Options {
	if o.K == 0 {
		o.K = 6
	}
	if o.K < 3 || o.K > cut.MaxK {
		panic(fmt.Sprintf("mapper: unsupported LUT size %d", o.K))
	}
	if o.MaxCuts == 0 {
		o.MaxCuts = 12
	}
	if o.AreaPasses == 0 {
		o.AreaPasses = 2
	}
	return o
}

// LUT is one lookup table of the cover: the function of Root expressed
// over the Leaves.
type LUT struct {
	Root   mig.ID
	Leaves []mig.ID
	Func   tt.TT // truth table over the leaves, leaf i ↦ variable i
}

// Result is a mapped netlist.
type Result struct {
	K       int
	LUTs    []LUT // in topological order
	Area    int   // number of LUTs
	Depth   int   // LUT levels on the longest path
	Elapsed time.Duration

	outputs []mig.Lit // original output literals
	numPIs  int
	level   map[mig.ID]int
}

// String renders the headline mapping metrics.
func (r *Result) String() string {
	return fmt.Sprintf("%d-LUT map: area=%d depth=%d", r.K, r.Area, r.Depth)
}

// Map covers m with K-input LUTs.
func Map(m *mig.MIG, opt Options) *Result {
	opt = opt.withDefaults()
	start := time.Now()
	cuts := cut.Enumerate(m, cut.Options{K: opt.K, MaxCuts: opt.MaxCuts})
	fo := m.FanoutCounts()
	n := m.NumNodes()

	arrival := make([]int, n)
	flow := make([]float64, n)
	best := make([]int, n) // chosen cut index per gate
	req := make([]int, n)
	for i := range req {
		req[i] = math.MaxInt32
	}

	isTerm := func(id mig.ID) bool { return !m.IsGate(id) }
	// evaluate computes arrival and area flow of cut c at node id.
	evalCut := func(c *cut.Cut) (int, float64) {
		arr := 0
		fl := 1.0
		for _, l := range c.Leaves() {
			if arrival[l] > arr {
				arr = arrival[l]
			}
			fl += flow[l]
		}
		return arr + 1, fl
	}

	selectCuts := func(useReq bool) {
		for id := m.NumPIs() + 1; id < n; id++ {
			if fo[id] == 0 {
				continue
			}
			v := mig.ID(id)
			bestArr, bestFlow, bestIdx := math.MaxInt32, math.Inf(1), -1
			for ci := range cuts[id] {
				c := &cuts[id][ci]
				if c.N == 1 && c.L[0] == v {
					continue // trivial cut cannot implement its own root
				}
				arr, fl := evalCut(c)
				better := false
				if useReq && req[id] != math.MaxInt32 {
					// Area mode: among cuts meeting the deadline, prefer
					// small flow; infeasible cuts only as a last resort.
					feasOld := bestArr <= req[id]
					feasNew := arr <= req[id]
					switch {
					case feasNew && !feasOld:
						better = true
					case feasNew == feasOld && fl < bestFlow-1e-9:
						better = true
					case feasNew == feasOld && math.Abs(fl-bestFlow) <= 1e-9 && arr < bestArr:
						better = true
					}
				} else {
					better = arr < bestArr || (arr == bestArr && fl < bestFlow-1e-9)
				}
				if better {
					bestArr, bestFlow, bestIdx = arr, fl, ci
				}
			}
			if bestIdx < 0 {
				panic(fmt.Sprintf("mapper: node %d has no non-trivial cut", id))
			}
			arrival[id] = bestArr
			refs := float64(fo[id])
			if refs < 1 {
				refs = 1
			}
			flow[id] = bestFlow / refs
			best[id] = bestIdx
		}
	}

	selectCuts(false)
	for pass := 0; pass < opt.AreaPasses; pass++ {
		// Required times from the current cover depth.
		depth := 0
		for _, o := range m.Outputs() {
			if !isTerm(o.ID()) && arrival[o.ID()] > depth {
				depth = arrival[o.ID()]
			}
		}
		for i := range req {
			req[i] = math.MaxInt32
		}
		for _, o := range m.Outputs() {
			if !isTerm(o.ID()) {
				req[o.ID()] = depth
			}
		}
		for id := n - 1; id > m.NumPIs(); id-- {
			if fo[id] == 0 || req[id] == math.MaxInt32 {
				continue
			}
			c := &cuts[id][best[id]]
			for _, l := range c.Leaves() {
				if r := req[id] - 1; r < req[l] {
					req[l] = r
				}
			}
		}
		selectCuts(true)
	}

	// Extract the cover from the outputs down.
	res := &Result{K: opt.K, outputs: append([]mig.Lit(nil), m.Outputs()...),
		numPIs: m.NumPIs(), level: make(map[mig.ID]int)}
	visited := make([]bool, n)
	var extract func(id mig.ID) int
	extract = func(id mig.ID) int {
		if isTerm(id) {
			return 0
		}
		if visited[id] {
			return res.level[id]
		}
		visited[id] = true
		c := &cuts[id][best[id]]
		leaves := append([]mig.ID(nil), c.Leaves()...)
		lvl := 0
		for _, l := range leaves {
			if d := extract(l); d > lvl {
				lvl = d
			}
		}
		lut := LUT{Root: id, Leaves: leaves, Func: m.ConeTT(mig.MakeLit(id, false), leaves)}
		res.LUTs = append(res.LUTs, lut)
		res.level[id] = lvl + 1
		return lvl + 1
	}
	for _, o := range m.Outputs() {
		if d := extract(o.ID()); d > res.Depth {
			res.Depth = d
		}
	}
	res.Area = len(res.LUTs)
	res.Elapsed = time.Since(start)
	return res
}

// Eval simulates the mapped netlist on one input assignment, returning the
// primary-output values. It lets tests compare the cover against the
// original MIG bit by bit.
func (r *Result) Eval(inputs []bool) []bool {
	if len(inputs) != r.numPIs {
		panic(fmt.Sprintf("mapper: %d inputs, want %d", len(inputs), r.numPIs))
	}
	val := make(map[mig.ID]bool, len(r.LUTs)+r.numPIs+1)
	val[0] = false
	for i := 0; i < r.numPIs; i++ {
		val[mig.ID(i+1)] = inputs[i]
	}
	for _, lut := range r.LUTs {
		var idx uint
		for i, l := range lut.Leaves {
			if val[l] {
				idx |= 1 << uint(i)
			}
		}
		val[lut.Root] = lut.Func.Eval(idx)
	}
	out := make([]bool, len(r.outputs))
	for i, o := range r.outputs {
		out[i] = val[o.ID()] != o.Comp()
	}
	return out
}
