package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"mighash/internal/fault"
)

// counters snapshots the two response-accounting counters.
func counters(s *Server) (responses, errors int64) {
	return s.metrics.responses.Load(), s.metrics.errors.Load()
}

// TestResponseAccountingAudit pins the invariant behind the /metrics
// counters: every /v1/optimize[/batch] outcome — 2xx, 400, 413, 503,
// streaming success — increments exactly one of responses_total and
// error_responses_total.
func TestResponseAccountingAudit(t *testing.T) {
	// MaxGates 50 lets the full adder through and rejects Sine with 413.
	s, hs := newTestServer(t, Config{MaxGates: 50, MaxConcurrent: 1})
	sine := suiteBench(t, "Sine")

	cases := []struct {
		name       string
		wantStatus int
		wantErrs   int64 // error-counter delta; responses delta is 1 - this
		run        func(t *testing.T) *http.Response
	}{
		{"optimize 2xx", 200, 0, func(t *testing.T) *http.Response {
			return postJSON(t, hs.URL+"/v1/optimize", OptimizeRequest{
				Netlist: fullAdderBench, ScriptSpec: ScriptSpec{Script: "quick"}})
		}},
		{"batch 2xx", 200, 0, func(t *testing.T) *http.Response {
			return postJSON(t, hs.URL+"/v1/optimize/batch", BatchRequest{
				Jobs:       []BatchJobRequest{{Netlist: fullAdderBench}, {Netlist: fullAdderBench}},
				ScriptSpec: ScriptSpec{Script: "quick"}})
		}},
		{"stream 2xx", 200, 0, func(t *testing.T) *http.Response {
			return postJSON(t, hs.URL+"/v1/optimize", OptimizeRequest{
				Netlist: fullAdderBench, ScriptSpec: ScriptSpec{Script: "quick"}, Stream: true})
		}},
		{"unparsable netlist 400", 400, 1, func(t *testing.T) *http.Response {
			return postJSON(t, hs.URL+"/v1/optimize", OptimizeRequest{Netlist: "garbage"})
		}},
		{"malformed JSON 400", 400, 1, func(t *testing.T) *http.Response {
			resp, err := http.Post(hs.URL+"/v1/optimize", "application/json",
				strings.NewReader("{not json"))
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { resp.Body.Close() })
			return resp
		}},
		{"empty batch 400", 400, 1, func(t *testing.T) *http.Response {
			return postJSON(t, hs.URL+"/v1/optimize/batch", BatchRequest{})
		}},
		{"oversized netlist 413", 413, 1, func(t *testing.T) *http.Response {
			return postJSON(t, hs.URL+"/v1/optimize", OptimizeRequest{Netlist: sine})
		}},
		{"no slot 503", 503, 1, func(t *testing.T) *http.Response {
			s.slots <- struct{}{} // occupy the only slot
			t.Cleanup(func() { <-s.slots })
			return postJSON(t, hs.URL+"/v1/optimize", OptimizeRequest{
				Netlist: fullAdderBench, TimeoutMS: 30})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			respBefore, errBefore := counters(s)
			resp := tc.run(t)
			io.Copy(io.Discard, resp.Body) // streams count on completion
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			respAfter, errAfter := counters(s)
			if d := errAfter - errBefore; d != tc.wantErrs {
				t.Errorf("error_responses_total moved by %d, want %d", d, tc.wantErrs)
			}
			if d := respAfter - respBefore; d != 1-tc.wantErrs {
				t.Errorf("responses_total moved by %d, want %d", d, 1-tc.wantErrs)
			}
		})
	}
}

// TestAccountingDeadlineOutcomes covers the timing-dependent outcomes —
// 504 and the erroring stream — on a separate unrestricted server. Which
// error path fires depends on scheduling (the deadline can beat slot
// acquisition), but the audit invariant is exactly one counter bump
// either way.
func TestAccountingDeadlineOutcomes(t *testing.T) {
	s, hs := newTestServer(t, Config{})
	sine := suiteBench(t, "Sine")
	for _, stream := range []bool{false, true} {
		respBefore, errBefore := counters(s)
		resp := postJSON(t, hs.URL+"/v1/optimize", OptimizeRequest{
			Netlist:    sine,
			ScriptSpec: ScriptSpec{Script: "resyn"},
			TimeoutMS:  1,
			Stream:     stream,
		})
		io.Copy(io.Discard, resp.Body)
		respAfter, errAfter := counters(s)
		if total := (respAfter - respBefore) + (errAfter - errBefore); total != 1 {
			t.Errorf("stream=%v: counters moved by %d total, want exactly 1", stream, total)
		}
		if errAfter == errBefore {
			t.Errorf("stream=%v: a deadline-doomed request counted as a success", stream)
		}
	}
}

// TestRequestIDHeader pins the X-Request-ID contract: every response —
// success or error — carries a fresh 16-hex-digit ID.
func TestRequestIDHeader(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	idPat := regexp.MustCompile(`^[0-9a-f]{16}$`)
	var seen []string
	for _, req := range []OptimizeRequest{
		{Netlist: fullAdderBench, ScriptSpec: ScriptSpec{Script: "quick"}},
		{Netlist: "garbage"},
	} {
		resp := postJSON(t, hs.URL+"/v1/optimize", req)
		io.Copy(io.Discard, resp.Body)
		id := resp.Header.Get("X-Request-ID")
		if !idPat.MatchString(id) {
			t.Fatalf("X-Request-ID = %q, want 16 hex digits", id)
		}
		seen = append(seen, id)
	}
	if seen[0] == seen[1] {
		t.Fatalf("two requests shared ID %s", seen[0])
	}
}

// TestTraceDirWritesRequestTrace: with Config.TraceDir set, an optimize
// request leaves a Chrome-trace JSON named by its request ID whose span
// tree reaches from the HTTP request down through the pipeline phases,
// while non-optimization endpoints leave no files.
func TestTraceDirWritesRequestTrace(t *testing.T) {
	dir := t.TempDir()
	_, hs := newTestServer(t, Config{TraceDir: dir})
	resp := postJSON(t, hs.URL+"/v1/optimize", OptimizeRequest{
		Netlist: fullAdderBench, ScriptSpec: ScriptSpec{Script: "quick"}})
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	id := resp.Header.Get("X-Request-ID")
	raw, err := os.ReadFile(filepath.Join(dir, id+".json"))
	if err != nil {
		t.Fatalf("trace file for request %s: %v", id, err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	names := map[string]int{}
	for _, e := range tf.TraceEvents {
		if e.Ph != "X" {
			t.Errorf("event %q has phase %q, want X", e.Name, e.Ph)
		}
		names[e.Name]++
	}
	for _, want := range []string{
		"request", "parse", "queue-wait", "optimize", "encode",
		"job", "pipeline", "iteration", "pass", "rewrite.commit",
	} {
		if names[want] == 0 {
			t.Errorf("trace has no %q span (have %v)", want, names)
		}
	}

	// Metrics scrapes and health checks must not leave trace files.
	hresp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hresp.Body)
	hresp.Body.Close()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("trace dir has %d files after healthz, want 1", len(entries))
	}
}

// TestMetricsHistograms: one served request populates the request, pass
// and slot-wait histograms in /metrics, and the new counters/gauges are
// exposed.
func TestMetricsHistograms(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	resp := postJSON(t, hs.URL+"/v1/optimize", OptimizeRequest{
		Netlist: fullAdderBench, ScriptSpec: ScriptSpec{Script: "quick"}})
	io.Copy(io.Discard, resp.Body)

	mresp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var body bytes.Buffer
	body.ReadFrom(mresp.Body)
	out := body.String()
	for _, want := range []string{
		"migserve_responses_total 1",
		"migserve_slot_queue_depth 0",
		"# TYPE migserve_request_duration_seconds histogram",
		`migserve_request_duration_seconds_bucket{le="+Inf"} 1`,
		"migserve_request_duration_seconds_count 1",
		"# TYPE migserve_pass_duration_seconds histogram",
		"# TYPE migserve_exact5_ladder_duration_seconds histogram",
		"# TYPE migserve_slot_wait_seconds histogram",
		"migserve_slot_wait_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	// The quick script runs at least one pass, so the pass histogram must
	// have samples even though tracing (retention) is off.
	sc := bufio.NewScanner(strings.NewReader(out))
	passCount := int64(-1)
	for sc.Scan() {
		var n int64
		if _, err := fmt.Sscanf(sc.Text(), "migserve_pass_duration_seconds_count %d", &n); err == nil {
			passCount = n
		}
	}
	if passCount < 1 {
		t.Errorf("pass histogram count = %d, want >= 1", passCount)
	}
}

// TestSlowRequestLog: with Config.SlowRequest set below the request
// latency, the server emits one structured slog record (captured via
// the Config.Logger hook) carrying the request ID from the
// X-Request-ID header.
func TestSlowRequestLog(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	_, hs := newTestServer(t, Config{SlowRequest: time.Nanosecond, Logger: logger})
	resp := postJSON(t, hs.URL+"/v1/optimize", OptimizeRequest{
		Netlist: fullAdderBench, ScriptSpec: ScriptSpec{Script: "quick"}})
	io.Copy(io.Discard, resp.Body)
	id := resp.Header.Get("X-Request-ID")

	var entry struct {
		Level     string `json:"level"`
		Msg       string `json:"msg"`
		RequestID string `json:"request_id"`
		Path      string `json:"path"`
		Status    int    `json:"status"`
		ElapsedMS *int64 `json:"elapsed_ms"`
	}
	found := false
	for _, line := range strings.Split(buf.String(), "\n") {
		if line == "" {
			continue
		}
		if json.Unmarshal([]byte(line), &entry) == nil && entry.Msg == "slow_request" {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no slow_request record in:\n%s", buf.String())
	}
	if entry.RequestID != id {
		t.Errorf("slow log request_id = %q, header says %q", entry.RequestID, id)
	}
	if entry.Path != "/v1/optimize" || entry.Status != 200 || entry.Level != "WARN" {
		t.Errorf("slow log fields: %+v", entry)
	}
	if entry.ElapsedMS == nil {
		t.Error("slow log missing elapsed_ms")
	}
}

// TestPanicLogKeyedByRequestID: a handler panic's log record carries the
// request ID the 500 response names, so the operator can join them.
func TestPanicLogKeyedByRequestID(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	_, hs := newTestServer(t, Config{Logger: logger})
	defer fault.Reset()
	if err := fault.Enable("server/handler", "count(1)*panic(injected handler panic)"); err != nil {
		t.Fatal(err)
	}
	resp := postJSON(t, hs.URL+"/v1/optimize", OptimizeRequest{
		Netlist: fullAdderBench, ScriptSpec: ScriptSpec{Script: "quick"}})
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	id := resp.Header.Get("X-Request-ID")
	var entry struct {
		Msg       string `json:"msg"`
		RequestID string `json:"request_id"`
		Stack     string `json:"stack"`
	}
	found := false
	for _, line := range strings.Split(buf.String(), "\n") {
		if line == "" {
			continue
		}
		if json.Unmarshal([]byte(line), &entry) == nil && entry.Msg == "panic in handler" {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no panic record in:\n%s", buf.String())
	}
	if entry.RequestID != id {
		t.Errorf("panic log request_id = %q, header says %q", entry.RequestID, id)
	}
	if entry.Stack == "" {
		t.Error("panic log missing the stack")
	}
}
