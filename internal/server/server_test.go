package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"mighash/internal/circuits"
	"mighash/internal/mig"
)

// fullAdderBench is a tiny hand-written BENCH netlist exercising MAJ,
// XOR and BUF lowering.
const fullAdderBench = `
INPUT(a)
INPUT(b)
INPUT(cin)
OUTPUT(sum)
OUTPUT(cout)
c = MAJ(a, b, cin)
s = XOR(a, b, cin)
sum = BUF(s)
cout = BUF(c)
`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, hs
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return v
}

// suiteBench renders one internal/circuits benchmark as a BENCH netlist.
func suiteBench(t *testing.T, name string) string {
	t.Helper()
	spec, ok := circuits.ByName(name)
	if !ok {
		t.Fatalf("unknown benchmark %q", name)
	}
	var b strings.Builder
	if err := spec.Build().WriteBENCH(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestOptimizeEndToEnd is the acceptance path: a BENCH netlist from
// internal/circuits goes over HTTP and comes back optimized, with
// per-pass stats, and the returned netlist round-trips bit-identically.
func TestOptimizeEndToEnd(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	netlist := suiteBench(t, "Sine")
	resp := postJSON(t, hs.URL+"/v1/optimize", OptimizeRequest{
		Name:       "sine",
		Netlist:    netlist,
		ScriptSpec: ScriptSpec{Script: "quick"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	out := decodeBody[OptimizeResponse](t, resp)
	if out.Name != "sine" {
		t.Errorf("name = %q", out.Name)
	}
	if out.Stats.SizeAfter >= out.Stats.SizeBefore {
		t.Errorf("no size improvement: %d -> %d", out.Stats.SizeBefore, out.Stats.SizeAfter)
	}
	if len(out.Stats.Passes) == 0 {
		t.Error("no per-pass stats")
	}
	// Round-trip: the returned netlist must parse, and re-writing the
	// parse must reproduce it byte-for-byte.
	m, err := mig.ReadBENCH(strings.NewReader(out.Netlist))
	if err != nil {
		t.Fatalf("returned netlist does not parse: %v", err)
	}
	if m.Size() != out.Stats.SizeAfter {
		t.Errorf("returned netlist has size %d, stats say %d", m.Size(), out.Stats.SizeAfter)
	}
	var again strings.Builder
	if err := m.WriteBENCH(&again); err != nil {
		t.Fatal(err)
	}
	if again.String() != out.Netlist {
		t.Error("returned netlist does not round-trip byte-identically")
	}
}

func TestOptimizeVerify(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	resp := postJSON(t, hs.URL+"/v1/optimize", OptimizeRequest{
		Netlist:    fullAdderBench,
		ScriptSpec: ScriptSpec{Script: "size"},
		Verify:     true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	out := decodeBody[OptimizeResponse](t, resp)
	if out.Verified == nil || !*out.Verified {
		t.Errorf("verified = %v, want true", out.Verified)
	}
	if out.SimClean != nil {
		t.Errorf("sim_clean = %v on a SAT-proven result, want absent", *out.SimClean)
	}
}

// TestOptimizeVerifyModes covers the verify_mode ladder: "sim" is
// refute-only (SimClean, never Verified), "sat" and "sim+sat" prove
// (Verified), and an unknown mode is a client error.
func TestOptimizeVerifyModes(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	for _, mode := range []string{"sat", "sim", "sim+sat"} {
		resp := postJSON(t, hs.URL+"/v1/optimize", OptimizeRequest{
			Netlist:    fullAdderBench,
			ScriptSpec: ScriptSpec{Script: "size"},
			VerifyMode: mode,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("mode %s: status = %d, want 200", mode, resp.StatusCode)
		}
		out := decodeBody[OptimizeResponse](t, resp)
		if mode == "sim" {
			if out.Verified != nil {
				t.Errorf("mode sim: verified = %v, want absent (refute-only)", *out.Verified)
			}
			if out.SimClean == nil || !*out.SimClean {
				t.Errorf("mode sim: sim_clean = %v, want true", out.SimClean)
			}
		} else {
			if out.Verified == nil || !*out.Verified {
				t.Errorf("mode %s: verified = %v, want true", mode, out.Verified)
			}
		}
	}
	resp := postJSON(t, hs.URL+"/v1/optimize", OptimizeRequest{
		Netlist:    fullAdderBench,
		VerifyMode: "telepathy",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown verify_mode: status = %d, want 400", resp.StatusCode)
	}
}

func TestBatchOrderAndMIGFormat(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	// A second job in the native MIG text format.
	fa := mig.New(3)
	s, c := fa.FullAdder(fa.Input(0), fa.Input(1), fa.Input(2))
	fa.AddOutput(s)
	fa.AddOutput(c)
	var migText strings.Builder
	if err := fa.WriteText(&migText); err != nil {
		t.Fatal(err)
	}
	resp := postJSON(t, hs.URL+"/v1/optimize/batch", BatchRequest{
		Jobs: []BatchJobRequest{
			{Name: "bench-job", Netlist: fullAdderBench},
			{Name: "mig-job", Netlist: migText.String(), Format: "mig"},
		},
		ScriptSpec: ScriptSpec{Script: "quick"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	out := decodeBody[BatchResponse](t, resp)
	if len(out.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(out.Results))
	}
	if out.Results[0].Name != "bench-job" || out.Results[1].Name != "mig-job" {
		t.Errorf("results out of order: %q, %q", out.Results[0].Name, out.Results[1].Name)
	}
	if _, err := mig.ReadText(strings.NewReader(out.Results[1].Netlist)); err != nil {
		t.Errorf("mig-format response does not parse: %v", err)
	}
}

func TestScriptsEndpoint(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	resp, err := http.Get(hs.URL + "/v1/scripts")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := decodeBody[map[string][]ScriptInfo](t, resp)
	names := map[string]bool{}
	for _, s := range out["scripts"] {
		names[s.Name] = true
		if len(s.Passes) == 0 {
			t.Errorf("script %q lists no passes", s.Name)
		}
	}
	for _, want := range []string{"resyn", "size", "depth", "quick", "BF"} {
		if !names[want] {
			t.Errorf("script %q missing from listing", want)
		}
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
	postJSON(t, hs.URL+"/v1/optimize", OptimizeRequest{
		Netlist:    fullAdderBench,
		ScriptSpec: ScriptSpec{Script: "quick"},
	})
	resp, err = http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	body := buf.String()
	for _, want := range []string{
		"migserve_requests_total",
		"migserve_jobs_completed_total 1",
		"migserve_inflight_jobs 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q:\n%s", want, body)
		}
	}
}

func TestOversizedBody(t *testing.T) {
	_, hs := newTestServer(t, Config{MaxBodyBytes: 1024})
	big := OptimizeRequest{Netlist: strings.Repeat("# padding\n", 1024)}
	resp := postJSON(t, hs.URL+"/v1/optimize", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
	out := decodeBody[errorResponse](t, resp)
	if out.Error == "" {
		t.Error("413 response has no JSON error body")
	}
}

func TestOversizedNetlist(t *testing.T) {
	_, hs := newTestServer(t, Config{MaxGates: 3})
	resp := postJSON(t, hs.URL+"/v1/optimize", OptimizeRequest{Netlist: fullAdderBench})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
	out := decodeBody[errorResponse](t, resp)
	if !strings.Contains(out.Error, "gate limit") && !strings.Contains(out.Error, "gates") {
		t.Errorf("unhelpful error: %q", out.Error)
	}
}

func TestBadRequests(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	cases := []struct {
		name string
		url  string
		body string
	}{
		{"malformed json", "/v1/optimize", "{netlist:"},
		{"empty netlist", "/v1/optimize", `{"netlist":""}`},
		{"bad netlist", "/v1/optimize", `{"netlist":"x = FROB(y)"}`},
		{"unknown script", "/v1/optimize", `{"netlist":"INPUT(a)\nOUTPUT(o)\no = BUF(a)\n","script":"nope"}`},
		{"unknown pass", "/v1/optimize", `{"netlist":"INPUT(a)\nOUTPUT(o)\no = BUF(a)\n","passes":["XX"]}`},
		{"unknown format", "/v1/optimize", `{"netlist":"INPUT(a)","format":"blif"}`},
		{"empty batch", "/v1/optimize/batch", `{"jobs":[]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(hs.URL+tc.url, "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400", resp.StatusCode)
			}
			if out := decodeBody[errorResponse](t, resp); out.Error == "" {
				t.Error("400 response has no JSON error body")
			}
		})
	}
}

// TestDeadline proves that a request-level deadline cancels the
// optimization cleanly: a 1 ms budget cannot complete any pass, so the
// service must answer with a timeout status and a JSON error, not hang.
func TestDeadline(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	resp := postJSON(t, hs.URL+"/v1/optimize", OptimizeRequest{
		Netlist:    suiteBench(t, "Sine"),
		ScriptSpec: ScriptSpec{Script: "resyn"},
		TimeoutMS:  1,
	})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", resp.StatusCode)
	}
	out := decodeBody[errorResponse](t, resp)
	if !strings.Contains(out.Error, "deadline") {
		t.Errorf("error does not mention the deadline: %q", out.Error)
	}
}

// TestSlotQueueTimeout proves a request that never gets an optimization
// slot fails with 503 at its deadline instead of queueing forever.
func TestSlotQueueTimeout(t *testing.T) {
	s, hs := newTestServer(t, Config{MaxConcurrent: 1})
	s.slots <- struct{}{} // occupy the only slot
	defer func() { <-s.slots }()
	resp := postJSON(t, hs.URL+"/v1/optimize", OptimizeRequest{
		Netlist:   fullAdderBench,
		TimeoutMS: 50,
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
}

func TestStreaming(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	raw, _ := json.Marshal(OptimizeRequest{
		Name:       "fa",
		Netlist:    fullAdderBench,
		ScriptSpec: ScriptSpec{Script: "quick"},
		Stream:     true,
	})
	resp, err := http.Post(hs.URL+"/v1/optimize", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content-type = %q, want application/x-ndjson", ct)
	}
	var passes, results int
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev StreamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		switch ev.Event {
		case "pass":
			passes++
			if ev.Pass == nil || ev.Job != "fa" {
				t.Errorf("malformed pass event: %+v", ev)
			}
		case "result":
			results++
			if ev.Result == nil || ev.Result.Netlist == "" {
				t.Errorf("malformed result event: %+v", ev)
			}
		case "error":
			t.Errorf("unexpected error event: %+v", ev)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if passes == 0 || results != 1 {
		t.Errorf("got %d pass events and %d result events, want >=1 and 1", passes, results)
	}
}

// TestNoGoroutineLeak runs successful, failing and timed-out requests and
// checks the server returns to its idle goroutine count: cancelled work
// must not strand engine workers or slot waiters.
func TestNoGoroutineLeak(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	// Drain and close every body immediately so the HTTP connection pool
	// stays at one reused connection and does not confound the count.
	post := func(req OptimizeRequest) {
		raw, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(hs.URL+"/v1/optimize", "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		var sink bytes.Buffer
		sink.ReadFrom(resp.Body)
		resp.Body.Close()
	}
	warm := func() {
		post(OptimizeRequest{Netlist: fullAdderBench, ScriptSpec: ScriptSpec{Script: "quick"}})
	}
	warm() // let the HTTP client/server pools reach steady state
	base := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		warm()
		post(OptimizeRequest{Netlist: suiteBench(t, "Sine"), TimeoutMS: 1})
		post(OptimizeRequest{Netlist: "garbage"})
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base+3 { // idle HTTP keep-alive conns wobble a little
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines grew from %d to %d after cancelled requests", base, n)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestDeterministicAcrossWorkers: the same request with different worker
// budgets must return byte-identical netlists (the FFR-parallel rewriter's
// contract, surfaced through the API).
func TestDeterministicAcrossWorkers(t *testing.T) {
	_, hs := newTestServer(t, Config{MaxWorkersPerRequest: 8})
	get := func(workers int) string {
		resp := postJSON(t, hs.URL+"/v1/optimize", OptimizeRequest{
			Netlist:    suiteBench(t, "Sine"),
			ScriptSpec: ScriptSpec{Script: "quick", Workers: workers},
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d, want 200", resp.StatusCode)
		}
		return decodeBody[OptimizeResponse](t, resp).Netlist
	}
	serial := get(1)
	parallel := get(8)
	if serial != parallel {
		t.Error("netlists differ between 1 and 8 intra-graph workers")
	}
}

// TestNegativeWorkersNormalized: a negative workers request must not
// reach the engine — only the upper clamp existed before, so a negative
// slipped through pipeline() unmodified.
func TestNegativeWorkersNormalized(t *testing.T) {
	s, hs := newTestServer(t, Config{})
	p, err := s.pipeline(ScriptSpec{Script: "quick", Workers: -8})
	if err != nil {
		t.Fatal(err)
	}
	if p.Workers != 0 {
		t.Errorf("pipeline kept negative workers: %d, want 0", p.Workers)
	}
	resp := postJSON(t, hs.URL+"/v1/optimize", OptimizeRequest{
		Netlist:    fullAdderBench,
		ScriptSpec: ScriptSpec{Script: "quick", Workers: -8},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("negative-workers request: status = %d, want 200", resp.StatusCode)
	}
}

// TestStreamErrorsCounted: in-stream error events bypass writeError, so
// they must bump migserve_error_responses_total themselves — before the
// fix a streaming batch abort left the counter untouched.
func TestStreamErrorsCounted(t *testing.T) {
	s, hs := newTestServer(t, Config{})
	before := s.metrics.errors.Load()
	raw, _ := json.Marshal(OptimizeRequest{
		Name:       "doomed",
		Netlist:    suiteBench(t, "Sine"),
		ScriptSpec: ScriptSpec{Script: "resyn"},
		TimeoutMS:  5, // far too little for resyn on Sine
		Stream:     true,
	})
	resp, err := http.Post(hs.URL+"/v1/optimize", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		// The deadline beat slot acquisition: that path is writeError and
		// was always counted; retry won't make the stream deterministic,
		// so just verify the counter moved.
		if s.metrics.errors.Load() == before {
			t.Fatal("pre-stream error response not counted")
		}
		return
	}
	var errEvents int
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev StreamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		if ev.Event == "error" {
			errEvents++
		}
	}
	if errEvents == 0 {
		t.Fatal("expected in-stream error events from the 5 ms deadline")
	}
	// The counter tracks error responses, so a stream with any number of
	// error events counts exactly once.
	if got := s.metrics.errors.Load() - before; got != 1 {
		t.Errorf("errors counter moved by %d for one erroring stream, want 1", got)
	}
}

// TestCachePersistenceAcrossRestart: a server with CacheFile snapshots
// its shared cache on Close and a new server warm-starts from it, with
// bit-identical optimized netlists and the persistence metrics exposed.
func TestCachePersistenceAcrossRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "npn.cache")
	cfg := Config{CacheFile: path, CacheSnapshotInterval: -1} // shutdown-only snapshots
	s1, hs1 := newTestServer(t, cfg)
	req := OptimizeRequest{
		Name:       "sine",
		Netlist:    suiteBench(t, "Sine"),
		ScriptSpec: ScriptSpec{Script: "quick"},
	}
	resp := postJSON(t, hs1.URL+"/v1/optimize", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold optimize: status %d", resp.StatusCode)
	}
	cold := decodeBody[OptimizeResponse](t, resp)
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("Close left no snapshot: %v", err)
	}

	s2, hs2 := newTestServer(t, cfg)
	defer s2.Close()
	mresp, err := http.Get(hs2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(mresp.Body)
	mresp.Body.Close()
	body := buf.String()
	if !strings.Contains(body, "migserve_cache_restored_entries") ||
		strings.Contains(body, "migserve_cache_restored_entries 0\n") {
		t.Errorf("restarted server reports no restored entries:\n%s", body)
	}
	if !strings.Contains(body, "migserve_npn_cache_entries") {
		t.Errorf("metrics missing migserve_npn_cache_entries:\n%s", body)
	}

	resp = postJSON(t, hs2.URL+"/v1/optimize", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm optimize: status %d", resp.StatusCode)
	}
	warm := decodeBody[OptimizeResponse](t, resp)
	if warm.Netlist != cold.Netlist {
		t.Error("warm-started server produced a different optimized netlist")
	}
	if warm.Stats.CacheHits <= 0 {
		t.Errorf("warm run reports no cache hits: %+v", warm.Stats)
	}
	// The restored cache plus the quick pass must hit at least as often
	// as the cold run did.
	coldRate := float64(cold.Stats.CacheHits) / float64(cold.Stats.CacheHits+cold.Stats.CacheMisses)
	warmRate := float64(warm.Stats.CacheHits) / float64(warm.Stats.CacheHits+warm.Stats.CacheMisses)
	if warmRate <= coldRate {
		t.Errorf("warm hit rate %.4f not above cold %.4f", warmRate, coldRate)
	}
}

// TestCorruptCacheFileStartsCold: a scribbled-over snapshot must not
// stop the server — it logs, starts cold, and still serves.
func TestCorruptCacheFileStartsCold(t *testing.T) {
	path := filepath.Join(t.TempDir(), "npn.cache")
	if err := os.WriteFile(path, []byte("garbage, not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, hs := newTestServer(t, Config{CacheFile: path, CacheSnapshotInterval: -1})
	defer s.Close()
	resp := postJSON(t, hs.URL+"/v1/optimize", OptimizeRequest{
		Netlist:    fullAdderBench,
		ScriptSpec: ScriptSpec{Script: "quick"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("server with corrupt snapshot: status %d", resp.StatusCode)
	}
}

// TestPeriodicSnapshot: the background writer re-snapshots the cache
// without any shutdown, and Close is idempotent afterwards.
func TestPeriodicSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "npn.cache")
	s, hs := newTestServer(t, Config{CacheFile: path, CacheSnapshotInterval: 20 * time.Millisecond})
	postJSON(t, hs.URL+"/v1/optimize", OptimizeRequest{
		Netlist:    fullAdderBench,
		ScriptSpec: ScriptSpec{Script: "quick"},
	})
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(path); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("periodic snapshot never appeared")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
