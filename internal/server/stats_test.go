package server

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestStatsEndpoint is the /v1/stats acceptance path: after serving
// jobs under two presets, the endpoint returns live per-preset
// aggregates — job counts, gate savings, runtime quantiles — and the
// same numbers appear as labeled /metrics series.
func TestStatsEndpoint(t *testing.T) {
	_, hs := newTestServer(t, Config{})

	// Before any optimization the preset list is present but empty.
	resp, err := http.Get(hs.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	empty := decodeBody[StatsResponse](t, resp)
	if len(empty.Presets) != 0 {
		t.Errorf("cold server presets = %+v, want none", empty.Presets)
	}

	sine := suiteBench(t, "Sine")
	for _, script := range []string{"quick", "quick", "size"} {
		r := postJSON(t, hs.URL+"/v1/optimize", OptimizeRequest{
			Netlist: sine, ScriptSpec: ScriptSpec{Script: script}})
		if r.StatusCode != http.StatusOK {
			t.Fatalf("optimize (%s) status = %d", script, r.StatusCode)
		}
		io.Copy(io.Discard, r.Body)
	}

	resp, err = http.Get(hs.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	stats := decodeBody[StatsResponse](t, resp)
	if stats.JobsCompleted != 3 {
		t.Errorf("jobs_completed = %d, want 3", stats.JobsCompleted)
	}
	if len(stats.Presets) != 2 {
		t.Fatalf("presets = %+v, want quick and size", stats.Presets)
	}
	// Presets are name-sorted: quick, size.
	q, sz := stats.Presets[0], stats.Presets[1]
	if q.Script != "quick" || sz.Script != "size" {
		t.Fatalf("preset order = %q, %q", q.Script, sz.Script)
	}
	if q.Jobs != 2 || sz.Jobs != 1 {
		t.Errorf("job counts = %d/%d, want 2/1", q.Jobs, sz.Jobs)
	}
	if q.GatesIn == 0 || q.GatesSaved <= 0 || q.GatesSaved != q.GatesIn-q.GatesOut {
		t.Errorf("quick gate aggregate inconsistent: %+v", q)
	}
	// Quantiles are conservative bucket upper bounds of real
	// observations, so they must be positive and ordered.
	if q.RuntimeP50MS <= 0 || q.RuntimeP99MS < q.RuntimeP50MS {
		t.Errorf("quick runtime quantiles p50=%dms p99=%dms", q.RuntimeP50MS, q.RuntimeP99MS)
	}

	// The same aggregates surface as labeled /metrics series.
	mresp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	raw, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{
		`migserve_preset_jobs_total{script="quick"} 2`,
		`migserve_preset_jobs_total{script="size"} 1`,
		`migserve_preset_gates_saved_total{script="quick"}`,
		`migserve_preset_runtime_seconds{script="quick",quantile="0.5"}`,
	} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestStatsCountsFailedJobs: a job that fails per-job (deadline) lands
// in the preset's failed counter, not its QoR aggregates.
func TestStatsFailedJobsDoNotPolluteAggregates(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	r := postJSON(t, hs.URL+"/v1/optimize", OptimizeRequest{
		Netlist: suiteBench(t, "Sine"), ScriptSpec: ScriptSpec{Script: "resyn"},
		TimeoutMS: 1})
	io.Copy(io.Discard, r.Body)
	resp, err := http.Get(hs.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	stats := decodeBody[StatsResponse](t, resp)
	for _, p := range stats.Presets {
		if p.Jobs != 0 {
			t.Errorf("preset %q counted %d completed jobs from a deadline-failed request", p.Script, p.Jobs)
		}
	}
}
