package server

import (
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync/atomic"
	"time"

	"mighash/internal/engine"
	"mighash/internal/obs"
)

// metrics is the server's counter set, exposed in Prometheus text
// exposition format at GET /metrics. Counters are plain atomics — the
// service's hot path must not pay for a metrics registry — and every
// value is monotonic except the inflight and queue-depth gauges. The
// duration histograms are fed by the per-request tracer (histograms are
// always on; trace retention is opt-in via Config.TraceDir).
type metrics struct {
	start     time.Time
	requests  atomic.Int64 // every HTTP request, any endpoint
	optimize  atomic.Int64 // POST /v1/optimize
	batch     atomic.Int64 // POST /v1/optimize/batch
	responses atomic.Int64 // 2xx responses written (incl. completed streams)
	errors    atomic.Int64 // non-2xx responses written
	inflight  atomic.Int64 // jobs currently holding a pool slot
	// queueDepth counts requests currently waiting for a pool slot: the
	// front line of the 503-vs-served decision. inflight tells you the
	// pool is full; queueDepth tells you how far behind it is.
	queueDepth atomic.Int64

	// shed counts requests rejected by the admission-control watermark
	// before they joined the slot queue (a subset of error_responses).
	shed atomic.Int64

	jobsOK     atomic.Int64 // jobs that returned an optimized netlist
	jobsFailed atomic.Int64 // jobs that ended in a per-job error
	gatesIn    atomic.Int64 // summed input sizes of completed jobs
	gatesOut   atomic.Int64 // summed optimized sizes of completed jobs
	passes     atomic.Int64 // executed pipeline passes
	cacheHits  atomic.Int64 // NPN cut-cache hits, summed over jobs
	cacheMiss  atomic.Int64 // NPN cut-cache misses, summed over jobs
	// Choice-aware extraction traffic, summed over completed jobs.
	extractChoices atomic.Int64 // recorded (cut, candidate) choices
	extractSaved   atomic.Int64 // gates saved over the greedy twins

	// Panic isolation: a handler panic is caught at the dispatch boundary
	// (500 naming the request ID), a job panic at the engine's per-job
	// boundary (in-band job error). Both should be flatlined at zero;
	// either climbing is a bug report with a stack already in the log.
	handlerPanics atomic.Int64
	jobPanics     atomic.Int64

	// Cache-persistence counters (all zero without Config.CacheFile).
	cacheRestored   atomic.Int64 // entries warm-started from the snapshot
	snapshots       atomic.Int64 // snapshot attempts (periodic + Close)
	snapshotErrors  atomic.Int64 // snapshot attempts that failed
	snapshotEntries atomic.Int64 // entries in the last successful snapshot
	// snapshotConsecErr is a gauge: failures since the last success. See
	// snapshotCache for why it exists next to the monotonic error count.
	snapshotConsecErr atomic.Int64

	// Duration histograms (created by New; all use the default buckets).
	reqHist    *obs.Histogram // whole optimize/batch requests
	passHist   *obs.Histogram // executed pipeline passes
	ladderHist *obs.Histogram // on-demand exact-synthesis ladders
	slotWait   *obs.Histogram // time spent waiting for a pool slot

	// presets holds the per-script rolling QoR aggregates behind
	// GET /v1/stats and the labeled /metrics series.
	presets statsRegistry
}

// observe folds one finished batch into the counters.
func (m *metrics) observe(results []engine.Result) {
	m.presets.observePreset(results)
	for _, r := range results {
		if r.Err != nil {
			m.jobsFailed.Add(1)
			if errors.Is(r.Err, engine.ErrJobPanic) {
				m.jobPanics.Add(1)
			}
			continue
		}
		m.jobsOK.Add(1)
		m.gatesIn.Add(int64(r.Stats.SizeBefore))
		m.gatesOut.Add(int64(r.Stats.SizeAfter))
		m.passes.Add(int64(len(r.Stats.Passes)))
		m.cacheHits.Add(int64(r.Stats.CacheHits))
		m.cacheMiss.Add(int64(r.Stats.CacheMisses))
		m.extractChoices.Add(int64(r.Stats.Choices))
		m.extractSaved.Add(int64(r.Stats.ExtractSaved))
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := &s.metrics
	vals := map[string]int64{
		"migserve_requests_total":          m.requests.Load(),
		"migserve_optimize_requests_total": m.optimize.Load(),
		"migserve_batch_requests_total":    m.batch.Load(),
		"migserve_responses_total":         m.responses.Load(),
		"migserve_error_responses_total":   m.errors.Load(),
		"migserve_inflight_jobs":           m.inflight.Load(),
		"migserve_slot_queue_depth":        m.queueDepth.Load(),
		"migserve_shed_total":              m.shed.Load(),
		"migserve_handler_panics_total":    m.handlerPanics.Load(),
		"migserve_job_panics_total":        m.jobPanics.Load(),
		"migserve_jobs_completed_total":    m.jobsOK.Load(),
		"migserve_jobs_failed_total":       m.jobsFailed.Load(),
		"migserve_input_gates_total":       m.gatesIn.Load(),
		"migserve_output_gates_total":      m.gatesOut.Load(),
		"migserve_passes_total":            m.passes.Load(),
		"migserve_npn_cache_hits_total":    m.cacheHits.Load(),
		"migserve_npn_cache_misses_total":  m.cacheMiss.Load(),
		"migserve_uptime_seconds":          int64(time.Since(m.start).Seconds()),
		"migserve_max_concurrent_jobs":     int64(s.cfg.MaxConcurrent),
		"migserve_max_body_bytes":          s.cfg.MaxBodyBytes,
	}
	if s.cache != nil {
		// The live entry count is a gauge sampled at scrape time; the
		// snapshot counters only move when cache persistence is on.
		vals["migserve_npn_cache_entries"] = int64(s.cache.Len())
		vals["migserve_cache_restored_entries"] = m.cacheRestored.Load()
		vals["migserve_cache_snapshot_total"] = m.snapshots.Load()
		vals["migserve_cache_snapshot_errors_total"] = m.snapshotErrors.Load()
		vals["migserve_cache_snapshot_entries"] = m.snapshotEntries.Load()
		vals["migserve_cache_snapshot_consecutive_errors"] = m.snapshotConsecErr.Load()
	}
	// The on-demand 5-input store: learned classes (gauge), ladders run,
	// ladders that failed, and the synthesis circuit breaker (state is a
	// gauge: 0 closed, 1 half-open, 2 open; pinned 0 when disabled).
	vals["migserve_exact5_entries"] = int64(s.exact5.Len())
	vals["migserve_exact5_synth_total"] = int64(s.exact5.Synths())
	vals["migserve_exact5_synth_timeouts"] = int64(s.exact5.Failures())
	vals["migserve_exact5_breaker_state"] = int64(s.exact5.BreakerState())
	vals["migserve_exact5_breaker_trips_total"] = int64(s.exact5.BreakerTrips())
	vals["migserve_exact5_breaker_skips_total"] = int64(s.exact5.BreakerSkips())
	// Store bounding (gauge limit, 0 = unbounded) and candidate menus.
	vals["migserve_exact5_limit"] = int64(s.exact5.Limit())
	vals["migserve_exact5_evictions_total"] = int64(s.exact5.Evictions())
	vals["migserve_exact5_candidates"] = int64(s.exact5.Candidates())
	// Choice-aware extraction traffic of completed jobs.
	vals["migserve_extract_choices_total"] = m.extractChoices.Load()
	vals["migserve_extract_saved_gates_total"] = m.extractSaved.Load()
	names := make([]string, 0, len(vals))
	for n := range vals {
		names = append(names, n)
	}
	sort.Strings(names)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	for _, n := range names {
		fmt.Fprintf(w, "%s %d\n", n, vals[n])
	}
	// Per-preset QoR series, labeled by script — the /metrics view of the
	// same rolling aggregates GET /v1/stats returns as JSON. The quantile
	// gauges are hand-emitted: obs.Histogram's exposition writer has no
	// label support, and two summary-style gauges per preset beat a full
	// labeled bucket set nobody graphs.
	for _, snap := range m.presets.snapshot() {
		ps := snap.stats
		fmt.Fprintf(w, "migserve_preset_jobs_total{script=%q} %d\n", snap.name, ps.jobs.Load())
		fmt.Fprintf(w, "migserve_preset_jobs_failed_total{script=%q} %d\n", snap.name, ps.failed.Load())
		fmt.Fprintf(w, "migserve_preset_input_gates_total{script=%q} %d\n", snap.name, ps.gatesIn.Load())
		fmt.Fprintf(w, "migserve_preset_gates_saved_total{script=%q} %d\n", snap.name, ps.gatesIn.Load()-ps.gatesOut.Load())
		fmt.Fprintf(w, "migserve_preset_runtime_seconds{script=%q,quantile=\"0.5\"} %g\n", snap.name, ps.hist.Quantile(0.5).Seconds())
		fmt.Fprintf(w, "migserve_preset_runtime_seconds{script=%q,quantile=\"0.99\"} %g\n", snap.name, ps.hist.Quantile(0.99).Seconds())
	}
	m.reqHist.WritePrometheus(w, "migserve_request_duration_seconds")
	m.passHist.WritePrometheus(w, "migserve_pass_duration_seconds")
	m.ladderHist.WritePrometheus(w, "migserve_exact5_ladder_duration_seconds")
	m.slotWait.WritePrometheus(w, "migserve_slot_wait_seconds")
}
