package server

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"mighash/internal/db"
	"mighash/internal/engine"
)

// TestScriptsEndpointPinsPresetRegistry pins GET /v1/scripts to the
// engine's preset registry: the two lists must be equal — not merely
// overlapping — so a preset added to the engine (resyn5, size5, …)
// appears on the wire automatically and a dropped one disappears.
func TestScriptsEndpointPinsPresetRegistry(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	resp, err := http.Get(hs.URL + "/v1/scripts")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := decodeBody[map[string][]ScriptInfo](t, resp)
	var got []string
	for _, s := range out["scripts"] {
		got = append(got, s.Name)
	}
	want := engine.PresetNames()
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("GET /v1/scripts = %v, engine registry = %v", got, want)
	}
}

// TestUnknownScriptListsPresets: rejecting an unknown script must name
// the valid ones, so clients can self-correct without docs.
func TestUnknownScriptListsPresets(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	resp := postJSON(t, hs.URL+"/v1/optimize", OptimizeRequest{
		Netlist:    fullAdderBench,
		ScriptSpec: ScriptSpec{Script: "resin"},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	for _, name := range engine.PresetNames() {
		if !strings.Contains(string(body), name) {
			t.Fatalf("error body %q does not list preset %q", body, name)
		}
	}
}

// TestOptimize5EndToEnd: a resyn5 request round-trips, the learned-class
// metrics move, and the request deadline governs the in-flight ladders.
func TestOptimize5EndToEnd(t *testing.T) {
	s, hs := newTestServer(t, Config{
		Synth5: db.OnDemandOptions{MaxGates: 5, MaxConflicts: 2000},
	})
	resp := postJSON(t, hs.URL+"/v1/optimize", OptimizeRequest{
		Netlist:    suiteBench(t, "Max"),
		ScriptSpec: ScriptSpec{Script: "resyn5", MaxIterations: 1},
		Verify:     true,
	})
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	out := decodeBody[OptimizeResponse](t, resp)
	if out.Netlist == "" || out.Verified == nil || !*out.Verified {
		t.Fatalf("response lacks a verified netlist: %+v", out.Error)
	}
	if out.Stats.SizeAfter > out.Stats.SizeBefore {
		t.Fatalf("resyn5 grew the graph %d→%d", out.Stats.SizeBefore, out.Stats.SizeAfter)
	}
	if s.exact5.Synths() == 0 {
		t.Fatal("no 5-input ladders ran on a suite circuit")
	}

	mresp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, _ := io.ReadAll(mresp.Body)
	for _, metric := range []string{
		"migserve_exact5_entries", "migserve_exact5_synth_total", "migserve_exact5_synth_timeouts",
	} {
		if !strings.Contains(string(body), metric) {
			t.Fatalf("/metrics lacks %s", metric)
		}
	}
}
