package server

import (
	"bufio"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"mighash/internal/fault"
)

// metricValue scrapes one plain counter/gauge from GET /metrics.
func metricValue(t *testing.T, baseURL, name string) int64 {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 2 && fields[0] == name {
			v, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				t.Fatalf("metric %s has non-integer value %q", name, fields[1])
			}
			return v
		}
	}
	t.Fatalf("metric %s not exposed", name)
	return 0
}

// TestHandlerPanicIsolated: a panic in the handler path becomes a
// counted 500 that names the request ID, and the server keeps serving.
func TestHandlerPanicIsolated(t *testing.T) {
	defer fault.Reset()
	s, hs := newTestServer(t, Config{})
	if err := fault.Enable("server/handler", "count(1)*panic(injected handler panic)"); err != nil {
		t.Fatal(err)
	}
	errsBefore := s.metrics.errors.Load()
	resp := postJSON(t, hs.URL+"/v1/optimize", OptimizeRequest{Netlist: fullAdderBench})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking handler returned %d, want 500", resp.StatusCode)
	}
	id := resp.Header.Get("X-Request-ID")
	if id == "" {
		t.Fatal("500 from a panic lost the X-Request-ID header")
	}
	body := decodeBody[errorResponse](t, resp)
	if !strings.Contains(body.Error, id) {
		t.Fatalf("error body %q should name request id %s", body.Error, id)
	}
	if got := s.metrics.handlerPanics.Load(); got != 1 {
		t.Fatalf("handlerPanics = %d, want 1", got)
	}
	if got := s.metrics.errors.Load() - errsBefore; got != 1 {
		t.Fatalf("the panic 500 bumped error_responses by %d, want 1", got)
	}

	// The failpoint is exhausted; the very next request must succeed.
	resp = postJSON(t, hs.URL+"/v1/optimize", OptimizeRequest{Netlist: fullAdderBench})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after the recovered panic returned %d, want 200", resp.StatusCode)
	}
	if got := metricValue(t, hs.URL, "migserve_handler_panics_total"); got != 1 {
		t.Fatalf("migserve_handler_panics_total = %d, want 1", got)
	}
}

// TestJobPanicSurfacesInBand: a panic inside a job (here injected at the
// engine's "engine/job" failpoint) fails that request with a 500 whose
// body says so, counts into migserve_job_panics_total, and never reaches
// the handler boundary.
func TestJobPanicSurfacesInBand(t *testing.T) {
	defer fault.Reset()
	s, hs := newTestServer(t, Config{})
	if err := fault.Enable("engine/job", "count(1)*panic(injected job panic)"); err != nil {
		t.Fatal(err)
	}
	resp := postJSON(t, hs.URL+"/v1/optimize", OptimizeRequest{Netlist: fullAdderBench})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("job panic returned %d, want 500", resp.StatusCode)
	}
	body := decodeBody[errorResponse](t, resp)
	if !strings.Contains(body.Error, "panicked") || !strings.Contains(body.Error, "injected job panic") {
		t.Fatalf("error body %q should carry the job panic", body.Error)
	}
	if got := s.metrics.jobPanics.Load(); got != 1 {
		t.Fatalf("jobPanics = %d, want 1", got)
	}
	if got := s.metrics.handlerPanics.Load(); got != 0 {
		t.Fatalf("job panic leaked to the handler boundary (handlerPanics = %d)", got)
	}
	resp = postJSON(t, hs.URL+"/v1/optimize", OptimizeRequest{Netlist: fullAdderBench})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after the job panic returned %d, want 200", resp.StatusCode)
	}
}

// TestSlotTimeout503CarriesRetryAfter: the queue-timeout 503 carries a
// Retry-After hint in whole seconds, clamped to [1, 60].
func TestSlotTimeout503CarriesRetryAfter(t *testing.T) {
	s, hs := newTestServer(t, Config{MaxConcurrent: 1})
	s.slots <- struct{}{} // occupy the only slot
	defer func() { <-s.slots }()
	resp := postJSON(t, hs.URL+"/v1/optimize", OptimizeRequest{Netlist: fullAdderBench, TimeoutMS: 50})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated pool returned %d, want 503", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 || ra > 60 {
		t.Fatalf("Retry-After = %q, want an integer in [1, 60]", resp.Header.Get("Retry-After"))
	}
}

// TestShedWatermark: once the median request duration says the queue
// ahead cannot drain inside the deadline, the request is rejected up
// front — 503 with Retry-After, counted in migserve_shed_total — and a
// drained queue admits requests again.
func TestShedWatermark(t *testing.T) {
	s, hs := newTestServer(t, Config{})
	// Manufacture history: the median request takes seconds…
	for i := 0; i < shedMinSamples; i++ {
		s.metrics.reqHist.Observe(2 * time.Second)
	}
	// …and someone is already queued.
	s.metrics.queueDepth.Add(1)
	resp := postJSON(t, hs.URL+"/v1/optimize", OptimizeRequest{Netlist: fullAdderBench, TimeoutMS: 100})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overloaded server returned %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed 503 lost its Retry-After header")
	}
	if got := s.metrics.shed.Load(); got != 1 {
		t.Fatalf("shed = %d, want 1", got)
	}
	// A client with a deadline beyond the backlog is admitted.
	resp = postJSON(t, hs.URL+"/v1/optimize", OptimizeRequest{Netlist: fullAdderBench, TimeoutMS: 60_000})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("patient request returned %d, want 200", resp.StatusCode)
	}
	// With the queue drained the short deadline is fine too.
	s.metrics.queueDepth.Add(-1)
	resp = postJSON(t, hs.URL+"/v1/optimize", OptimizeRequest{Netlist: fullAdderBench, TimeoutMS: 5_000})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after drain returned %d, want 200", resp.StatusCode)
	}
	if got := s.metrics.shed.Load(); got != 1 {
		t.Fatalf("shed after drain = %d, want still 1", got)
	}
}

// TestShedFailpoint: the "server/shed" failpoint forces the overload
// verdict — the deterministic lever the chaos CI uses to prove the
// 503 / Retry-After / client-retry contract end to end.
func TestShedFailpoint(t *testing.T) {
	defer fault.Reset()
	s, hs := newTestServer(t, Config{})
	if err := fault.Enable("server/shed", "count(1)*return(injected overload)"); err != nil {
		t.Fatal(err)
	}
	resp := postJSON(t, hs.URL+"/v1/optimize", OptimizeRequest{Netlist: fullAdderBench})
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("injected overload: status %d, Retry-After %q; want 503 with a hint",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	if got := s.metrics.shed.Load(); got != 1 {
		t.Fatalf("shed = %d, want 1", got)
	}
	resp = postJSON(t, hs.URL+"/v1/optimize", OptimizeRequest{Netlist: fullAdderBench})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after the injected shed returned %d, want 200", resp.StatusCode)
	}
}

// TestMetricsExposeRobustnessSeries: every degraded state has a metric a
// dashboard can alert on, present from the first scrape.
func TestMetricsExposeRobustnessSeries(t *testing.T) {
	dir := t.TempDir()
	_, hs := newTestServer(t, Config{CacheFile: dir + "/m.cache"})
	for _, name := range []string{
		"migserve_shed_total",
		"migserve_handler_panics_total",
		"migserve_job_panics_total",
		"migserve_cache_snapshot_consecutive_errors",
		"migserve_exact5_breaker_state",
		"migserve_exact5_breaker_trips_total",
		"migserve_exact5_breaker_skips_total",
	} {
		if got := metricValue(t, hs.URL, name); got != 0 {
			t.Errorf("%s = %d on a fresh server, want 0", name, got)
		}
	}
}

// TestSnapshotConsecutiveErrorsGauge: the gauge climbs across
// back-to-back snapshot failures and snaps to zero on the first success
// — the signal separating a blip from a persistently broken disk.
func TestSnapshotConsecutiveErrorsGauge(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	s, hs := newTestServer(t, Config{CacheFile: dir + "/m.cache", CacheSnapshotInterval: -1})
	t.Cleanup(func() { s.Close() })
	if err := fault.Enable("db/snapshot-rename", "return(injected EIO)"); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		if err := s.snapshotCache(); err == nil {
			t.Fatal("snapshot with an injected rename fault succeeded")
		}
		if got := metricValue(t, hs.URL, "migserve_cache_snapshot_consecutive_errors"); got != int64(i) {
			t.Fatalf("consecutive errors after failure %d = %d", i, got)
		}
	}
	if got := metricValue(t, hs.URL, "migserve_cache_snapshot_errors_total"); got != 2 {
		t.Fatalf("snapshot errors total = %d, want 2", got)
	}
	fault.Disable("db/snapshot-rename")
	if err := s.snapshotCache(); err != nil {
		t.Fatalf("snapshot after clearing the fault: %v", err)
	}
	if got := metricValue(t, hs.URL, "migserve_cache_snapshot_consecutive_errors"); got != 0 {
		t.Fatalf("consecutive errors after a success = %d, want 0", got)
	}
	if got := metricValue(t, hs.URL, "migserve_cache_snapshot_errors_total"); got != 2 {
		t.Fatalf("snapshot errors total moved on success: %d", got)
	}
}
