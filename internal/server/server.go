package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"log/slog"
	"math"
	"net/http"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"time"

	"mighash/internal/db"
	"mighash/internal/engine"
	"mighash/internal/fault"
	"mighash/internal/mig"
	"mighash/internal/obs"
	"mighash/internal/sim/diff"
)

// Config tunes a Server. The zero value is usable: every limit falls back
// to the default documented on its field.
type Config struct {
	// MaxBodyBytes caps the request body; larger bodies are rejected with
	// 413 before parsing. Default 16 MiB.
	MaxBodyBytes int64
	// MaxGates rejects parsed netlists above this gate count with 413
	// (the cheap byte cap cannot see how a netlist expands — XOR-heavy
	// BENCH files grow 3× when lowered to majority gadgets). Default
	// 2,000,000; negative disables the check.
	MaxGates int
	// DefaultTimeout bounds a request that does not ask for a deadline of
	// its own. Default 60s.
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested deadlines; requests asking for
	// more are clamped, not rejected. Default 5m.
	MaxTimeout time.Duration
	// MaxConcurrent bounds the number of optimization jobs running at
	// once across all requests (the service-level worker pool; parsing
	// and encoding are not limited). Requests queue for a slot until
	// their deadline. Default runtime.NumCPU().
	MaxConcurrent int
	// MaxWorkersPerRequest caps the intra-graph rewrite parallelism a
	// request may ask for. Default 4; negative disables the cap.
	MaxWorkersPerRequest int
	// SharedCache, when true, shares one NPN cut-cache across every
	// request of the server's lifetime, so repeated cut functions from
	// different clients reuse each other's canonicalizations. Per-request
	// hit/miss statistics then depend on the server's history.
	SharedCache bool
	// CacheFile persists the shared cache across process restarts: New
	// restores the snapshot at this path (a missing file is a cold start;
	// a corrupt or version-skewed one degrades to a cold cache with a
	// logged error), a background goroutine re-snapshots it every
	// CacheSnapshotInterval, and Close writes a final snapshot during
	// graceful shutdown. Optimized netlists are bit-identical warm or
	// cold — only hit/miss statistics shift. Setting CacheFile implies
	// SharedCache.
	CacheFile string
	// CacheSnapshotInterval is the period of the background snapshot
	// writer when CacheFile is set. Default 5m; negative disables the
	// periodic writer (Close still snapshots).
	CacheSnapshotInterval time.Duration
	// CacheLimit bounds the shared cache's entry count with per-shard
	// second-chance eviction (db.Cache.SetLimit). 0 means unbounded.
	CacheLimit int
	// Synth5 tunes the per-class budget of the on-demand 5-input
	// exact-synthesis store behind the K = 5 scripts (resyn5, size5,
	// TF5, …). The store is shared by every request of the server's
	// lifetime — classes are learned once — and, with CacheFile, persists
	// across restarts alongside the NPN cut-cache. In-flight ladders are
	// cancelled when their request's deadline fires. The zero value uses
	// the db package defaults (conflict-bounded, deterministic).
	Synth5 db.OnDemandOptions
	// DB supplies the minimum-MIG database; nil loads the embedded one.
	DB *db.DB
	// TraceDir, when set, writes one Chrome trace-event JSON file per
	// optimization request into this directory, named <request-id>.json
	// (the ID echoed in the X-Request-ID header), loadable in
	// chrome://tracing and Perfetto. Off by default; the per-span latency
	// histograms in /metrics are on either way.
	TraceDir string
	// SlowRequest logs one structured line (request ID, path, status,
	// elapsed) for every optimization request slower than this threshold.
	// Zero disables the slow log.
	SlowRequest time.Duration
	// Logger receives the server's structured log records (snapshot
	// lifecycle, slow requests, handler panics), every operational record
	// keyed by request_id where one exists. Nil means slog.Default() —
	// tests inject a handler here to assert on records.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 16 << 20
	}
	if c.MaxGates == 0 {
		c.MaxGates = 2_000_000
	}
	if c.DefaultTimeout == 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.MaxTimeout == 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.NumCPU()
	}
	if c.MaxWorkersPerRequest == 0 {
		c.MaxWorkersPerRequest = 4
	}
	if c.CacheFile != "" {
		c.SharedCache = true
		if c.CacheSnapshotInterval == 0 {
			c.CacheSnapshotInterval = 5 * time.Minute
		}
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// Server is the HTTP optimization service. Create one with New and mount
// it with Handler (it is itself an http.Handler). A Server is safe for
// concurrent use; all mutable state is the metrics counters, the
// concurrency semaphore, and (optionally) the shared NPN cache — each
// concurrency-safe on its own.
type Server struct {
	cfg     Config
	db      *db.DB
	cache   *db.Cache    // non-nil only with Config.SharedCache
	exact5  *db.OnDemand // always non-nil; shared by every request
	slots   chan struct{}
	mux     *http.ServeMux
	log     *slog.Logger
	metrics metrics

	// Cache-persistence lifecycle (nil/zero without Config.CacheFile).
	snapStop  chan struct{}
	snapDone  chan struct{}
	closeOnce sync.Once
}

// New builds a Server, loading the embedded minimum-MIG database unless
// cfg.DB overrides it.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	d := cfg.DB
	if d == nil {
		var err error
		if d, err = db.Load(); err != nil {
			return nil, err
		}
	}
	s := &Server{
		cfg:    cfg,
		db:     d,
		exact5: db.NewOnDemand(cfg.Synth5),
		slots:  make(chan struct{}, cfg.MaxConcurrent),
		log:    cfg.Logger,
	}
	if cfg.SharedCache {
		s.cache = db.NewCache()
		if cfg.CacheLimit > 0 {
			s.cache.SetLimit(cfg.CacheLimit)
		}
	}
	if cfg.CacheFile != "" {
		n, err := db.LoadSnapshotFile(cfg.CacheFile, d, s.cache, s.exact5)
		switch {
		case errors.Is(err, fs.ErrNotExist):
			s.log.Info("no cache snapshot, starting cold", "path", cfg.CacheFile)
		case err != nil:
			s.log.Warn("restoring cache snapshot failed, starting cold", "path", cfg.CacheFile, "err", err)
		default:
			s.metrics.cacheRestored.Store(int64(n))
			s.log.Info("warm-started cache from snapshot", "path", cfg.CacheFile, "entries", n)
		}
		s.snapStop = make(chan struct{})
		s.snapDone = make(chan struct{})
		go s.snapshotLoop()
	}
	s.metrics.start = time.Now()
	s.metrics.reqHist = obs.NewHistogram()
	s.metrics.passHist = obs.NewHistogram()
	s.metrics.ladderHist = obs.NewHistogram()
	s.metrics.slotWait = obs.NewHistogram()
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/optimize", s.handleOptimize)
	s.mux.HandleFunc("POST /v1/optimize/batch", s.handleBatch)
	s.mux.HandleFunc("GET /v1/scripts", s.handleScripts)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s }

// snapshotLoop re-snapshots the shared cache every CacheSnapshotInterval
// until Close. Snapshot failures are logged and counted, never fatal —
// the cache keeps serving and the next tick retries.
func (s *Server) snapshotLoop() {
	defer close(s.snapDone)
	if s.cfg.CacheSnapshotInterval < 0 {
		<-s.snapStop
		return
	}
	t := time.NewTicker(s.cfg.CacheSnapshotInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.snapshotCache()
		case <-s.snapStop:
			return
		}
	}
}

// snapshotCache writes one snapshot and updates the snapshot metrics.
// Failures degrade, never escalate: the in-memory cache keeps serving
// and the next tick retries. The consecutive-errors gauge is the alert
// signal separating a transient blip (spikes to 1, back to 0) from a
// persistently broken snapshot path (climbs monotonically — a restarted
// process would start cold).
func (s *Server) snapshotCache() error {
	s.metrics.snapshots.Add(1)
	n, err := db.SaveSnapshotFile(s.cfg.CacheFile, s.cache, s.exact5)
	if err != nil {
		s.metrics.snapshotErrors.Add(1)
		s.metrics.snapshotConsecErr.Add(1)
		s.log.Error("cache snapshot failed", "path", s.cfg.CacheFile, "err", err,
			"consecutive_errors", s.metrics.snapshotConsecErr.Load())
		return err
	}
	s.metrics.snapshotConsecErr.Store(0)
	s.metrics.snapshotEntries.Store(int64(n))
	return nil
}

// Close releases the server's background resources: it stops the
// periodic snapshot writer and, when Config.CacheFile is set, drains the
// cache to disk one final time so a restarted process warm-starts from
// the full working set (cmd/migserve calls this after the HTTP drain on
// SIGTERM). It returns the final snapshot's error, if any — a full disk
// at shutdown must not masquerade as a clean close. Close is idempotent
// and safe to call on a server without cache persistence, where it is a
// no-op.
func (s *Server) Close() error {
	var err error
	s.closeOnce.Do(func() {
		if s.snapStop == nil {
			return
		}
		close(s.snapStop)
		<-s.snapDone
		err = s.snapshotCache()
	})
	return err
}

// ServeHTTP dispatches to the /v1 API, /healthz and /metrics. Every
// request gets a generated ID (echoed in X-Request-ID) and a tracer with
// a "request" root span; optimization requests additionally feed the
// request-duration histogram, the optional per-request trace file, and
// the optional slow-request log. The tracer retains spans only when
// TraceDir asks for a file — the histogram path drops each span as it
// ends, so tracing-off requests accumulate no per-span state.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests.Add(1)
	id := obs.NewRequestID()
	w.Header().Set("X-Request-ID", id)
	tr := obs.New(obs.Options{Retain: s.cfg.TraceDir != "", OnEnd: s.observeSpan})
	ctx := obs.ContextWithTracer(r.Context(), tr)
	ctx, span := obs.Start(ctx, "request")
	span.SetStr("id", id)
	span.SetStr("path", r.URL.Path)
	rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	start := time.Now()
	s.dispatch(rec, r.WithContext(ctx), id)
	elapsed := time.Since(start)
	span.SetInt("status", int64(rec.status))
	span.End()
	if !isOptimizePath(r) {
		return
	}
	s.metrics.reqHist.Observe(elapsed)
	if dir := s.cfg.TraceDir; dir != "" {
		if err := tr.SaveTrace(filepath.Join(dir, id+".json")); err != nil {
			s.log.Error("writing trace file failed", "request_id", id, "err", err)
		}
	}
	if thr := s.cfg.SlowRequest; thr > 0 && elapsed >= thr {
		s.log.Warn("slow_request",
			"request_id", id,
			"path", r.URL.Path,
			"status", rec.status,
			"elapsed_ms", elapsed.Milliseconds(),
			"threshold_ms", thr.Milliseconds(),
		)
	}
}

// dispatch runs the mux with the process's last panic boundary under it:
// a handler panic — a bug the engine's per-job recovery did not own, or
// injected chaos — is counted, logged with the request ID and a stack,
// and answered with a 500 naming that ID, instead of tearing down the
// listener's goroutine (and with http.Server's default recovery, silently
// dropping the connection). The recovery lands before ServeHTTP's
// post-processing, so the request still feeds the duration histogram,
// trace file and slow log like any other error response.
func (s *Server) dispatch(rec *statusRecorder, r *http.Request, id string) {
	defer func() {
		rv := recover()
		if rv == nil {
			return
		}
		s.metrics.handlerPanics.Add(1)
		stack := debug.Stack()
		if len(stack) > 8<<10 {
			stack = stack[:8<<10]
		}
		s.log.Error("panic in handler",
			"request_id", id,
			"method", r.Method,
			"path", r.URL.Path,
			"panic", fmt.Sprint(rv),
			"stack", string(stack),
		)
		if !rec.wrote {
			s.writeError(rec, http.StatusInternalServerError,
				"internal error; the failure is logged under request id %s", id)
			return
		}
		// The response was already underway (headers gone, possibly
		// mid-stream); nothing coherent can be written, but the abort must
		// not escape the error counter just because the status said 200.
		if rec.status < 400 {
			s.metrics.errors.Add(1)
		}
	}()
	// Failpoint "server/handler": a panic spec here exercises the boundary
	// above exactly as a real handler bug would.
	if err := fault.Hit("server/handler"); err != nil {
		panic(err)
	}
	s.mux.ServeHTTP(rec, r)
}

// isOptimizePath reports whether the request does optimization work —
// the only requests worth a duration histogram sample or a trace file
// (healthz/metrics scrapes would drown the latency signal).
func isOptimizePath(r *http.Request) bool {
	return r.Method == http.MethodPost &&
		(r.URL.Path == "/v1/optimize" || r.URL.Path == "/v1/optimize/batch")
}

// observeSpan routes finished spans into the duration histograms; it is
// the tracer's OnEnd hook, called from whatever goroutine ends the span.
func (s *Server) observeSpan(sp *obs.Span) {
	switch sp.Name() {
	case "pass":
		s.metrics.passHist.Observe(sp.Duration())
	case "exact5.ladder":
		s.metrics.ladderHist.Observe(sp.Duration())
	}
}

// statusRecorder captures the response status for the request span and
// the slow log, and whether anything was written at all — the panic
// boundary can only substitute a 500 while the response is untouched.
// Flush must pass through — the streaming endpoints flush after every
// NDJSON line.
type statusRecorder struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.wrote = true
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	r.wrote = true
	return r.ResponseWriter.Write(p)
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// OptimizeRequest is the body of POST /v1/optimize and, embedded per job,
// of the batch endpoint. Netlist is required; everything else defaults.
type OptimizeRequest struct {
	// Name labels the job in responses and stream events.
	Name string `json:"name,omitempty"`
	// Netlist is the circuit, in the format named by Format.
	Netlist string `json:"netlist"`
	// Format is "bench" (default; the ISCAS BENCH dialect of
	// mig.ReadBENCH, extended with MAJ) or "mig" (mig.WriteText's native
	// netlist format). The response netlist uses the same format.
	Format string `json:"format,omitempty"`
	ScriptSpec
	// TimeoutMS bounds this request's optimization work in wall-clock
	// milliseconds; it is clamped to the server's MaxTimeout. Zero asks
	// for the server's DefaultTimeout.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Verify re-checks input/output equivalence before responding, in the
	// mode named by VerifyMode (default "sim+sat"). Costly on large
	// circuits; the check runs under the request's remaining deadline and
	// fails the job when the budget runs out.
	Verify bool `json:"verify,omitempty"`
	// VerifyMode picks the verification-ladder rung (implies Verify):
	// "sat" proves equivalence with a pure SAT miter, "sim" re-simulates
	// every executed pass and the final result word-parallel (refute-only:
	// a clean run sets SimClean, never Verified), and "sim+sat" — the
	// default when only Verify is set — runs the simulation prefilter and
	// harness first and proves sim-clean results with SAT.
	VerifyMode string `json:"verify_mode,omitempty"`
	// Stream switches the response to application/x-ndjson: one "pass"
	// event per executed pass as it happens, then one "result" event.
	Stream bool `json:"stream,omitempty"`
}

// ScriptSpec selects the optimization pipeline of a request.
type ScriptSpec struct {
	// Script names a preset ("resyn", "size", "depth", "quick", or any
	// single pass name). Default "resyn". Ignored when Passes is set.
	Script string `json:"script,omitempty"`
	// Passes builds a custom script from pass names ("TF", "T", "TFD",
	// "TD", "BF", "depthopt"), run in order to convergence.
	Passes []string `json:"passes,omitempty"`
	// MaxIterations caps the script rounds (default: the engine's 10).
	MaxIterations int `json:"max_iterations,omitempty"`
	// Workers asks for intra-graph rewrite parallelism; clamped to the
	// server's MaxWorkersPerRequest. Results are bit-identical at any
	// value.
	Workers int `json:"workers,omitempty"`
	// Extract upgrades every top-down rewrite pass of the script to
	// choice-aware extraction: candidate menus per cut, one globally
	// selected cover, never worse than the greedy pass it replaces.
	// Equivalent to picking an "-x" preset (e.g. "resyn-x") by name.
	Extract bool `json:"extract,omitempty"`
	// ExtractObjective selects the extraction objective when Extract is
	// set: "size" (default) or "depth".
	ExtractObjective string `json:"extract_objective,omitempty"`
}

// BatchRequest is the body of POST /v1/optimize/batch: many netlists
// optimized concurrently under one script and one shared deadline.
type BatchRequest struct {
	Jobs []BatchJobRequest `json:"jobs"`
	ScriptSpec
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	Verify    bool  `json:"verify,omitempty"`
	// VerifyMode is the verification-ladder rung; see OptimizeRequest.
	VerifyMode string `json:"verify_mode,omitempty"`
	Stream     bool   `json:"stream,omitempty"`
}

// verifyMode resolves the request's verification mode: VerifyMode wins,
// a bare Verify=true means the full "sim+sat" ladder, and anything
// unrecognized is a client error.
func (r *BatchRequest) verifyMode() (string, error) {
	switch r.VerifyMode {
	case "":
		if r.Verify {
			return "sim+sat", nil
		}
		return "", nil
	case "sat", "sim", "sim+sat":
		return r.VerifyMode, nil
	}
	return "", fmt.Errorf(`unknown verify_mode %q (want "sat", "sim" or "sim+sat")`, r.VerifyMode)
}

// BatchJobRequest is one netlist of a batch request.
type BatchJobRequest struct {
	Name    string `json:"name,omitempty"`
	Netlist string `json:"netlist"`
	Format  string `json:"format,omitempty"`
}

// OptimizeResponse is the result of one optimization job: the optimized
// netlist (same format as the input) and the full per-pass statistics.
type OptimizeResponse struct {
	Name    string               `json:"name,omitempty"`
	Netlist string               `json:"netlist,omitempty"`
	Stats   engine.PipelineStats `json:"stats"`
	// Verified reports a SAT-proven equivalence check; only present when
	// the request asked for verification and the result was proven
	// (verify_mode "sat" or "sim+sat").
	Verified *bool `json:"verified,omitempty"`
	// SimClean reports a refute-only simulation check that found no
	// difference (verify_mode "sim"): evidence, not proof — the SAT rung
	// never ran, so Verified stays absent.
	SimClean *bool `json:"sim_clean,omitempty"`
	// Error is the per-job failure. Jobs fail independently once
	// optimization starts (an engine error on one job leaves the others'
	// results intact); request validation is fail-fast instead — any
	// unparsable or oversized netlist rejects the whole batch with a
	// 4xx before optimization begins.
	Error string `json:"error,omitempty"`
}

// BatchResponse is the body of a non-streaming batch response. Results
// are in job order regardless of scheduling.
type BatchResponse struct {
	Script    string             `json:"script"`
	Results   []OptimizeResponse `json:"results"`
	ElapsedNS time.Duration      `json:"elapsed_ns"`
}

// StreamEvent is one line of an application/x-ndjson streaming response.
// Event is "pass" (Job + Pass set), "result" (Job + Result set), or
// "error" (Error set; the stream ends after it).
type StreamEvent struct {
	Event  string            `json:"event"`
	Job    string            `json:"job,omitempty"`
	Pass   *engine.PassStats `json:"pass,omitempty"`
	Result *OptimizeResponse `json:"result,omitempty"`
	Error  string            `json:"error,omitempty"`
}

// ScriptInfo describes one preset script for GET /v1/scripts.
type ScriptInfo struct {
	Name   string   `json:"name"`
	Passes []string `json:"passes"`
}

// errorResponse is the JSON body of every non-2xx response.
type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) writeError(w http.ResponseWriter, status int, format string, args ...any) {
	s.metrics.errors.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorResponse{Error: fmt.Sprintf(format, args...)})
}

// decode reads the JSON request body under the server's byte cap,
// translating the cap violation to 413 and malformed JSON to 400. It
// reports whether decoding succeeded; on failure the response is written.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, into any) bool {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	if err := dec.Decode(into); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds the %d-byte limit", tooLarge.Limit)
			return false
		}
		s.writeError(w, http.StatusBadRequest, "malformed JSON request: %v", err)
		return false
	}
	return true
}

// parseNetlist parses one job's netlist and enforces the gate cap.
func (s *Server) parseNetlist(netlist, format string) (*mig.MIG, error) {
	if strings.TrimSpace(netlist) == "" {
		return nil, fmt.Errorf("empty netlist")
	}
	var (
		m   *mig.MIG
		err error
	)
	switch format {
	case "", "bench":
		m, err = mig.ReadBENCH(strings.NewReader(netlist))
	case "mig":
		m, err = mig.ReadText(strings.NewReader(netlist))
	default:
		return nil, fmt.Errorf("unknown netlist format %q (want \"bench\" or \"mig\")", format)
	}
	if err != nil {
		return nil, err
	}
	if s.cfg.MaxGates >= 0 && m.NumGates() > s.cfg.MaxGates {
		return nil, errTooLarge{gates: m.NumGates(), limit: s.cfg.MaxGates}
	}
	return m, nil
}

// errTooLarge marks a parsed-netlist size violation so the handler can
// map it to 413 instead of 400.
type errTooLarge struct{ gates, limit int }

func (e errTooLarge) Error() string {
	return fmt.Sprintf("netlist has %d gates, exceeding the %d-gate limit", e.gates, e.limit)
}

// writeNetlist renders m in the request's format.
func writeNetlist(m *mig.MIG, format string) (string, error) {
	var b strings.Builder
	var err error
	switch format {
	case "", "bench":
		err = m.WriteBENCH(&b)
	case "mig":
		err = m.WriteText(&b)
	default:
		err = fmt.Errorf("unknown netlist format %q", format)
	}
	return b.String(), err
}

// pipeline builds the request's pipeline with server-side clamps applied.
func (s *Server) pipeline(spec ScriptSpec) (*engine.Pipeline, error) {
	var (
		p   *engine.Pipeline
		err error
	)
	if len(spec.Passes) > 0 {
		p, err = engine.NewScript("custom", spec.Passes...)
	} else {
		script := spec.Script
		if script == "" {
			script = "resyn"
		}
		p, err = engine.Preset(script)
	}
	if err != nil {
		return nil, err
	}
	p.DB = s.db
	p.Cache = s.cache   // nil without SharedCache: private per-run caches
	p.Exact5 = s.exact5 // always shared: 5-input classes are learned once
	if spec.MaxIterations > 0 {
		// Only override when the client asked: presets like "quick" bake
		// in their own iteration caps, and zero must not erase them.
		p.MaxIterations = spec.MaxIterations
	}
	workers := spec.Workers
	if workers < 0 {
		// A negative request is "no preference", not "minus three
		// workers": normalize before the upper clamp so the engine never
		// sees a nonsense budget.
		workers = 0
	}
	if limit := s.cfg.MaxWorkersPerRequest; limit > 0 && workers > limit {
		workers = limit
	}
	p.Workers = workers
	switch spec.ExtractObjective {
	case "":
	case "size":
	case "depth":
		p.ExtractObjective = engine.ObjectiveDepth
	default:
		return nil, fmt.Errorf(`unknown extract_objective %q (want "size" or "depth")`, spec.ExtractObjective)
	}
	if spec.Extract || spec.ExtractObjective != "" {
		p.Extract = true
	}
	return p, nil
}

// deadline derives the request context: the client's timeout_ms clamped
// to MaxTimeout, or DefaultTimeout when unset.
func (s *Server) deadline(ctx context.Context, timeoutMS int64) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return context.WithTimeout(ctx, d)
}

// acquire claims a slot of the service-level pool, or fails when the
// request's deadline expires first.
func (s *Server) acquire(ctx context.Context) error {
	select {
	case s.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) release() { <-s.slots }

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	s.metrics.optimize.Add(1)
	var req OptimizeRequest
	if !s.decode(w, r, &req) {
		return
	}
	br := BatchRequest{
		Jobs:       []BatchJobRequest{{Name: req.Name, Netlist: req.Netlist, Format: req.Format}},
		ScriptSpec: req.ScriptSpec,
		TimeoutMS:  req.TimeoutMS,
		Verify:     req.Verify,
		VerifyMode: req.VerifyMode,
		Stream:     req.Stream,
	}
	s.run(w, r, br, false)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.metrics.batch.Add(1)
	var req BatchRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Jobs) == 0 {
		s.writeError(w, http.StatusBadRequest, "batch request has no jobs")
		return
	}
	s.run(w, r, req, true)
}

// run executes a validated request. Both endpoints share it: a single
// optimize is a batch of one whose response is unwrapped (batch=false).
func (s *Server) run(w http.ResponseWriter, r *http.Request, req BatchRequest, batch bool) {
	rctx := r.Context()
	_, parseSpan := obs.Start(rctx, "parse")
	defer parseSpan.End()
	p, err := s.pipeline(req.ScriptSpec)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	vmode, err := req.verifyMode()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if vmode == "sim" || vmode == "sim+sat" {
		// The differential harness re-checks every executed pass against
		// its input graph; an offending pass fails its job with the pass
		// name and counterexample in-band.
		p.PassCheck = diff.New(diff.Options{}).PassCheck
	}
	jobs := make([]engine.Job, len(req.Jobs))
	for i, j := range req.Jobs {
		m, err := s.parseNetlist(j.Netlist, j.Format)
		if err != nil {
			status := http.StatusBadRequest
			var tooLarge errTooLarge
			if errors.As(err, &tooLarge) {
				status = http.StatusRequestEntityTooLarge
			}
			s.writeError(w, status, "job %d (%s): %v", i, jobName(j, i, batch), err)
			return
		}
		jobs[i] = engine.Job{Name: jobName(j, i, batch), M: m}
	}
	parseSpan.SetInt("jobs", int64(len(jobs)))
	parseSpan.End()

	ctx, cancel := s.deadline(rctx, req.TimeoutMS)
	defer cancel()
	if s.shouldShed(ctx) {
		s.metrics.shed.Add(1)
		s.writeUnavailable(w, "server overloaded: the queue ahead of this request exceeds its deadline")
		return
	}
	_, waitSpan := obs.Start(ctx, "queue-wait")
	s.metrics.queueDepth.Add(1)
	waitStart := time.Now()
	err = s.acquire(ctx)
	s.metrics.queueDepth.Add(-1)
	s.metrics.slotWait.Observe(time.Since(waitStart))
	waitSpan.End()
	if err != nil {
		s.writeUnavailable(w, fmt.Sprintf(
			"no optimization slot became free before the request deadline: %v", err))
		return
	}
	defer s.release()
	s.metrics.inflight.Add(1)
	defer s.metrics.inflight.Add(-1)

	var stream *streamWriter
	opt := engine.BatchOptions{
		// The service pool already bounds concurrency across requests;
		// within one request, jobs may use all request slots… but keeping
		// one request on one slot keeps the pool's accounting honest, so
		// batch jobs of a single request run sequentially unless the
		// request asked for intra-graph workers.
		Workers: 1,
	}
	if req.Stream {
		stream = newStreamWriter(w)
		opt.Progress = func(job int, ps engine.PassStats) {
			stream.send(StreamEvent{Event: "pass", Job: jobs[job].Name, Pass: &ps})
		}
	}
	start := time.Now()
	octx, optSpan := obs.Start(ctx, "optimize")
	results, runErr := engine.RunBatch(octx, p, jobs, opt)
	optSpan.End()
	elapsed := time.Since(start)

	// The encode phase covers netlist rendering, the optional equivalence
	// check (its own "verify" child spans), and response serialization.
	ectx, encSpan := obs.Start(ctx, "encode")
	defer encSpan.End()
	resps := make([]OptimizeResponse, len(results))
	for i, res := range results {
		resps[i] = s.buildResponse(ectx, req, i, jobs[i].M, res)
	}
	s.metrics.observe(results)

	if runErr != nil && !req.Stream {
		// The whole batch hit the deadline (or the client went away).
		// Individual per-job errors are reported in-band; a batch-level
		// context error means no complete result set exists.
		status := http.StatusGatewayTimeout
		if errors.Is(runErr, context.Canceled) {
			status = 499 // client closed request (nginx convention)
		}
		s.writeError(w, status, "optimization aborted: %v", runErr)
		return
	}

	switch {
	case req.Stream:
		// In-stream error events bypass writeError (the 200 header is long
		// gone), so an erroring stream must feed the error counter itself
		// or streaming aborts become invisible to monitoring. The counter
		// tracks error *responses*, so a stream carrying any number of
		// error events counts once — same as its non-streaming twin.
		streamErrored := false
		for i := range resps {
			resp := &resps[i]
			if resp.Error != "" {
				streamErrored = true
				stream.send(StreamEvent{Event: "error", Job: resp.Name, Error: resp.Error})
				continue
			}
			stream.send(StreamEvent{Event: "result", Job: resp.Name, Result: resp})
		}
		if runErr != nil {
			streamErrored = true
			stream.send(StreamEvent{Event: "error", Error: runErr.Error()})
		}
		if streamErrored {
			s.metrics.errors.Add(1)
		} else {
			// A stream that ran to completion is a success response even
			// though it never passes through writeJSON: count it so the
			// responses/errors pair partitions every outcome.
			s.metrics.responses.Add(1)
		}
	case batch:
		s.writeJSON(w, http.StatusOK, BatchResponse{Script: p.Name, Results: resps, ElapsedNS: elapsed})
	default:
		resp := resps[0]
		if resp.Error != "" {
			status := http.StatusInternalServerError
			if errors.Is(results[0].Err, context.DeadlineExceeded) {
				status = http.StatusGatewayTimeout
			}
			s.writeError(w, status, "%s", resp.Error)
			return
		}
		s.writeJSON(w, http.StatusOK, resp)
	}
}

// shedMinSamples is how many completed requests the duration histogram
// must hold before the shed predictor trusts its median: below it, a few
// unlucky early samples could wrongly shed a healthy server.
const shedMinSamples = 8

// shouldShed is the admission-control watermark, evaluated before the
// request joins the slot queue: when the work already queued ahead of it
// (queue depth × the median request duration) cannot drain before this
// request's deadline, waiting would only burn a queue position to earn a
// 503 at the deadline anyway — reject early, while the client's retry
// budget is still worth something.
func (s *Server) shouldShed(ctx context.Context) bool {
	// Failpoint "server/shed": force the overload verdict so the 503 +
	// Retry-After + client-retry contract is testable without
	// manufacturing real load.
	if err := fault.Hit("server/shed"); err != nil {
		return true
	}
	deadline, ok := ctx.Deadline()
	if !ok {
		return false
	}
	depth := s.metrics.queueDepth.Load()
	if depth <= 0 || s.metrics.reqHist.Count() < shedMinSamples {
		return false
	}
	return time.Duration(depth)*s.metrics.reqHist.Quantile(0.5) > time.Until(deadline)
}

// writeUnavailable writes a 503 with the Retry-After hint every 503
// carries: the median recent slot wait (rounded up to whole seconds,
// clamped to [1s, 60s]) — the service's best estimate of when a retry
// will actually find capacity. The retry contract is documented in the
// README's HTTP API section; cmd/migpipe's client honors the hint.
func (s *Server) writeUnavailable(w http.ResponseWriter, msg string) {
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	s.writeError(w, http.StatusServiceUnavailable, "%s", msg)
}

func (s *Server) retryAfterSeconds() int {
	secs := int(math.Ceil(s.metrics.slotWait.Quantile(0.5).Seconds()))
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// buildResponse converts one engine result into its wire form, rendering
// the optimized netlist and running the optional equivalence check. The
// check is bounded by the request's remaining deadline — SAT equivalence
// on large circuits can dwarf the optimization itself, and the service's
// contract is that no request works past its deadline.
func (s *Server) buildResponse(ctx context.Context, req BatchRequest, i int, in *mig.MIG, res engine.Result) OptimizeResponse {
	resp := OptimizeResponse{Name: res.Name, Stats: res.Stats}
	if res.Err != nil {
		resp.Error = res.Err.Error()
		return resp
	}
	netlist, err := writeNetlist(res.M, req.Jobs[i].Format)
	if err != nil {
		resp.Error = err.Error()
		return resp
	}
	resp.Netlist = netlist
	if vmode, _ := req.verifyMode(); vmode != "" {
		_, vspan := obs.Start(ctx, "verify")
		defer vspan.End()
		vspan.SetStr("job", res.Name)
		vspan.SetStr("mode", vmode)
		opt := mig.EquivOptions{}
		switch vmode {
		case "sat":
			opt.SimPatterns = -1 // pure SAT miter, no prefilter
		case "sim":
			opt.NoSAT = true // refute-only: clean means SimClean, not Verified
		}
		if deadline, ok := ctx.Deadline(); ok {
			if opt.Timeout = time.Until(deadline); opt.Timeout <= 0 {
				resp.Error = "request deadline expired before the equivalence check could run"
				return resp
			}
		}
		eq, ce, st, err := mig.EquivalentOpt(in, res.M, opt)
		if err != nil {
			resp.Error = fmt.Sprintf("equivalence check failed to run: %v", err)
			return resp
		}
		if !eq {
			resp.Error = fmt.Sprintf("optimized netlist miscompares on input %v", ce)
			return resp
		}
		if st.Proven {
			resp.Verified = &eq
		} else {
			resp.SimClean = &eq
		}
	}
	return resp
}

func jobName(j BatchJobRequest, i int, batch bool) string {
	if j.Name != "" {
		return j.Name
	}
	if batch {
		return fmt.Sprintf("job%d", i)
	}
	return "job"
}

func (s *Server) handleScripts(w http.ResponseWriter, r *http.Request) {
	var infos []ScriptInfo
	for _, name := range engine.PresetNames() {
		p, err := engine.Preset(name)
		if err != nil {
			continue
		}
		passes := make([]string, len(p.Passes))
		for i, pass := range p.Passes {
			passes[i] = pass.Name()
		}
		infos = append(infos, ScriptInfo{Name: name, Passes: passes})
	}
	s.writeJSON(w, http.StatusOK, map[string][]ScriptInfo{"scripts": infos})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// writeJSON writes a 2xx JSON response and counts it, the success twin
// of writeError: every request outcome increments exactly one of
// responses_total / error_responses_total (the accounting-audit test
// pins this across all endpoints and failure modes).
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	s.metrics.responses.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// streamWriter serializes concurrent stream events onto one chunked
// response body, flushing after every line so clients see pass progress
// as it happens.
type streamWriter struct {
	mu    sync.Mutex
	w     http.ResponseWriter
	flush http.Flusher
	enc   *json.Encoder
}

func newStreamWriter(w http.ResponseWriter) *streamWriter {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Content-Type-Options", "nosniff")
	w.WriteHeader(http.StatusOK)
	sw := &streamWriter{w: w, enc: json.NewEncoder(w)}
	sw.flush, _ = w.(http.Flusher)
	return sw
}

func (sw *streamWriter) send(ev StreamEvent) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	sw.enc.Encode(ev)
	if sw.flush != nil {
		sw.flush.Flush()
	}
}
