package server

import (
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mighash/internal/engine"
	"mighash/internal/obs"
)

// presetStats is one preset script's rolling QoR aggregate: how many
// circuits it optimized, what it saved, and its runtime distribution.
// Counters are atomics and the histogram is internally synchronized, so
// observing a finished batch never takes the registry lock.
type presetStats struct {
	jobs     atomic.Int64
	failed   atomic.Int64
	gatesIn  atomic.Int64
	gatesOut atomic.Int64
	hist     *obs.Histogram // per-job optimization runtime
}

// statsRegistry maps script name → presetStats, created lazily on first
// observation. The read-mostly lock only guards map shape: after a
// preset's first job, updates are lock-free on the RLock path.
type statsRegistry struct {
	mu sync.RWMutex
	m  map[string]*presetStats
}

func (sr *statsRegistry) get(script string) *presetStats {
	sr.mu.RLock()
	ps := sr.m[script]
	sr.mu.RUnlock()
	if ps != nil {
		return ps
	}
	sr.mu.Lock()
	defer sr.mu.Unlock()
	if ps = sr.m[script]; ps == nil {
		if sr.m == nil {
			sr.m = map[string]*presetStats{}
		}
		ps = &presetStats{hist: obs.NewHistogram()}
		sr.m[script] = ps
	}
	return ps
}

// snapshot returns the registry's presets in name order.
func (sr *statsRegistry) snapshot() []presetSnapshot {
	sr.mu.RLock()
	defer sr.mu.RUnlock()
	out := make([]presetSnapshot, 0, len(sr.m))
	for name, ps := range sr.m {
		out = append(out, presetSnapshot{name: name, stats: ps})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

type presetSnapshot struct {
	name  string
	stats *presetStats
}

// observePreset folds one finished batch into the per-preset registry.
// Jobs whose stats never got a script name (failed before the pipeline
// ran) are counted under the result's script when known and skipped
// otherwise — a crash must not mint an unnamed preset bucket.
func (sr *statsRegistry) observePreset(results []engine.Result) {
	for _, r := range results {
		script := r.Stats.Script
		if script == "" {
			continue
		}
		ps := sr.get(script)
		if r.Err != nil {
			ps.failed.Add(1)
			continue
		}
		ps.jobs.Add(1)
		ps.gatesIn.Add(int64(r.Stats.SizeBefore))
		ps.gatesOut.Add(int64(r.Stats.SizeAfter))
		ps.hist.Observe(r.Stats.Elapsed)
	}
}

// PresetStats is one preset's aggregate in the GET /v1/stats response.
type PresetStats struct {
	Script string `json:"script"`
	// Jobs/Failed count optimization jobs since process start.
	Jobs   int64 `json:"jobs"`
	Failed int64 `json:"failed,omitempty"`
	// GatesIn/GatesOut/GatesSaved sum completed jobs' sizes.
	GatesIn    int64 `json:"gates_in"`
	GatesOut   int64 `json:"gates_out"`
	GatesSaved int64 `json:"gates_saved"`
	// Runtime quantiles of completed jobs, from the rolling histogram
	// (conservative bucket-upper-bound estimates; see obs.Histogram).
	RuntimeP50MS int64 `json:"runtime_p50_ms"`
	RuntimeP99MS int64 `json:"runtime_p99_ms"`
}

// StatsResponse is the body of GET /v1/stats: the service-wide totals
// plus one rolling QoR aggregate per preset script served so far.
type StatsResponse struct {
	UptimeSeconds int64         `json:"uptime_seconds"`
	Requests      int64         `json:"requests"`
	JobsCompleted int64         `json:"jobs_completed"`
	JobsFailed    int64         `json:"jobs_failed"`
	Presets       []PresetStats `json:"presets"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := StatsResponse{
		UptimeSeconds: int64(time.Since(s.metrics.start).Seconds()),
		Requests:      s.metrics.requests.Load(),
		JobsCompleted: s.metrics.jobsOK.Load(),
		JobsFailed:    s.metrics.jobsFailed.Load(),
		Presets:       []PresetStats{},
	}
	for _, snap := range s.metrics.presets.snapshot() {
		ps := snap.stats
		resp.Presets = append(resp.Presets, PresetStats{
			Script:       snap.name,
			Jobs:         ps.jobs.Load(),
			Failed:       ps.failed.Load(),
			GatesIn:      ps.gatesIn.Load(),
			GatesOut:     ps.gatesOut.Load(),
			GatesSaved:   ps.gatesIn.Load() - ps.gatesOut.Load(),
			RuntimeP50MS: ps.hist.Quantile(0.5).Milliseconds(),
			RuntimeP99MS: ps.hist.Quantile(0.99).Milliseconds(),
		})
	}
	s.writeJSON(w, http.StatusOK, resp)
}
