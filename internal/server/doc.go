// Package server exposes the batch-optimization engine as an HTTP (JSON)
// service — the production front door of the repository: clients submit
// BENCH or MIG netlists and receive optimized netlists plus the full
// per-pass statistics of the functional-hashing pipeline that produced
// them.
//
// # Endpoints
//
//	POST /v1/optimize        optimize one netlist (OptimizeRequest)
//	POST /v1/optimize/batch  optimize many netlists concurrently (BatchRequest)
//	GET  /v1/scripts         list preset scripts and their pass composition
//	GET  /healthz            liveness probe
//	GET  /metrics            Prometheus-style counters
//
// Requests name a preset script ("resyn", "size", "depth", "quick",
// "resyn5", any single pass) or spell out a custom pass list — the
// listing at GET /v1/scripts is derived from the engine's preset
// registry, so it is always exactly what the optimizer accepts; the
// service runs the script to convergence with engine.RunBatch and
// returns results in job order.
// Setting "stream": true switches the response to application/x-ndjson:
// one "pass" event per executed pass as it completes (via the engine's
// progress callbacks), then a "result" event per job — so long-running
// jobs report their size/depth trajectory live.
//
// # Bounded work
//
// Every request runs under a deadline (client-requested, clamped to
// Config.MaxTimeout) that flows into the engine's context cancellation,
// so no request occupies the service longer than configured. Request
// bodies are capped by Config.MaxBodyBytes before parsing and parsed
// netlists by Config.MaxGates after, and a service-level slot pool
// (Config.MaxConcurrent) bounds the number of optimization jobs in
// flight — queued requests wait for a slot only until their deadline.
//
// # Concurrency contract
//
// One Server handles any number of concurrent requests. The minimum-MIG
// database is immutable and shared; per-request state (parsed graphs,
// pipelines, rewrite workspaces) is private to the request's goroutines;
// the only shared mutable state is the atomic metrics counters, the slot
// semaphore, the always-shared on-demand 5-input store (classes are
// learned once per server lifetime; request deadlines cancel in-flight
// ladders, and the migserve_exact5_* metrics report its traffic), and —
// only with Config.SharedCache — the sharded NPN cut-cache, each of
// which is concurrency-safe on its own.
//
// # Cache persistence
//
// Config.CacheFile makes the shared cache — and the learned 5-input
// store — survive restarts: New restores the combined snapshot (corrupt
// or missing files degrade to a cold state with a logged error), a
// background writer re-snapshots it every
// Config.CacheSnapshotInterval, and Close — which cmd/migserve calls
// after the SIGTERM HTTP drain — writes the final snapshot. Snapshots
// never change optimization results, only the hit/miss statistics;
// Config.CacheLimit bounds the cache with second-chance eviction. The
// persistence state is exported as migserve_npn_cache_entries,
// migserve_cache_restored_entries and migserve_cache_snapshot_* metrics.
package server
