package rewrite

// Microbenchmarks of the rewriting hot path (run with -benchmem):
//
//   - cut enumeration with the reusable arena workspace
//   - cone-function extraction, truth-table-carrying cuts vs the legacy
//     per-cut cone re-simulation they replaced
//   - the steady-state best-cut evaluation loop, which must allocate ~0 B/op
//   - structural hashing through the open-addressing strash
//   - whole passes, serial vs FFR-parallel
//
// plus the determinism test for parallel rewriting: any worker count must
// produce a bit-identical MIG (checked under -race in CI).

import (
	"bytes"
	"math/rand"
	"testing"

	"mighash/internal/circuits"
	"mighash/internal/cut"
	"mighash/internal/db"
	"mighash/internal/mig"
)

// benchGraph returns the Max arithmetic benchmark (≈3.5k gates), a
// realistic post-strash netlist for hot-path measurements.
func benchGraph(tb testing.TB) *mig.MIG {
	tb.Helper()
	spec, ok := circuits.ByName("Max")
	if !ok {
		tb.Fatal("Max benchmark missing")
	}
	return spec.Build()
}

// newBenchRewriter assembles a pass state the way Run does, so the
// evaluation loop can be driven in isolation.
func newBenchRewriter(tb testing.TB, m *mig.MIG, opt Options) *rewriter {
	tb.Helper()
	opt = opt.withDefaults()
	ws := opt.Workspace
	if ws == nil {
		ws = NewWorkspace()
	}
	ws.prepare(m.NumNodes(), 1)
	r := &rewriter{
		m:         m,
		d:         loadDB(tb),
		opt:       opt,
		ws:        ws,
		cuts:      ws.cuts.Enumerate(m, cut.Options{K: 4, MaxCuts: opt.MaxCuts}),
		fo:        m.FanoutCounts(),
		out:       mig.New(m.NumPIs()),
		oldLevels: m.Levels(),
	}
	if opt.FFR {
		r.ffr = m.FFRRoots()
	}
	return r
}

// BenchmarkRewriteHotPathCutEnum measures arena-backed cut enumeration;
// after the first iteration warms the arena it allocates nothing.
func BenchmarkRewriteHotPathCutEnum(b *testing.B) {
	m := benchGraph(b)
	ws := cut.NewWorkspace()
	ws.Enumerate(m, cut.Options{K: 4, MaxCuts: 24})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws.Enumerate(m, cut.Options{K: 4, MaxCuts: 24})
	}
}

// BenchmarkRewriteHotPathConeTTLegacy is the cone-function extraction the
// seed performed once per candidate cut: a map-memoized re-simulation.
func BenchmarkRewriteHotPathConeTTLegacy(b *testing.B) {
	m := benchGraph(b)
	cuts := cut.NewWorkspace().Enumerate(m, cut.Options{K: 4, MaxCuts: 24})
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		for id := m.NumPIs() + 1; id < m.NumNodes(); id++ {
			for j := range cuts[id] {
				c := &cuts[id][j]
				sink += m.ConeTT(mig.MakeLit(mig.ID(id), false), c.Leaves()).Expand(4).Bits
			}
		}
	}
	_ = sink
}

// BenchmarkRewriteHotPathCutTT reads the same cone functions off the
// truth-table-carrying cuts — the replacement for the re-simulation above.
func BenchmarkRewriteHotPathCutTT(b *testing.B) {
	m := benchGraph(b)
	cuts := cut.NewWorkspace().Enumerate(m, cut.Options{K: 4, MaxCuts: 24})
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		for id := m.NumPIs() + 1; id < m.NumNodes(); id++ {
			for j := range cuts[id] {
				sink += uint64(cuts[id][j].TT)
			}
		}
	}
	_ = sink
}

// BenchmarkRewriteHotPathBestCutLoop drives the steady-state cut-
// evaluation loop — cone analysis, admissibility, NPN lookup, candidate
// selection — over every live gate. This is the loop the pass spends its
// time in; with the workspace warm and the cache populated it must report
// ~0 allocs/op.
func BenchmarkRewriteHotPathBestCutLoop(b *testing.B) {
	m := benchGraph(b)
	opt := TF
	opt.Cache = db.NewCache()
	r := newBenchRewriter(b, m, opt)
	st := &r.ws.eval[0]
	// Warm the NPN cache so iterations measure the steady state.
	for id := m.NumPIs() + 1; id < m.NumNodes(); id++ {
		r.bestCut(mig.ID(id), st)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for id := m.NumPIs() + 1; id < m.NumNodes(); id++ {
			r.bestCut(mig.ID(id), st)
		}
	}
}

// BenchmarkRewriteHotPathStrash rebuilds every gate of the graph through
// Maj — a pure structural-hashing workout (every call hits the table).
func BenchmarkRewriteHotPathStrash(b *testing.B) {
	m := benchGraph(b)
	dst := mig.New(m.NumPIs())
	sig := make([]mig.Lit, m.NumNodes())
	sig[0] = mig.Const0
	for i := 0; i < m.NumPIs(); i++ {
		sig[m.Input(i).ID()] = dst.Input(i)
	}
	at := func(l mig.Lit) mig.Lit { return sig[l.ID()].NotIf(l.Comp()) }
	build := func() {
		for id := m.NumPIs() + 1; id < m.NumNodes(); id++ {
			f := m.Fanin(mig.ID(id))
			sig[id] = dst.Maj(at(f[0]), at(f[1]), at(f[2]))
		}
	}
	build() // populate; subsequent rounds are pure lookups
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		build()
	}
}

// BenchmarkRewriteHotPathPassSerial and ...PassParallel measure one full
// TF pass end to end with a reused workspace, serial vs FFR-parallel.
func benchPass(b *testing.B, workers int) {
	m := benchGraph(b)
	d := loadDB(b)
	opt := TF
	opt.Cache = db.NewCache()
	opt.Workspace = NewWorkspace()
	opt.Workers = workers
	Run(m, d, opt) // warm workspace and cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(m, d, opt)
	}
}

func BenchmarkRewriteHotPathPassSerial(b *testing.B)   { benchPass(b, 1) }
func BenchmarkRewriteHotPathPassParallel(b *testing.B) { benchPass(b, 8) }

// TestBestCutLoopSteadyStateAllocs pins the acceptance criterion in a
// test: the steady-state cut-evaluation loop allocates nothing.
func TestBestCutLoopSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	m := randomMIG(rng, 10, 300, 3)
	opt := TF
	opt.Cache = db.NewCache()
	r := newBenchRewriter(t, m, opt)
	st := &r.ws.eval[0]
	for id := m.NumPIs() + 1; id < m.NumNodes(); id++ {
		r.bestCut(mig.ID(id), st) // warm cache and scratch
	}
	allocs := testing.AllocsPerRun(10, func() {
		for id := m.NumPIs() + 1; id < m.NumNodes(); id++ {
			r.bestCut(mig.ID(id), st)
		}
	})
	if allocs > 0 {
		t.Errorf("steady-state best-cut loop allocates %.1f objects/run, want 0", allocs)
	}
}

// writeText renders a graph for bit-exact comparison.
func writeText(tb testing.TB, m *mig.MIG) string {
	tb.Helper()
	var buf bytes.Buffer
	if err := m.WriteText(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.String()
}

// TestParallelRewriteDeterministic is the contract of the parallel
// rewriter: for every top-down variant, every worker count must produce a
// bit-identical optimized MIG (same node IDs, same fanins, same outputs),
// and that MIG must be equivalent to the input. CI runs this under -race,
// which also proves the evaluation phase is race-free.
func TestParallelRewriteDeterministic(t *testing.T) {
	d := loadDB(t)
	rng := rand.New(rand.NewSource(43))
	graphs := []*mig.MIG{
		randomMIG(rng, 10, 250, 3),
		randomMIG(rng, 14, 500, 5),
	}
	if spec, ok := circuits.ByName("Sine"); ok && !testing.Short() {
		graphs = append(graphs, spec.Build())
	}
	rngSim := rand.New(rand.NewSource(44))
	for gi, m := range graphs {
		for _, v := range []struct {
			name string
			opt  Options
		}{{"TF", TF}, {"T", T}, {"TFD", TFD}, {"TD", TD}} {
			var ref *mig.MIG
			var refText string
			for _, workers := range []int{1, 2, 8} {
				opt := v.opt
				opt.Cache = db.NewCache()
				opt.Workspace = NewWorkspace()
				opt.Workers = workers
				got, st := Run(m, d, opt)
				if workers == 1 {
					ref, refText = got, writeText(t, got)
					// Equivalence: exact SAT CEC on the small random
					// graphs, 64-pattern random simulation sweeps on the
					// large benchmark circuit (CEC at that size belongs
					// to the long-running verification flows).
					if m.NumNodes() < 2000 {
						if eq, ce, err := mig.Equivalent(m, got, 0); err != nil {
							t.Fatal(err)
						} else if !eq {
							t.Fatalf("graph %d %s: rewrite changed the function, counterexample %v",
								gi, v.name, ce)
						}
					} else {
						for round := 0; round < 16; round++ {
							in := make([]uint64, m.NumPIs())
							for i := range in {
								in[i] = rngSim.Uint64()
							}
							a, b := m.SimulateWords(in), got.SimulateWords(in)
							for i := range a {
								if a[i] != b[i] {
									t.Fatalf("graph %d %s: output %d miscompares under random patterns",
										gi, v.name, i)
								}
							}
						}
					}
					continue
				}
				if text := writeText(t, got); text != refText {
					t.Errorf("graph %d %s: %d workers produced a different MIG than 1 worker",
						gi, v.name, workers)
				}
				if got.Size() != ref.Size() || got.Depth() != ref.Depth() {
					t.Errorf("graph %d %s workers=%d: size/depth %d/%d, want %d/%d",
						gi, v.name, workers, got.Size(), got.Depth(), ref.Size(), ref.Depth())
				}
				_ = st
			}
		}
	}
}

// TestParallelRewriteSharedWorkspaceSequence reuses one workspace and one
// cache across a mixed sequence of serial and parallel passes, mimicking
// a pipeline run, and checks every result against a fresh-state run.
func TestParallelRewriteSharedWorkspaceSequence(t *testing.T) {
	d := loadDB(t)
	rng := rand.New(rand.NewSource(47))
	ws := NewWorkspace()
	cache := db.NewCache()
	for round := 0; round < 6; round++ {
		m := randomMIG(rng, 8+rng.Intn(6), 100+rng.Intn(200), 2)
		opt := TF
		opt.Workspace = ws
		opt.Cache = cache
		opt.Workers = 1 + rng.Intn(4)
		got, _ := Run(m, d, opt)
		want, _ := Run(m, d, TF)
		if writeText(t, got) != writeText(t, want) {
			t.Fatalf("round %d: workspace/cache reuse changed the result", round)
		}
	}
}
