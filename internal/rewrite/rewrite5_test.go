package rewrite

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"mighash/internal/db"
)

// variants5 are the K = 5 extensions under test.
var variants5 = []struct {
	name string
	opt  Options
}{
	{"TF5", TF5},
	{"T5", T5},
	{"TFD5", TFD5},
	{"TD5", TD5},
}

// store5 returns an on-demand store with a small deterministic budget so
// tests stay fast: classes past the budget simply resolve as misses,
// which soundness and determinism must tolerate anyway.
func store5() *db.OnDemand {
	return db.NewOnDemand(db.OnDemandOptions{MaxGates: 5, MaxConflicts: 2000})
}

// TestVariants5PreserveFunction is the K = 5 soundness property: every
// 5-wide variant must return an MIG computing the same functions,
// verified by exhaustive simulation.
func TestVariants5PreserveFunction(t *testing.T) {
	d := loadDB(t)
	rng := rand.New(rand.NewSource(19))
	s := store5()
	for round := 0; round < 8; round++ {
		pis := 5 + rng.Intn(2)
		m := randomMIG(rng, pis, 30+rng.Intn(60), 1+rng.Intn(3))
		want := m.Simulate()
		for _, v := range variants5 {
			opt := v.opt
			opt.Exact5 = s
			got, st := Run(m, d, opt)
			sim := got.Simulate()
			for i := range want {
				if sim[i] != want[i] {
					t.Fatalf("round %d %s: output %d computes %v, want %v", round, v.name, i, sim[i], want[i])
				}
			}
			if st.SizeAfter > st.SizeBefore {
				t.Errorf("round %d %s: size increased %d→%d", round, v.name, st.SizeBefore, st.SizeAfter)
			}
			if !strings.HasSuffix(st.Variant, "5") {
				t.Errorf("variant name %q lacks the 5 suffix", st.Variant)
			}
		}
	}
}

// TestVariants5NeverWorseThanK4: on the same graph with a shared store,
// the K = 5 pass must end at most as large as its K = 4 counterpart —
// every 4-wide replacement is still available to it.
func TestVariants5NeverWorseThanK4(t *testing.T) {
	d := loadDB(t)
	rng := rand.New(rand.NewSource(23))
	s := store5()
	for round := 0; round < 6; round++ {
		m := randomMIG(rng, 6+rng.Intn(3), 80+rng.Intn(80), 2)
		base, st4 := Run(m, d, TF)
		opt := TF5
		opt.Exact5 = s
		got, st5 := Run(m, d, opt)
		if st5.SizeAfter > st4.SizeAfter {
			t.Fatalf("round %d: K=5 ended at %d gates, K=4 at %d", round, got.Size(), base.Size())
		}
	}
}

// TestParallel5Deterministic pins the FFR-parallel commit protocol at
// K = 5: any worker count must produce a bit-identical graph. The store
// is shared across worker counts, mirroring production (a learned class
// serves every subsequent run); first-contact synthesis is itself
// deterministic, so a fresh store per worker count must agree too.
func TestParallel5Deterministic(t *testing.T) {
	d := loadDB(t)
	rng := rand.New(rand.NewSource(31))
	for round := 0; round < 3; round++ {
		m := randomMIG(rng, 8, 250+rng.Intn(150), 3)
		shared := store5()
		var want string
		for _, workers := range []int{1, 2, 4, 7} {
			opt := TF5
			opt.Exact5 = shared
			opt.Workers = workers
			got, _ := Run(m, d, opt)
			var b strings.Builder
			if err := got.WriteText(&b); err != nil {
				t.Fatal(err)
			}
			if want == "" {
				want = b.String()
			} else if b.String() != want {
				t.Fatalf("round %d: %d workers produced a different graph", round, workers)
			}
		}
		// Fresh store, serial run: the learned-database content must not
		// depend on scheduling either.
		opt := TF5
		opt.Exact5 = store5()
		got, _ := Run(m, d, opt)
		var b strings.Builder
		if err := got.WriteText(&b); err != nil {
			t.Fatal(err)
		}
		if b.String() != want {
			t.Fatalf("round %d: fresh store diverged from warm store", round)
		}
	}
}

// TestRewrite5CancelledContextStaysSound: a cancelled context must not
// break soundness — un-learned classes resolve as misses and the pass
// still returns a correct graph.
func TestRewrite5CancelledContextStaysSound(t *testing.T) {
	d := loadDB(t)
	rng := rand.New(rand.NewSource(37))
	m := randomMIG(rng, 6, 120, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt := TF5
	opt.Exact5 = store5()
	opt.Ctx = ctx
	got, _ := Run(m, d, opt)
	want, sim := m.Simulate(), got.Simulate()
	for i := range want {
		if sim[i] != want[i] {
			t.Fatalf("output %d computes %v, want %v", i, sim[i], want[i])
		}
	}
}
