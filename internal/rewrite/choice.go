package rewrite

import (
	"mighash/internal/db"
	"mighash/internal/extract"
	"mighash/internal/mig"
	"mighash/internal/obs"
)

// Choice-aware rewriting (Options.Extract). The greedy top-down pass
// commits the locally best cut of every node as it walks; here the
// evaluation phase instead records, per live gate, every admissible
// (cut, candidate) pair — the database candidates include the
// alternative, strictly shallower implementations each class carries —
// and internal/extract selects one implementation per needed gate
// minimizing a global size or depth objective. Because a choice graph
// prices sharing (a dependency needed by two selected choices is paid
// once), the extraction can prefer a locally neutral replacement that a
// greedy walk would never take.
//
// The pass also computes the greedy decision alongside ("the twin") from
// the same cut evaluations, commits both, and returns whichever scores
// better under the objective — so a choice-aware pass is never worse
// than its greedy counterpart on any input. Both the recording (a pure
// per-node function fanned out over fanout-free regions) and the
// extraction (deterministic passes over the finished graph) are
// independent of the worker count, keeping the output bit-identical at
// any parallelism.

// choiceRec is one recorded (cut, candidate) pair of a node: implement
// the node as rec.entry over rec.leaves (which alias the cut arena of
// the pass's workspace). cost is the candidate's effective gate price:
// its size minus the gates that already exist in the input graph
// outside the replaced cone (or simplify away on their leaf literals) —
// the commit's structural hashing merges those for free, which is
// precisely the sharing a greedy gain count cannot see.
type choiceRec struct {
	leaves []mig.ID
	entry  *db.Entry
	tr     transformRef
	cost   int32
}

// prepareChoices sizes the per-node menu slots, keeping each slot's
// backing array across passes.
func (w *Workspace) prepareChoices(n int) {
	if cap(w.choices) < n {
		grown := make([][]choiceRec, n)
		copy(grown, w.choices)
		w.choices = grown
	}
	w.choices = w.choices[:n]
	for i := range w.choices {
		w.choices[i] = w.choices[i][:0]
	}
}

// evalNode runs one node's evaluation under the current mode: the
// greedy best-cut memo, or choice recording (which computes the greedy
// twin's decision from the same cut loop).
func (r *rewriter) evalNode(v mig.ID, st *evalState) {
	if r.opt.Extract {
		r.recordChoices(v, st)
	} else if best, ok := r.bestCut(v, st); ok {
		r.ws.best[v] = best
	}
	r.ws.decided[v] = true
}

// recordChoices evaluates all admissible cuts of v once, recording
// every candidate with non-negative gain into the node's choice menu
// and — from the same evaluations — the exact decision bestCut would
// have made, so the greedy twin costs no second cut loop. The twin
// follows bestCut's policy to the letter (including the AllowZeroGain
// and DepthPreserve gates and the first-cut-wins tie-break) and is
// computed uncapped; the menu records zero-gain pairs regardless of
// AllowZeroGain — locally neutral choices are exactly the ones global
// sharing can turn profitable — and caps itself at Options.MaxChoices.
// Like bestCut, this is a pure function of v over the pass's read-only
// state, which is what the parallel evaluation phase relies on.
func (r *rewriter) recordChoices(v mig.ID, st *evalState) {
	recs := r.ws.choices[v][:0]
	var best candidateCut
	found := false
	for i := range r.cuts[v] {
		c := &r.cuts[v][i]
		if c.N == 1 && c.L[0] == v {
			continue // trivial cut: replaces nothing
		}
		leaves := c.Leaves()
		nodes, ok := r.coneAdmissible(v, leaves, st)
		if !ok {
			continue
		}
		e, tr := r.lookup(c, st)
		if e == nil {
			continue
		}
		// The greedy twin, replicating bestCut over the primary entry.
		gain := len(nodes) - e.Size()
		if gain >= 0 && !(gain == 0 && !r.opt.AllowZeroGain) &&
			!(r.opt.DepthPreserve && r.arrivalOf(e, tr, leaves) > r.oldLevels[v]) &&
			!(gain == 0 && r.arrivalOf(e, tr, leaves) >= r.oldLevels[v]) {
			cand := candidateCut{leaves: leaves, entry: e, tr: tr, gain: gain, depth: e.Depth}
			if !found || cand.gain > best.gain ||
				(cand.gain == best.gain && cand.depth < best.depth) {
				best, found = cand, true
			}
		}
		// The menu: every candidate implementation of the class, priced
		// at its effective cost. A candidate whose nominal size exceeds
		// the cone can still be admitted when enough of its gates already
		// exist outside the cone — greedy must skip those, but the
		// extractor may find they make the global cover cheaper.
		for ci := 0; ci < e.NumCandidates() && len(recs) < r.opt.MaxChoices; ci++ {
			cand := e.Candidate(ci)
			eff := r.effectiveCost(cand, tr, leaves, nodes)
			if len(nodes)-int(eff) < 0 {
				continue
			}
			if r.opt.DepthPreserve && r.arrivalOf(cand, tr, leaves) > r.oldLevels[v] {
				continue
			}
			recs = append(recs, choiceRec{leaves: leaves, entry: cand, tr: tr, cost: eff})
		}
	}
	if found {
		r.ws.best[v] = best
	}
	r.ws.choices[v] = recs
}

// effectiveCost prices cand's gates against the input graph: walking
// the entry bottom-up over its mapped leaf literals (the same mapping
// instantiate applies at commit), a gate that simplifies away or
// already exists as a node outside the replaced cone will be merged by
// structural hashing and costs nothing; only genuinely new gates — and
// every gate above the first unknown one, whose operands cannot be
// resolved — pay one gate each. The probe is read-only, so the parallel
// evaluation phase can share the graph.
func (r *rewriter) effectiveCost(cand *db.Entry, tr transformRef, leaves []mig.ID, cone []mig.ID) int32 {
	k := cand.K()
	var sig [64]mig.Lit
	var known [64]bool
	if 1+k+cand.Size() > len(sig) {
		return int32(cand.Size())
	}
	sig[0], known[0] = mig.Const0, true
	for j := 0; j < k; j++ {
		var leaf mig.ID
		if p := tr.perm[j]; p < len(leaves) {
			leaf = leaves[p]
		}
		sig[1+j] = mig.MakeLit(leaf, tr.flip>>uint(j)&1 == 1)
		known[1+j] = true
	}
	cost := int32(0)
	for l, gate := range cand.Gates {
		ok := known[gate[0].ID()] && known[gate[1].ID()] && known[gate[2].ID()]
		if ok {
			at := func(x mig.Lit) mig.Lit { return sig[x.ID()].NotIf(x.Comp()) }
			if res, found := r.m.FindMaj(at(gate[0]), at(gate[1]), at(gate[2])); found {
				// A hit inside the cone is no discount: the replacement
				// frees those nodes, so rebuilding one pays full price.
				inCone := false
				if r.m.IsGate(res.ID()) {
					for _, w := range cone {
						if w == res.ID() {
							inCone = true
							break
						}
					}
				}
				if !inCone {
					sig[1+k+l], known[1+k+l] = res, true
					continue
				}
			}
		}
		cost++
	}
	return cost
}

// depDelays maps a candidate's per-input leaf depths onto cut-leaf
// positions: entry input j is driven by leaves[tr.perm[j]], so the
// choice's output trails leaf position tr.perm[j] by LeafDepth[j]
// gates. Unused inputs (and constant-padded positions) contribute 0.
func depDelays(cand *db.Entry, tr transformRef, nLeaves int) [extract.MaxDeps]int8 {
	var d [extract.MaxDeps]int8
	for j := 0; j < cand.K(); j++ {
		ld := cand.LeafDepth[j]
		if ld < 0 || tr.perm[j] >= nLeaves {
			continue
		}
		if p := tr.perm[j]; int8(ld) > d[p] {
			d[p] = int8(ld)
		}
	}
	return d
}

// sigKey identifies what a menu entry will build: the database
// implementation plus the exact leaf literal feeding each of its inputs.
// Two records with equal keys instantiate bit-identical gates (the
// commit's structural hashing folds them onto one copy), regardless of
// which node they implement or with which output phase — so they share a
// duplicate-cone signature in the choice graph and the extractor can
// pay for the implementation once.
type sigKey struct {
	entry *db.Entry
	lits  [5]uint32 // per entry input: leaf ID and phase (2*id | flip)
}

// buildGraph assembles the recorded menus into a flat choice graph:
// per live gate, choice 0 keeps the node's original fanins (cost 1) and
// choices 1.. are its menu in recording order, so Selection.Pick maps
// back to ws.choices[v][pick-1]. The graph's arena is workspace-owned
// and reused across passes.
func (r *rewriter) buildGraph() *extract.Graph {
	m, ws := r.m, r.ws
	sigIDs := make(map[sigKey]int32)
	n := m.NumNodes()
	g := &ws.graph
	g.NumNodes = n
	if cap(g.Off) < n+1 {
		g.Off = make([]int32, 0, n+1)
	}
	g.Off = g.Off[:0]
	g.Off = append(g.Off, 0)
	g.Arena = g.Arena[:0]
	g.Outputs = g.Outputs[:0]
	for v := 0; v < n; v++ {
		id := mig.ID(v)
		if m.IsGate(id) && r.fo[v] > 0 {
			keep := extract.Choice{Cost: 1, Ref: -1}
			for _, ch := range m.Fanin(id) {
				d := ch.ID()
				dup := false
				for j := 0; j < int(keep.N); j++ {
					if keep.Deps[j] == d {
						dup = true
						break
					}
				}
				if dup {
					continue
				}
				keep.Deps[keep.N] = d
				keep.DepD[keep.N] = 1
				keep.N++
			}
			g.Arena = append(g.Arena, keep)
			for ri := range ws.choices[v] {
				rec := &ws.choices[v][ri]
				c := extract.Choice{
					Cost: rec.cost,
					Ref:  int32(ri),
					Sig:  sigOf(sigIDs, rec),
					N:    uint8(len(rec.leaves)),
					DepD: depDelays(rec.entry, rec.tr, len(rec.leaves)),
				}
				copy(c.Deps[:], rec.leaves)
				g.Arena = append(g.Arena, c)
			}
		}
		g.Off = append(g.Off, int32(len(g.Arena)))
	}
	for _, o := range m.Outputs() {
		g.Outputs = append(g.Outputs, o.ID())
	}
	g.FFRRoot = r.roots
	return g
}

// sigOf interns rec's signature: the duplicate-cone ID shared by every
// record that instantiates the same entry over the same leaf literals
// (mirroring instantiate, entry input j reads leaves[tr.perm[j]] with
// flip bit j; positions past the cut read constant zero). IDs are
// assigned in recording order by the serial graph build, so they are
// independent of the worker count.
func sigOf(ids map[sigKey]int32, rec *choiceRec) int32 {
	key := sigKey{entry: rec.entry}
	for j := 0; j < rec.entry.K(); j++ {
		var leaf mig.ID
		if p := rec.tr.perm[j]; p < len(rec.leaves) {
			leaf = rec.leaves[p]
		}
		key.lits[j] = uint32(leaf)<<1 | uint32(rec.tr.flip>>uint(j)&1)
	}
	id, ok := ids[key]
	if !ok {
		id = int32(len(ids) + 1)
		ids[key] = id
	}
	return id
}

// runChoice is the choice-aware counterpart of runTopDown: evaluate
// once (recording menus and the greedy twin's decisions), commit the
// twin, commit the extracted cover, and keep whichever result scores
// better under the extraction objective.
func (r *rewriter) runChoice(workers int) {
	// The menus need the database's alternative candidates; deriving
	// them is Once-guarded and shared process-wide.
	r.d.EnsureAlts()
	r.ws.prepareChoices(r.m.NumNodes())

	base := r.opt.Ctx
	ectx, espan := obs.Start(base, "rewrite.evaluate")
	espan.SetInt("workers", int64(workers))
	r.opt.Ctx = ectx
	r.evaluateAll(workers)
	espan.End()
	r.opt.Ctx = base

	// Greedy twin: every live gate is decided, so the commit phase of
	// runTopDown consumes the memo without evaluating anything.
	r.runTopDown(1)
	gRes := r.out.Compact()
	gRepl := r.replacements

	// Fresh output graph for the extraction commit.
	r.out = mig.New(r.m.NumPIs())
	r.levels = r.levels[:0]
	r.replacements = 0

	g := r.buildGraph()
	xctx, xspan := obs.Start(base, "rewrite.extract")
	r.opt.Ctx = xctx
	sel := extract.Select(g, extract.Options{Objective: r.opt.ExtractObjective})
	r.commitExtract(sel)
	xRes := r.out.Compact()
	r.opt.Ctx = base

	gSize, gDepth := gRes.Size(), gRes.Depth()
	xSize, xDepth := xRes.Size(), xRes.Depth()
	var xBetter bool
	if r.opt.ExtractObjective == extract.Depth {
		xBetter = xDepth < gDepth || (xDepth == gDepth && xSize < gSize)
	} else {
		xBetter = xSize < gSize || (xSize == gSize && xDepth < gDepth)
	}
	r.choiceCount = sel.Stats.Choices
	if xBetter {
		r.done = xRes
		r.extractSaved = gSize - xSize
	} else {
		r.done = gRes
		r.replacements = gRepl
	}
	xspan.SetInt("choices", int64(sel.Stats.Choices))
	xspan.SetInt("covered", int64(sel.Stats.Covered))
	xspan.SetInt("saved_gates", int64(r.extractSaved))
	xspan.End()
}

// commitExtract rebuilds the graph from the extraction's selection with
// the same explicit-stack walk as runTopDown: a node whose pick is a
// menu entry instantiates that candidate over its cut leaves, any other
// node keeps its fanins. The walk's demand closure is exactly the
// selection's need set, so every visited node has a valid pick.
func (r *rewriter) commitExtract(sel extract.Selection) {
	ws := r.ws
	res, known := ws.res, ws.known
	clear(known)
	res[0], known[0] = mig.Const0, true
	for i := 0; i < r.m.NumPIs(); i++ {
		id := r.m.Input(i).ID()
		res[id], known[id] = r.out.Input(i), true
	}
	stack := ws.stack[:0]
	for _, o := range r.m.Outputs() {
		if !known[o.ID()] {
			stack = append(stack, o.ID())
		}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			if known[v] {
				stack = stack[:len(stack)-1]
				continue
			}
			var rec *choiceRec
			if p := sel.Pick[v]; p > 0 {
				rec = &ws.choices[v][p-1]
			}
			ready := true
			if rec != nil {
				for i := len(rec.leaves) - 1; i >= 0; i-- {
					if !known[rec.leaves[i]] {
						stack = append(stack, rec.leaves[i])
						ready = false
					}
				}
				if !ready {
					continue
				}
				var leafSigs [5]mig.Lit
				for i, lf := range rec.leaves {
					leafSigs[i] = res[lf]
				}
				res[v] = r.instantiate(rec.entry, rec.tr, leafSigs[:len(rec.leaves)])
				r.replacements++
			} else {
				f := r.m.Fanin(v)
				for i := 2; i >= 0; i-- {
					if !known[f[i].ID()] {
						stack = append(stack, f[i].ID())
						ready = false
					}
				}
				if !ready {
					continue
				}
				res[v] = r.addMaj(
					res[f[0].ID()].NotIf(f[0].Comp()),
					res[f[1].ID()].NotIf(f[1].Comp()),
					res[f[2].ID()].NotIf(f[2].Comp()))
			}
			known[v] = true
			stack = stack[:len(stack)-1]
		}
		r.out.AddOutput(res[o.ID()].NotIf(o.Comp()))
	}
	ws.stack = stack[:0]
}
