package rewrite

import (
	"math/rand"
	"testing"

	"mighash/internal/db"
	"mighash/internal/mig"
	"mighash/internal/tt"
)

// variants lists the paper's five configurations by acronym.
var variants = []struct {
	name string
	opt  Options
}{
	{"TF", TF}, {"T", T}, {"TFD", TFD}, {"TD", TD}, {"BF", BF},
}

func loadDB(t testing.TB) *db.DB {
	t.Helper()
	d, err := db.Load()
	if err != nil {
		t.Fatalf("embedded database unavailable (run cmd/migdb): %v", err)
	}
	return d
}

// randomMIG builds a pseudo-random DAG with the given inputs, gate budget
// and outputs. Gates pick distinct random fanins among earlier signals, so
// the result is representative of post-strash netlists.
func randomMIG(rng *rand.Rand, pis, gates, pos int) *mig.MIG {
	m := mig.New(pis)
	sigs := []mig.Lit{mig.Const0}
	for i := 0; i < pis; i++ {
		sigs = append(sigs, m.Input(i))
	}
	for g := 0; g < gates; g++ {
		a := sigs[rng.Intn(len(sigs))].NotIf(rng.Intn(4) == 0)
		b := sigs[rng.Intn(len(sigs))].NotIf(rng.Intn(4) == 0)
		c := sigs[rng.Intn(len(sigs))].NotIf(rng.Intn(4) == 0)
		sigs = append(sigs, m.Maj(a, b, c))
	}
	for o := 0; o < pos; o++ {
		m.AddOutput(sigs[len(sigs)-1-rng.Intn(min(len(sigs), 8))].NotIf(rng.Intn(2) == 0))
	}
	return m
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestVariantsPreserveFunction is the core soundness property: every
// variant must return an MIG computing the same functions, verified by
// exhaustive simulation (n ≤ 6 inputs makes this exact, not sampled).
func TestVariantsPreserveFunction(t *testing.T) {
	d := loadDB(t)
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 12; round++ {
		pis := 4 + rng.Intn(3)
		m := randomMIG(rng, pis, 20+rng.Intn(60), 1+rng.Intn(4))
		want := m.Simulate()
		for _, v := range variants {
			got, st := Run(m, d, v.opt)
			sim := got.Simulate()
			for i := range want {
				if sim[i] != want[i] {
					t.Fatalf("round %d %s: output %d computes %v, want %v", round, v.name, i, sim[i], want[i])
				}
			}
			if st.SizeAfter > st.SizeBefore {
				t.Errorf("round %d %s: size increased %d→%d", round, v.name, st.SizeBefore, st.SizeAfter)
			}
		}
	}
}

// TestVariantsPreserveFunctionCEC re-checks soundness on wider graphs with
// the SAT-based equivalence checker, which scales past 6 inputs.
func TestVariantsPreserveFunctionCEC(t *testing.T) {
	d := loadDB(t)
	rng := rand.New(rand.NewSource(11))
	for round := 0; round < 4; round++ {
		m := randomMIG(rng, 10+rng.Intn(6), 150+rng.Intn(150), 3)
		for _, v := range variants {
			got, _ := Run(m, d, v.opt)
			eq, ce, err := mig.Equivalent(m, got, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !eq {
				t.Fatalf("round %d %s: rewrite changed the function, counterexample %v", round, v.name, ce)
			}
		}
	}
}

// naive4 builds a deliberately wasteful single-output MIG for a 4-variable
// function: a disjunction of minterm conjunctions.
func naive4(f tt.TT) *mig.MIG {
	m := mig.New(4)
	out := mig.Const0
	for j := uint(0); j < 16; j++ {
		if !f.Eval(j) {
			continue
		}
		term := mig.Const1
		for i := 0; i < 4; i++ {
			term = m.And(term, m.Input(i).NotIf(j>>uint(i)&1 == 0))
		}
		out = m.Or(out, term)
	}
	m.AddOutput(out)
	return m
}

// TestTopDownReachesOptimumOnSingleCone: with a single output whose
// 4-input cut covers the whole graph, Algorithm 1 must recover the
// database optimum exactly — the defining property of functional hashing.
func TestTopDownReachesOptimumOnSingleCone(t *testing.T) {
	d := loadDB(t)
	rng := rand.New(rand.NewSource(3))
	for round := 0; round < 30; round++ {
		f := tt.New(4, uint64(rng.Intn(1<<16)))
		m := naive4(f)
		if m.Size() <= d.Size(f) {
			continue // trivially small function; nothing to test
		}
		got, st := Run(m, d, T)
		if want := d.Size(f); st.SizeAfter != want {
			t.Errorf("f=%v: top-down reached size %d, optimum %d", f, st.SizeAfter, want)
		}
		if sim := got.Simulate()[0]; sim != f {
			t.Fatalf("f=%v: optimized MIG computes %v", f, sim)
		}
	}
}

// TestFullAdderStaysMinimal: Fig. 1's full adder is already minimum; no
// variant may make it bigger.
func TestFullAdderStaysMinimal(t *testing.T) {
	d := loadDB(t)
	m := mig.New(3)
	s, c := m.FullAdder(m.Input(0), m.Input(1), m.Input(2))
	m.AddOutput(s)
	m.AddOutput(c)
	for _, v := range variants {
		_, st := Run(m, d, v.opt)
		if st.SizeAfter > 3 {
			t.Errorf("%s: full adder grew to %d gates", v.name, st.SizeAfter)
		}
	}
}

// TestDepthHeuristicRejectsDeepReplacement constructs a cone whose minimum
// MIG is deeper than the existing structure and checks that the
// depth-preserving variants leave it alone while plain T replaces it.
func TestDepthHeuristicRejectsDeepReplacement(t *testing.T) {
	d := loadDB(t)
	// Find a class whose optimal depth exceeds 2, then express it as a
	// depth-2 (but larger) structure if possible: instead, synthesize the
	// redundant form and compare TD against T on depth behaviour.
	rng := rand.New(rand.NewSource(19))
	sawDepthReject := false
	for round := 0; round < 60 && !sawDepthReject; round++ {
		f := tt.New(4, uint64(rng.Intn(1<<16)))
		m := naive4(f)
		_, stT := Run(m, d, T)
		_, stTD := Run(m, d, TD)
		if stTD.SizeAfter > stT.SizeAfter && stTD.DepthAfter <= stT.DepthAfter {
			sawDepthReject = true
		}
	}
	if !sawDepthReject {
		t.Log("depth heuristic never traded size for depth on this sample (acceptable but unusual)")
	}
}

// TestRewriteIdempotentOnOptimum: re-running a variant on its own output
// must not change sizes (fixpoint on a single pass's result may shrink
// further, but never grow).
func TestRewriteNeverGrowsOnSecondPass(t *testing.T) {
	d := loadDB(t)
	rng := rand.New(rand.NewSource(23))
	m := randomMIG(rng, 8, 120, 2)
	for _, v := range variants {
		once, st1 := Run(m, d, v.opt)
		_, st2 := Run(once, d, v.opt)
		if st2.SizeAfter > st1.SizeAfter {
			t.Errorf("%s: second pass grew %d→%d", v.name, st1.SizeAfter, st2.SizeAfter)
		}
	}
}

// TestBottomUpRequiresFFR documents the API contract.
func TestBottomUpRequiresFFR(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bottom-up without FFR did not panic")
		}
	}()
	d := loadDB(t)
	m := mig.New(3)
	m.AddOutput(m.Maj(m.Input(0), m.Input(1), m.Input(2)))
	Run(m, d, Options{BottomUp: true})
}

// TestVariantNames pins the acronym mapping used in reports.
func TestVariantNames(t *testing.T) {
	for _, v := range variants {
		if got := VariantName(v.opt); got != v.name {
			t.Errorf("VariantName = %q, want %q", got, v.name)
		}
	}
}

// TestStatsString smoke-checks the report formatting.
func TestStatsString(t *testing.T) {
	s := Stats{Variant: "TF", SizeBefore: 10, SizeAfter: 8, DepthBefore: 4, DepthAfter: 4, Replacements: 2}
	if got := s.String(); got == "" {
		t.Fatal("empty stats string")
	}
}
