package rewrite

import "mighash/internal/mig"

// candidate is one entry of a node's candidate list in Algorithm 2: a
// signal in the output graph implementing the node, its dynamic-
// programming size (gates attributed to it inside the current fanout-free
// region) and its depth (actual level in the output graph).
type candidate struct {
	lit   mig.Lit
	size  int
	depth int
}

// runBottomUp implements Algorithm 2, applied per fanout-free region.
// Nodes are visited in topological order; each node accumulates a capped
// list of candidate implementations — its own gate over the children's
// candidates plus every admissible cut replaced by its minimum MIG, over
// combinations of the leaves' candidates. At a region root the best
// candidate is settled so that consuming regions see a single
// implementation with its cost already paid (otherwise tree-structured DP
// sums would double-count shared logic).
func (r *rewriter) runBottomUp() {
	n := r.m.NumNodes()
	st := &r.ws.eval[0]
	cands := make([][]candidate, n)
	cands[0] = []candidate{{lit: mig.Const0}}
	for i := 0; i < r.m.NumPIs(); i++ {
		cands[r.m.Input(i).ID()] = []candidate{{lit: r.out.Input(i)}}
	}
	for id := r.m.NumPIs() + 1; id < n; id++ {
		if r.fo[id] == 0 {
			continue // dead gate
		}
		v := mig.ID(id)
		var list []candidate

		// Fallback: v's own majority gate over the children candidates.
		f := r.m.Fanin(v)
		r.eachCombo([]mig.ID{f[0].ID(), f[1].ID(), f[2].ID()}, cands, func(sel []candidate) {
			lit := r.addMaj(
				sel[0].lit.NotIf(f[0].Comp()),
				sel[1].lit.NotIf(f[1].Comp()),
				sel[2].lit.NotIf(f[2].Comp()))
			size := sel[0].size + sel[1].size + sel[2].size + 1
			list = r.insert(list, candidate{lit: lit, size: size, depth: r.level(lit)})
		})

		// Cut replacements (Algorithm 2 lines 5–10).
		for i := range r.cuts[v] {
			c := &r.cuts[v][i]
			if c.N == 1 && c.L[0] == v {
				continue
			}
			leaves := c.Leaves()
			if _, ok := r.coneAdmissible(v, leaves, st); !ok {
				continue
			}
			e, tr := r.lookup(c, st)
			if e == nil {
				continue
			}
			r.eachCombo(leaves, cands, func(sel []candidate) {
				var leafSigs [5]mig.Lit
				size := e.Size()
				for j := range sel {
					leafSigs[j] = sel[j].lit
					size += sel[j].size
				}
				lit := r.instantiate(e, tr, leafSigs[:len(sel)])
				r.replacements++
				list = r.insert(list, candidate{lit: lit, size: size, depth: r.level(lit)})
			})
		}

		if r.ffr != nil && r.ffr[v] == v && len(list) > 0 {
			// Region root: settle on the best candidate. Consumers pay
			// nothing extra for it, mirroring the FFR partitioning.
			list = []candidate{{lit: list[0].lit, size: 0, depth: list[0].depth}}
		}
		cands[v] = list
	}
	for _, o := range r.m.Outputs() {
		best := cands[o.ID()]
		if len(best) == 0 {
			panic("rewrite: no candidate for an output node")
		}
		r.out.AddOutput(best[0].lit.NotIf(o.Comp()))
	}
}

// eachCombo invokes fn on every combination of the nodes' candidates,
// each node contributing at most PerLeafCandidates entries. eachCombo
// mutates and reuses one workspace-owned selection slice; fn must not
// retain it.
func (r *rewriter) eachCombo(nodes []mig.ID, cands [][]candidate, fn func(sel []candidate)) {
	k := len(nodes)
	if cap(r.ws.sel) < k {
		r.ws.sel = make([]candidate, k)
	}
	sel := r.ws.sel[:k]
	var rec func(i int)
	rec = func(i int) {
		if i == k {
			fn(sel)
			return
		}
		list := cands[nodes[i]]
		limit := r.opt.PerLeafCandidates
		if limit > len(list) {
			limit = len(list)
		}
		for j := 0; j < limit; j++ {
			sel[i] = list[j]
			rec(i + 1)
		}
	}
	rec(0)
}

// insert adds c to the size-then-depth sorted candidate list, deduplicating
// by literal and capping at MaxCandidates.
func (r *rewriter) insert(list []candidate, c candidate) []candidate {
	for _, ex := range list {
		if ex.lit == c.lit {
			return list // the same signal is already a candidate
		}
	}
	pos := len(list)
	for pos > 0 && (c.size < list[pos-1].size ||
		(c.size == list[pos-1].size && c.depth < list[pos-1].depth)) {
		pos--
	}
	list = append(list, candidate{})
	copy(list[pos+1:], list[pos:])
	list[pos] = c
	if len(list) > r.opt.MaxCandidates {
		list = list[:r.opt.MaxCandidates]
	}
	return list
}
