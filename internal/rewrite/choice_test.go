package rewrite

import (
	"bytes"
	"math/rand"
	"testing"

	"mighash/internal/mig"
	"mighash/internal/tt"
)

// renderMIG serializes a graph for bit-identity comparison.
func renderMIG(t *testing.T, g *mig.MIG) string {
	t.Helper()
	var buf bytes.Buffer
	if err := g.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// choiceVariants pairs every choice-aware configuration with its greedy
// twin.
var choiceVariants = []struct {
	name string
	x, g Options
}{
	{"TFx", TFx, TF},
	{"Tx", Tx, T},
	{"Txd", Txd, T},
}

// TestChoicePreservesFunction: choice-aware passes are sound (exhaustive
// simulation) and never worse than their greedy twin under the
// extraction objective.
func TestChoicePreservesFunction(t *testing.T) {
	d := loadDB(t)
	rng := rand.New(rand.NewSource(19))
	for round := 0; round < 12; round++ {
		pis := 4 + rng.Intn(3)
		m := randomMIG(rng, pis, 20+rng.Intn(60), 1+rng.Intn(4))
		want := m.Simulate()
		for _, v := range choiceVariants {
			got, st := Run(m, d, v.x)
			sim := got.Simulate()
			for i := range want {
				if sim[i] != want[i] {
					t.Fatalf("round %d %s: output %d computes %v, want %v", round, v.name, i, sim[i], want[i])
				}
			}
			if st.Choices == 0 && st.SizeBefore > 0 {
				t.Errorf("round %d %s: no choices recorded for a %d-gate graph", round, v.name, st.SizeBefore)
			}
			_, gst := Run(m, d, v.g)
			if v.x.ExtractObjective == 0 && st.SizeAfter > gst.SizeAfter {
				t.Errorf("round %d %s: size %d worse than greedy twin's %d", round, v.name, st.SizeAfter, gst.SizeAfter)
			}
			if v.x.ExtractObjective != 0 && st.DepthAfter > gst.DepthAfter {
				t.Errorf("round %d %s: depth %d worse than greedy twin's %d", round, v.name, st.DepthAfter, gst.DepthAfter)
			}
		}
	}
}

// TestChoiceDeterministicAcrossWorkers: the extracted graph is
// bit-identical at any worker count — evaluation is a pure per-node
// function and both commits are serial.
func TestChoiceDeterministicAcrossWorkers(t *testing.T) {
	d := loadDB(t)
	rng := rand.New(rand.NewSource(23))
	for round := 0; round < 6; round++ {
		m := randomMIG(rng, 8+rng.Intn(4), 120+rng.Intn(120), 3)
		opt := TFx
		opt.Workers = 1
		base, bst := Run(m, d, opt)
		baseText := renderMIG(t, base)
		for _, workers := range []int{2, 4} {
			opt.Workers = workers
			got, st := Run(m, d, opt)
			if renderMIG(t, got) != baseText {
				t.Fatalf("round %d: %d workers produced a different graph than 1 worker", round, workers)
			}
			if st.Replacements != bst.Replacements || st.SizeAfter != bst.SizeAfter {
				t.Fatalf("round %d: %d workers: %d replacements size %d, 1 worker: %d size %d",
					round, workers, st.Replacements, st.SizeAfter, bst.Replacements, bst.SizeAfter)
			}
		}
	}
}

// TestChoiceRecoversOptimumOnSingleCone: the extraction must never lose
// the defining property of functional hashing — a whole-graph 4-input
// cone still collapses to the database optimum.
func TestChoiceRecoversOptimumOnSingleCone(t *testing.T) {
	d := loadDB(t)
	rng := rand.New(rand.NewSource(29))
	for round := 0; round < 20; round++ {
		f := tt.New(4, uint64(rng.Intn(1<<16)))
		m := naive4(f)
		if m.Size() <= d.Size(f) {
			continue
		}
		got, st := Run(m, d, Tx)
		if want := d.Size(f); st.SizeAfter != want {
			t.Errorf("f=%v: choice-aware pass reached size %d, optimum %d", f, st.SizeAfter, want)
		}
		if sim := got.Simulate()[0]; sim != f {
			t.Fatalf("f=%v: optimized MIG computes %v", f, sim)
		}
	}
}

// TestChoiceVariantNames pins the acronym scheme for the choice-aware
// variants.
func TestChoiceVariantNames(t *testing.T) {
	for _, tc := range []struct {
		opt  Options
		want string
	}{
		{TFx, "TFx"}, {Tx, "Tx"}, {TF5x, "TF5x"}, {T5x, "T5x"}, {Txd, "Txd"},
	} {
		if got := VariantName(tc.opt); got != tc.want {
			t.Errorf("VariantName = %q, want %q", got, tc.want)
		}
	}
}
