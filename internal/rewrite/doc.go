// Package rewrite implements the paper's primary contribution: MIG size
// optimization by functional hashing (Sec. IV). Every K-feasible cut of
// the graph is NPN-canonicalized and, when profitable, replaced by the
// minimum MIG of its class — precomputed for K = 4, learned on demand
// for K = 5 (Options.K; the TF5/T5/TFD5/TD5 variants).
//
// Both traversal orders of the paper are provided — the top-down greedy
// Algorithm 1 and the bottom-up dynamic-programming Algorithm 2 — together
// with the two orthogonal options discussed in Sec. IV: restricting the
// rewriting to fanout-free regions (Sec. IV-C) and the depth-preserving
// heuristic. The five variant acronyms of the experimental section (TF, T,
// TFD, TD, BF) are predefined.
//
// The hot path — cut enumeration, cone analysis and NPN lookup — runs
// allocation-free in the steady state: cuts carry their truth tables (so
// no cone is ever re-simulated), cone traversals use epoch-stamped scratch
// arrays, and all buffers live in a reusable Workspace. The top-down
// variants additionally evaluate best cuts for independent fanout-free
// regions in parallel (Options.Workers) and commit them serially in
// topological order, so results are bit-identical for any worker count.
//
// Role in the functional-hashing flow: this package is the flow. It
// consumes cuts from internal/cut, canonicalization + database lookups
// through internal/db (optionally memoized by a db.Cache), and builds the
// optimized graph through internal/mig's structural hashing. At K = 5,
// five-leaf cuts with genuine 5-variable support resolve through
// db.OnDemand instead: the first contact with a class synthesizes its
// minimum MIG (blocking just that lookup), Options.Ctx cancels in-flight
// ladders on request deadlines, and the budget is conflict-based so the
// learned database — hence the output graph — stays bit-identical at any
// worker count. The engine (internal/engine) composes Run calls into
// scripts; the HTTP service exposes those scripts over the network.
//
// Concurrency contract: Run never modifies the input graph, so concurrent
// Run calls on the same input are safe as long as each has a private
// Workspace (Options.Workspace; one is allocated when nil). The database
// is immutable and a db.Cache is concurrency-safe, so both may be shared
// freely across runs. Inside one run, Options.Workers > 1 parallelizes
// the evaluation phase over fanout-free regions — each worker owns an
// evalState slot of the Workspace and writes only the decision memos of
// nodes it claimed — while the commit phase stays serial, which is what
// makes the output deterministic.
package rewrite
