package rewrite

import (
	"cmp"
	"fmt"
	"runtime/debug"
	"slices"
	"sync"
	"sync/atomic"

	"mighash/internal/fault"
	"mighash/internal/mig"
)

// evaluateAll computes bestCut for every live gate on a bounded worker
// pool and memoizes the decisions in ws.best/ws.decided for the commit
// phase. Work is partitioned by fanout-free region: the cones of the
// nodes of one region overlap heavily, so handing a whole region to one
// worker keeps its epoch-stamped scratch arrays and the relevant graph
// segments cache-warm, and regions are independent — no two workers ever
// analyze the same cone.
//
// During this phase the rewriter's state is strictly read-only; each
// worker writes only its own evalState and the ws.best/ws.decided slots
// of the nodes it claimed, so the phase is race-free and — because
// bestCut is a pure per-node function — deterministic.
func (r *rewriter) evaluateAll(workers int) {
	ws := r.ws
	roots := r.ffr
	if roots == nil {
		// The whole-graph variants (T, TD) have no region restriction,
		// but the FFR structure still yields the scheduling partition.
		roots = r.m.FFRRoots()
	}
	r.roots = roots
	perm := ws.perm[:0]
	for id := r.m.NumPIs() + 1; id < r.m.NumNodes(); id++ {
		if r.fo[id] > 0 { // dead gates are never visited by the commit phase
			perm = append(perm, mig.ID(id))
		}
	}
	slices.SortFunc(perm, func(a, b mig.ID) int {
		if c := cmp.Compare(roots[a], roots[b]); c != 0 {
			return c
		}
		return cmp.Compare(a, b)
	})
	starts := ws.starts[:0]
	for i := range perm {
		if i == 0 || roots[perm[i]] != roots[perm[i-1]] {
			starts = append(starts, int32(i))
		}
	}
	starts = append(starts, int32(len(perm)))
	ws.perm, ws.starts = perm, starts

	regions := len(starts) - 1
	if workers > regions {
		workers = regions
	}
	if workers <= 1 {
		st := &ws.eval[0]
		for _, v := range perm {
			r.evalNode(v, st)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	// recover only catches same-goroutine panics, so a worker unwinding
	// here would kill the process no matter what the engine's job-level
	// boundary does. Capture the first panic (value and stack) and re-raise
	// it on the coordinating goroutine after every worker has parked, where
	// the caller's recover can turn it into a per-job error.
	var (
		panicOnce  sync.Once
		panicVal   any
		panicStack []byte
	)
	for w := 0; w < workers; w++ {
		st := &ws.eval[w]
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					panicOnce.Do(func() { panicVal, panicStack = rec, debug.Stack() })
				}
			}()
			for {
				k := int(next.Add(1)) - 1
				if k >= regions {
					return
				}
				// Failpoint "rewrite/ffr-region": chaos inside a worker
				// goroutine, one eligible hit per claimed region — the only
				// way to prove the cross-goroutine re-raise above.
				if err := fault.Hit("rewrite/ffr-region"); err != nil {
					panic(err)
				}
				for _, v := range perm[starts[k]:starts[k+1]] {
					r.evalNode(v, st)
				}
			}
		}()
	}
	wg.Wait()
	if panicVal != nil {
		panic(fmt.Sprintf("rewrite: evaluation worker panicked: %v\n%s", panicVal, panicStack))
	}
}
