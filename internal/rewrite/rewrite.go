package rewrite

import (
	"context"
	"fmt"
	"time"

	"mighash/internal/cut"
	"mighash/internal/db"
	"mighash/internal/extract"
	"mighash/internal/mig"
	"mighash/internal/obs"
	"mighash/internal/tt"
)

// Options selects and tunes a functional-hashing variant.
type Options struct {
	// BottomUp switches from the top-down greedy Algorithm 1 to the
	// bottom-up dynamic-programming Algorithm 2. Bottom-up rewriting
	// requires FFR (candidate lists are only sound inside a fanout-free
	// region, where intermediate results have a single consumer).
	BottomUp bool
	// FFR partitions the graph into fanout-free regions first and rewrites
	// each region in isolation (Sec. IV-C).
	FFR bool
	// DepthPreserve discards cuts whose replacement would increase the
	// arrival time of the root (the paper's depth heuristic; variants
	// TD/TFD). The check is arrival-accurate: each leaf's level plus the
	// matching leaf depth of the minimum MIG is compared against the
	// root's current level, which also catches the individual-path
	// enlargement the paper warns about.
	DepthPreserve bool
	// AllowZeroGain also applies replacements with zero size gain when
	// they locally reduce depth. Off in the paper's variants; used by the
	// ablation benchmarks.
	AllowZeroGain bool

	// Cache, when non-nil, memoizes the NPN canonicalization + database
	// lookup of every cut function through a concurrency-safe sharded map.
	// One cache can be shared across passes and across goroutines (the
	// engine's pipelines and batch runner do both); hits and misses of
	// this pass are reported in Stats.
	Cache *db.Cache

	// K selects the functional-hashing cut width: 4 (the paper's setting,
	// default) or 5. At K = 5 enumeration additionally yields five-leaf
	// cuts whose classes resolve through the on-demand exact-synthesis
	// store (Exact5) instead of the precomputed database; cuts of at most
	// four leaves keep using the 4-input path, so a K = 5 pass subsumes
	// the K = 4 one.
	K int
	// Exact5 supplies (and learns) the minimum MIGs of 5-input classes
	// when K = 5. Sharing one store across passes, runs, and batch
	// workers amortizes the per-class synthesis; a nil store makes Run
	// allocate a private one with default budgets. Ignored at K = 4.
	Exact5 *db.OnDemand
	// Ctx cancels in-flight exact synthesis (the only unbounded work a
	// pass can do): when it fires, un-learned 5-input classes resolve as
	// misses and the pass completes with what it has. The engine threads
	// each request's context through here so server deadlines abandon
	// running ladders. nil means context.Background().
	Ctx context.Context

	// Workers bounds intra-graph parallelism of the top-down variants:
	// best-cut evaluation is fanned out over independent fanout-free
	// regions on a worker pool, then committed serially in topological
	// order, so the optimized graph is bit-identical for every worker
	// count. 0 or 1 evaluates serially; bottom-up passes ignore it. With
	// a shared Cache the per-pass hit/miss split may vary between runs
	// (two workers can race to canonicalize the same function); the graph
	// never does.
	Workers int
	// Workspace, when non-nil, supplies the reusable scratch state (cut
	// arenas, cone-analysis stamps, decision memos) so repeated passes
	// stop allocating. A nil Workspace makes Run allocate a private one.
	// A Workspace must not be used by two concurrent Runs.
	Workspace *Workspace

	// MaxCuts caps the per-node cut sets (default 24).
	MaxCuts int
	// MaxCandidates caps the bottom-up candidate lists (default 8),
	// mirroring priority cuts in technology mapping.
	MaxCandidates int
	// PerLeafCandidates caps how many candidates of each cut leaf are
	// combined in Algorithm 2 line 7 (default 2).
	PerLeafCandidates int

	// Extract switches the top-down variants from greedy per-cut commits
	// to choice-aware extraction: evaluation records every profitable
	// (cut, candidate) pair — including the database's alternative
	// candidates per class — into a choice graph, internal/extract picks
	// a globally best cover, and the pass commits whichever of the
	// greedy and extracted results scores better, so an extraction pass
	// is never worse than its greedy twin. Ignored by bottom-up passes.
	Extract bool
	// ExtractObjective selects what the extraction minimizes (size by
	// default; extract.Depth trades gates for shorter critical paths).
	// Only read when Extract is set.
	ExtractObjective extract.Objective
	// MaxChoices caps the recorded (cut, candidate) pairs per node
	// (default 16). The greedy twin is computed uncapped, so tightening
	// the cap can only reduce the extraction's menu, never the
	// never-worse guarantee.
	MaxChoices int
}

// The paper's five experiment variants (Sec. V, Tables III and IV).
var (
	TF  = Options{FFR: true}
	T   = Options{}
	TFD = Options{FFR: true, DepthPreserve: true}
	TD  = Options{DepthPreserve: true}
	BF  = Options{BottomUp: true, FFR: true}
)

// The K = 5 extensions of the top-down variants (the bottom-up variant
// stays at the paper's width): same traversal, five-leaf cuts resolved
// through the on-demand store.
var (
	TF5  = Options{FFR: true, K: 5}
	T5   = Options{K: 5}
	TFD5 = Options{FFR: true, DepthPreserve: true, K: 5}
	TD5  = Options{DepthPreserve: true, K: 5}
)

// The choice-aware extensions: same cut evaluation as their greedy
// twins, but replacements are selected by global extraction over the
// full choice graph instead of cut by cut. Txd extracts under the depth
// objective.
var (
	TFx  = Options{FFR: true, Extract: true}
	Tx   = Options{Extract: true}
	TF5x = Options{FFR: true, K: 5, Extract: true}
	T5x  = Options{K: 5, Extract: true}
	Txd  = Options{Extract: true, ExtractObjective: extract.Depth}
)

// VariantName returns the paper's acronym for o — suffixed with "5" for
// the K = 5 extensions and "x" (or "xd" under the depth objective) for
// the choice-aware ones — or a descriptive string for non-paper
// configurations.
func VariantName(o Options) string {
	name := baseVariantName(o)
	if o.K == 5 {
		name += "5"
	}
	if o.Extract && !o.BottomUp {
		if o.ExtractObjective == extract.Depth {
			name += "xd"
		} else {
			name += "x"
		}
	}
	return name
}

func baseVariantName(o Options) string {
	switch {
	case o.BottomUp && o.FFR && !o.DepthPreserve:
		return "BF"
	case o.BottomUp:
		return "B?"
	case o.FFR && o.DepthPreserve:
		return "TFD"
	case o.FFR:
		return "TF"
	case o.DepthPreserve:
		return "TD"
	default:
		return "T"
	}
}

func (o Options) withDefaults() Options {
	if o.K == 0 {
		o.K = 4
	}
	if o.K != 4 && o.K != 5 {
		panic(fmt.Sprintf("rewrite: unsupported cut width %d (want 4 or 5)", o.K))
	}
	if o.Ctx == nil {
		o.Ctx = context.Background()
	}
	if o.MaxCuts == 0 {
		o.MaxCuts = 24
	}
	if o.MaxCandidates == 0 {
		o.MaxCandidates = 8
	}
	if o.PerLeafCandidates == 0 {
		o.PerLeafCandidates = 2
	}
	if o.MaxChoices == 0 {
		o.MaxChoices = 16
	}
	if o.BottomUp {
		o.Extract = false // candidate lists already explore tradeoffs per FFR
	}
	return o
}

// Stats reports one rewriting pass.
type Stats struct {
	Variant                 string
	SizeBefore, SizeAfter   int
	DepthBefore, DepthAfter int
	Replacements            int // cuts replaced by database MIGs
	// NPN cut-cache traffic of this pass (zero when Options.Cache is nil).
	CacheHits, CacheMisses int
	// Choice-aware extraction (zero unless Options.Extract ran): the
	// (cut, candidate) pairs recorded into the choice graph, and the
	// gates the extracted cover saved over the pass's greedy twin (0
	// when the twin won the comparison).
	Choices      int
	ExtractSaved int
	Elapsed      time.Duration
}

// CacheHitRate returns the fraction of this pass's database lookups
// served by the NPN cut-cache, or 0 when no cache was attached.
func (s Stats) CacheHitRate() float64 {
	if s.CacheHits+s.CacheMisses == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(s.CacheHits+s.CacheMisses)
}

func (s Stats) String() string {
	out := fmt.Sprintf("%s: size %d→%d, depth %d→%d, %d replacements, %v",
		s.Variant, s.SizeBefore, s.SizeAfter, s.DepthBefore, s.DepthAfter, s.Replacements, s.Elapsed)
	if s.CacheHits+s.CacheMisses > 0 {
		out += fmt.Sprintf(", cache %.0f%% of %d", 100*s.CacheHitRate(), s.CacheHits+s.CacheMisses)
	}
	if s.Choices > 0 {
		out += fmt.Sprintf(", %d choices (extract saved %d)", s.Choices, s.ExtractSaved)
	}
	return out
}

// Workspace owns every reusable buffer of a rewriting pass: the cut-set
// arena, the per-worker cone-analysis scratch, the best-cut decision memo
// and the commit-phase buffers. Reusing one Workspace across passes (the
// engine does this per pipeline run) makes the steady-state hot path
// allocation-free. A Workspace must not be shared by concurrent Runs;
// inside one Run, the parallel evaluation phase hands each worker its own
// evalState.
type Workspace struct {
	cuts    cut.Workspace
	eval    []evalState    // one per worker; eval[0] serves the serial paths
	best    []candidateCut // per-node best replacement (entry == nil: none)
	decided []bool         // per-node: best[v] is valid
	res     []mig.Lit      // commit phase: node implementations
	known   []bool         // commit phase: res[v] is valid
	stack   []mig.ID       // commit phase DFS stack
	perm    []mig.ID       // live gates grouped by FFR for the worker pool
	starts  []int32        // region boundaries into perm
	sig     []mig.Lit      // instantiate scratch
	sel     []candidate    // bottom-up combination scratch
	choices [][]choiceRec  // choice mode: per-node recorded menus
	graph   extract.Graph  // choice mode: arena reused across passes
}

// NewWorkspace returns an empty workspace; buffers are sized on first use.
func NewWorkspace() *Workspace { return &Workspace{} }

// evalState is the per-worker mutable state of best-cut evaluation.
type evalState struct {
	cone         *mig.Workspace
	hits, misses int
}

// prepare sizes the per-node arrays for an n-node graph, resets the
// decision memo and guarantees one evalState per worker.
func (w *Workspace) prepare(n, workers int) {
	if cap(w.best) < n {
		w.best = make([]candidateCut, n)
		w.decided = make([]bool, n)
		w.res = make([]mig.Lit, n)
		w.known = make([]bool, n)
	}
	w.best = w.best[:n]
	w.decided = w.decided[:n]
	w.res = w.res[:n]
	w.known = w.known[:n]
	clear(w.best)
	clear(w.decided)
	clear(w.known)
	for len(w.eval) < workers {
		w.eval = append(w.eval, evalState{cone: mig.NewWorkspace()})
	}
	for i := range w.eval {
		w.eval[i].hits, w.eval[i].misses = 0, 0
	}
}

// Run applies one functional-hashing pass over m and returns the optimized
// MIG (a fresh graph; m is unchanged). The database provides the minimum
// representations; db.MustLoad() supplies the embedded one.
func Run(m *mig.MIG, d *db.DB, opt Options) (*mig.MIG, Stats) {
	opt = opt.withDefaults()
	if opt.BottomUp && !opt.FFR {
		panic("rewrite: bottom-up rewriting requires fanout-free-region partitioning")
	}
	start := time.Now()
	ws := opt.Workspace
	if ws == nil {
		ws = NewWorkspace()
	}
	workers := opt.Workers
	if workers < 1 || opt.BottomUp {
		workers = 1
	}
	if opt.K == 5 && opt.Exact5 == nil {
		opt.Exact5 = db.NewOnDemand(db.OnDemandOptions{})
	}
	ws.prepare(m.NumNodes(), workers)
	r := &rewriter{
		m:         m,
		d:         d,
		opt:       opt,
		ws:        ws,
		cuts:      ws.cuts.Enumerate(m, cut.Options{K: opt.K, MaxCuts: opt.MaxCuts}),
		fo:        m.FanoutCounts(),
		out:       mig.New(m.NumPIs()),
		oldLevels: m.Levels(),
	}
	if opt.FFR {
		r.ffr = m.FFRRoots()
	}
	if opt.BottomUp {
		// Bottom-up is evaluate-and-commit interleaved per FFR; it gets a
		// single commit-phase span (ladders of its K = 5 variants nest here).
		cctx, cspan := obs.Start(r.opt.Ctx, "rewrite.commit")
		r.opt.Ctx = cctx
		r.runBottomUp()
		cspan.End()
	} else if opt.Extract {
		r.runChoice(workers)
	} else {
		r.runTopDown(workers)
	}
	res := r.done
	if res == nil {
		res = r.out.Compact()
	}
	for i := range ws.eval {
		r.cacheHits += ws.eval[i].hits
		r.cacheMisses += ws.eval[i].misses
	}
	// Every Stats metric is computed exactly once: the input depth falls
	// out of the levels the depth heuristic already needed, the input size
	// out of one workspace-backed sweep, and the result size/depth out of
	// one pass each over the compacted graph.
	depthBefore := 0
	for _, o := range m.Outputs() {
		if l := r.oldLevels[o.ID()]; l > depthBefore {
			depthBefore = l
		}
	}
	st := Stats{
		Variant:      VariantName(opt),
		SizeBefore:   m.SizeWS(ws.eval[0].cone),
		SizeAfter:    res.Size(),
		DepthBefore:  depthBefore,
		DepthAfter:   res.Depth(),
		Replacements: r.replacements,
		CacheHits:    r.cacheHits,
		CacheMisses:  r.cacheMisses,
		Choices:      r.choiceCount,
		ExtractSaved: r.extractSaved,
		Elapsed:      time.Since(start),
	}
	return res, st
}

// rewriter carries the shared state of one pass. During the parallel
// evaluation phase everything here is read-only; only the per-worker
// evalStates and distinct ws.best/ws.decided slots are written.
type rewriter struct {
	m    *mig.MIG
	d    *db.DB
	opt  Options
	ws   *Workspace
	cuts [][]cut.Cut
	fo   []int
	ffr  []mig.ID // FFR root per node (nil when not partitioning)
	out  *mig.MIG

	oldLevels []int // levels in the input graph, for the depth heuristic

	levels       []int // level of every node in out (maintained on creation)
	replacements int

	cacheHits, cacheMisses int // this pass's NPN cut-cache traffic

	roots []mig.ID // scheduling partition of the last evaluateAll
	// Choice mode (Options.Extract): the chosen compacted result — Run
	// falls back to compacting r.out when nil — and its stats.
	done         *mig.MIG
	choiceCount  int
	extractSaved int
}

// addMaj creates a majority gate in the output graph, keeping the level
// array in sync so candidate depths are available without re-traversal.
func (r *rewriter) addMaj(a, b, c mig.Lit) mig.Lit {
	l := r.out.Maj(a, b, c)
	r.growLevels()
	return l
}

func (r *rewriter) growLevels() {
	for len(r.levels) < r.out.NumNodes() {
		id := mig.ID(len(r.levels))
		lvl := 0
		if r.out.IsGate(id) {
			for _, ch := range r.out.Fanin(id) {
				if l := r.levels[ch.ID()]; l >= lvl {
					lvl = l + 1
				}
			}
		}
		r.levels = append(r.levels, lvl)
	}
}

func (r *rewriter) level(l mig.Lit) int {
	r.growLevels()
	return r.levels[l.ID()]
}

// candidateCut is one admissible replacement for a node. leaves aliases
// the cut-set arena of the pass's workspace.
type candidateCut struct {
	leaves []mig.ID
	entry  *db.Entry
	tr     transformRef
	gain   int
	depth  int // structural depth of the replacement
}

// transformRef avoids importing npn here twice; see lookup.
type transformRef struct {
	perm   [5]int
	flip   uint8
	negOut bool
}

// lookup resolves the database entry for the cut's function plus
// instantiation data, or nil when the class is absent. The function comes
// straight off the cut — maintained incrementally during enumeration — so
// no cone is re-simulated. Cuts of at most four leaves resolve through
// the precomputed 4-input database (memoized by Options.Cache); at
// K = 5, five-leaf cuts resolve through — and are learned by — the
// on-demand exact-synthesis store.
func (r *rewriter) lookup(c *cut.Cut, st *evalState) (*db.Entry, transformRef) {
	if c.N == 5 {
		return r.lookup5(c)
	}
	f := tt.TT{Bits: uint64(uint16(c.TT)), N: 4}
	e, t, ok, hit := r.d.LookupCached(f, r.opt.Cache)
	if r.opt.Cache != nil {
		if hit {
			st.hits++
		} else {
			st.misses++
		}
	}
	if !ok {
		return nil, transformRef{}
	}
	var tr transformRef
	for j := 0; j < 4; j++ {
		tr.perm[j] = t.Perm[j]
	}
	tr.flip = t.Flip
	tr.negOut = t.NegOut
	return e, tr
}

// lookup5 resolves a five-leaf cut through the on-demand store. Cut
// functions that do not actually depend on all five leaves are skipped:
// their minimum MIGs are (embedded) 4-input classes the precomputed
// database already owns, and keeping them out preserves the store's
// "every entry is a genuine 5-input class" invariant.
//
// Lookup blocks while the class is synthesized (first contact only), so
// a deterministic budget makes the learned database — and therefore
// every downstream decision — identical at any worker count.
func (r *rewriter) lookup5(c *cut.Cut) (*db.Entry, transformRef) {
	f := tt.TT{Bits: uint64(c.TT), N: 5}
	if f.SupportSize() != 5 {
		return nil, transformRef{}
	}
	e, t, ok := r.opt.Exact5.Lookup(r.opt.Ctx, f)
	if !ok {
		return nil, transformRef{}
	}
	var tr transformRef
	for j := 0; j < 5; j++ {
		tr.perm[j] = t.Perm[j]
	}
	tr.flip = t.Flip
	tr.negOut = t.NegOut
	return e, tr
}

// instantiate builds the entry over the given leaf signals (padded to
// the entry width with constant 0) in the output graph.
func (r *rewriter) instantiate(e *db.Entry, tr transformRef, leafSigs []mig.Lit) mig.Lit {
	k := e.K()
	var padded [5]mig.Lit
	copy(padded[:], leafSigs)
	need := 1 + k + e.Size()
	if cap(r.ws.sig) < need {
		r.ws.sig = make([]mig.Lit, 0, need+32)
	}
	sig := r.ws.sig[:need]
	sig[0] = mig.Const0
	for j := 0; j < k; j++ {
		sig[1+j] = padded[tr.perm[j]].NotIf(tr.flip>>uint(j)&1 == 1)
	}
	at := func(l mig.Lit) mig.Lit { return sig[l.ID()].NotIf(l.Comp()) }
	for l, g := range e.Gates {
		sig[1+k+l] = r.addMaj(at(g[0]), at(g[1]), at(g[2]))
	}
	return at(e.Out).NotIf(tr.negOut)
}

// coneAdmissible reports whether the cone of v bounded by leaves may be
// replaced under the current options, and returns its internal gates. The
// returned slice aliases st.cone and is only valid until the next cone
// analysis on the same evalState.
func (r *rewriter) coneAdmissible(v mig.ID, leaves []mig.ID, st *evalState) ([]mig.ID, bool) {
	nodes := r.m.ConeNodesWS(st.cone, v, leaves)
	if len(nodes) == 0 {
		return nil, false
	}
	if r.ffr != nil {
		// Sec. IV-C: every internal gate must live in v's fanout-free
		// region; the region structure then guarantees replaceability.
		root := r.ffr[v]
		for _, id := range nodes {
			if r.ffr[id] != root {
				return nil, false
			}
		}
		return nodes, true
	}
	// Whole-graph mode: exclude cuts whose internal gates have fanout that
	// escapes the cone ("not to include them when enumerating cuts").
	if !r.m.ConeSelfContainedWS(st.cone, nodes, v, r.fo) {
		return nil, false
	}
	return nodes, true
}

// arrivalOf predicts the level of the cut root after replacement: every
// representative input j of the entry is driven by leaves[t.Perm[j]], so
// the root arrives LeafDepth[j] gates after that leaf.
func (r *rewriter) arrivalOf(e *db.Entry, tr transformRef, leaves []mig.ID) int {
	arr := 0
	for j := 0; j < e.K(); j++ {
		ld := e.LeafDepth[j]
		if ld < 0 || tr.perm[j] >= len(leaves) {
			continue // unused input or constant-padded position
		}
		if a := r.oldLevels[leaves[tr.perm[j]]] + ld; a > arr {
			arr = a
		}
	}
	return arr
}

// bestCut evaluates all admissible cuts of v and returns the most
// profitable replacement under the current options. It is a pure function
// of v over the pass's read-only state — the property the parallel
// evaluation phase relies on — and allocates nothing in the steady state.
func (r *rewriter) bestCut(v mig.ID, st *evalState) (best candidateCut, found bool) {
	for i := range r.cuts[v] {
		c := &r.cuts[v][i]
		if c.N == 1 && c.L[0] == v {
			continue // trivial cut: replaces nothing
		}
		leaves := c.Leaves()
		nodes, ok := r.coneAdmissible(v, leaves, st)
		if !ok {
			continue
		}
		e, tr := r.lookup(c, st)
		if e == nil {
			continue
		}
		gain := len(nodes) - e.Size()
		if gain < 0 || (gain == 0 && !r.opt.AllowZeroGain) {
			continue
		}
		if r.opt.DepthPreserve && r.arrivalOf(e, tr, leaves) > r.oldLevels[v] {
			continue
		}
		if gain == 0 && r.arrivalOf(e, tr, leaves) >= r.oldLevels[v] {
			continue // zero-gain replacements must at least reduce arrival
		}
		cand := candidateCut{leaves: leaves, entry: e, tr: tr, gain: gain, depth: e.Depth}
		if !found || cand.gain > best.gain ||
			(cand.gain == best.gain && cand.depth < best.depth) {
			best, found = cand, true
		}
	}
	return best, found
}
