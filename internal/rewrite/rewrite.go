// Package rewrite implements the paper's primary contribution: MIG size
// optimization by functional hashing (Sec. IV). Every 4-feasible cut of
// the graph is NPN-canonicalized and, when profitable, replaced by the
// precomputed minimum MIG of its class.
//
// Both traversal orders of the paper are provided — the top-down greedy
// Algorithm 1 and the bottom-up dynamic-programming Algorithm 2 — together
// with the two orthogonal options discussed in Sec. IV: restricting the
// rewriting to fanout-free regions (Sec. IV-C) and the depth-preserving
// heuristic. The five variant acronyms of the experimental section (TF, T,
// TFD, TD, BF) are predefined.
package rewrite

import (
	"fmt"
	"time"

	"mighash/internal/cut"
	"mighash/internal/db"
	"mighash/internal/mig"
)

// Options selects and tunes a functional-hashing variant.
type Options struct {
	// BottomUp switches from the top-down greedy Algorithm 1 to the
	// bottom-up dynamic-programming Algorithm 2. Bottom-up rewriting
	// requires FFR (candidate lists are only sound inside a fanout-free
	// region, where intermediate results have a single consumer).
	BottomUp bool
	// FFR partitions the graph into fanout-free regions first and rewrites
	// each region in isolation (Sec. IV-C).
	FFR bool
	// DepthPreserve discards cuts whose replacement would increase the
	// arrival time of the root (the paper's depth heuristic; variants
	// TD/TFD). The check is arrival-accurate: each leaf's level plus the
	// matching leaf depth of the minimum MIG is compared against the
	// root's current level, which also catches the individual-path
	// enlargement the paper warns about.
	DepthPreserve bool
	// AllowZeroGain also applies replacements with zero size gain when
	// they locally reduce depth. Off in the paper's variants; used by the
	// ablation benchmarks.
	AllowZeroGain bool

	// Cache, when non-nil, memoizes the NPN canonicalization + database
	// lookup of every cut function through a concurrency-safe sharded map.
	// One cache can be shared across passes and across goroutines (the
	// engine's pipelines and batch runner do both); hits and misses of
	// this pass are reported in Stats.
	Cache *db.Cache

	// MaxCuts caps the per-node cut sets (default 24).
	MaxCuts int
	// MaxCandidates caps the bottom-up candidate lists (default 8),
	// mirroring priority cuts in technology mapping.
	MaxCandidates int
	// PerLeafCandidates caps how many candidates of each cut leaf are
	// combined in Algorithm 2 line 7 (default 2).
	PerLeafCandidates int
}

// The paper's five experiment variants (Sec. V, Tables III and IV).
var (
	TF  = Options{FFR: true}
	T   = Options{}
	TFD = Options{FFR: true, DepthPreserve: true}
	TD  = Options{DepthPreserve: true}
	BF  = Options{BottomUp: true, FFR: true}
)

// VariantName returns the paper's acronym for o, or a descriptive string
// for non-paper configurations.
func VariantName(o Options) string {
	switch {
	case o.BottomUp && o.FFR && !o.DepthPreserve:
		return "BF"
	case o.BottomUp:
		return "B?"
	case o.FFR && o.DepthPreserve:
		return "TFD"
	case o.FFR:
		return "TF"
	case o.DepthPreserve:
		return "TD"
	default:
		return "T"
	}
}

func (o Options) withDefaults() Options {
	if o.MaxCuts == 0 {
		o.MaxCuts = 24
	}
	if o.MaxCandidates == 0 {
		o.MaxCandidates = 8
	}
	if o.PerLeafCandidates == 0 {
		o.PerLeafCandidates = 2
	}
	return o
}

// Stats reports one rewriting pass.
type Stats struct {
	Variant                 string
	SizeBefore, SizeAfter   int
	DepthBefore, DepthAfter int
	Replacements            int // cuts replaced by database MIGs
	// NPN cut-cache traffic of this pass (zero when Options.Cache is nil).
	CacheHits, CacheMisses int
	Elapsed                time.Duration
}

// CacheHitRate returns the fraction of this pass's database lookups
// served by the NPN cut-cache, or 0 when no cache was attached.
func (s Stats) CacheHitRate() float64 {
	if s.CacheHits+s.CacheMisses == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(s.CacheHits+s.CacheMisses)
}

func (s Stats) String() string {
	out := fmt.Sprintf("%s: size %d→%d, depth %d→%d, %d replacements, %v",
		s.Variant, s.SizeBefore, s.SizeAfter, s.DepthBefore, s.DepthAfter, s.Replacements, s.Elapsed)
	if s.CacheHits+s.CacheMisses > 0 {
		out += fmt.Sprintf(", cache %.0f%% of %d", 100*s.CacheHitRate(), s.CacheHits+s.CacheMisses)
	}
	return out
}

// Run applies one functional-hashing pass over m and returns the optimized
// MIG (a fresh graph; m is unchanged). The database provides the minimum
// representations; db.MustLoad() supplies the embedded one.
func Run(m *mig.MIG, d *db.DB, opt Options) (*mig.MIG, Stats) {
	opt = opt.withDefaults()
	if opt.BottomUp && !opt.FFR {
		panic("rewrite: bottom-up rewriting requires fanout-free-region partitioning")
	}
	start := time.Now()
	r := &rewriter{
		m:         m,
		d:         d,
		opt:       opt,
		cuts:      cut.Enumerate(m, cut.Options{K: 4, MaxCuts: opt.MaxCuts}),
		fo:        m.FanoutCounts(),
		out:       mig.New(m.NumPIs()),
		oldLevels: m.Levels(),
	}
	if opt.FFR {
		r.ffr = m.FFRRoots()
	}
	if opt.BottomUp {
		r.runBottomUp()
	} else {
		r.runTopDown()
	}
	res, _ := r.out.Cleanup()
	st := Stats{
		Variant:      VariantName(opt),
		SizeBefore:   m.Size(),
		SizeAfter:    res.Size(),
		DepthBefore:  m.Depth(),
		DepthAfter:   res.Depth(),
		Replacements: r.replacements,
		CacheHits:    r.cacheHits,
		CacheMisses:  r.cacheMisses,
		Elapsed:      time.Since(start),
	}
	return res, st
}

// rewriter carries the shared state of one pass.
type rewriter struct {
	m    *mig.MIG
	d    *db.DB
	opt  Options
	cuts [][]cut.Cut
	fo   []int
	ffr  []mig.ID // FFR root per node (nil when not partitioning)
	out  *mig.MIG

	oldLevels []int // levels in the input graph, for the depth heuristic

	levels       []int // level of every node in out (maintained on creation)
	replacements int

	cacheHits, cacheMisses int // this pass's NPN cut-cache traffic
}

// addMaj creates a majority gate in the output graph, keeping the level
// array in sync so candidate depths are available without re-traversal.
func (r *rewriter) addMaj(a, b, c mig.Lit) mig.Lit {
	l := r.out.Maj(a, b, c)
	r.growLevels()
	return l
}

func (r *rewriter) growLevels() {
	for len(r.levels) < r.out.NumNodes() {
		id := mig.ID(len(r.levels))
		lvl := 0
		if r.out.IsGate(id) {
			for _, ch := range r.out.Fanin(id) {
				if l := r.levels[ch.ID()]; l >= lvl {
					lvl = l + 1
				}
			}
		}
		r.levels = append(r.levels, lvl)
	}
}

func (r *rewriter) level(l mig.Lit) int {
	r.growLevels()
	return r.levels[l.ID()]
}

// candidateCut is one admissible replacement for a node.
type candidateCut struct {
	leaves []mig.ID
	entry  *db.Entry
	tr     transformRef
	gain   int
	depth  int // structural depth of the replacement
}

// transformRef avoids importing npn here twice; see lookup.
type transformRef struct {
	perm   [4]int
	flip   uint8
	negOut bool
}

// lookup canonicalizes the cone function of (v, leaves) and returns the
// database entry plus instantiation data, or nil when the class is absent.
// With Options.Cache the canonicalization and class lookup are memoized.
func (r *rewriter) lookup(v mig.ID, leaves []mig.ID) (*db.Entry, transformRef) {
	f := r.m.ConeTT(mig.MakeLit(v, false), leaves).Expand(4)
	e, t, ok, hit := r.d.LookupCached(f, r.opt.Cache)
	if r.opt.Cache != nil {
		if hit {
			r.cacheHits++
		} else {
			r.cacheMisses++
		}
	}
	if !ok {
		return nil, transformRef{}
	}
	var tr transformRef
	for j := 0; j < 4; j++ {
		tr.perm[j] = t.Perm[j]
	}
	tr.flip = t.Flip
	tr.negOut = t.NegOut
	return e, tr
}

// instantiate builds the entry over the given leaf signals (padded to 4
// with constant 0) in the output graph.
func (r *rewriter) instantiate(e *db.Entry, tr transformRef, leafSigs []mig.Lit) mig.Lit {
	var padded [4]mig.Lit
	copy(padded[:], leafSigs)
	sig := make([]mig.Lit, 5+e.Size())
	sig[0] = mig.Const0
	for j := 0; j < 4; j++ {
		sig[1+j] = padded[tr.perm[j]].NotIf(tr.flip>>uint(j)&1 == 1)
	}
	at := func(l mig.Lit) mig.Lit { return sig[l.ID()].NotIf(l.Comp()) }
	for l, g := range e.Gates {
		sig[5+l] = r.addMaj(at(g[0]), at(g[1]), at(g[2]))
	}
	return at(e.Out).NotIf(tr.negOut)
}

// coneAdmissible reports whether the cone of v bounded by leaves may be
// replaced under the current options, and returns its internal gates.
func (r *rewriter) coneAdmissible(v mig.ID, leaves []mig.ID) ([]mig.ID, bool) {
	nodes := r.m.ConeNodes(v, leaves)
	if len(nodes) == 0 {
		return nil, false
	}
	if r.ffr != nil {
		// Sec. IV-C: every internal gate must live in v's fanout-free
		// region; the region structure then guarantees replaceability.
		root := r.ffr[v]
		for _, id := range nodes {
			if r.ffr[id] != root {
				return nil, false
			}
		}
		return nodes, true
	}
	// Whole-graph mode: exclude cuts whose internal gates have fanout that
	// escapes the cone ("not to include them when enumerating cuts").
	if !r.m.ConeIsReplaceable(v, leaves, r.fo) {
		return nil, false
	}
	return nodes, true
}

// arrivalOf predicts the level of the cut root after replacement: every
// representative input j of the entry is driven by leaves[t.Perm[j]], so
// the root arrives LeafDepth[j] gates after that leaf.
func (r *rewriter) arrivalOf(e *db.Entry, tr transformRef, leaves []mig.ID) int {
	arr := 0
	for j := 0; j < 4; j++ {
		ld := e.LeafDepth[j]
		if ld < 0 || tr.perm[j] >= len(leaves) {
			continue // unused input or constant-padded position
		}
		if a := r.oldLevels[leaves[tr.perm[j]]] + ld; a > arr {
			arr = a
		}
	}
	return arr
}

// bestCut evaluates all admissible cuts of v and returns the most
// profitable replacement under the current options, or nil.
func (r *rewriter) bestCut(v mig.ID) *candidateCut {
	var best *candidateCut
	for i := range r.cuts[v] {
		c := &r.cuts[v][i]
		if c.N == 1 && c.L[0] == v {
			continue // trivial cut: replaces nothing
		}
		leaves := c.Leaves()
		nodes, ok := r.coneAdmissible(v, leaves)
		if !ok {
			continue
		}
		e, tr := r.lookup(v, leaves)
		if e == nil {
			continue
		}
		gain := len(nodes) - e.Size()
		if gain < 0 || (gain == 0 && !r.opt.AllowZeroGain) {
			continue
		}
		if r.opt.DepthPreserve && r.arrivalOf(e, tr, leaves) > r.oldLevels[v] {
			continue
		}
		if gain == 0 && r.arrivalOf(e, tr, leaves) >= r.oldLevels[v] {
			continue // zero-gain replacements must at least reduce arrival
		}
		cand := &candidateCut{leaves: leaves, entry: e, tr: tr, gain: gain, depth: e.Depth}
		if best == nil || cand.gain > best.gain ||
			(cand.gain == best.gain && cand.depth < best.depth) {
			best = cand
		}
	}
	return best
}
