package rewrite

import (
	"mighash/internal/mig"
	"mighash/internal/obs"
)

// runTopDown implements Algorithm 1 of the paper, split into an
// evaluation phase and a commit phase. Starting from every output, opt(v)
// looks for the cut of v whose replacement by its minimum representation
// yields the largest size reduction; if one exists the internal nodes of
// the cone are skipped and optimization recurs on the cut leaves,
// otherwise it recurs on the fanins of v. Results are memoized, which is
// what makes the traversal well-defined on a DAG: a node shared by several
// outputs or cones is rebuilt exactly once.
//
// With workers > 1 the expensive part — bestCut over every live gate — is
// evaluated up front on a worker pool (see evaluateAll); the commit phase
// below then only consumes the memoized decisions. Because bestCut is a
// pure per-node function and the commit order is fixed, the output graph
// is bit-identical for every worker count. The commit traversal itself is
// an explicit-stack DFS, so graphs with arbitrarily long chains cannot
// overflow the goroutine stack.
func (r *rewriter) runTopDown(workers int) {
	ws := r.ws
	res, known := ws.res, ws.known
	res[0], known[0] = mig.Const0, true
	for i := 0; i < r.m.NumPIs(); i++ {
		id := r.m.Input(i).ID()
		res[id], known[id] = r.out.Input(i), true
	}
	// Phase spans: the parallel evaluation and the serial commit each get
	// one. r.opt.Ctx is swapped per phase so the on-demand ladder spans
	// started inside Exact5.Lookup parent under the phase they ran in. In
	// serial mode every cut is evaluated lazily from the commit walk, so
	// ladders land under rewrite.commit there — that is where the time
	// actually goes.
	base := r.opt.Ctx
	if workers > 1 {
		ectx, espan := obs.Start(base, "rewrite.evaluate")
		espan.SetInt("workers", int64(workers))
		r.opt.Ctx = ectx
		r.evaluateAll(workers)
		espan.End()
	}
	cctx, cspan := obs.Start(base, "rewrite.commit")
	r.opt.Ctx = cctx
	defer func() {
		cspan.SetInt("replacements", int64(r.replacements))
		cspan.End()
		r.opt.Ctx = base
	}()
	st := &ws.eval[0]
	// decide memoizes bestCut per node: prefilled for every live gate by
	// evaluateAll in parallel mode, computed on first visit otherwise.
	decide := func(v mig.ID) *candidateCut {
		if !ws.decided[v] {
			if best, ok := r.bestCut(v, st); ok {
				ws.best[v] = best
			}
			ws.decided[v] = true
		}
		if ws.best[v].entry != nil {
			return &ws.best[v]
		}
		return nil
	}
	// A node is examined once to push its unresolved dependencies — the
	// best cut's leaves if a profitable replacement exists, the fanins
	// otherwise — and resolved when all of them are known. Dependencies
	// always have smaller IDs than the node, so the walk strictly
	// descends and terminates. Dependencies are pushed in reverse so they
	// resolve left to right, matching the recursive formulation.
	stack := ws.stack[:0]
	for _, o := range r.m.Outputs() {
		if !known[o.ID()] {
			stack = append(stack, o.ID())
		}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			if known[v] {
				stack = stack[:len(stack)-1]
				continue
			}
			ready := true
			if best := decide(v); best != nil {
				for i := len(best.leaves) - 1; i >= 0; i-- {
					if !known[best.leaves[i]] {
						stack = append(stack, best.leaves[i])
						ready = false
					}
				}
				if !ready {
					continue
				}
				var leafSigs [5]mig.Lit
				for i, lf := range best.leaves {
					leafSigs[i] = res[lf]
				}
				res[v] = r.instantiate(best.entry, best.tr, leafSigs[:len(best.leaves)])
				r.replacements++
			} else {
				f := r.m.Fanin(v)
				for i := 2; i >= 0; i-- {
					if !known[f[i].ID()] {
						stack = append(stack, f[i].ID())
						ready = false
					}
				}
				if !ready {
					continue
				}
				res[v] = r.addMaj(
					res[f[0].ID()].NotIf(f[0].Comp()),
					res[f[1].ID()].NotIf(f[1].Comp()),
					res[f[2].ID()].NotIf(f[2].Comp()))
			}
			known[v] = true
			stack = stack[:len(stack)-1]
		}
		r.out.AddOutput(res[o.ID()].NotIf(o.Comp()))
	}
	ws.stack = stack[:0]
}
