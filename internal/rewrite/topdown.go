package rewrite

import "mighash/internal/mig"

// runTopDown implements Algorithm 1 of the paper. Starting from every
// output, opt(v) looks for the cut of v whose replacement by its minimum
// representation yields the largest size reduction; if one exists the
// internal nodes of the cone are skipped and optimization recurs on the
// cut leaves, otherwise it recurs on the fanins of v. Results are
// memoized, which is what makes the recursion well-defined on a DAG: a
// node shared by several outputs or cones is rebuilt exactly once.
func (r *rewriter) runTopDown() {
	known := make([]bool, r.m.NumNodes())
	res := make([]mig.Lit, r.m.NumNodes())
	res[0], known[0] = mig.Const0, true
	for i := 0; i < r.m.NumPIs(); i++ {
		id := r.m.Input(i).ID()
		res[id], known[id] = r.out.Input(i), true
	}
	// Fanins and cut leaves always have smaller IDs than the node they
	// feed, so the recursion strictly descends and terminates.
	var opt func(v mig.ID) mig.Lit
	opt = func(v mig.ID) mig.Lit {
		if known[v] {
			return res[v]
		}
		var l mig.Lit
		if best := r.bestCut(v); best != nil {
			leafSigs := make([]mig.Lit, len(best.leaves))
			for i, lf := range best.leaves {
				leafSigs[i] = opt(lf)
			}
			l = r.instantiate(best.entry, best.tr, leafSigs)
			r.replacements++
		} else {
			f := r.m.Fanin(v)
			l = r.addMaj(
				opt(f[0].ID()).NotIf(f[0].Comp()),
				opt(f[1].ID()).NotIf(f[1].Comp()),
				opt(f[2].ID()).NotIf(f[2].Comp()))
		}
		res[v], known[v] = l, true
		return l
	}
	for _, o := range r.m.Outputs() {
		r.out.AddOutput(opt(o.ID()).NotIf(o.Comp()))
	}
}
