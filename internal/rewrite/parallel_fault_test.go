package rewrite

import (
	"math/rand"
	"strings"
	"testing"

	"mighash/internal/fault"
)

// TestWorkerPanicReachesCaller: recover only catches same-goroutine
// panics, so a panic inside an evaluation worker must be re-raised on
// the goroutine that called Run — where the engine's per-job boundary
// can convert it to an error — instead of crashing the process.
func TestWorkerPanicReachesCaller(t *testing.T) {
	defer fault.Reset()
	d := loadDB(t)
	m := randomMIG(rand.New(rand.NewSource(77)), 7, 200, 2)
	if err := fault.Enable("rewrite/ffr-region", "count(1)*panic(chaos in a worker)"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("worker panic did not propagate to the caller")
		}
		s, ok := r.(string)
		if !ok || !strings.Contains(s, "evaluation worker panicked") || !strings.Contains(s, "chaos in a worker") {
			t.Fatalf("propagated panic %v should carry the worker's panic value", r)
		}
	}()
	opt := TF
	opt.Workers = 4
	Run(m, d, opt)
}

// TestWorkerPanicLeavesOthersSound: after one injected worker panic, a
// clean retry through the same reused workspace produces exactly the
// graph an untouched run produces — the abandoned half-evaluated scratch
// corrupts nothing that outlives the call.
func TestWorkerPanicLeavesOthersSound(t *testing.T) {
	defer fault.Reset()
	d := loadDB(t)
	m := randomMIG(rand.New(rand.NewSource(78)), 7, 200, 2)
	opt := TF
	opt.Workers = 4
	opt.Workspace = NewWorkspace()
	want, _ := Run(m, d, opt)

	if err := fault.Enable("rewrite/ffr-region", "count(1)*panic(chaos)"); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() { recover() }()
		Run(m, d, opt)
		t.Error("injected worker panic did not surface")
	}()
	fault.Reset()

	got, _ := Run(m, d, opt)
	if got.Size() != want.Size() || got.Depth() != want.Depth() {
		t.Fatalf("retry after a worker panic diverged: size %d depth %d, want size %d depth %d",
			got.Size(), got.Depth(), want.Size(), want.Depth())
	}
}
