package npn

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mighash/internal/tt"
)

func TestIdentityApply(t *testing.T) {
	f := tt.New(4, 0xBEEF)
	if got := Identity(4).Apply(f); got != f {
		t.Errorf("identity transform changed %v to %v", f, got)
	}
}

func TestApplyOutputNegation(t *testing.T) {
	f := tt.New(3, 0xE8)
	tr := Identity(3)
	tr.NegOut = true
	if got := tr.Apply(f); got != f.Not() {
		t.Errorf("output negation: got %v, want %v", got, f.Not())
	}
}

func TestApplyInputFlip(t *testing.T) {
	f := tt.New(4, 0x8000) // AND of four variables
	tr := Identity(4)
	tr.Flip = 0b0010
	got := tr.Apply(f)
	// AND with x1 complemented is true only at assignment 1101 = 13.
	if got.Bits != 1<<13 {
		t.Errorf("input flip: got %v", got)
	}
}

func TestApplyPermutation(t *testing.T) {
	// f = x0 AND (NOT x1): permuting inputs 0<->1 must give x1 AND (NOT x0).
	f := tt.Var(2, 0).And(tt.Var(2, 1).Not())
	tr := Identity(2)
	tr.Perm[0], tr.Perm[1] = 1, 0
	want := tt.Var(2, 1).And(tt.Var(2, 0).Not())
	if got := tr.Apply(f); got != want {
		t.Errorf("permutation: got %v, want %v", got, want)
	}
}

func TestAllCount(t *testing.T) {
	for n, want := range map[int]int{1: 4, 2: 16, 3: 96, 4: 768} {
		if got := len(All(n)); got != want {
			t.Errorf("len(All(%d)) = %d, want %d", n, got, want)
		}
	}
}

func TestPerms(t *testing.T) {
	p := Perms(3)
	if len(p) != 6 {
		t.Fatalf("Perms(3) has %d entries", len(p))
	}
	seen := map[[3]int]bool{}
	for _, perm := range p {
		var k [3]int
		copy(k[:], perm)
		if seen[k] {
			t.Errorf("duplicate permutation %v", perm)
		}
		seen[k] = true
	}
}

func TestInverseRoundTrip(t *testing.T) {
	f := func(bits uint16, tid uint16) bool {
		all := All(4)
		tr := all[int(tid)%len(all)]
		fn := tt.New(4, uint64(bits))
		inv := tr.Inverse()
		return inv.Apply(tr.Apply(fn)) == fn && tr.Apply(inv.Apply(fn)) == fn
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCanonizeDirection(t *testing.T) {
	// Canonize(f) returns (rep, T) with Apply(T, rep) == f.
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		f := tt.New(4, uint64(rng.Intn(1<<16)))
		rep, tr := Canonize(f)
		if got := tr.Apply(rep); got != f {
			t.Fatalf("Canonize(%v): Apply(T, %v) = %v, want %v", f, rep, got, f)
		}
		if rep.Bits > f.Bits {
			t.Fatalf("representative %v larger than member %v", rep, f)
		}
	}
}

func TestCanonizeSlowAgreesWithTable(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 100; i++ {
		f := tt.New(4, uint64(rng.Intn(1<<16)))
		repFast, _ := Canonize(f)
		repSlow, trSlow := canonizeSlow(f)
		if repFast != repSlow {
			t.Fatalf("table rep %v != enumerated rep %v for %v", repFast, repSlow, f)
		}
		if got := trSlow.Apply(repSlow); got != f {
			t.Fatalf("slow transform direction broken for %v", f)
		}
	}
}

func TestClassCountsMatchPaper(t *testing.T) {
	// Sec. II-D: 2, 4, 14, 222 NPN classes for n = 1..4.
	for n, want := range map[int]int{0: 1, 1: 2, 2: 4, 3: 14} {
		if got := len(Classes(n)); got != want {
			t.Errorf("Classes(%d) = %d classes, want %d", n, got, want)
		}
	}
	if got := NumClasses4(); got != 222 {
		t.Errorf("NumClasses4() = %d, want 222", got)
	}
	if got := len(Classes(4)); got != 222 {
		t.Errorf("len(Classes(4)) = %d, want 222", got)
	}
}

func TestClassOf4Consistency(t *testing.T) {
	// Every member of a class must canonize to the same representative,
	// and the representative canonizes to itself.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		f := tt.New(4, uint64(rng.Intn(1<<16)))
		rep := ClassOf4(f)
		if ClassOf4(rep) != rep {
			t.Fatalf("representative %v not a fixed point", rep)
		}
		// Apply a random transform: class must not change.
		all := All(4)
		tr := all[rng.Intn(len(all))]
		if got := ClassOf4(tr.Apply(f)); got != rep {
			t.Fatalf("transforming %v changed class from %v to %v", f, rep, got)
		}
	}
}

func TestClassFunctionTotals(t *testing.T) {
	// The orbits of the 222 classes must partition all 65536 functions.
	total := 0
	counted := make(map[uint64]bool)
	for _, rep := range Classes(4) {
		for _, tr := range All(4) {
			g := tr.Apply(rep)
			if !counted[g.Bits] {
				counted[g.Bits] = true
				total++
			}
		}
	}
	if total != 1<<16 {
		t.Errorf("class orbits cover %d functions, want 65536", total)
	}
}

func TestKnownRepresentatives(t *testing.T) {
	// Constant zero is its own representative; so is the 2-input AND
	// embedded in 4 variables (0x8888 canonizes to the smallest AND-like
	// table 0x0888? — verify only invariants that are certain:
	// the constant class and that x0*x1 is in a one-node class with 0x7888's
	// family is checked elsewhere via exact synthesis).
	zero := tt.Const0(4)
	rep, _ := Canonize(zero)
	if !rep.IsConst0() {
		t.Errorf("constant 0 canonizes to %v", rep)
	}
	one := tt.Const1(4)
	rep1, _ := Canonize(one)
	if !rep1.IsConst0() {
		t.Errorf("constant 1 should share the constant class, got %v", rep1)
	}
}

func TestCanonizeNonFourVar(t *testing.T) {
	f := tt.Var(3, 0).Xor(tt.Var(3, 1)).Xor(tt.Var(3, 2))
	rep, tr := Canonize(f)
	if tr.Apply(rep) != f {
		t.Error("3-variable canonization direction broken")
	}
}

func BenchmarkCanonize4(b *testing.B) {
	Canonize(tt.New(4, 0x1ee1)) // force table construction
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Canonize(tt.New(4, uint64(i&0xFFFF)))
	}
}

func BenchmarkCanonizeSlow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		canonizeSlow(tt.New(4, uint64(i&0xFFFF)))
	}
}
