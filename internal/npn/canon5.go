package npn

import (
	"fmt"
	"math/bits"
	"sort"

	"mighash/internal/tt"
)

// Semi-canonical 5-variable canonization. Exhaustively sweeping the
// 2·2^5·5! = 7680 NPN transforms per lookup (canonizeSlow) is far too
// slow for the rewriting hot path, and the ~616k classes of 5 variables
// rule out the 4-variable trick of tabulating the whole function space.
// Canonize5 instead normalizes by signatures that every NPN transform
// preserves or permutes predictably:
//
//	output polarity   ones(f) ≤ 2^4 (complement the output otherwise),
//	input polarity    per variable, ones(f | x_i=1) ≤ ones(f | x_i=0),
//	variable order    positions sorted by ascending ones(f | x_i=1).
//
// Only transforms whose image satisfies all three invariants are
// candidates, and the representative is the minimum truth table among
// them. Because "the image satisfies the invariants" is a property of the
// image alone, the candidate set — and therefore the representative — is
// identical for every function of an NPN class: the result is a true
// class invariant, merely not always the class-wide minimum truth table
// (hence "semi-canonical"). Ties in the signatures (equal cofactor
// counts) multiply the candidate set; random cut functions almost always
// have none, so the common path applies a handful of transforms instead
// of thousands.

// canon5FallbackLimit caps the tie-breaking enumeration: degenerate
// highly-symmetric functions (parity, constants) tie everywhere and
// would enumerate more candidates than the exhaustive sweep itself, so
// past this bound Canonize5 falls back to canonizeSlow. The bound is a
// function of class-invariant tie counts, so the fallback decision is
// itself identical across a class.
const canon5FallbackLimit = 1920

// Canonize5 returns the semi-canonical NPN representative of the
// 5-variable function f together with a transform t such that
// Apply(t, rep) = f — the same contract as Canonize. NPN-equivalent
// functions always map to the same representative; unlike Canonize's
// 4-variable path the representative need not be the smallest truth
// table of the class.
func Canonize5(f tt.TT) (tt.TT, Transform) {
	if f.N != 5 {
		panic(fmt.Sprintf("npn: Canonize5 requires a 5-variable function, got %d", f.N))
	}
	cands, ok := canon5Transforms(f)
	if !ok {
		return canonizeSlow(f)
	}
	best := cands[0].Apply(f)
	bestT := cands[0]
	for _, t := range cands[1:] {
		if g := t.Apply(f); g.Bits < best.Bits {
			best, bestT = g, t
		}
	}
	// bestT maps f onto the representative; return the instantiating
	// direction, mirroring Canonize.
	return best, bestT.Inverse()
}

// IsCanonical5 reports whether f is its own semi-canonical
// representative. Restore uses it to validate learned-class records.
func IsCanonical5(f tt.TT) bool {
	rep, _ := Canonize5(f)
	return rep == f
}

// signature5 computes the cofactor signature of f in one word-parallel
// pass: the total ones count and, per variable, the minterms with that
// variable set (six popcounts over masked words, no per-assignment
// loop). The complement polarity's signature needs no second pass — it
// derives arithmetically, ones' = 32 − ones and c1'[j] = 16 − c1[j],
// because complementing the output turns every minterm into a non-
// minterm and each variable is set in exactly half of all 32
// assignments.
func signature5(f tt.TT) (ones int, c1 [5]int) {
	ones = bits.OnesCount64(f.Bits)
	for j := 0; j < 5; j++ {
		c1[j] = bits.OnesCount64(f.Bits & tt.Var(5, j).Bits)
	}
	return ones, c1
}

// canon5Transforms returns every transform whose image of f satisfies
// the normalization invariants, or ok=false when signature ties would
// blow the set past canon5FallbackLimit.
func canon5Transforms(f tt.TT) ([]Transform, bool) {
	posOnes, posC1 := signature5(f)
	var out []Transform
	for _, neg := range [2]bool{false, true} {
		ones, c1 := posOnes, posC1
		if neg {
			// Derived complement signature (see signature5) — the second
			// polarity costs six subtractions instead of six popcounts.
			ones = 32 - ones
			for j := range c1 {
				c1[j] = 16 - c1[j]
			}
		}
		if ones*2 > 32 {
			continue // output polarity invariant violated
		}
		// c1[j]: minterms of g = f⊕neg with x_j = 1. Flipping x_j swaps it
		// with c0[j] = ones − c1[j]; permutations move it between
		// positions; nothing else touches it.
		var key [5]int
		flipBoth := 0 // bitmask of variables free to flip either way
		var flip uint8
		for j := 0; j < 5; j++ {
			c0 := ones - c1[j]
			switch {
			case c1[j] > c0:
				flip |= 1 << j
			case c1[j] == c0:
				flipBoth |= 1 << j
			}
			key[j] = min(c1[j], c0)
		}
		// Base assignment: position p reads the variable with the p-th
		// smallest key; equal keys form groups whose internal order is
		// free.
		ord := [5]int{0, 1, 2, 3, 4}
		sort.SliceStable(ord[:], func(a, b int) bool { return key[ord[a]] < key[ord[b]] })
		count := 1 << bits.OnesCount(uint(flipBoth))
		for s, p := 0, 0; p <= 5; p++ {
			if p == 5 || (p > s && key[ord[p]] != key[ord[s]]) {
				count *= factorial(p - s)
				s = p
			}
		}
		if len(out)+count > canon5FallbackLimit {
			return nil, false
		}
		for _, asn := range tieAssignments(ord, key) {
			base := Transform{N: 5, NegOut: neg}
			for p := 0; p < 5; p++ {
				base.Perm[asn[p]] = p
			}
			for m := 0; m < 1<<bits.OnesCount(uint(flipBoth)); m++ {
				fm, rest := uint8(0), m
				for j := 0; j < 5; j++ {
					if flipBoth>>j&1 == 1 {
						if rest&1 == 1 {
							fm |= 1 << j
						}
						rest >>= 1
					}
				}
				t := base
				t.Flip = flip | fm
				out = append(out, t)
			}
		}
	}
	return out, true
}

// tieAssignments expands the base position order over every permutation
// of each equal-key group.
func tieAssignments(ord [5]int, key [5]int) [][5]int {
	res := [][5]int{ord}
	for s, p := 0, 1; p <= 5; p++ {
		if p < 5 && key[ord[p]] == key[ord[s]] {
			continue
		}
		if size := p - s; size > 1 {
			perms := Perms(size)
			next := make([][5]int, 0, len(res)*len(perms))
			for _, a := range res {
				for _, pm := range perms {
					b := a
					for i, pi := range pm {
						b[s+i] = a[s+pi]
					}
					next = append(next, b)
				}
			}
			res = next
		}
		s = p
	}
	return res
}

func factorial(n int) int {
	f := 1
	for i := 2; i <= n; i++ {
		f *= i
	}
	return f
}
