package npn

import (
	"math/bits"
	"math/rand"
	"testing"

	"mighash/internal/tt"
)

// TestApplyMatchesSlow pins the word-parallel Transform.Apply to the
// per-assignment reference over every 4-variable transform and random
// 5- and 6-variable ones.
func TestApplyMatchesSlow(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, tr := range All(4) {
		f := tt.New(4, rng.Uint64())
		if got, want := tr.Apply(f), tr.applySlow(f); got != want {
			t.Fatalf("%v applied to %v: fast=%v, reference=%v", tr, f, got, want)
		}
	}
	for n := 5; n <= tt.MaxVars; n++ {
		for trial := 0; trial < 500; trial++ {
			tr := Transform{N: n, NegOut: rng.Intn(2) == 1, Flip: uint8(rng.Intn(1 << n))}
			copy(tr.Perm[:], rng.Perm(n))
			f := tt.New(n, rng.Uint64())
			if got, want := tr.Apply(f), tr.applySlow(f); got != want {
				t.Fatalf("%v applied to %v: fast=%v, reference=%v", tr, f, got, want)
			}
		}
	}
}

// TestSignature5DerivedComplement pins the arithmetic complement
// signature against recomputation on the complemented table.
func TestSignature5DerivedComplement(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 1000; trial++ {
		f := tt.New(5, rng.Uint64())
		ones, c1 := signature5(f)
		nOnes, nC1 := signature5(f.Not())
		if nOnes != 32-ones {
			t.Fatalf("f=%v: complement ones %d, derived %d", f, nOnes, 32-ones)
		}
		for j := 0; j < 5; j++ {
			if nC1[j] != 16-c1[j] {
				t.Fatalf("f=%v var %d: complement c1 %d, derived %d", f, j, nC1[j], 16-c1[j])
			}
		}
	}
}

func BenchmarkTransformApply(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	tr := Transform{N: 5, NegOut: true, Flip: 0b10110}
	copy(tr.Perm[:], rng.Perm(5))
	f := tt.New(5, rng.Uint64())
	b.Run("words", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f = tr.Apply(f)
		}
	})
	b.Run("scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f = tr.applySlow(f)
		}
	})
}

func BenchmarkSignature5(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	f := tt.New(5, rng.Uint64())
	b.Run("derived", func(b *testing.B) {
		// One pass plus the arithmetic complement — what canon5Transforms
		// runs per polarity pair.
		var sink int
		for i := 0; i < b.N; i++ {
			ones, c1 := signature5(f)
			sink += 32 - ones
			for j := range c1 {
				sink += 16 - c1[j]
			}
		}
		_ = sink
	})
	b.Run("recompute", func(b *testing.B) {
		var sink int
		for i := 0; i < b.N; i++ {
			_, _ = signature5(f)
			g := f.Not()
			sink += bits.OnesCount64(g.Bits)
			for j := 0; j < 5; j++ {
				sink += bits.OnesCount64(g.Bits & tt.Var(5, j).Bits)
			}
		}
		_ = sink
	})
}

func BenchmarkCanonize5(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	fs := make([]tt.TT, 256)
	for i := range fs {
		fs[i] = tt.New(5, rng.Uint64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Canonize5(fs[i%len(fs)])
	}
}
