package npn

import (
	"math/rand"
	"testing"

	"mighash/internal/tt"
)

// all5 memoizes the 7680 NPN transforms over 5 variables for the tests.
var all5 = All(5)

// TestCanonize5Direction checks the Canonize contract: the returned
// transform instantiates f from the representative.
func TestCanonize5Direction(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		f := tt.New(5, rng.Uint64())
		rep, tr := Canonize5(f)
		if got := tr.Apply(rep); got != f {
			t.Fatalf("f=%v: Apply(t, rep=%v) = %v, want f", f, rep, got)
		}
		if rep2, _ := Canonize5(rep); rep2 != rep {
			t.Fatalf("representative %v is not a fixpoint (got %v)", rep, rep2)
		}
	}
}

// TestCanonize5ClassInvariant checks that every member of an NPN class
// maps to the same semi-canonical representative.
func TestCanonize5ClassInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		f := tt.New(5, rng.Uint64())
		rep, _ := Canonize5(f)
		for trial := 0; trial < 8; trial++ {
			g := all5[rng.Intn(len(all5))].Apply(f)
			if got, _ := Canonize5(g); got != rep {
				t.Fatalf("f=%v g=%v: representatives differ (%v vs %v)", f, g, got, rep)
			}
		}
	}
}

// TestCanonize5MatchesSlowOracle checks against the exhaustive sweep:
// the semi-canonical representative must live in the same class as the
// exact minimum (it need not equal it).
func TestCanonize5MatchesSlowOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 25; i++ {
		f := tt.New(5, rng.Uint64())
		rep, _ := Canonize5(f)
		wantMin, _ := canonizeSlow(f)
		gotMin, _ := canonizeSlow(rep)
		if gotMin != wantMin {
			t.Fatalf("f=%v: semi-canonical rep %v is in class %v, want class %v",
				f, rep, gotMin, wantMin)
		}
	}
}

// TestCanonize5Degenerate exercises the tie-explosion fallback and other
// fully symmetric corner cases.
func TestCanonize5Degenerate(t *testing.T) {
	cases := []tt.TT{
		tt.Const0(5),
		tt.Const1(5),
		tt.Var(5, 3),
		xor5(),
		maj5(),
	}
	for _, f := range cases {
		rep, tr := Canonize5(f)
		if got := tr.Apply(rep); got != f {
			t.Fatalf("f=%v: Apply(t, rep) = %v, want f", f, got)
		}
		for _, g := range []tt.TT{f.Not(), f.FlipVar(0), f.SwapVars(1, 4)} {
			if got, _ := Canonize5(g); got != rep {
				t.Fatalf("f=%v variant %v: rep %v, want %v", f, g, got, rep)
			}
		}
	}
}

func xor5() tt.TT {
	f := tt.Var(5, 0)
	for i := 1; i < 5; i++ {
		f = f.Xor(tt.Var(5, i))
	}
	return f
}

func maj5() tt.TT {
	var b uint64
	for x := uint(0); x < 32; x++ {
		ones := 0
		for j := uint(0); j < 5; j++ {
			ones += int(x >> j & 1)
		}
		if ones >= 3 {
			b |= 1 << x
		}
	}
	return tt.New(5, b)
}

// FuzzCanonize5 fuzzes the two load-bearing properties of the
// semi-canonical canonizer: the returned transform really instantiates f
// from the representative, and NPN-equivalent inputs (f pushed through a
// fuzzer-chosen transform) share one representative. A sampled subset is
// additionally checked against the exhaustive canonizeSlow oracle.
func FuzzCanonize5(f *testing.F) {
	f.Add(uint64(0xDEADBEEF12345678), uint16(0))
	f.Add(uint64(0), uint16(1))
	f.Add(uint64(0x96696996_69969669), uint16(4242)) // parity-like: fallback path
	f.Add(uint64(0xFFFF0000_00FF00FF), uint16(7679))
	f.Fuzz(func(t *testing.T, bitsIn uint64, tid uint16) {
		fn := tt.New(5, bitsIn)
		rep, tr := Canonize5(fn)
		if got := tr.Apply(rep); got != fn {
			t.Fatalf("f=%v: Apply(t, rep=%v) = %v, want f", fn, rep, got)
		}
		g := all5[int(tid)%len(all5)].Apply(fn)
		if gotRep, _ := Canonize5(g); gotRep != rep {
			t.Fatalf("f=%v g=%v: representatives differ (%v vs %v)", fn, g, gotRep, rep)
		}
		// The exhaustive oracle is ~7680 transform applications per call:
		// only a deterministic sample of the corpus pays for it.
		if bitsIn%64 == 0 {
			wantMin, _ := canonizeSlow(fn)
			if gotMin, _ := canonizeSlow(rep); gotMin != wantMin {
				t.Fatalf("f=%v: rep %v is in class %v, want %v", fn, rep, gotMin, wantMin)
			}
		}
	})
}
