// Package npn implements exact NPN classification of Boolean functions.
//
// Two functions are NPN-equivalent when one can be obtained from the other
// by Negating inputs, Permuting inputs, and/or Negating the output (Sec.
// II-D of the paper). NPN equivalence partitions the 2^2^n functions of n
// variables into a small number of classes — 2, 4, 14 and 222 classes for
// n = 1..4 — and the size of a minimum MIG is invariant within a class, so
// the functional-hashing database only needs one optimal MIG per class.
//
// Following the paper, the representative of a class is the function whose
// truth table, read as a 2^n-bit binary number, is smallest.
//
// A Transform T describes one NPN manipulation. Apply(T, f) evaluates
//
//	g(x_0, …, x_{n-1}) = f(u_0, …, u_{n-1}) ⊕ NegOut,  u_j = x_{Perm[j]} ⊕ Flip_j,
//
// that is, input j of f is driven by variable Perm[j] of g, complemented
// when bit j of Flip is set. This "wiring" form is exactly what is needed
// to instantiate a database MIG on the leaves of a cut.
//
// Beyond 4 variables exhaustive classification stops scaling (~616k
// classes at n = 5), so Canonize5 computes a *semi-canonical* form
// instead: signature normalization — output polarity by ones count,
// input polarities and variable order by cofactor counts — prunes the
// 7680-transform sweep down to the handful of candidates whose image
// satisfies the invariants, and the minimum image among them is the
// representative. Because the candidate set is a property of the class,
// not of the queried member, the result is a true class invariant; it
// merely need not be the class-wide minimum truth table. Signature ties
// multiply the candidates, and degenerate fully-symmetric functions fall
// back to the exhaustive sweep (a class-invariant decision too).
//
// Role in the functional-hashing flow: Canonize sits on the hot path of
// every rewriting pass — each enumerated cut's truth table is
// canonicalized here before the database lookup. internal/db.Cache
// memoizes the (Canonize, Lookup) pair so repeated cut functions skip
// this package entirely; Canonize5 keys the on-demand 5-input store
// (db.OnDemand) the same way.
//
// Concurrency contract: Transform is an immutable value and every
// function is pure. The 4-variable fast path uses a precomputed table
// built lazily under sync.Once, so all entry points are safe for
// unlimited concurrent use.
package npn
