package npn

import (
	"fmt"
	"sync"

	"mighash/internal/tt"
)

// Transform is one NPN transformation over N variables. See the package
// comment for the semantics of Apply.
type Transform struct {
	N      int
	Perm   [tt.MaxVars]int // Perm[j]: g-variable feeding input j of f
	Flip   uint8           // bit j: input j of f is complemented
	NegOut bool            // the output of f is complemented
}

// Identity returns the identity transform over n variables.
func Identity(n int) Transform {
	var t Transform
	t.N = n
	for i := 0; i < n; i++ {
		t.Perm[i] = i
	}
	return t
}

// Apply computes the truth table of Apply(T, f) as defined in the package
// comment. f must have T.N variables.
//
// The computation is word-parallel: input complements are branch-gated
// FlipVar masks and the permutation runs through tt.Permute's
// transposition decomposition, so no per-assignment scan remains on the
// canonization hot path (applySlow pins the reference semantics).
func (t Transform) Apply(f tt.TT) tt.TT {
	if f.N != t.N {
		panic(fmt.Sprintf("npn: transform over %d variables applied to %d-variable function", t.N, f.N))
	}
	g := f
	for j := 0; j < t.N; j++ {
		if t.Flip>>uint(j)&1 == 1 {
			g = g.FlipVar(j)
		}
	}
	// g-variable j must read result-variable Perm[j]; Permute wants the
	// opposite indexing (position i names its source), hence the inverse.
	var inv [tt.MaxVars]int
	for j := 0; j < t.N; j++ {
		inv[t.Perm[j]] = j
	}
	return g.Permute(inv[:t.N]).NotIf(t.NegOut)
}

// applySlow is the per-assignment reference implementation Apply is
// verified against (and benchmarked over).
func (t Transform) applySlow(f tt.TT) tt.TT {
	var out uint64
	n := uint(t.N)
	for x := uint(0); x < uint(1)<<n; x++ {
		var u uint
		for j := uint(0); j < n; j++ {
			bit := (x >> uint(t.Perm[j])) & 1
			bit ^= uint(t.Flip>>j) & 1
			u |= bit << j
		}
		v := (f.Bits >> u) & 1
		if t.NegOut {
			v ^= 1
		}
		out |= uint64(v) << x
	}
	return tt.TT{Bits: out, N: t.N}
}

// Inverse returns the transform S with Apply(S, Apply(T, f)) = f for all f.
func (t Transform) Inverse() Transform {
	inv := Transform{N: t.N, NegOut: t.NegOut}
	for j := 0; j < t.N; j++ {
		inv.Perm[t.Perm[j]] = j
	}
	for i := 0; i < t.N; i++ {
		if t.Flip>>uint(inv.Perm[i])&1 == 1 {
			inv.Flip |= 1 << uint(i)
		}
	}
	return inv
}

// String renders the transform in a compact human-readable form.
func (t Transform) String() string {
	s := "perm("
	for i := 0; i < t.N; i++ {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprint(t.Perm[i])
	}
	s += fmt.Sprintf(") flip=%0*b", t.N, t.Flip)
	if t.NegOut {
		s += " negout"
	}
	return s
}

// Perms returns all permutations of 0..n-1 in lexicographic order.
func Perms(n int) [][]int {
	if n == 0 {
		return [][]int{{}}
	}
	var out [][]int
	var rec func(prefix []int, rest []int)
	rec = func(prefix, rest []int) {
		if len(rest) == 0 {
			out = append(out, append([]int(nil), prefix...))
			return
		}
		for i, v := range rest {
			nr := make([]int, 0, len(rest)-1)
			nr = append(nr, rest[:i]...)
			nr = append(nr, rest[i+1:]...)
			rec(append(prefix, v), nr)
		}
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	rec(nil, idx)
	return out
}

// All returns every NPN transform over n variables: 2·2^n·n! in total
// (for n = 4 that is 768). The order is deterministic.
func All(n int) []Transform {
	perms := Perms(n)
	out := make([]Transform, 0, len(perms)<<uint(n+1))
	for _, p := range perms {
		var base Transform
		base.N = n
		copy(base.Perm[:], p)
		for flip := 0; flip < 1<<uint(n); flip++ {
			base.Flip = uint8(flip)
			base.NegOut = false
			out = append(out, base)
			base.NegOut = true
			out = append(out, base)
		}
	}
	return out
}

// Canonize returns the NPN class representative rep of f together with a
// transform T such that Apply(T, rep) = f. The representative is the
// minimum truth-table value over the whole class. For n = 4 a precomputed
// table makes this O(1); other arities fall back to explicit enumeration.
func Canonize(f tt.TT) (rep tt.TT, t Transform) {
	if f.N == 4 {
		e := table4()[f.Bits&0xFFFF]
		return tt.New(4, uint64(e.rep)), transforms4()[e.tid]
	}
	return canonizeSlow(f)
}

func canonizeSlow(f tt.TT) (tt.TT, Transform) {
	best := f
	bestT := Identity(f.N)
	for _, t := range All(f.N) {
		g := t.Apply(f)
		if g.Bits < best.Bits {
			best = g
			bestT = t
		}
	}
	// bestT maps f to the representative; the caller wants the opposite
	// direction (instantiate f from the representative).
	return best, bestT.Inverse()
}

// Classes returns the truth tables of all NPN class representatives over n
// variables, in increasing truth-table order. It panics for n > 4, where
// exhaustive enumeration is impractical (Sec. IV of the paper).
func Classes(n int) []tt.TT {
	if n > 4 {
		panic("npn: exhaustive class enumeration is only supported for n <= 4")
	}
	if n == 4 {
		reps := classReps4()
		out := make([]tt.TT, len(reps))
		for i, r := range reps {
			out[i] = tt.New(4, uint64(r))
		}
		return out
	}
	size := 1 << (1 << uint(n))
	seen := make([]bool, size)
	var out []tt.TT
	all := All(n)
	for v := 0; v < size; v++ {
		if seen[v] {
			continue
		}
		f := tt.New(n, uint64(v))
		out = append(out, f)
		for _, t := range all {
			seen[t.Apply(f).Bits] = true
		}
	}
	return out
}

// entry4 is one row of the 4-variable lookup table: the class
// representative of the function and the index (into transforms4) of a
// transform T with Apply(T, rep) = f.
type entry4 struct {
	rep uint16
	tid uint16
}

var (
	tbl4Once  sync.Once
	tbl4      []entry4
	tbl4Reps  []uint16
	tbl4Trans []Transform
	tbl4Sizes map[uint16]int
)

func buildTable4() {
	tbl4Trans = All(4)
	tbl4 = make([]entry4, 1<<16)
	present := make([]bool, 1<<16)
	for v := 0; v < 1<<16; v++ {
		if present[v] {
			continue
		}
		// v is unseen and we scan in increasing order, so it is the
		// smallest truth table of its class: the representative.
		tbl4Reps = append(tbl4Reps, uint16(v))
		rep := tt.New(4, uint64(v))
		for tid, t := range tbl4Trans {
			g := t.Apply(rep)
			if !present[g.Bits] {
				present[g.Bits] = true
				tbl4[g.Bits] = entry4{rep: uint16(v), tid: uint16(tid)}
			}
		}
	}
	tbl4Sizes = make(map[uint16]int, len(tbl4Reps))
	for v := 0; v < 1<<16; v++ {
		tbl4Sizes[tbl4[v].rep]++
	}
}

// ClassSize4 returns the number of 4-variable functions in the NPN class
// of f. The sizes over all 222 classes sum to 2^16.
func ClassSize4(f tt.TT) int {
	if f.N != 4 {
		panic("npn: ClassSize4 requires a 4-variable function")
	}
	tbl4Once.Do(buildTable4)
	return tbl4Sizes[uint16(table4()[f.Bits&0xFFFF].rep)]
}

func table4() []entry4 {
	tbl4Once.Do(buildTable4)
	return tbl4
}

func classReps4() []uint16 {
	tbl4Once.Do(buildTable4)
	return tbl4Reps
}

func transforms4() []Transform {
	tbl4Once.Do(buildTable4)
	return tbl4Trans
}

// NumClasses4 returns the number of NPN classes of 4-variable functions
// (222, per Sec. II-D of the paper).
func NumClasses4() int { return len(classReps4()) }

// ClassOf4 returns the representative truth table of the class of the
// 4-variable function f.
func ClassOf4(f tt.TT) tt.TT {
	if f.N != 4 {
		panic("npn: ClassOf4 requires a 4-variable function")
	}
	return tt.New(4, uint64(table4()[f.Bits&0xFFFF].rep))
}
