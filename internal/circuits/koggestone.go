package circuits

import "mighash/internal/mig"

// AddKoggeStone returns the sum and carry-out of a + c + cin computed by
// a Kogge-Stone parallel-prefix adder: O(log w) depth against the ripple
// adder's O(w), at roughly w·log w extra gates. It provides a second
// adder architecture for the depth-optimization experiments — the
// structure the algebraic optimizer is expected to approach when
// flattening a ripple carry chain (the paper's introduction highlights
// exactly this transformation).
func (b *Builder) AddKoggeStone(a, c Word, cin mig.Lit) (Word, mig.Lit) {
	checkWidths(a, c)
	w := len(a)
	if w == 0 {
		return Word{}, cin
	}
	// Generate/propagate pairs per bit position.
	g := make([]mig.Lit, w)
	p := make([]mig.Lit, w)
	for i := 0; i < w; i++ {
		g[i] = b.M.And(a[i], c[i])
		p[i] = b.M.Xor(a[i], c[i])
	}
	// Fold the carry-in into position 0: g0' = g0 ∨ (p0 ∧ cin).
	g0 := b.M.Or(g[0], b.M.And(p[0], cin))
	gpfx := append([]mig.Lit{g0}, g[1:]...)
	ppfx := append([]mig.Lit{p[0]}, p[1:]...)
	// Parallel-prefix combine: (g, p) ∘ (g', p') = (g ∨ (p ∧ g'), p ∧ p').
	for dist := 1; dist < w; dist <<= 1 {
		ng := append([]mig.Lit(nil), gpfx...)
		np := append([]mig.Lit(nil), ppfx...)
		for i := dist; i < w; i++ {
			ng[i] = b.M.Or(gpfx[i], b.M.And(ppfx[i], gpfx[i-dist]))
			np[i] = b.M.And(ppfx[i], ppfx[i-dist])
		}
		gpfx, ppfx = ng, np
	}
	// carry into position i is the prefix generate of position i−1
	// (position 0 receives cin directly).
	sum := make(Word, w)
	sum[0] = b.M.Xor(p[0], cin)
	for i := 1; i < w; i++ {
		sum[i] = b.M.Xor(p[i], gpfx[i-1])
	}
	return sum, gpfx[w-1]
}
