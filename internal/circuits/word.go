// Package circuits provides a word-level construction layer over MIGs and
// uses it to generate the eight arithmetic circuits of the EPFL benchmark
// suite with identical I/O signatures (Sec. V of the paper; see DESIGN.md
// for the substitution rationale — the benchmark distribution itself is
// external data, so the workloads are regenerated from their arithmetic
// definitions).
package circuits

import (
	"fmt"

	"mighash/internal/mig"
)

// Word is a little-endian vector of signals: w[0] is the least-significant
// bit.
type Word []mig.Lit

// Builder adds word-level operators on top of an MIG under construction.
type Builder struct {
	M *mig.MIG
}

// NewBuilder returns a builder over a fresh MIG with the given inputs.
func NewBuilder(numPIs int) *Builder {
	return &Builder{M: mig.New(numPIs)}
}

// Inputs returns a word of consecutive primary inputs [lo, lo+width).
func (b *Builder) Inputs(lo, width int) Word {
	w := make(Word, width)
	for i := range w {
		w[i] = b.M.Input(lo + i)
	}
	return w
}

// Constant returns a width-bit word holding value.
func (b *Builder) Constant(value uint64, width int) Word {
	w := make(Word, width)
	for i := range w {
		if value>>uint(i)&1 == 1 {
			w[i] = mig.Const1
		} else {
			w[i] = mig.Const0
		}
	}
	return w
}

// Zero returns a width-bit all-zero word.
func (b *Builder) Zero(width int) Word { return b.Constant(0, width) }

// Outputs registers every bit of w as a primary output, LSB first.
func (b *Builder) Outputs(w Word) {
	for _, l := range w {
		b.M.AddOutput(l)
	}
}

// Not complements every bit.
func (b *Builder) Not(a Word) Word {
	w := make(Word, len(a))
	for i := range a {
		w[i] = a[i].Not()
	}
	return w
}

// Xor is the bitwise exclusive or of equal-width words.
func (b *Builder) Xor(a, c Word) Word {
	checkWidths(a, c)
	w := make(Word, len(a))
	for i := range a {
		w[i] = b.M.Xor(a[i], c[i])
	}
	return w
}

// XorBit xors every bit of a with s.
func (b *Builder) XorBit(a Word, s mig.Lit) Word {
	w := make(Word, len(a))
	for i := range a {
		w[i] = b.M.Xor(a[i], s)
	}
	return w
}

// AndBit masks every bit of a with s.
func (b *Builder) AndBit(a Word, s mig.Lit) Word {
	w := make(Word, len(a))
	for i := range a {
		w[i] = b.M.And(a[i], s)
	}
	return w
}

// Mux returns s ? a : c, bitwise over equal-width words.
func (b *Builder) Mux(s mig.Lit, a, c Word) Word {
	checkWidths(a, c)
	w := make(Word, len(a))
	for i := range a {
		w[i] = b.M.Mux(s, a[i], c[i])
	}
	return w
}

// Add returns the width-|a| sum of a, c and cin along with the carry out,
// built as a ripple of Fig. 1 full adders.
func (b *Builder) Add(a, c Word, cin mig.Lit) (Word, mig.Lit) {
	checkWidths(a, c)
	sum := make(Word, len(a))
	carry := cin
	for i := range a {
		sum[i], carry = b.M.FullAdder(a[i], c[i], carry)
	}
	return sum, carry
}

// Sub returns a−c (two's complement) and a "no borrow" flag that is 1 iff
// a ≥ c as unsigned integers.
func (b *Builder) Sub(a, c Word) (Word, mig.Lit) {
	return b.Add(a, b.Not(c), mig.Const1)
}

// Geq returns the a ≥ c comparison bit for unsigned words.
func (b *Builder) Geq(a, c Word) mig.Lit {
	_, geq := b.Sub(a, c)
	return geq
}

// AddSub returns a+c when sub=0 and a−c when sub=1, plus the raw carry.
func (b *Builder) AddSub(a, c Word, sub mig.Lit) (Word, mig.Lit) {
	return b.Add(a, b.XorBit(c, sub), sub)
}

// ShiftLeftConst shifts in zeros at the bottom, keeping the width.
func (b *Builder) ShiftLeftConst(a Word, k int) Word {
	w := make(Word, len(a))
	for i := range w {
		if i >= k {
			w[i] = a[i-k]
		} else {
			w[i] = mig.Const0
		}
	}
	return w
}

// ShiftRightConst shifts in zeros at the top, keeping the width.
func (b *Builder) ShiftRightConst(a Word, k int) Word {
	w := make(Word, len(a))
	for i := range w {
		if i+k < len(a) {
			w[i] = a[i+k]
		} else {
			w[i] = mig.Const0
		}
	}
	return w
}

// ShiftRightArith shifts right replicating the sign bit.
func (b *Builder) ShiftRightArith(a Word, k int) Word {
	w := make(Word, len(a))
	sign := a[len(a)-1]
	for i := range w {
		if i+k < len(a) {
			w[i] = a[i+k]
		} else {
			w[i] = sign
		}
	}
	return w
}

// BarrelShiftLeft shifts a left by the variable amount s (LSB-first shift
// count), filling with zeros. Width is preserved; stages are mux rows.
func (b *Builder) BarrelShiftLeft(a Word, s Word) Word {
	w := append(Word(nil), a...)
	for j := range s {
		shifted := b.ShiftLeftConst(w, 1<<uint(j))
		w = b.Mux(s[j], shifted, w)
	}
	return w
}

// Extend zero-extends a to width bits (or truncates when narrower).
func (b *Builder) Extend(a Word, width int) Word {
	w := make(Word, width)
	for i := range w {
		if i < len(a) {
			w[i] = a[i]
		} else {
			w[i] = mig.Const0
		}
	}
	return w
}

// Mul returns the full 2w-bit product of two w-bit words as a shift-and-add
// array multiplier. The invariant after row i is that prod[0..i] holds the
// finalized low bits and acc the (w-bit) high window of the running sum, so
// each row costs one w-bit ripple adder.
func (b *Builder) Mul(a, c Word) Word {
	checkWidths(a, c)
	w := len(a)
	prod := make(Word, 2*w)
	acc := b.Zero(w)
	for i := 0; i < w; i++ {
		row := b.AndBit(c, a[i])
		sum, carry := b.Add(acc, row, mig.Const0)
		prod[i] = sum[0]
		acc = append(append(Word{}, sum[1:]...), carry)
	}
	copy(prod[w:], acc)
	return prod
}

func checkWidths(a, c Word) {
	if len(a) != len(c) {
		panic(fmt.Sprintf("circuits: width mismatch %d vs %d", len(a), len(c)))
	}
}
