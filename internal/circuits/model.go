package circuits

import "math/big"

// The software models below are the specifications the generated circuits
// are tested against. They mirror the circuit datapaths bit-exactly —
// including truncation behaviour of the fixed-point recurrences — so a
// mismatch on any input vector is a construction bug, never a rounding
// discrepancy.

// getWord reads width bits starting at lo from the assignment, LSB first.
func getWord(in []bool, lo, width int) *big.Int {
	v := new(big.Int)
	for i := 0; i < width; i++ {
		if in[lo+i] {
			v.SetBit(v, i, 1)
		}
	}
	return v
}

// getUint is getWord for widths up to 64 bits.
func getUint(in []bool, lo, width int) uint64 {
	var v uint64
	for i := 0; i < width; i++ {
		if in[lo+i] {
			v |= 1 << uint(i)
		}
	}
	return v
}

// putWord appends width bits of v to out, LSB first.
func putWord(out []bool, v *big.Int, width int) []bool {
	for i := 0; i < width; i++ {
		out = append(out, v.Bit(i) == 1)
	}
	return out
}

// putUint appends width bits of v to out, LSB first.
func putUint(out []bool, v uint64, width int) []bool {
	for i := 0; i < width; i++ {
		out = append(out, v>>uint(i)&1 == 1)
	}
	return out
}

func modelAdder(in []bool) []bool {
	a := getWord(in, 0, 128)
	b := getWord(in, 128, 128)
	return putWord(nil, a.Add(a, b), 129)
}

func modelDivisor(in []bool) []bool {
	a := getWord(in, 0, 64)
	d := getWord(in, 64, 64)
	var q, r *big.Int
	if d.Sign() == 0 {
		// The restoring recurrence subtracts nothing: all quotient bits
		// come out 1 and the dividend falls through as the remainder.
		q = new(big.Int).Lsh(big.NewInt(1), 64)
		q.Sub(q, big.NewInt(1))
		r = a
	} else {
		q, r = new(big.Int).QuoRem(a, d, new(big.Int))
	}
	return putWord(putWord(nil, q, 64), r, 64)
}

func modelLog2(in []bool) []bool {
	const w = log2MantissaBits
	x := getUint(in, 0, 32)
	if x == 0 {
		return make([]bool, 32)
	}
	e := uint64(63 - leadingZeros32(x) - 32)
	m := (x << (31 - e)) >> (32 - w) // top w bits of the normalized value
	var frac uint64
	for j := log2FracBits - 1; j >= 0; j-- {
		sq := m * m // 2w ≤ 32 bits: fits easily in uint64
		if sq>>(2*w-1)&1 == 1 {
			frac |= 1 << uint(j)
			m = sq >> w
		} else {
			m = sq >> (w - 1) & (1<<w - 1)
		}
	}
	return putUint(putUint(nil, frac, log2FracBits), e, 5)
}

func leadingZeros32(x uint64) int {
	n := 0
	for i := 31; i >= 0 && x>>uint(i)&1 == 0; i-- {
		n++
	}
	return n
}

func modelMax(in []bool) []bool {
	a := make([]*big.Int, 4)
	for i := range a {
		a[i] = getWord(in, 128*i, 128)
	}
	// Same tie-breaking as the circuit: ≥ comparisons prefer the higher
	// index within a pair and the 2/3 pair over the 0/1 pair.
	ge10 := a[1].Cmp(a[0]) >= 0
	m01, i01 := a[0], uint64(0)
	if ge10 {
		m01, i01 = a[1], 1
	}
	ge32 := a[3].Cmp(a[2]) >= 0
	m23, i23 := a[2], uint64(2)
	if ge32 {
		m23, i23 = a[3], 3
	}
	m, idx := m01, i01
	if m23.Cmp(m01) >= 0 {
		m, idx = m23, i23
	}
	return putUint(putWord(nil, m, 128), idx, 2)
}

func modelMultiplier(in []bool) []bool {
	a := getWord(in, 0, 64)
	c := getWord(in, 64, 64)
	return putWord(nil, a.Mul(a, c), 128)
}

func modelSine(in []bool) []bool {
	theta := int64(getUint(in, 0, 24))
	mask := int64(1)<<sineWidth - 1
	sext := func(v int64) int64 { // interpret as signed sineWidth-bit
		v &= mask
		if v>>(sineWidth-1)&1 == 1 {
			v -= 1 << sineWidth
		}
		return v
	}
	x := int64(sineGain())
	y := int64(0)
	z := theta
	for i, atan := range sineAtanTable() {
		xs, ys := sext(x)>>uint(i), sext(y)>>uint(i)
		if z >= 0 {
			x, y, z = x-ys, y+xs, z-int64(atan)
		} else {
			x, y, z = x+ys, y-xs, z+int64(atan)
		}
		x, y, z = sext(x), sext(y), sext(z)
	}
	return putUint(nil, uint64(y&mask), 25)
}

func modelSqrt(in []bool) []bool {
	a := getWord(in, 0, 128)
	return putWord(nil, new(big.Int).Sqrt(a), 64)
}

func modelSquare(in []bool) []bool {
	a := getWord(in, 0, 64)
	return putWord(nil, new(big.Int).Mul(a, a), 128)
}
