package circuits

import (
	"math/rand"
	"testing"

	"mighash/internal/mig"
)

// TestKoggeStoneMatchesRipple proves 16-bit equivalence of the two adder
// architectures with the SAT checker, including the carry-in.
func TestKoggeStoneMatchesRipple(t *testing.T) {
	build := func(kogge bool) *mig.MIG {
		b := NewBuilder(33)
		x, y, cin := b.Inputs(0, 16), b.Inputs(16, 16), b.M.Input(32)
		var sum Word
		var cout mig.Lit
		if kogge {
			sum, cout = b.AddKoggeStone(x, y, cin)
		} else {
			sum, cout = b.Add(x, y, cin)
		}
		b.Outputs(sum)
		b.M.AddOutput(cout)
		return b.M
	}
	ripple, kogge := build(false), build(true)
	eq, ce, err := mig.Equivalent(ripple, kogge, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatalf("Kogge-Stone differs from ripple: %v", ce)
	}
	if kogge.Depth() >= ripple.Depth() {
		t.Errorf("no depth advantage: ripple %d, Kogge-Stone %d", ripple.Depth(), kogge.Depth())
	}
	t.Logf("16-bit: ripple size=%d depth=%d, Kogge-Stone size=%d depth=%d",
		ripple.Size(), ripple.Depth(), kogge.Size(), kogge.Depth())
}

// TestKoggeStone128RandomVectors validates the wide configuration against
// machine arithmetic.
func TestKoggeStone128RandomVectors(t *testing.T) {
	b := NewBuilder(128)
	x, y := b.Inputs(0, 64), b.Inputs(64, 64)
	sum, cout := b.AddKoggeStone(x, y, mig.Const0)
	b.Outputs(sum)
	b.M.AddOutput(cout)
	rng := rand.New(rand.NewSource(107))
	for trial := 0; trial < 200; trial++ {
		av, cv := rng.Uint64(), rng.Uint64()
		in := make([]bool, 128)
		for i := 0; i < 64; i++ {
			in[i] = av>>uint(i)&1 == 1
			in[64+i] = cv>>uint(i)&1 == 1
		}
		out := b.M.EvalBits(in)
		var got uint64
		for i := 0; i < 64; i++ {
			if out[i] {
				got |= 1 << uint(i)
			}
		}
		if got != av+cv || out[64] != (av+cv < av) {
			t.Fatalf("trial %d: %d+%d computed wrong", trial, av, cv)
		}
	}
}

// TestKoggeStoneEdgeWidths covers degenerate widths.
func TestKoggeStoneEdgeWidths(t *testing.T) {
	b := NewBuilder(3)
	sum, cout := b.AddKoggeStone(Word{b.M.Input(0)}, Word{b.M.Input(1)}, b.M.Input(2))
	b.Outputs(sum)
	b.M.AddOutput(cout)
	for v := 0; v < 8; v++ {
		in := []bool{v&1 == 1, v&2 == 2, v&4 == 4}
		out := b.M.EvalBits(in)
		total := v&1 + v>>1&1 + v>>2&1
		if out[0] != (total&1 == 1) || out[1] != (total >= 2) {
			t.Fatalf("1-bit adder wrong on %03b", v)
		}
	}
	if s, c := b.AddKoggeStone(Word{}, Word{}, mig.Const1); len(s) != 0 || c != mig.Const1 {
		t.Error("zero-width adder should pass the carry through")
	}
}
