package circuits

import (
	"math"

	"mighash/internal/mig"
)

// Spec describes one generated benchmark: its EPFL signature, a builder
// and a bit-exact software model used to validate the construction.
type Spec struct {
	Name           string
	NumPIs, NumPOs int
	Build          func() *mig.MIG
	// Model maps an input assignment (LSB-first, same layout as the
	// circuit inputs) to the expected output assignment.
	Model func(in []bool) []bool
}

// Parameters of the transcendental circuits. The mantissa width trades
// circuit size against fraction accuracy exactly like the truncated
// datapaths of the original benchmark netlists.
const (
	log2MantissaBits = 16 // 1.15 fixed-point recurrence mantissa
	log2FracBits     = 27 // fraction bits of the 5.27 result
	sineIterations   = 24 // CORDIC micro-rotations
	sineWidth        = 28 // signed 3.25 fixed-point datapath
)

// All returns the eight arithmetic benchmarks in the paper's table order.
func All() []Spec {
	return []Spec{
		{Name: "Adder", NumPIs: 256, NumPOs: 129, Build: BuildAdder, Model: modelAdder},
		{Name: "Divisor", NumPIs: 128, NumPOs: 128, Build: BuildDivisor, Model: modelDivisor},
		{Name: "Log2", NumPIs: 32, NumPOs: 32, Build: BuildLog2, Model: modelLog2},
		{Name: "Max", NumPIs: 512, NumPOs: 130, Build: BuildMax, Model: modelMax},
		{Name: "Multiplier", NumPIs: 128, NumPOs: 128, Build: BuildMultiplier, Model: modelMultiplier},
		{Name: "Sine", NumPIs: 24, NumPOs: 25, Build: BuildSine, Model: modelSine},
		{Name: "Square-root", NumPIs: 128, NumPOs: 64, Build: BuildSqrt, Model: modelSqrt},
		{Name: "Square", NumPIs: 64, NumPOs: 128, Build: BuildSquare, Model: modelSquare},
	}
}

// ByName returns the spec with the given name.
func ByName(name string) (Spec, bool) {
	for _, s := range All() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// BuildAdder returns the 256/129 adder: inputs a (bits 0..127) and b
// (bits 128..255), outputs a+b as a 129-bit sum.
func BuildAdder() *mig.MIG {
	b := NewBuilder(256)
	x := b.Inputs(0, 128)
	y := b.Inputs(128, 128)
	sum, cout := b.Add(x, y, mig.Const0)
	b.Outputs(sum)
	b.M.AddOutput(cout)
	return b.M
}

// BuildDivisor returns the 128/128 divider: inputs dividend a (bits
// 0..63) and divisor d (bits 64..127); outputs quotient (bits 0..63) and
// remainder (bits 64..127) of the restoring division recurrence. Division
// by zero yields quotient 2^64−1 and remainder a, the natural fixpoint of
// the recurrence.
func BuildDivisor() *mig.MIG {
	b := NewBuilder(128)
	a := b.Inputs(0, 64)
	d := b.Extend(b.Inputs(64, 64), 65)
	rem := b.Zero(65)
	q := make(Word, 64)
	for i := 63; i >= 0; i-- {
		rem = b.ShiftLeftConst(rem, 1)
		rem[0] = a[i]
		diff, geq := b.Sub(rem, d)
		q[i] = geq
		rem = b.Mux(geq, diff, rem)
	}
	b.Outputs(q)
	b.Outputs(rem[:64])
	return b.M
}

// BuildLog2 returns the 32/32 binary logarithm: for a 32-bit integer x
// the output packs ⌊log2 x⌋ in the top 5 bits and a 27-bit fraction
// computed by the squaring digit recurrence over a truncated
// log2MantissaBits-wide mantissa. x = 0 maps to 0.
func BuildLog2() *mig.MIG {
	const w = log2MantissaBits
	b := NewBuilder(32)
	x := b.Inputs(0, 32)

	// Exponent: position of the most significant set bit, via a prefix-OR
	// scan; isTop[i] = x_i ∧ ¬(x_31 ∨ … ∨ x_{i+1}).
	prefix := mig.Const0
	isTop := make([]mig.Lit, 32)
	for i := 31; i >= 0; i-- {
		isTop[i] = b.M.And(x[i], prefix.Not())
		prefix = b.M.Or(prefix, x[i])
	}
	e := make(Word, 5)
	for j := 0; j < 5; j++ {
		bit := mig.Const0
		for i := 0; i < 32; i++ {
			if i>>uint(j)&1 == 1 {
				bit = b.M.Or(bit, isTop[i])
			}
		}
		e[j] = bit
	}

	// Normalize: m32 = x << (31−e); for a 5-bit exponent 31−e = ¬e, so the
	// barrel shifter consumes the complemented exponent directly.
	m32 := b.BarrelShiftLeft(x, b.Not(e))
	m := m32[32-w:] // 1.(w−1) fixed-point mantissa in [1, 2)

	// Fraction: squaring digit recurrence. m² ∈ [1, 4); its top bit is the
	// next fraction bit and the mantissa renormalizes by one position.
	frac := make(Word, log2FracBits)
	for j := log2FracBits - 1; j >= 0; j-- {
		sq := b.Mul(m, m)
		top := sq[2*w-1]
		frac[j] = top
		m = b.Mux(top, sq[w:], sq[w-1:2*w-1])
	}
	b.Outputs(frac)
	b.Outputs(e)
	return b.M
}

// BuildMax returns the 512/130 four-way maximum: inputs a0..a3 of 128
// bits each; outputs the 128-bit maximum followed by the 2-bit index of
// the winner (ties prefer the higher index, matching the ≥ comparisons).
func BuildMax() *mig.MIG {
	b := NewBuilder(512)
	a := make([]Word, 4)
	for i := range a {
		a[i] = b.Inputs(128*i, 128)
	}
	ge10 := b.Geq(a[1], a[0])
	m01 := b.Mux(ge10, a[1], a[0])
	ge32 := b.Geq(a[3], a[2])
	m23 := b.Mux(ge32, a[3], a[2])
	geF := b.Geq(m23, m01)
	maxw := b.Mux(geF, m23, m01)
	idx0 := b.M.Mux(geF, ge32, ge10)
	b.Outputs(maxw)
	b.M.AddOutput(idx0)
	b.M.AddOutput(geF)
	return b.M
}

// BuildMultiplier returns the 128/128 multiplier: inputs a (bits 0..63)
// and c (bits 64..127), output the 128-bit product.
func BuildMultiplier() *mig.MIG {
	b := NewBuilder(128)
	p := b.Mul(b.Inputs(0, 64), b.Inputs(64, 64))
	b.Outputs(p)
	return b.M
}

// sineAtanTable returns atan(2^-i) in units of (π/2)/2^24 — the same
// quarter-turn fixed point as the circuit input, so the angle accumulator
// consumes θ directly. The x/y datapath uses 0.25 fixed point; the two
// units never mix.
func sineAtanTable() []uint64 {
	t := make([]uint64, sineIterations)
	for i := range t {
		t[i] = uint64(math.Round(math.Atan(math.Exp2(float64(-i))) / (math.Pi / 2) * (1 << 24)))
	}
	return t
}

// sineGain returns the CORDIC gain compensation ∏ 1/√(1+2^-2i) in 0.25
// fixed point.
func sineGain() uint64 {
	k := 1.0
	for i := 0; i < sineIterations; i++ {
		k /= math.Sqrt(1 + math.Exp2(float64(-2*i)))
	}
	return uint64(math.Round(k * (1 << 25)))
}

// BuildSine returns the 24/25 sine: the input is an angle θ ∈ [0, π/2)
// in 0.24 fixed-point quarter-turns, the output sin(θ) in 0.25 fixed
// point, computed with sineIterations CORDIC rotations on a signed
// sineWidth-bit datapath.
func BuildSine() *mig.MIG {
	b := NewBuilder(24)
	theta := b.Extend(b.Inputs(0, 24), sineWidth) // zero-extended: θ ≥ 0
	x := b.Constant(sineGain(), sineWidth)
	y := b.Zero(sineWidth)
	z := theta
	for i, atan := range sineAtanTable() {
		// d = +1 when z ≥ 0 (sign bit clear): rotate towards zero.
		dNeg := z[sineWidth-1] // 1 when z < 0
		xs := b.ShiftRightArith(x, i)
		ys := b.ShiftRightArith(y, i)
		// x' = x − d·(y>>i); y' = y + d·(x>>i); z' = z − d·atan_i.
		nx, _ := b.AddSub(x, ys, dNeg.Not())
		ny, _ := b.AddSub(y, xs, dNeg)
		nz, _ := b.AddSub(z, b.Constant(atan, sineWidth), dNeg.Not())
		x, y, z = nx, ny, nz
	}
	b.Outputs(y[:25])
	return b.M
}

// BuildSqrt returns the 128/64 square root: a 128-bit radicand mapped to
// the 64-bit integer square root by the restoring digit recurrence.
func BuildSqrt() *mig.MIG {
	b := NewBuilder(128)
	a := b.Inputs(0, 128)
	const w = 67 // remainder datapath: two new bits per step plus margin
	rem := b.Zero(w)
	root := b.Zero(w)
	for i := 63; i >= 0; i-- {
		rem = b.ShiftLeftConst(rem, 2)
		rem[1], rem[0] = a[2*i+1], a[2*i]
		trial := b.ShiftLeftConst(root, 2)
		trial[0] = mig.Const1
		diff, geq := b.Sub(rem, trial)
		rem = b.Mux(geq, diff, rem)
		root = b.ShiftLeftConst(root, 1)
		root[0] = geq
	}
	b.Outputs(root[:64])
	return b.M
}

// BuildSquare returns the 64/128 squarer; structural hashing shares the
// symmetric partial products of the multiplier array.
func BuildSquare() *mig.MIG {
	b := NewBuilder(64)
	a := b.Inputs(0, 64)
	b.Outputs(b.Mul(a, a))
	return b.M
}
