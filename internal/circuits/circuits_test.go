package circuits

import (
	"math"
	"math/big"
	"math/rand"
	"testing"

	"mighash/internal/mig"
)

// evalWord decodes width output bits starting at lo from an EvalBits
// result.
func evalWord(out []bool, lo, width int) *big.Int {
	v := new(big.Int)
	for i := 0; i < width; i++ {
		if out[lo+i] {
			v.SetBit(v, i, 1)
		}
	}
	return v
}

func randInputs(rng *rand.Rand, n int) []bool {
	in := make([]bool, n)
	for i := range in {
		in[i] = rng.Intn(2) == 1
	}
	return in
}

// cornerInputs yields deterministic corner-case assignments: all zero,
// all one, single walking bits, and dense/sparse stripes.
func cornerInputs(n int) [][]bool {
	var out [][]bool
	zero := make([]bool, n)
	one := make([]bool, n)
	for i := range one {
		one[i] = true
	}
	out = append(out, zero, one)
	for _, pos := range []int{0, 1, n / 2, n - 1} {
		v := make([]bool, n)
		v[pos] = true
		out = append(out, v)
	}
	stripe := make([]bool, n)
	for i := 0; i < n; i += 2 {
		stripe[i] = true
	}
	out = append(out, stripe)
	return out
}

// TestSpecsSignature pins the EPFL I/O signatures of Table III.
func TestSpecsSignature(t *testing.T) {
	want := map[string][2]int{
		"Adder": {256, 129}, "Divisor": {128, 128}, "Log2": {32, 32},
		"Max": {512, 130}, "Multiplier": {128, 128}, "Sine": {24, 25},
		"Square-root": {128, 64}, "Square": {64, 128},
	}
	specs := All()
	if len(specs) != 8 {
		t.Fatalf("got %d specs, want 8", len(specs))
	}
	for _, s := range specs {
		w, ok := want[s.Name]
		if !ok {
			t.Errorf("unexpected benchmark %q", s.Name)
			continue
		}
		if s.NumPIs != w[0] || s.NumPOs != w[1] {
			t.Errorf("%s: declared signature %d/%d, want %d/%d", s.Name, s.NumPIs, s.NumPOs, w[0], w[1])
		}
		m := s.Build()
		if m.NumPIs() != w[0] || m.NumPOs() != w[1] {
			t.Errorf("%s: built signature %d/%d, want %d/%d", s.Name, m.NumPIs(), m.NumPOs(), w[0], w[1])
		}
		if m.Size() == 0 {
			t.Errorf("%s: empty circuit", s.Name)
		}
	}
}

// TestModelsMatchCircuits cross-validates every generator against its
// bit-exact software model on corner cases plus random vectors.
func TestModelsMatchCircuits(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			m := s.Build()
			vectors := cornerInputs(s.NumPIs)
			for i := 0; i < 24; i++ {
				vectors = append(vectors, randInputs(rng, s.NumPIs))
			}
			for vi, in := range vectors {
				got := m.EvalBits(in)
				want := s.Model(in)
				if len(got) != len(want) {
					t.Fatalf("vector %d: %d outputs, model %d", vi, len(got), len(want))
				}
				for j := range got {
					if got[j] != want[j] {
						t.Fatalf("vector %d: output %d = %v, model says %v", vi, j, got[j], want[j])
					}
				}
			}
		})
	}
}

// TestDivisorAlgebra checks q·d + r = a and r < d directly on circuit
// outputs, independent of the software model.
func TestDivisorAlgebra(t *testing.T) {
	m := BuildDivisor()
	rng := rand.New(rand.NewSource(43))
	for i := 0; i < 30; i++ {
		in := randInputs(rng, 128)
		a := evalWord(boolsToBig(in), 0, 64)
		d := evalWord(boolsToBig(in), 64, 64)
		if d.Sign() == 0 {
			continue
		}
		out := m.EvalBits(in)
		q := evalWord(out, 0, 64)
		r := evalWord(out, 64, 64)
		if r.Cmp(d) >= 0 {
			t.Fatalf("remainder %v not smaller than divisor %v", r, d)
		}
		check := new(big.Int).Mul(q, d)
		check.Add(check, r)
		if check.Cmp(a) != 0 {
			t.Fatalf("q·d+r = %v, want %v", check, a)
		}
	}
}

func boolsToBig(in []bool) []bool { return in } // alias for symmetric reads

// TestSqrtAlgebra checks root² ≤ a < (root+1)² on circuit outputs.
func TestSqrtAlgebra(t *testing.T) {
	m := BuildSqrt()
	rng := rand.New(rand.NewSource(47))
	for i := 0; i < 30; i++ {
		in := randInputs(rng, 128)
		a := evalWord(in, 0, 128)
		out := m.EvalBits(in)
		root := evalWord(out, 0, 64)
		lo := new(big.Int).Mul(root, root)
		hi := new(big.Int).Add(root, big.NewInt(1))
		hi.Mul(hi, hi)
		if lo.Cmp(a) > 0 || hi.Cmp(a) <= 0 {
			t.Fatalf("sqrt(%v) = %v out of bracket", a, root)
		}
	}
}

// TestSineAccuracy bounds the semantic error of the CORDIC circuit
// against math.Sin — validating the algorithm, not just the mirror model.
func TestSineAccuracy(t *testing.T) {
	m := BuildSine()
	rng := rand.New(rand.NewSource(53))
	for i := 0; i < 25; i++ {
		theta := rng.Uint64() & (1<<24 - 1)
		in := make([]bool, 24)
		for j := range in {
			in[j] = theta>>uint(j)&1 == 1
		}
		out := m.EvalBits(in)
		var y uint64
		for j := 0; j < 25; j++ {
			if out[j] {
				y |= 1 << uint(j)
			}
		}
		got := float64(y) / (1 << 25)
		want := math.Sin(float64(theta) / (1 << 24) * math.Pi / 2)
		if d := math.Abs(got - want); d > 1e-4 {
			t.Errorf("sin(%d/2^24·π/2) = %.8f, want %.8f (err %.2e)", theta, got, want, d)
		}
	}
}

// TestLog2Accuracy bounds the semantic error of the squaring recurrence.
func TestLog2Accuracy(t *testing.T) {
	m := BuildLog2()
	rng := rand.New(rand.NewSource(59))
	for i := 0; i < 25; i++ {
		x := rng.Uint64()&(1<<32-1) | 1
		in := make([]bool, 32)
		for j := range in {
			in[j] = x>>uint(j)&1 == 1
		}
		out := m.EvalBits(in)
		var v uint64
		for j := 0; j < 32; j++ {
			if out[j] {
				v |= 1 << uint(j)
			}
		}
		got := float64(v>>27) + float64(v&(1<<27-1))/(1<<27)
		want := math.Log2(float64(x))
		if d := math.Abs(got - want); d > 1e-3 {
			t.Errorf("log2(%d) = %.8f, want %.8f (err %.2e)", x, got, want, d)
		}
	}
}

// TestWordOpsAgainstUint64 exercises the word-level builder on 8-bit
// operands against machine arithmetic.
func TestWordOpsAgainstUint64(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for round := 0; round < 50; round++ {
		av := rng.Uint64() & 0xFF
		bv := rng.Uint64() & 0xFF
		b := NewBuilder(16)
		x := b.Inputs(0, 8)
		y := b.Inputs(8, 8)
		sum, cout := b.Add(x, y, mig.Const0)
		b.Outputs(sum)
		b.M.AddOutput(cout)
		diff, geq := b.Sub(x, y)
		b.Outputs(diff)
		b.M.AddOutput(geq)
		b.Outputs(b.Mul(x, y))
		b.Outputs(b.ShiftLeftConst(x, 3))
		b.Outputs(b.ShiftRightConst(x, 2))
		b.Outputs(b.BarrelShiftLeft(x, y[:3]))
		in := make([]bool, 16)
		for i := 0; i < 8; i++ {
			in[i] = av>>uint(i)&1 == 1
			in[8+i] = bv>>uint(i)&1 == 1
		}
		out := b.M.EvalBits(in)
		dec := func(lo, w int) uint64 {
			var v uint64
			for i := 0; i < w; i++ {
				if out[lo+i] {
					v |= 1 << uint(i)
				}
			}
			return v
		}
		if got := dec(0, 9); got != av+bv {
			t.Fatalf("add: %d+%d = %d", av, bv, got)
		}
		if got := dec(9, 8); got != (av-bv)&0xFF {
			t.Fatalf("sub: %d-%d = %d", av, bv, got)
		}
		if got := dec(17, 1) == 1; got != (av >= bv) {
			t.Fatalf("geq(%d,%d) = %v", av, bv, got)
		}
		if got := dec(18, 16); got != av*bv {
			t.Fatalf("mul: %d·%d = %d", av, bv, got)
		}
		if got := dec(34, 8); got != av<<3&0xFF {
			t.Fatalf("shl3: %d", got)
		}
		if got := dec(42, 8); got != av>>2 {
			t.Fatalf("shr2: %d", got)
		}
		if got := dec(50, 8); got != av<<(bv&7)&0xFF {
			t.Fatalf("barrel: %d<<%d = %d", av, bv&7, got)
		}
	}
}

// TestCircuitSizesRealistic guards against degenerate constructions: the
// iterative circuits must be in the thousands of gates, like the
// benchmark suite they stand in for.
func TestCircuitSizesRealistic(t *testing.T) {
	min := map[string]int{
		"Adder": 300, "Divisor": 10000, "Log2": 8000, "Max": 1500,
		"Multiplier": 8000, "Sine": 4000, "Square-root": 10000, "Square": 4000,
	}
	for _, s := range All() {
		m := s.Build()
		if got := m.Size(); got < min[s.Name] {
			t.Errorf("%s: only %d gates, expected at least %d", s.Name, got, min[s.Name])
		} else {
			t.Logf("%s: %d gates, depth %d", s.Name, got, m.Depth())
		}
	}
}
