// Package circuits generates the arithmetic benchmark suite of the
// paper's experimental section (Sec. V): eight EPFL-signature circuits —
// Adder, Divisor, Log2, Max, Multiplier, Sine, Square-root, Square —
// built gate-by-gate as MIGs, each paired with a bit-exact software model
// the construction is tested against.
//
// The Builder provides word-level construction (ripple and Kogge-Stone
// addition, shifters, comparators, multiplexed datapaths) over a fresh
// MIG; the transcendental circuits follow the classic fixed-point
// recurrences (CORDIC for Sine, iterative log2) with truncation behaviour
// mirrored exactly by the models, so any simulation mismatch is a
// construction bug, never a rounding discrepancy.
//
// Role in the functional-hashing flow: these are the standard workloads.
// The CLIs (cmd/migpipe, cmd/migbench), the experiment driver
// (internal/exp) and the HTTP service's smoke tests all optimize this
// suite; BENCH renderings of these circuits are the canonical test
// payloads of the optimization service.
//
// Concurrency contract: Spec values are immutable; every Build call
// constructs a fresh private MIG, so specs may be built from any number
// of goroutines at once (cmd/migpipe builds the suite on a worker pool).
// A Builder wraps one MIG and inherits its single-goroutine mutation
// rule.
package circuits
