package db

import (
	"fmt"
	"sync"
	"sync/atomic"

	"mighash/internal/npn"
	"mighash/internal/tt"
)

// cacheShardCount is a power of two so shard selection is a mask. 64
// shards keep lock contention negligible even with dozens of rewriting
// workers hammering the cache (the engine's batch runner shares one cache
// across all of them).
const cacheShardCount = 64

// Cache memoizes the functional-hashing hot path — NPN canonicalization
// of a cut function plus the database lookup of its class — behind a
// sharded, concurrency-safe map. One cache may be shared by any number of
// goroutines and across any number of rewriting passes; repeated cut
// functions then cost a single read-locked map hit instead of a
// canonicalization and hash lookup.
//
// A Cache stores *Entry pointers of the DB it was populated through, so
// it must not be reused across different DB instances. Snapshot/Restore
// (persist.go) serialize a cache across processes by rebinding entries
// through the loading DB, and SetLimit (evict.go) bounds its footprint.
type Cache struct {
	hits   atomic.Uint64
	misses atomic.Uint64
	shards [cacheShardCount]cacheShard
}

type cacheShard struct {
	mu sync.RWMutex
	m  map[uint16]cacheVal
	// Second-chance eviction state (evict.go): the per-shard entry bound
	// (0 = unbounded), the clock ring of keys in insertion order with its
	// hand, and the reference bitmap indexed by key>>6 (1024 possible keys
	// per shard under the low-6-bit shard split).
	limit int
	ring  []uint16
	hand  int
	ref   [(1 << 16) / cacheShardCount / 64]uint64
	// Pad shards to their own cache lines so concurrent workers on
	// different shards do not false-share the mutexes.
	_ [64]byte
}

// cacheVal is one memoized lookup result. ok is false for functions whose
// NPN class is absent from the DB (only possible with partial databases).
type cacheVal struct {
	entry *Entry
	t     npn.Transform
	ok    bool
}

// NewCache returns an empty cache ready for concurrent use.
func NewCache() *Cache {
	c := &Cache{}
	for i := range c.shards {
		c.shards[i].m = make(map[uint16]cacheVal)
	}
	return c
}

func (c *Cache) shard(key uint16) *cacheShard {
	// Keys are raw 4-variable truth tables; their low bits are as good a
	// hash as any over the benchmark cut distributions.
	return &c.shards[key&(cacheShardCount-1)]
}

// Hits returns the number of lookups served from the cache.
func (c *Cache) Hits() uint64 { return c.hits.Load() }

// Misses returns the number of lookups that fell through to the DB.
func (c *Cache) Misses() uint64 { return c.misses.Load() }

// Len returns the number of distinct functions cached.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// Reset drops all entries and zeroes the counters. The entry bound set
// by SetLimit survives a Reset.
func (c *Cache) Reset() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.m = make(map[uint16]cacheVal)
		s.ring = s.ring[:0]
		s.hand = 0
		s.ref = [len(s.ref)]uint64{}
		s.mu.Unlock()
	}
	c.hits.Store(0)
	c.misses.Store(0)
}

func (c *Cache) String() string {
	h, m := c.Hits(), c.Misses()
	rate := 0.0
	if h+m > 0 {
		rate = float64(h) / float64(h+m)
	}
	return fmt.Sprintf("npn-cache: %d entries, %d hits / %d misses (%.1f%%)", c.Len(), h, m, 100*rate)
}

// LookupCached is Lookup memoized through c: identical in result, with
// the canonicalization and class lookup skipped on a hit. hit reports
// whether the result came from the cache, so callers can attribute their
// own per-pass counters without racing on the shared ones. A nil cache
// degrades to a plain Lookup. f must have exactly 4 variables, like
// Lookup's.
func (d *DB) LookupCached(f tt.TT, c *Cache) (e *Entry, t npn.Transform, ok, hit bool) {
	if c == nil {
		e, t, ok = d.Lookup(f)
		return e, t, ok, false
	}
	if f.N != 4 {
		panic(fmt.Sprintf("db: LookupCached requires a 4-variable function, got %d", f.N))
	}
	key := uint16(f.Bits)
	s := c.shard(key)
	s.mu.RLock()
	v, found := s.m[key]
	if found && s.limit > 0 {
		// Grant the entry a second chance against the eviction sweep.
		// limit is only written under the exclusive lock, so reading it
		// here is race-free, and refTouch is atomic against other readers.
		s.refTouch(key)
	}
	s.mu.RUnlock()
	if found {
		c.hits.Add(1)
		return v.entry, v.t, v.ok, true
	}
	e, t, ok = d.Lookup(f)
	c.misses.Add(1)
	s.mu.Lock()
	s.insert(key, cacheVal{entry: e, t: t, ok: ok})
	s.mu.Unlock()
	return e, t, ok, false
}
