package db

import (
	"math/rand"
	"sync"
	"testing"

	"mighash/internal/tt"
)

// TestCacheMatchesLookup checks LookupCached against Lookup for every
// 4-variable function: identical entry, transform and ok, a miss on first
// sight and a hit on the second.
func TestCacheMatchesLookup(t *testing.T) {
	d := mustLoad(t)
	c := NewCache()
	for v := 0; v < 1<<16; v++ {
		f := tt.New(4, uint64(v))
		we, wt, wok := d.Lookup(f)
		e, tr, ok, hit := d.LookupCached(f, c)
		if e != we || tr != wt || ok != wok || hit {
			t.Fatalf("%04x: first lookup (%p,%v,%v,hit=%v) != plain (%p,%v,%v)", v, e, tr, ok, hit, we, wt, wok)
		}
		e, tr, ok, hit = d.LookupCached(f, c)
		if e != we || tr != wt || ok != wok || !hit {
			t.Fatalf("%04x: second lookup (%p,%v,%v,hit=%v) != cached (%p,%v,%v)", v, e, tr, ok, hit, we, wt, wok)
		}
	}
	if c.Len() != 1<<16 {
		t.Errorf("cache holds %d entries, want %d", c.Len(), 1<<16)
	}
	if h, m := c.Hits(), c.Misses(); h != 1<<16 || m != 1<<16 {
		t.Errorf("counters %d/%d, want %d/%d", h, m, 1<<16, 1<<16)
	}
	c.Reset()
	if c.Len() != 0 || c.Hits() != 0 || c.Misses() != 0 {
		t.Errorf("Reset left entries or counters: %v", c)
	}
}

// TestCacheNilFallsThrough: a nil cache degrades to a plain Lookup.
func TestCacheNilFallsThrough(t *testing.T) {
	d := mustLoad(t)
	f := tt.New(4, 0x6996)
	we, wt, wok := d.Lookup(f)
	e, tr, ok, hit := d.LookupCached(f, nil)
	if e != we || tr != wt || ok != wok || hit {
		t.Fatalf("nil-cache lookup differs from Lookup")
	}
}

// TestCacheConcurrent hammers one cache from many goroutines (the batch
// runner's access pattern); run under -race this doubles as the data-race
// check for the sharded map.
func TestCacheConcurrent(t *testing.T) {
	d := mustLoad(t)
	c := NewCache()
	const workers = 16
	const perWorker = 20000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				f := tt.New(4, rng.Uint64()&0xFFFF)
				e, tr, ok, _ := d.LookupCached(f, c)
				we, wt, wok := d.Lookup(f)
				if e != we || tr != wt || ok != wok {
					t.Errorf("concurrent lookup of %04x diverged", f.Bits)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	if got := c.Hits() + c.Misses(); got != workers*perWorker {
		t.Errorf("hits+misses = %d, want %d", got, workers*perWorker)
	}
	if c.Len() > 1<<16 {
		t.Errorf("cache holds %d entries, more than the function space", c.Len())
	}
}

func mustLoad(t testing.TB) *DB {
	t.Helper()
	d, err := Load()
	if err != nil {
		t.Fatalf("embedded database unavailable (run cmd/migdb): %v", err)
	}
	return d
}
