package db

import (
	"bytes"
	"context"
	"encoding/binary"
	"hash/crc32"
	"path/filepath"
	"reflect"
	"testing"

	"mighash/internal/tt"
)

// TestEnsureAlts: the embedded database derives a verified alternative
// menu — every alternative computes the class representative, is
// strictly shallower than the minimum-size primary, and (the primary
// being minimum-size) never smaller.
func TestEnsureAlts(t *testing.T) {
	d := load(t)
	total := d.EnsureAlts()
	if total < d.Len() {
		t.Fatalf("EnsureAlts reported %d candidates for %d classes", total, d.Len())
	}
	if again := d.EnsureAlts(); again != total {
		t.Fatalf("EnsureAlts not idempotent: %d then %d", total, again)
	}
	if d.Candidates() != total {
		t.Fatalf("Candidates() = %d, want %d", d.Candidates(), total)
	}
	withAlts := 0
	for _, e := range d.Entries() {
		if len(e.Alts) > maxAltsPerEntry {
			t.Fatalf("class %04x has %d alternatives (max %d)", e.Rep.Bits, len(e.Alts), maxAltsPerEntry)
		}
		if len(e.Alts) > 0 {
			withAlts++
		}
		for a := range e.Alts {
			alt := &e.Alts[a]
			if got := alt.Eval(); got != e.Rep {
				t.Fatalf("class %04x alternative %d computes %v", e.Rep.Bits, a, got)
			}
			if alt.Depth >= e.Depth {
				t.Errorf("class %04x alternative %d depth %d not below primary depth %d",
					e.Rep.Bits, a, alt.Depth, e.Depth)
			}
			if alt.Size() < e.Size() {
				t.Errorf("class %04x alternative %d size %d beats the exact minimum %d",
					e.Rep.Bits, a, alt.Size(), e.Size())
			}
		}
	}
	if withAlts == 0 {
		t.Fatal("no class derived any alternative — the menu derivation is dead")
	}
	t.Logf("%d candidates over %d classes (%d classes with alternatives)", total, d.Len(), withAlts)
}

// TestOnDemandAltMenuSurvivesSnapshot: a learned class's alternative
// menu is deterministic, travels through the v3 snapshot, and a v2
// stream of the same class re-derives the identical menu on load — so
// warm stores offer exactly the candidates cold ones do.
func TestOnDemandAltMenuSurvivesSnapshot(t *testing.T) {
	s := NewOnDemand(OnDemandOptions{})
	for _, f := range []tt.TT{and5(), majority5()} {
		if _, _, ok := s.Lookup(context.Background(), f); !ok {
			t.Fatalf("class of %v blew the default budget", f)
		}
	}
	entries, _ := s.snapshotState()

	path := filepath.Join(t.TempDir(), "npn.cache")
	if _, err := SaveSnapshotFile(path, nil, s); err != nil {
		t.Fatal(err)
	}
	warm := NewOnDemand(OnDemandOptions{})
	if _, err := LoadSnapshotFile(path, nil, nil, warm); err != nil {
		t.Fatal(err)
	}
	if got, want := warm.Candidates(), s.Candidates(); got != want {
		t.Fatalf("warm store offers %d candidates, want %d", got, want)
	}
	warmEntries, _ := warm.snapshotState()
	menus := func(es []*Entry) map[uint32][]Entry {
		m := make(map[uint32][]Entry)
		for _, e := range es {
			m[uint32(e.Rep.Bits)] = e.Alts
		}
		return m
	}
	if !reflect.DeepEqual(menus(entries), menus(warmEntries)) {
		t.Fatal("v3 snapshot changed an alternative menu")
	}

	// Hand-build a v2 stream (primary structures only, no nalts field)
	// and check the loader re-derives the same menus.
	var payload bytes.Buffer
	var tmp [binary.MaxVarintLen64]byte
	wu := func(v uint64) { payload.Write(tmp[:binary.PutUvarint(tmp[:], v)]) }
	payload.WriteString(snapshotMagic)
	payload.WriteByte(2)
	wu(uint64(len(entries)))
	for _, e := range entries {
		payload.WriteByte(recClass5)
		wu(e.Rep.Bits)
		wu(uint64(len(e.Gates)))
		wu(uint64(e.Out))
		for _, g := range e.Gates {
			wu(uint64(g[0]))
			wu(uint64(g[1]))
			wu(uint64(g[2]))
		}
		wu(uint64(e.GenTime.Microseconds()))
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc32.ChecksumIEEE(payload.Bytes()))
	payload.Write(sum[:])

	v2 := NewOnDemand(OnDemandOptions{})
	if _, err := ReadSnapshot(bytes.NewReader(payload.Bytes()), nil, nil, v2); err != nil {
		t.Fatal(err)
	}
	v2Entries, _ := v2.snapshotState()
	if !reflect.DeepEqual(menus(entries), menus(v2Entries)) {
		t.Fatal("v2 restore derived different alternative menus than the cold store")
	}
}
