package db

import "sync/atomic"

// Bounding the on-demand store (the ROADMAP item the cut-cache's
// SetLimit already solved at K = 4). The store mirrors the cut-cache's
// second-chance clock: learned classes live in slots carrying a
// reference bit, the bit is set by read-locked hits, and when the store
// is full the clock hand sweeps the ring of keys, granting one second
// chance (clearing the bit) before evicting the first un-referenced
// victim. An evicted class is simply re-learned on next contact — the
// negative cache and the canonization memo are tiny per class (a map
// key) and are deliberately not bounded here, so a budget-blown class
// is still never re-proven hopeless.
//
// A bounded store trades the "learn everything once" determinism for
// bounded memory: which classes survive depends on lookup interleaving,
// so — like Timeout and the circuit breaker — the limit is opt-in and
// meant for long-running servers (migserve -synth-limit).

// odSlot is one learned class in the store: the entry plus the clock
// reference bit. The bit is written on the read-locked hit path, so it
// is atomic; the rest of the slot is immutable after publication.
type odSlot struct {
	e   *Entry
	ref atomic.Bool
}

// refTouch marks the slot recently used. Called with s.mu read-locked.
func (sl *odSlot) refTouch() { sl.ref.Store(true) }

// Limit returns the store's current capacity bound (0 = unbounded).
func (s *OnDemand) Limit() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.limit
}

// SetLimit bounds the learned classes kept in memory to n (0 removes
// the bound). A shrinking limit evicts immediately. Safe to call at any
// time, including while lookups are in flight.
func (s *OnDemand) SetLimit(n int) {
	if n < 0 {
		n = 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.limit = n
	for s.limit > 0 && len(s.entries) > s.limit {
		s.evictOneLocked()
	}
}

// Evictions returns how many learned classes the clock has evicted.
func (s *OnDemand) Evictions() uint64 { return s.evictions.Load() }

// insertLocked publishes a learned entry under the store's write lock,
// evicting a victim first when the store is at its bound. Duplicate
// keys overwrite in place (their ring slot survives).
func (s *OnDemand) insertLocked(key uint32, e *Entry) {
	if sl, dup := s.entries[key]; dup {
		sl.e = e
		sl.ref.Store(false)
		return
	}
	if s.limit > 0 && len(s.entries) >= s.limit {
		// Reuse the victim's ring slot for the newcomer: the hand has
		// already advanced past the survivors it pardoned.
		s.evictReuseLocked(key)
	} else {
		s.ring = append(s.ring, key)
	}
	s.entries[key] = &odSlot{e: e}
}

// evictReuseLocked runs one clock sweep and installs newKey in the
// victim's ring slot.
func (s *OnDemand) evictReuseLocked(newKey uint32) {
	for {
		if s.hand >= len(s.ring) {
			s.hand = 0
		}
		k := s.ring[s.hand]
		if sl := s.entries[k]; sl != nil && sl.ref.Swap(false) {
			s.hand++ // second chance
			continue
		}
		delete(s.entries, k)
		s.evictions.Add(1)
		s.ring[s.hand] = newKey
		s.hand++
		return
	}
}

// evictOneLocked runs one clock sweep and shrinks the ring (SetLimit's
// immediate-shrink path).
func (s *OnDemand) evictOneLocked() {
	for {
		if s.hand >= len(s.ring) {
			s.hand = 0
		}
		k := s.ring[s.hand]
		if sl := s.entries[k]; sl != nil && sl.ref.Swap(false) {
			s.hand++
			continue
		}
		delete(s.entries, k)
		s.evictions.Add(1)
		last := len(s.ring) - 1
		s.ring[s.hand] = s.ring[last]
		s.ring = s.ring[:last]
		return
	}
}
