package db

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"

	"mighash/internal/npn"
)

// The snapshot format is a versioned, checksummed binary stream:
//
//	magic   4 bytes  "MHC\x01" (the trailing byte is the format version)
//	count   uvarint  number of records
//	records count ×:
//	  key   uvarint  the 16-bit truth table of the cached cut function
//	  flags 1 byte   bit 0: ok, bit 1: NegOut, bits 2–5: input Flip mask
//	  perm  1 byte   (ok only) bits 2j..2j+1: Perm[j], the transform's
//	                 input permutation
//	  rep   uvarint  (ok only) the 16-bit NPN class representative
//	crc     4 bytes  little-endian IEEE CRC-32 of everything above
//
// The format stores no *Entry pointers and no process-local state: a
// record names its class by the representative truth table, and Restore
// rebinds it to the loading process's database (d.byRep), so a snapshot
// is valid across processes — and across database rebuilds, because a
// representative whose class the loading DB lacks is simply skipped.
// Negative entries (ok=false, only possible with partial databases) are
// not written: their transform was never computed, so there is nothing
// to rebind; they are re-discovered as ordinary misses.
const (
	snapshotMagic   = "MHC"
	snapshotVersion = 1
)

// ErrSnapshot wraps every snapshot decoding failure, so callers can
// distinguish a corrupt or version-skewed snapshot (degrade to a cold
// cache) from I/O errors on a healthy file.
var ErrSnapshot = errors.New("db: invalid cache snapshot")

// snapRecord is one decoded snapshot record before rebinding.
type snapRecord struct {
	key uint16
	rep uint16
	t   npn.Transform
}

// Snapshot writes a point-in-time copy of the cache to w in the binary
// snapshot format and returns the number of records written. The output
// is deterministic (records are sorted by key) and safe to take while
// other goroutines keep using the cache; concurrent insertions may or
// may not be included. Negative entries are skipped — see the format
// comment — so the count can trail Len on partial databases.
func (c *Cache) Snapshot(w io.Writer) (int, error) {
	type rec struct {
		key uint16
		v   cacheVal
	}
	var recs []rec
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		for k, v := range s.m {
			if v.ok {
				recs = append(recs, rec{key: k, v: v})
			}
		}
		s.mu.RUnlock()
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].key < recs[j].key })

	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(w, crc))
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) {
		n := binary.PutUvarint(buf[:], v)
		bw.Write(buf[:n])
	}
	bw.WriteString(snapshotMagic)
	bw.WriteByte(snapshotVersion)
	writeUvarint(uint64(len(recs)))
	for _, r := range recs {
		writeUvarint(uint64(r.key))
		bw.WriteByte(packFlags(r.v.t, true))
		bw.WriteByte(packPerm(r.v.t))
		writeUvarint(uint64(r.v.entry.Rep.Bits))
	}
	if err := bw.Flush(); err != nil {
		return 0, err
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	_, err := w.Write(sum[:])
	return len(recs), err
}

func packFlags(t npn.Transform, ok bool) byte {
	var f byte
	if ok {
		f |= 1
	}
	if t.NegOut {
		f |= 1 << 1
	}
	f |= (t.Flip & 0x0F) << 2
	return f
}

func packPerm(t npn.Transform) byte {
	var p byte
	for j := 0; j < 4; j++ {
		p |= byte(t.Perm[j]&3) << (2 * uint(j))
	}
	return p
}

func unpackTransform(flags, perm byte) npn.Transform {
	t := npn.Transform{N: 4}
	t.NegOut = flags&(1<<1) != 0
	t.Flip = (flags >> 2) & 0x0F
	for j := 0; j < 4; j++ {
		t.Perm[j] = int(perm>>(2*uint(j))) & 3
	}
	return t
}

// crcByteReader counts every byte it hands out into a CRC-32, so the
// decoder can verify the trailer without buffering the whole snapshot.
type crcByteReader struct {
	r   *bufio.Reader
	crc uint32
	one [1]byte
}

func (cr *crcByteReader) ReadByte() (byte, error) {
	b, err := cr.r.ReadByte()
	if err == nil {
		cr.one[0] = b
		cr.crc = crc32.Update(cr.crc, crc32.IEEETable, cr.one[:])
	}
	return b, err
}

func (cr *crcByteReader) read(p []byte) error {
	if _, err := io.ReadFull(cr.r, p); err != nil {
		return err
	}
	cr.crc = crc32.Update(cr.crc, crc32.IEEETable, p)
	return nil
}

// Restore reads a snapshot from r and installs its records into c,
// rebinding every record to the loading process's database d: the class
// named by the stored representative is looked up in d, records whose
// class d lacks are skipped, and each surviving transform is verified
// against its key (Apply(t, rep) must reproduce the cut function), so a
// snapshot can never install an entry the equivalent cold Lookup would
// not have produced. It returns the number of entries installed.
//
// Decoding is all-or-nothing: on any error (truncation, corruption,
// checksum or version mismatch — all wrapping ErrSnapshot, distinguishable
// from I/O errors) the cache is left unchanged, so callers degrade to a
// cold cache. Existing cache contents are kept; restored records do not
// overwrite keys already present.
func (c *Cache) Restore(r io.Reader, d *DB) (int, error) {
	if d == nil {
		return 0, fmt.Errorf("%w: restore requires a database to rebind entries", ErrSnapshot)
	}
	cr := &crcByteReader{r: bufio.NewReader(r)}
	var head [4]byte
	if err := cr.read(head[:]); err != nil {
		return 0, fmt.Errorf("%w: truncated header: %v", ErrSnapshot, err)
	}
	if string(head[:3]) != snapshotMagic {
		return 0, fmt.Errorf("%w: bad magic %q", ErrSnapshot, head[:3])
	}
	if head[3] != snapshotVersion {
		return 0, fmt.Errorf("%w: unsupported version %d (want %d)", ErrSnapshot, head[3], snapshotVersion)
	}
	count, err := binary.ReadUvarint(cr)
	if err != nil {
		return 0, fmt.Errorf("%w: bad record count: %v", ErrSnapshot, err)
	}
	// Keys are 16-bit truth tables, so no valid snapshot outgrows the
	// function space; the bound also stops a corrupt count from allocating
	// unbounded memory before the checksum check can reject it.
	if count > 1<<16 {
		return 0, fmt.Errorf("%w: record count %d exceeds the 4-input function space", ErrSnapshot, count)
	}
	recs := make([]snapRecord, 0, count)
	for i := uint64(0); i < count; i++ {
		key, err := binary.ReadUvarint(cr)
		if err != nil {
			return 0, fmt.Errorf("%w: truncated record %d: %v", ErrSnapshot, i, err)
		}
		if key > 0xFFFF {
			return 0, fmt.Errorf("%w: record %d key %#x exceeds 16 bits", ErrSnapshot, i, key)
		}
		flags, err := cr.ReadByte()
		if err != nil {
			return 0, fmt.Errorf("%w: truncated record %d: %v", ErrSnapshot, i, err)
		}
		if flags&1 == 0 {
			// Negative record: tolerated for forward compatibility but
			// never rebound (the loading DB may know the class).
			continue
		}
		perm, err := cr.ReadByte()
		if err != nil {
			return 0, fmt.Errorf("%w: truncated record %d: %v", ErrSnapshot, i, err)
		}
		rep, err := binary.ReadUvarint(cr)
		if err != nil {
			return 0, fmt.Errorf("%w: truncated record %d: %v", ErrSnapshot, i, err)
		}
		if rep > 0xFFFF {
			return 0, fmt.Errorf("%w: record %d representative %#x exceeds 16 bits", ErrSnapshot, i, rep)
		}
		recs = append(recs, snapRecord{
			key: uint16(key),
			rep: uint16(rep),
			t:   unpackTransform(flags, perm),
		})
	}
	var sum [4]byte
	if _, err := io.ReadFull(cr.r, sum[:]); err != nil {
		return 0, fmt.Errorf("%w: truncated checksum: %v", ErrSnapshot, err)
	}
	if got, want := cr.crc, binary.LittleEndian.Uint32(sum[:]); got != want {
		return 0, fmt.Errorf("%w: checksum mismatch (%08x != %08x)", ErrSnapshot, got, want)
	}

	// Rebind and verify before touching the cache, so a record that fails
	// verification leaves the cache unchanged.
	type bound struct {
		key uint16
		v   cacheVal
	}
	installs := make([]bound, 0, len(recs))
	for _, r := range recs {
		i, ok := d.byRep[r.rep]
		if !ok {
			continue // class unknown to this database; re-discover as a miss
		}
		e := &d.entries[i]
		if got := r.t.Apply(e.Rep); uint16(got.Bits) != r.key {
			return 0, fmt.Errorf("%w: record %04x: transform does not map class %04x onto it",
				ErrSnapshot, r.key, r.rep)
		}
		installs = append(installs, bound{key: r.key, v: cacheVal{entry: e, t: r.t, ok: true}})
	}
	n := 0
	for _, b := range installs {
		s := c.shard(b.key)
		s.mu.Lock()
		if _, exists := s.m[b.key]; !exists {
			s.insert(b.key, b.v)
			n++
		}
		s.mu.Unlock()
	}
	return n, nil
}

// SaveFile atomically writes a snapshot of c to path and returns the
// number of records written: the snapshot is streamed to a temporary
// file in the same directory, synced, and renamed over path, so readers
// never observe a partially written snapshot and a crash mid-save leaves
// the previous snapshot intact. An existing file keeps its permission
// bits; a fresh one is created world-readable (0644) rather than with
// CreateTemp's private 0600, so sidecar readers are not locked out.
func (c *Cache) SaveFile(path string) (int, error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return 0, err
	}
	tmp := f.Name()
	fail := func(err error) (int, error) {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	mode := os.FileMode(0o644)
	if fi, err := os.Stat(path); err == nil {
		mode = fi.Mode().Perm()
	}
	if err := f.Chmod(mode); err != nil {
		return fail(err)
	}
	n, err := c.Snapshot(f)
	if err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	return n, nil
}

// LoadFile restores the snapshot at path into c, rebinding entries
// through d (see Restore). A missing file is reported as an error
// satisfying errors.Is(err, fs.ErrNotExist), which callers treat as a
// cold start; any ErrSnapshot error likewise leaves c unchanged.
func (c *Cache) LoadFile(path string, d *DB) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return c.Restore(f, d)
}
