package db

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"mighash/internal/fault"
	"mighash/internal/mig"
	"mighash/internal/npn"
	"mighash/internal/tt"
)

// The snapshot format is a versioned, checksummed binary stream:
//
//	magic   4 bytes  "MHC\x03" (the trailing byte is the format version)
//	count   uvarint  number of records
//	records count ×, each introduced by a width/kind tag byte:
//	  kind 1 — memoized 4-input lookup (the NPN cut-cache):
//	    key   uvarint  the 16-bit truth table of the cached cut function
//	    flags 1 byte   bit 0: ok, bit 1: NegOut, bits 2–5: input Flip mask
//	    perm  1 byte   bits 2j..2j+1: Perm[j], the transform's input
//	                   permutation
//	    rep   uvarint  the 16-bit NPN class representative
//	  kind 2 — learned 5-input class (the on-demand store):
//	    rep   uvarint  the 32-bit semi-canonical class representative
//	    k     uvarint  gate count
//	    out   uvarint  output literal (id·2+complement; ids: 0 = const 0,
//	                   1..5 = x1..x5, 6+l = gate l)
//	    gates k × 3 uvarint fanin literals, topological order
//	    us    uvarint  synthesis time in µs
//	    nalts uvarint  alternative implementations (version ≥ 3 only;
//	                   at most maxAltsPerEntry)
//	    alts  nalts ×  k / out / gates triples as above — the class's
//	                   strictly shallower tradeoff candidates
//	  kind 3 — negative-cached 5-input class (budget blown):
//	    rep   uvarint  the 32-bit semi-canonical class representative
//	crc     4 bytes  little-endian IEEE CRC-32 of everything above
//
// Version 2 (kind 2 records without the alternative menus) and version 1
// (no kind tags, 4-input records only) are still decoded, so
// pre-existing cache files keep warm-starting after an upgrade; menus
// missing from an old stream are re-derived on load, so a warm store
// offers the same candidates a cold one would.
//
// The format stores no pointers and no process-local state: kind-1
// records name their class by representative and Restore rebinds them to
// the loading process's database; kind-2 records carry the learned
// structure itself and are re-verified by simulation (plus the
// semi-canonicity of the representative) before installation — the
// alternative implementations are verified against the same
// representative, so a tampered menu cannot enter the store; kind-3
// records re-seed the negative cache so a budget-blown class is not
// re-proven hopeless by every process. Negative 4-input entries
// (ok=false, only possible with partial databases) are not written:
// their transform was never computed, so there is nothing to rebind.
const (
	snapshotMagic   = "MHC"
	snapshotVersion = 3

	recCache4 = 1
	recClass5 = 2
	recNeg5   = 3
)

// ErrSnapshot wraps every snapshot decoding failure, so callers can
// distinguish a corrupt or version-skewed snapshot (degrade to a cold
// cache) from I/O errors on a healthy file.
var ErrSnapshot = errors.New("db: invalid cache snapshot")

// snapRecord is one decoded 4-input cache record before rebinding.
type snapRecord struct {
	key uint16
	rep uint16
	t   npn.Transform
}

// Snapshot writes a point-in-time copy of the cache to w in the binary
// snapshot format and returns the number of records written; it is
// WriteSnapshot without an on-demand store. The output is deterministic
// (records are sorted by key) and safe to take while other goroutines
// keep using the cache; concurrent insertions may or may not be
// included. Negative entries are skipped — see the format comment — so
// the count can trail Len on partial databases.
func (c *Cache) Snapshot(w io.Writer) (int, error) {
	return WriteSnapshot(w, c, nil)
}

// WriteSnapshot writes the cache and, when s is non-nil, the on-demand
// store's learned and negative 5-input classes to w as one snapshot. It
// returns the total number of records written. Either of c and s may be
// nil. The output is deterministic for a given cache/store state.
func WriteSnapshot(w io.Writer, c *Cache, s *OnDemand) (int, error) {
	type rec struct {
		key uint16
		v   cacheVal
	}
	var recs []rec
	if c != nil {
		for i := range c.shards {
			sh := &c.shards[i]
			sh.mu.RLock()
			for k, v := range sh.m {
				if v.ok {
					recs = append(recs, rec{key: k, v: v})
				}
			}
			sh.mu.RUnlock()
		}
		sort.Slice(recs, func(i, j int) bool { return recs[i].key < recs[j].key })
	}
	var entries []*Entry
	var negatives []uint32
	if s != nil {
		entries, negatives = s.snapshotState()
		sort.Slice(entries, func(i, j int) bool { return entries[i].Rep.Bits < entries[j].Rep.Bits })
		sort.Slice(negatives, func(i, j int) bool { return negatives[i] < negatives[j] })
	}

	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(w, crc))
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) {
		n := binary.PutUvarint(buf[:], v)
		bw.Write(buf[:n])
	}
	total := len(recs) + len(entries) + len(negatives)
	bw.WriteString(snapshotMagic)
	bw.WriteByte(snapshotVersion)
	writeUvarint(uint64(total))
	for _, r := range recs {
		bw.WriteByte(recCache4)
		writeUvarint(uint64(r.key))
		bw.WriteByte(packFlags(r.v.t, true))
		bw.WriteByte(packPerm(r.v.t))
		writeUvarint(uint64(r.v.entry.Rep.Bits))
	}
	writeBody := func(e *Entry) {
		writeUvarint(uint64(len(e.Gates)))
		writeUvarint(uint64(e.Out))
		for _, g := range e.Gates {
			writeUvarint(uint64(g[0]))
			writeUvarint(uint64(g[1]))
			writeUvarint(uint64(g[2]))
		}
	}
	for _, e := range entries {
		bw.WriteByte(recClass5)
		writeUvarint(e.Rep.Bits)
		writeBody(e)
		writeUvarint(uint64(e.GenTime.Microseconds()))
		nalts := len(e.Alts)
		if nalts > maxAltsPerEntry {
			nalts = maxAltsPerEntry
		}
		writeUvarint(uint64(nalts))
		for a := 0; a < nalts; a++ {
			writeBody(&e.Alts[a])
		}
	}
	for _, k := range negatives {
		bw.WriteByte(recNeg5)
		writeUvarint(uint64(k))
	}
	if err := bw.Flush(); err != nil {
		return 0, err
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	_, err := w.Write(sum[:])
	return total, err
}

func packFlags(t npn.Transform, ok bool) byte {
	var f byte
	if ok {
		f |= 1
	}
	if t.NegOut {
		f |= 1 << 1
	}
	f |= (t.Flip & 0x0F) << 2
	return f
}

func packPerm(t npn.Transform) byte {
	var p byte
	for j := 0; j < 4; j++ {
		p |= byte(t.Perm[j]&3) << (2 * uint(j))
	}
	return p
}

func unpackTransform(flags, perm byte) npn.Transform {
	t := npn.Transform{N: 4}
	t.NegOut = flags&(1<<1) != 0
	t.Flip = (flags >> 2) & 0x0F
	for j := 0; j < 4; j++ {
		t.Perm[j] = int(perm>>(2*uint(j))) & 3
	}
	return t
}

// crcByteReader counts every byte it hands out into a CRC-32, so the
// decoder can verify the trailer without buffering the whole snapshot.
type crcByteReader struct {
	r   *bufio.Reader
	crc uint32
	one [1]byte
}

func (cr *crcByteReader) ReadByte() (byte, error) {
	b, err := cr.r.ReadByte()
	if err == nil {
		cr.one[0] = b
		cr.crc = crc32.Update(cr.crc, crc32.IEEETable, cr.one[:])
	}
	return b, err
}

func (cr *crcByteReader) read(p []byte) error {
	if _, err := io.ReadFull(cr.r, p); err != nil {
		return err
	}
	cr.crc = crc32.Update(cr.crc, crc32.IEEETable, p)
	return nil
}

// Restore reads a snapshot from r and installs its 4-input cache records
// into c, rebinding every record to the loading process's database d; it
// is ReadSnapshot without an on-demand store (learned-class records in
// the stream are validated but skipped). It returns the number of
// entries installed.
func (c *Cache) Restore(r io.Reader, d *DB) (int, error) {
	return ReadSnapshot(r, d, c, nil)
}

// ReadSnapshot decodes one snapshot from r and installs its records:
// 4-input cache records into c (rebound through d — the class named by
// the stored representative is looked up in d, records whose class d
// lacks are skipped, and each surviving transform is verified against
// its key, so a snapshot can never install an entry the equivalent cold
// Lookup would not have produced), learned and negative 5-input classes
// into s (learned structures are re-verified by simulation and their
// representatives checked semi-canonical). A nil c or s skips the
// corresponding record kinds. It returns the number of records
// installed.
//
// Decoding is all-or-nothing: on any error (truncation, corruption,
// checksum or version mismatch, a record failing verification — all
// wrapping ErrSnapshot, distinguishable from I/O errors) neither c nor s
// is changed, so callers degrade to a cold cache. Existing contents are
// kept; restored records do not overwrite keys already present.
func ReadSnapshot(r io.Reader, d *DB, c *Cache, s *OnDemand) (int, error) {
	if c != nil && d == nil {
		return 0, fmt.Errorf("%w: restore requires a database to rebind entries", ErrSnapshot)
	}
	cr := &crcByteReader{r: bufio.NewReader(r)}
	var head [4]byte
	if err := cr.read(head[:]); err != nil {
		return 0, fmt.Errorf("%w: truncated header: %v", ErrSnapshot, err)
	}
	if string(head[:3]) != snapshotMagic {
		return 0, fmt.Errorf("%w: bad magic %q", ErrSnapshot, head[:3])
	}
	version := head[3]
	if version < 1 || version > snapshotVersion {
		return 0, fmt.Errorf("%w: unsupported version %d (want ≤ %d)", ErrSnapshot, version, snapshotVersion)
	}
	count, err := binary.ReadUvarint(cr)
	if err != nil {
		return 0, fmt.Errorf("%w: bad record count: %v", ErrSnapshot, err)
	}
	// 4-input keys are 16-bit and 5-input classes are bounded by the
	// budgeted synthesis reach, so no honest snapshot outgrows this; the
	// bound also stops a corrupt count from allocating unbounded memory
	// before the checksum check can reject it.
	if count > 1<<21 {
		return 0, fmt.Errorf("%w: implausible record count %d", ErrSnapshot, count)
	}
	var (
		recs    []snapRecord
		learned []Entry
		negs    []uint32
	)
	readCache4 := func(i uint64) error {
		key, err := binary.ReadUvarint(cr)
		if err != nil {
			return fmt.Errorf("%w: truncated record %d: %v", ErrSnapshot, i, err)
		}
		if key > 0xFFFF {
			return fmt.Errorf("%w: record %d key %#x exceeds 16 bits", ErrSnapshot, i, key)
		}
		flags, err := cr.ReadByte()
		if err != nil {
			return fmt.Errorf("%w: truncated record %d: %v", ErrSnapshot, i, err)
		}
		if flags&1 == 0 {
			// Negative record: tolerated for forward compatibility but
			// never rebound (the loading DB may know the class).
			return nil
		}
		perm, err := cr.ReadByte()
		if err != nil {
			return fmt.Errorf("%w: truncated record %d: %v", ErrSnapshot, i, err)
		}
		rep, err := binary.ReadUvarint(cr)
		if err != nil {
			return fmt.Errorf("%w: truncated record %d: %v", ErrSnapshot, i, err)
		}
		if rep > 0xFFFF {
			return fmt.Errorf("%w: record %d representative %#x exceeds 16 bits", ErrSnapshot, i, rep)
		}
		recs = append(recs, snapRecord{
			key: uint16(key),
			rep: uint16(rep),
			t:   unpackTransform(flags, perm),
		})
		return nil
	}
	// readBody decodes one k/out/gates implementation body — shared by
	// the primary structure and (version ≥ 3) its alternatives.
	readBody := func(i uint64, rep tt.TT) (Entry, error) {
		k, err := binary.ReadUvarint(cr)
		if err != nil {
			return Entry{}, fmt.Errorf("%w: truncated record %d: %v", ErrSnapshot, i, err)
		}
		if k > uint64(Bound(5)) {
			return Entry{}, fmt.Errorf("%w: record %d gate count %d exceeds the Theorem 2 bound", ErrSnapshot, i, k)
		}
		out, err := binary.ReadUvarint(cr)
		if err != nil {
			return Entry{}, fmt.Errorf("%w: truncated record %d: %v", ErrSnapshot, i, err)
		}
		e := Entry{Rep: rep, Out: mig.Lit(out)}
		for l := uint64(0); l < k; l++ {
			var g [3]mig.Lit
			for cidx := 0; cidx < 3; cidx++ {
				v, err := binary.ReadUvarint(cr)
				if err != nil {
					return Entry{}, fmt.Errorf("%w: truncated record %d: %v", ErrSnapshot, i, err)
				}
				g[cidx] = mig.Lit(v)
				if int(g[cidx].ID()) >= 6+int(l) {
					return Entry{}, fmt.Errorf("%w: record %d gate %d has forward reference %v", ErrSnapshot, i, l, g[cidx])
				}
			}
			e.Gates = append(e.Gates, g)
		}
		if int(e.Out.ID()) >= 6+len(e.Gates) {
			return Entry{}, fmt.Errorf("%w: record %d output literal %v out of range", ErrSnapshot, i, e.Out)
		}
		return e, nil
	}
	readClass5 := func(i uint64) error {
		rep, err := binary.ReadUvarint(cr)
		if err != nil {
			return fmt.Errorf("%w: truncated record %d: %v", ErrSnapshot, i, err)
		}
		if rep > 0xFFFFFFFF {
			return fmt.Errorf("%w: record %d representative %#x exceeds 32 bits", ErrSnapshot, i, rep)
		}
		e, err := readBody(i, tt.New(5, rep))
		if err != nil {
			return err
		}
		us, err := binary.ReadUvarint(cr)
		if err != nil {
			return fmt.Errorf("%w: truncated record %d: %v", ErrSnapshot, i, err)
		}
		e.GenTime = time.Duration(us) * time.Microsecond
		if version >= 3 {
			nalts, err := binary.ReadUvarint(cr)
			if err != nil {
				return fmt.Errorf("%w: truncated record %d: %v", ErrSnapshot, i, err)
			}
			if nalts > maxAltsPerEntry {
				return fmt.Errorf("%w: record %d has %d alternatives (max %d)", ErrSnapshot, i, nalts, maxAltsPerEntry)
			}
			for a := uint64(0); a < nalts; a++ {
				alt, err := readBody(i, e.Rep)
				if err != nil {
					return err
				}
				e.Alts = append(e.Alts, alt)
			}
		}
		if s == nil {
			return nil // structurally validated, but no store to feed
		}
		// Semantic verification — by simulation and semi-canonicity — so
		// a tampered snapshot cannot install an entry the equivalent cold
		// synthesis would not have produced. Alternatives must compute
		// the same representative.
		if got := e.Eval(); got != e.Rep {
			return fmt.Errorf("%w: record %d entry computes %v, want %v", ErrSnapshot, i, got, e.Rep)
		}
		if !npn.IsCanonical5(e.Rep) {
			return fmt.Errorf("%w: record %d representative %v is not semi-canonical", ErrSnapshot, i, e.Rep)
		}
		e.analyze()
		for a := range e.Alts {
			alt := &e.Alts[a]
			if got := alt.Eval(); got != e.Rep {
				return fmt.Errorf("%w: record %d alternative %d computes %v, want %v", ErrSnapshot, i, a, got, e.Rep)
			}
			alt.analyze()
		}
		if version < 3 {
			// Old stream: the menu was never persisted. Re-derive it so a
			// warm store offers exactly the candidates a cold one would.
			e.Alts = deriveAlts(&e)
		}
		learned = append(learned, e)
		return nil
	}
	readNeg5 := func(i uint64) error {
		rep, err := binary.ReadUvarint(cr)
		if err != nil {
			return fmt.Errorf("%w: truncated record %d: %v", ErrSnapshot, i, err)
		}
		if rep > 0xFFFFFFFF {
			return fmt.Errorf("%w: record %d representative %#x exceeds 32 bits", ErrSnapshot, i, rep)
		}
		if s == nil {
			return nil
		}
		if !npn.IsCanonical5(tt.New(5, rep)) {
			return fmt.Errorf("%w: record %d negative representative %#x is not semi-canonical", ErrSnapshot, i, rep)
		}
		negs = append(negs, uint32(rep))
		return nil
	}
	for i := uint64(0); i < count; i++ {
		kind := byte(recCache4)
		if version >= 2 {
			if kind, err = cr.ReadByte(); err != nil {
				return 0, fmt.Errorf("%w: truncated record %d: %v", ErrSnapshot, i, err)
			}
		}
		switch kind {
		case recCache4:
			err = readCache4(i)
		case recClass5:
			err = readClass5(i)
		case recNeg5:
			err = readNeg5(i)
		default:
			err = fmt.Errorf("%w: record %d has unknown kind %d", ErrSnapshot, i, kind)
		}
		if err != nil {
			return 0, err
		}
	}
	var sum [4]byte
	if _, err := io.ReadFull(cr.r, sum[:]); err != nil {
		return 0, fmt.Errorf("%w: truncated checksum: %v", ErrSnapshot, err)
	}
	if got, want := cr.crc, binary.LittleEndian.Uint32(sum[:]); got != want {
		return 0, fmt.Errorf("%w: checksum mismatch (%08x != %08x)", ErrSnapshot, got, want)
	}

	// Rebind and verify before touching the cache, so a record that fails
	// verification leaves the cache unchanged.
	type bound struct {
		key uint16
		v   cacheVal
	}
	var installs []bound
	if c != nil {
		installs = make([]bound, 0, len(recs))
		for _, r := range recs {
			i, ok := d.byRep[r.rep]
			if !ok {
				continue // class unknown to this database; re-discover as a miss
			}
			e := &d.entries[i]
			if got := r.t.Apply(e.Rep); uint16(got.Bits) != r.key {
				return 0, fmt.Errorf("%w: record %04x: transform does not map class %04x onto it",
					ErrSnapshot, r.key, r.rep)
			}
			installs = append(installs, bound{key: r.key, v: cacheVal{entry: e, t: r.t, ok: true}})
		}
	}
	n := 0
	for _, b := range installs {
		sh := c.shard(b.key)
		sh.mu.Lock()
		if _, exists := sh.m[b.key]; !exists {
			sh.insert(b.key, b.v)
			n++
		}
		sh.mu.Unlock()
	}
	for i := range learned {
		if s.add(&learned[i]) {
			n++
		}
	}
	for _, k := range negs {
		if s.addNegative(k) {
			n++
		}
	}
	return n, nil
}

// SaveFile atomically writes a snapshot of c to path; it is
// SaveSnapshotFile without an on-demand store.
func (c *Cache) SaveFile(path string) (int, error) {
	return SaveSnapshotFile(path, c, nil)
}

// SaveSnapshotFile atomically writes a snapshot of c and s (either may
// be nil) to path and returns the number of records written: the
// snapshot is streamed to a temporary file in the same directory,
// synced, and renamed over path, so readers never observe a partially
// written snapshot and a crash mid-save leaves the previous snapshot
// intact. An existing file keeps its permission bits; a fresh one is
// created world-readable (0644) rather than with CreateTemp's private
// 0600, so sidecar readers are not locked out.
func SaveSnapshotFile(path string, c *Cache, s *OnDemand) (int, error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return 0, err
	}
	tmp := f.Name()
	fail := func(err error) (int, error) {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	mode := os.FileMode(0o644)
	if fi, err := os.Stat(path); err == nil {
		mode = fi.Mode().Perm()
	}
	if err := f.Chmod(mode); err != nil {
		return fail(err)
	}
	// Failpoint "db/snapshot-write": a write failure (EIO, full disk)
	// after the temp file exists but before its content is complete. The
	// partial temp file must be removed and the live snapshot untouched.
	if err := fault.Hit("db/snapshot-write"); err != nil {
		io.WriteString(f, snapshotMagic) // leave a genuinely partial write behind
		return fail(err)
	}
	n, err := WriteSnapshot(f, c, s)
	if err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	// Failpoint "db/snapshot-rename": a crash or error between the fully
	// written temp file and the atomic rename — the last instant where
	// the previous snapshot must survive and no *.tmp* may leak.
	if err := fault.Hit("db/snapshot-rename"); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	return n, nil
}

// LoadFile restores the snapshot at path into c, rebinding entries
// through d; it is LoadSnapshotFile without an on-demand store.
func (c *Cache) LoadFile(path string, d *DB) (int, error) {
	return LoadSnapshotFile(path, d, c, nil)
}

// LoadSnapshotFile restores the snapshot at path into c and s (see
// ReadSnapshot). A missing file is reported as an error satisfying
// errors.Is(err, fs.ErrNotExist), which callers treat as a cold start;
// any ErrSnapshot error likewise leaves c and s unchanged.
func LoadSnapshotFile(path string, d *DB, c *Cache, s *OnDemand) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	// Failpoint "db/snapshot-load": a read failure on a healthy file
	// (bad sector, truncated NFS read). Callers must degrade to a cold
	// cache exactly as they do for ErrSnapshot corruption.
	if err := fault.Hit("db/snapshot-load"); err != nil {
		return 0, err
	}
	return ReadSnapshot(f, d, c, s)
}
