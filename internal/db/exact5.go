package db

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mighash/internal/exact"
	"mighash/internal/fault"
	"mighash/internal/npn"
	"mighash/internal/obs"
	"mighash/internal/tt"
)

// The on-demand 5-input database. At five inputs the precomputation that
// makes the 4-input database possible stops scaling — there are ~616k
// NPN classes (Sec. IV discusses exactly this wall) — so the database is
// *learned*: the first time a cut function's class is needed, its
// minimum MIG is synthesized on the spot with the SAT engine of
// internal/exact under a strict budget, memoized under the class's
// semi-canonical representative (npn.Canonize5), and served from memory
// forever after. Classes that blow the budget are negative-cached so a
// hopeless ladder is climbed at most once per process (and, through the
// snapshot format, at most once per cache file).

// OnDemandOptions tunes the per-class synthesis budget of an OnDemand
// store. The defaults deliberately bias toward determinism: the conflict
// budget makes "class X is too hard" a pure function of the class, so
// two runs — at any worker count — learn exactly the same database.
// Timeout trades that reproducibility for a wall-clock bound; it is off
// by default and meant for latency-sensitive servers.
type OnDemandOptions struct {
	// MaxGates caps the ladder: classes needing more gates are
	// negative-cached. Replacing a 5-cut only profits when the cone is
	// bigger than the minimum MIG, and real cones of five-leaf cuts are
	// small, so the default of 7 keeps the brutal high-k UNSAT proofs
	// out of the hot path without giving up useful replacements.
	// Non-positive values select the default (there is no unlimited
	// setting; an empty ladder would negative-cache every class).
	MaxGates int
	// MaxConflicts bounds each SAT decision step. Default 10,000;
	// negative means unlimited.
	MaxConflicts int64
	// Timeout bounds each class's whole ladder in wall-clock time.
	// Default 0 (no wall-clock bound — deterministic).
	Timeout time.Duration
	// BreakerFailures arms the synthesis circuit breaker: after this many
	// consecutive failed ladders (budget-blown or fault-injected — a SAT
	// engine in trouble, a disk of swap, an injected chaos fault) the
	// store trips into a cooldown where lookups of unlearned classes
	// resolve as plain misses without running a ladder. The K = 4 path
	// still optimizes and results stay sound — a breaker-open miss just
	// forgoes a possible 5-cut replacement, it never serves a wrong one.
	// 0 disables the breaker (the default): like Timeout, the breaker
	// trades the store's learn-everything determinism for bounded latency
	// under pathological load, so it is opt-in for servers.
	BreakerFailures int
	// BreakerCooldown is how long a tripped breaker stays open before a
	// single probe ladder is allowed through. A successful probe closes
	// the breaker and resumes learning; a failed one re-trips it for
	// another cooldown. Default 30s when BreakerFailures > 0.
	BreakerCooldown time.Duration
	// Limit bounds the learned classes kept in memory (0, the default,
	// keeps everything). At the bound the store evicts with the same
	// second-chance clock as the cut-cache; evicted classes are simply
	// re-learned on next contact. Like Timeout, a bound trades the
	// store's learn-once determinism for predictable memory, so it is
	// opt-in and meant for long-running servers (migserve -synth-limit).
	Limit int
}

func (o OnDemandOptions) withDefaults() OnDemandOptions {
	if o.MaxGates <= 0 {
		// There is no "unlimited" ladder: a non-positive cap would make
		// every class fail instantly and — worse — persist the failures
		// as negative-cache records, so normalize to the default.
		o.MaxGates = 7
	}
	if o.MaxConflicts == 0 {
		o.MaxConflicts = 10_000
	}
	if o.MaxConflicts < 0 {
		o.MaxConflicts = 0
	}
	if o.BreakerFailures < 0 {
		o.BreakerFailures = 0
	}
	if o.BreakerFailures > 0 && o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 30 * time.Second
	}
	if o.Limit < 0 {
		o.Limit = 0
	}
	return o
}

// OnDemand is the lazy 5-input functional-hashing store. It is safe for
// concurrent use by any number of rewriting workers: lookups of learned
// classes are read-locked map hits, and a miss synthesizes under a
// per-class in-flight gate so concurrent misses of one class run the
// ladder once while other classes proceed unblocked.
//
// Entries are keyed by the semi-canonical representative of
// npn.Canonize5, so everything the store learns is valid for the whole
// NPN class. Learned and negative-cached classes travel through the
// width-tagged snapshot format of WriteSnapshot/ReadSnapshot, giving
// warm restarts the complete learned database.
type OnDemand struct {
	opt OnDemandOptions

	mu       sync.RWMutex
	entries  map[uint32]*odSlot
	negative map[uint32]bool
	inflight map[uint32]chan struct{}
	// canon memoizes Canonize5 per queried 32-bit truth table — the
	// 5-input analog of db.Cache, here because the store already owns
	// the right lock and lifetime. It stays unbounded (8 bytes per
	// distinct queried function); only the learned entries — the part
	// that holds gate structures — fall under Limit.
	canon map[uint32]canonMemo

	// Second-chance clock state (see evict5.go); inert with limit == 0.
	limit     int
	ring      []uint32
	hand      int
	evictions atomic.Uint64

	hits     atomic.Uint64 // lookups answered from memory (incl. negative)
	misses   atomic.Uint64 // lookups that had to synthesize
	synths   atomic.Uint64 // ladders run (== misses, minus in-flight joins)
	failures atomic.Uint64 // ladders that failed (budget-blown or injected)

	// Circuit-breaker state (inert with BreakerFailures == 0). brkMu is
	// taken only on the ladder path — never on the read-locked hit path —
	// so the breaker costs learned-class lookups nothing.
	brkMu        sync.Mutex
	consecFails  int           // consecutive failed ladders; ≥ threshold = tripped
	brkOpenUntil time.Time     // while tripped: when the next probe is allowed
	brkProbe     bool          // a half-open probe ladder is in flight
	brkTrips     atomic.Uint64 // times the breaker tripped (incl. re-trips)
	brkSkips     atomic.Uint64 // lookups resolved as misses by an open breaker
}

// Breaker states reported by BreakerState.
const (
	BreakerClosed   = 0 // ladders run normally
	BreakerHalfOpen = 1 // cooldown over; one probe ladder allowed
	BreakerOpen     = 2 // cooling down; lookups resolve as plain misses
)

// canonMemo is one memoized semi-canonicalization: the class key and
// the transform instantiating the queried function from its rep.
type canonMemo struct {
	key uint32
	t   npn.Transform
}

// NewOnDemand returns an empty store with the given budget.
func NewOnDemand(opt OnDemandOptions) *OnDemand {
	opt = opt.withDefaults()
	return &OnDemand{
		opt:      opt,
		limit:    opt.Limit,
		entries:  make(map[uint32]*odSlot),
		negative: make(map[uint32]bool),
		inflight: make(map[uint32]chan struct{}),
		canon:    make(map[uint32]canonMemo),
	}
}

// canonize is Canonize5 memoized per queried truth table: repeats — the
// same cut function recurring across nodes, passes and iterations — are
// a read-locked map hit instead of a fresh signature enumeration.
func (s *OnDemand) canonize(f tt.TT) (uint32, npn.Transform) {
	fkey := uint32(f.Bits)
	s.mu.RLock()
	cm, ok := s.canon[fkey]
	s.mu.RUnlock()
	if ok {
		return cm.key, cm.t
	}
	rep, t := npn.Canonize5(f)
	key := uint32(rep.Bits)
	s.mu.Lock()
	s.canon[fkey] = canonMemo{key: key, t: t}
	s.mu.Unlock()
	return key, t
}

// Options returns the store's synthesis budget (defaults resolved).
func (s *OnDemand) Options() OnDemandOptions { return s.opt }

// Len returns the number of learned classes.
func (s *OnDemand) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.entries)
}

// Candidates returns the total implementations the learned classes
// offer: one minimum-size primary per class plus the derived
// alternatives (Entry.Alts).
func (s *OnDemand) Candidates() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, sl := range s.entries {
		n += sl.e.NumCandidates()
	}
	return n
}

// NegativeLen returns the number of negative-cached (budget-blown) classes.
func (s *OnDemand) NegativeLen() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.negative)
}

// Hits returns the lookups answered from memory, including negative hits.
func (s *OnDemand) Hits() uint64 { return s.hits.Load() }

// Misses returns the lookups that had to run (or join) a synthesis.
func (s *OnDemand) Misses() uint64 { return s.misses.Load() }

// Synths returns the number of exact-synthesis ladders run.
func (s *OnDemand) Synths() uint64 { return s.synths.Load() }

// Failures returns the ladders that failed: budget-blown (conflicts,
// wall-clock, or the gate cap — negative-cached) plus fault-injected
// failures (transient, retried once the breaker allows).
func (s *OnDemand) Failures() uint64 { return s.failures.Load() }

// BreakerState reports the synthesis circuit breaker's current state:
// BreakerClosed, BreakerHalfOpen or BreakerOpen. Always BreakerClosed
// when the breaker is disabled (OnDemandOptions.BreakerFailures == 0).
func (s *OnDemand) BreakerState() int {
	if s.opt.BreakerFailures == 0 {
		return BreakerClosed
	}
	s.brkMu.Lock()
	defer s.brkMu.Unlock()
	if s.consecFails < s.opt.BreakerFailures {
		return BreakerClosed
	}
	if time.Now().Before(s.brkOpenUntil) {
		return BreakerOpen
	}
	return BreakerHalfOpen
}

// BreakerTrips returns how many times the breaker opened (including
// re-trips after a failed half-open probe).
func (s *OnDemand) BreakerTrips() uint64 { return s.brkTrips.Load() }

// BreakerSkips returns the lookups an open breaker resolved as plain
// misses without running a ladder.
func (s *OnDemand) BreakerSkips() uint64 { return s.brkSkips.Load() }

// breakerAcquire decides whether a ladder may run now. Closed: always.
// Open: never (the caller resolves the lookup as a miss). Half-open
// (cooldown over): exactly one probe ladder at a time.
func (s *OnDemand) breakerAcquire() bool {
	if s.opt.BreakerFailures == 0 {
		return true
	}
	s.brkMu.Lock()
	defer s.brkMu.Unlock()
	if s.consecFails < s.opt.BreakerFailures {
		return true
	}
	if time.Now().Before(s.brkOpenUntil) {
		return false
	}
	if s.brkProbe {
		return false
	}
	s.brkProbe = true
	return true
}

// breakerReport folds one finished ladder into the breaker: a learned
// class closes the breaker, a failure (budget-blown or injected) counts
// toward the trip threshold and — at or past it — opens the breaker for
// a cooldown. Cancelled ladders say nothing about the engine's health
// and leave the failure streak untouched.
func (s *OnDemand) breakerReport(learned, failed bool) {
	if s.opt.BreakerFailures == 0 {
		return
	}
	s.brkMu.Lock()
	defer s.brkMu.Unlock()
	s.brkProbe = false
	switch {
	case learned:
		s.consecFails = 0
	case failed:
		s.consecFails++
		if s.consecFails >= s.opt.BreakerFailures {
			now := time.Now()
			if now.After(s.brkOpenUntil) {
				// Transition into (or back into) an open window; pure
				// extensions of a window already open — concurrent ladders
				// finishing after the trip — are not separate trips.
				s.brkTrips.Add(1)
			}
			s.brkOpenUntil = now.Add(s.opt.BreakerCooldown)
		}
	}
}

func (s *OnDemand) String() string {
	return fmt.Sprintf("exact5: %d classes learned, %d negative, %d synths (%d failed), %d hits / %d misses",
		s.Len(), s.NegativeLen(), s.Synths(), s.Failures(), s.Hits(), s.Misses())
}

// Lookup resolves the minimum MIG of f's NPN class, learning it on
// first contact. It returns the entry together with the transform t
// satisfying npn.Apply(t, entry.Rep) = f, or ok=false when the class
// blew its synthesis budget (now or in a previous attempt). f must have
// exactly 5 variables.
//
// ctx cancels an in-flight ladder — a server can abandon synthesis when
// its request deadline passes. A cancelled lookup returns ok=false
// without negative-caching the class: the class is not hopeless, the
// caller just stopped waiting, so the next request retries it.
func (s *OnDemand) Lookup(ctx context.Context, f tt.TT) (*Entry, npn.Transform, bool) {
	if f.N != 5 {
		panic(fmt.Sprintf("db: OnDemand.Lookup requires a 5-variable function, got %d", f.N))
	}
	key, t := s.canonize(f)
	s.mu.RLock()
	sl, found := s.entries[key]
	neg := s.negative[key]
	var e *Entry
	if found {
		e = sl.e
		if s.limit > 0 {
			sl.refTouch()
		}
	}
	s.mu.RUnlock()
	if found {
		s.hits.Add(1)
		return e, t, true
	}
	if neg {
		s.hits.Add(1)
		return nil, npn.Transform{}, false
	}
	s.misses.Add(1)
	for {
		s.mu.Lock()
		if sl, found := s.entries[key]; found {
			e := sl.e
			s.mu.Unlock()
			return e, t, true
		}
		if s.negative[key] {
			s.mu.Unlock()
			return nil, npn.Transform{}, false
		}
		if ch, busy := s.inflight[key]; busy {
			s.mu.Unlock()
			select {
			case <-ch:
				continue // re-read the maps: the runner published a verdict
			case <-ctx.Done():
				return nil, npn.Transform{}, false
			}
		}
		if !s.breakerAcquire() {
			// Breaker open: the ladder engine is in trouble, so resolve as
			// a plain miss — the K = 4 path still optimizes this cut, and
			// the class stays unlearned, retried after the cooldown.
			s.mu.Unlock()
			s.brkSkips.Add(1)
			return nil, npn.Transform{}, false
		}
		ch := make(chan struct{})
		s.inflight[key] = ch
		s.mu.Unlock()
		e, negCache, failed := s.synthesize(ctx, tt.New(5, uint64(key)))
		s.breakerReport(e != nil, failed)
		s.mu.Lock()
		delete(s.inflight, key)
		if e != nil {
			s.insertLocked(key, e)
		} else if negCache {
			s.negative[key] = true
		}
		s.mu.Unlock()
		close(ch)
		if e != nil {
			return e, t, true
		}
		return nil, npn.Transform{}, false
	}
}

// synthesize runs one budgeted ladder for rep. It returns the learned
// entry, whether the class should be negative-cached, and whether the
// ladder failed (feeding the circuit breaker): (e, false, false) on
// success, (nil, true, true) when the budget blew, (nil, false, true)
// for a fault-injected failure — transient, so not negative-cached —
// and (nil, false, false) when the failure was the caller's
// cancellation.
//
// The ladder is the heavy tail of the whole stack, so it gets its own
// trace span carrying the class representative, the conflicts spent, and
// the outcome — the attribution that turns "this request was slow" into
// "class 169ae443 burned 10k conflicts and was negative-cached".
func (s *OnDemand) synthesize(ctx context.Context, rep tt.TT) (*Entry, bool, bool) {
	s.synths.Add(1)
	ctx, span := obs.Start(ctx, "exact5.ladder")
	defer span.End()
	span.SetStr("class", fmt.Sprintf("%08x", uint32(rep.Bits)))
	// Failpoint "db/exact5-ladder": an injected ladder failure or delay.
	// An injected failure is transient — the class was never proven hard,
	// so it is not negative-cached (a restart must re-attempt it) — but
	// it does count as a failed ladder toward the circuit breaker.
	if err := fault.Hit("db/exact5-ladder"); err != nil {
		s.failures.Add(1)
		span.SetStr("outcome", "fault-injected")
		return nil, false, true
	}
	start := time.Now()
	m, ls, err := exact.MinimumStats(ctx, rep, exact.Options{
		MaxGates:     s.opt.MaxGates,
		MaxConflicts: s.opt.MaxConflicts,
		Timeout:      s.opt.Timeout,
	})
	span.SetInt("conflicts", ls.Conflicts)
	span.SetInt("steps", int64(ls.Steps))
	if err != nil {
		if ctx.Err() != nil {
			// The caller went away mid-ladder; the class itself was
			// never proven hard, so leave it retryable.
			span.SetStr("outcome", "cancelled")
			return nil, false, false
		}
		s.failures.Add(1)
		span.SetStr("outcome", "negative-cached")
		return nil, true, true
	}
	e, err := FromMIG(rep, m)
	if err != nil {
		// Impossible unless the synthesis engine mis-extracts; treat as
		// a budget failure rather than poisoning the store.
		s.failures.Add(1)
		span.SetStr("outcome", "negative-cached")
		return nil, true, true
	}
	e.GenTime = time.Since(start)
	// Derive the alternative-implementation menu while the class is hot:
	// derivation is deterministic, so a store populated cold and one
	// restored from a snapshot offer identical menus.
	e.Alts = deriveAlts(&e)
	span.SetStr("outcome", "learned")
	span.SetInt("gates", int64(ls.Gates))
	return &e, false, false
}

// add installs a pre-verified learned entry (snapshot restore). It
// reports whether the entry was new. Restores respect the store's
// bound: at the limit, installing evicts.
func (s *OnDemand) add(e *Entry) bool {
	key := uint32(e.Rep.Bits)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.entries[key]; dup {
		return false
	}
	delete(s.negative, key) // a learned class trumps an old failure
	s.insertLocked(key, e)
	return true
}

// addNegative installs a budget-blown class marker (snapshot restore).
// Known-learned classes win over negative records. It reports whether
// the marker was new.
func (s *OnDemand) addNegative(key uint32) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, learned := s.entries[key]; learned {
		return false
	}
	if s.negative[key] {
		return false
	}
	s.negative[key] = true
	return true
}

// snapshotState copies the store's learned and negative classes for the
// snapshot writer, so serialization does not hold the lock.
func (s *OnDemand) snapshotState() (entries []*Entry, negatives []uint32) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	entries = make([]*Entry, 0, len(s.entries))
	for _, sl := range s.entries {
		entries = append(entries, sl.e)
	}
	negatives = make([]uint32, 0, len(s.negative))
	for k := range s.negative {
		negatives = append(negatives, k)
	}
	return entries, negatives
}
