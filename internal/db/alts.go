package db

import (
	"mighash/internal/depthopt"
	"mighash/internal/mig"
	"mighash/internal/npn"
)

// Alternative-candidate derivation. The database's contract used to be
// "one answer per class" — the minimum-size MIG. Choice-aware extraction
// wants a small menu per class instead: implementations trading gates for
// depth, so the global cover can pick a shallower structure where the
// extra gates are shared or the objective is depth. Re-running exact
// synthesis per tradeoff point is out of the question (for the 5-input
// store it would multiply the SAT bill), so alternatives are derived
// algebraically: the primary entry is rebuilt as a tiny MIG and pushed
// through the majority-axiom reassociation of internal/depthopt at
// increasing size allowances. Every derived structure is converted back
// through FromMIG, which re-verifies it by simulation against the class
// representative — an unsound reassociation cannot enter the database.
//
// Only strictly shallower alternatives are kept: an alternative with the
// primary's depth (or worse) is dominated — the primary is minimum-size
// by construction — and would just widen the choice graph for nothing.

// maxAltsPerEntry bounds the menu per class. Two tradeoff points (on top
// of the size-minimal primary) cover what the bounded reassociation can
// reach for ≤ 7-gate MIGs; the snapshot decoder enforces the same bound.
const maxAltsPerEntry = 2

// altSizeFactors are the depthopt size allowances tried, in order: first
// a mild growth budget, then a generous one for classes whose balanced
// form needs more duplication. Factors are tried deterministically, so
// derived menus are a pure function of the entry.
var altSizeFactors = []float64{1.5, 2.5}

// entryMIG rebuilds e as a standalone K-input single-output MIG.
func entryMIG(e *Entry) *mig.MIG {
	k := e.K()
	m := mig.New(k)
	leaves := make([]mig.Lit, k)
	for i := 0; i < k; i++ {
		leaves[i] = m.Input(i)
	}
	t := npn.Transform{N: k}
	for j := 0; j < k; j++ {
		t.Perm[j] = j
	}
	m.AddOutput(e.Instantiate(m, leaves, t))
	return m
}

// deriveAlts computes up to maxAltsPerEntry strictly shallower
// alternative implementations of e. It is deterministic and never
// mutates e beyond assigning the result; callers decide where the
// returned slice is attached.
func deriveAlts(e *Entry) []Entry {
	if e.Size() < 2 || e.Depth < 2 {
		return nil // nothing shallower than depth 1 exists
	}
	base := entryMIG(e)
	var alts []Entry
	bestDepth := e.Depth
	for _, sf := range altSizeFactors {
		opt, _ := depthopt.Optimize(base, depthopt.Options{SizeFactor: sf, MaxPasses: 8})
		alt, err := FromMIG(e.Rep, opt)
		if err != nil {
			continue // reassociation failed verification: drop, keep going
		}
		if alt.Depth >= bestDepth {
			continue // dominated by the primary or an earlier alternative
		}
		bestDepth = alt.Depth
		alts = append(alts, alt)
		if len(alts) == maxAltsPerEntry {
			break
		}
	}
	return alts
}

// EnsureAlts populates the alternative-implementation menus of every
// entry and returns the total number of candidates (primaries plus
// alternatives). Derivation runs once per DB — Load() hands every caller
// the same instance, so the embedded database pays the (millisecond-
// scale) cost once per process; the choice-aware rewriter calls this
// lazily on its first pass.
func (d *DB) EnsureAlts() int {
	d.altsOnce.Do(func() {
		n := 0
		for i := range d.entries {
			e := &d.entries[i]
			e.Alts = deriveAlts(e)
			n += e.NumCandidates()
		}
		d.altCount.Store(int64(n))
	})
	return int(d.altCount.Load())
}

// Candidates returns the total implementations the database offers after
// EnsureAlts (0 before: the menus have not been derived yet).
func (d *DB) Candidates() int { return int(d.altCount.Load()) }
