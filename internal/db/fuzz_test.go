package db

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"mighash/internal/tt"
)

// FuzzRead throws arbitrary bytes at the text-artifact parser. Any
// input — corrupt, truncated, or adversarial — must come back as an
// error, never a panic; inputs that do parse must re-serialize.
func FuzzRead(f *testing.F) {
	d, err := Load()
	if err != nil {
		f.Fatalf("embedded database unavailable: %v", err)
	}
	var art strings.Builder
	if err := d.Write(&art); err != nil {
		f.Fatal(err)
	}
	lines := strings.Split(art.String(), "\n")
	f.Add(art.String())
	f.Add(strings.Join(lines[:10], "\n"))
	f.Add("")
	f.Add("# comment only\n")
	f.Add("6996 k=0 out=3\n")
	f.Add("6996 k=3 out=9 gates=2.4.6;3.5.7;8.10.11\n")
	f.Add("zzzz k=1 out=1 gates=1.1.1\n")
	f.Add("6996 k=1 out=99999999999999999999\n")
	f.Add("6996 k=1 gates=1.2\n")
	f.Add("0000 unknown=field\n")
	f.Fuzz(func(t *testing.T, input string) {
		d, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		// Whatever parsed must round-trip through Write|Read.
		var out strings.Builder
		if err := d.Write(&out); err != nil {
			t.Fatalf("Write of parsed database failed: %v", err)
		}
		if _, err := Read(strings.NewReader(out.String())); err != nil {
			t.Fatalf("re-parse of written database failed: %v", err)
		}
	})
}

// FuzzRestore throws arbitrary bytes at the snapshot decoder. Corrupt,
// truncated, or version-skewed input must return an error and leave the
// cache cold — never panic, never install entries from a bad stream.
func FuzzRestore(f *testing.F) {
	d, err := Load()
	if err != nil {
		f.Fatalf("embedded database unavailable: %v", err)
	}
	c := NewCache()
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		d.LookupCached(tt.New(4, rng.Uint64()&0xFFFF), c)
	}
	var snap bytes.Buffer
	if _, err := c.Snapshot(&snap); err != nil {
		f.Fatal(err)
	}
	good := snap.Bytes()
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add(good[:4])
	f.Add([]byte{})
	f.Add([]byte("MHC\x01"))
	f.Add([]byte("MHC\x02garbage"))
	f.Add([]byte("XYZ\x01"))
	corrupt := bytes.Clone(good)
	corrupt[len(corrupt)/3] ^= 0xFF
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, input []byte) {
		warm := NewCache()
		n, err := warm.Restore(bytes.NewReader(input), d)
		if err != nil {
			if warm.Len() != 0 {
				t.Fatalf("failed restore installed %d entries", warm.Len())
			}
			return
		}
		if n != warm.Len() {
			t.Fatalf("restore reported %d entries but cache holds %d", n, warm.Len())
		}
		// Every survivor must behave exactly like a cold lookup.
		// A valid-checksum stream may carry any transform satisfying
		// Apply(t, rep) = key (Restore verifies exactly that), so only the
		// entry identity and ok flag are pinned against a cold lookup.
		for v := 0; v < 1<<16; v += 257 {
			ft := tt.New(4, uint64(v))
			e, _, ok, hit := d.LookupCached(ft, warm)
			if !hit {
				continue
			}
			we, _, wok := d.Lookup(ft)
			if ok != wok || e != we {
				t.Fatalf("%04x: restored entry diverges from cold lookup", v)
			}
		}
	})
}
