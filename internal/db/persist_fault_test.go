package db

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"mighash/internal/fault"
)

// TestSaveSnapshotFileCrashSafety drives the two failpoints inside the
// atomic save — a write failure while the temp file is partial, and a
// failure at the last instant before the rename — and proves the crash
// contract either way: the live snapshot is untouched byte-for-byte and
// still restores, no *.tmp* file leaks, and once the fault clears the
// next save succeeds.
func TestSaveSnapshotFileCrashSafety(t *testing.T) {
	d := mustLoad(t)
	for _, fp := range []string{"db/snapshot-write", "db/snapshot-rename"} {
		t.Run(filepath.Base(fp), func(t *testing.T) {
			defer fault.Reset()
			dir := t.TempDir()
			path := filepath.Join(dir, "mig.cache")

			c := NewCache()
			populate(t, d, c, 500, 11)
			n, err := SaveSnapshotFile(path, c, nil)
			if err != nil {
				t.Fatalf("initial save: %v", err)
			}
			golden, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}

			// Grow the cache so a save that wrongly went through would
			// change the file — byte-equality below then proves it didn't.
			populate(t, d, c, 500, 12)
			if err := fault.Enable(fp, "return(injected EIO)"); err != nil {
				t.Fatal(err)
			}
			if _, err := SaveSnapshotFile(path, c, nil); !errors.Is(err, fault.ErrInjected) {
				t.Fatalf("faulty save returned %v, want ErrInjected", err)
			}
			got, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("live snapshot unreadable after failed save: %v", err)
			}
			if !bytes.Equal(got, golden) {
				t.Fatalf("failed save changed the live snapshot (%d bytes, was %d)", len(got), len(golden))
			}
			warm := NewCache()
			if m, err := warm.Restore(bytes.NewReader(got), d); err != nil || m != n {
				t.Fatalf("live snapshot no longer restores: %d records, err %v (want %d, nil)", m, err, n)
			}
			if tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp*")); len(tmps) != 0 {
				t.Fatalf("failed save leaked temp files: %v", tmps)
			}

			fault.Disable(fp)
			n2, err := SaveSnapshotFile(path, c, nil)
			if err != nil {
				t.Fatalf("save after clearing the fault: %v", err)
			}
			if n2 <= n {
				t.Fatalf("recovered save wrote %d records, want > %d", n2, n)
			}
			warm2 := NewCache()
			if m, err := warm2.LoadFile(path, d); err != nil || m != n2 {
				t.Fatalf("recovered snapshot restores %d records, err %v (want %d, nil)", m, err, n2)
			}
		})
	}
}

// TestLoadSnapshotFileInjectedReadError: a read fault on a healthy
// snapshot file surfaces as an error and leaves the cache cold — the
// same degraded path as ErrSnapshot corruption — and the very next load
// warm-starts normally once the fault clears.
func TestLoadSnapshotFileInjectedReadError(t *testing.T) {
	defer fault.Reset()
	d := mustLoad(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "mig.cache")
	c := NewCache()
	populate(t, d, c, 300, 13)
	n, err := SaveSnapshotFile(path, c, nil)
	if err != nil {
		t.Fatal(err)
	}

	if err := fault.Enable("db/snapshot-load", "return(bad sector)"); err != nil {
		t.Fatal(err)
	}
	cold := NewCache()
	if _, err := LoadSnapshotFile(path, d, cold, nil); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("faulty load returned %v, want ErrInjected", err)
	}
	if cold.Len() != 0 {
		t.Fatalf("failed load left %d entries in the cache, want 0", cold.Len())
	}

	fault.Disable("db/snapshot-load")
	if m, err := LoadSnapshotFile(path, d, cold, nil); err != nil || m != n {
		t.Fatalf("load after clearing the fault: %d records, err %v (want %d, nil)", m, err, n)
	}
}
