package db

import (
	"fmt"

	"mighash/internal/mig"
	"mighash/internal/tt"
)

// Bound returns the Theorem 2 upper bound on MIG size for n-variable
// functions: C(n) ≤ 10·(2^(n−4)−1)+7 for n ≥ 4; smaller arities embed
// into four variables.
func Bound(n int) int {
	if n <= 4 {
		return 7
	}
	return 10*(1<<uint(n-4)-1) + 7
}

// SynthesizeUpper constructs an MIG for f whose size respects the
// Theorem 2 bound, mirroring the proof: Shannon expansion
//
//	f = 〈1 〈0 x̄ₙ f_{x̄ₙ}〉 〈0 xₙ f_{xₙ}〉〉
//
// down to 4 variables, where the database supplies the exact optimum. The
// returned MIG often beats the bound thanks to structural hashing across
// the cofactor trees; the bound itself is asserted by the caller (tests
// and the Theorem 2 experiment).
func (d *DB) SynthesizeUpper(f tt.TT) (*mig.MIG, error) {
	m := mig.New(f.N)
	leaves := make([]mig.Lit, f.N)
	for i := range leaves {
		leaves[i] = m.Input(i)
	}
	out, err := d.synthUpper(m, f, leaves)
	if err != nil {
		return nil, err
	}
	m.AddOutput(out)
	return m, nil
}

// synthUpper builds f over the given leaf signals.
func (d *DB) synthUpper(m *mig.MIG, f tt.TT, leaves []mig.Lit) (mig.Lit, error) {
	if f.N <= 4 {
		l, ok := d.Build(m, f, leaves)
		if !ok {
			return 0, fmt.Errorf("db: class of %v missing", f)
		}
		return l, nil
	}
	n := f.N
	x := leaves[n-1]
	f0, err := d.synthUpper(m, f.Cofactor0(n-1).Shrink(n-1), leaves[:n-1])
	if err != nil {
		return 0, err
	}
	f1, err := d.synthUpper(m, f.Cofactor1(n-1).Shrink(n-1), leaves[:n-1])
	if err != nil {
		return 0, err
	}
	return m.Or(m.And(x.Not(), f0), m.And(x, f1)), nil
}
