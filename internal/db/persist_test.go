package db

import (
	"bytes"
	"errors"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mighash/internal/tt"
)

// populate fills c through d with n pseudo-random 4-variable functions
// and returns the keys that were looked up.
func populate(t *testing.T, d *DB, c *Cache, n int, seed int64) []uint16 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	keys := make([]uint16, 0, n)
	for i := 0; i < n; i++ {
		k := uint16(rng.Uint64())
		d.LookupCached(tt.New(4, uint64(k)), c)
		keys = append(keys, k)
	}
	return keys
}

// TestSnapshotRoundTrip: restoring a snapshot into a fresh cache yields
// the same entries, transforms and ok flags for every key, rebound to
// the loading DB, and every restored key is a hit.
func TestSnapshotRoundTrip(t *testing.T) {
	d := mustLoad(t)
	c := NewCache()
	keys := populate(t, d, c, 5000, 1)

	var buf bytes.Buffer
	if _, err := c.Snapshot(&buf); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	warm := NewCache()
	n, err := warm.Restore(bytes.NewReader(buf.Bytes()), d)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if n != c.Len() || warm.Len() != c.Len() {
		t.Fatalf("restored %d entries into a cache of %d, want %d", n, warm.Len(), c.Len())
	}
	for _, k := range keys {
		f := tt.New(4, uint64(k))
		we, wt, wok, _ := d.LookupCached(f, c)
		e, tr, ok, hit := d.LookupCached(f, warm)
		if e != we || tr != wt || ok != wok {
			t.Fatalf("%04x: restored lookup (%p,%v,%v) != original (%p,%v,%v)", k, e, tr, ok, we, wt, wok)
		}
		if !hit {
			t.Fatalf("%04x: restored entry did not hit", k)
		}
	}
}

// TestSnapshotDeterministic: two snapshots of the same cache are
// byte-identical (records are sorted by key).
func TestSnapshotDeterministic(t *testing.T) {
	d := mustLoad(t)
	c := NewCache()
	populate(t, d, c, 3000, 2)
	var a, b bytes.Buffer
	if _, err := c.Snapshot(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Snapshot(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("two snapshots of one cache differ (%d vs %d bytes)", a.Len(), b.Len())
	}
}

// TestSnapshotRebindsAcrossDBs: a snapshot taken against one DB instance
// restores against a different instance of the same artifact, with every
// entry pointer belonging to the loading DB.
func TestSnapshotRebindsAcrossDBs(t *testing.T) {
	d1 := mustLoad(t)
	var art strings.Builder
	if err := d1.Write(&art); err != nil {
		t.Fatal(err)
	}
	d2, err := Read(strings.NewReader(art.String()))
	if err != nil {
		t.Fatal(err)
	}

	c := NewCache()
	keys := populate(t, d1, c, 2000, 3)
	var buf bytes.Buffer
	if _, err := c.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	warm := NewCache()
	if _, err := warm.Restore(bytes.NewReader(buf.Bytes()), d2); err != nil {
		t.Fatalf("Restore against second DB: %v", err)
	}
	for _, k := range keys {
		f := tt.New(4, uint64(k))
		e, tr, ok, hit := d2.LookupCached(f, warm)
		we, wt, wok := d2.Lookup(f)
		if !hit {
			t.Fatalf("%04x: not restored", k)
		}
		if e != we || tr != wt || ok != wok {
			t.Fatalf("%04x: rebound lookup diverges from d2.Lookup", k)
		}
	}
}

// TestRestoreRejectsCorruption: version skew, bad magic, truncation, a
// flipped byte, and garbage all error out and leave the cache cold.
func TestRestoreRejectsCorruption(t *testing.T) {
	d := mustLoad(t)
	c := NewCache()
	populate(t, d, c, 1000, 4)
	var buf bytes.Buffer
	if _, err := c.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte("XXX\x01"), good[4:]...),
		"version skew": append([]byte(snapshotMagic+"\x63"),
			good[4:]...),
		"truncated header": good[:2],
		"truncated body":   good[:len(good)/2],
		"missing checksum": good[:len(good)-4],
		"garbage":          []byte("not a snapshot at all, sorry"),
	}
	flipped := bytes.Clone(good)
	flipped[len(flipped)/2] ^= 0x40
	cases["flipped byte"] = flipped

	for name, data := range cases {
		warm := NewCache()
		n, err := warm.Restore(bytes.NewReader(data), d)
		if err == nil {
			t.Errorf("%s: Restore accepted corrupt input (%d entries)", name, n)
			continue
		}
		if !errors.Is(err, ErrSnapshot) {
			t.Errorf("%s: error %v does not wrap ErrSnapshot", name, err)
		}
		if warm.Len() != 0 {
			t.Errorf("%s: corrupt restore left %d entries in the cache", name, warm.Len())
		}
	}
}

// TestRestoreSkipsUnknownClasses: records whose class the loading DB
// lacks are skipped, not errors — a snapshot from a full DB warm-starts
// a partial one.
func TestRestoreSkipsUnknownClasses(t *testing.T) {
	d := mustLoad(t)
	c := NewCache()
	populate(t, d, c, 2000, 5)
	var buf bytes.Buffer
	if _, err := c.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	// A partial DB: half the entries.
	entries := d.Entries()
	partial, err := New(append([]Entry(nil), entries[:len(entries)/2]...))
	if err != nil {
		t.Fatal(err)
	}
	warm := NewCache()
	n, err := warm.Restore(bytes.NewReader(buf.Bytes()), partial)
	if err != nil {
		t.Fatalf("Restore against partial DB: %v", err)
	}
	if n >= c.Len() {
		t.Fatalf("partial DB restored %d of %d entries; expected some skipped", n, c.Len())
	}
	if warm.Len() != n {
		t.Fatalf("cache holds %d entries, restore reported %d", warm.Len(), n)
	}
}

// TestSaveLoadFile: SaveFile is atomic (no temp litter, previous file
// intact on failure paths) and LoadFile round-trips; a missing file
// reports fs.ErrNotExist.
func TestSaveLoadFile(t *testing.T) {
	d := mustLoad(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "npn.cache")

	c := NewCache()
	if _, err := c.LoadFile(path, d); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("LoadFile on a missing file: err = %v, want fs.ErrNotExist", err)
	}
	populate(t, d, c, 4000, 6)
	if _, err := c.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	glob, _ := filepath.Glob(filepath.Join(dir, "*.tmp*"))
	if len(glob) != 0 {
		t.Fatalf("SaveFile left temp files behind: %v", glob)
	}
	warm := NewCache()
	n, err := warm.LoadFile(path, d)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if n != c.Len() {
		t.Fatalf("LoadFile restored %d entries, want %d", n, c.Len())
	}

	// Corrupting the file on disk degrades to an error, not a panic, and
	// a subsequent SaveFile replaces it atomically.
	if err := os.WriteFile(path, []byte("scribbled over"), 0o644); err != nil {
		t.Fatal(err)
	}
	cold := NewCache()
	if _, err := cold.LoadFile(path, d); !errors.Is(err, ErrSnapshot) {
		t.Fatalf("LoadFile on corrupt file: err = %v, want ErrSnapshot", err)
	}
	if _, err := c.SaveFile(path); err != nil {
		t.Fatalf("SaveFile over corrupt file: %v", err)
	}
	if _, err := cold.LoadFile(path, d); err != nil {
		t.Fatalf("LoadFile after re-save: %v", err)
	}
}

// TestSetLimitBounds: a bounded cache never exceeds its per-shard budget
// no matter how many distinct keys stream through.
func TestSetLimitBounds(t *testing.T) {
	d := mustLoad(t)
	c := NewCache()
	const limit = 1024
	c.SetLimit(limit)
	for v := 0; v < 1<<16; v++ {
		d.LookupCached(tt.New(4, uint64(v)), c)
	}
	// Per-shard budget is ceil(limit/64); the global bound is its sum.
	per := (limit + cacheShardCount - 1) / cacheShardCount
	if got := c.Len(); got > per*cacheShardCount {
		t.Fatalf("bounded cache holds %d entries, budget %d", got, per*cacheShardCount)
	}
	if got := c.Len(); got != per*cacheShardCount {
		t.Errorf("full key sweep should fill the budget exactly: %d != %d", got, per*cacheShardCount)
	}
}

// TestSetLimitShrinksExisting: lowering the bound on a populated cache
// evicts down immediately.
func TestSetLimitShrinksExisting(t *testing.T) {
	d := mustLoad(t)
	c := NewCache()
	for v := 0; v < 1<<14; v++ {
		d.LookupCached(tt.New(4, uint64(v)), c)
	}
	before := c.Len()
	c.SetLimit(128)
	if got, want := c.Len(), 2*cacheShardCount; got > want {
		t.Fatalf("SetLimit(128) left %d entries (was %d), want <= %d", got, before, want)
	}
}

// TestSecondChanceKeepsHotKeys: a key that is hit between insertions
// survives the sweep that evicts a colder neighbor. Keys 0, 64, 128
// share shard 0 (shard = key & 63); with a per-shard budget of 2 the
// third insertion must evict exactly the un-hit key.
func TestSecondChanceKeepsHotKeys(t *testing.T) {
	d := mustLoad(t)
	c := NewCache()
	c.SetLimit(2 * cacheShardCount) // per-shard budget 2

	hot := tt.New(4, 0)
	cold := tt.New(4, 64)
	newcomer := tt.New(4, 128)
	d.LookupCached(hot, c)      // insert hot
	d.LookupCached(cold, c)     // insert cold — shard 0 now full
	d.LookupCached(hot, c)      // hit hot: reference bit set
	d.LookupCached(newcomer, c) // must evict cold, not hot

	if _, _, _, hit := d.LookupCached(hot, c); !hit {
		t.Error("hot key was evicted despite its second chance")
	}
	if _, _, _, hit := d.LookupCached(newcomer, c); !hit {
		t.Error("newly inserted key missing")
	}
	// cold was the victim, so looking it up again is a miss… which
	// re-inserts it, evicting the current clock victim. Just check the
	// miss itself.
	if _, _, _, hit := d.LookupCached(cold, c); hit {
		t.Error("cold key survived a full shard; expected it evicted")
	}
}

// TestRestoreRespectsLimit: restoring a big snapshot into a bounded
// cache stays within the bound.
func TestRestoreRespectsLimit(t *testing.T) {
	d := mustLoad(t)
	c := NewCache()
	populate(t, d, c, 20000, 7)
	var buf bytes.Buffer
	if _, err := c.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	warm := NewCache()
	warm.SetLimit(512)
	if _, err := warm.Restore(bytes.NewReader(buf.Bytes()), d); err != nil {
		t.Fatal(err)
	}
	per := (512 + cacheShardCount - 1) / cacheShardCount
	if got := warm.Len(); got > per*cacheShardCount {
		t.Fatalf("bounded restore holds %d entries, budget %d", got, per*cacheShardCount)
	}
}

// TestSnapshotBoundedConcurrent: snapshotting while a bounded cache is
// being hammered must neither race nor produce an invalid snapshot.
func TestSnapshotBoundedConcurrent(t *testing.T) {
	d := mustLoad(t)
	c := NewCache()
	c.SetLimit(2048)
	done := make(chan struct{})
	go func() {
		defer close(done)
		rng := rand.New(rand.NewSource(8))
		for i := 0; i < 50000; i++ {
			d.LookupCached(tt.New(4, rng.Uint64()&0xFFFF), c)
		}
	}()
	for i := 0; i < 20; i++ {
		var buf bytes.Buffer
		if _, err := c.Snapshot(&buf); err != nil {
			t.Fatalf("Snapshot during writes: %v", err)
		}
		warm := NewCache()
		if _, err := warm.Restore(bytes.NewReader(buf.Bytes()), d); err != nil {
			t.Fatalf("Restore of concurrent snapshot: %v", err)
		}
	}
	<-done
}

// TestSaveFilePermissions: an existing snapshot keeps its permission
// bits across re-saves, and a fresh snapshot is world-readable instead
// of inheriting CreateTemp's private 0600.
func TestSaveFilePermissions(t *testing.T) {
	d := mustLoad(t)
	c := NewCache()
	populate(t, d, c, 200, 9)
	dir := t.TempDir()

	fresh := filepath.Join(dir, "fresh.cache")
	if _, err := c.SaveFile(fresh); err != nil {
		t.Fatal(err)
	}
	if fi, _ := os.Stat(fresh); fi.Mode().Perm() != 0o644 {
		t.Errorf("fresh snapshot mode = %v, want 0644", fi.Mode().Perm())
	}

	kept := filepath.Join(dir, "kept.cache")
	if err := os.WriteFile(kept, nil, 0o600); err != nil {
		t.Fatal(err)
	}
	if err := os.Chmod(kept, 0o664); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SaveFile(kept); err != nil {
		t.Fatal(err)
	}
	if fi, _ := os.Stat(kept); fi.Mode().Perm() != 0o664 {
		t.Errorf("re-saved snapshot mode = %v, want preserved 0664", fi.Mode().Perm())
	}
}
