package db

import (
	"context"
	"testing"
	"time"

	"mighash/internal/fault"
	"mighash/internal/tt"
)

// and2of5 is x1∧x2 lifted to five variables — a third easy class,
// NPN-distinct from and5 and majority5, synthesizable with one gate.
func and2of5() tt.TT {
	return tt.Var(5, 0).And(tt.Var(5, 1))
}

// waitBreakerState polls until the breaker reaches the wanted state;
// transitions out of BreakerOpen are clock-driven, so tests wait rather
// than assume a sleep was long enough.
func waitBreakerState(t *testing.T, s *OnDemand, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.BreakerState() == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("breaker stuck in state %d, want %d", s.BreakerState(), want)
}

// TestBreakerTripsOnInjectedFailures walks the full breaker lifecycle:
// consecutive injected ladder failures trip it open, open lookups
// resolve as plain misses without ladders (while learned classes keep
// hitting), injected failures are never negative-cached, and after the
// cooldown a successful half-open probe closes the breaker and resumes
// learning.
func TestBreakerTripsOnInjectedFailures(t *testing.T) {
	defer fault.Reset()
	ctx := context.Background()
	s := NewOnDemand(OnDemandOptions{BreakerFailures: 2, BreakerCooldown: 30 * time.Millisecond})

	// Learn one class while the engine is healthy.
	learned := and2of5()
	if _, _, ok := s.Lookup(ctx, learned); !ok {
		t.Fatal("healthy lookup failed")
	}

	if err := fault.Enable("db/exact5-ladder", "return(engine down)"); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.Lookup(ctx, and5()); ok {
		t.Fatal("injected ladder failure reported ok")
	}
	if got := s.BreakerState(); got != BreakerClosed {
		t.Fatalf("one failure below the threshold tripped the breaker (state %d)", got)
	}
	if _, _, ok := s.Lookup(ctx, majority5()); ok {
		t.Fatal("injected ladder failure reported ok")
	}
	if got := s.BreakerState(); got != BreakerOpen {
		t.Fatalf("breaker state after %d consecutive failures = %d, want BreakerOpen", 2, got)
	}
	if got := s.BreakerTrips(); got != 1 {
		t.Fatalf("BreakerTrips = %d, want 1", got)
	}
	if got := s.NegativeLen(); got != 0 {
		t.Fatalf("injected failures were negative-cached (%d classes)", got)
	}
	if got := s.Failures(); got != 2 {
		t.Fatalf("Failures = %d, want 2", got)
	}

	// Open: an unlearned class is a plain miss, no ladder runs.
	synths := s.Synths()
	if _, _, ok := s.Lookup(ctx, and5()); ok {
		t.Fatal("open breaker returned ok for an unlearned class")
	}
	if got := s.Synths(); got != synths {
		t.Fatalf("open breaker ran a ladder (%d synths, was %d)", got, synths)
	}
	if got := s.BreakerSkips(); got == 0 {
		t.Fatal("BreakerSkips = 0 after an open-breaker miss")
	}
	// ...while learned classes keep being served from memory.
	if _, _, ok := s.Lookup(ctx, learned); !ok {
		t.Fatal("open breaker dropped a learned class")
	}

	// Repair the engine; the cooldown expires into half-open and one
	// probe ladder learns the class and closes the breaker.
	fault.Disable("db/exact5-ladder")
	waitBreakerState(t, s, BreakerHalfOpen)
	e, tr, ok := s.Lookup(ctx, and5())
	if !ok {
		t.Fatal("half-open probe failed on a healthy engine")
	}
	if got := tr.Apply(e.Rep); got != and5() {
		t.Fatalf("probe entry instantiates %v, want %v", got, and5())
	}
	if got := s.BreakerState(); got != BreakerClosed {
		t.Fatalf("breaker state after a successful probe = %d, want BreakerClosed", got)
	}
}

// TestBreakerFailedProbeRetrips: a half-open probe that fails re-opens
// the breaker for another cooldown and counts as a second trip.
func TestBreakerFailedProbeRetrips(t *testing.T) {
	defer fault.Reset()
	ctx := context.Background()
	s := NewOnDemand(OnDemandOptions{BreakerFailures: 1, BreakerCooldown: 20 * time.Millisecond})
	if err := fault.Enable("db/exact5-ladder", "return(still down)"); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.Lookup(ctx, and5()); ok {
		t.Fatal("injected ladder failure reported ok")
	}
	waitBreakerState(t, s, BreakerHalfOpen)
	if _, _, ok := s.Lookup(ctx, majority5()); ok {
		t.Fatal("failed probe reported ok")
	}
	if got := s.BreakerState(); got != BreakerOpen {
		t.Fatalf("breaker state after a failed probe = %d, want BreakerOpen", got)
	}
	if got := s.BreakerTrips(); got != 2 {
		t.Fatalf("BreakerTrips = %d, want 2", got)
	}
}

// TestBreakerCountsBudgetBlownLadders: organic budget failures feed the
// breaker exactly like injected ones — and, unlike injected ones, they
// do negative-cache their class.
func TestBreakerCountsBudgetBlownLadders(t *testing.T) {
	ctx := context.Background()
	// MaxGates 1 makes any class needing ≥ 2 gates (every function that
	// touches all five inputs) a deterministic budget failure.
	s := NewOnDemand(OnDemandOptions{MaxGates: 1, BreakerFailures: 2, BreakerCooldown: time.Minute})
	if _, _, ok := s.Lookup(ctx, and5()); ok {
		t.Fatal("5-input AND fit in one gate?")
	}
	if _, _, ok := s.Lookup(ctx, majority5()); ok {
		t.Fatal("5-input majority fit in one gate?")
	}
	if got := s.BreakerState(); got != BreakerOpen {
		t.Fatalf("breaker state after two budget-blown ladders = %d, want BreakerOpen", got)
	}
	if got := s.NegativeLen(); got != 2 {
		t.Fatalf("budget-blown classes negative-cached = %d, want 2", got)
	}
}

// TestBreakerDisabledByDefault: with BreakerFailures at its zero default
// the breaker never engages — every miss runs its ladder even through a
// streak of injected failures, preserving the store's learn-everything
// determinism.
func TestBreakerDisabledByDefault(t *testing.T) {
	defer fault.Reset()
	ctx := context.Background()
	s := NewOnDemand(OnDemandOptions{})
	if err := fault.Enable("db/exact5-ladder", "return(engine down)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, ok := s.Lookup(ctx, and5()); ok {
			t.Fatal("injected ladder failure reported ok")
		}
	}
	if got := s.BreakerState(); got != BreakerClosed {
		t.Fatalf("disabled breaker left Closed state (%d)", got)
	}
	if got := s.BreakerSkips(); got != 0 {
		t.Fatalf("disabled breaker skipped %d lookups", got)
	}
	// Injected failures are transient: not negative-cached, so each retry
	// honestly re-ran the ladder.
	if got := s.Synths(); got != 3 {
		t.Fatalf("Synths = %d, want 3", got)
	}
	fault.Disable("db/exact5-ladder")
	if _, _, ok := s.Lookup(ctx, and5()); !ok {
		t.Fatal("lookup after clearing the fault failed")
	}
}
