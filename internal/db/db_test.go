package db

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"mighash/internal/mig"
	"mighash/internal/npn"
	"mighash/internal/tt"
)

func load(t testing.TB) *DB {
	t.Helper()
	d, err := Load()
	if err != nil {
		t.Fatalf("embedded database unavailable (run cmd/migdb): %v", err)
	}
	return d
}

// TestTableIDistribution pins the class and function counts per optimal
// MIG size against Table I of the paper — these are mathematical facts,
// so any deviation is a bug in exact synthesis or classification.
func TestTableIDistribution(t *testing.T) {
	d := load(t)
	type row struct{ classes, functions int }
	want := map[int]row{
		0: {2, 10}, 1: {2, 80}, 2: {5, 640}, 3: {18, 3300},
		4: {42, 10352}, 5: {117, 40064}, 6: {35, 11058}, 7: {1, 32},
	}
	got := map[int]row{}
	for _, e := range d.Entries() {
		r := got[e.Size()]
		r.classes++
		r.functions += npn.ClassSize4(e.Rep)
		got[e.Size()] = r
	}
	for k, w := range want {
		if got[k] != w {
			t.Errorf("size %d: %d classes / %d functions, want %d / %d",
				k, got[k].classes, got[k].functions, w.classes, w.functions)
		}
	}
	if len(got) != len(want) {
		t.Errorf("sizes present: %v", got)
	}
}

// TestHardestClassIsS02 checks the paper's highlighted result: the single
// most expensive NPN class is S₀,₂(x₁,…,x₄) with 7 majority gates (Fig. 2).
func TestHardestClassIsS02(t *testing.T) {
	d := load(t)
	var s02 uint64
	for j := uint(0); j < 16; j++ {
		pc := j&1 + j>>1&1 + j>>2&1 + j>>3&1
		if pc == 0 || pc == 2 {
			s02 |= 1 << j
		}
	}
	f := tt.New(4, s02)
	if got := d.Size(f); got != 7 {
		t.Fatalf("C(S0,2) = %d, want 7", got)
	}
	// S0,2 is its own class representative (smallest truth table).
	if rep := npn.ClassOf4(f); rep != f {
		t.Errorf("S0,2 not canonical: rep %v", rep)
	}
}

// TestLookupInstantiate rebuilds every class representative and a large
// random sample of arbitrary functions from the database and verifies the
// constructed MIGs by exhaustive simulation.
func TestLookupInstantiate(t *testing.T) {
	d := load(t)
	check := func(f tt.TT) {
		t.Helper()
		e, tr, ok := d.Lookup(f)
		if !ok {
			t.Fatalf("class of %v missing", f)
		}
		m := mig.New(4)
		leaves := [4]mig.Lit{m.Input(0), m.Input(1), m.Input(2), m.Input(3)}
		m.AddOutput(e.Instantiate(m, leaves[:], tr))
		if got := m.Simulate()[0]; got != f {
			t.Fatalf("instantiated %v, want %v (entry %04x)", got, f, e.Rep.Bits)
		}
		if m.Size() > e.Size() {
			t.Fatalf("instantiation of %v used %d gates, entry has %d", f, m.Size(), e.Size())
		}
	}
	for _, e := range d.Entries() {
		check(e.Rep)
	}
	rng := rand.New(rand.NewSource(29))
	for i := 0; i < 2000; i++ {
		check(tt.New(4, uint64(rng.Intn(1<<16))))
	}
}

// TestBuildSmallArities exercises the expansion path for functions of
// fewer than four variables.
func TestBuildSmallArities(t *testing.T) {
	d := load(t)
	rng := rand.New(rand.NewSource(31))
	for n := 0; n <= 3; n++ {
		for i := 0; i < 20; i++ {
			f := tt.New(n, rng.Uint64()&tt.Mask(n))
			m := mig.New(n)
			leaves := make([]mig.Lit, n)
			for j := range leaves {
				leaves[j] = m.Input(j)
			}
			l, ok := d.Build(m, f, leaves)
			if !ok {
				t.Fatalf("n=%d: class of %v missing", n, f)
			}
			m.AddOutput(l)
			if got := m.Simulate()[0]; got != f {
				t.Fatalf("n=%d: built %v, want %v", n, got, f)
			}
		}
	}
}

// TestEntryRoundTrip serializes and re-parses the whole database.
func TestEntryRoundTrip(t *testing.T) {
	d := load(t)
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Len() != d.Len() {
		t.Fatalf("round trip lost entries: %d → %d", d.Len(), d2.Len())
	}
	for i, e := range d.Entries() {
		e2 := d2.Entries()[i]
		if e.Rep != e2.Rep || e.Out != e2.Out || len(e.Gates) != len(e2.Gates) ||
			e.Depth != e2.Depth || e.LeafDepth != e2.LeafDepth {
			t.Fatalf("entry %04x changed in round trip", e.Rep.Bits)
		}
	}
}

// TestReadRejectsCorruption: a tampered gate must fail verification.
func TestReadRejectsCorruption(t *testing.T) {
	good := "1669 k=1 out=11 gates=2.4.6" // claims MAJ for the hardest class
	if _, err := Read(strings.NewReader(good)); err == nil {
		t.Fatal("corrupted entry accepted")
	}
	bad := []string{
		"zzzz k=0 out=0",                       // bad hex
		"0000 k=1 out=0",                       // gate count mismatch
		"0000 k=0 out=99",                      // output out of range
		"0000 k=1 out=11 gates=2.4",            // malformed gate
		"0001 k=1 out=11 gates=2.4.6; extra=1", // unknown field
	}
	for _, line := range bad {
		if _, err := Read(strings.NewReader(line)); err == nil {
			t.Errorf("accepted malformed line %q", line)
		}
	}
}

// TestNewRejectsNonRepresentative guards the index invariant.
func TestNewRejectsNonRepresentative(t *testing.T) {
	e, err := FromMIG(tt.New(4, 0x0001), trivialEntryMIG())
	if err == nil {
		_ = e
		t.Skip("constructed entry unexpectedly valid")
	}
}

func trivialEntryMIG() *mig.MIG {
	m := mig.New(4)
	m.AddOutput(mig.Const0)
	return m
}

// TestTheorem2Constructive checks the paper's size bound by construction:
// SynthesizeUpper must stay within C(n) ≤ 10·(2^(n−4)−1)+7 and compute
// the right function, for n = 4, 5, 6.
func TestTheorem2Constructive(t *testing.T) {
	d := load(t)
	rng := rand.New(rand.NewSource(37))
	for n := 4; n <= 6; n++ {
		for i := 0; i < 30; i++ {
			f := tt.New(n, rng.Uint64()&tt.Mask(n))
			m, err := d.SynthesizeUpper(f)
			if err != nil {
				t.Fatal(err)
			}
			if got := m.Simulate()[0]; got != f {
				t.Fatalf("n=%d: synthesized %v, want %v", n, got, f)
			}
			if m.Size() > Bound(n) {
				t.Errorf("n=%d: size %d exceeds Theorem 2 bound %d", n, m.Size(), Bound(n))
			}
		}
	}
}

// TestDepthMetadata sanity-checks the derived Depth/LeafDepth fields.
func TestDepthMetadata(t *testing.T) {
	d := load(t)
	for _, e := range d.Entries() {
		if e.Size() == 0 {
			if e.Depth != 0 {
				t.Errorf("%04x: trivial entry with depth %d", e.Rep.Bits, e.Depth)
			}
			continue
		}
		if e.Depth < 1 || e.Depth > e.Size() {
			t.Errorf("%04x: depth %d outside [1, %d]", e.Rep.Bits, e.Depth, e.Size())
		}
		for i, ld := range e.LeafDepth[:e.K()] {
			if ld > e.Depth {
				t.Errorf("%04x: leaf %d depth %d exceeds total %d", e.Rep.Bits, i, ld, e.Depth)
			}
			if e.Rep.DependsOn(i) && ld < 0 {
				t.Errorf("%04x: support variable %d unreachable", e.Rep.Bits, i)
			}
		}
	}
}
