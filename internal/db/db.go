package db

import (
	"bufio"
	"context"
	"embed"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mighash/internal/exact"
	"mighash/internal/mig"
	"mighash/internal/npn"
	"mighash/internal/tt"
)

//go:embed data/npn4.txt
var embedded embed.FS

// DB is the functional-hashing database: minimum MIGs for all NPN classes
// of 4-variable functions, indexed by class representative.
type DB struct {
	entries []Entry
	byRep   map[uint16]int

	// Alternative-candidate derivation state (see EnsureAlts). Load()
	// shares one DB per process, so the menus are derived exactly once.
	altsOnce sync.Once
	altCount atomic.Int64
}

// Entries returns the entries ordered by representative truth table.
func (d *DB) Entries() []Entry { return d.entries }

// Len returns the number of classes in the database (222 when complete).
func (d *DB) Len() int { return len(d.entries) }

// Lookup returns the database entry for the NPN class of f together with
// the transform t satisfying npn.Apply(t, entry.Rep) = f, so that
// entry.Instantiate(m, leaves, t) builds f. f must have exactly 4
// variables (expand smaller functions with tt.Expand first).
func (d *DB) Lookup(f tt.TT) (*Entry, npn.Transform, bool) {
	rep, t := npn.Canonize(f)
	i, ok := d.byRep[uint16(rep.Bits)]
	if !ok {
		return nil, npn.Transform{}, false
	}
	return &d.entries[i], t, true
}

// Build instantiates a minimum MIG computing f (any function of up to 4
// variables) inside m over the given leaf signals. Missing leaves are
// padded with constant 0; they can only be selected by the transform for
// variables outside the support of f. It returns false if the class is
// missing from the database.
func (d *DB) Build(m *mig.MIG, f tt.TT, leaves []mig.Lit) (mig.Lit, bool) {
	if f.N > 4 {
		panic(fmt.Sprintf("db: Build requires at most 4 variables, got %d", f.N))
	}
	if len(leaves) < f.N {
		panic(fmt.Sprintf("db: %d leaves for a %d-variable function", len(leaves), f.N))
	}
	e, t, ok := d.Lookup(f.Expand(4))
	if !ok {
		return 0, false
	}
	var padded [4]mig.Lit
	copy(padded[:], leaves)
	return e.Instantiate(m, padded[:], t), true
}

// Size returns the minimum MIG size C(f) recorded for f's class, or -1 if
// the class is missing.
func (d *DB) Size(f tt.TT) int {
	e, _, ok := d.Lookup(f)
	if !ok {
		return -1
	}
	return e.Size()
}

// New builds a DB from entries, rejecting duplicates and non-representative
// keys.
func New(entries []Entry) (*DB, error) {
	d := &DB{byRep: make(map[uint16]int, len(entries))}
	for _, e := range entries {
		if rep := npn.ClassOf4(e.Rep); rep != e.Rep {
			return nil, fmt.Errorf("db: %04x is not a class representative (class %04x)", e.Rep.Bits, rep.Bits)
		}
		if _, dup := d.byRep[uint16(e.Rep.Bits)]; dup {
			return nil, fmt.Errorf("db: duplicate entry for %04x", e.Rep.Bits)
		}
		d.byRep[uint16(e.Rep.Bits)] = len(d.entries)
		d.entries = append(d.entries, e)
	}
	sort.Slice(d.entries, func(i, j int) bool { return d.entries[i].Rep.Bits < d.entries[j].Rep.Bits })
	for i := range d.entries {
		d.byRep[uint16(d.entries[i].Rep.Bits)] = i
	}
	return d, nil
}

// Write renders the database as the text artifact format.
func (d *DB) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# mighash npn4 minimum-MIG database: %d classes\n", len(d.entries))
	fmt.Fprintf(bw, "# line: <rep-hex4> k=<gates> out=<lit> gates=<a.b.c;...> us=<synthesis-µs>\n")
	fmt.Fprintf(bw, "# literals are id*2+complement; ids: 0=const0, 1..4=x1..x4, 5+l=gate l\n")
	for i := range d.entries {
		fmt.Fprintln(bw, d.entries[i].format())
	}
	return bw.Flush()
}

// Read parses and verifies a database artifact.
func Read(r io.Reader) (*DB, error) {
	var entries []Entry
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		e, err := parseEntry(line)
		if err != nil {
			return nil, err
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return New(entries)
}

var (
	loadOnce sync.Once
	loaded   *DB
	loadErr  error
)

// Load returns the embedded database, verified by simulation. The result
// is cached; concurrent callers share one instance.
func Load() (*DB, error) {
	loadOnce.Do(func() {
		f, err := embedded.Open("data/npn4.txt")
		if err != nil {
			loadErr = err
			return
		}
		defer f.Close()
		d, err := Read(f)
		if err != nil {
			loadErr = err
			return
		}
		if d.Len() != npn.NumClasses4() {
			loadErr = fmt.Errorf("db: embedded artifact has %d classes, want %d (regenerate with cmd/migdb)",
				d.Len(), npn.NumClasses4())
			return
		}
		loaded = d
	})
	return loaded, loadErr
}

// MustLoad is Load for contexts where a missing artifact is a programming
// error (examples, benchmarks).
func MustLoad() *DB {
	d, err := Load()
	if err != nil {
		panic(err)
	}
	return d
}

// Generate synthesizes the full database with the exact-synthesis engine:
// one minimum MIG per 4-variable NPN class (Sec. III of the paper, run as
// in Sec. V-A). Generation runs in two phases: first every class in
// parallel across `workers` goroutines (NumCPU when 0) with a per-class
// budget (opt.Timeout, defaulting to 60 s when unset), then the stragglers
// — in practice only the hardest one or two UNSAT proofs — sequentially
// with the whole machine behind exact.DecideSplit, so the tail does not
// serialize onto a single core. progress, when non-nil, is called after
// every class of either phase.
func Generate(opt exact.Options, workers int, progress func(done, total int, e Entry)) (*DB, error) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	phase1 := opt
	if phase1.Timeout == 0 {
		phase1.Timeout = time.Minute
	}
	reps := npn.Classes(4)
	type result struct {
		e   Entry
		err error
	}
	results := make([]result, len(reps))
	var (
		wg   sync.WaitGroup
		next int
		mu   sync.Mutex
		done int
	)
	report := func(i int) {
		if progress != nil {
			mu.Lock()
			done++
			progress(done, len(reps), results[i].e)
			mu.Unlock()
		}
	}
	solve := func(i int, o exact.Options, splitWorkers int) {
		start := time.Now()
		var (
			m   *mig.MIG
			err error
		)
		if splitWorkers > 1 {
			m, err = exact.MinimumParallel(context.Background(), reps[i], o, splitWorkers, 5)
		} else {
			m, err = exact.Minimum(context.Background(), reps[i], o)
		}
		if err != nil {
			results[i] = result{err: fmt.Errorf("class %04x: %w", reps[i].Bits, err)}
			return
		}
		e, err := FromMIG(reps[i], m)
		e.GenTime = time.Since(start)
		results[i] = result{e: e, err: err}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(reps) {
					return
				}
				solve(i, phase1, 1)
				if results[i].err == nil {
					report(i)
				}
			}
		}()
	}
	wg.Wait()
	// Phase 2: retry budget casualties with cube-and-conquer on all cores.
	for i := range results {
		if results[i].err == nil {
			continue
		}
		solve(i, opt, workers)
		report(i)
	}
	entries := make([]Entry, 0, len(reps))
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		entries = append(entries, r.e)
	}
	return New(entries)
}
