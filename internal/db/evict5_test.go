package db

import (
	"testing"

	"mighash/internal/tt"
)

// fakeEntry is a structurally trivial entry for eviction tests: the
// clock machinery only touches the key space, never the MIG structure.
func fakeEntry(key uint32) *Entry {
	return &Entry{Rep: tt.New(5, uint64(key))}
}

// TestOnDemandLimitEvicts: at the bound the store stays at the bound,
// counts its evictions, and keeps working.
func TestOnDemandLimitEvicts(t *testing.T) {
	s := NewOnDemand(OnDemandOptions{Limit: 4})
	if s.Limit() != 4 {
		t.Fatalf("Limit() = %d, want 4", s.Limit())
	}
	for key := uint32(1); key <= 10; key++ {
		s.add(fakeEntry(key))
	}
	if s.Len() != 4 {
		t.Fatalf("store holds %d classes, want 4", s.Len())
	}
	if s.Evictions() != 6 {
		t.Fatalf("Evictions() = %d, want 6", s.Evictions())
	}
	// The ring and the map must stay in sync: every ring key resolves.
	s.mu.RLock()
	if len(s.ring) != len(s.entries) {
		t.Fatalf("ring has %d slots for %d entries", len(s.ring), len(s.entries))
	}
	for _, k := range s.ring {
		if s.entries[k] == nil {
			t.Fatalf("ring key %d missing from the map", k)
		}
	}
	s.mu.RUnlock()
}

// TestOnDemandSecondChance: a referenced slot survives one sweep — the
// clock pardons it and takes the next un-referenced victim.
func TestOnDemandSecondChance(t *testing.T) {
	s := NewOnDemand(OnDemandOptions{Limit: 3})
	for key := uint32(1); key <= 3; key++ {
		s.add(fakeEntry(key))
	}
	// Mark key 1 (the hand's first stop) recently used.
	s.mu.RLock()
	s.entries[1].refTouch()
	s.mu.RUnlock()
	s.add(fakeEntry(4)) // must evict key 2, not the referenced key 1
	s.mu.RLock()
	_, kept := s.entries[1]
	_, victim := s.entries[2]
	s.mu.RUnlock()
	if !kept {
		t.Fatal("referenced class was evicted despite its second chance")
	}
	if victim {
		t.Fatal("un-referenced class survived a full store")
	}
}

// TestOnDemandSetLimitShrinks: lowering the limit evicts immediately;
// raising it (or removing it) stops evicting.
func TestOnDemandSetLimitShrinks(t *testing.T) {
	s := NewOnDemand(OnDemandOptions{})
	for key := uint32(1); key <= 8; key++ {
		s.add(fakeEntry(key))
	}
	s.SetLimit(3)
	if s.Len() != 3 {
		t.Fatalf("store holds %d classes after SetLimit(3)", s.Len())
	}
	if s.Evictions() != 5 {
		t.Fatalf("Evictions() = %d, want 5", s.Evictions())
	}
	s.SetLimit(0)
	for key := uint32(100); key < 110; key++ {
		s.add(fakeEntry(key))
	}
	if s.Len() != 13 {
		t.Fatalf("unbounded store holds %d classes, want 13", s.Len())
	}
	if s.Evictions() != 5 {
		t.Fatalf("unbounded store evicted (%d total)", s.Evictions())
	}
}
