// Package db provides the functional-hashing databases: one precomputed
// minimum MIG for each of the 222 NPN classes of 4-variable functions
// (Sec. IV of the paper), an on-demand learned store for 5-input classes
// (OnDemand — the width the paper's Sec. IV discussion points to but
// cannot precompute: ~616k classes), plus the concurrency-safe cut-cache
// the optimization engine threads through every rewriting pass.
//
// The embedded artifact data/npn4.txt is generated offline by cmd/migdb
// through exact synthesis (internal/exact) and verified by simulation on
// load; Load memoizes it process-wide. Lookup canonicalizes a 4-variable
// function to its class representative (internal/npn) and returns the
// class entry together with the transform that rewires the stored optimum
// onto the caller's leaves — Entry.Instantiate performs that rewiring into
// a target graph. Bound is the Theorem 2 size bound 10·(2^(n−4)−1)+7.
//
// Cache memoizes the (canonicalize, lookup) pair behind 64 cache-line-
// padded shards, turning the hot path of functional hashing into a single
// read-locked map hit for repeated cut functions; hit/miss counters feed
// the engine's RewriteStats and the HTTP service's metrics.
//
// OnDemand (exact5.go) is the learned 5-input database: a miss
// semi-canonicalizes the cut function (npn.Canonize5), synthesizes the
// class's minimum MIG with internal/exact under a per-class budget
// (conflict-bounded by default, so the learned content is deterministic
// at any worker count), memoizes the entry, and negative-caches classes
// that blow the budget so hopeless ladders run once. An in-flight gate
// deduplicates concurrent first contacts per class, and a caller's
// context cancels its ladder without poisoning the class.
//
// Both structures outlive the process: WriteSnapshot/ReadSnapshot
// (persist.go) serialize them as one versioned, checksummed binary
// stream of width-tagged varint records (format v2; v1 cache-only
// snapshots are still read), and SaveSnapshotFile/LoadSnapshotFile wrap
// that in an atomic write-temp-then-rename file protocol. Snapshots hold
// no pointers — a cache record names its NPN class by representative and
// Restore rebinds it through the loading process's DB, verifying the
// stored transform against the cut function; a learned-class record
// carries its structure and is re-verified by simulation and
// semi-canonicity — so a snapshot is portable across processes and
// database rebuilds, and corrupt or version-skewed input fails with
// ErrSnapshot (degrading consumers to a cold cache) rather than
// installing anything. SetLimit (evict.go) bounds the cache footprint
// with a per-shard second-chance clock sweep whose reference bits are
// set by atomic ORs on the read-locked hit path.
//
// Concurrency contract: a *DB is immutable after Load/Read and safe to
// share everywhere. A *Cache and an *OnDemand are safe for unlimited
// concurrent use and may be shared across passes, pipeline runs, batch
// workers and HTTP requests
// — but it stores *Entry pointers of the DB it was populated through, so
// never reuse a Cache across different DB instances (snapshots cross that
// boundary safely precisely because they rebind on load). Snapshot may run
// concurrently with lookups; it captures a point-in-time view.
package db
