package db

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"path/filepath"
	"testing"

	"mighash/internal/npn"
	"mighash/internal/tt"
)

// learnTwo returns a store that has learned two classes and
// negative-cached one.
func learnTwo(t *testing.T) *OnDemand {
	t.Helper()
	s := NewOnDemand(OnDemandOptions{})
	for _, f := range []tt.TT{and5(), majority5()} {
		if _, _, ok := s.Lookup(context.Background(), f); !ok {
			t.Fatalf("class of %v blew the default budget", f)
		}
	}
	hard := NewOnDemand(OnDemandOptions{MaxConflicts: 1})
	// Learn the negative marker through a separate 1-conflict store so
	// the main store's entries stay real, then transplant the key.
	f := tt.New(5, 0x9D2B64E817A3C55F)
	if _, _, ok := hard.Lookup(context.Background(), f); ok {
		t.Fatal("1-conflict budget unexpectedly succeeded")
	}
	rep, _ := npn.Canonize5(f)
	s.addNegative(uint32(rep.Bits))
	return s
}

// TestSnapshotRoundTripsStore: learned and negative 5-input classes
// survive SaveSnapshotFile/LoadSnapshotFile, and a warm store
// re-synthesizes nothing.
func TestSnapshotRoundTripsStore(t *testing.T) {
	s := learnTwo(t)
	c := NewCache()
	populate(t, load(t), c, 500, 42) // some 4-input cache records alongside
	path := filepath.Join(t.TempDir(), "npn.cache")
	wrote, err := SaveSnapshotFile(path, c, s)
	if err != nil {
		t.Fatal(err)
	}
	if want := c.Len() + s.Len() + s.NegativeLen(); wrote != want {
		t.Fatalf("wrote %d records, want %d", wrote, want)
	}

	c2, s2 := NewCache(), NewOnDemand(OnDemandOptions{})
	got, err := LoadSnapshotFile(path, load(t), c2, s2)
	if err != nil {
		t.Fatal(err)
	}
	if got != wrote {
		t.Fatalf("restored %d records, want %d", got, wrote)
	}
	if s2.Len() != s.Len() || s2.NegativeLen() != s.NegativeLen() {
		t.Fatalf("store restored %d/%d classes, want %d/%d",
			s2.Len(), s2.NegativeLen(), s.Len(), s.NegativeLen())
	}
	// Warm lookups must hit without synthesizing, for positive and
	// negative classes alike.
	for _, f := range []tt.TT{and5().Not(), majority5(), tt.New(5, 0x9D2B64E817A3C55F)} {
		e, tr, ok := s2.Lookup(context.Background(), f)
		if ok {
			if got := tr.Apply(e.Rep); got != f {
				t.Fatalf("restored entry instantiates %v, want %v", got, f)
			}
		}
	}
	if s2.Synths() != 0 {
		t.Fatalf("warm store ran %d ladders, want 0", s2.Synths())
	}
	// And the snapshot is deterministic.
	var a, b bytes.Buffer
	if _, err := WriteSnapshot(&a, c, s); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteSnapshot(&b, c2, s2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("snapshot of a restored state differs from the original")
	}
}

// TestRestoreSkipsStoreRecordsWithoutStore: a combined snapshot loaded
// through the cache-only API validates and skips the 5-input records.
func TestRestoreSkipsStoreRecordsWithoutStore(t *testing.T) {
	s := learnTwo(t)
	var buf bytes.Buffer
	if _, err := WriteSnapshot(&buf, nil, s); err != nil {
		t.Fatal(err)
	}
	c := NewCache()
	n, err := c.Restore(bytes.NewReader(buf.Bytes()), load(t))
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 || c.Len() != 0 {
		t.Fatalf("cache-only restore installed %d records", n)
	}
}

// TestRestoreRejectsTamperedClass5: flipping a bit inside a learned
// class's structure must fail the whole restore (simulation check),
// leaving cache and store cold.
func TestRestoreRejectsTamperedClass5(t *testing.T) {
	s := learnTwo(t)
	var buf bytes.Buffer
	if _, err := WriteSnapshot(&buf, nil, s); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Flip one payload bit past the header and re-seal the checksum so
	// only the semantic verification can catch it.
	raw[len(raw)/2] ^= 0x04
	binary.LittleEndian.PutUint32(raw[len(raw)-4:], crc32.ChecksumIEEE(raw[:len(raw)-4]))
	s2 := NewOnDemand(OnDemandOptions{})
	if _, err := ReadSnapshot(bytes.NewReader(raw), nil, nil, s2); err == nil {
		t.Fatal("tampered snapshot restored cleanly")
	} else if !errors.Is(err, ErrSnapshot) {
		t.Fatalf("error %v does not wrap ErrSnapshot", err)
	}
	if s2.Len() != 0 || s2.NegativeLen() != 0 {
		t.Fatalf("tampered restore left %d/%d classes installed", s2.Len(), s2.NegativeLen())
	}
}

// TestRestoreReadsVersion1: pre-upgrade snapshots (no kind tags) still
// warm-start the 4-input cache.
func TestRestoreReadsVersion1(t *testing.T) {
	d := load(t)
	c := NewCache()
	populate(t, d, c, 500, 43)
	// Hand-build a v1 snapshot from the live cache contents.
	var payload bytes.Buffer
	type rec struct {
		key uint16
		v   cacheVal
	}
	var recs []rec
	for i := range c.shards {
		sh := &c.shards[i]
		for k, v := range sh.m {
			if v.ok {
				recs = append(recs, rec{k, v})
			}
		}
	}
	payload.WriteString(snapshotMagic)
	payload.WriteByte(1)
	var tmp [binary.MaxVarintLen64]byte
	wu := func(v uint64) { payload.Write(tmp[:binary.PutUvarint(tmp[:], v)]) }
	wu(uint64(len(recs)))
	for _, r := range recs {
		wu(uint64(r.key))
		payload.WriteByte(packFlags(r.v.t, true))
		payload.WriteByte(packPerm(r.v.t))
		wu(uint64(r.v.entry.Rep.Bits))
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc32.ChecksumIEEE(payload.Bytes()))
	payload.Write(sum[:])

	c2 := NewCache()
	n, err := c2.Restore(bytes.NewReader(payload.Bytes()), d)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(recs) || c2.Len() != len(recs) {
		t.Fatalf("v1 restore installed %d records, want %d", n, len(recs))
	}
}
