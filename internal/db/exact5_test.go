package db

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"mighash/internal/mig"
	"mighash/internal/npn"
	"mighash/internal/tt"
)

func and5() tt.TT {
	f := tt.Var(5, 0)
	for i := 1; i < 5; i++ {
		f = f.And(tt.Var(5, i))
	}
	return f
}

func majority5() tt.TT {
	var b uint64
	for x := uint(0); x < 32; x++ {
		ones := 0
		for j := uint(0); j < 5; j++ {
			ones += int(x >> j & 1)
		}
		if ones >= 3 {
			b |= 1 << x
		}
	}
	return tt.New(5, b)
}

// TestOnDemandLearnsAndMemoizes drives the full learn-once path: a first
// lookup synthesizes, every NPN-equivalent lookup afterwards is a memory
// hit, and the instantiated entry really computes the asked-for function.
func TestOnDemandLearnsAndMemoizes(t *testing.T) {
	s := NewOnDemand(OnDemandOptions{})
	rng := rand.New(rand.NewSource(5))
	all5 := npn.All(5)
	for _, f := range []tt.TT{and5(), majority5()} {
		before := s.Synths()
		e, tr, ok := s.Lookup(context.Background(), f)
		if !ok {
			t.Fatalf("class of %v blew the default budget", f)
		}
		if s.Synths() != before+1 {
			t.Fatalf("first lookup ran %d ladders, want 1", s.Synths()-before)
		}
		if got := tr.Apply(e.Rep); got != f {
			t.Fatalf("Apply(t, rep) = %v, want %v", got, f)
		}
		m := mig.New(5)
		leaves := []mig.Lit{m.Input(0), m.Input(1), m.Input(2), m.Input(3), m.Input(4)}
		m.AddOutput(e.Instantiate(m, leaves, tr))
		if got := m.Simulate()[0]; got != f {
			t.Fatalf("instantiated %v, want %v", got, f)
		}
		// Every class member must be a hit on the same entry.
		for i := 0; i < 16; i++ {
			g := all5[rng.Intn(len(all5))].Apply(f)
			e2, tr2, ok := s.Lookup(context.Background(), g)
			if !ok || e2 != e {
				t.Fatalf("variant %v missed the learned class", g)
			}
			if got := tr2.Apply(e2.Rep); got != g {
				t.Fatalf("variant transform broken: %v != %v", got, g)
			}
		}
		if s.Synths() != before+1 {
			t.Fatalf("variants re-synthesized (%d ladders)", s.Synths()-before)
		}
	}
	if s.Len() != 2 {
		t.Fatalf("learned %d classes, want 2", s.Len())
	}
}

// TestOnDemandOptionsNormalized: a non-positive gate cap must select
// the default, not an empty ladder — an empty ladder would instantly
// negative-cache every class and persist the poison into snapshots.
func TestOnDemandOptionsNormalized(t *testing.T) {
	for _, gates := range []int{0, -1} {
		s := NewOnDemand(OnDemandOptions{MaxGates: gates})
		if got := s.Options().MaxGates; got != 7 {
			t.Fatalf("MaxGates %d normalized to %d, want 7", gates, got)
		}
		if _, _, ok := s.Lookup(context.Background(), and5()); !ok {
			t.Fatalf("MaxGates %d: trivial class failed to synthesize", gates)
		}
	}
	if s := NewOnDemand(OnDemandOptions{MaxConflicts: -1}); s.Options().MaxConflicts != 0 {
		t.Fatal("negative MaxConflicts did not normalize to unlimited")
	}
}

// TestOnDemandNegativeCache: a class that blows its (tiny) budget is
// negative-cached and never retried.
func TestOnDemandNegativeCache(t *testing.T) {
	s := NewOnDemand(OnDemandOptions{MaxConflicts: 1, MaxGates: 7})
	f := tt.New(5, 0x9D2B64E817A3C55F) // dense random function, far past 1 conflict
	if _, _, ok := s.Lookup(context.Background(), f); ok {
		t.Fatal("expected the 1-conflict budget to fail")
	}
	if s.Failures() != 1 || s.NegativeLen() != 1 {
		t.Fatalf("failures=%d negative=%d, want 1/1", s.Failures(), s.NegativeLen())
	}
	synths := s.Synths()
	if _, _, ok := s.Lookup(context.Background(), f.Not()); ok {
		t.Fatal("NPN variant of a negative class must miss")
	}
	if s.Synths() != synths {
		t.Fatal("negative-cached class was re-synthesized")
	}
}

// TestOnDemandCancellationNotCached: a lookup abandoned by its context
// must not poison the class — the next caller retries and can succeed.
func TestOnDemandCancellationNotCached(t *testing.T) {
	s := NewOnDemand(OnDemandOptions{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	f := majority5()
	if _, _, ok := s.Lookup(ctx, f); ok {
		t.Fatal("lookup under a cancelled context returned ok")
	}
	if s.NegativeLen() != 0 {
		t.Fatal("cancellation negative-cached the class")
	}
	if _, _, ok := s.Lookup(context.Background(), f); !ok {
		t.Fatal("retry after cancellation failed")
	}
}

// TestOnDemandConcurrent hammers one store from many goroutines with NPN
// variants of a few functions: every class must be synthesized exactly
// once and all callers must agree on the learned entries.
func TestOnDemandConcurrent(t *testing.T) {
	s := NewOnDemand(OnDemandOptions{})
	fns := []tt.TT{and5(), majority5(), tt.Var(5, 2), tt.Const1(5)}
	all5 := npn.All(5)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		rng := rand.New(rand.NewSource(int64(w)))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				f := fns[rng.Intn(len(fns))]
				g := all5[rng.Intn(len(all5))].Apply(f)
				e, tr, ok := s.Lookup(context.Background(), g)
				if !ok {
					t.Errorf("class of %v blew the budget", g)
					return
				}
				if got := tr.Apply(e.Rep); got != g {
					t.Errorf("Apply(t, rep) = %v, want %v", got, g)
					return
				}
			}
		}()
	}
	wg.Wait()
	if s.Synths() != uint64(s.Len()) || s.Len() > len(fns) {
		t.Fatalf("%d ladders for %d classes", s.Synths(), s.Len())
	}
}
