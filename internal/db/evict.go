package db

import "sync/atomic"

// Eviction keeps the cache's in-memory and on-disk footprint fixed when
// the key cardinality outgrows what a process wants to hold (today the
// 4-input function space caps a cache at 64Ki entries; >4-input classes
// will not be so polite). Each shard runs an independent second-chance
// ("clock") policy: keys live in a ring in insertion order, every cache
// hit sets the key's reference bit, and when a full shard needs room the
// clock hand sweeps the ring, clearing reference bits until it finds a
// key that has not been hit since the hand last passed — that key is
// evicted and its ring slot reused. Hot keys therefore survive arbitrary
// streams of one-shot keys, at O(1) amortized cost per insertion.
//
// The reference bits live in a per-shard bitmap indexed by key>>6 (the
// shard index is key&63, so the high 10 bits identify a key within its
// shard). Hits set bits with an atomic OR under the shard's read lock;
// the sweep reads and clears them under the write lock, which excludes
// all readers, so the sweep needs no atomics.

// SetLimit bounds the number of entries the cache retains, dividing the
// budget evenly across shards (rounded up, so the effective bound is the
// next multiple of the shard count). When the cache already holds more
// than the new bound, victims are evicted immediately by the same
// second-chance sweep. n <= 0 removes the bound (the default).
//
// SetLimit may be called at any time, including while other goroutines
// use the cache, but concurrent calls to SetLimit itself are not useful
// — last writer wins per shard.
func (c *Cache) SetLimit(n int) {
	per := 0
	if n > 0 {
		per = (n + cacheShardCount - 1) / cacheShardCount
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.limit = per
		if per > 0 {
			for len(s.ring) > per {
				s.evictOne()
			}
		}
		s.mu.Unlock()
	}
}

// insert adds or overwrites key under the shard's write lock, evicting a
// victim first when the shard is at its bound. Callers must hold s.mu.
func (s *cacheShard) insert(key uint16, v cacheVal) {
	if _, dup := s.m[key]; dup {
		// Two goroutines raced on the same miss; the ring already holds
		// the key exactly once.
		s.m[key] = v
		return
	}
	if s.limit > 0 && len(s.ring) >= s.limit {
		s.evictReuse(key)
	} else {
		s.ring = append(s.ring, key)
	}
	s.m[key] = v
	s.refClear(key)
}

// evictReuse evicts the first key the clock hand finds without a second
// chance and installs newKey in its ring slot.
func (s *cacheShard) evictReuse(newKey uint16) {
	for {
		if s.hand >= len(s.ring) {
			s.hand = 0
		}
		k := s.ring[s.hand]
		if s.refTestAndClear(k) {
			s.hand++ // second chance: spare it this sweep
			continue
		}
		delete(s.m, k)
		s.ring[s.hand] = newKey
		s.hand++
		return
	}
}

// evictOne evicts one victim and shrinks the ring (SetLimit's path; the
// steady state reuses slots instead).
func (s *cacheShard) evictOne() {
	for {
		if s.hand >= len(s.ring) {
			s.hand = 0
		}
		k := s.ring[s.hand]
		if s.refTestAndClear(k) {
			s.hand++
			continue
		}
		delete(s.m, k)
		s.ring[s.hand] = s.ring[len(s.ring)-1]
		s.ring = s.ring[:len(s.ring)-1]
		return
	}
}

// refIndex maps a key of this shard onto its reference-bit index.
func refIndex(key uint16) uint { return uint(key) >> 6 }

// refTouch sets key's reference bit. Called under RLock, so it must be
// atomic with respect to other readers touching the same word.
func (s *cacheShard) refTouch(key uint16) {
	i := refIndex(key)
	atomic.OrUint64(&s.ref[i/64], 1<<(i%64))
}

// refTestAndClear reports and clears key's reference bit. Called under
// the write lock only, which excludes every refTouch.
func (s *cacheShard) refTestAndClear(key uint16) bool {
	i := refIndex(key)
	w, b := i/64, uint64(1)<<(i%64)
	set := s.ref[w]&b != 0
	s.ref[w] &^= b
	return set
}

// refClear drops key's reference bit (fresh insertions start without a
// second chance). Called under the write lock only.
func (s *cacheShard) refClear(key uint16) {
	i := refIndex(key)
	s.ref[i/64] &^= 1 << (i % 64)
}
