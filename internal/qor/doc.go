// Package qor is the durable quality-of-results trend store and
// regression gate: the repository's headline numbers (gates, depth,
// runtime per circuit×script) as an append-only, versioned record
// stream, with the machinery to append, merge, render and gate them.
//
// The paper's entire claim is a QoR trajectory; this package makes the
// repository's own trajectory durable and enforceable. A Record is one
// circuit optimized by one script: the metric triple, the pass/cache/
// synthesis breakdown explaining it, and Provenance (git SHA, timestamp,
// host os/arch, GOMAXPROCS from the producing build via
// runtime/debug.ReadBuildInfo) pinning where the number came from.
// Records with one Run ID form a run; a history is any concatenation of
// runs.
//
// Storage is one JSON record per line (HistoryFile inside a history
// directory). Append-only JSONL is deliberately boring: appends are
// atomic at line granularity, merges are concatenation + Merge dedupe
// (first record per (run, circuit, script) wins), and Read skips —
// counting, never failing on — malformed lines and unknown schema
// versions, so a torn tail from a crashed writer or records from a newer
// build degrade to partial history instead of an unreadable store.
//
// Compare is the regression gate: it pairs a candidate run against a
// baseline by (circuit, script) and issues per-circuit and
// suite-aggregate verdicts. Gates and depth compare exactly — the
// optimizer is deterministic, any growth is a real change — while
// runtime is noise-aware: a regression must exceed both a relative
// tolerance (GateOptions.RuntimeTolerance) and an absolute floor
// (GateOptions.RuntimeFloor). Suite aggregates (total gates, max depth,
// total runtime) cover only circuits present on both sides, and
// membership changes are reported separately so a shrinking suite cannot
// masquerade as an improvement. cmd/migtrend wires this into the CLI
// (-history/-gate) and the CI wires that into a hard gate with history
// persisted across runs via an artifact chain.
//
// Concurrency: records and reports are plain values; AppendFile relies
// on O_APPEND for cross-process safety of whole-line appends. The
// package has no internal locking and no mutable package state.
package qor
