package qor

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"time"

	"mighash/internal/engine"
)

// SchemaVersion is the current record schema. Readers accept any record
// whose schema_version they know how to interpret (currently only 1) and
// skip-and-report unknown versions, so a store written by a newer build
// degrades to partial history instead of poisoning the whole file.
const SchemaVersion = 1

// Record is one quality-of-results measurement: one circuit optimized by
// one script, with the metrics the whole repository exists to move
// (gates, depth, runtime), the pass/cache/synthesis breakdown explaining
// them, and the provenance pinning where the number came from. Records
// are the unit of the append-only trend store and of regression gating.
type Record struct {
	Schema int `json:"schema_version"`
	// Run groups the records of one producing invocation (one migpipe
	// batch): every record of a run shares the ID, so readers can rebuild
	// per-run suites from a flat record stream.
	Run string `json:"run"`
	// Circuit and Script key the record: regression comparison pairs
	// records by (circuit, script) across runs.
	Circuit string `json:"circuit"`
	Script  string `json:"script"`

	// The quality-of-results triple. Gates and Depth are exact (the
	// optimizer is deterministic, so any drift is a real change); Runtime
	// is noisy and only gated with a relative tolerance.
	Gates   int           `json:"gates"`
	Depth   int           `json:"depth"`
	Runtime time.Duration `json:"runtime_ns"`

	// Where the result came from: script rounds, per-pass wall clock,
	// cut-cache traffic, 5-input synthesis and extraction counters.
	Iterations  int        `json:"iterations,omitempty"`
	Passes      []PassTime `json:"passes,omitempty"`
	CacheHits   int        `json:"cache_hits,omitempty"`
	CacheMisses int        `json:"cache_misses,omitempty"`
	// Exact5Synths/Exact5Timeouts are run-level counters (the on-demand
	// store is shared by the whole batch); they ride on every record of
	// the run unchanged.
	Exact5Synths   int `json:"exact5_synths,omitempty"`
	Exact5Timeouts int `json:"exact5_timeouts,omitempty"`
	ExtractChoices int `json:"extract_choices,omitempty"`
	ExtractSaved   int `json:"extract_saved,omitempty"`

	Provenance Provenance `json:"provenance"`
}

// PassTime is one pass of the record's breakdown: enough to answer
// "which pass got slower" without storing full PassStats.
type PassTime struct {
	Name    string        `json:"name"`
	Elapsed time.Duration `json:"elapsed_ns"`
}

// Provenance pins a record to the build and machine that produced it, so
// a regression verdict can distinguish "the code got worse" from "the
// runner changed". Fields are best-effort: a build outside a module
// (go run on a detached file) leaves the VCS fields empty.
type Provenance struct {
	// GitSHA is the vcs.revision of the producing binary's build, and
	// Dirty whether the working tree had local modifications.
	GitSHA string `json:"git_sha,omitempty"`
	Dirty  bool   `json:"dirty,omitempty"`
	// Time is when the record was produced (not the commit time).
	Time      time.Time `json:"time"`
	GoVersion string    `json:"go_version,omitempty"`
	OS        string    `json:"os"`
	Arch      string    `json:"arch"`
	// GOMAXPROCS is the parallelism the producing process ran with — the
	// single biggest legitimate source of runtime variance between runs.
	GOMAXPROCS int `json:"gomaxprocs"`
}

// Describe renders the provenance as one human line for table footers.
func (p Provenance) Describe() string {
	sha := p.GitSHA
	if len(sha) > 12 {
		sha = sha[:12]
	}
	if sha == "" {
		sha = "unknown-rev"
	}
	if p.Dirty {
		sha += "+dirty"
	}
	return fmt.Sprintf("%s %s/%s gomaxprocs=%d %s",
		sha, p.OS, p.Arch, p.GOMAXPROCS, p.Time.Format(time.RFC3339))
}

// CollectProvenance captures the producing process's provenance: the git
// revision baked into the build by the Go toolchain (debug.ReadBuildInfo;
// empty outside a VCS build), the host os/arch, GOMAXPROCS and now.
func CollectProvenance() Provenance {
	p := Provenance{
		Time:       time.Now().UTC(),
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		p.GoVersion = info.GoVersion
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				p.GitSHA = s.Value
			case "vcs.modified":
				p.Dirty = s.Value == "true"
			}
		}
	}
	return p
}

// FromResult converts one engine result into a record. Failed jobs have
// no quality to record and return ok=false — a crashed run must not
// enter the trend store as a miraculous zero-gate circuit.
func FromResult(run, script string, r engine.Result, prov Provenance) (Record, bool) {
	if r.Err != nil {
		return Record{}, false
	}
	rec := Record{
		Schema:         SchemaVersion,
		Run:            run,
		Circuit:        r.Name,
		Script:         script,
		Gates:          r.Stats.SizeAfter,
		Depth:          r.Stats.DepthAfter,
		Runtime:        r.Stats.Elapsed,
		Iterations:     r.Stats.Iterations,
		CacheHits:      r.Stats.CacheHits,
		CacheMisses:    r.Stats.CacheMisses,
		ExtractChoices: r.Stats.Choices,
		ExtractSaved:   r.Stats.ExtractSaved,
		Provenance:     prov,
	}
	// Per-pass wall clock is summed per pass name across iterations: the
	// trend question is "which pass got slower", not a full trace replay.
	idx := map[string]int{}
	for _, ps := range r.Stats.Passes {
		i, ok := idx[ps.Name]
		if !ok {
			i = len(rec.Passes)
			idx[ps.Name] = i
			rec.Passes = append(rec.Passes, PassTime{Name: ps.Name})
		}
		rec.Passes[i].Elapsed += ps.Elapsed
	}
	return rec, true
}

// NewRunID derives a run identifier from provenance: short SHA plus a
// millisecond-resolution UTC timestamp — unique across CI runs and
// across back-to-back local invocations (a second-resolution stamp made
// two runs in the same second share an ID, so the later run's records
// were silently deduped away), stable within one producing process.
func NewRunID(p Provenance) string {
	sha := p.GitSHA
	if len(sha) > 8 {
		sha = sha[:8]
	}
	if sha == "" {
		sha = "local"
	}
	return fmt.Sprintf("%s-%s", p.Time.Format("20060102T150405.000Z"), sha)
}
