package qor

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// HistoryFile is the record store's file name inside a history
// directory: migtrend -history <dir> reads and appends <dir>/qor.jsonl.
const HistoryFile = "qor.jsonl"

// ReadStats reports what a read skipped: the durable store accretes
// lines from many builds, so a reader must survive records it does not
// understand (newer schema, truncated tail line from a crashed writer)
// without discarding the history it does.
type ReadStats struct {
	Records int // records decoded and returned
	Skipped int // lines dropped: malformed JSON or unknown schema
}

// Read decodes an append-only record stream: one JSON record per line.
// Malformed lines and unknown schema versions are counted in stats and
// skipped — an append-only store must tolerate a torn final line (a
// writer killed mid-append) and records from newer builds.
func Read(r io.Reader) ([]Record, ReadStats, error) {
	var (
		recs  []Record
		stats ReadStats
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil || rec.Schema != SchemaVersion || rec.Circuit == "" {
			stats.Skipped++
			continue
		}
		recs = append(recs, rec)
		stats.Records++
	}
	if err := sc.Err(); err != nil {
		return recs, stats, err
	}
	return recs, stats, nil
}

// ReadFile reads the store at path. A missing file is an empty history,
// not an error — the first run of a new gate has nothing to compare to.
func ReadFile(path string) ([]Record, ReadStats, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, ReadStats{}, nil
	}
	if err != nil {
		return nil, ReadStats{}, err
	}
	defer f.Close()
	return Read(f)
}

// Append writes records to w, one JSON line each.
func Append(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range recs {
		rec := recs[i]
		if rec.Schema == 0 {
			rec.Schema = SchemaVersion
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// AppendFile appends records to the store at path, creating the file
// (and its directory) on first use. Appends are line-atomic on every
// platform the CI runs on for the record sizes involved; a torn tail
// from a crashed writer is skipped by Read.
func AppendFile(path string, recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if err := Append(f, recs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Merge combines record streams (e.g. history shards downloaded from an
// artifact chain) into one deduplicated history: records are identified
// by (run, circuit, script), first occurrence wins, and the result is
// ordered by run time, then run ID, then circuit — a deterministic
// timeline regardless of input order.
func Merge(histories ...[]Record) []Record {
	type key struct{ run, circuit, script string }
	seen := map[key]bool{}
	var out []Record
	for _, h := range histories {
		for _, rec := range h {
			k := key{rec.Run, rec.Circuit, rec.Script}
			if seen[k] {
				continue
			}
			seen[k] = true
			out = append(out, rec)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		ti, tj := out[i].Provenance.Time, out[j].Provenance.Time
		if !ti.Equal(tj) {
			return ti.Before(tj)
		}
		if out[i].Run != out[j].Run {
			return out[i].Run < out[j].Run
		}
		return out[i].Circuit < out[j].Circuit
	})
	return out
}

// Run is one producing invocation's slice of the history: the records
// sharing one run ID, in circuit order.
type Run struct {
	ID      string
	Time    time.Time
	Script  string // the run's script when uniform, "" when mixed
	Records []Record
}

// GroupRuns splits a merged history into chronological runs.
func GroupRuns(recs []Record) []Run {
	recs = Merge(recs) // dedupe + deterministic order
	var runs []Run
	idx := map[string]int{}
	for _, rec := range recs {
		i, ok := idx[rec.Run]
		if !ok {
			i = len(runs)
			idx[rec.Run] = i
			runs = append(runs, Run{ID: rec.Run, Time: rec.Provenance.Time, Script: rec.Script})
		}
		if runs[i].Script != rec.Script {
			runs[i].Script = ""
		}
		runs[i].Records = append(runs[i].Records, rec)
	}
	sort.SliceStable(runs, func(i, j int) bool {
		if !runs[i].Time.Equal(runs[j].Time) {
			return runs[i].Time.Before(runs[j].Time)
		}
		return runs[i].ID < runs[j].ID
	})
	return runs
}

// Label names a run in rendered tables: its script (when uniform) plus
// enough of the run ID to tell reruns apart.
func (r Run) Label() string {
	id := r.ID
	if len(id) > 20 {
		id = id[:20] // the timestamp prefix of NewRunID
	}
	if r.Script == "" {
		return id
	}
	return fmt.Sprintf("%s@%s", r.Script, id)
}
