package qor

import (
	"strings"
	"testing"
	"time"
)

func baselineRun(at time.Time) []Record {
	return []Record{
		rec("base", "Adder", "resyn", 100, 10, time.Second, at),
		rec("base", "Max", "resyn", 200, 20, 10*time.Second, at),
	}
}

func TestCompareClean(t *testing.T) {
	t0 := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	cur := []Record{
		rec("cur", "Adder", "resyn", 99, 10, time.Second, t0.Add(time.Hour)),
		rec("cur", "Max", "resyn", 200, 20, 10*time.Second, t0.Add(time.Hour)),
	}
	rep := Compare(baselineRun(t0), cur, GateOptions{})
	if rep.Regressed {
		t.Fatalf("clean run regressed: %+v", rep)
	}
	if len(rep.Suite) != 3 {
		t.Fatalf("suite verdicts = %d, want 3", len(rep.Suite))
	}
	if rep.Suite[0].Old != 300 || rep.Suite[0].New != 299 {
		t.Errorf("total gates verdict = %+v", rep.Suite[0])
	}
	if rep.Suite[1].Metric != "max depth" || rep.Suite[1].New != 20 {
		t.Errorf("max depth verdict = %+v", rep.Suite[1])
	}
}

func TestCompareGateRegression(t *testing.T) {
	t0 := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	cur := []Record{
		rec("cur", "Adder", "resyn", 101, 10, time.Second, t0.Add(time.Hour)), // +1 gate
		rec("cur", "Max", "resyn", 200, 20, 10*time.Second, t0.Add(time.Hour)),
	}
	rep := Compare(baselineRun(t0), cur, GateOptions{})
	if !rep.Regressed {
		t.Fatal("a +1 gate regression passed the gate")
	}
	var found bool
	for _, v := range rep.PerCircuit {
		if v.Circuit == "Adder" && v.Metric == "gates" && v.Regressed && v.Delta() == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("no per-circuit gates verdict for Adder: %+v", rep.PerCircuit)
	}
	if !rep.Suite[0].Regressed {
		t.Errorf("suite total-gates verdict did not regress: %+v", rep.Suite[0])
	}
}

func TestCompareDepthRegression(t *testing.T) {
	t0 := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	cur := []Record{
		rec("cur", "Adder", "resyn", 100, 10, time.Second, t0.Add(time.Hour)),
		rec("cur", "Max", "resyn", 199, 21, 10*time.Second, t0.Add(time.Hour)), // depth +1, gates -1
	}
	rep := Compare(baselineRun(t0), cur, GateOptions{})
	if !rep.Regressed {
		t.Fatal("a +1 depth regression passed the gate")
	}
	if rep.Suite[0].Regressed {
		t.Errorf("total gates wrongly regressed: %+v", rep.Suite[0])
	}
	if !rep.Suite[1].Regressed {
		t.Errorf("max depth did not regress: %+v", rep.Suite[1])
	}
}

func TestCompareRuntimeTolerance(t *testing.T) {
	t0 := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	mk := func(adder, max time.Duration) []Record {
		return []Record{
			rec("cur", "Adder", "resyn", 100, 10, adder, t0.Add(time.Hour)),
			rec("cur", "Max", "resyn", 200, 20, max, t0.Add(time.Hour)),
		}
	}
	// +40% runtime: inside the default 50% tolerance.
	if rep := Compare(baselineRun(t0), mk(1400*time.Millisecond, 14*time.Second), GateOptions{}); rep.Regressed {
		t.Errorf("+40%% runtime regressed under 50%% tolerance: %+v", rep.Suite)
	}
	// +100% runtime: beyond tolerance.
	rep := Compare(baselineRun(t0), mk(2*time.Second, 20*time.Second), GateOptions{})
	if !rep.Regressed {
		t.Error("+100% runtime passed the 50% tolerance gate")
	}
	// A big relative blip under the absolute floor is noise, not signal.
	fast := []Record{
		rec("base", "Tiny", "resyn", 10, 2, 10*time.Millisecond, t0),
	}
	cur := []Record{
		rec("cur", "Tiny", "resyn", 10, 2, 100*time.Millisecond, t0.Add(time.Hour)), // 10x but tiny
	}
	if rep := Compare(fast, cur, GateOptions{}); rep.Regressed {
		t.Errorf("sub-floor runtime blip regressed: %+v", rep.PerCircuit)
	}
	// Tolerance off: runtime never gates.
	if rep := Compare(baselineRun(t0), mk(time.Minute, time.Hour), GateOptions{RuntimeTolerance: -1}); rep.Regressed {
		t.Errorf("runtime gated with tolerance disabled: %+v", rep.Suite)
	}
	// Tighter custom tolerance: +40% now fails (floor exceeded on Max).
	if rep := Compare(baselineRun(t0), mk(1400*time.Millisecond, 14*time.Second), GateOptions{RuntimeTolerance: 0.2}); !rep.Regressed {
		t.Error("+40% runtime passed a 20% tolerance gate")
	}
}

func TestCompareMembershipChanges(t *testing.T) {
	t0 := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	cur := []Record{
		rec("cur", "Adder", "resyn", 100, 10, time.Second, t0.Add(time.Hour)),
		rec("cur", "Shifter", "resyn", 50, 5, time.Second, t0.Add(time.Hour)), // new
		// Max lost.
	}
	rep := Compare(baselineRun(t0), cur, GateOptions{})
	if rep.Regressed {
		t.Fatalf("membership change alone regressed: %+v", rep)
	}
	if len(rep.NewCircuits) != 1 || rep.NewCircuits[0] != "Shifter" {
		t.Errorf("NewCircuits = %v", rep.NewCircuits)
	}
	if len(rep.LostCircuits) != 1 || rep.LostCircuits[0] != "Max" {
		t.Errorf("LostCircuits = %v", rep.LostCircuits)
	}
	// The aggregate covers only the overlap: total gates 100 vs 100.
	if rep.Suite[0].Old != 100 || rep.Suite[0].New != 100 {
		t.Errorf("overlap-only total gates = %+v", rep.Suite[0])
	}
}

func TestCompareNoOverlap(t *testing.T) {
	t0 := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	cur := []Record{rec("cur", "Other", "size", 10, 2, time.Second, t0)}
	rep := Compare(baselineRun(t0), cur, GateOptions{})
	if rep.Regressed || len(rep.Suite) != 0 {
		t.Errorf("no-overlap compare = %+v", rep)
	}
	var sb strings.Builder
	rep.WriteTable(&sb)
	if !strings.Contains(sb.String(), "No overlapping") {
		t.Errorf("table = %q", sb.String())
	}
}

func TestCompareScriptsDoNotCrossMatch(t *testing.T) {
	// The same circuit under different scripts must not be compared: a
	// resyn-x run is expected to beat resyn, not be gated against it.
	t0 := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	cur := []Record{rec("cur", "Adder", "resyn-x", 101, 10, time.Second, t0)}
	rep := Compare(baselineRun(t0), cur, GateOptions{})
	if len(rep.PerCircuit) != 0 {
		t.Errorf("cross-script verdicts issued: %+v", rep.PerCircuit)
	}
}

func TestWriteTable(t *testing.T) {
	t0 := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	cur := []Record{
		rec("cur", "Adder", "resyn", 101, 10, time.Second, t0.Add(time.Hour)),
		rec("cur", "Max", "resyn", 190, 20, 10*time.Second, t0.Add(time.Hour)),
	}
	rep := Compare(baselineRun(t0), cur, GateOptions{})
	var sb strings.Builder
	rep.WriteTable(&sb)
	out := sb.String()
	for _, want := range []string{"QoR gate: FAIL", "total gates", "max depth", "total runtime", "Adder", "REGRESSED", "+1"} {
		if !strings.Contains(out, want) {
			t.Errorf("verdict table missing %q:\n%s", want, out)
		}
	}
	// The improved Max row appears (it is not an unchanged no-op); the
	// unchanged per-circuit depth rows are filtered (suite rows always
	// render, unchanged or not — they are the headline).
	if !strings.Contains(out, "improved") {
		t.Errorf("verdict table missing the improved row:\n%s", out)
	}
	if strings.Contains(out, "| Adder | depth") || strings.Contains(out, "| Max | depth") {
		t.Errorf("verdict table carries unchanged per-circuit noise rows:\n%s", out)
	}
}
