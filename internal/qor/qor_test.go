package qor

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mighash/internal/engine"
)

func rec(run, circuit, script string, gates, depth int, runtime time.Duration, at time.Time) Record {
	return Record{
		Schema: SchemaVersion, Run: run, Circuit: circuit, Script: script,
		Gates: gates, Depth: depth, Runtime: runtime,
		Provenance: Provenance{Time: at, OS: "linux", Arch: "amd64", GOMAXPROCS: 4},
	}
}

func TestCollectProvenance(t *testing.T) {
	p := CollectProvenance()
	if p.OS == "" || p.Arch == "" {
		t.Errorf("provenance missing os/arch: %+v", p)
	}
	if p.GOMAXPROCS < 1 {
		t.Errorf("provenance GOMAXPROCS = %d, want >= 1", p.GOMAXPROCS)
	}
	if p.Time.IsZero() {
		t.Error("provenance time is zero")
	}
	if d := p.Describe(); !strings.Contains(d, "gomaxprocs=") {
		t.Errorf("Describe() = %q, want a gomaxprocs field", d)
	}
}

func TestFromResult(t *testing.T) {
	prov := CollectProvenance()
	res := engine.Result{
		Name: "Adder",
		Stats: engine.PipelineStats{
			Script: "resyn", SizeAfter: 100, DepthAfter: 12, Elapsed: 3 * time.Second,
			Iterations: 2, CacheHits: 10, CacheMisses: 5,
			Passes: []engine.PassStats{
				{Name: "TF", Elapsed: time.Second},
				{Name: "BF", Elapsed: time.Second},
				{Name: "TF", Elapsed: time.Second},
			},
		},
	}
	r, ok := FromResult("run1", "resyn", res, prov)
	if !ok {
		t.Fatal("FromResult rejected a clean result")
	}
	if r.Gates != 100 || r.Depth != 12 || r.Runtime != 3*time.Second {
		t.Errorf("record metrics = %d/%d/%v", r.Gates, r.Depth, r.Runtime)
	}
	// Pass times are summed per name across iterations.
	if len(r.Passes) != 2 || r.Passes[0].Name != "TF" || r.Passes[0].Elapsed != 2*time.Second {
		t.Errorf("pass breakdown = %+v, want TF summed to 2s", r.Passes)
	}
	if _, ok := FromResult("run1", "resyn", engine.Result{Name: "x", Err: errors.New("boom")}, prov); ok {
		t.Error("FromResult accepted a failed result")
	}
}

func TestAppendReadRoundTrip(t *testing.T) {
	now := time.Now().UTC().Truncate(time.Second)
	recs := []Record{
		rec("r1", "Adder", "resyn", 100, 10, time.Second, now),
		rec("r1", "Max", "resyn", 200, 20, 2*time.Second, now),
	}
	var buf bytes.Buffer
	if err := Append(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, stats, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Skipped != 0 || stats.Records != 2 || len(got) != 2 {
		t.Fatalf("read stats = %+v, records = %d", stats, len(got))
	}
	if got[0].Circuit != "Adder" || got[1].Gates != 200 {
		t.Errorf("round trip mangled records: %+v", got)
	}
}

func TestReadSkipsMalformedAndUnknownSchema(t *testing.T) {
	now := time.Now().UTC()
	var buf bytes.Buffer
	if err := Append(&buf, []Record{rec("r1", "Adder", "resyn", 100, 10, time.Second, now)}); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("this is not json\n")
	buf.WriteString(`{"schema_version": 99, "run": "r9", "circuit": "Future", "script": "resyn"}` + "\n")
	buf.WriteString(`{"schema_version": 1, "run": "torn", "circ`) // torn tail, no newline
	got, stats, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Circuit != "Adder" {
		t.Fatalf("survivors = %+v, want just Adder", got)
	}
	if stats.Skipped != 3 {
		t.Errorf("skipped = %d, want 3 (malformed, future schema, torn tail)", stats.Skipped)
	}
}

func TestAppendFileAndMissingFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sub", HistoryFile)
	if got, _, err := ReadFile(path); err != nil || got != nil {
		t.Fatalf("missing file: recs=%v err=%v, want empty+nil", got, err)
	}
	now := time.Now().UTC()
	if err := AppendFile(path, []Record{rec("r1", "Adder", "resyn", 100, 10, time.Second, now)}); err != nil {
		t.Fatal(err)
	}
	if err := AppendFile(path, []Record{rec("r2", "Adder", "resyn", 99, 10, time.Second, now.Add(time.Minute))}); err != nil {
		t.Fatal(err)
	}
	got, stats, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || stats.Records != 2 {
		t.Fatalf("appended store holds %d records, want 2", len(got))
	}
	// os.Stat to be sure append did not truncate.
	fi, err := os.Stat(path)
	if err != nil || fi.Size() == 0 {
		t.Fatalf("store file stat: %v size %d", err, fi.Size())
	}
}

func TestMergeDedupesAndOrders(t *testing.T) {
	t0 := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	t1 := t0.Add(time.Hour)
	a := []Record{rec("r2", "Adder", "resyn", 90, 9, time.Second, t1)}
	b := []Record{
		rec("r1", "Adder", "resyn", 100, 10, time.Second, t0),
		rec("r2", "Adder", "resyn", 999, 99, time.Second, t1), // duplicate key, must lose
	}
	got := Merge(a, b)
	if len(got) != 2 {
		t.Fatalf("merged %d records, want 2", len(got))
	}
	if got[0].Run != "r1" || got[1].Run != "r2" {
		t.Errorf("merge order = %s, %s; want chronological r1, r2", got[0].Run, got[1].Run)
	}
	if got[1].Gates != 90 {
		t.Errorf("dedupe kept the wrong record: gates = %d, want 90 (first wins)", got[1].Gates)
	}
}

func TestGroupRuns(t *testing.T) {
	t0 := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	recs := []Record{
		rec("r2", "Adder", "resyn", 90, 9, time.Second, t0.Add(time.Hour)),
		rec("r1", "Adder", "resyn", 100, 10, time.Second, t0),
		rec("r1", "Max", "resyn", 200, 20, time.Second, t0),
	}
	runs := GroupRuns(recs)
	if len(runs) != 2 {
		t.Fatalf("grouped %d runs, want 2", len(runs))
	}
	if runs[0].ID != "r1" || len(runs[0].Records) != 2 || runs[1].ID != "r2" {
		t.Errorf("runs = %+v", runs)
	}
	if runs[0].Script != "resyn" {
		t.Errorf("uniform run script = %q, want resyn", runs[0].Script)
	}
	if !strings.Contains(runs[0].Label(), "resyn") {
		t.Errorf("Label() = %q, want the script in it", runs[0].Label())
	}
}

func TestNewRunID(t *testing.T) {
	p := Provenance{Time: time.Date(2026, 8, 7, 12, 0, 0, 250e6, time.UTC), GitSHA: "abcdef0123456789"}
	id := NewRunID(p)
	if !strings.HasPrefix(id, "20260807T120000.250Z-abcdef01") {
		t.Errorf("NewRunID = %q", id)
	}
	// Two runs in the same second must not share an ID (shared IDs are
	// deduped as one run, silently dropping the later run's records).
	later := p
	later.Time = p.Time.Add(time.Millisecond)
	if id2 := NewRunID(later); id2 == id {
		t.Errorf("same-second runs share ID %q", id)
	}
	if id2 := NewRunID(Provenance{Time: p.Time}); !strings.HasSuffix(id2, "-local") {
		t.Errorf("NewRunID without VCS = %q, want -local suffix", id2)
	}
}
