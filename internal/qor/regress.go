package qor

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// GateOptions tunes the regression detector. The zero value is the CI
// default: exact gates/depth comparison, +50% runtime tolerance with a
// 250ms absolute noise floor.
type GateOptions struct {
	// RuntimeTolerance is the allowed relative runtime growth before a
	// runtime verdict regresses: 0.5 means the new runtime may be up to
	// 1.5× the baseline. Gates and depth get no tolerance — the
	// optimizer is deterministic, so any growth is a real change.
	// Negative disables runtime gating entirely. Zero means the default
	// 0.5.
	RuntimeTolerance float64
	// RuntimeFloor is the absolute growth a runtime regression must also
	// exceed: sub-floor circuits finish in scheduler noise, where a 2×
	// blip is meaningless. Zero means the default 250ms.
	RuntimeFloor time.Duration
}

func (o GateOptions) withDefaults() GateOptions {
	if o.RuntimeTolerance == 0 {
		o.RuntimeTolerance = 0.5
	}
	if o.RuntimeFloor == 0 {
		o.RuntimeFloor = 250 * time.Millisecond
	}
	return o
}

// Verdict is one gate comparison: a metric of one circuit (or the suite
// aggregate) in the baseline run versus the candidate run.
type Verdict struct {
	Circuit string // "" for suite-aggregate verdicts
	Script  string
	Metric  string // "gates", "depth" or "runtime"
	Old     int64
	New     int64
	// Regressed is the hard verdict; Note explains soft outcomes
	// ("within tolerance", "improved", "new circuit").
	Regressed bool
	Note      string
}

// Delta returns the signed change, New - Old.
func (v Verdict) Delta() int64 { return v.New - v.Old }

// GateReport is the full output of one gate evaluation.
type GateReport struct {
	BaselineRun string
	CurrentRun  string
	// PerCircuit holds the circuit-level verdicts (three per compared
	// circuit), Suite the aggregates: total gates, max depth, total
	// runtime over the circuits present in both runs.
	PerCircuit []Verdict
	Suite      []Verdict
	// NewCircuits/LostCircuits are keys present in only one run: not
	// regressions (benchmarks come and go), but always reported — a
	// silently shrinking suite would let total-gate regressions hide.
	NewCircuits  []string
	LostCircuits []string
	Regressed    bool
}

// Compare gates the candidate records against the baseline records,
// pairing by (circuit, script). Gates and depth compare exactly; runtime
// with the option's relative tolerance above an absolute floor. Suite
// aggregates — total gates, max depth, total runtime — cover only the
// pairs present on both sides, so suite verdicts never conflate a
// missing circuit with an improvement.
func Compare(baseline, current []Record, opt GateOptions) GateReport {
	opt = opt.withDefaults()
	var rep GateReport
	if len(baseline) > 0 {
		rep.BaselineRun = baseline[0].Run
	}
	if len(current) > 0 {
		rep.CurrentRun = current[0].Run
	}
	type key struct{ circuit, script string }
	base := map[key]Record{}
	for _, rec := range baseline {
		base[key{rec.Circuit, rec.Script}] = rec
	}
	matched := map[key]bool{}
	var sumGatesOld, sumGatesNew int64
	var maxDepthOld, maxDepthNew int64
	var sumRunOld, sumRunNew time.Duration
	for _, cur := range current {
		k := key{cur.Circuit, cur.Script}
		old, ok := base[k]
		if !ok {
			rep.NewCircuits = append(rep.NewCircuits, cur.Circuit)
			continue
		}
		matched[k] = true
		sumGatesOld += int64(old.Gates)
		sumGatesNew += int64(cur.Gates)
		maxDepthOld = max(maxDepthOld, int64(old.Depth))
		maxDepthNew = max(maxDepthNew, int64(cur.Depth))
		sumRunOld += old.Runtime
		sumRunNew += cur.Runtime
		rep.PerCircuit = append(rep.PerCircuit,
			exactVerdict(cur.Circuit, cur.Script, "gates", int64(old.Gates), int64(cur.Gates)),
			exactVerdict(cur.Circuit, cur.Script, "depth", int64(old.Depth), int64(cur.Depth)),
			runtimeVerdict(cur.Circuit, cur.Script, old.Runtime, cur.Runtime, opt),
		)
	}
	for k := range base {
		if !matched[k] {
			rep.LostCircuits = append(rep.LostCircuits, k.circuit)
		}
	}
	sort.Strings(rep.NewCircuits)
	sort.Strings(rep.LostCircuits)
	if len(matched) > 0 {
		rep.Suite = []Verdict{
			exactVerdict("", "", "total gates", sumGatesOld, sumGatesNew),
			exactVerdict("", "", "max depth", maxDepthOld, maxDepthNew),
			runtimeVerdict("", "", sumRunOld, sumRunNew, opt),
		}
		rep.Suite[2].Metric = "total runtime"
	}
	for _, v := range rep.PerCircuit {
		rep.Regressed = rep.Regressed || v.Regressed
	}
	for _, v := range rep.Suite {
		rep.Regressed = rep.Regressed || v.Regressed
	}
	return rep
}

func exactVerdict(circuit, script, metric string, prev, cur int64) Verdict {
	v := Verdict{Circuit: circuit, Script: script, Metric: metric, Old: prev, New: cur}
	switch {
	case cur > prev:
		v.Regressed = true
		v.Note = "REGRESSED"
	case cur < prev:
		v.Note = "improved"
	default:
		v.Note = "unchanged"
	}
	return v
}

func runtimeVerdict(circuit, script string, prev, cur time.Duration, opt GateOptions) Verdict {
	v := Verdict{Circuit: circuit, Script: script, Metric: "runtime", Old: int64(prev), New: int64(cur)}
	switch {
	case opt.RuntimeTolerance < 0:
		v.Note = "not gated"
	case cur <= prev:
		v.Note = "ok"
	case cur-prev <= opt.RuntimeFloor:
		v.Note = "within noise floor"
	case float64(cur) <= float64(prev)*(1+opt.RuntimeTolerance):
		v.Note = "within tolerance"
	default:
		v.Regressed = true
		v.Note = fmt.Sprintf("REGRESSED (>%+.0f%%)", 100*opt.RuntimeTolerance)
	}
	return v
}

// WriteTable renders the report as a readable markdown verdict table:
// the suite aggregates first (they are the hard gate's headline), then
// every per-circuit verdict that is not an unchanged/ok no-op, then the
// membership changes. The output is what a failing CI gate prints, so it
// leads with what regressed.
func (r GateReport) WriteTable(w io.Writer) {
	verdict := "PASS"
	if r.Regressed {
		verdict = "FAIL"
	}
	fmt.Fprintf(w, "### QoR gate: %s (%s vs %s)\n\n", verdict, r.CurrentRun, r.BaselineRun)
	if len(r.Suite) == 0 {
		fmt.Fprintln(w, "No overlapping (circuit, script) pairs to compare.")
		return
	}
	fmt.Fprintln(w, "| scope | metric | baseline | current | delta | verdict |")
	fmt.Fprintln(w, "|---|---|---:|---:|---:|---|")
	for _, v := range r.Suite {
		writeVerdictRow(w, "**suite**", v)
	}
	for _, v := range r.PerCircuit {
		if v.Note == "unchanged" || v.Note == "ok" {
			continue
		}
		writeVerdictRow(w, v.Circuit, v)
	}
	fmt.Fprintln(w)
	if len(r.NewCircuits) > 0 {
		fmt.Fprintf(w, "New circuits (not gated): %v\n", r.NewCircuits)
	}
	if len(r.LostCircuits) > 0 {
		fmt.Fprintf(w, "Circuits missing from the current run (excluded from aggregates): %v\n", r.LostCircuits)
	}
}

func writeVerdictRow(w io.Writer, scope string, v Verdict) {
	prev, cur, delta := fmt.Sprint(v.Old), fmt.Sprint(v.New), fmt.Sprintf("%+d", v.Delta())
	if v.Metric == "runtime" || v.Metric == "total runtime" {
		prev = time.Duration(v.Old).Round(time.Millisecond).String()
		cur = time.Duration(v.New).Round(time.Millisecond).String()
		delta = fmt.Sprintf("%+v", time.Duration(v.Delta()).Round(time.Millisecond))
	}
	fmt.Fprintf(w, "| %s | %s | %s | %s | %s | %s |\n", scope, v.Metric, prev, cur, delta, v.Note)
}
