package tt

import (
	"math/rand"
	"testing"
)

func randPerm(rng *rand.Rand, n int) []int {
	p := rng.Perm(n)
	return p
}

// TestPermuteMatchesSlow pins the transposition-decomposition Permute to
// the per-assignment reference over every arity and random permutations.
func TestPermuteMatchesSlow(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for n := 0; n <= MaxVars; n++ {
		for trial := 0; trial < 200; trial++ {
			f := New(n, rng.Uint64())
			perm := randPerm(rng, n)
			got, want := f.Permute(perm), f.permuteSlow(perm)
			if got != want {
				t.Fatalf("n=%d perm=%v f=%v: Permute=%v, reference=%v", n, perm, f, got, want)
			}
		}
	}
}

// TestPermuteComposesWithSwapVars: a single transposition must agree
// with SwapVars directly.
func TestPermuteComposesWithSwapVars(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 100; trial++ {
		f := New(6, rng.Uint64())
		i, j := rng.Intn(6), rng.Intn(6)
		perm := []int{0, 1, 2, 3, 4, 5}
		perm[i], perm[j] = perm[j], perm[i]
		if got, want := f.Permute(perm), f.SwapVars(i, j); got != want {
			t.Fatalf("swap(%d,%d) f=%v: Permute=%v, SwapVars=%v", i, j, f, got, want)
		}
	}
}

func BenchmarkPermute(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	f := New(6, rng.Uint64())
	perm := []int{5, 3, 0, 4, 1, 2}
	b.Run("words", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f = f.Permute(perm)
		}
	})
	b.Run("scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f = f.permuteSlow(perm)
		}
	})
}
