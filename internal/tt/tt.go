package tt

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"
)

// MaxVars is the largest number of variables a TT can hold. With six
// variables the 2^6 = 64 function values exactly fill a uint64.
const MaxVars = 6

// projection[i] has bit j set iff bit i of j is one, i.e. it is the truth
// table of the i-th variable over six variables.
var projection = [MaxVars]uint64{
	0xAAAAAAAAAAAAAAAA,
	0xCCCCCCCCCCCCCCCC,
	0xF0F0F0F0F0F0F0F0,
	0xFF00FF00FF00FF00,
	0xFFFF0000FFFF0000,
	0xFFFFFFFF00000000,
}

// TT is a truth table over N variables. The zero value is the constant-zero
// function of zero variables.
type TT struct {
	Bits uint64 // function values, one bit per assignment
	N    int    // number of variables, 0 <= N <= MaxVars
}

// Mask returns the bit mask covering the 2^n valid assignment bits.
func Mask(n int) uint64 {
	if n >= MaxVars {
		return ^uint64(0)
	}
	return (uint64(1) << (1 << uint(n))) - 1
}

// New returns a truth table over n variables with the given value bits.
// Bits outside the valid range are cleared. It panics if n is out of range.
func New(n int, bits uint64) TT {
	checkN(n)
	return TT{Bits: bits & Mask(n), N: n}
}

// Const0 returns the constant-false function over n variables.
func Const0(n int) TT {
	checkN(n)
	return TT{N: n}
}

// Const1 returns the constant-true function over n variables.
func Const1(n int) TT {
	checkN(n)
	return TT{Bits: Mask(n), N: n}
}

// Var returns the projection function x_i over n variables.
// It panics unless 0 <= i < n.
func Var(n, i int) TT {
	checkN(n)
	if i < 0 || i >= n {
		panic(fmt.Sprintf("tt: variable index %d out of range for %d variables", i, n))
	}
	return TT{Bits: projection[i] & Mask(n), N: n}
}

func checkN(n int) {
	if n < 0 || n > MaxVars {
		panic(fmt.Sprintf("tt: %d variables not supported (max %d)", n, MaxVars))
	}
}

// NumBits returns the number of assignment bits, 2^N.
func (t TT) NumBits() int { return 1 << uint(t.N) }

// Eval returns the function value under assignment j, where bit i of j is
// the value of variable i.
func (t TT) Eval(j uint) bool { return (t.Bits>>j)&1 == 1 }

// Not returns the complement of t.
func (t TT) Not() TT { return TT{Bits: ^t.Bits & Mask(t.N), N: t.N} }

// NotIf returns the complement of t if c is true, and t unchanged otherwise.
func (t TT) NotIf(c bool) TT {
	if c {
		return t.Not()
	}
	return t
}

// And returns the conjunction of t and u. Both operands must have the same
// number of variables.
func (t TT) And(u TT) TT { t.check(u); return TT{Bits: t.Bits & u.Bits, N: t.N} }

// Or returns the disjunction of t and u.
func (t TT) Or(u TT) TT { t.check(u); return TT{Bits: t.Bits | u.Bits, N: t.N} }

// Xor returns the exclusive or of t and u.
func (t TT) Xor(u TT) TT { t.check(u); return TT{Bits: t.Bits ^ u.Bits, N: t.N} }

func (t TT) check(u TT) {
	if t.N != u.N {
		panic(fmt.Sprintf("tt: operand arity mismatch: %d vs %d variables", t.N, u.N))
	}
}

// Maj returns the bitwise ternary majority 〈a b c〉, the fundamental MIG
// operation: true wherever at least two of a, b, c are true.
func Maj(a, b, c TT) TT {
	a.check(b)
	a.check(c)
	return TT{Bits: (a.Bits & b.Bits) | (a.Bits & c.Bits) | (b.Bits & c.Bits), N: a.N}
}

// Mux returns s ? a : b computed bitwise (if s then a else b).
func Mux(s, a, b TT) TT {
	s.check(a)
	s.check(b)
	return TT{Bits: (s.Bits & a.Bits) | (^s.Bits & b.Bits & Mask(s.N)), N: s.N}
}

// IsConst0 reports whether t is the constant-false function.
func (t TT) IsConst0() bool { return t.Bits == 0 }

// IsConst1 reports whether t is the constant-true function.
func (t TT) IsConst1() bool { return t.Bits == Mask(t.N) }

// CountOnes returns the number of satisfying assignments.
func (t TT) CountOnes() int { return bits.OnesCount64(t.Bits) }

// Cofactor0 returns the negative cofactor of t with respect to variable i:
// the function obtained by fixing x_i = 0, still expressed over N variables
// (the result no longer depends on x_i).
func (t TT) Cofactor0(i int) TT {
	t.checkVar(i)
	lo := t.Bits &^ projection[i]
	return TT{Bits: (lo | lo<<(1<<uint(i))) & Mask(t.N), N: t.N}
}

// Cofactor1 returns the positive cofactor of t with respect to variable i
// (x_i fixed to 1).
func (t TT) Cofactor1(i int) TT {
	t.checkVar(i)
	hi := t.Bits & projection[i]
	return TT{Bits: (hi | hi>>(1<<uint(i))) & Mask(t.N), N: t.N}
}

func (t TT) checkVar(i int) {
	if i < 0 || i >= t.N {
		panic(fmt.Sprintf("tt: variable index %d out of range for %d variables", i, t.N))
	}
}

// DependsOn reports whether t functionally depends on variable i.
func (t TT) DependsOn(i int) bool {
	t.checkVar(i)
	return t.Cofactor0(i).Bits != t.Cofactor1(i).Bits
}

// SupportSize returns the number of variables t actually depends on.
func (t TT) SupportSize() int {
	s := 0
	for i := 0; i < t.N; i++ {
		if t.DependsOn(i) {
			s++
		}
	}
	return s
}

// Support returns the indices of the variables t depends on, in order.
func (t TT) Support() []int {
	var s []int
	for i := 0; i < t.N; i++ {
		if t.DependsOn(i) {
			s = append(s, i)
		}
	}
	return s
}

// FlipVar returns t with variable i complemented, i.e. f(x) with x_i
// replaced by ¬x_i.
func (t TT) FlipVar(i int) TT {
	t.checkVar(i)
	sh := uint(1) << uint(i)
	hi := t.Bits & projection[i]
	lo := t.Bits &^ projection[i]
	return TT{Bits: hi>>sh | lo<<sh, N: t.N}
}

// SwapVars returns t with variables i and j exchanged.
func (t TT) SwapVars(i, j int) TT {
	t.checkVar(i)
	t.checkVar(j)
	if i == j {
		return t
	}
	if i > j {
		i, j = j, i
	}
	pi, pj := projection[i], projection[j]
	sh := uint(1)<<uint(j) - uint(1)<<uint(i)
	keep := t.Bits & ((pi & pj) | (^pi & ^pj))
	up := (t.Bits & pi &^ pj) << sh
	down := (t.Bits & pj &^ pi) >> sh
	return TT{Bits: keep | up | down, N: t.N}
}

// Permute returns the truth table of f(x_{perm[0]}, …, x_{perm[n-1]}); that
// is, input position i of the result reads the variable that position
// perm[i] of t read. perm must be a permutation of 0..N-1.
//
// The permutation is decomposed into at most N−1 transpositions, each a
// word-parallel SwapVars of a handful of word operations — no
// per-assignment scan (permuteSlow pins the reference semantics).
func (t TT) Permute(perm []int) TT {
	if len(perm) != t.N {
		panic(fmt.Sprintf("tt: permutation length %d does not match %d variables", len(perm), t.N))
	}
	var where, at [MaxVars]int // position of variable v / variable at position i
	for v := 0; v < t.N; v++ {
		where[v], at[v] = v, v
	}
	out := t
	for i := 0; i < t.N; i++ {
		v := perm[i] // the t-variable that must end up at position i
		cur := where[v]
		if cur == i {
			continue
		}
		out = out.SwapVars(i, cur)
		u := at[i] // the variable the swap displaced from position i
		at[cur], where[u] = u, cur
		at[i], where[v] = v, i
	}
	return out
}

// permuteSlow is the per-assignment reference implementation Permute is
// verified against (and benchmarked over).
func (t TT) permuteSlow(perm []int) TT {
	var out uint64
	n := uint(t.N)
	for j := uint(0); j < uint(1)<<n; j++ {
		if (t.Bits>>j)&1 == 0 {
			continue
		}
		// Assignment j of t corresponds to the assignment of the result in
		// which result-variable i takes the value t-variable perm[i] had.
		var rj uint
		for i := uint(0); i < n; i++ {
			if (j>>uint(perm[i]))&1 == 1 {
				rj |= 1 << i
			}
		}
		out |= 1 << rj
	}
	return TT{Bits: out, N: t.N}
}

// Expand returns t re-expressed over n >= t.N variables; the added
// variables are don't-cares the function does not depend on.
func (t TT) Expand(n int) TT {
	checkN(n)
	if n < t.N {
		panic(fmt.Sprintf("tt: cannot expand from %d to %d variables", t.N, n))
	}
	b := t.Bits
	for i := t.N; i < n; i++ {
		b |= b << (1 << uint(i))
	}
	return TT{Bits: b & Mask(n), N: n}
}

// Shrink returns t expressed over n <= t.N variables. It panics if t
// depends on any removed variable.
func (t TT) Shrink(n int) TT {
	checkN(n)
	if n > t.N {
		panic(fmt.Sprintf("tt: cannot shrink from %d to %d variables", t.N, n))
	}
	for i := n; i < t.N; i++ {
		if t.DependsOn(i) {
			panic(fmt.Sprintf("tt: cannot shrink: function depends on variable %d", i))
		}
	}
	return TT{Bits: t.Bits & Mask(n), N: n}
}

// String renders t as a hexadecimal literal of 2^N bits, most significant
// digit first, e.g. the 4-variable majority-like 0xe8e8.
func (t TT) String() string {
	digits := t.NumBits() / 4
	if digits == 0 {
		digits = 1
	}
	return fmt.Sprintf("0x%0*x", digits, t.Bits)
}

// BinaryString renders t as 2^N binary digits, assignment 2^N−1 first.
func (t TT) BinaryString() string {
	var b strings.Builder
	for j := t.NumBits() - 1; j >= 0; j-- {
		if t.Eval(uint(j)) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// Parse reads a truth table over n variables from s. Accepted forms are a
// hexadecimal literal (with or without the 0x prefix) and a binary string of
// exactly 2^n digits.
func Parse(n int, s string) (TT, error) {
	checkN(n)
	orig := s
	if len(s) == 1<<uint(n) && strings.Trim(s, "01") == "" && n >= 2 {
		var b uint64
		for _, c := range s {
			b = b<<1 | uint64(c-'0')
		}
		return New(n, b), nil
	}
	s = strings.TrimPrefix(strings.TrimPrefix(s, "0x"), "0X")
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return TT{}, fmt.Errorf("tt: cannot parse %q as a %d-variable truth table: %v", orig, n, err)
	}
	if v&^Mask(n) != 0 {
		return TT{}, fmt.Errorf("tt: value %q exceeds the 2^%d bits of a %d-variable truth table", orig, n, n)
	}
	return New(n, v), nil
}
