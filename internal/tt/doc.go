// Package tt implements bit-parallel truth tables for Boolean functions of
// up to six variables.
//
// A truth table over n variables is stored in the low 2^n bits of a single
// uint64 word: bit j holds the function value under the assignment whose
// binary encoding is j (bit i of j is the value of variable i). All bits
// above 2^n are kept zero, which makes comparison, hashing, and canonical
// representative selection (the "smallest truth table" rule used for NPN
// classification in the paper) plain integer operations.
//
// The package provides the Boolean operations needed by the rest of the
// system — in particular the ternary majority operator that Majority-
// Inverter Graphs are built from — together with the structural operations
// used by NPN canonicalization (input flips, variable swaps, permutations)
// and by exact synthesis (cofactors, support analysis).
//
// Role in the functional-hashing flow: TT is the value domain everything
// hashes through. Cut enumeration (internal/cut) computes the TT of every
// 4-feasible cut, NPN classification (internal/npn) canonicalizes it, and
// the database (internal/db) maps the class to a minimum MIG.
//
// Concurrency contract: a TT is a small immutable value (one word plus the
// variable count); every function returns a fresh value and touches no
// package state, so everything here is safe to use from any number of
// goroutines without coordination.
package tt
