package tt

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMask(t *testing.T) {
	cases := []struct {
		n    int
		want uint64
	}{
		{0, 0x1}, {1, 0x3}, {2, 0xF}, {3, 0xFF}, {4, 0xFFFF},
		{5, 0xFFFFFFFF}, {6, ^uint64(0)},
	}
	for _, c := range cases {
		if got := Mask(c.n); got != c.want {
			t.Errorf("Mask(%d) = %#x, want %#x", c.n, got, c.want)
		}
	}
}

func TestConstAndVar(t *testing.T) {
	for n := 0; n <= MaxVars; n++ {
		if !Const0(n).IsConst0() {
			t.Errorf("Const0(%d) not constant false", n)
		}
		if !Const1(n).IsConst1() {
			t.Errorf("Const1(%d) not constant true", n)
		}
		if Const1(n).CountOnes() != 1<<uint(n) {
			t.Errorf("Const1(%d) has %d ones", n, Const1(n).CountOnes())
		}
		for i := 0; i < n; i++ {
			v := Var(n, i)
			for j := uint(0); j < uint(1)<<uint(n); j++ {
				want := (j>>uint(i))&1 == 1
				if v.Eval(j) != want {
					t.Fatalf("Var(%d,%d).Eval(%d) = %v, want %v", n, i, j, v.Eval(j), want)
				}
			}
		}
	}
}

func TestNewMasksHighBits(t *testing.T) {
	got := New(2, ^uint64(0))
	if got.Bits != 0xF {
		t.Errorf("New(2, all-ones).Bits = %#x, want 0xF", got.Bits)
	}
}

func TestBooleanOps(t *testing.T) {
	a, b := Var(3, 0), Var(3, 1)
	if got := a.And(b).Bits; got != (0xAA & 0xCC) {
		t.Errorf("And = %#x", got)
	}
	if got := a.Or(b).Bits; got != (0xAA | 0xCC) {
		t.Errorf("Or = %#x", got)
	}
	if got := a.Xor(b).Bits; got != (0xAA ^ 0xCC) {
		t.Errorf("Xor = %#x", got)
	}
	if got := a.Not().Bits; got != 0x55 {
		t.Errorf("Not = %#x", got)
	}
	if a.NotIf(false) != a || a.NotIf(true) != a.Not() {
		t.Error("NotIf misbehaves")
	}
}

func TestMajTruthTable(t *testing.T) {
	// 〈x1 x2 x3〉 over three variables is the classic 0xE8 pattern.
	m := Maj(Var(3, 0), Var(3, 1), Var(3, 2))
	if m.Bits != 0xE8 {
		t.Fatalf("Maj(x0,x1,x2) = %#x, want 0xE8", m.Bits)
	}
	// Setting one input to constant 0 yields AND, to constant 1 yields OR
	// (Eq. (1) discussion in the paper).
	and := Maj(Const0(3), Var(3, 0), Var(3, 1))
	if and.Bits != (0xAA & 0xCC) {
		t.Errorf("〈0ab〉 = %#x, want AND", and.Bits)
	}
	or := Maj(Const1(3), Var(3, 0), Var(3, 1))
	if or.Bits != (0xAA | 0xCC) {
		t.Errorf("〈1ab〉 = %#x, want OR", or.Bits)
	}
}

func TestMajSelfDual(t *testing.T) {
	// 〈a b c〉 = ¬〈¬a ¬b ¬c〉 for arbitrary operands.
	f := func(ab, bb, cb uint16) bool {
		a, b, c := New(4, uint64(ab)), New(4, uint64(bb)), New(4, uint64(cb))
		return Maj(a, b, c) == Maj(a.Not(), b.Not(), c.Not()).Not()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMux(t *testing.T) {
	s, a, b := Var(3, 2), Var(3, 0), Var(3, 1)
	got := Mux(s, a, b)
	for j := uint(0); j < 8; j++ {
		want := b.Eval(j)
		if s.Eval(j) {
			want = a.Eval(j)
		}
		if got.Eval(j) != want {
			t.Fatalf("Mux wrong at assignment %d", j)
		}
	}
}

func TestCofactorsShannon(t *testing.T) {
	// f = x_i ? cof1 : cof0 must reconstruct f for every variable.
	f := func(bits uint16, iv uint8) bool {
		i := int(iv) % 4
		fn := New(4, uint64(bits))
		c0, c1 := fn.Cofactor0(i), fn.Cofactor1(i)
		if c0.DependsOn(i) || c1.DependsOn(i) {
			return false
		}
		return Mux(Var(4, i), c1, c0) == fn
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDependsOnAndSupport(t *testing.T) {
	f := Var(4, 1).Xor(Var(4, 3))
	if f.DependsOn(0) || !f.DependsOn(1) || f.DependsOn(2) || !f.DependsOn(3) {
		t.Errorf("DependsOn wrong for %v", f)
	}
	if got := f.SupportSize(); got != 2 {
		t.Errorf("SupportSize = %d, want 2", got)
	}
	if s := f.Support(); len(s) != 2 || s[0] != 1 || s[1] != 3 {
		t.Errorf("Support = %v", s)
	}
	if Const0(4).SupportSize() != 0 {
		t.Error("constant should have empty support")
	}
}

func TestFlipVarInvolution(t *testing.T) {
	f := func(bits uint16, iv uint8) bool {
		i := int(iv) % 4
		fn := New(4, uint64(bits))
		return fn.FlipVar(i).FlipVar(i) == fn
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFlipVarSemantics(t *testing.T) {
	fn := New(4, 0x8000) // AND of all four variables
	g := fn.FlipVar(2)
	for j := uint(0); j < 16; j++ {
		if g.Eval(j) != fn.Eval(j^4) {
			t.Fatalf("FlipVar wrong at %d", j)
		}
	}
}

func TestSwapVarsInvolutionAndSemantics(t *testing.T) {
	f := func(bits uint16, iv, jv uint8) bool {
		i, j := int(iv)%4, int(jv)%4
		fn := New(4, uint64(bits))
		g := fn.SwapVars(i, j)
		if g.SwapVars(i, j) != fn {
			return false
		}
		for a := uint(0); a < 16; a++ {
			bi, bj := (a>>uint(i))&1, (a>>uint(j))&1
			sw := a&^(1<<uint(i))&^(1<<uint(j)) | bi<<uint(j) | bj<<uint(i)
			if g.Eval(a) != fn.Eval(sw) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPermuteIdentityAndSwap(t *testing.T) {
	fn := New(4, 0x1234)
	if fn.Permute([]int{0, 1, 2, 3}) != fn {
		t.Error("identity permutation changed the function")
	}
	if fn.Permute([]int{1, 0, 2, 3}) != fn.SwapVars(0, 1) {
		t.Error("transposition disagrees with SwapVars")
	}
}

func TestPermuteComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		fn := New(4, uint64(rng.Intn(1<<16)))
		p := rng.Perm(4)
		q := rng.Perm(4)
		// Applying p then q equals applying the composed permutation
		// r[i] = p[q[i]].
		r := make([]int, 4)
		for i := range r {
			r[i] = p[q[i]]
		}
		if fn.Permute(p).Permute(q) != fn.Permute(r) {
			t.Fatalf("composition mismatch for p=%v q=%v", p, q)
		}
	}
}

func TestExpandShrinkRoundTrip(t *testing.T) {
	fn := New(3, 0xE8)
	e := fn.Expand(5)
	if e.N != 5 || e.DependsOn(3) || e.DependsOn(4) {
		t.Fatalf("Expand produced %v", e)
	}
	for j := uint(0); j < 32; j++ {
		if e.Eval(j) != fn.Eval(j&7) {
			t.Fatalf("Expand wrong at %d", j)
		}
	}
	if got := e.Shrink(3); got != fn {
		t.Errorf("Shrink(Expand(f)) = %v, want %v", got, fn)
	}
}

func TestShrinkPanicsOnDependency(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Shrink should panic when dropping a support variable")
		}
	}()
	Var(4, 3).Shrink(3)
}

func TestStringAndParse(t *testing.T) {
	fn := New(4, 0xE8E8)
	if fn.String() != "0xe8e8" {
		t.Errorf("String = %q", fn.String())
	}
	for _, s := range []string{"0xe8e8", "e8e8", "E8E8", "1110100011101000"} {
		got, err := Parse(4, s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if got != fn {
			t.Errorf("Parse(%q) = %v, want %v", s, got, fn)
		}
	}
	if _, err := Parse(2, "123456"); err == nil {
		t.Error("Parse should reject out-of-range values")
	}
	if _, err := Parse(4, "zz"); err == nil {
		t.Error("Parse should reject non-hex garbage")
	}
}

func TestBinaryString(t *testing.T) {
	fn := New(2, 0x6) // XOR of two variables: bits 01 10 → "0110"
	if got := fn.BinaryString(); got != "0110" {
		t.Errorf("BinaryString = %q, want 0110", got)
	}
}

func TestEvalAgainstBits(t *testing.T) {
	fn := New(4, 0xBEEF)
	for j := uint(0); j < 16; j++ {
		if fn.Eval(j) != ((0xBEEF>>j)&1 == 1) {
			t.Fatalf("Eval(%d) inconsistent", j)
		}
	}
}

func TestPanicsOnBadArity(t *testing.T) {
	for name, f := range map[string]func(){
		"New":      func() { New(7, 0) },
		"Var":      func() { Var(3, 3) },
		"And":      func() { Var(3, 0).And(Var(4, 0)) },
		"Cofactor": func() { Var(3, 0).Cofactor0(5) },
		"Permute":  func() { Var(3, 0).Permute([]int{0, 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func BenchmarkMaj(b *testing.B) {
	x, y, z := Var(4, 0), Var(4, 1), Var(4, 2)
	for i := 0; i < b.N; i++ {
		x = Maj(x, y, z)
	}
	_ = x
}

func BenchmarkSwapVars(b *testing.B) {
	fn := New(4, 0xBEEF)
	for i := 0; i < b.N; i++ {
		fn = fn.SwapVars(i&3, (i>>2)&3)
	}
	_ = fn
}
