package exp

import (
	"strings"
	"testing"

	"mighash/internal/db"
)

func loadDB(t testing.TB) *db.DB {
	t.Helper()
	d, err := db.Load()
	if err != nil {
		t.Fatalf("embedded database unavailable: %v", err)
	}
	return d
}

// TestTableIMatchesPaper pins the class/function counts of Table I; the
// time columns are machine-specific and only checked for presence.
func TestTableIMatchesPaper(t *testing.T) {
	rows := TableI(loadDB(t))
	want := [][3]int{ // nodes, classes, functions
		{0, 2, 10}, {1, 2, 80}, {2, 5, 640}, {3, 18, 3300},
		{4, 42, 10352}, {5, 117, 40064}, {6, 35, 11058}, {7, 1, 32},
	}
	if len(rows) != len(want) {
		t.Fatalf("%d rows, want %d", len(rows), len(want))
	}
	var total int
	for i, w := range want {
		r := rows[i]
		if r.MajorityNodes != w[0] || r.Classes != w[1] || r.Functions != w[2] {
			t.Errorf("row %d: (%d, %d, %d), want %v", i, r.MajorityNodes, r.Classes, r.Functions, w)
		}
		if r.MajorityNodes > 0 && r.Time == 0 {
			t.Errorf("row %d: no recorded synthesis time", i)
		}
		total += r.Functions
	}
	if total != 1<<16 {
		t.Errorf("functions sum to %d, want 65536", total)
	}
	if s := FormatTableI(rows); !strings.Contains(s, "65536") {
		t.Errorf("formatted table misses totals:\n%s", s)
	}
}

// TestTableIIMatchesPaper pins all three distributions of Table II.
func TestTableIIMatchesPaper(t *testing.T) {
	rows := TableII(loadDB(t))
	type cols struct{ cc, cf, lc, lf, dc, df int }
	want := []cols{
		{2, 10, 2, 10, 2, 10},
		{2, 80, 2, 80, 2, 80},
		{5, 640, 5, 640, 48, 10260},
		{18, 3300, 18, 3300, 169, 55184},
		{42, 10352, 37, 9312, 1, 2},
		{117, 40064, 84, 28680, 0, 0},
		{35, 11058, 63, 22568, 0, 0},
		{1, 32, 7, 832, 0, 0},
		{0, 0, 2, 80, 0, 0},
		{0, 0, 2, 34, 0, 0},
	}
	for i, w := range want {
		r := rows[i]
		got := cols{r.CClasses, r.CFunctions, r.LClasses, r.LFunctions, r.DClasses, r.DFunctions}
		if got != w {
			t.Errorf("value %d: %+v, want %+v", i, got, w)
		}
	}
	if s := FormatTableII(rows); !strings.Contains(s, "55184") {
		t.Errorf("formatted table misses D column:\n%s", s)
	}
}

// TestTheorem2Experiment runs the constructive bound check.
func TestTheorem2Experiment(t *testing.T) {
	rows, err := Theorem2(loadDB(t), 10)
	if err != nil {
		t.Fatal(err)
	}
	wantBound := map[int]int{4: 7, 5: 17, 6: 37}
	for _, r := range rows {
		if r.Bound != wantBound[r.N] {
			t.Errorf("n=%d: bound %d, want %d", r.N, r.Bound, wantBound[r.N])
		}
		if r.MaxBuilt > r.Bound {
			t.Errorf("n=%d: built %d exceeds bound %d", r.N, r.MaxBuilt, r.Bound)
		}
	}
}

// TestFigures pins the two figure artifacts: Fig. 1's full adder (size 3,
// depth 2) and Fig. 2's optimal S0,2 MIG (7 gates).
func TestFigures(t *testing.T) {
	_, st := Figure1()
	if st.Size != 3 || st.Depth != 2 {
		t.Errorf("Fig. 1 full adder: size %d depth %d, want 3 and 2", st.Size, st.Depth)
	}
	m, st2, err := Figure2(loadDB(t))
	if err != nil {
		t.Fatal(err)
	}
	if st2.Size != 7 {
		t.Errorf("Fig. 2 S0,2: size %d, want 7", st2.Size)
	}
	if m.Simulate()[0] != S02() {
		t.Error("Fig. 2 MIG does not compute S0,2")
	}
}

// TestArithmeticSubset runs the Table III/IV pipeline on the two smallest
// benchmarks and checks the structural guarantees of the variants: sizes
// never grow, and the depth-preserving variants hold depth exactly.
func TestArithmeticSubset(t *testing.T) {
	rows, err := Arithmetic(loadDB(t), []string{"Max", "Sine"}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if len(r.Results) != len(Variants) {
			t.Fatalf("%s: %d variant results", r.Name, len(r.Results))
		}
		for name, res := range r.Results {
			if res.Size > r.StartSize {
				t.Errorf("%s/%s: size grew %d→%d", r.Name, name, r.StartSize, res.Size)
			}
			if res.Area <= 0 || res.MapDepth <= 0 {
				t.Errorf("%s/%s: missing mapping results", r.Name, name)
			}
		}
		for _, dv := range []string{"TFD", "TD"} {
			if res := r.Results[dv]; res.Depth > r.StartDepth {
				t.Errorf("%s/%s: depth-preserving variant grew depth %d→%d",
					r.Name, dv, r.StartDepth, res.Depth)
			}
		}
	}
	avg := Averages(rows)
	for _, v := range Variants {
		if a := avg[v.Name]; a[0] > 1.0 || a[0] <= 0 {
			t.Errorf("%s: average size ratio %f out of range", v.Name, a[0])
		}
	}
	if s := FormatTableIII(rows); !strings.Contains(s, "Max") {
		t.Errorf("Table III formatting broken:\n%s", s)
	}
	if s := FormatTableIV(rows); !strings.Contains(s, "Sine") {
		t.Errorf("Table IV formatting broken:\n%s", s)
	}
}
