package exp

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"mighash/internal/circuits"
	"mighash/internal/db"
	"mighash/internal/depthopt"
	"mighash/internal/exact"
	"mighash/internal/mapper"
	"mighash/internal/mig"
	"mighash/internal/npn"
	"mighash/internal/rewrite"
	"mighash/internal/tt"
)

// Variants lists the paper's five functional-hashing configurations in
// table order.
var Variants = []struct {
	Name string
	Opt  rewrite.Options
}{
	{"TF", rewrite.TF},
	{"T", rewrite.T},
	{"TFD", rewrite.TFD},
	{"TD", rewrite.TD},
	{"BF", rewrite.BF},
}

// ---------------------------------------------------------------- Table I

// TableIRow aggregates one optimum-size bucket.
type TableIRow struct {
	MajorityNodes int
	Classes       int
	Functions     int
	Time          time.Duration // total synthesis time of the bucket
	AvgTime       time.Duration // Time / Classes
}

// TableI buckets the database by optimal size, reporting the recorded
// per-class synthesis times (measured when cmd/migdb generated the
// artifact). Use TableILive to re-measure on the current machine.
func TableI(d *db.DB) []TableIRow {
	buckets := map[int]*TableIRow{}
	for _, e := range d.Entries() {
		b := buckets[e.Size()]
		if b == nil {
			b = &TableIRow{MajorityNodes: e.Size()}
			buckets[e.Size()] = b
		}
		b.Classes++
		b.Functions += npn.ClassSize4(e.Rep)
		b.Time += e.GenTime
	}
	var rows []TableIRow
	for _, b := range buckets {
		if b.Classes > 0 {
			b.AvgTime = b.Time / time.Duration(b.Classes)
		}
		rows = append(rows, *b)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].MajorityNodes < rows[j].MajorityNodes })
	return rows
}

// TableILive re-runs exact synthesis for every class and buckets the
// fresh measurements. opt bounds each synthesis; workers parallelizes
// across classes.
func TableILive(opt exact.Options, workers int) ([]TableIRow, error) {
	d, err := db.Generate(opt, workers, nil)
	if err != nil {
		return nil, err
	}
	return TableI(d), nil
}

// FormatTableI renders rows in the paper's Table I layout.
func FormatTableI(rows []TableIRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %8s %10s %12s %12s\n", "Majority nodes", "Classes", "Functions", "Time", "Avg. time")
	var tc, tf int
	var tt_ time.Duration
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14d %8d %10d %12.2f %12.2f\n",
			r.MajorityNodes, r.Classes, r.Functions, r.Time.Seconds(), r.AvgTime.Seconds())
		tc += r.Classes
		tf += r.Functions
		tt_ += r.Time
	}
	fmt.Fprintf(&b, "%-14s %8d %10d %12.2f\n", "Σ", tc, tf, tt_.Seconds())
	return b.String()
}

// --------------------------------------------------------------- Table II

// TableIIRow is one size/length/depth bucket of Table II.
type TableIIRow struct {
	Value                int // the metric value (0..9)
	CClasses, CFunctions int // combinational complexity C(f)
	LClasses, LFunctions int // expression length L(f)
	DClasses, DFunctions int // depth D(f)
}

// TableII computes the paper's complexity statistics for all 65536
// 4-variable functions: C(f) from the database, L(f) by the
// expression-length dynamic program and D(f) by depth-bounded
// reachability.
func TableII(d *db.DB) []TableIIRow {
	rows := make([]TableIIRow, 10)
	for i := range rows {
		rows[i].Value = i
	}
	for _, e := range d.Entries() {
		rows[e.Size()].CClasses++
		rows[e.Size()].CFunctions += npn.ClassSize4(e.Rep)
	}
	lengths := exact.MinLengths(4)
	depths := exact.MinDepths(4)
	for v := 0; v < 1<<16; v++ {
		rows[lengths[v]].LFunctions++
		rows[depths[v]].DFunctions++
	}
	// Classes per bucket: L and D are NPN-invariant, so attributing each
	// class once via its representative is exact.
	for _, e := range d.Entries() {
		rows[lengths[e.Rep.Bits]].LClasses++
		rows[depths[e.Rep.Bits]].DClasses++
	}
	return rows
}

// FormatTableII renders rows in the paper's Table II layout.
func FormatTableII(rows []TableIIRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s %8s %8s %8s %8s %8s %8s\n",
		"value", "C class", "C func", "L class", "L func", "D class", "D func")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-5d %8d %8d %8d %8d %8d %8d\n",
			r.Value, r.CClasses, r.CFunctions, r.LClasses, r.LFunctions, r.DClasses, r.DFunctions)
	}
	return b.String()
}

// -------------------------------------------------------------- Theorem 2

// Theorem2Row records the constructive bound check for one arity.
type Theorem2Row struct {
	N        int
	Bound    int
	MaxBuilt int // largest construction observed over the sample
	Samples  int
}

// Theorem2 verifies C(n) ≤ 10·(2^(n−4)−1)+7 constructively on an
// exhaustive sample for n = 4 and random samples for n = 5, 6 (the truth-
// table engine is capped at 6 variables; the bound's induction is
// arity-generic, so these are exactly the base cases that matter).
func Theorem2(d *db.DB, samplesPerN int) ([]Theorem2Row, error) {
	var rows []Theorem2Row
	rng := newRng(97)
	for n := 4; n <= 6; n++ {
		row := Theorem2Row{N: n, Bound: db.Bound(n)}
		for i := 0; i < samplesPerN; i++ {
			f := tt.New(n, rng.Uint64()&tt.Mask(n))
			m, err := d.SynthesizeUpper(f)
			if err != nil {
				return nil, err
			}
			if got := m.Simulate()[0]; got != f {
				return nil, fmt.Errorf("exp: Theorem 2 construction for %v computes %v", f, got)
			}
			if m.Size() > row.MaxBuilt {
				row.MaxBuilt = m.Size()
			}
			if m.Size() > row.Bound {
				return nil, fmt.Errorf("exp: Theorem 2 violated for %v: size %d > bound %d", f, m.Size(), row.Bound)
			}
			row.Samples++
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTheorem2 renders the bound check.
func FormatTheorem2(rows []Theorem2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-3s %8s %10s %9s\n", "n", "bound", "max built", "samples")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-3d %8d %10d %9d\n", r.N, r.Bound, r.MaxBuilt, r.Samples)
	}
	return b.String()
}

// ------------------------------------------------------------- Table III/IV

// VariantResult is one variant's outcome on one benchmark.
type VariantResult struct {
	Size, Depth int
	Runtime     time.Duration
	Area        int // LUTs after technology mapping (Table IV)
	MapDepth    int // LUT levels after technology mapping (Table IV)
}

// BenchRow is one benchmark row shared by Tables III and IV.
type BenchRow struct {
	Name          string
	In, Out       int
	StartSize     int // "best result" starting point (Table III S column)
	StartDepth    int
	StartArea     int // mapped starting point (Table IV baseline)
	StartMapDepth int
	Results       map[string]VariantResult
}

// PrepareStart generates the benchmark circuit and turns it into a
// "heavily optimized" starting point in the sense of Sec. V-C: the
// algebraic depth optimizer is run with a generous duplication budget,
// like the depth-oriented flows that produced the EPFL best results the
// paper starts from.
func PrepareStart(spec circuits.Spec) *mig.MIG {
	m := spec.Build()
	opt, _ := depthopt.Optimize(m, depthopt.Options{SizeFactor: 8, MaxPasses: 40})
	return opt
}

// Arithmetic runs all five variants over the named benchmarks (all eight
// when names is nil) and maps every result, producing the rows behind
// Tables III and IV. withMapping can be disabled to skip Table IV's LUT
// covers.
func Arithmetic(d *db.DB, names []string, withMapping bool) ([]BenchRow, error) {
	specs := circuits.All()
	if names != nil {
		specs = specs[:0]
		for _, n := range names {
			s, ok := circuits.ByName(n)
			if !ok {
				return nil, fmt.Errorf("exp: unknown benchmark %q", n)
			}
			specs = append(specs, s)
		}
	}
	var rows []BenchRow
	for _, spec := range specs {
		start := PrepareStart(spec)
		row := BenchRow{
			Name: spec.Name, In: spec.NumPIs, Out: spec.NumPOs,
			StartSize: start.Size(), StartDepth: start.Depth(),
			Results: map[string]VariantResult{},
		}
		if withMapping {
			cover := mapper.Map(start, mapper.Options{})
			row.StartArea, row.StartMapDepth = cover.Area, cover.Depth
		}
		for _, v := range Variants {
			opt, st := rewrite.Run(start, d, v.Opt)
			res := VariantResult{Size: st.SizeAfter, Depth: st.DepthAfter, Runtime: st.Elapsed}
			if withMapping {
				cover := mapper.Map(opt, mapper.Options{})
				res.Area, res.MapDepth = cover.Area, cover.Depth
			}
			row.Results[v.Name] = res
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Averages returns the mean new/old ratios per variant for MIG size,
// MIG depth, mapped area and mapped depth — the "Average improvement"
// rows of Tables III and IV.
func Averages(rows []BenchRow) map[string][4]float64 {
	out := map[string][4]float64{}
	for _, v := range Variants {
		var s, d, a, md float64
		var n, nm int
		for _, r := range rows {
			res := r.Results[v.Name]
			s += float64(res.Size) / float64(r.StartSize)
			d += float64(res.Depth) / float64(r.StartDepth)
			n++
			if r.StartArea > 0 {
				a += float64(res.Area) / float64(r.StartArea)
				md += float64(res.MapDepth) / float64(r.StartMapDepth)
				nm++
			}
		}
		var avg [4]float64
		if n > 0 {
			avg[0], avg[1] = s/float64(n), d/float64(n)
		}
		if nm > 0 {
			avg[2], avg[3] = a/float64(nm), md/float64(nm)
		}
		out[v.Name] = avg
	}
	return out
}

// FormatTableIII renders the MIG size/depth/runtime table.
func FormatTableIII(rows []BenchRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-9s %8s %5s |", "Benchmark", "I/O", "S", "D")
	for _, v := range Variants {
		fmt.Fprintf(&b, " %8s %5s %8s |", v.Name+" S", "D", "RT")
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-9s %8d %5d |", r.Name, fmt.Sprintf("%d/%d", r.In, r.Out), r.StartSize, r.StartDepth)
		for _, v := range Variants {
			res := r.Results[v.Name]
			fmt.Fprintf(&b, " %8d %5d %8.2f |", res.Size, res.Depth, res.Runtime.Seconds())
		}
		b.WriteByte('\n')
	}
	avg := Averages(rows)
	fmt.Fprintf(&b, "%-12s %24s |", "Average", "(new/old)")
	for _, v := range Variants {
		a := avg[v.Name]
		fmt.Fprintf(&b, " %8.2f %5.2f %8s |", a[0], a[1], "")
	}
	b.WriteByte('\n')
	return b.String()
}

// FormatTableIV renders the mapped area/depth table.
func FormatTableIV(rows []BenchRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-9s %8s %5s |", "Benchmark", "I/O", "A", "D")
	for _, v := range Variants {
		fmt.Fprintf(&b, " %8s %5s |", v.Name+" A", "D")
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-9s %8d %5d |", r.Name, fmt.Sprintf("%d/%d", r.In, r.Out), r.StartArea, r.StartMapDepth)
		for _, v := range Variants {
			res := r.Results[v.Name]
			fmt.Fprintf(&b, " %8d %5d |", res.Area, res.MapDepth)
		}
		b.WriteByte('\n')
	}
	avg := Averages(rows)
	fmt.Fprintf(&b, "%-12s %24s |", "Average", "(new/old)")
	for _, v := range Variants {
		a := avg[v.Name]
		fmt.Fprintf(&b, " %8.2f %5.2f |", a[2], a[3])
	}
	b.WriteByte('\n')
	return b.String()
}

// ---------------------------------------------------------------- Figures

// Figure1 builds the paper's Fig. 1: the 3-gate, depth-2 full adder MIG.
func Figure1() (*mig.MIG, mig.Stats) {
	m := mig.New(3)
	s, c := m.FullAdder(m.Input(0), m.Input(1), m.Input(2))
	m.AddOutput(s)
	m.AddOutput(c)
	return m, m.Stats()
}

// S02 returns the truth table of S₀,₂(x₁..x₄), the symmetric function of
// the paper's Fig. 2 — true when exactly zero or two inputs are true.
func S02() tt.TT {
	var bits uint64
	for j := uint(0); j < 16; j++ {
		pc := j&1 + j>>1&1 + j>>2&1 + j>>3&1
		if pc == 0 || pc == 2 {
			bits |= 1 << j
		}
	}
	return tt.New(4, bits)
}

// Figure2 reconstructs the optimal 7-gate MIG of S₀,₂ from the database.
func Figure2(d *db.DB) (*mig.MIG, mig.Stats, error) {
	f := S02()
	m := mig.New(4)
	leaves := []mig.Lit{m.Input(0), m.Input(1), m.Input(2), m.Input(3)}
	l, ok := d.Build(m, f, leaves)
	if !ok {
		return nil, mig.Stats{}, fmt.Errorf("exp: S0,2 class missing from database")
	}
	m.AddOutput(l)
	if got := m.Simulate()[0]; got != f {
		return nil, mig.Stats{}, fmt.Errorf("exp: Figure 2 MIG computes %v", got)
	}
	return m, m.Stats(), nil
}

// newRng returns a deterministic random source for sampled experiments.
func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// benchByName resolves a benchmark spec (wrapper kept for the experiment
// files that do not otherwise import circuits).
func benchByName(name string) (circuits.Spec, bool) { return circuits.ByName(name) }
