package exp

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"mighash/internal/aig"
	"mighash/internal/db"
	"mighash/internal/exact"
	"mighash/internal/mig"
	"mighash/internal/npn"
	"mighash/internal/tt"
)

// AIGRow is one bucket of the MIG-vs-AIG compactness comparison: all NPN
// classes whose optimal sizes are (C_MIG, C_AIG).
type AIGRow struct {
	MIGSize, AIGSize int
	Classes          int
	Functions        int
	AIGIsBound       bool // AIG size is an upper bound (per-class budget hit)
}

// AIGComparison computes, for every 4-variable NPN class, the optimal
// AND-chain size next to the optimal MIG size from the database. It
// substantiates the premise of the paper's introduction — AND is the
// constant-input special case of majority, so C_MIG(f) ≤ C_AIG(f)
// everywhere — and quantifies by how much majority logic wins. Classes
// whose AND-chain UNSAT proofs exceed opt's budget report their best
// found chain as an upper bound.
func AIGComparison(d *db.DB, opt exact.Options, workers int) ([]AIGRow, error) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	entries := d.Entries()
	type res struct {
		aigSize int
		bound   bool
		err     error
	}
	results := make([]res, len(entries))
	var (
		wg   sync.WaitGroup
		next int
		mu   sync.Mutex
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(entries) {
					return
				}
				a, err := exact.MinimumAIG(entries[i].Rep, opt, 1)
				if err != nil {
					// Budget hit: fall back to converting the optimal MIG
					// structure gate by gate (each majority is ≤ 4 ANDs,
					// structural hashing usually does better).
					results[i] = res{aigSize: convertedBound(d, entries[i].Rep), bound: true}
					continue
				}
				results[i] = res{aigSize: a.Size()}
			}
		}()
	}
	wg.Wait()
	buckets := map[[2]int]*AIGRow{}
	for i, e := range entries {
		if results[i].err != nil {
			return nil, results[i].err
		}
		key := [2]int{e.Size(), results[i].aigSize}
		b := buckets[key]
		if b == nil {
			b = &AIGRow{MIGSize: e.Size(), AIGSize: results[i].aigSize}
			buckets[key] = b
		}
		b.Classes++
		b.Functions += npn.ClassSize4(e.Rep)
		b.AIGIsBound = b.AIGIsBound || results[i].bound
		if e.Size() > results[i].aigSize {
			return nil, fmt.Errorf("exp: class %04x has C_MIG %d > C_AIG %d — impossible",
				e.Rep.Bits, e.Size(), results[i].aigSize)
		}
	}
	rows := make([]AIGRow, 0, len(buckets))
	for _, b := range buckets {
		rows = append(rows, *b)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].MIGSize != rows[j].MIGSize {
			return rows[i].MIGSize < rows[j].MIGSize
		}
		return rows[i].AIGSize < rows[j].AIGSize
	})
	return rows, nil
}

// convertedBound upper-bounds C_AIG(f) by instantiating the database's
// optimal MIG and translating it to an AIG.
func convertedBound(d *db.DB, rep tt.TT) int {
	m := mig.New(4)
	leaves := []mig.Lit{m.Input(0), m.Input(1), m.Input(2), m.Input(3)}
	l, ok := d.Build(m, rep, leaves)
	if !ok {
		return 4 * 7 // every class is in the database; defensive fallback
	}
	m.AddOutput(l)
	return aig.FromMIG(m).Size()
}

// FormatAIGComparison renders the comparison buckets plus the headline
// aggregate (average C_AIG / C_MIG over classes needing gates).
func FormatAIGComparison(rows []AIGRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-6s %8s %10s\n", "C_MIG", "C_AIG", "Classes", "Functions")
	var ratio float64
	var n int
	for _, r := range rows {
		note := ""
		if r.AIGIsBound {
			note = "  (AIG size is an upper bound)"
		}
		fmt.Fprintf(&b, "%-6d %-6d %8d %10d%s\n", r.MIGSize, r.AIGSize, r.Classes, r.Functions, note)
		if r.MIGSize > 0 {
			ratio += float64(r.AIGSize) / float64(r.MIGSize) * float64(r.Classes)
			n += r.Classes
		}
	}
	if n > 0 {
		fmt.Fprintf(&b, "average C_AIG/C_MIG over %d non-trivial classes: %.2f\n", n, ratio/float64(n))
	}
	return b.String()
}
