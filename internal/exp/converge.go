package exp

import (
	"fmt"
	"strings"

	"mighash/internal/db"
	"mighash/internal/rewrite"
)

// ConvergeRow records one iteration of repeated functional hashing.
type ConvergeRow struct {
	Pass        int
	Size, Depth int
}

// Converge implements the closing remark of the paper's Sec. V: "In all
// experiments, we have performed the functional hashing algorithm only
// once. Running it several times … will likely lead to further
// improvements." It re-applies one variant until the size stops
// improving (or maxPasses), reporting the trajectory. Pass 0 is the
// starting point.
func Converge(d *db.DB, name string, opt rewrite.Options, maxPasses int) ([]ConvergeRow, error) {
	spec, ok := benchByName(name)
	if !ok {
		return nil, fmt.Errorf("exp: unknown benchmark %q", name)
	}
	if maxPasses <= 0 {
		maxPasses = 10
	}
	m := PrepareStart(spec)
	rows := []ConvergeRow{{Pass: 0, Size: m.Size(), Depth: m.Depth()}}
	for pass := 1; pass <= maxPasses; pass++ {
		next, st := rewrite.Run(m, d, opt)
		rows = append(rows, ConvergeRow{Pass: pass, Size: st.SizeAfter, Depth: st.DepthAfter})
		if st.SizeAfter >= st.SizeBefore {
			break // fixpoint: this pass recovered nothing further
		}
		m = next
	}
	return rows, nil
}

// FormatConverge renders the trajectory.
func FormatConverge(name, variant string, rows []ConvergeRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s, repeated %s:\n", name, variant)
	fmt.Fprintf(&b, "%-5s %8s %6s %8s\n", "pass", "size", "depth", "ratio")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-5d %8d %6d %8.3f\n", r.Pass, r.Size, r.Depth,
			float64(r.Size)/float64(rows[0].Size))
	}
	return b.String()
}
