package exp

import (
	"fmt"
	"strings"

	"mighash/internal/db"
	"mighash/internal/engine"
	"mighash/internal/rewrite"
)

// ConvergeRow records one iteration of repeated functional hashing.
type ConvergeRow struct {
	Pass        int
	Size, Depth int
	CacheHits   int // NPN cut-cache hits of the pass (cache shared across passes)
}

// Converge implements the closing remark of the paper's Sec. V: "In all
// experiments, we have performed the functional hashing algorithm only
// once. Running it several times … will likely lead to further
// improvements." It drives a single-pass engine pipeline to its fixpoint
// and reports the trajectory; the NPN cut-cache is shared across the
// iterations, so later passes run mostly on cache hits. Pass 0 is the
// starting point.
func Converge(d *db.DB, name string, opt rewrite.Options, maxPasses int) ([]ConvergeRow, error) {
	spec, ok := benchByName(name)
	if !ok {
		return nil, fmt.Errorf("exp: unknown benchmark %q", name)
	}
	if maxPasses <= 0 {
		maxPasses = 10
	}
	m := PrepareStart(spec)
	pipe := engine.New(engine.RewritePass(opt))
	pipe.Name = rewrite.VariantName(opt)
	pipe.DB = d
	pipe.MaxIterations = maxPasses
	_, st, err := pipe.Run(m)
	if err != nil {
		return nil, err
	}
	rows := []ConvergeRow{{Pass: 0, Size: m.Size(), Depth: m.Depth()}}
	for _, ps := range st.Passes {
		rows = append(rows, ConvergeRow{
			Pass: ps.Iteration, Size: ps.SizeAfter, Depth: ps.DepthAfter,
			CacheHits: ps.CacheHits,
		})
	}
	return rows, nil
}

// FormatConverge renders the trajectory.
func FormatConverge(name, variant string, rows []ConvergeRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s, repeated %s:\n", name, variant)
	fmt.Fprintf(&b, "%-5s %8s %6s %8s %10s\n", "pass", "size", "depth", "ratio", "cache-hit")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-5d %8d %6d %8.3f %10d\n", r.Pass, r.Size, r.Depth,
			float64(r.Size)/float64(rows[0].Size), r.CacheHits)
	}
	return b.String()
}
