package exp

import (
	"strings"
	"testing"
	"time"

	"mighash/internal/exact"
)

// TestAIGComparisonInvariants runs the MIG-vs-AIG comparison with a tiny
// per-class budget (most classes fall back to the converted upper bound,
// which keeps the test fast) and checks the structural invariants: the
// buckets cover all 222 classes and 65536 functions, and C_MIG ≤ C_AIG
// in every bucket.
func TestAIGComparisonInvariants(t *testing.T) {
	d := loadDB(t)
	rows, err := AIGComparison(d, exact.Options{Timeout: 100 * time.Millisecond}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var classes, functions int
	for _, r := range rows {
		if r.MIGSize > r.AIGSize {
			t.Errorf("bucket (%d, %d): majority lost to AND", r.MIGSize, r.AIGSize)
		}
		classes += r.Classes
		functions += r.Functions
	}
	if classes != 222 || functions != 1<<16 {
		t.Fatalf("buckets cover %d classes / %d functions", classes, functions)
	}
	out := FormatAIGComparison(rows)
	if !strings.Contains(out, "average C_AIG/C_MIG") {
		t.Errorf("missing aggregate line:\n%s", out)
	}
}
