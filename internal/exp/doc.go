// Package exp regenerates every table and figure of the paper's
// experimental section (Sec. V) and renders them in the paper's layout:
//
//   - Table I — optimal MIGs for all 4-variable NPN classes (exact
//     synthesis: classes, functions and runtimes per optimum size)
//   - Table II — complexity of 4-variable MIGs: C(f), L(f) and D(f)
//   - Theorem 2 — the constructive size upper bound
//   - Table III — functional hashing on the arithmetic benchmarks (MIG
//     size/depth/runtime per variant)
//   - Table IV — LUT-mapped area/depth of the same optimized MIGs
//   - Figures 1 and 2 — the full-adder MIG and the optimal MIG of S₀,₂
//
// The workloads are generated (internal/circuits) rather than the
// original EPFL netlists, and LUT mapping stands in for ABC standard
// cells — see ARCHITECTURE.md for the substitution notes.
//
// Role in the functional-hashing flow: exp is the reproduction harness on
// top of everything else — it prepares the "heavily optimized" starting
// points (PrepareStart: generate, then depth-optimize) and drives the
// five variants plus convergence experiments (Converge) through the
// engine.
//
// Concurrency contract: the experiment drivers are plain sequential
// functions with per-call state; distinct experiments may run
// concurrently, and the batch-backed ones inherit engine.RunBatch's
// worker-pool safety.
package exp
