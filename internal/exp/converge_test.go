package exp

import (
	"strings"
	"testing"

	"mighash/internal/rewrite"
)

// TestConvergeMonotone: repeated passes never grow the graph, reach a
// fixpoint within the cap, and pass 1 matches a single Run.
func TestConvergeMonotone(t *testing.T) {
	d := loadDB(t)
	rows, err := Converge(d, "Max", rewrite.BF, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 2 {
		t.Fatalf("no passes recorded")
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Size > rows[i-1].Size {
			t.Errorf("pass %d grew the graph: %d → %d", rows[i].Pass, rows[i-1].Size, rows[i].Size)
		}
	}
	last := rows[len(rows)-1]
	prev := rows[len(rows)-2]
	if len(rows) < 11 && last.Size < prev.Size {
		t.Error("stopped before the fixpoint")
	}
	if s := FormatConverge("Max", "BF", rows); !strings.Contains(s, "pass") {
		t.Errorf("bad formatting:\n%s", s)
	}
}

// TestConvergeUnknownBenchmark covers the error path.
func TestConvergeUnknownBenchmark(t *testing.T) {
	d := loadDB(t)
	if _, err := Converge(d, "nope", rewrite.BF, 3); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}
