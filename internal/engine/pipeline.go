package engine

import (
	"context"
	"fmt"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"mighash/internal/db"
	"mighash/internal/depthopt"
	"mighash/internal/mig"
	"mighash/internal/obs"
	"mighash/internal/rewrite"
)

// Objective selects the convergence metric of a pipeline.
type Objective int

const (
	// ObjectiveSize minimizes (size, depth) lexicographically — the
	// paper's setting: functional hashing for size, depth as tiebreak.
	ObjectiveSize Objective = iota
	// ObjectiveDepth minimizes (depth, size) lexicographically.
	ObjectiveDepth
)

func (o Objective) String() string {
	if o == ObjectiveDepth {
		return "depth"
	}
	return "size"
}

// better reports whether cost a = (size, depth) beats cost b under o.
func (o Objective) better(aSize, aDepth, bSize, bDepth int) bool {
	if o == ObjectiveDepth {
		return aDepth < bDepth || (aDepth == bDepth && aSize < bSize)
	}
	return aSize < bSize || (aSize == bSize && aDepth < bDepth)
}

// Pipeline is a composable optimization script: an ordered list of passes
// run repeatedly until the script stops improving the graph. A Pipeline
// is immutable during Run and may be used by many goroutines at once
// (RunBatch does exactly that).
type Pipeline struct {
	// Name labels the script in stats and CLIs ("resyn", "custom", …).
	Name string
	// Passes is the script body, executed in order each iteration.
	Passes []Pass
	// Objective selects the convergence metric (default ObjectiveSize).
	Objective Objective
	// MaxIterations caps the number of script rounds (default 10). The
	// pipeline stops earlier as soon as a full round fails to improve the
	// best cost seen, which is the common exit.
	MaxIterations int
	// DB supplies the minimum-MIG database; nil loads the embedded one.
	DB *db.DB
	// Cache is the NPN cut-cache shared by every rewrite pass of a run.
	// When nil each Run allocates a private cache, which keeps run
	// statistics deterministic; install a shared db.NewCache() to also
	// reuse canonicalizations across runs and batch workers.
	Cache *db.Cache
	// Exact5 is the on-demand 5-input exact-synthesis store feeding the
	// K = 5 passes ("TF5" and friends, the resyn5/size5 presets). When
	// nil each Run allocates a private store with default budgets; share
	// one db.NewOnDemand across runs and batch workers so every class is
	// synthesized once per process — and, with BatchOptions.CacheFile,
	// once per cache file. K = 4 scripts never touch it.
	Exact5 *db.OnDemand
	// Workers bounds intra-graph parallelism of the rewrite passes: best
	// cuts of independent fanout-free regions are evaluated concurrently
	// and committed serially, so the optimized graphs are bit-identical
	// for every value (only the cache hit/miss split can shift when
	// workers race on the shared cache). 0 or 1 evaluates serially. This
	// is how a single large MIG saturates the machine without the logic
	// duplication of SplitOutputs.
	Workers int
	// Extract upgrades every top-down rewrite pass of the script to
	// choice-aware extraction (rewrite.Options.Extract) regardless of
	// the pass's own configuration — the way ad-hoc scripts and the HTTP
	// request schema opt in without renaming passes. Bottom-up passes
	// are unaffected. Prefer the "-x" presets for the curated scripts.
	Extract bool
	// ExtractObjective selects the extraction objective when Extract is
	// set (default ObjectiveSize).
	ExtractObjective Objective
	// PassCheck, when non-nil, is invoked synchronously after every
	// executed pass with the pass name, the 1-based iteration, and the
	// graphs before and after the pass. A non-nil error aborts the run
	// with that error — this is the differential-verification hook: the
	// sim harness (internal/sim/diff) re-checks each pass against its
	// input cheaply enough to leave enabled in CI. Like Progress, one
	// callback can be invoked concurrently from different runs sharing a
	// pipeline, so it must be safe for concurrent use (the diff harness
	// is).
	PassCheck func(pass string, iteration int, before, after *mig.MIG) error
	// Progress, when non-nil, is invoked synchronously after every
	// executed pass with that pass's statistics, before the next pass
	// starts. This is the hook behind streaming per-pass stats (the HTTP
	// service's JSON-lines mode); the callback must be fast and must not
	// retain the PassStats slice internals. Because a Pipeline may be
	// shared by many RunContext calls at once, a single Progress callback
	// can be invoked concurrently from different runs — install a per-run
	// callback on a copy of the pipeline when attribution matters
	// (RunBatch does exactly that for per-job progress).
	Progress func(PassStats)
}

// PipelineStats reports one pipeline run.
type PipelineStats struct {
	Script      string `json:"script"`
	Iterations  int    `json:"iterations"` // completed script rounds
	Converged   bool   `json:"converged"`  // stopped by fixpoint, not by MaxIterations
	SizeBefore  int    `json:"size_before"`
	SizeAfter   int    `json:"size_after"`
	DepthBefore int    `json:"depth_before"`
	DepthAfter  int    `json:"depth_after"`
	CacheHits   int    `json:"cache_hits"`   // summed over rewrite passes
	CacheMisses int    `json:"cache_misses"` // summed over rewrite passes
	// Choice-aware extraction totals, summed over the run's extraction
	// passes (zero for greedy-only scripts).
	Choices      int           `json:"choices,omitempty"`
	ExtractSaved int           `json:"extract_saved,omitempty"`
	Passes       []PassStats   `json:"passes"`
	Elapsed      time.Duration `json:"elapsed_ns"`
}

// CacheHitRate returns the fraction of NPN lookups served by the cache.
func (s PipelineStats) CacheHitRate() float64 {
	if s.CacheHits+s.CacheMisses == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(s.CacheHits+s.CacheMisses)
}

func (s PipelineStats) String() string {
	return fmt.Sprintf("%s: size %d→%d, depth %d→%d, %d iterations (converged=%v), cache %.0f%% of %d, %v",
		s.Script, s.SizeBefore, s.SizeAfter, s.DepthBefore, s.DepthAfter,
		s.Iterations, s.Converged, 100*s.CacheHitRate(), s.CacheHits+s.CacheMisses, s.Elapsed)
}

// New builds a custom pipeline over the given passes with default
// convergence settings.
func New(passes ...Pass) *Pipeline {
	return &Pipeline{Name: "custom", Passes: passes}
}

// NewScript builds a pipeline from pass names (see PassByName).
func NewScript(name string, passNames ...string) (*Pipeline, error) {
	p := &Pipeline{Name: name}
	for _, pn := range passNames {
		pass, ok := PassByName(pn)
		if !ok {
			return nil, fmt.Errorf("engine: unknown pass %q", pn)
		}
		p.Passes = append(p.Passes, pass)
	}
	return p, nil
}

// presets are the named scripts shipped with the engine.
func presets() map[string]func() *Pipeline {
	return map[string]func() *Pipeline{
		// resyn interleaves cheap and aggressive size passes with a
		// budgeted depth restructuring, in the spirit of ABC's resyn
		// scripts and the paper's closing remark on repeated hashing.
		"resyn": func() *Pipeline {
			return &Pipeline{
				Name: "resyn",
				Passes: []Pass{
					RewritePass(rewrite.TF),
					DepthPass(depthopt.Options{SizeFactor: 1.2, MaxPasses: 10}),
					RewritePass(rewrite.BF),
					RewritePass(rewrite.TFD),
				},
			}
		},
		// size runs the strongest size variant to fixpoint.
		"size": func() *Pipeline {
			return &Pipeline{Name: "size", Passes: []Pass{RewritePass(rewrite.BF)}}
		},
		// depth alternates the depth optimizer with depth-preserving
		// hashing to recover the size it spends.
		"depth": func() *Pipeline {
			return &Pipeline{
				Name:      "depth",
				Objective: ObjectiveDepth,
				Passes: []Pass{
					DepthPass(depthopt.Options{SizeFactor: 8, MaxPasses: 40}),
					RewritePass(rewrite.TD),
				},
			}
		},
		// quick is one TF pass: the cheapest useful cleanup.
		"quick": func() *Pipeline {
			return &Pipeline{Name: "quick", Passes: []Pass{RewritePass(rewrite.TF)}, MaxIterations: 1}
		},
		// resyn5 is resyn with a trailing K = 5 hashing pass: the same
		// rounds, then five-leaf cuts resolved through the on-demand
		// exact-synthesis store. Rewrite passes never grow the graph, so
		// a resyn5 round is never worse than the resyn round it extends
		// (the exact5-smoke CI job pins this on the suite).
		"resyn5": func() *Pipeline {
			return &Pipeline{
				Name: "resyn5",
				Passes: []Pass{
					RewritePass(rewrite.TF),
					DepthPass(depthopt.Options{SizeFactor: 1.2, MaxPasses: 10}),
					RewritePass(rewrite.BF),
					RewritePass(rewrite.TFD),
					RewritePass(rewrite.TF5),
				},
			}
		},
		// size5 extends the strongest size script with the K = 5 pass.
		"size5": func() *Pipeline {
			return &Pipeline{Name: "size5", Passes: []Pass{
				RewritePass(rewrite.BF),
				RewritePass(rewrite.TF5),
			}}
		},
		// resyn-x is resyn5 with the greedy top-down passes upgraded to
		// choice-aware extraction: the same rounds, but the TF and TF5
		// passes record full candidate menus and commit a globally
		// selected cover (never worse than their greedy twins, so a
		// resyn-x round is never worse than the resyn5 round it mirrors;
		// the extract-smoke CI job pins this on the suite).
		"resyn-x": func() *Pipeline {
			return &Pipeline{
				Name: "resyn-x",
				Passes: []Pass{
					RewritePass(rewrite.TFx),
					DepthPass(depthopt.Options{SizeFactor: 1.2, MaxPasses: 10}),
					RewritePass(rewrite.BF),
					RewritePass(rewrite.TFD),
					RewritePass(rewrite.TF5x),
				},
			}
		},
		// depth-x inserts a depth-objective extraction between the depth
		// optimizer and the depth-preserving recovery pass.
		"depth-x": func() *Pipeline {
			return &Pipeline{
				Name:      "depth-x",
				Objective: ObjectiveDepth,
				Passes: []Pass{
					DepthPass(depthopt.Options{SizeFactor: 8, MaxPasses: 40}),
					RewritePass(rewrite.Txd),
					RewritePass(rewrite.TD),
				},
			}
		},
	}
}

// PresetVariant names the widened twins of a base preset: the K = 5
// extension and the choice-aware extraction script. Empty fields mean
// the preset has no such twin.
type PresetVariant struct {
	Five    string
	Extract string
}

// PresetVariants is the single source of truth for mapping base presets
// to their twins; the CLIs' -k 5 and -extract flags and the HTTP
// service resolve through WidenScript, which consults this table.
func PresetVariants() map[string]PresetVariant {
	return map[string]PresetVariant{
		"resyn": {Five: "resyn5", Extract: "resyn-x"},
		"size":  {Five: "size5"},
		"depth": {Extract: "depth-x"},
	}
}

// WidenScript maps a script name to the variant selected by the cut
// width (4 or 5) and the choice-aware extraction toggle. Presets
// resolve through PresetVariants — an extraction twin already ends in
// the widest pass it supports, so it subsumes k = 5 — while pass names
// widen by suffix ("TF" → "TF5" → "TF5x"). Already-suffixed names pass
// through. The result is validated against Preset, so the error lists
// the valid scripts.
func WidenScript(script string, k int, withExtract bool) (string, error) {
	switch k {
	case 0, 4, 5:
	default:
		return "", fmt.Errorf("unsupported cut width %d (want 4 or 5)", k)
	}
	out := script
	if v, ok := PresetVariants()[script]; ok {
		switch {
		case withExtract:
			out = v.Extract
		case k == 5:
			out = v.Five
		}
		if out == "" {
			return "", wideningError(script, withExtract)
		}
	} else {
		if k == 5 && !strings.HasSuffix(out, "5") && !strings.HasSuffix(out, "5x") {
			out += "5"
		}
		if withExtract && !strings.HasSuffix(out, "x") && !strings.HasSuffix(out, "xd") {
			out += "x"
		}
	}
	if _, err := Preset(out); err != nil {
		return "", wideningError(script, withExtract)
	}
	return out, nil
}

func wideningError(script string, withExtract bool) error {
	if withExtract {
		return fmt.Errorf("script %q has no choice-aware variant (have %v)", script, PresetNames())
	}
	return fmt.Errorf("script %q has no 5-input variant (have %v)", script, PresetNames())
}

// Preset returns a named script. Besides the composite scripts ("resyn",
// "size", "depth", "quick"), every pass name accepted by PassByName is a
// single-pass run-to-convergence script.
func Preset(name string) (*Pipeline, error) {
	if f, ok := presets()[name]; ok {
		return f(), nil
	}
	if pass, ok := PassByName(name); ok {
		return &Pipeline{Name: name, Passes: []Pass{pass}}, nil
	}
	return nil, fmt.Errorf("engine: unknown script %q (have %v)", name, PresetNames())
}

// PresetNames lists every name Preset accepts, sorted. This is the
// single source of truth for "what scripts exist": the CLIs' error
// messages and the HTTP service's GET /v1/scripts both derive from it,
// so a preset added here appears everywhere at once.
func PresetNames() []string {
	var names []string
	for n := range passRegistry() {
		names = append(names, n)
	}
	for n := range presets() {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Run optimizes m with the script and returns the best graph seen
// together with the run statistics. m itself is never modified.
func (p *Pipeline) Run(m *mig.MIG) (*mig.MIG, PipelineStats, error) {
	return p.RunContext(context.Background(), m)
}

// RunContext is Run with cancellation between passes.
func (p *Pipeline) RunContext(ctx context.Context, m *mig.MIG) (*mig.MIG, PipelineStats, error) {
	if len(p.Passes) == 0 {
		return nil, PipelineStats{}, fmt.Errorf("engine: pipeline %q has no passes", p.Name)
	}
	d := p.DB
	if d == nil {
		var err error
		if d, err = db.Load(); err != nil {
			return nil, PipelineStats{}, err
		}
	}
	cache := p.Cache
	if cache == nil {
		cache = db.NewCache()
	}
	exact5 := p.Exact5
	if exact5 == nil {
		exact5 = db.NewOnDemand(db.OnDemandOptions{})
	}

	start := time.Now()
	st := PipelineStats{
		Script:     p.Name,
		SizeBefore: m.Size(), DepthBefore: m.Depth(),
	}
	ctx, pspan := obs.Start(ctx, "pipeline")
	pspan.SetStr("script", p.Name)
	pspan.SetInt("size_before", int64(st.SizeBefore))
	defer func() {
		pspan.SetInt("size_after", int64(st.SizeAfter))
		pspan.SetInt("iterations", int64(st.Iterations))
		pspan.End()
	}()
	env := passEnv{
		ctx: ctx, d: d, cache: cache, exact5: exact5,
		ws: rewrite.NewWorkspace(), workers: p.Workers,
		extract: p.Extract, extractObj: p.ExtractObjective,
	}

	maxIter := p.MaxIterations
	if maxIter <= 0 {
		maxIter = 10
	}
	cur := m
	best, bestSize, bestDepth := m, st.SizeBefore, st.DepthBefore
	for st.Iterations < maxIter {
		if err := ctx.Err(); err != nil {
			return nil, PipelineStats{}, err
		}
		st.Iterations++
		// Every pass reports the size/depth of its result, so the round's
		// final cost is read off the last PassStats instead of re-walking
		// the graph twice per round.
		size, depth := bestSize, bestDepth
		err := func() error {
			ictx, ispan := obs.Start(ctx, "iteration")
			defer ispan.End()
			ispan.SetInt("round", int64(st.Iterations))
			ienv := env
			ienv.ctx = ictx
			for _, pass := range p.Passes {
				if err := ctx.Err(); err != nil {
					return err
				}
				next, ps := p.runPass(st.Iterations, pass, cur, ienv)
				if p.PassCheck != nil {
					if err := p.PassCheck(ps.Name, st.Iterations, cur, next); err != nil {
						return err
					}
				}
				st.Passes = append(st.Passes, ps)
				st.CacheHits += ps.CacheHits
				st.CacheMisses += ps.CacheMisses
				st.Choices += ps.Choices
				st.ExtractSaved += ps.ExtractSaved
				cur, size, depth = next, ps.SizeAfter, ps.DepthAfter
			}
			return nil
		}()
		if err != nil {
			return nil, PipelineStats{}, err
		}
		if p.Objective.better(size, depth, bestSize, bestDepth) {
			best, bestSize, bestDepth = cur, size, depth
			continue
		}
		// Fixpoint: a whole round without improvement. Later rounds would
		// start from the same graph and repeat the same result.
		st.Converged = true
		break
	}
	st.SizeAfter, st.DepthAfter = bestSize, bestDepth
	st.Elapsed = time.Since(start)
	return best, st, nil
}

// runPass executes one pass inside a "pass" span. The span is ended
// before the user Progress callback is invoked — the callback's cost is
// not the pass's cost — and a deferred End (idempotent) guarantees a
// panicking callback can never leave the span open.
func (p *Pipeline) runPass(iter int, pass Pass, cur *mig.MIG, env passEnv) (*mig.MIG, PassStats) {
	ctx, span := obs.Start(env.ctx, "pass")
	defer span.End()
	span.SetStr("name", pass.Name())
	span.SetInt("iteration", int64(iter))
	// The pass label stacks on the job's circuit/preset labels (pprof.Do
	// nests), so a CPU profile of a busy server slices down to one pass
	// of one circuit under one preset.
	var (
		next *mig.MIG
		ps   PassStats
	)
	pprof.Do(ctx, pprof.Labels("pass", pass.Name()), func(ctx context.Context) {
		env.ctx = ctx
		next, ps = pass.run(cur, env)
	})
	ps.Iteration = iter
	span.SetInt("size_before", int64(ps.SizeBefore))
	span.SetInt("size_after", int64(ps.SizeAfter))
	span.SetInt("replacements", int64(ps.Replacements))
	span.End()
	if p.Progress != nil {
		p.Progress(ps)
	}
	return next, ps
}
