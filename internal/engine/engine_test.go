package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"mighash/internal/circuits"
	"mighash/internal/db"
	"mighash/internal/depthopt"
	"mighash/internal/mig"
	"mighash/internal/rewrite"
	"mighash/internal/tt"
)

func loadDB(t testing.TB) *db.DB {
	t.Helper()
	d, err := db.Load()
	if err != nil {
		t.Fatalf("embedded database unavailable (run cmd/migdb): %v", err)
	}
	return d
}

// randomMIG builds a pseudo-random DAG (same generator as the rewrite
// tests) so engine tests stay fast and self-contained.
func randomMIG(rng *rand.Rand, pis, gates, pos int) *mig.MIG {
	m := mig.New(pis)
	sigs := []mig.Lit{mig.Const0}
	for i := 0; i < pis; i++ {
		sigs = append(sigs, m.Input(i))
	}
	for g := 0; g < gates; g++ {
		a := sigs[rng.Intn(len(sigs))].NotIf(rng.Intn(4) == 0)
		b := sigs[rng.Intn(len(sigs))].NotIf(rng.Intn(4) == 0)
		c := sigs[rng.Intn(len(sigs))].NotIf(rng.Intn(4) == 0)
		sigs = append(sigs, m.Maj(a, b, c))
	}
	for o := 0; o < pos; o++ {
		n := len(sigs)
		if n > 8 {
			n = 8
		}
		m.AddOutput(sigs[len(sigs)-1-rng.Intn(n)].NotIf(rng.Intn(2) == 0))
	}
	return m
}

// startMax returns the prepared Max benchmark (the smallest arithmetic
// workload), shared across tests.
var (
	startOnce sync.Once
	startM    *mig.MIG
)

func startMax(t testing.TB) *mig.MIG {
	t.Helper()
	startOnce.Do(func() {
		spec, _ := circuits.ByName("Max")
		m := spec.Build()
		startM, _ = depthopt.Optimize(m, depthopt.Options{SizeFactor: 8, MaxPasses: 40})
	})
	return startM
}

// TestPipelineConvergesToFixpoint: the pipeline stops when a full script
// round no longer improves, the reported best never loses to the input,
// and the fixpoint is real — one more pass recovers nothing.
func TestPipelineConvergesToFixpoint(t *testing.T) {
	d := loadDB(t)
	p, err := Preset("size")
	if err != nil {
		t.Fatal(err)
	}
	p.DB = d
	m := startMax(t)
	res, st, err := p.Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Errorf("pipeline hit the iteration cap before converging: %v", st)
	}
	if st.SizeAfter > st.SizeBefore || res.Size() != st.SizeAfter {
		t.Errorf("best result inconsistent: %v vs size %d", st, res.Size())
	}
	if st.Iterations < 2 {
		t.Errorf("converged in %d iterations; fixpoint needs a non-improving round", st.Iterations)
	}
	again, ast := rewrite.Run(res, d, rewrite.BF)
	if ast.SizeAfter < res.Size() {
		t.Errorf("not a fixpoint: extra BF pass shrank %d → %d", res.Size(), ast.SizeAfter)
	}
	_ = again
}

// TestPipelineCacheHitsOnSecondIteration is the acceptance criterion for
// the NPN cut-cache: iteration 2 re-canonicalizes mostly functions that
// iteration 1 already resolved, so its passes must report cache hits.
func TestPipelineCacheHitsOnSecondIteration(t *testing.T) {
	d := loadDB(t)
	p, _ := Preset("size")
	p.DB = d
	_, st, err := p.Run(startMax(t))
	if err != nil {
		t.Fatal(err)
	}
	var hits2 int
	for _, ps := range st.Passes {
		if ps.Iteration == 2 {
			hits2 += ps.CacheHits
		}
	}
	if hits2 == 0 {
		t.Errorf("no cache hits on iteration 2: %+v", st.Passes)
	}
	if st.CacheHits+st.CacheMisses == 0 {
		t.Error("pipeline recorded no cache traffic at all")
	}
}

// TestCachedRewriteMatchesUncached: threading the cache through a rewrite
// pass must not change its outcome — identical stats and a simulation-
// verified identical function.
func TestCachedRewriteMatchesUncached(t *testing.T) {
	d := loadDB(t)
	rng := rand.New(rand.NewSource(23))
	for round := 0; round < 6; round++ {
		m := randomMIG(rng, 4+rng.Intn(3), 40+rng.Intn(80), 2)
		want := m.Simulate()
		for _, opt := range []rewrite.Options{rewrite.TF, rewrite.BF, rewrite.TD} {
			plain, pst := rewrite.Run(m, d, opt)
			cached := opt
			cached.Cache = db.NewCache()
			got, cst := rewrite.Run(m, d, cached)
			if got.Size() != plain.Size() || got.Depth() != plain.Depth() ||
				cst.Replacements != pst.Replacements {
				t.Fatalf("round %d %s: cached rewrite diverged: %v vs %v", round, pst.Variant, cst, pst)
			}
			if cst.CacheHits+cst.CacheMisses == 0 {
				t.Fatalf("round %d %s: cache saw no traffic", round, pst.Variant)
			}
			sim := got.Simulate()
			for i := range want {
				if sim[i] != want[i] {
					t.Fatalf("round %d %s: cached rewrite changed output %d", round, pst.Variant, i)
				}
			}
		}
	}
}

// TestCachedRewriteCEC re-checks cache soundness on a real workload with
// the SAT equivalence checker.
func TestCachedRewriteCEC(t *testing.T) {
	if testing.Short() {
		t.Skip("CEC on Max is slow")
	}
	d := loadDB(t)
	m := startMax(t)
	opt := rewrite.BF
	opt.Cache = db.NewCache()
	res, st := rewrite.Run(m, d, opt)
	if st.CacheMisses == 0 {
		t.Fatal("cache saw no traffic")
	}
	eq, ce, err := mig.Equivalent(m, res, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatalf("cached rewrite changed the function, counterexample %v", ce)
	}
}

// normalize strips wall-clock fields so runs can be compared bytewise.
func normalize(results []Result) []Result {
	out := make([]Result, len(results))
	for i, r := range results {
		r.Stats.Elapsed = 0
		passes := make([]PassStats, len(r.Stats.Passes))
		for j, ps := range r.Stats.Passes {
			ps.Elapsed = 0
			passes[j] = ps
		}
		r.Stats.Passes = passes
		out[i] = r
	}
	return out
}

// TestRunBatchDeterministicAcrossWorkers: the per-job stats (including
// cache counters, thanks to per-job private caches) must be byte-identical
// at any worker count, in job order.
func TestRunBatchDeterministicAcrossWorkers(t *testing.T) {
	d := loadDB(t)
	rng := rand.New(rand.NewSource(41))
	var jobs []Job
	for i := 0; i < 6; i++ {
		jobs = append(jobs, Job{
			Name: string(rune('a' + i)),
			M:    randomMIG(rng, 6+rng.Intn(6), 120+rng.Intn(120), 3),
		})
	}
	p, _ := Preset("resyn")
	p.DB = d
	var want []byte
	for _, workers := range []int{1, 2, 8} {
		results, err := RunBatch(context.Background(), p, jobs, BatchOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("workers=%d job %s: %v", workers, r.Name, r.Err)
			}
			if r.Name != jobs[i].Name {
				t.Fatalf("workers=%d: result %d is %q, want %q (ordering)", workers, i, r.Name, jobs[i].Name)
			}
		}
		got, err := json.Marshal(normalize(results))
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
		} else if string(got) != string(want) {
			t.Errorf("workers=%d produced different stats:\n%s\nvs workers=1:\n%s", workers, got, want)
		}
	}
}

// TestRunBatchSharedCacheSameGraphs: sharing one cache across workers
// changes only hit/miss attribution, never the optimized graphs.
func TestRunBatchSharedCacheSameGraphs(t *testing.T) {
	d := loadDB(t)
	rng := rand.New(rand.NewSource(43))
	var jobs []Job
	for i := 0; i < 4; i++ {
		jobs = append(jobs, Job{Name: "j", M: randomMIG(rng, 8, 150, 2)})
	}
	p, _ := Preset("size")
	p.DB = d
	plain, err := RunBatch(context.Background(), p, jobs, BatchOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	shared, err := RunBatch(context.Background(), p, jobs, BatchOptions{Workers: 4, SharedCache: db.NewCache()})
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		a, b := plain[i], shared[i]
		if a.M.Size() != b.M.Size() || a.M.Depth() != b.M.Depth() {
			t.Errorf("job %d: shared cache changed the result: %v vs %v", i, a.Stats, b.Stats)
		}
	}
}

// TestRunBatchCancellation: a cancelled context aborts promptly, marking
// unfinished jobs with the context error.
func TestRunBatchCancellation(t *testing.T) {
	d := loadDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p, _ := Preset("size")
	p.DB = d
	jobs := []Job{{Name: "x", M: startMax(t)}}
	results, err := RunBatch(ctx, p, jobs, BatchOptions{Workers: 2})
	if err == nil {
		t.Fatal("RunBatch ignored the cancelled context")
	}
	if results[0].Err == nil {
		t.Error("cancelled job reported no error")
	}
}

// TestRunBatchHammersSharedState is the -race stress test: many workers,
// shared cache, and concurrent direct cache lookups.
func TestRunBatchHammersSharedState(t *testing.T) {
	d := loadDB(t)
	cache := db.NewCache()
	rng := rand.New(rand.NewSource(47))
	var jobs []Job
	for i := 0; i < 12; i++ {
		jobs = append(jobs, Job{Name: "h", M: randomMIG(rng, 6, 80, 2)})
	}
	p, _ := Preset("quick")
	p.DB = d
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 5000; i++ {
				f := randomTT4(r)
				d.LookupCached(f, cache)
			}
		}(int64(w))
	}
	if _, err := RunBatch(context.Background(), p, jobs, BatchOptions{Workers: runtime.NumCPU() + 2, SharedCache: cache}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

// TestSplitOutputsPreservesCones: every extracted cone computes exactly
// the output it was split from, and batch-optimizing the cones keeps it
// that way.
func TestSplitOutputsPreservesCones(t *testing.T) {
	d := loadDB(t)
	rng := rand.New(rand.NewSource(53))
	m := randomMIG(rng, 6, 60, 5)
	want := m.Simulate()
	jobs := SplitOutputs(m, "rand")
	if len(jobs) != m.NumPOs() {
		t.Fatalf("%d jobs for %d outputs", len(jobs), m.NumPOs())
	}
	for i, j := range jobs {
		if got := j.M.Simulate()[0]; got != want[i] {
			t.Fatalf("cone %d computes %v, want %v", i, got, want[i])
		}
	}
	p, _ := Preset("size")
	p.DB = d
	results, err := RunBatch(context.Background(), p, jobs, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if got := r.M.Simulate()[0]; got != want[i] {
			t.Fatalf("optimized cone %d computes %v, want %v", i, got, want[i])
		}
	}
}

// TestPresets: every advertised script resolves and rejects garbage.
func TestPresets(t *testing.T) {
	for _, name := range PresetNames() {
		p, err := Preset(name)
		if err != nil {
			t.Errorf("preset %q: %v", name, err)
			continue
		}
		if len(p.Passes) == 0 {
			t.Errorf("preset %q has no passes", name)
		}
	}
	if _, err := Preset("nope"); err == nil {
		t.Error("unknown script accepted")
	}
	if _, err := NewScript("s", "TF", "nope"); err == nil {
		t.Error("unknown pass accepted")
	}
	if p, err := NewScript("s", "TF", "depthopt", "BF"); err != nil || len(p.Passes) != 3 {
		t.Errorf("NewScript failed: %v %v", p, err)
	}
}

// TestEmptyPipeline covers the error path.
func TestEmptyPipeline(t *testing.T) {
	p := &Pipeline{Name: "empty"}
	if _, _, err := p.Run(mig.New(2)); err == nil {
		t.Fatal("empty pipeline ran")
	}
}

func randomTT4(r *rand.Rand) tt.TT {
	return tt.New(4, r.Uint64()&0xFFFF)
}

// TestPipelineIntraGraphWorkersDeterministic pins the contract of
// Pipeline.Workers: the optimized graph of a full multi-pass script is
// bit-identical for every intra-graph worker count.
func TestPipelineIntraGraphWorkersDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	m := randomMIG(rng, 12, 400, 4)
	render := func(g *mig.MIG) string {
		var buf bytes.Buffer
		if err := g.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	var refText string
	var refStats PipelineStats
	for i, workers := range []int{0, 2, 8} {
		p, err := Preset("resyn")
		if err != nil {
			t.Fatal(err)
		}
		p.Workers = workers
		best, st, err := p.Run(m)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			refText, refStats = render(best), st
			continue
		}
		if got := render(best); got != refText {
			t.Errorf("workers=%d produced a different graph than serial", workers)
		}
		if st.SizeAfter != refStats.SizeAfter || st.DepthAfter != refStats.DepthAfter {
			t.Errorf("workers=%d: size/depth %d/%d, want %d/%d",
				workers, st.SizeAfter, st.DepthAfter, refStats.SizeAfter, refStats.DepthAfter)
		}
	}
}

// TestRunBatchCompletedBeforeCancelReturnsNil is the regression test for
// the server's spurious 504: a cancellation that lands after every job
// already completed cleanly must not fail the batch — the result set is
// complete, so RunBatch returns nil (and the results carry no errors).
func TestRunBatchCompletedBeforeCancelReturnsNil(t *testing.T) {
	d := loadDB(t)
	rng := rand.New(rand.NewSource(67))
	p, _ := Preset("quick") // one pass, one iteration: no ctx check after it
	p.DB = d
	jobs := []Job{{Name: "done", M: randomMIG(rng, 6, 60, 2)}}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	results, err := RunBatch(ctx, p, jobs, BatchOptions{
		Workers: 1,
		// Progress fires synchronously after the only pass of the only
		// job, so the cancellation is guaranteed to be visible by the
		// time RunBatch does its final context check.
		Progress: func(int, PassStats) { cancel() },
	})
	if err != nil {
		t.Fatalf("complete batch reported batch-level error: %v", err)
	}
	if results[0].Err != nil {
		t.Fatalf("complete job reported error: %v", results[0].Err)
	}
	if results[0].M == nil {
		t.Fatal("complete job carries no graph")
	}
}

// TestRunBatchCancelStillFailsLostJobs: the nil-on-complete relaxation
// must not swallow real cancellations — a context cancelled before any
// job starts still fails the batch.
func TestRunBatchCancelStillFailsLostJobs(t *testing.T) {
	d := loadDB(t)
	rng := rand.New(rand.NewSource(68))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p, _ := Preset("quick")
	p.DB = d
	jobs := []Job{{Name: "lost", M: randomMIG(rng, 6, 60, 2)}}
	if _, err := RunBatch(ctx, p, jobs, BatchOptions{Workers: 1}); err == nil {
		t.Fatal("batch with lost jobs returned nil")
	}
}

// renderBatch serializes every result graph so warm and cold runs can be
// compared bit-for-bit.
func renderBatch(t *testing.T, results []Result) []string {
	t.Helper()
	out := make([]string, len(results))
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %s: %v", r.Name, r.Err)
		}
		var buf bytes.Buffer
		if err := r.M.WriteBENCH(&buf); err != nil {
			t.Fatal(err)
		}
		out[i] = buf.String()
	}
	return out
}

func sumCache(results []Result) (hits, misses int) {
	for _, r := range results {
		hits += r.Stats.CacheHits
		misses += r.Stats.CacheMisses
	}
	return
}

// TestRunBatchCacheFileWarmStart is the persistence property test: a
// warm-started batch produces bit-identical optimized MIGs to the cold
// run — only the hit/miss split may shift — and the warm run's hit rate
// is strictly higher. A corrupted snapshot degrades to a cold cache with
// identical graphs rather than failing the batch.
func TestRunBatchCacheFileWarmStart(t *testing.T) {
	d := loadDB(t)
	rng := rand.New(rand.NewSource(71))
	jobs := []Job{{Name: "Max", M: startMax(t)}}
	for i := 0; i < 3; i++ {
		jobs = append(jobs, Job{
			Name: string(rune('p' + i)),
			M:    randomMIG(rng, 6+rng.Intn(4), 150+rng.Intn(150), 3),
		})
	}
	p, _ := Preset("size")
	p.DB = d
	path := filepath.Join(t.TempDir(), "npn.cache")

	cold, err := RunBatch(context.Background(), p, jobs, BatchOptions{Workers: 2, CacheFile: path})
	if err != nil {
		t.Fatal(err)
	}
	coldGraphs := renderBatch(t, cold)
	coldHits, coldMisses := sumCache(cold)
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("batch did not leave a snapshot: %v", err)
	}

	warm, err := RunBatch(context.Background(), p, jobs, BatchOptions{Workers: 2, CacheFile: path})
	if err != nil {
		t.Fatal(err)
	}
	warmGraphs := renderBatch(t, warm)
	warmHits, warmMisses := sumCache(warm)
	for i := range coldGraphs {
		if warmGraphs[i] != coldGraphs[i] {
			t.Errorf("job %s: warm-started graph differs from cold run", jobs[i].Name)
		}
	}
	coldRate := float64(coldHits) / float64(coldHits+coldMisses)
	warmRate := float64(warmHits) / float64(warmHits+warmMisses)
	if warmRate <= coldRate {
		t.Errorf("warm hit rate %.4f not above cold %.4f (hits %d→%d, misses %d→%d)",
			warmRate, coldRate, coldHits, warmHits, coldMisses, warmMisses)
	}

	// Scribble over the snapshot: the next batch must start cold (logged,
	// not fatal) and still produce the same graphs.
	if err := os.WriteFile(path, []byte("this is not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	recovered, err := RunBatch(context.Background(), p, jobs, BatchOptions{Workers: 2, CacheFile: path})
	if err != nil {
		t.Fatalf("batch with corrupt snapshot failed: %v", err)
	}
	for i, g := range renderBatch(t, recovered) {
		if g != coldGraphs[i] {
			t.Errorf("job %s: corrupt-snapshot run diverged from cold run", jobs[i].Name)
		}
	}
	// …and it must have replaced the corrupt file with a valid snapshot.
	if _, err := db.NewCache().LoadFile(path, d); err != nil {
		t.Fatalf("snapshot after corrupt warm-start is not loadable: %v", err)
	}
}
