package engine

import (
	"bytes"
	"testing"

	"mighash/internal/circuits"
	"mighash/internal/mig"
	"mighash/internal/sim/diff"
)

// TestExtractionSuiteMetamorphic is the metamorphic property behind the
// choice-aware rewriter, checked on the real benchmark suite rather
// than random graphs: on every circuit the extraction pass (TFx) must
// (1) preserve the function — refuted by the word-parallel differential
// harness everywhere, and proven by the SAT ladder on the two circuits
// cheap enough to prove; (2) never end larger than its greedy twin (TF)
// on the same input — the rewriter commits both the greedy decision
// sequence and the extracted cover and keeps the better graph, so a
// regression here means that guarantee rotted; and (3) be bit-identical
// at any worker count — choices are recorded per node and the cover is
// extracted serially, so parallelism must not leak into the result.
func TestExtractionSuiteMetamorphic(t *testing.T) {
	if testing.Short() {
		t.Skip("suite-wide extraction sweep is not a -short test")
	}
	render := func(g *mig.MIG) string {
		var buf bytes.Buffer
		if err := g.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	for _, spec := range circuits.All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			m := spec.Build()
			run := func(pass string, workers int) (*mig.MIG, PipelineStats) {
				p, err := Preset(pass)
				if err != nil {
					t.Fatal(err)
				}
				p.Workers = workers
				p.MaxIterations = 1
				out, st, err := p.Run(m)
				if err != nil {
					t.Fatalf("%s (workers %d): %v", pass, workers, err)
				}
				return out, st
			}
			greedy, _ := run("TF", 1)
			x1, st := run("TFx", 1)
			x4, _ := run("TFx", 4)
			if st.Choices == 0 {
				t.Error("extraction pass recorded no choices")
			}
			if render(x1) != render(x4) {
				t.Error("TFx is not bit-identical across worker counts")
			}
			if x1.Size() > greedy.Size() {
				t.Errorf("extraction ended worse than greedy: %d > %d gates",
					x1.Size(), greedy.Size())
			}
			h := diff.New(diff.Options{})
			if err := h.Check(m, x1); err != nil {
				t.Errorf("extraction result not sim-equivalent to input: %v", err)
			}
			// The SAT rung on the full suite would dominate the whole test
			// binary; proving the two structurally distinct cheap circuits
			// (a carry chain and a comparator tree) keeps the ladder honest.
			if spec.Name == "Adder" || spec.Name == "Max" {
				eq, ce, err := mig.Equivalent(m, x1, 0)
				if err != nil {
					t.Fatalf("equivalence check failed to run: %v", err)
				}
				if !eq {
					t.Errorf("SAT refuted extraction result, counterexample %v", ce)
				}
			}
		})
	}
}
