package engine

import (
	"testing"

	"mighash/internal/circuits"
	"mighash/internal/mig"
	"mighash/internal/sim/diff"
)

// TestPresetsMetamorphic is the metamorphic property behind "run it
// again": re-optimizing an already-optimized circuit must preserve its
// function (checked pass-by-pass and end-to-end by the differential
// harness) and never regress the preset's objective — size for the size
// scripts, depth for the depth script. The pipeline guarantees the
// latter by construction (the best graph starts as the input); this
// test keeps the guarantee from rotting.
func TestPresetsMetamorphic(t *testing.T) {
	spec, ok := circuits.ByName("Adder")
	if !ok {
		t.Fatal("suite circuit Adder missing")
	}
	m0 := spec.Build()
	for _, name := range []string{"resyn", "size", "depth", "quick", "resyn5", "size5", "resyn-x", "depth-x"} {
		t.Run(name, func(t *testing.T) {
			h := diff.New(diff.Options{})
			run := func(m *mig.MIG) *mig.MIG {
				p, err := Preset(name)
				if err != nil {
					t.Fatal(err)
				}
				p.PassCheck = h.PassCheck
				out, _, err := p.Run(m)
				if err != nil {
					t.Fatalf("pipeline failed differential verification: %v", err)
				}
				return out
			}
			m1 := run(m0)
			m2 := run(m1)
			for _, pair := range []struct {
				label string
				a, b  *mig.MIG
			}{{"input vs once", m0, m1}, {"once vs twice", m1, m2}, {"input vs twice", m0, m2}} {
				if err := h.Check(pair.a, pair.b); err != nil {
					t.Errorf("%s not sim-equivalent: %v", pair.label, err)
				}
			}
			if name == "depth" || name == "depth-x" {
				if m2.Depth() > m1.Depth() || m1.Depth() > m0.Depth() {
					t.Errorf("depth grew across reruns: %d -> %d -> %d", m0.Depth(), m1.Depth(), m2.Depth())
				}
			} else {
				if m2.Size() > m1.Size() || m1.Size() > m0.Size() {
					t.Errorf("size grew across reruns: %d -> %d -> %d", m0.Size(), m1.Size(), m2.Size())
				}
			}
			if st := h.Stats(); st.Checks == 0 || st.Failures != 0 {
				t.Errorf("harness stats %+v", st)
			}
		})
	}
}
