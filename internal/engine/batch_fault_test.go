package engine

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"mighash/internal/fault"
	"mighash/internal/mig"
)

// migText renders a graph in its canonical text form — the bit-identity
// witness these tests compare sibling results with.
func migText(t *testing.T, m *mig.MIG) string {
	t.Helper()
	var sb strings.Builder
	if err := m.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestRunBatchRecoversPanickingPass: a deliberately panicking custom
// pass fails its own job in-band — Result.Err wraps ErrJobPanic and
// carries the panic value — while sibling jobs complete bit-identical
// to a batch that never saw the panic.
func TestRunBatchRecoversPanickingPass(t *testing.T) {
	d := loadDB(t)
	rng := rand.New(rand.NewSource(7))
	jobs := []Job{
		{Name: "ok0", M: randomMIG(rng, 5, 60, 1)},
		{Name: "boom", M: randomMIG(rng, 5, 60, 2)},
		{Name: "ok1", M: randomMIG(rng, 5, 60, 1)},
	}
	// Identity for every graph but the two-output one, which it blows up
	// from deep inside the pipeline.
	landmine := Pass{name: "landmine", run: func(m *mig.MIG, env passEnv) (*mig.MIG, PassStats) {
		if m.NumPOs() == 2 {
			panic("wired to blow")
		}
		return m, PassStats{
			Name:       "landmine",
			SizeBefore: m.Size(), SizeAfter: m.Size(),
			DepthBefore: m.Depth(), DepthAfter: m.Depth(),
		}
	}}
	bf, ok := PassByName("BF")
	if !ok {
		t.Fatal("BF pass missing")
	}
	p := &Pipeline{Name: "chaos", Passes: []Pass{bf, landmine}, DB: d}
	clean := &Pipeline{Name: "clean", Passes: []Pass{bf}, DB: d}

	results, err := RunBatch(context.Background(), p, jobs, BatchOptions{Workers: 3})
	if err != nil {
		t.Fatalf("RunBatch = %v; a panicking job must fail in-band, not the batch", err)
	}
	want, err := RunBatch(context.Background(), clean, jobs, BatchOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(results[1].Err, ErrJobPanic) {
		t.Fatalf("panicking job's Err = %v, want ErrJobPanic", results[1].Err)
	}
	if msg := results[1].Err.Error(); !strings.Contains(msg, "wired to blow") || !strings.Contains(msg, "panicked") {
		t.Fatalf("panic error %q should carry the panic value", msg)
	}
	if results[1].M != nil {
		t.Fatal("panicking job returned a graph")
	}
	for _, i := range []int{0, 2} {
		if results[i].Err != nil {
			t.Fatalf("sibling job %s failed: %v", results[i].Name, results[i].Err)
		}
		if migText(t, results[i].M) != migText(t, want[i].M) {
			t.Fatalf("sibling job %s is not bit-identical to the panic-free run", results[i].Name)
		}
	}
}

// TestRunBatchJobFailpoint drives the "engine/job" failpoint in both of
// its modes: a panic spec exercises the recovery boundary, a return spec
// fails the job in-band without it; either way the other jobs match the
// fault-free batch exactly.
func TestRunBatchJobFailpoint(t *testing.T) {
	defer fault.Reset()
	d := loadDB(t)
	rng := rand.New(rand.NewSource(8))
	var jobs []Job
	for i := 0; i < 3; i++ {
		jobs = append(jobs, Job{Name: string(rune('a' + i)), M: randomMIG(rng, 5, 80, 1)})
	}
	p, err := NewScript("t", "BF")
	if err != nil {
		t.Fatal(err)
	}
	p.DB = d
	baseline, err := RunBatch(context.Background(), p, jobs, BatchOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	// Workers = 1 runs jobs in order, so skip(1) deterministically blows
	// up exactly the second job.
	if err := fault.Enable("engine/job", "skip(1)*count(1)*panic(injected chaos)"); err != nil {
		t.Fatal(err)
	}
	results, err := RunBatch(context.Background(), p, jobs, BatchOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(results[1].Err, ErrJobPanic) || !strings.Contains(results[1].Err.Error(), "injected chaos") {
		t.Fatalf("injected panic surfaced as %v, want ErrJobPanic with the injected message", results[1].Err)
	}
	for _, i := range []int{0, 2} {
		if results[i].Err != nil || migText(t, results[i].M) != migText(t, baseline[i].M) {
			t.Fatalf("job %s diverged from the fault-free batch (err %v)", results[i].Name, results[i].Err)
		}
	}

	if err := fault.Enable("engine/job", "count(1)*return(injected outage)"); err != nil {
		t.Fatal(err)
	}
	results, err = RunBatch(context.Background(), p, jobs, BatchOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(results[0].Err, fault.ErrInjected) || errors.Is(results[0].Err, ErrJobPanic) {
		t.Fatalf("injected error surfaced as %v, want ErrInjected (and not ErrJobPanic)", results[0].Err)
	}
	for _, i := range []int{1, 2} {
		if results[i].Err != nil || migText(t, results[i].M) != migText(t, baseline[i].M) {
			t.Fatalf("job %s diverged from the fault-free batch (err %v)", results[i].Name, results[i].Err)
		}
	}
}

// TestRunBatchRecoversRewriteWorkerPanic: a panic inside a rewrite
// evaluation worker goroutine crosses back to the job goroutine (see
// internal/rewrite) and lands in the same ErrJobPanic boundary — the
// full path a real pass bug under intra-graph parallelism would take.
func TestRunBatchRecoversRewriteWorkerPanic(t *testing.T) {
	defer fault.Reset()
	d := loadDB(t)
	jobs := []Job{{Name: "solo", M: randomMIG(rand.New(rand.NewSource(9)), 6, 150, 2)}}
	p, err := NewScript("t", "TF")
	if err != nil {
		t.Fatal(err)
	}
	p.DB = d
	p.Workers = 4
	if err := fault.Enable("rewrite/ffr-region", "count(1)*panic(chaos in a worker)"); err != nil {
		t.Fatal(err)
	}
	results, err := RunBatch(context.Background(), p, jobs, BatchOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	e := results[0].Err
	if !errors.Is(e, ErrJobPanic) {
		t.Fatalf("worker panic surfaced as %v, want ErrJobPanic", e)
	}
	if msg := e.Error(); !strings.Contains(msg, "evaluation worker panicked") || !strings.Contains(msg, "chaos in a worker") {
		t.Fatalf("panic error %q should carry the worker's panic value", msg)
	}
}
