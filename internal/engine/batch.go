package engine

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"log"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"sync"

	"mighash/internal/db"
	"mighash/internal/fault"
	"mighash/internal/mig"
	"mighash/internal/obs"
)

// ErrJobPanic is the root of every Result.Err produced by a panicking
// job: a pass, a custom pipeline stage or injected chaos unwinding a
// worker is caught at the job boundary and reported in-band, so one
// poisoned graph fails its own job instead of killing the batch (and,
// one layer up, the server process). Match with errors.Is.
var ErrJobPanic = errors.New("engine: job panicked")

// Job is one unit of batch work: a named MIG to optimize. Jobs must not
// share a *MIG unless every job only reads it (pipelines never modify
// their input graph, so sharing a read-only input is safe).
type Job struct {
	Name string
	M    *mig.MIG
}

// Result is the outcome of one Job. Results are returned in job order
// regardless of worker scheduling.
type Result struct {
	Name  string        `json:"name"`
	M     *mig.MIG      `json:"-"`
	Stats PipelineStats `json:"stats"`
	Err   error         `json:"-"`
}

// BatchOptions tunes RunBatch.
type BatchOptions struct {
	// Workers bounds the worker pool; 0 or less means runtime.NumCPU().
	Workers int
	// SharedCache, when non-nil, is used by every job so workers reuse
	// each other's NPN canonicalizations. The optimized graphs are
	// identical either way; only the per-job hit/miss attribution becomes
	// scheduling-dependent, which is why the default is a private cache
	// per job (deterministic stats at any worker count).
	SharedCache *db.Cache
	// CacheFile warm-starts the batch from an on-disk cache snapshot:
	// before any job runs, the snapshot at this path is restored into the
	// batch's shared cache (creating one when SharedCache is nil) and the
	// batch's on-demand 5-input store, and after the batch both are
	// snapshotted back atomically in the width-tagged combined format. A
	// missing file is a silent cold start; a corrupt or version-skewed
	// snapshot degrades to a cold state with a logged warning. The
	// optimized graphs of K = 4 scripts are bit-identical warm or cold —
	// a snapshot only changes which lookups count as hits; for K = 5
	// scripts a warm store additionally skips every already-learned
	// synthesis (the results are identical, the ladders just never run).
	CacheFile string
	// Exact5 shares one on-demand 5-input exact-synthesis store across
	// every job, so workers learn classes for each other. When nil,
	// RunBatch creates a batch-shared store with the Synth5 budget
	// (K = 4 scripts never touch it, so the empty store costs nothing).
	Exact5 *db.OnDemand
	// Synth5 tunes the per-class synthesis budget of the store RunBatch
	// creates when Exact5 is nil. Ignored otherwise.
	Synth5 db.OnDemandOptions
	// Extract upgrades every top-down rewrite pass of every job to
	// choice-aware extraction under ExtractObjective (see
	// Pipeline.Extract). Off leaves the pipeline's own setting in place.
	Extract          bool
	ExtractObjective Objective
	// Progress, when non-nil, is invoked synchronously after every pass of
	// every job with the job index (into the jobs slice) and that pass's
	// statistics. Calls for different jobs come from different worker
	// goroutines, so the callback must be safe for concurrent use; calls
	// for one job are ordered. This powers streaming per-pass stats for
	// long batch requests.
	Progress func(job int, ps PassStats)
}

// RunBatch optimizes every job with the pipeline on a bounded worker
// pool. Results are deterministic: results[i] belongs to jobs[i], and
// because each pipeline run is sequential and (with the default private
// caches) self-contained, the per-job stats and graphs do not depend on
// the worker count.
//
// Cancellation is cooperative at job and pass granularity: when ctx is
// cancelled, unstarted jobs and unfinished pipelines report ctx.Err() in
// their Result, and RunBatch returns ctx.Err(). A cancellation that
// lands after every job already completed cleanly costs nothing — the
// result set is complete, so RunBatch returns nil.
func RunBatch(ctx context.Context, p *Pipeline, jobs []Job, opt BatchOptions) ([]Result, error) {
	if p == nil {
		return nil, fmt.Errorf("engine: RunBatch requires a pipeline")
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]Result, len(jobs))
	// Each worker runs a shallow copy of the pipeline so the cache policy
	// (shared vs per-job) is applied without mutating the caller's p. A
	// cache installed on the pipeline itself is honored; SharedCache
	// overrides it. With neither, every job gets a private cache.
	run := *p
	if opt.SharedCache != nil {
		run.Cache = opt.SharedCache
	}
	if opt.Extract {
		run.Extract, run.ExtractObjective = true, opt.ExtractObjective
	}
	if opt.Exact5 != nil {
		run.Exact5 = opt.Exact5
	}
	if run.Exact5 == nil {
		// Always share one store across the batch: jobs learn 5-input
		// classes for each other, and the caller's Synth5 budget applies
		// with or without a cache file (K = 4 scripts never touch it).
		run.Exact5 = db.NewOnDemand(opt.Synth5)
	}
	if opt.CacheFile != "" {
		if run.Cache == nil {
			run.Cache = db.NewCache()
		}
		warmStart(run.Cache, run.Exact5, run.DB, opt.CacheFile)
	}
	var (
		wg   sync.WaitGroup
		next int
		mu   sync.Mutex
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(jobs) {
					return
				}
				results[i].Name = jobs[i].Name
				if err := ctx.Err(); err != nil {
					results[i].Err = err
					continue
				}
				// Per-job progress needs the job index, so each job runs a
				// private pipeline copy wrapping the batch-level callback.
				pj := run
				if opt.Progress != nil {
					pj.Progress = func(ps PassStats) { opt.Progress(i, ps) }
				}
				jctx, jspan := obs.Start(ctx, "job")
				jspan.SetStr("name", jobs[i].Name)
				// pprof labels make CPU profiles attributable: samples from
				// this job (and every goroutine it spawns — intra-graph
				// rewrite workers, exact-synthesis ladders) carry the circuit
				// and preset, so `go tool pprof -tagfocus` can isolate one
				// job's cost from a busy batch.
				var (
					m   *mig.MIG
					st  PipelineStats
					err error
				)
				pprof.Do(jctx, pprof.Labels("circuit", jobs[i].Name, "preset", pj.Name),
					func(jctx context.Context) {
						m, st, err = runJob(jctx, &pj, jobs[i])
					})
				if errors.Is(err, ErrJobPanic) {
					jspan.SetStr("outcome", "panicked")
				}
				jspan.End()
				results[i].M, results[i].Stats, results[i].Err = m, st, err
			}
		}()
	}
	wg.Wait()
	if opt.CacheFile != "" {
		// Even a cancelled batch may have warmed the cache; persisting it
		// is always safe because snapshots only change hit/miss stats and
		// skip already-learned synthesis.
		if _, err := db.SaveSnapshotFile(opt.CacheFile, run.Cache, run.Exact5); err != nil {
			log.Printf("engine: cache snapshot to %s failed: %v", opt.CacheFile, err)
		}
	}
	if err := ctx.Err(); err != nil {
		// Cancellation only fails the batch if it cost results: when every
		// job ran to its own conclusion before the context fired — clean or
		// failed on its own merits, both reported in-band — the result set
		// is as complete as it would have been without the cancellation,
		// and the batch succeeds. Only jobs lost to the context itself
		// make the whole batch report the context error.
		for i := range results {
			if e := results[i].Err; e != nil &&
				(errors.Is(e, context.Canceled) || errors.Is(e, context.DeadlineExceeded)) {
				return results, err
			}
		}
	}
	return results, nil
}

// runJob executes one job's pipeline with the batch's panic boundary: a
// panic anywhere under the pipeline — a pass, the rewriter (which
// re-raises its worker-goroutine panics on the job goroutine), injected
// chaos — becomes a Result.Err wrapping ErrJobPanic, carrying the panic
// value and a bounded stack. Sibling jobs and their bit-identical
// results are unaffected: recovery happens strictly outside the
// pipeline, so it cannot alter what a non-panicking run computes.
func runJob(ctx context.Context, p *Pipeline, j Job) (m *mig.MIG, st PipelineStats, err error) {
	defer func() {
		if r := recover(); r != nil {
			stack := debug.Stack()
			if len(stack) > 4<<10 {
				stack = stack[:4<<10]
			}
			m, st, err = nil, PipelineStats{}, fmt.Errorf("%w: %v\n%s", ErrJobPanic, r, stack)
		}
	}()
	// Failpoint "engine/job": per-job chaos. A return spec fails the job
	// in-band; a panic spec exercises the recovery boundary above.
	if ferr := fault.Hit("engine/job"); ferr != nil {
		return nil, PipelineStats{}, ferr
	}
	return p.RunContext(ctx, j.M)
}

// warmStart restores the snapshot at path into cache and store,
// resolving the database the cache entries rebind through (the
// pipeline's, or the embedded one — the same resolution RunContext
// performs). Every failure short of a missing file is logged and
// degrades to a cold start.
func warmStart(cache *db.Cache, store *db.OnDemand, d *db.DB, path string) {
	if d == nil {
		var err error
		if d, err = db.Load(); err != nil {
			log.Printf("engine: cache warm-start from %s skipped, no database: %v", path, err)
			return
		}
	}
	if _, err := db.LoadSnapshotFile(path, d, cache, store); err != nil && !errors.Is(err, fs.ErrNotExist) {
		log.Printf("engine: cache warm-start from %s failed, starting cold: %v", path, err)
	}
}

// SplitOutputs decomposes m into one job per primary output: each job's
// graph is the transitive fanin cone of that output over the same primary
// inputs. Together with RunBatch this parallelizes the optimization of
// one large MIG across its output cones.
func SplitOutputs(m *mig.MIG, baseName string) []Job {
	jobs := make([]Job, m.NumPOs())
	for i := range jobs {
		jobs[i] = Job{
			Name: fmt.Sprintf("%s.out%d", baseName, i),
			M:    ExtractCone(m, i),
		}
	}
	return jobs
}

// ExtractCone returns a fresh single-output MIG computing output out of
// m: the cone's gates are copied (with structural hashing) over the full
// primary-input set, so cones of one graph stay input-compatible.
func ExtractCone(m *mig.MIG, out int) *mig.MIG {
	o := m.Output(out)
	// Fanins always have smaller IDs than their gate, so one descending
	// mark sweep finds the cone and one ascending copy rebuilds it.
	reach := make([]bool, m.NumNodes())
	reach[o.ID()] = true
	for id := m.NumNodes() - 1; id > m.NumPIs(); id-- {
		if !reach[id] || !m.IsGate(mig.ID(id)) {
			continue
		}
		for _, ch := range m.Fanin(mig.ID(id)) {
			reach[ch.ID()] = true
		}
	}
	res := mig.New(m.NumPIs())
	sig := make([]mig.Lit, m.NumNodes())
	sig[0] = mig.Const0
	for i := 0; i < m.NumPIs(); i++ {
		sig[m.Input(i).ID()] = res.Input(i)
	}
	at := func(l mig.Lit) mig.Lit { return sig[l.ID()].NotIf(l.Comp()) }
	for id := m.NumPIs() + 1; id < m.NumNodes(); id++ {
		if reach[id] && m.IsGate(mig.ID(id)) {
			f := m.Fanin(mig.ID(id))
			sig[id] = res.Maj(at(f[0]), at(f[1]), at(f[2]))
		}
	}
	res.AddOutput(at(o))
	return res
}
