package engine

import (
	"context"
	"fmt"
	"time"

	"mighash/internal/db"
	"mighash/internal/depthopt"
	"mighash/internal/extract"
	"mighash/internal/mig"
	"mighash/internal/rewrite"
)

// PassStats reports one executed pass of a pipeline run.
type PassStats struct {
	Name        string `json:"name"`
	Iteration   int    `json:"iteration"` // 1-based script round
	SizeBefore  int    `json:"size_before"`
	SizeAfter   int    `json:"size_after"`
	DepthBefore int    `json:"depth_before"`
	DepthAfter  int    `json:"depth_after"`
	// Replacements counts database substitutions (rewrite passes) or
	// accepted reassociations (depth passes).
	Replacements int `json:"replacements"`
	// NPN cut-cache traffic of this pass; zero for non-rewrite passes.
	CacheHits   int `json:"cache_hits"`
	CacheMisses int `json:"cache_misses"`
	// Choice-aware extraction of this pass (zero unless the pass ran
	// with rewrite.Options.Extract): recorded choices, and the gates the
	// extracted cover saved over the pass's greedy twin.
	Choices      int           `json:"choices,omitempty"`
	ExtractSaved int           `json:"extract_saved,omitempty"`
	Elapsed      time.Duration `json:"elapsed_ns"`
}

func (s PassStats) String() string {
	out := fmt.Sprintf("%s[%d]: size %d→%d, depth %d→%d",
		s.Name, s.Iteration, s.SizeBefore, s.SizeAfter, s.DepthBefore, s.DepthAfter)
	if s.CacheHits+s.CacheMisses > 0 {
		out += fmt.Sprintf(", cache %d/%d", s.CacheHits, s.CacheHits+s.CacheMisses)
	}
	return out
}

// passEnv is the shared context a pass executes in: the database and NPN
// cache shared by the whole run, the on-demand 5-input store feeding the
// K = 5 passes, the run's context (cancelling in-flight exact synthesis),
// the rewrite workspace reused across all passes and iterations of one
// pipeline run (each RunContext owns a private one, so concurrent batch
// workers never share scratch), and the intra-graph worker budget.
type passEnv struct {
	ctx     context.Context
	d       *db.DB
	cache   *db.Cache
	exact5  *db.OnDemand
	ws      *rewrite.Workspace
	workers int
	// extract upgrades every top-down rewrite pass to choice-aware
	// extraction under extractObj (Pipeline.Extract / BatchOptions /
	// the HTTP request schema all land here).
	extract    bool
	extractObj Objective
}

// Pass is one named transformation step of a pipeline. The zero value is
// invalid; construct passes with RewritePass, DepthPass or PassByName.
type Pass struct {
	name string
	run  func(m *mig.MIG, env passEnv) (*mig.MIG, PassStats)
}

// Name returns the script name of the pass ("BF", "depthopt", …).
func (p Pass) Name() string { return p.name }

// RewritePass wraps one functional-hashing configuration. The pass name
// is the paper acronym of opt (rewrite.VariantName, "TF5" etc. for the
// K = 5 extensions); opt.Cache, opt.Exact5 and opt.Ctx are overridden by
// the pipeline's environment.
func RewritePass(opt rewrite.Options) Pass {
	name := rewrite.VariantName(opt)
	return Pass{
		name: name,
		run: func(m *mig.MIG, env passEnv) (*mig.MIG, PassStats) {
			// Copy the captured options: concurrent batch workers share
			// this Pass, so the closure state must stay read-only.
			o := opt
			o.Cache = env.cache
			o.Exact5 = env.exact5
			o.Ctx = env.ctx
			o.Workspace = env.ws
			o.Workers = env.workers
			if env.extract && !o.BottomUp {
				o.Extract = true
				if env.extractObj == ObjectiveDepth {
					o.ExtractObjective = extract.Depth
				}
			}
			res, st := rewrite.Run(m, env.d, o)
			return res, PassStats{
				Name:       st.Variant,
				SizeBefore: st.SizeBefore, SizeAfter: st.SizeAfter,
				DepthBefore: st.DepthBefore, DepthAfter: st.DepthAfter,
				Replacements: st.Replacements,
				CacheHits:    st.CacheHits,
				CacheMisses:  st.CacheMisses,
				Choices:      st.Choices,
				ExtractSaved: st.ExtractSaved,
				Elapsed:      st.Elapsed,
			}
		},
	}
}

// DepthPass wraps the algebraic depth optimizer.
func DepthPass(opt depthopt.Options) Pass {
	return Pass{
		name: "depthopt",
		run: func(m *mig.MIG, env passEnv) (*mig.MIG, PassStats) {
			res, st := depthopt.Optimize(m, opt)
			return res, PassStats{
				Name:       "depthopt",
				SizeBefore: st.SizeBefore, SizeAfter: st.SizeAfter,
				DepthBefore: st.DepthBefore, DepthAfter: st.DepthAfter,
				Replacements: st.Passes,
				Elapsed:      st.Elapsed,
			}
		},
	}
}

// passRegistry maps pass script names to constructors. PassByName and
// PresetNames both derive from this map, so a pass added here appears in
// the scripts listing, the CLIs and every "have %v" error at once.
func passRegistry() map[string]func() Pass {
	return map[string]func() Pass{
		"TF":       func() Pass { return RewritePass(rewrite.TF) },
		"T":        func() Pass { return RewritePass(rewrite.T) },
		"TFD":      func() Pass { return RewritePass(rewrite.TFD) },
		"TD":       func() Pass { return RewritePass(rewrite.TD) },
		"BF":       func() Pass { return RewritePass(rewrite.BF) },
		"TF5":      func() Pass { return RewritePass(rewrite.TF5) },
		"T5":       func() Pass { return RewritePass(rewrite.T5) },
		"TFD5":     func() Pass { return RewritePass(rewrite.TFD5) },
		"TD5":      func() Pass { return RewritePass(rewrite.TD5) },
		"TFx":      func() Pass { return RewritePass(rewrite.TFx) },
		"Tx":       func() Pass { return RewritePass(rewrite.Tx) },
		"TF5x":     func() Pass { return RewritePass(rewrite.TF5x) },
		"T5x":      func() Pass { return RewritePass(rewrite.T5x) },
		"Txd":      func() Pass { return RewritePass(rewrite.Txd) },
		"depthopt": func() Pass { return DepthPass(depthopt.Options{SizeFactor: 1.2, MaxPasses: 10}) },
	}
}

// PassByName resolves the script name of a pass: one of the five paper
// variants "TF", "T", "TFD", "TD", "BF", their 5-input extensions "TF5",
// "T5", "TFD5", "TD5" (five-leaf cuts resolved through the on-demand
// exact-synthesis store), the choice-aware extensions "TFx", "Tx",
// "TF5x", "T5x" and "Txd" (global extraction over a choice graph
// instead of greedy per-cut commits), or "depthopt" (the depth
// optimizer with its default production tuning).
func PassByName(name string) (Pass, bool) {
	mk, ok := passRegistry()[name]
	if !ok {
		return Pass{}, false
	}
	return mk(), true
}
