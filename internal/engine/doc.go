// Package engine turns the single-shot optimization passes of this
// repository into a production-style optimization engine:
//
//   - Pass wraps one transformation (the five functional-hashing variants
//     TF, T, TFD, TD and BF of internal/rewrite, plus the algebraic depth
//     optimizer of internal/depthopt) behind a uniform interface.
//   - Pipeline composes named passes into a script and runs the script to
//     convergence, keeping the best graph seen and reporting per-pass
//     statistics. Preset scripts ("resyn", "size", "depth", …) cover the
//     common flows; custom scripts are built with New.
//   - RunBatch optimizes many MIGs concurrently on a bounded worker pool
//     with deterministic result ordering and context cancellation.
//
// All pipelines share the sharded NPN cut-cache of internal/db: the
// canonicalization + database lookup of every 4-feasible cut — the hot
// path of functional hashing — is memoized across passes, iterations and
// (optionally) across batch workers. BatchOptions.CacheFile extends the
// memoization across processes: the batch warm-starts from an on-disk
// cache snapshot and saves it back atomically afterwards, with corrupt
// snapshots degrading to a cold cache (logged, never fatal). Optimized
// graphs are bit-identical warm or cold.
//
// Long-running consumers observe progress through callbacks:
// Pipeline.Progress fires after every executed pass, and
// BatchOptions.Progress adds the job index — this is what the HTTP
// service (internal/server) streams to clients as JSON lines.
//
// Concurrency contract: a Pipeline is immutable during Run/RunContext and
// may drive any number of concurrent runs; each run allocates its own
// rewrite workspace, so runs share only the immutable database and the
// (concurrency-safe) cut-cache. Within RunBatch, per-job stats and graphs
// are deterministic — independent of the worker count — as long as the
// default per-job private caches are used; installing a SharedCache keeps
// the graphs identical but makes the per-job hit/miss split
// scheduling-dependent. Pass values are stateless and shareable;
// PassStats/PipelineStats are plain data.
package engine
