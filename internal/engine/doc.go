// Package engine turns the single-shot optimization passes of this
// repository into a production-style optimization engine:
//
//   - Pass wraps one transformation (the five functional-hashing variants
//     TF, T, TFD, TD and BF of internal/rewrite, their 5-input extensions
//     TF5/T5/TFD5/TD5, plus the algebraic depth optimizer of
//     internal/depthopt) behind a uniform interface.
//   - Pipeline composes named passes into a script and runs the script to
//     convergence, keeping the best graph seen and reporting per-pass
//     statistics. Preset scripts ("resyn", "size", "depth", "resyn5", …)
//     cover the common flows; custom scripts are built with New.
//     PresetNames is the single source of truth for what exists — the
//     CLIs and GET /v1/scripts derive from it.
//   - RunBatch optimizes many MIGs concurrently on a bounded worker pool
//     with deterministic result ordering and context cancellation.
//
// All pipelines share the sharded NPN cut-cache of internal/db: the
// canonicalization + database lookup of every 4-feasible cut — the hot
// path of functional hashing — is memoized across passes, iterations and
// (optionally) across batch workers. K = 5 scripts additionally share an
// on-demand exact-synthesis store (Pipeline.Exact5 / BatchOptions.Exact5,
// budget via BatchOptions.Synth5): 5-input classes are learned once per
// process and fed to every worker, with the run's context cancelling
// in-flight ladders. BatchOptions.CacheFile extends both memoizations
// across processes: the batch warm-starts cache and learned store from
// one on-disk snapshot and saves them back atomically afterwards, with
// corrupt snapshots degrading to a cold state (logged, never fatal).
// Optimized graphs are bit-identical warm or cold — a warm learned store
// just skips the ladders.
//
// Long-running consumers observe progress through callbacks:
// Pipeline.Progress fires after every executed pass, and
// BatchOptions.Progress adds the job index — this is what the HTTP
// service (internal/server) streams to clients as JSON lines.
//
// Concurrency contract: a Pipeline is immutable during Run/RunContext and
// may drive any number of concurrent runs; each run allocates its own
// rewrite workspace, so runs share only the immutable database and the
// (concurrency-safe) cut-cache. Within RunBatch, per-job stats and graphs
// are deterministic — independent of the worker count — as long as the
// default per-job private caches are used; installing a SharedCache keeps
// the graphs identical but makes the per-job hit/miss split
// scheduling-dependent. Pass values are stateless and shareable;
// PassStats/PipelineStats are plain data.
package engine
