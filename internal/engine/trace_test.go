package engine

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"mighash/internal/obs"
	"mighash/internal/rewrite"
)

// TestProgressAndTracerAgree pins the contract between the two
// observability channels: the Progress callback and the "pass" spans must
// report the same pass count and the same (name, iteration) ordering,
// also when the rewrite passes run multi-worker.
func TestProgressAndTracerAgree(t *testing.T) {
	for _, workers := range []int{1, 4} {
		d := loadDB(t)
		m := randomMIG(rand.New(rand.NewSource(7)), 8, 300, 4)

		type rec struct {
			name string
			iter int
		}
		var fromProgress []rec
		p := &Pipeline{
			Name:    "trace-test",
			Passes:  []Pass{RewritePass(rewrite.TF), RewritePass(rewrite.BF)},
			DB:      d,
			Workers: workers,
			Progress: func(ps PassStats) {
				fromProgress = append(fromProgress, rec{ps.Name, ps.Iteration})
			},
		}
		tr := obs.New(obs.Options{Retain: true})
		ctx := obs.ContextWithTracer(context.Background(), tr)
		_, st, err := p.RunContext(ctx, m)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}

		var fromSpans []rec
		for _, s := range tr.Spans() {
			if s.Name() != "pass" {
				continue
			}
			var it int
			for _, a := range s.Attrs() {
				if a.Key == "iteration" {
					it = int(a.Int)
				}
			}
			fromSpans = append(fromSpans, rec{s.Attr("name"), it})
		}
		if len(fromProgress) != len(st.Passes) {
			t.Fatalf("workers=%d: Progress saw %d passes, stats have %d",
				workers, len(fromProgress), len(st.Passes))
		}
		if len(fromSpans) != len(fromProgress) {
			t.Fatalf("workers=%d: spans saw %d passes, Progress saw %d",
				workers, len(fromSpans), len(fromProgress))
		}
		// Passes run serially within a pipeline, and pass spans end before
		// Progress fires, so both channels share one ordering.
		for i := range fromSpans {
			if fromSpans[i] != fromProgress[i] {
				t.Fatalf("workers=%d: pass %d: span %v vs progress %v",
					workers, i, fromSpans[i], fromProgress[i])
			}
		}
	}
}

// TestPanickingProgressEndsSpan pins the panic contract: a user Progress
// callback that panics must not leave the in-flight pass span (nor its
// ancestors) open — the deferred End chain closes everything on unwind.
func TestPanickingProgressEndsSpan(t *testing.T) {
	d := loadDB(t)
	m := randomMIG(rand.New(rand.NewSource(7)), 6, 80, 2)
	p := &Pipeline{
		Name:     "panic-test",
		Passes:   []Pass{RewritePass(rewrite.TF)},
		DB:       d,
		Progress: func(PassStats) { panic("user callback exploded") },
	}
	tr := obs.New(obs.Options{Retain: true})
	ctx := obs.ContextWithTracer(context.Background(), tr)

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Progress panic did not propagate")
			}
		}()
		p.RunContext(ctx, m)
	}()

	spans := tr.Spans()
	want := map[string]bool{"pass": false, "iteration": false, "pipeline": false}
	for _, s := range spans {
		if _, ok := want[s.Name()]; ok {
			want[s.Name()] = true
		}
		if s.Duration() <= 0 {
			t.Errorf("span %q collected with non-positive duration", s.Name())
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("span %q left open (not collected) after Progress panic", name)
		}
	}
}

// TestTracerDoesNotPerturbResults pins the "spans observe, never steer"
// guarantee: the optimized graph is bit-identical with and without a
// tracer installed, at multiple worker counts.
func TestTracerDoesNotPerturbResults(t *testing.T) {
	d := loadDB(t)
	for _, workers := range []int{1, 4} {
		m := randomMIG(rand.New(rand.NewSource(11)), 6, 300, 4)
		p := &Pipeline{
			Name:    "perturb-test",
			Passes:  []Pass{RewritePass(rewrite.TF), RewritePass(rewrite.BF)},
			DB:      d,
			Workers: workers,
		}
		plain, stPlain, err := p.RunContext(context.Background(), m)
		if err != nil {
			t.Fatal(err)
		}
		tr := obs.New(obs.Options{Retain: true})
		traced, stTraced, err := p.RunContext(obs.ContextWithTracer(context.Background(), tr), m)
		if err != nil {
			t.Fatal(err)
		}
		if plain.Size() != traced.Size() || plain.Depth() != traced.Depth() {
			t.Fatalf("workers=%d: tracer changed result: size %d→%d, depth %d→%d",
				workers, plain.Size(), traced.Size(), plain.Depth(), traced.Depth())
		}
		ps, ts := plain.Simulate(), traced.Simulate()
		for i := range ps {
			if ps[i] != ts[i] {
				t.Fatalf("workers=%d: tracer changed function of output %d", workers, i)
			}
		}
		if stPlain.Iterations != stTraced.Iterations || len(stPlain.Passes) != len(stTraced.Passes) {
			t.Fatalf("workers=%d: tracer changed convergence", workers)
		}
	}
}

// TestBatchJobSpans pins that RunBatch parents each job's pipeline under
// a "job" span carrying the job name, with tracer-install safe under the
// worker pool.
func TestBatchJobSpans(t *testing.T) {
	d := loadDB(t)
	rng := rand.New(rand.NewSource(3))
	jobs := []Job{
		{Name: "j0", M: randomMIG(rng, 6, 60, 2)},
		{Name: "j1", M: randomMIG(rng, 6, 60, 2)},
		{Name: "j2", M: randomMIG(rng, 6, 60, 2)},
	}
	p := &Pipeline{Name: "batch-trace", Passes: []Pass{RewritePass(rewrite.TF)}, DB: d}
	var mu sync.Mutex
	names := map[string]int{}
	tr := obs.New(obs.Options{OnEnd: func(s *obs.Span) {
		if s.Name() != "job" {
			return
		}
		mu.Lock()
		names[s.Attr("name")]++
		mu.Unlock()
	}})
	ctx := obs.ContextWithTracer(context.Background(), tr)
	if _, err := RunBatch(ctx, p, jobs, BatchOptions{Workers: 3}); err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if names[j.Name] != 1 {
			t.Errorf("job %q has %d job spans, want 1 (all: %v)", j.Name, names[j.Name], names)
		}
	}
}
