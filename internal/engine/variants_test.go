package engine

import (
	"testing"
)

// TestPresetPassLists pins the exact pass sequence of every named
// preset. The widened twins must stay in lockstep with their base
// scripts — resyn5 and resyn-x are resyn with the trailing/greedy
// passes swapped, never an independently drifting script.
func TestPresetPassLists(t *testing.T) {
	want := map[string][]string{
		"resyn":   {"TF", "depthopt", "BF", "TFD"},
		"resyn5":  {"TF", "depthopt", "BF", "TFD", "TF5"},
		"resyn-x": {"TFx", "depthopt", "BF", "TFD", "TF5x"},
		"size":    {"BF"},
		"size5":   {"BF", "TF5"},
		"depth":   {"depthopt", "TD"},
		"depth-x": {"depthopt", "Txd", "TD"},
		"quick":   {"TF"},
	}
	for name, passes := range want {
		p, err := Preset(name)
		if err != nil {
			t.Errorf("Preset(%q): %v", name, err)
			continue
		}
		var got []string
		for _, pass := range p.Passes {
			got = append(got, pass.Name())
		}
		if len(got) != len(passes) {
			t.Errorf("%s runs %v, want %v", name, got, passes)
			continue
		}
		for i := range got {
			if got[i] != passes[i] {
				t.Errorf("%s runs %v, want %v", name, got, passes)
				break
			}
		}
	}
}

// TestWidenScript pins the single preset-widening table shared by the
// CLIs and the HTTP service: cut width 5 and the extraction toggle both
// resolve through it, for presets and bare pass names alike.
func TestWidenScript(t *testing.T) {
	for _, tc := range []struct {
		script  string
		k       int
		extract bool
		want    string // "" = expect an error
	}{
		{"resyn", 0, false, "resyn"},
		{"resyn", 4, false, "resyn"},
		{"resyn", 5, false, "resyn5"},
		{"resyn", 0, true, "resyn-x"},
		{"resyn", 5, true, "resyn-x"}, // the extract twin already ends in TF5x
		{"resyn5", 5, false, "resyn5"},
		{"resyn-x", 0, true, "resyn-x"},
		{"size", 5, false, "size5"},
		{"size", 0, true, ""}, // no choice-aware twin
		{"depth", 0, true, "depth-x"},
		{"depth", 5, false, ""}, // no 5-input twin
		{"quick", 5, false, ""},
		{"TF", 5, false, "TF5"},
		{"TF", 0, true, "TFx"},
		{"TF", 5, true, "TF5x"},
		{"TF5", 0, true, "TF5x"},
		{"Txd", 0, true, "Txd"},
		{"TD", 0, true, ""}, // no depth-preserving extraction variant
		{"resyn", 6, false, ""},
	} {
		got, err := WidenScript(tc.script, tc.k, tc.extract)
		if tc.want == "" {
			if err == nil {
				t.Errorf("WidenScript(%q, %d, %v) = %q, want error", tc.script, tc.k, tc.extract, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("WidenScript(%q, %d, %v): %v", tc.script, tc.k, tc.extract, err)
			continue
		}
		if got != tc.want {
			t.Errorf("WidenScript(%q, %d, %v) = %q, want %q", tc.script, tc.k, tc.extract, got, tc.want)
		}
	}
}

// TestPresetVariantsResolve: every twin named by the table is a real
// preset, and every base is too.
func TestPresetVariantsResolve(t *testing.T) {
	for base, v := range PresetVariants() {
		for _, name := range []string{base, v.Five, v.Extract} {
			if name == "" {
				continue
			}
			if _, err := Preset(name); err != nil {
				t.Errorf("PresetVariants names %q: %v", name, err)
			}
		}
	}
}
