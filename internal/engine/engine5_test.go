package engine

import (
	"context"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"mighash/internal/db"
	"mighash/internal/mig"
)

// synth5Budget keeps the engine tests fast and deterministic: classes
// past the budget resolve as misses, which every property here must
// tolerate anyway.
var synth5Budget = db.OnDemandOptions{MaxGates: 5, MaxConflicts: 2000}

// TestResyn5PresetSoundAndNeverWorse: the resyn5 preset must produce
// equivalent graphs (SAT-checked) that are never larger than resyn's on
// the same inputs.
func TestResyn5PresetSoundAndNeverWorse(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for round := 0; round < 3; round++ {
		m := randomMIG(rng, 8+rng.Intn(4), 150+rng.Intn(150), 3)
		p4, err := Preset("resyn")
		if err != nil {
			t.Fatal(err)
		}
		_, st4, err := p4.Run(m)
		if err != nil {
			t.Fatal(err)
		}
		p5, err := Preset("resyn5")
		if err != nil {
			t.Fatal(err)
		}
		p5.Exact5 = db.NewOnDemand(synth5Budget)
		got, st5, err := p5.Run(m)
		if err != nil {
			t.Fatal(err)
		}
		if st5.SizeAfter > st4.SizeAfter {
			t.Fatalf("round %d: resyn5 ended at %d gates, resyn at %d", round, st5.SizeAfter, st4.SizeAfter)
		}
		eq, ce, err := mig.Equivalent(m, got, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Fatalf("round %d: resyn5 changed the function, counterexample %v", round, ce)
		}
	}
}

// TestRunBatch5CacheFileWarmStart: a second batch over the same jobs and
// cache file must re-synthesize nothing and produce identical graphs.
func TestRunBatch5CacheFileWarmStart(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	var jobs []Job
	for i := 0; i < 3; i++ {
		jobs = append(jobs, Job{Name: "j", M: randomMIG(rng, 7+rng.Intn(3), 120+rng.Intn(100), 2)})
	}
	p, err := Preset("size5")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "npn5.cache")

	cold := db.NewOnDemand(synth5Budget)
	coldRes, err := RunBatch(context.Background(), p, jobs, BatchOptions{
		Workers: 2, CacheFile: path, Exact5: cold,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Synths() == 0 {
		t.Skip("no 5-input classes discovered in the random batch") // vanishingly unlikely
	}

	warm := db.NewOnDemand(synth5Budget)
	warmRes, err := RunBatch(context.Background(), p, jobs, BatchOptions{
		Workers: 2, CacheFile: path, Exact5: warm,
	})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Synths() != 0 {
		t.Fatalf("warm batch ran %d ladders, want 0 (restored %d classes, %d negative)",
			warm.Synths(), warm.Len(), warm.NegativeLen())
	}
	for i := range coldRes {
		a, b := renderGraph(t, coldRes[i].M), renderGraph(t, warmRes[i].M)
		if a != b {
			t.Fatalf("job %d: warm graph differs from cold", i)
		}
	}
}

// TestPipeline5WorkersDeterministic: the K = 5 preset with intra-graph
// workers is bit-identical at any worker count.
func TestPipeline5WorkersDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	m := randomMIG(rng, 10, 300, 3)
	shared := db.NewOnDemand(synth5Budget)
	var want string
	for _, workers := range []int{1, 3, 6} {
		p, err := Preset("size5")
		if err != nil {
			t.Fatal(err)
		}
		p.Exact5 = shared
		p.Workers = workers
		got, _, err := p.Run(m)
		if err != nil {
			t.Fatal(err)
		}
		s := renderGraph(t, got)
		if want == "" {
			want = s
		} else if s != want {
			t.Fatalf("%d workers produced a different graph", workers)
		}
	}
}

func renderGraph(t *testing.T, m *mig.MIG) string {
	t.Helper()
	var b strings.Builder
	if err := m.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}
