package engine

import (
	"bytes"
	"context"
	"runtime/pprof"
	"strings"
	"sync"
	"testing"

	"mighash/internal/mig"
)

// TestBatchWorkersCarryPprofLabels: the worker goroutine running a job
// carries circuit/preset pprof labels for the whole job (PassCheck runs
// on that goroutine between passes, after the per-pass label popped), so
// CPU and goroutine profiles of a busy batch are attributable per job.
// The goroutine profile at debug=1 prints each goroutine's label set —
// the only public window onto the current goroutine's labels.
func TestBatchWorkersCarryPprofLabels(t *testing.T) {
	p, err := Preset("quick")
	if err != nil {
		t.Fatal(err)
	}
	var (
		once     sync.Once
		captured string
	)
	p.PassCheck = func(pass string, iter int, before, after *mig.MIG) error {
		once.Do(func() {
			var b bytes.Buffer
			if err := pprof.Lookup("goroutine").WriteTo(&b, 1); err != nil {
				t.Errorf("goroutine profile: %v", err)
			}
			captured = b.String()
		})
		return nil
	}
	jobs := []Job{{Name: "Max", M: startMax(t)}}
	if _, err := RunBatch(context.Background(), p, jobs, BatchOptions{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if captured == "" {
		t.Fatal("PassCheck never ran; no profile captured")
	}
	for _, want := range []string{`"circuit":"Max"`, `"preset":"quick"`} {
		if !strings.Contains(captured, want) {
			t.Errorf("goroutine profile missing label %s", want)
		}
	}
}
