package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"sync/atomic"
	"time"
)

// DefaultDurationBuckets is the bucket ladder used by the service's
// latency histograms: 100µs to ~26s in powers of four, wide enough to
// span a cache-hit pass and a cold 12-gate SAT ladder in one histogram.
var DefaultDurationBuckets = []time.Duration{
	100 * time.Microsecond,
	400 * time.Microsecond,
	1600 * time.Microsecond,
	6400 * time.Microsecond,
	25600 * time.Microsecond,
	102400 * time.Microsecond,
	409600 * time.Microsecond,
	1638400 * time.Microsecond,
	6553600 * time.Microsecond,
	26214400 * time.Microsecond,
}

// Histogram is a fixed-bucket duration histogram safe for concurrent
// observation. Counts are kept per bucket (not cumulative) and summed
// into Prometheus's cumulative le-form at render time, so Observe is a
// single atomic increment.
type Histogram struct {
	bounds []time.Duration
	counts []atomic.Int64 // len(bounds)+1; last is +Inf overflow
	sum    atomic.Int64   // nanoseconds
	count  atomic.Int64
}

// NewHistogram returns a histogram over the given ascending bucket upper
// bounds. With no bounds given, DefaultDurationBuckets is used.
func NewHistogram(bounds ...time.Duration) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultDurationBuckets
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one duration. Safe for concurrent use; nil-safe.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && d > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(int64(d))
	h.count.Add(1)
}

// Count returns the number of observations so far.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Quantile returns a conservative estimate of the q-th quantile
// (0 ≤ q ≤ 1): the upper bound of the bucket holding the ⌈q·count⌉-th
// observation. Rounding to a bucket bound overestimates, which is the
// right bias for its consumers — admission control and Retry-After
// hints, where guessing low sheds too little and retries too hot. An
// empty (or nil) histogram reports 0; observations in the +Inf overflow
// bucket report the last finite bound.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		if cum >= rank {
			return b
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// WritePrometheus renders the histogram in Prometheus text exposition
// format under the given metric name: cumulative `le` buckets in
// seconds, then `_sum` and `_count`.
func (h *Histogram) WritePrometheus(w io.Writer, name string) {
	if h == nil {
		return
	}
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n",
			name, formatSeconds(b.Seconds()), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %s\n", name,
		formatSeconds(time.Duration(h.sum.Load()).Seconds()))
	fmt.Fprintf(w, "%s_count %d\n", name, h.count.Load())
}

// formatSeconds renders a float without exponent notation or trailing
// zeros, the way Prometheus bucket bounds are conventionally written.
func formatSeconds(s float64) string {
	return strconv.FormatFloat(s, 'f', -1, 64)
}
