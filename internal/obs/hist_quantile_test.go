package obs

import (
	"testing"
	"time"
)

// Edge-case coverage for Histogram.Quantile beyond the happy path: the
// quantile feeds admission control (shouldShed) and Retry-After hints,
// where a wrong answer on a boundary input turns into bad shedding
// decisions, not a cosmetic blip.

func TestQuantileEmptyAndNil(t *testing.T) {
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Errorf("nil histogram Quantile = %v, want 0", got)
	}
	h := NewHistogram()
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty histogram Quantile(%v) = %v, want 0", q, got)
		}
	}
}

// Quantile(0) must clamp the rank to the first observation, not index
// bucket -1 or return a zero that admission control would read as "the
// server is infinitely fast".
func TestQuantileZeroClampsToFirstObservation(t *testing.T) {
	h := NewHistogram(time.Millisecond, time.Second)
	h.Observe(500 * time.Millisecond) // second bucket
	if got := h.Quantile(0); got != time.Second {
		t.Errorf("Quantile(0) = %v, want the observation's bucket bound 1s", got)
	}
}

// Quantile(1) is the max observation's bucket bound, and an observation
// past every finite bound reports the last finite bound rather than a
// fictitious +Inf.
func TestQuantileOneAndOverflowBucket(t *testing.T) {
	h := NewHistogram(time.Millisecond, time.Second)
	h.Observe(100 * time.Microsecond)
	if got := h.Quantile(1); got != time.Millisecond {
		t.Errorf("Quantile(1) = %v, want 1ms", got)
	}
	h.Observe(time.Hour) // +Inf overflow bucket
	if got := h.Quantile(1); got != time.Second {
		t.Errorf("Quantile(1) with overflow = %v, want the last finite bound 1s", got)
	}
	// All mass in the overflow bucket: every quantile is the last bound.
	o := NewHistogram(time.Millisecond)
	o.Observe(time.Minute)
	o.Observe(time.Hour)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := o.Quantile(q); got != time.Millisecond {
			t.Errorf("overflow-only Quantile(%v) = %v, want 1ms", q, got)
		}
	}
}

// Quantiles are monotone in q: sweeping q over a mixed distribution may
// never yield a smaller answer for a larger q. (A rank-rounding bug
// breaks exactly this, and it is what the p50 ≤ p99 contract of
// /v1/stats rests on.)
func TestQuantileMonotoneInQ(t *testing.T) {
	h := NewHistogram()
	for i, d := range []time.Duration{
		50 * time.Microsecond, 300 * time.Microsecond, 300 * time.Microsecond,
		2 * time.Millisecond, 20 * time.Millisecond, 20 * time.Millisecond,
		200 * time.Millisecond, 2 * time.Second, 30 * time.Second, time.Minute,
	} {
		for j := 0; j <= i%3; j++ { // uneven per-bucket mass
			h.Observe(d)
		}
	}
	prev := time.Duration(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		got := h.Quantile(q)
		if got < prev {
			t.Fatalf("Quantile(%0.2f) = %v < Quantile(%0.2f) = %v", q, got, q-0.01, prev)
		}
		prev = got
	}
}

// The quantile is conservative: never below the exact quantile of the
// observed durations (bucket upper bounds round up).
func TestQuantileConservative(t *testing.T) {
	h := NewHistogram()
	obs := []time.Duration{
		90 * time.Microsecond, 350 * time.Microsecond, time.Millisecond,
		5 * time.Millisecond, 90 * time.Millisecond, 400 * time.Millisecond,
	}
	for _, d := range obs {
		h.Observe(d)
	}
	// Exact p50 of 6 sorted samples (rank 3) is 1ms; the histogram may
	// report a bound ≥ 1ms, never less.
	if got := h.Quantile(0.5); got < time.Millisecond {
		t.Errorf("Quantile(0.5) = %v, below the exact median 1ms", got)
	}
	if got := h.Quantile(1); got < 400*time.Millisecond {
		t.Errorf("Quantile(1) = %v, below the max observation", got)
	}
}
