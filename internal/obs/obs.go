package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Options tunes a Tracer.
type Options struct {
	// Retain keeps every finished span in memory for later export
	// (WriteTrace/Spans). Off, the tracer only feeds OnEnd and drops the
	// span, which is how the server runs histograms without accumulating
	// trace state on every request.
	Retain bool
	// OnEnd, when non-nil, is invoked synchronously from Span.End with
	// the finished span. The callback must be fast and safe for
	// concurrent use (spans of one tracer end on many goroutines); it
	// must not retain the span past the call when Retain is off.
	OnEnd func(*Span)
}

// Tracer hands out spans and collects them as they end. A nil *Tracer is
// a valid no-op tracer: it starts nil spans and collects nothing.
type Tracer struct {
	opt Options
	ids atomic.Uint64

	mu    sync.Mutex
	spans []*Span // finished spans, in End order (Retain only)
}

// New returns a Tracer with the given options.
func New(opt Options) *Tracer { return &Tracer{opt: opt} }

// start opens a span. parent 0 marks a root span.
func (t *Tracer) start(name string, parent uint64) *Span {
	if t == nil {
		return nil
	}
	return &Span{
		t:      t,
		name:   name,
		id:     t.ids.Add(1),
		parent: parent,
		start:  time.Now(),
	}
}

// StartRoot opens a span with no parent — the head of a new span tree.
// Use Start to grow the tree through a context instead.
func (t *Tracer) StartRoot(name string) *Span { return t.start(name, 0) }

// Spans returns a snapshot of the finished spans collected so far, in
// the order they ended. Empty unless Options.Retain is set.
func (t *Tracer) Spans() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// collect records a finished span.
func (t *Tracer) collect(s *Span) {
	if t.opt.OnEnd != nil {
		t.opt.OnEnd(s)
	}
	if !t.opt.Retain {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// Attr is one span attribute: a key with either a string or an integer
// value (IsInt selects which).
type Attr struct {
	Key   string
	Str   string
	Int   int64
	IsInt bool
}

// Span is one named, attributed interval of a trace. A nil *Span is the
// no-op span every method accepts, which is what Start returns when no
// tracer is installed — callers never branch on "is tracing on". A span
// must only be mutated by the goroutine that started it.
type Span struct {
	t      *Tracer
	name   string
	id     uint64
	parent uint64
	start  time.Time
	dur    time.Duration
	attrs  []Attr
	ended  bool
}

// SetStr attaches a string attribute. No-op on a nil or ended span.
func (s *Span) SetStr(key, val string) {
	if s == nil || s.ended {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Str: val})
}

// SetInt attaches an integer attribute. No-op on a nil or ended span.
func (s *Span) SetInt(key string, val int64) {
	if s == nil || s.ended {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Int: val, IsInt: true})
}

// End closes the span and hands it to its tracer. End is idempotent and
// a no-op on a nil span.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.dur = time.Since(s.start)
	s.t.collect(s)
}

// Name returns the span's name.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// ID returns the span's tracer-unique identifier (never 0).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Parent returns the parent span's ID, or 0 for a root span.
func (s *Span) Parent() uint64 {
	if s == nil {
		return 0
	}
	return s.parent
}

// StartTime returns when the span was started.
func (s *Span) StartTime() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

// Duration returns the span's length; 0 until End.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return s.dur
}

// Attrs returns the span's attributes. The slice is owned by the span;
// do not mutate it.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	return s.attrs
}

// Attr returns the value of the named attribute rendered as a string,
// or "" when absent (convenience for tests and exporters).
func (s *Span) Attr(key string) string {
	if s == nil {
		return ""
	}
	for _, a := range s.attrs {
		if a.Key == key {
			if a.IsInt {
				return strconv.FormatInt(a.Int, 10)
			}
			return a.Str
		}
	}
	return ""
}

// Context plumbing. The tracer and the current span ride on separate
// zero-size keys so a root context (tracer, no span yet) and a span
// context both resolve without allocation.
type (
	tracerKey struct{}
	spanKey   struct{}
)

// ContextWithTracer installs t as the context's tracer; spans started
// from the returned context (and its descendants) belong to t.
func ContextWithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey{}, t)
}

// TracerFromContext returns the context's tracer, or nil.
func TracerFromContext(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}

// ContextWithSpan makes s the context's current span; Start on the
// returned context derives children of s.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFromContext returns the context's current span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// Start opens a child of the context's current span — or a root span of
// the context's tracer — and returns a context carrying the new span.
// With neither a span nor a tracer installed, Start returns ctx
// unchanged and a nil span, allocating nothing: the instrumented hot
// paths are free when tracing is off (pinned by TestNilTracerZeroAlloc).
func Start(ctx context.Context, name string) (context.Context, *Span) {
	if parent := SpanFromContext(ctx); parent != nil {
		s := parent.t.start(name, parent.id)
		return ContextWithSpan(ctx, s), s
	}
	if t := TracerFromContext(ctx); t != nil {
		s := t.start(name, 0)
		return ContextWithSpan(ctx, s), s
	}
	return ctx, nil
}

// NewRequestID returns a fresh 16-hex-digit request identifier, suitable
// for X-Request-ID headers and trace file names.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; degrade to
		// a constant rather than panicking in a logging path.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}
