package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTracerZeroAlloc(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		c, span := Start(ctx, "pass")
		span.SetStr("name", "rw")
		span.SetInt("size", 42)
		span.End()
		_ = c
	})
	if allocs != 0 {
		t.Fatalf("nil-tracer Start/Set/End allocated %.1f allocs/op, want 0", allocs)
	}
}

func BenchmarkNilTracerStart(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, span := Start(ctx, "pass")
		span.SetInt("size", int64(i))
		span.End()
		_ = c
	}
}

func TestSpanTree(t *testing.T) {
	tr := New(Options{Retain: true})
	ctx := ContextWithTracer(context.Background(), tr)

	ctx, root := Start(ctx, "request")
	if root == nil {
		t.Fatal("Start with tracer installed returned nil span")
	}
	root.SetStr("id", "abc")
	cctx, child := Start(ctx, "optimize")
	_, grand := Start(cctx, "pass")
	grand.SetInt("iteration", 3)
	grand.End()
	child.End()
	root.End()

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	// End order: innermost first.
	if spans[0].Name() != "pass" || spans[1].Name() != "optimize" || spans[2].Name() != "request" {
		t.Fatalf("unexpected end order: %s, %s, %s",
			spans[0].Name(), spans[1].Name(), spans[2].Name())
	}
	if spans[2].Parent() != 0 {
		t.Errorf("root span has parent %d, want 0", spans[2].Parent())
	}
	if spans[1].Parent() != spans[2].ID() {
		t.Errorf("optimize parent = %d, want %d", spans[1].Parent(), spans[2].ID())
	}
	if spans[0].Parent() != spans[1].ID() {
		t.Errorf("pass parent = %d, want %d", spans[0].Parent(), spans[1].ID())
	}
	if got := spans[0].Attr("iteration"); got != "3" {
		t.Errorf("pass iteration attr = %q, want \"3\"", got)
	}
	if got := spans[2].Attr("id"); got != "abc" {
		t.Errorf("request id attr = %q, want \"abc\"", got)
	}
}

func TestEndIdempotent(t *testing.T) {
	tr := New(Options{Retain: true})
	s := tr.StartRoot("x")
	s.End()
	d := s.Duration()
	s.End()
	s.End()
	if len(tr.Spans()) != 1 {
		t.Fatalf("double End collected %d spans, want 1", len(tr.Spans()))
	}
	if s.Duration() != d {
		t.Error("second End changed duration")
	}
	s.SetStr("late", "v")
	if s.Attr("late") != "" {
		t.Error("attr set after End was recorded")
	}
}

func TestOnEndCallback(t *testing.T) {
	var mu sync.Mutex
	var names []string
	tr := New(Options{OnEnd: func(s *Span) {
		mu.Lock()
		names = append(names, s.Name())
		mu.Unlock()
	}})
	tr.StartRoot("a").End()
	tr.StartRoot("b").End()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("OnEnd saw %v, want [a b]", names)
	}
	if len(tr.Spans()) != 0 {
		t.Error("Retain off but Spans() non-empty")
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := New(Options{Retain: true})
	ctx := ContextWithTracer(context.Background(), tr)
	ctx, root := Start(ctx, "root")
	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				_, s := Start(ctx, "work")
				s.SetInt("worker", int64(w))
				s.End()
			}
		}(w)
	}
	wg.Wait()
	root.End()

	spans := tr.Spans()
	if len(spans) != workers*perWorker+1 {
		t.Fatalf("got %d spans, want %d", len(spans), workers*perWorker+1)
	}
	ids := make(map[uint64]bool, len(spans))
	for _, s := range spans {
		if ids[s.ID()] {
			t.Fatalf("duplicate span id %d", s.ID())
		}
		ids[s.ID()] = true
		if s.Name() == "work" && s.Parent() != root.ID() {
			t.Fatalf("work span parent = %d, want %d", s.Parent(), root.ID())
		}
	}
}

func TestWriteTrace(t *testing.T) {
	tr := New(Options{Retain: true})
	ctx := ContextWithTracer(context.Background(), tr)
	ctx, root := Start(ctx, "request")
	root.SetStr("id", "deadbeef")
	cctx, opt := Start(ctx, "optimize")
	_, p1 := Start(cctx, "pass")
	p1.SetInt("iteration", 0)
	time.Sleep(time.Millisecond)
	p1.End()
	_, p2 := Start(cctx, "pass")
	p2.End()
	opt.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	if len(tf.TraceEvents) != 4 {
		t.Fatalf("got %d events, want 4", len(tf.TraceEvents))
	}
	byName := map[string]int{}
	for _, e := range tf.TraceEvents {
		if e.Ph != "X" {
			t.Errorf("event %q has ph %q, want X", e.Name, e.Ph)
		}
		if e.PID != 1 {
			t.Errorf("event %q has pid %d, want 1", e.Name, e.PID)
		}
		if e.TID < 1 {
			t.Errorf("event %q has tid %d, want >= 1", e.Name, e.TID)
		}
		if e.TS < 0 || e.Dur < 0 {
			t.Errorf("event %q has negative ts/dur", e.Name)
		}
		byName[e.Name]++
	}
	if byName["request"] != 1 || byName["optimize"] != 1 || byName["pass"] != 2 {
		t.Fatalf("event names: %v", byName)
	}
	// Nested spans share the root's lane: p1 starts inside optimize which
	// starts inside request, sequentially — all containment, one lane.
	lanes := map[string]int{}
	for _, e := range tf.TraceEvents {
		if e.Name == "request" || e.Name == "optimize" {
			lanes[e.Name] = e.TID
		}
	}
	if lanes["request"] != lanes["optimize"] {
		t.Errorf("nested request/optimize on different lanes: %v", lanes)
	}
	for _, e := range tf.TraceEvents {
		if e.Name == "request" {
			if e.Args["id"] != "deadbeef" {
				t.Errorf("request args = %v", e.Args)
			}
		}
	}
}

func TestWriteTraceConcurrentSiblingsSeparateLanes(t *testing.T) {
	// Hand-build two overlapping siblings; they must land on distinct tids.
	tr := New(Options{Retain: true})
	root := tr.StartRoot("root")
	a := tr.start("a", root.id)
	b := tr.start("b", root.id)
	now := time.Now()
	a.start, a.dur = now, 10*time.Millisecond
	b.start, b.dur = now.Add(2*time.Millisecond), 10*time.Millisecond
	a.ended, b.ended = true, true
	tr.collect(a)
	tr.collect(b)
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string `json:"name"`
			TID  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatal(err)
	}
	tids := map[string]int{}
	for _, e := range tf.TraceEvents {
		tids[e.Name] = e.TID
	}
	if tids["a"] == tids["b"] {
		t.Fatalf("overlapping siblings share lane %d", tids["a"])
	}
}

func TestSaveTrace(t *testing.T) {
	tr := New(Options{Retain: true})
	tr.StartRoot("x").End()
	path := t.TempDir() + "/trace.json"
	if err := tr.SaveTrace(path); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty trace written")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(time.Millisecond, 10*time.Millisecond, 100*time.Millisecond)
	h.Observe(500 * time.Microsecond) // bucket 0
	h.Observe(5 * time.Millisecond)   // bucket 1
	h.Observe(5 * time.Millisecond)   // bucket 1
	h.Observe(50 * time.Millisecond)  // bucket 2
	h.Observe(time.Second)            // +Inf

	var buf bytes.Buffer
	h.WritePrometheus(&buf, "test_seconds")
	out := buf.String()
	for _, want := range []string{
		"# TYPE test_seconds histogram",
		`test_seconds_bucket{le="0.001"} 1`,
		`test_seconds_bucket{le="0.01"} 3`,
		`test_seconds_bucket{le="0.1"} 4`,
		`test_seconds_bucket{le="+Inf"} 5`,
		"test_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d, want 5", h.Count())
	}
	// Sum = 0.0005 + 0.005 + 0.005 + 0.05 + 1 = 1.0605 seconds.
	if !strings.Contains(out, "test_seconds_sum 1.0605") {
		t.Errorf("missing sum in:\n%s", out)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(time.Millisecond, 10*time.Millisecond, 100*time.Millisecond)
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram Quantile = %v, want 0", got)
	}
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Errorf("nil histogram Quantile = %v, want 0", got)
	}
	h.Observe(500 * time.Microsecond) // bucket 0
	h.Observe(5 * time.Millisecond)   // bucket 1
	h.Observe(5 * time.Millisecond)   // bucket 1
	h.Observe(50 * time.Millisecond)  // bucket 2
	// Quantiles resolve to bucket upper bounds, rounding up.
	if got := h.Quantile(0.25); got != time.Millisecond {
		t.Errorf("Quantile(0.25) = %v, want 1ms", got)
	}
	if got := h.Quantile(0.5); got != 10*time.Millisecond {
		t.Errorf("Quantile(0.5) = %v, want 10ms", got)
	}
	if got := h.Quantile(1); got != 100*time.Millisecond {
		t.Errorf("Quantile(1) = %v, want 100ms", got)
	}
	// Observations past the last bound report the last finite bound.
	h.Observe(time.Second)
	h.Observe(time.Second)
	h.Observe(time.Second)
	h.Observe(time.Second)
	if got := h.Quantile(0.99); got != 100*time.Millisecond {
		t.Errorf("Quantile(0.99) with an overflow tail = %v, want the last bound", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("Count = %d, want 8000", h.Count())
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	s := tr.StartRoot("x")
	if s != nil {
		t.Fatal("nil tracer returned non-nil span")
	}
	s.SetStr("k", "v")
	s.SetInt("k", 1)
	s.End()
	if s.Name() != "" || s.ID() != 0 || s.Attr("k") != "" {
		t.Fatal("nil span accessors not zero-valued")
	}
	if tr.Spans() != nil {
		t.Fatal("nil tracer Spans() non-nil")
	}
	var h *Histogram
	h.Observe(time.Second)
	h.WritePrometheus(&bytes.Buffer{}, "x")
	if h.Count() != 0 {
		t.Fatal("nil histogram Count non-zero")
	}
}

func TestNewRequestID(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("request id lengths %d/%d, want 16", len(a), len(b))
	}
	if a == b {
		t.Fatal("two request IDs collided")
	}
}
