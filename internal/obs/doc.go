// Package obs is the zero-dependency tracing and profiling substrate of
// the optimization service: an allocation-conscious span tracer, fixed-
// bucket latency histograms, and a Chrome trace-event exporter, shared by
// the HTTP server, the batch engine, the rewriting passes, and the
// on-demand exact-synthesis store.
//
// # Spans
//
// A Tracer hands out Spans — named, attributed intervals with a parent —
// and collects them when they End. Spans travel through context.Context:
// Start derives a child of the context's current span (or a root span of
// the context's Tracer), so the call tree of a request becomes a span
// tree without any package knowing its callers. The span taxonomy of the
// stack, from the outside in:
//
//	request                      one HTTP request (internal/server)
//	  parse / queue-wait /       request phases (internal/server)
//	  optimize / encode / verify
//	    job                      one batch job (engine.RunBatch)
//	      pipeline               one pipeline run (engine.Pipeline)
//	        iteration            one script round
//	          pass               one executed pass
//	            rewrite.evaluate parallel best-cut evaluation (rewrite)
//	            rewrite.commit   serial commit phase (rewrite)
//	              exact5.ladder  one on-demand synthesis (db.OnDemand)
//
// The nil path is free by design: when no Tracer is installed in the
// context, Start returns a nil Span whose every method is a no-op, and
// the whole round trip performs zero allocations (pinned by a test).
// Optimization hot loops therefore never pay for tracing they did not
// ask for, and spans never perturb optimization results — they observe
// timings, not graph state.
//
// # Concurrency
//
// A Tracer is safe for concurrent use at any worker count: span identity
// is an atomic counter and collection is mutex-guarded. One Span must
// only be mutated (attrs, End) by the goroutine that started it, which
// the stack's usage guarantees — concurrent phases start sibling spans,
// never share one.
//
// # Export
//
// WriteTrace serializes the collected spans as Chrome trace-event JSON
// ("X" complete events with lane-assigned tids, so concurrent siblings
// render side by side and nested phases stack), loadable in
// chrome://tracing and https://ui.perfetto.dev. Histogram renders itself
// in Prometheus text exposition format for the server's /metrics.
package obs
