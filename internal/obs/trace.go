package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// traceEvent is one Chrome trace-event record ("X" complete event). The
// JSON Array Format / "traceEvents" object format is documented in the
// Trace Event Format spec and consumed by chrome://tracing and Perfetto.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`  // microseconds since trace start
	Dur  float64        `json:"dur"` // microseconds
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteTrace serializes the tracer's retained spans as Chrome trace-event
// JSON. Spans that are ancestors of each other share a tid (viewers stack
// them by time containment); concurrent siblings are spread over separate
// tids by a greedy lane assignment, so worker-pool phases render side by
// side instead of as an unreadable overlap.
func (t *Tracer) WriteTrace(w io.Writer) error {
	spans := t.Spans()
	sort.SliceStable(spans, func(i, j int) bool {
		if !spans[i].start.Equal(spans[j].start) {
			return spans[i].start.Before(spans[j].start)
		}
		// Longer first on ties so containers precede their content.
		return spans[i].dur > spans[j].dur
	})
	var epoch time.Time
	if len(spans) > 0 {
		epoch = spans[0].start
	}

	// Greedy lane assignment. Each lane tracks the end time of its
	// innermost open span; a span fits a lane when the lane is idle by
	// the span's start or its open span fully contains the new one.
	// Preferring the parent's lane keeps call stacks visually stacked.
	type lane struct{ open []time.Time } // stack of open-span end times
	var lanes []*lane
	laneOf := make(map[uint64]int, len(spans))
	fits := func(l *lane, s *Span) bool {
		for len(l.open) > 0 && !l.open[len(l.open)-1].After(s.start) {
			l.open = l.open[:len(l.open)-1]
		}
		if len(l.open) == 0 {
			return true
		}
		return !l.open[len(l.open)-1].Before(s.start.Add(s.dur))
	}
	events := make([]traceEvent, 0, len(spans))
	for _, s := range spans {
		li := -1
		if pl, ok := laneOf[s.parent]; ok && fits(lanes[pl], s) {
			li = pl
		}
		if li < 0 {
			for i, l := range lanes {
				if fits(l, s) {
					li = i
					break
				}
			}
		}
		if li < 0 {
			lanes = append(lanes, &lane{})
			li = len(lanes) - 1
		}
		lanes[li].open = append(lanes[li].open, s.start.Add(s.dur))
		laneOf[s.id] = li

		var args map[string]any
		if len(s.attrs) > 0 {
			args = make(map[string]any, len(s.attrs))
			for _, a := range s.attrs {
				if a.IsInt {
					args[a.Key] = a.Int
				} else {
					args[a.Key] = a.Str
				}
			}
		}
		events = append(events, traceEvent{
			Name: s.name,
			Cat:  "mighash",
			Ph:   "X",
			TS:   float64(s.start.Sub(epoch)) / float64(time.Microsecond),
			Dur:  float64(s.dur) / float64(time.Microsecond),
			PID:  1,
			TID:  li + 1,
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// SaveTrace writes the trace atomically (temp file + rename) to path, so
// a crash mid-write never leaves a truncated, unloadable trace behind.
func (t *Tracer) SaveTrace(path string) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".trace-*.json")
	if err != nil {
		return err
	}
	if err := t.WriteTrace(f); err != nil {
		f.Close()
		os.Remove(f.Name())
		return fmt.Errorf("writing trace: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return err
	}
	if err := os.Rename(f.Name(), path); err != nil {
		os.Remove(f.Name())
		return err
	}
	return nil
}
