// Package depthopt reduces MIG depth by algebraic rewriting with the
// majority axioms, following the depth-optimization line of work the paper
// builds on ([3], [4]): associativity, complementary associativity and
// right-to-left distributivity applied along critical paths. It is used to
// turn the freshly generated arithmetic circuits into "heavily optimized"
// starting points comparable to the best-result netlists the paper
// rewrites (Sec. V-C), and it doubles as an independent consumer of the
// MIG substrate.
//
// The axioms (Ω from [3]), written over arbitrary — possibly complemented —
// signals:
//
//	Associativity:          〈x u 〈y u z〉〉 = 〈z u 〈y u x〉〉
//	Compl. associativity:   〈x u 〈y ū z〉〉 = 〈x u 〈y x z〉〉
//	Distributivity (R→L):   〈x y 〈u v z〉〉 = 〈〈x y u〉 〈x y v〉 z〉
//
// Each pass rebuilds the graph bottom-up; at every gate the reassociation
// that minimizes the arrival time of the new node is chosen. Distributivity
// may duplicate logic, so it is only applied while the size budget allows.
//
// Role in the functional-hashing flow: the engine's "resyn" and "depth"
// scripts interleave this pass with the hashing passes — hashing recovers
// the size that depth restructuring spends, and restructuring exposes new
// cuts for hashing.
//
// Concurrency contract: Optimize never modifies its input; it builds a
// fresh graph with private scratch state, so independent calls are safe
// on any number of goroutines. One call is strictly sequential.
package depthopt
