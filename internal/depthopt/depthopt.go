package depthopt

import (
	"fmt"
	"time"

	"mighash/internal/mig"
)

// Options tunes the optimization loop.
type Options struct {
	// MaxPasses caps the rebuild passes (default 12; the loop stops early
	// at a fixpoint).
	MaxPasses int
	// SizeFactor hard-caps the result at SizeFactor × the original gate
	// count (default 1.2). Reassociations are only taken while the rebuild
	// provably stays below the cap, so a factor of 1 forbids any growth.
	SizeFactor float64
}

func (o Options) withDefaults() Options {
	if o.MaxPasses == 0 {
		o.MaxPasses = 12
	}
	if o.SizeFactor == 0 {
		o.SizeFactor = 1.2
	}
	return o
}

// Stats reports one Optimize call.
type Stats struct {
	SizeBefore, SizeAfter   int
	DepthBefore, DepthAfter int
	Passes                  int
	Elapsed                 time.Duration
}

func (s Stats) String() string {
	return fmt.Sprintf("depthopt: size %d→%d, depth %d→%d, %d passes, %v",
		s.SizeBefore, s.SizeAfter, s.DepthBefore, s.DepthAfter, s.Passes, s.Elapsed)
}

// Optimize returns a depth-optimized copy of m.
func Optimize(m *mig.MIG, opt Options) (*mig.MIG, Stats) {
	opt = opt.withDefaults()
	start := time.Now()
	st := Stats{SizeBefore: m.Size(), DepthBefore: m.Depth()}
	limit := int(float64(st.SizeBefore) * opt.SizeFactor)
	if limit < st.SizeBefore {
		limit = st.SizeBefore
	}
	cur := m
	for pass := 0; pass < opt.MaxPasses; pass++ {
		next := onePass(cur, limit)
		st.Passes = pass + 1
		improved := next.Depth() < cur.Depth()
		if improved || (next.Depth() == cur.Depth() && next.Size() < cur.Size()) {
			cur = next
		}
		if !improved {
			break
		}
	}
	st.SizeAfter = cur.Size()
	st.DepthAfter = cur.Depth()
	st.Elapsed = time.Since(start)
	return cur, st
}

// builder tracks the output graph plus finalized arrival times and the
// size cap of the current pass.
type builder struct {
	out       *mig.MIG
	levels    []int
	limit     int  // maximum gates the pass may produce
	remaining int  // original gates still to be rebuilt after the current one
	critical  bool // the gate being rebuilt lies on an original critical path
}

// allow reports whether a plan producing at most planMax gates for the
// current original gate keeps the final size under the cap, assuming every
// remaining gate rebuilds to at most one gate (true for the default plan).
func (b *builder) allow(planMax int) bool {
	return b.out.NumGates()+planMax+b.remaining <= b.limit
}

func (b *builder) maj(x, y, z mig.Lit) mig.Lit {
	l := b.out.Maj(x, y, z)
	for len(b.levels) < b.out.NumNodes() {
		id := mig.ID(len(b.levels))
		lvl := 0
		if b.out.IsGate(id) {
			for _, ch := range b.out.Fanin(id) {
				if v := b.levels[ch.ID()]; v >= lvl {
					lvl = v + 1
				}
			}
		}
		b.levels = append(b.levels, lvl)
	}
	return l
}

func (b *builder) level(l mig.Lit) int { return b.levels[l.ID()] }

// arrival of a would-be gate over the given operands.
func (b *builder) arr(ops ...mig.Lit) int {
	best := 0
	for _, o := range ops {
		if v := b.level(o); v > best {
			best = v
		}
	}
	return best + 1
}

// innerOf returns the fanins of g's gate with g's edge complement pushed
// inside (self-duality: 〈abc〉' = 〈a'b'c'〉), so rewriting can treat every
// child gate as plain.
func (b *builder) innerOf(g mig.Lit) ([3]mig.Lit, bool) {
	if !b.out.IsGate(g.ID()) {
		return [3]mig.Lit{}, false
	}
	f := b.out.Fanin(g.ID())
	if g.Comp() {
		for i := range f {
			f[i] = f[i].Not()
		}
	}
	return f, true
}

// onePass rebuilds m bottom-up, greedily minimizing each gate's arrival.
func onePass(m *mig.MIG, limit int) *mig.MIG {
	out := mig.New(m.NumPIs())
	b := &builder{out: out, levels: make([]int, out.NumNodes()), limit: limit}
	lmap := make([]mig.Lit, m.NumNodes())
	lmap[0] = mig.Const0
	for i := 0; i < m.NumPIs(); i++ {
		lmap[m.Input(i).ID()] = b.out.Input(i)
	}
	fo := m.FanoutCounts()
	for id := m.NumPIs() + 1; id < m.NumNodes(); id++ {
		if fo[id] > 0 {
			b.remaining++
		}
	}
	// Zero-slack (critical) gates of the original graph: reassociation is
	// restricted to them so the size budget is spent where depth can
	// actually improve.
	slack0 := criticalNodes(m, fo)
	for id := m.NumPIs() + 1; id < m.NumNodes(); id++ {
		if fo[id] == 0 {
			continue
		}
		f := m.Fanin(mig.ID(id))
		var ops [3]mig.Lit
		for c := range f {
			ops[c] = lmap[f[c].ID()].NotIf(f[c].Comp())
		}
		b.remaining--
		b.critical = slack0[id]
		lmap[id] = rebuildGate(b, ops)
	}
	for _, o := range m.Outputs() {
		b.out.AddOutput(lmap[o.ID()].NotIf(o.Comp()))
	}
	res, _ := b.out.Cleanup()
	return res
}

// criticalNodes marks the gates with zero slack: level + longest path to
// an output equals the graph depth.
func criticalNodes(m *mig.MIG, fo []int) []bool {
	levels := m.Levels()
	depth := 0
	for _, o := range m.Outputs() {
		if levels[o.ID()] > depth {
			depth = levels[o.ID()]
		}
	}
	req := make([]int, m.NumNodes())
	for i := range req {
		req[i] = depth + 1 // unconstrained
	}
	for _, o := range m.Outputs() {
		req[o.ID()] = depth
	}
	crit := make([]bool, m.NumNodes())
	for id := m.NumNodes() - 1; id > m.NumPIs(); id-- {
		if fo[id] == 0 {
			continue
		}
		if req[id] <= levels[id] {
			crit[id] = true
		}
		for _, ch := range m.Fanin(mig.ID(id)) {
			if r := req[id] - 1; r < req[ch.ID()] {
				req[ch.ID()] = r
			}
		}
	}
	return crit
}

// rebuildGate constructs 〈ops〉 with the arrival-minimizing reassociation.
func rebuildGate(b *builder, ops [3]mig.Lit) mig.Lit {
	bestArr := b.arr(ops[:]...)
	build := func() mig.Lit { return b.maj(ops[0], ops[1], ops[2]) }
	if !b.critical {
		return build()
	}

	// Identify the unique deepest operand; reassociation only helps when
	// one input dominates the arrival.
	deep := 0
	for c := 1; c < 3; c++ {
		if b.level(ops[c]) > b.level(ops[deep]) {
			deep = c
		}
	}
	g := ops[deep]
	p, q := ops[(deep+1)%3], ops[(deep+2)%3]
	inner, isGate := b.innerOf(g)
	if !isGate {
		return build()
	}

	type plan struct {
		arr      int
		maxGates int // worst-case gates the emit can create
		emit     func() mig.Lit
	}
	var plans []plan

	// Associativity: 〈x u 〈y u z〉〉 = 〈z u 〈y u x〉〉 — needs a shared
	// operand u between the gate and its deepest child. Hoists the deepest
	// grandchild z next to the root.
	for _, ou := range []struct{ u, x mig.Lit }{{p, q}, {q, p}} {
		u, x := ou.u, ou.x
		for i := 0; i < 3; i++ {
			if inner[i] != u {
				continue
			}
			ia, ib := inner[(i+1)%3], inner[(i+2)%3]
			z, y := ia, ib
			if b.level(ib) > b.level(ia) {
				z, y = ib, ia
			}
			yn, un, xn, zn := y, u, x, z
			arr := 1 + max3(b.level(zn), b.level(un), 1+max3(b.level(yn), b.level(un), b.level(xn)))
			plans = append(plans, plan{arr: arr, maxGates: 2, emit: func() mig.Lit {
				return b.maj(zn, un, b.maj(yn, un, xn))
			}})
		}
	}

	// Complementary associativity: 〈x u 〈y ū z〉〉 = 〈x u 〈y x z〉〉 —
	// replaces a deep complemented shared operand inside the child by the
	// (possibly shallower) x.
	for _, ou := range []struct{ u, x mig.Lit }{{p, q}, {q, p}} {
		u, x := ou.u, ou.x
		for i := 0; i < 3; i++ {
			if inner[i] != u.Not() {
				continue
			}
			ia, ib := inner[(i+1)%3], inner[(i+2)%3]
			yn, un, xn := ia, u, x
			zn := ib
			arr := 1 + max3(b.level(xn), b.level(un), 1+max3(b.level(yn), b.level(xn), b.level(zn)))
			plans = append(plans, plan{arr: arr, maxGates: 2, emit: func() mig.Lit {
				return b.maj(xn, un, b.maj(yn, xn, zn))
			}})
		}
	}

	// Distributivity R→L: 〈x y 〈u v z〉〉 = 〈〈x y u〉 〈x y v〉 z〉 — hoists the
	// deepest grandchild at the price of extra gates.
	{
		zi := 0
		for i := 1; i < 3; i++ {
			if b.level(inner[i]) > b.level(inner[zi]) {
				zi = i
			}
		}
		u, v, z := inner[(zi+1)%3], inner[(zi+2)%3], inner[zi]
		arr := 1 + max3(1+max3(b.level(p), b.level(q), b.level(u)),
			1+max3(b.level(p), b.level(q), b.level(v)),
			b.level(z))
		plans = append(plans, plan{arr: arr, maxGates: 3, emit: func() mig.Lit {
			return b.maj(b.maj(p, q, u), b.maj(p, q, v), z)
		}})
	}

	bestPlan := -1
	for i, pl := range plans {
		if pl.arr >= bestArr || !b.allow(pl.maxGates) {
			continue
		}
		if bestPlan < 0 || pl.arr < plans[bestPlan].arr ||
			(pl.arr == plans[bestPlan].arr && pl.maxGates < plans[bestPlan].maxGates) {
			bestPlan = i
		}
	}
	if bestPlan < 0 {
		return build()
	}
	return plans[bestPlan].emit()
}

func max3(a, b, c int) int {
	if b > a {
		a = b
	}
	if c > a {
		a = c
	}
	return a
}
