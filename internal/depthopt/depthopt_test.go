package depthopt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mighash/internal/circuits"
	"mighash/internal/mig"
	"mighash/internal/tt"
)

// TestAxiomIdentities verifies the three Ω axioms as truth-table
// identities over all assignments of five 4-variable functions — the
// rewriter is only sound if these transcriptions are exact.
func TestAxiomIdentities(t *testing.T) {
	f := func(xb, yb, zb, ub, vb uint16) bool {
		n := 4
		x := tt.New(n, uint64(xb))
		y := tt.New(n, uint64(yb))
		z := tt.New(n, uint64(zb))
		u := tt.New(n, uint64(ub))
		v := tt.New(n, uint64(vb))
		assoc := tt.Maj(x, u, tt.Maj(y, u, z)) == tt.Maj(z, u, tt.Maj(y, u, x))
		compl := tt.Maj(x, u, tt.Maj(y, u.Not(), z)) == tt.Maj(x, u, tt.Maj(y, x, z))
		distr := tt.Maj(x, y, tt.Maj(u, v, z)) == tt.Maj(tt.Maj(x, y, u), tt.Maj(x, y, v), z)
		return assoc && compl && distr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func randomMIG(rng *rand.Rand, pis, gates, pos int) *mig.MIG {
	m := mig.New(pis)
	sigs := []mig.Lit{mig.Const0}
	for i := 0; i < pis; i++ {
		sigs = append(sigs, m.Input(i))
	}
	for g := 0; g < gates; g++ {
		pick := func() mig.Lit { return sigs[rng.Intn(len(sigs))].NotIf(rng.Intn(3) == 0) }
		sigs = append(sigs, m.Maj(pick(), pick(), pick()))
	}
	for o := 0; o < pos; o++ {
		m.AddOutput(sigs[len(sigs)-1-rng.Intn(4)])
	}
	return m
}

// TestOptimizePreservesFunction checks soundness by exhaustive simulation
// on ≤6-input graphs.
func TestOptimizePreservesFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for round := 0; round < 15; round++ {
		m := randomMIG(rng, 4+rng.Intn(3), 30+rng.Intn(80), 2)
		want := m.Simulate()
		got, st := Optimize(m, Options{})
		sim := got.Simulate()
		for i := range want {
			if sim[i] != want[i] {
				t.Fatalf("round %d: output %d changed (%v → %v), stats %v", round, i, want[i], sim[i], st)
			}
		}
		if st.DepthAfter > st.DepthBefore {
			t.Errorf("round %d: depth grew %d→%d", round, st.DepthBefore, st.DepthAfter)
		}
	}
}

// TestOptimizePreservesFunctionCEC re-checks on a wide circuit with the
// SAT equivalence checker.
func TestOptimizePreservesFunctionCEC(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := randomMIG(rng, 16, 300, 4)
	got, _ := Optimize(m, Options{})
	eq, ce, err := mig.Equivalent(m, got, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatalf("optimization changed the function: %v", ce)
	}
}

// TestRippleAdderDepthShrinks is the flagship behaviour from [3]/[4]: the
// associativity/distributivity rules must flatten a ripple-carry chain
// substantially.
func TestRippleAdderDepthShrinks(t *testing.T) {
	m := circuits.BuildAdder()
	before := m.Depth()
	opt, st := Optimize(m, Options{SizeFactor: 2})
	if st.DepthAfter >= before*3/4 {
		t.Errorf("adder depth only improved %d→%d; want at least 25%%", before, st.DepthAfter)
	}
	t.Logf("adder: %v", st)
	// Functional spot-check on random vectors (exhaustive is impossible at
	// 256 inputs; full CEC of adders is exercised in TestAdderCEC).
	rng := rand.New(rand.NewSource(13))
	for v := 0; v < 8; v++ {
		in := make([]bool, 256)
		for i := range in {
			in[i] = rng.Intn(2) == 1
		}
		a, b := m.EvalBits(in), opt.EvalBits(in)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vector %d output %d differs", v, i)
			}
		}
	}
}

// TestAdderCEC proves full equivalence of the optimized 16-bit adder.
func TestAdderCEC(t *testing.T) {
	b := circuits.NewBuilder(32)
	sum, cout := b.Add(b.Inputs(0, 16), b.Inputs(16, 16), mig.Const0)
	b.Outputs(sum)
	b.M.AddOutput(cout)
	m := b.M
	opt, st := Optimize(m, Options{SizeFactor: 2})
	eq, ce, err := mig.Equivalent(m, opt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatalf("16-bit adder broken by depth optimization: %v (stats %v)", ce, st)
	}
	if st.DepthAfter >= st.DepthBefore {
		t.Errorf("no depth improvement on 16-bit adder: %v", st)
	}
}

// TestSizeFactorRespected bounds the growth from distributivity.
func TestSizeFactorRespected(t *testing.T) {
	m := circuits.BuildAdder()
	_, st := Optimize(m, Options{SizeFactor: 1.1})
	if limit := int(float64(st.SizeBefore) * 1.1); st.SizeAfter > limit {
		t.Errorf("size %d exceeds budget %d", st.SizeAfter, limit)
	}
}
