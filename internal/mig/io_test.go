package mig

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestTextRoundTrip(t *testing.T) {
	m := New(3)
	s, c := m.FullAdder(m.Input(0), m.Input(1), m.Input(2))
	m.AddOutput(s)
	m.AddOutput(c.Not())
	var buf bytes.Buffer
	if err := m.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumPIs() != 3 || back.NumPOs() != 2 {
		t.Fatalf("interface mismatch after round trip: %+v", back.Stats())
	}
	w, g := m.Simulate(), back.Simulate()
	for i := range w {
		if w[i] != g[i] {
			t.Errorf("output %d differs after round trip", i)
		}
	}
}

func TestTextRoundTripFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 50; trial++ {
		m := randomMIG(rng, 4, 20, 4)
		var buf bytes.Buffer
		if err := m.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadText(&buf)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		w, g := m.Simulate(), back.Simulate()
		for i := range w {
			if w[i] != g[i] {
				t.Fatalf("trial %d: output %d differs", trial, i)
			}
		}
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := map[string]string{
		"empty":             "",
		"bad header":        "mag 1 2 3\n",
		"truncated gates":   "mig 2 2 1\n0 2 4\n",
		"bad gate line":     "mig 2 1 1\n0 2\nout 6\n",
		"bad literal":       "mig 2 1 1\n0 2 x\nout 6\n",
		"forward reference": "mig 2 1 1\n0 2 12\nout 6\n",
		"missing outputs":   "mig 2 1 2\n0 2 4\nout 6\n",
		"bad output":        "mig 2 1 1\n0 2 4\nfoo 6\n",
	}
	for name, in := range cases {
		if _, err := ReadText(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestWriteDOT(t *testing.T) {
	m := New(2)
	m.AddOutput(m.And(m.Input(0), m.Input(1)).Not())
	var buf bytes.Buffer
	if err := m.WriteDOT(&buf, "test"); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{"digraph", "shape=box", "shape=circle", "style=dashed"} {
		if !strings.Contains(s, want) {
			t.Errorf("DOT output missing %q:\n%s", want, s)
		}
	}
}
