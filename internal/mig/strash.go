package mig

// strashTable is the structural-hashing index of an MIG: an open-addressing
// hash table from canonical fanin triples to gate IDs. Gate creation is the
// innermost operation of every rewriting pass, and the previous
// map[strashKey]ID spent most of Maj in runtime map machinery and forced a
// heap allocation per bucket growth; linear probing over two flat slices
// keeps lookups branch-cheap and insertion amortized allocation-free.
//
// ID 0 is the constant node and never names a gate, so it doubles as the
// empty-slot sentinel.
type strashTable struct {
	keys []strashKey
	ids  []ID
	n    int // occupied slots
}

const strashMinSize = 16 // power of two

func newStrashTable() strashTable {
	return strashTable{keys: make([]strashKey, strashMinSize), ids: make([]ID, strashMinSize)}
}

// strashHash mixes the three fanin literals; the multipliers are the
// 64-bit golden-ratio family used by xxHash, with an avalanche finisher so
// sequential IDs spread over the table.
func strashHash(k strashKey) uint64 {
	h := uint64(k[0])*0x9E3779B185EBCA87 ^ uint64(k[1])*0xC2B2AE3D27D4EB4F ^ uint64(k[2])*0x165667B19E3779F9
	h ^= h >> 32
	h *= 0xD6E8FEB86659FD93
	h ^= h >> 29
	return h
}

func (t *strashTable) lookup(k strashKey) (ID, bool) {
	mask := uint64(len(t.ids) - 1)
	for i := strashHash(k) & mask; ; i = (i + 1) & mask {
		id := t.ids[i]
		if id == 0 {
			return 0, false
		}
		if t.keys[i] == k {
			return id, true
		}
	}
}

// insert adds k -> id; k must not be present. The table grows at 2/3 load
// so probe sequences stay short.
func (t *strashTable) insert(k strashKey, id ID) {
	if 3*(t.n+1) > 2*len(t.ids) {
		t.grow()
	}
	t.place(k, id)
	t.n++
}

func (t *strashTable) place(k strashKey, id ID) {
	mask := uint64(len(t.ids) - 1)
	i := strashHash(k) & mask
	for t.ids[i] != 0 {
		i = (i + 1) & mask
	}
	t.keys[i], t.ids[i] = k, id
}

func (t *strashTable) grow() {
	old := *t
	t.keys = make([]strashKey, 2*len(old.keys))
	t.ids = make([]ID, 2*len(old.ids))
	for i, id := range old.ids {
		if id != 0 {
			t.place(old.keys[i], id)
		}
	}
}

func (t *strashTable) clone() strashTable {
	return strashTable{
		keys: append([]strashKey(nil), t.keys...),
		ids:  append([]ID(nil), t.ids...),
		n:    t.n,
	}
}
