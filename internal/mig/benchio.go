package mig

// BENCH-format interchange (the ISCAS/LGSynth netlist dialect used by
// ABC and academic tools), extended with a ternary MAJ gate. This is the
// bridge between the library and external benchmark suites: WriteBENCH
// materializes complemented edges as explicit NOT lines, ReadBENCH
// rebuilds any AND/OR/NAND/NOR/NOT/BUF/XOR/XNOR/MAJ netlist as an MIG
// through the majority gadgets.

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteBENCH renders the MIG in BENCH format. Inputs are named x0, x1, …
// in order; outputs o0, o1, …; internal gates n<id>.
func (m *MIG) WriteBENCH(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# mighash MIG: %v\n", m.Stats())
	for i := 0; i < m.numPI; i++ {
		fmt.Fprintf(bw, "INPUT(x%d)\n", i)
	}
	for i := range m.outputs {
		fmt.Fprintf(bw, "OUTPUT(o%d)\n", i)
	}
	// The constant node only gets a line when something references it.
	fo := m.FanoutCounts()
	if fo[0] > 0 {
		fmt.Fprintf(bw, "n0 = CONST0\n")
	}
	name := func(id ID) string {
		if m.IsInput(id) {
			return fmt.Sprintf("x%d", m.InputIndex(id))
		}
		return fmt.Sprintf("n%d", id)
	}
	// NOT lines are emitted once per complemented signal actually used.
	notEmitted := map[ID]bool{}
	lit := func(bw *bufio.Writer, l Lit) string {
		if !l.Comp() {
			return name(l.ID())
		}
		inv := name(l.ID()) + "_inv"
		if !notEmitted[l.ID()] {
			fmt.Fprintf(bw, "%s = NOT(%s)\n", inv, name(l.ID()))
			notEmitted[l.ID()] = true
		}
		return inv
	}
	for id := m.numPI + 1; id < len(m.fanin); id++ {
		if fo[id] == 0 {
			continue
		}
		f := m.fanin[id]
		a, b, c := lit(bw, f[0]), lit(bw, f[1]), lit(bw, f[2])
		fmt.Fprintf(bw, "n%d = MAJ(%s, %s, %s)\n", id, a, b, c)
	}
	for i, o := range m.outputs {
		fmt.Fprintf(bw, "o%d = %s(%s)\n", i, map[bool]string{false: "BUF", true: "NOT"}[o.Comp()], name(o.ID()))
	}
	return bw.Flush()
}

// ReadBENCH parses a BENCH netlist into an MIG. Supported gate types:
// AND, OR, NAND, NOR, NOT, BUF/BUFF, XOR, XNOR, MAJ, CONST0, CONST1;
// AND/OR/NAND/NOR accept two or more operands (reduced left to right).
// Inputs keep their file order.
func ReadBENCH(r io.Reader) (*MIG, error) {
	type gateLine struct {
		target, op string
		args       []string
		line       int
	}
	var (
		inputNames  []string
		outputNames []string
		gates       []gateLine
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		upper := strings.ToUpper(line)
		switch {
		case strings.HasPrefix(upper, "INPUT(") && strings.HasSuffix(line, ")"):
			inputNames = append(inputNames, strings.TrimSpace(line[6:len(line)-1]))
		case strings.HasPrefix(upper, "OUTPUT(") && strings.HasSuffix(line, ")"):
			outputNames = append(outputNames, strings.TrimSpace(line[7:len(line)-1]))
		default:
			target, rhs, ok := strings.Cut(line, "=")
			if !ok {
				return nil, fmt.Errorf("mig: bench line %d: expected assignment, got %q", lineNo, line)
			}
			rhs = strings.TrimSpace(rhs)
			op := rhs
			var args []string
			if open := strings.IndexByte(rhs, '('); open >= 0 {
				if !strings.HasSuffix(rhs, ")") {
					return nil, fmt.Errorf("mig: bench line %d: unbalanced parentheses in %q", lineNo, line)
				}
				op = strings.TrimSpace(rhs[:open])
				for _, a := range strings.Split(rhs[open+1:len(rhs)-1], ",") {
					if a = strings.TrimSpace(a); a != "" {
						args = append(args, a)
					}
				}
			}
			gates = append(gates, gateLine{
				target: strings.TrimSpace(target), op: strings.ToUpper(op), args: args, line: lineNo,
			})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	m := New(len(inputNames))
	sig := make(map[string]Lit, len(inputNames)+len(gates))
	for i, n := range inputNames {
		sig[n] = m.Input(i)
	}
	// Gate lines may reference later lines; resolve by iterating until no
	// progress (netlists are DAGs, so this terminates in ≤ len passes).
	pending := gates
	for len(pending) > 0 {
		var stuck []gateLine
		progress := false
		for _, g := range pending {
			operands := make([]Lit, len(g.args))
			ready := true
			for i, a := range g.args {
				l, ok := sig[a]
				if !ok {
					ready = false
					break
				}
				operands[i] = l
			}
			if !ready {
				stuck = append(stuck, g)
				continue
			}
			l, err := buildBenchGate(m, g.op, operands)
			if err != nil {
				return nil, fmt.Errorf("mig: bench line %d: %v", g.line, err)
			}
			if _, dup := sig[g.target]; dup {
				return nil, fmt.Errorf("mig: bench line %d: %q assigned twice", g.line, g.target)
			}
			sig[g.target] = l
			progress = true
		}
		if !progress {
			names := make([]string, 0, len(stuck))
			for _, g := range stuck {
				names = append(names, g.target)
			}
			sort.Strings(names)
			return nil, fmt.Errorf("mig: bench netlist has undefined or cyclic signals: %s", strings.Join(names, ", "))
		}
		pending = stuck
	}
	for _, n := range outputNames {
		l, ok := sig[n]
		if !ok {
			return nil, fmt.Errorf("mig: bench output %q never defined", n)
		}
		m.AddOutput(l)
	}
	return m, nil
}

// buildBenchGate lowers one BENCH operator onto the majority gadgets.
func buildBenchGate(m *MIG, op string, args []Lit) (Lit, error) {
	reduce := func(f func(a, b Lit) Lit) (Lit, error) {
		if len(args) < 2 {
			return 0, fmt.Errorf("%s needs at least 2 operands, got %d", op, len(args))
		}
		acc := args[0]
		for _, a := range args[1:] {
			acc = f(acc, a)
		}
		return acc, nil
	}
	unary := func() (Lit, error) {
		if len(args) != 1 {
			return 0, fmt.Errorf("%s needs 1 operand, got %d", op, len(args))
		}
		return args[0], nil
	}
	switch op {
	case "AND":
		return reduce(m.And)
	case "OR":
		return reduce(m.Or)
	case "NAND":
		l, err := reduce(m.And)
		return l.Not(), err
	case "NOR":
		l, err := reduce(m.Or)
		return l.Not(), err
	case "XOR":
		return reduce(m.Xor)
	case "XNOR":
		l, err := reduce(m.Xor)
		return l.Not(), err
	case "NOT":
		l, err := unary()
		return l.Not(), err
	case "BUF", "BUFF":
		return unary()
	case "MAJ":
		if len(args) != 3 {
			return 0, fmt.Errorf("MAJ needs 3 operands, got %d", len(args))
		}
		return m.Maj(args[0], args[1], args[2]), nil
	case "CONST0":
		if len(args) != 0 {
			return 0, fmt.Errorf("CONST0 takes no operands")
		}
		return Const0, nil
	case "CONST1":
		if len(args) != 0 {
			return 0, fmt.Errorf("CONST1 takes no operands")
		}
		return Const1, nil
	default:
		return 0, fmt.Errorf("unsupported gate type %q", op)
	}
}
