package mig

import (
	"math/rand"
	"testing"
	"time"
)

func TestEquivalentIdenticalStructures(t *testing.T) {
	build := func() *MIG {
		m := New(4)
		s1, c1 := m.FullAdder(m.Input(0), m.Input(1), m.Input(2))
		s2, c2 := m.FullAdder(s1, c1, m.Input(3))
		m.AddOutput(s2)
		m.AddOutput(c2)
		return m
	}
	eq, ce, err := Equivalent(build(), build(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatalf("identical builds reported different: %v", ce)
	}
}

func TestEquivalentDifferentStructuresSameFunction(t *testing.T) {
	// a⊕b built two ways: MIG XOR gadget vs mux-based.
	m1 := New(2)
	m1.AddOutput(m1.Xor(m1.Input(0), m1.Input(1)))
	m2 := New(2)
	m2.AddOutput(m2.Mux(m2.Input(0), m2.Input(1).Not(), m2.Input(1)))
	eq, _, err := Equivalent(m1, m2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("functionally equal structures reported different")
	}
}

func TestEquivalentFindsCounterexample(t *testing.T) {
	m1 := New(2)
	m1.AddOutput(m1.And(m1.Input(0), m1.Input(1)))
	m2 := New(2)
	m2.AddOutput(m2.Or(m2.Input(0), m2.Input(1)))
	eq, ce, err := Equivalent(m1, m2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Fatal("AND and OR reported equivalent")
	}
	if ce == nil {
		t.Fatal("no counterexample returned")
	}
	// AND and OR differ exactly when inputs differ.
	if ce.Inputs[0] == ce.Inputs[1] {
		t.Errorf("bogus counterexample %v", ce)
	}
}

func TestEquivalentInterfaceMismatch(t *testing.T) {
	if _, _, err := Equivalent(New(2), New(3), 0); err == nil {
		t.Error("input mismatch not reported")
	}
	a, b := New(2), New(2)
	a.AddOutput(a.Input(0))
	if _, _, err := Equivalent(a, b, 0); err == nil {
		t.Error("output mismatch not reported")
	}
}

func TestEquivalentAgainstSimulationFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(2025))
	for trial := 0; trial < 40; trial++ {
		m1 := randomMIG(rng, 5, 25, 2)
		m2 := randomMIG(rng, 5, 25, 2)
		eq, ce, err := Equivalent(m1, m2, 30*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		s1, s2 := m1.Simulate(), m2.Simulate()
		want := true
		for i := range s1 {
			if s1[i] != s2[i] {
				want = false
			}
		}
		if eq != want {
			t.Fatalf("trial %d: SAT says %v, simulation says %v", trial, eq, want)
		}
		if !eq {
			// The counterexample must actually expose a difference.
			o1 := m1.EvalBits(ce.Inputs)
			o2 := m2.EvalBits(ce.Inputs)
			if o1[ce.Output] == o2[ce.Output] {
				t.Fatalf("trial %d: counterexample %v does not differentiate", trial, ce)
			}
		}
	}
}
