package mig

import "fmt"

// ID identifies a node. ID 0 is the constant-0 terminal.
type ID uint32

// Lit is a signal: a node ID with a complement bit in the lowest position.
type Lit uint32

// The two constant signals.
const (
	Const0 Lit = 0 // the constant-0 node, plain
	Const1 Lit = 1 // the constant-0 node, complemented
)

// MakeLit returns the signal for node id, complemented if comp is set.
func MakeLit(id ID, comp bool) Lit {
	l := Lit(id) << 1
	if comp {
		l |= 1
	}
	return l
}

// ID returns the node the signal points to.
func (l Lit) ID() ID { return ID(l >> 1) }

// Comp reports whether the signal is complemented.
func (l Lit) Comp() bool { return l&1 == 1 }

// Not returns the complemented signal.
func (l Lit) Not() Lit { return l ^ 1 }

// NotIf returns the signal complemented when c is true.
func (l Lit) NotIf(c bool) Lit {
	if c {
		return l ^ 1
	}
	return l
}

// String renders the signal as the node ID, prefixed with ~ if complemented.
func (l Lit) String() string {
	if l.Comp() {
		return fmt.Sprintf("~%d", l.ID())
	}
	return fmt.Sprintf("%d", l.ID())
}

type strashKey [3]Lit

// MIG is a majority-inverter graph. Create instances with New.
type MIG struct {
	fanin   [][3]Lit // per-node children; unused for terminals
	numPI   int
	strash  strashTable
	outputs []Lit
}

// New returns an MIG with numPIs primary inputs and no gates or outputs.
func New(numPIs int) *MIG {
	if numPIs < 0 {
		panic("mig: negative number of inputs")
	}
	m := &MIG{
		fanin:  make([][3]Lit, 1+numPIs),
		numPI:  numPIs,
		strash: newStrashTable(),
	}
	return m
}

// NumPIs returns the number of primary inputs.
func (m *MIG) NumPIs() int { return m.numPI }

// NumPOs returns the number of primary outputs.
func (m *MIG) NumPOs() int { return len(m.outputs) }

// NumNodes returns the total number of nodes including terminals and any
// dead gates.
func (m *MIG) NumNodes() int { return len(m.fanin) }

// NumGates returns the total number of gate nodes, including gates no
// longer reachable from the outputs; Size reports the live count.
func (m *MIG) NumGates() int { return len(m.fanin) - 1 - m.numPI }

// Input returns the signal of primary input i (0-based).
func (m *MIG) Input(i int) Lit {
	if i < 0 || i >= m.numPI {
		panic(fmt.Sprintf("mig: input %d out of range (have %d)", i, m.numPI))
	}
	return MakeLit(ID(i+1), false)
}

// IsGate reports whether id is a majority gate.
func (m *MIG) IsGate(id ID) bool { return int(id) > m.numPI && int(id) < len(m.fanin) }

// IsInput reports whether id is a primary input.
func (m *MIG) IsInput(id ID) bool { return id >= 1 && int(id) <= m.numPI }

// InputIndex returns the 0-based index of the primary input id.
func (m *MIG) InputIndex(id ID) int {
	if !m.IsInput(id) {
		panic(fmt.Sprintf("mig: node %d is not an input", id))
	}
	return int(id) - 1
}

// Fanin returns the three children of gate id.
func (m *MIG) Fanin(id ID) [3]Lit {
	if !m.IsGate(id) {
		panic(fmt.Sprintf("mig: node %d is not a gate", id))
	}
	return m.fanin[id]
}

// Maj returns the signal computing 〈abc〉, creating a gate unless the
// result simplifies or an equivalent gate already exists.
func (m *MIG) Maj(a, b, c Lit) Lit {
	m.checkLit(a)
	m.checkLit(b)
	m.checkLit(c)
	key, neg, lit, done := majNorm(a, b, c)
	if done {
		return lit
	}
	if id, ok := m.strash.lookup(key); ok {
		return MakeLit(id, neg)
	}
	id := ID(len(m.fanin))
	m.fanin = append(m.fanin, [3]Lit(key))
	m.strash.insert(key, id)
	return MakeLit(id, neg)
}

// FindMaj reports what Maj(a, b, c) would return without creating
// anything: the simplified signal when a majority axiom collapses the
// gate, or the existing gate under the same structural normalization.
// ok is false when the gate would have to be created. The probe never
// mutates the graph, so concurrent readers may share it; the rewriter's
// choice recording uses it to price candidate gates that structural
// hashing will merge for free at commit time.
func (m *MIG) FindMaj(a, b, c Lit) (Lit, bool) {
	m.checkLit(a)
	m.checkLit(b)
	m.checkLit(c)
	key, neg, lit, done := majNorm(a, b, c)
	if done {
		return lit, true
	}
	if id, ok := m.strash.lookup(key); ok {
		return MakeLit(id, neg), true
	}
	return 0, false
}

// majNorm runs Maj's operand normalization: axiom simplification (done
// with the resolved literal), or the polarity-minimal strash key and
// output negation of the gate to look up or create.
func majNorm(a, b, c Lit) (key strashKey, neg bool, lit Lit, done bool) {
	// Sort operands (majority is fully symmetric).
	if a > b {
		a, b = b, a
	}
	if b > c {
		b, c = c, b
	}
	if a > b {
		a, b = b, a
	}
	// Majority axiom Ω.M: 〈aab〉 = a, 〈aāb〉 = b. After sorting, equal or
	// complementary literals are adjacent.
	if a == b || b == c {
		return strashKey{}, false, b, true
	}
	if a == b.Not() {
		return strashKey{}, false, c, true
	}
	if b == c.Not() {
		return strashKey{}, false, a, true
	}
	// Inverter canonicalization via self-duality 〈abc〉 = ¬〈āb̄c̄〉: store
	// the polarity-minimal version. Flipping complement bits cannot change
	// the operand order because all IDs are distinct here.
	if int(a&1)+int(b&1)+int(c&1) >= 2 {
		a, b, c = a^1, b^1, c^1
		neg = true
	}
	return strashKey{a, b, c}, neg, 0, false
}

func (m *MIG) checkLit(l Lit) {
	if int(l.ID()) >= len(m.fanin) {
		panic(fmt.Sprintf("mig: literal %v refers to nonexistent node", l))
	}
}

// And returns a∧b = 〈0ab〉.
func (m *MIG) And(a, b Lit) Lit { return m.Maj(Const0, a, b) }

// Or returns a∨b = 〈1ab〉.
func (m *MIG) Or(a, b Lit) Lit { return m.Maj(Const1, a, b) }

// Xor returns a⊕b, built from three majority gates.
func (m *MIG) Xor(a, b Lit) Lit {
	return m.And(m.Or(a, b), m.And(a, b).Not())
}

// Mux returns s ? a : b.
func (m *MIG) Mux(s, a, b Lit) Lit {
	return m.Or(m.And(s, a), m.And(s.Not(), b))
}

// FullAdder returns (sum, carry) of a+b+cin using the classic 3-gate MIG of
// Fig. 1 of the paper: carry = 〈a b cin〉 and sum = 〈c̄arry cin 〈a b c̄in〉〉.
func (m *MIG) FullAdder(a, b, cin Lit) (sum, carry Lit) {
	carry = m.Maj(a, b, cin)
	sum = m.Maj(carry.Not(), cin, m.Maj(a, b, cin.Not()))
	return sum, carry
}

// AddOutput appends a primary output pointing at l and returns its index.
func (m *MIG) AddOutput(l Lit) int {
	m.checkLit(l)
	m.outputs = append(m.outputs, l)
	return len(m.outputs) - 1
}

// Output returns the signal of primary output i.
func (m *MIG) Output(i int) Lit { return m.outputs[i] }

// Outputs returns the output signals. The slice is owned by the MIG.
func (m *MIG) Outputs() []Lit { return m.outputs }

// SetOutput redirects primary output i to l.
func (m *MIG) SetOutput(i int, l Lit) {
	m.checkLit(l)
	m.outputs[i] = l
}

// Size returns the number of majority gates reachable from the outputs —
// the "size" metric of the paper.
func (m *MIG) Size() int {
	seen := make([]bool, len(m.fanin))
	var stack []ID
	count := 0
	for _, o := range m.outputs {
		if id := o.ID(); m.IsGate(id) && !seen[id] {
			seen[id] = true
			stack = append(stack, id)
		}
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		count++
		for _, ch := range m.fanin[id] {
			if cid := ch.ID(); m.IsGate(cid) && !seen[cid] {
				seen[cid] = true
				stack = append(stack, cid)
			}
		}
	}
	return count
}

// Levels returns per-node logic levels: terminals are level 0 and a gate is
// one more than its deepest child, i.e. depth counts visited gates as in
// the paper.
func (m *MIG) Levels() []int {
	lv := make([]int, len(m.fanin))
	for id := m.numPI + 1; id < len(m.fanin); id++ {
		max := 0
		for _, ch := range m.fanin[id] {
			if l := lv[ch.ID()]; l > max {
				max = l
			}
		}
		lv[id] = max + 1
	}
	return lv
}

// Depth returns the maximum output level.
func (m *MIG) Depth() int {
	lv := m.Levels()
	d := 0
	for _, o := range m.outputs {
		if l := lv[o.ID()]; l > d {
			d = l
		}
	}
	return d
}

// FanoutCounts returns, for every node, the number of references from
// gates that are reachable from the outputs, plus one per primary output
// pointing at the node.
func (m *MIG) FanoutCounts() []int {
	fo := make([]int, len(m.fanin))
	seen := make([]bool, len(m.fanin))
	var stack []ID
	for _, o := range m.outputs {
		fo[o.ID()]++
		if id := o.ID(); m.IsGate(id) && !seen[id] {
			seen[id] = true
			stack = append(stack, id)
		}
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ch := range m.fanin[id] {
			fo[ch.ID()]++
			if cid := ch.ID(); m.IsGate(cid) && !seen[cid] {
				seen[cid] = true
				stack = append(stack, cid)
			}
		}
	}
	return fo
}

// Cleanup returns a compacted copy containing only nodes reachable from the
// outputs, with the same inputs and outputs (in order), plus the mapping
// from old signals to new signals for reachable nodes.
func (m *MIG) Cleanup() (*MIG, map[Lit]Lit) {
	out, lmap, known := m.compact()
	sigMap := make(map[Lit]Lit)
	for id, ok := range known {
		if ok {
			sigMap[MakeLit(ID(id), false)] = lmap[id]
			sigMap[MakeLit(ID(id), true)] = lmap[id].Not()
		}
	}
	return out, sigMap
}

// Compact is Cleanup without the old-to-new signal map, for callers (the
// rewriting passes) that only need the compacted graph.
func (m *MIG) Compact() *MIG {
	out, _, _ := m.compact()
	return out
}

// compact rebuilds the reachable part of m. Reachability is marked by one
// descending sweep and the copy by one ascending sweep — fanins always
// have smaller IDs than their gate — so arbitrarily deep graphs compact
// without recursion.
func (m *MIG) compact() (*MIG, []Lit, []bool) {
	out := New(m.numPI)
	lmap := make([]Lit, len(m.fanin)) // old ID -> new plain literal
	known := make([]bool, len(m.fanin))
	lmap[0], known[0] = Const0, true
	for i := 0; i < m.numPI; i++ {
		lmap[i+1], known[i+1] = out.Input(i), true
	}
	reach := make([]bool, len(m.fanin))
	for _, o := range m.outputs {
		reach[o.ID()] = true
	}
	for id := len(m.fanin) - 1; id > m.numPI; id-- {
		if !reach[id] {
			continue
		}
		for _, ch := range m.fanin[id] {
			reach[ch.ID()] = true
		}
	}
	for id := m.numPI + 1; id < len(m.fanin); id++ {
		if !reach[id] {
			continue
		}
		f := m.fanin[id]
		lmap[id] = out.Maj(
			lmap[f[0].ID()].NotIf(f[0].Comp()),
			lmap[f[1].ID()].NotIf(f[1].Comp()),
			lmap[f[2].ID()].NotIf(f[2].Comp()))
		known[id] = true
	}
	for _, o := range m.outputs {
		out.AddOutput(lmap[o.ID()].NotIf(o.Comp()))
	}
	return out, lmap, known
}

// Clone returns a deep copy of the MIG.
func (m *MIG) Clone() *MIG {
	return &MIG{
		fanin:   append([][3]Lit(nil), m.fanin...),
		numPI:   m.numPI,
		strash:  m.strash.clone(),
		outputs: append([]Lit(nil), m.outputs...),
	}
}

// Stats summarizes an MIG for reporting.
type Stats struct {
	PIs, POs, Size, Depth int
}

// Stats returns the current statistics of the MIG.
func (m *MIG) Stats() Stats {
	return Stats{PIs: m.numPI, POs: len(m.outputs), Size: m.Size(), Depth: m.Depth()}
}

func (s Stats) String() string {
	return fmt.Sprintf("i/o=%d/%d size=%d depth=%d", s.PIs, s.POs, s.Size, s.Depth)
}
