package mig

import "slices"

// Structural analyses used by the rewriting algorithms: fanout-free
// regions (Sec. IV-C of the paper) and cone extraction.

// FFRRoots computes, for every node, the root of its fanout-free region.
// A node is a region root if it drives a primary output or has fanout
// other than one among the live part of the graph; every single-fanout
// gate belongs to the region of its unique parent. Terminals are their own
// roots. Dead nodes map to themselves.
func (m *MIG) FFRRoots() []ID {
	fo := m.FanoutCounts()
	parent := make([]ID, len(m.fanin)) // unique parent of single-fanout nodes
	seen := make([]bool, len(m.fanin))
	poRef := make([]bool, len(m.fanin)) // directly drives a primary output
	var stack []ID
	for _, o := range m.outputs {
		poRef[o.ID()] = true
		if id := o.ID(); m.IsGate(id) && !seen[id] {
			seen[id] = true
			stack = append(stack, id)
		}
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ch := range m.fanin[id] {
			cid := ch.ID()
			if fo[cid] == 1 {
				parent[cid] = id
			}
			if m.IsGate(cid) && !seen[cid] {
				seen[cid] = true
				stack = append(stack, cid)
			}
		}
	}
	root := make([]ID, len(m.fanin))
	done := make([]bool, len(m.fanin))
	var chain []ID
	for id := range root {
		// Walk the single-fanout chain upward iteratively — deep fanout-
		// free chains (long carry chains) would otherwise recurse once per
		// gate. Chaining continues only while the sole fanout is another
		// gate; nodes driving a primary output are roots of their own
		// region.
		v := ID(id)
		chain = chain[:0]
		for !done[v] && m.IsGate(v) && seen[v] && fo[v] == 1 && !poRef[v] {
			chain = append(chain, v)
			v = parent[v]
		}
		r := v
		if done[v] {
			r = root[v]
		} else {
			root[v], done[v] = v, true
		}
		for _, c := range chain {
			root[c], done[c] = r, true
		}
	}
	return root
}

// FFRMembers groups live gates by their fanout-free-region root. The map
// value lists the gates of the region in ascending (topological) order,
// including the root itself.
func (m *MIG) FFRMembers() map[ID][]ID {
	roots := m.FFRRoots()
	fo := m.FanoutCounts()
	groups := make(map[ID][]ID)
	for id := m.numPI + 1; id < len(m.fanin); id++ {
		if fo[id] == 0 {
			continue // dead gate
		}
		groups[roots[id]] = append(groups[roots[id]], ID(id))
	}
	return groups
}

// ConeNodes returns the gate IDs in the cone of root bounded by leaves, in
// ascending order and including root's gate if any. Leaves themselves are
// not included; the constant node never blocks traversal. The traversal is
// iterative, so arbitrarily deep cones cannot overflow the stack; hot
// paths should use ConeNodesWS with a reused Workspace instead.
func (m *MIG) ConeNodes(root ID, leaves []ID) []ID {
	nodes := m.ConeNodesWS(NewWorkspace(), root, leaves)
	slices.Sort(nodes)
	return nodes
}

// ConeIsReplaceable reports whether the cone of root bounded by leaves can
// be replaced without duplicating logic: every internal gate (excluding the
// root) must have all of its fanout inside the cone. fo must come from
// FanoutCounts of the same MIG.
func (m *MIG) ConeIsReplaceable(root ID, leaves []ID, fo []int) bool {
	w := NewWorkspace()
	nodes := m.ConeNodesWS(w, root, leaves)
	return m.ConeSelfContainedWS(w, nodes, root, fo)
}
