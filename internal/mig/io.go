package mig

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteText serializes the MIG in a minimal line-oriented format:
//
//	mig <numPI> <numGates> <numPO>
//	<a> <b> <c>        one line per gate, children as literals 2*id+comp
//	out <lit>          one line per primary output
//
// Gate IDs are implicit: the i-th gate line defines node numPI+1+i. The
// format round-trips through ReadText and is the storage format of the
// optimal-MIG database artifact.
func (m *MIG) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "mig %d %d %d\n", m.numPI, m.NumGates(), len(m.outputs))
	for id := m.numPI + 1; id < len(m.fanin); id++ {
		f := m.fanin[id]
		fmt.Fprintf(bw, "%d %d %d\n", uint32(f[0]), uint32(f[1]), uint32(f[2]))
	}
	for _, o := range m.outputs {
		fmt.Fprintf(bw, "out %d\n", uint32(o))
	}
	return bw.Flush()
}

// ReadText parses the format produced by WriteText. The gates are re-added
// through Maj, so the result is structurally hashed (and may be smaller
// than the input if it contained redundancies); literal identities of the
// source are preserved via remapping.
func ReadText(r io.Reader) (*MIG, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	if !sc.Scan() {
		return nil, fmt.Errorf("mig: empty input")
	}
	var numPI, numGates, numPO int
	if _, err := fmt.Sscanf(sc.Text(), "mig %d %d %d", &numPI, &numGates, &numPO); err != nil {
		return nil, fmt.Errorf("mig: bad header %q: %v", sc.Text(), err)
	}
	m := New(numPI)
	// old literal -> new literal; terminals map to themselves.
	lmap := make([]Lit, 1+numPI, 1+numPI+numGates)
	for i := range lmap {
		lmap[i] = MakeLit(ID(i), false)
	}
	conv := func(raw uint64) (Lit, error) {
		old := Lit(raw)
		if int(old.ID()) >= len(lmap) {
			return 0, fmt.Errorf("mig: literal %d refers to a node defined later", raw)
		}
		return lmap[old.ID()].NotIf(old.Comp()), nil
	}
	for g := 0; g < numGates; g++ {
		if !sc.Scan() {
			return nil, fmt.Errorf("mig: truncated input: expected %d gates, got %d", numGates, g)
		}
		fields := strings.Fields(sc.Text())
		if len(fields) != 3 {
			return nil, fmt.Errorf("mig: bad gate line %q", sc.Text())
		}
		var ch [3]Lit
		for i, f := range fields {
			raw, err := strconv.ParseUint(f, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("mig: bad literal %q: %v", f, err)
			}
			l, err := conv(raw)
			if err != nil {
				return nil, err
			}
			ch[i] = l
		}
		lmap = append(lmap, m.Maj(ch[0], ch[1], ch[2]))
	}
	for p := 0; p < numPO; p++ {
		if !sc.Scan() {
			return nil, fmt.Errorf("mig: truncated input: expected %d outputs, got %d", numPO, p)
		}
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "out ") {
			return nil, fmt.Errorf("mig: bad output line %q", line)
		}
		raw, err := strconv.ParseUint(strings.TrimSpace(line[4:]), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("mig: bad output literal: %v", err)
		}
		l, err := conv(raw)
		if err != nil {
			return nil, err
		}
		m.AddOutput(l)
	}
	return m, sc.Err()
}

// WriteDOT emits a Graphviz rendering in the visual style of the paper's
// figures: circles for majority gates, boxes for terminals, dashed edges
// for complemented signals.
func (m *MIG) WriteDOT(w io.Writer, name string) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n  rankdir=BT;\n", name)
	fo := m.FanoutCounts()
	if fo[0] > 0 {
		fmt.Fprintf(bw, "  n0 [shape=box,label=\"0\"];\n")
	}
	for i := 0; i < m.numPI; i++ {
		if fo[i+1] > 0 {
			fmt.Fprintf(bw, "  n%d [shape=box,label=\"x%d\"];\n", i+1, i+1)
		}
	}
	for id := m.numPI + 1; id < len(m.fanin); id++ {
		if fo[id] == 0 {
			continue
		}
		fmt.Fprintf(bw, "  n%d [shape=circle,label=\"maj\"];\n", id)
		for _, ch := range m.fanin[id] {
			style := "solid"
			if ch.Comp() {
				style = "dashed"
			}
			fmt.Fprintf(bw, "  n%d -> n%d [style=%s];\n", ch.ID(), id, style)
		}
	}
	for i, o := range m.outputs {
		style := "solid"
		if o.Comp() {
			style = "dashed"
		}
		fmt.Fprintf(bw, "  y%d [shape=plaintext,label=\"y%d\"];\n", i, i)
		fmt.Fprintf(bw, "  n%d -> y%d [style=%s];\n", o.ID(), i, style)
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
