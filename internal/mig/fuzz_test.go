package mig

import (
	"testing"
	"time"
)

// fuzzMIG decodes a byte stream into a small MIG deterministically:
// the stream is consumed as literal picks over the nodes built so far,
// three per gate, then one per output. Every byte sequence decodes to a
// structurally valid graph, so the fuzzer explores graph space rather
// than fighting a parser.
func fuzzMIG(n, outputs int, data []byte) *MIG {
	m := New(n)
	lits := []Lit{Const0}
	for i := 0; i < n; i++ {
		lits = append(lits, m.Input(i))
	}
	next := 0
	pick := func() Lit {
		if next >= len(data) {
			return Const0
		}
		b := data[next]
		next++
		l := lits[int(b>>1)%len(lits)]
		return l.NotIf(b&1 == 1)
	}
	gates := 0
	for next+3 <= len(data) && gates < 24 {
		lits = append(lits, m.Maj(pick(), pick(), pick()))
		gates++
	}
	for i := 0; i < outputs; i++ {
		m.AddOutput(pick())
	}
	return m
}

// FuzzSimVsSAT is the cross-implementation oracle: the word-parallel
// simulation prefilter and the SAT miter must never disagree on any pair
// of graphs. A simulation refutation of a SAT-proven-equivalent pair
// would mean the packed evaluator (or the MIG→sim compiler) computes a
// different function than the Tseitin encoding — the two independent
// semantics implementations check each other.
func FuzzSimVsSAT(f *testing.F) {
	// Hand-picked seeds: empty, a dense gate soup, and two
	// counterexample-shaped pairs — graphs differing on exactly one
	// assignment (the pattern SAT counterexamples historically take, the
	// hardest case for random simulation).
	f.Add([]byte{})
	f.Add([]byte{0x07, 0x09, 0x0b, 0x06, 0x08, 0x0a, 0x0d, 0x0f, 0x11})
	f.Add([]byte{2, 4, 6, 3, 5, 7, 12, 14, 16, 13, 15, 17, 18, 19})
	// Single-minterm shape: AND chains of all inputs in mixed polarity.
	f.Add([]byte{0x02, 0x04, 0x06, 0x0d, 0x05, 0x07, 0x0e, 0x10, 0x12, 0x0f, 0x11, 0x13, 0x14, 0x15})
	f.Fuzz(func(t *testing.T, data []byte) {
		half := len(data) / 2
		a := fuzzMIG(4, 2, data[:half])
		b := fuzzMIG(4, 2, data[half:])

		simEq, simCE, simSt, err := EquivalentOpt(a, b, EquivOptions{NoSAT: true})
		if err != nil {
			t.Fatalf("sim check errored: %v", err)
		}
		satEq, satCE, satSt, err := EquivalentOpt(a, b, EquivOptions{SimPatterns: -1, Timeout: 30 * time.Second})
		if err != nil {
			t.Fatalf("SAT check errored: %v", err)
		}
		if !satSt.SATRan || !satSt.Proven {
			t.Fatalf("pure-SAT check did not prove: %+v", satSt)
		}
		if !simEq && satEq {
			t.Fatalf("simulation refuted (%v after %d patterns) a SAT-proven-equivalent pair",
				simCE, simSt.SimPatterns)
		}
		// Any counterexample, from either rung, must replay to a real
		// difference through the scalar evaluator.
		for _, ce := range []*Counterexample{simCE, satCE} {
			if ce == nil {
				continue
			}
			if len(ce.Outputs) == 0 {
				t.Fatalf("counterexample without differing outputs: %v", ce)
			}
			oa, ob := a.EvalBits(ce.Inputs), b.EvalBits(ce.Inputs)
			for _, o := range ce.Outputs {
				if oa[o] == ob[o] {
					t.Fatalf("counterexample %v does not differentiate output %d", ce, o)
				}
			}
		}
		// With 4 inputs the default pattern ladder is exhaustive, so the
		// refute-only rung is actually complete here: it must refute every
		// truly inequivalent pair, not just never contradict SAT.
		if simEq && !satEq {
			t.Fatalf("16-assignment sweep missed the counterexample %v", satCE)
		}
	})
}
