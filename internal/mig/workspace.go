package mig

// Workspace holds reusable, epoch-stamped scratch state for the structural
// analyses on the rewriting hot path. ConeNodes and ConeIsReplaceable are
// evaluated for every candidate cut of every node of every pass; backing
// their leaf/visited sets and reference counters with per-node arrays that
// are invalidated by bumping an epoch counter — instead of fresh
// map[ID]bool per call — makes repeated cone analysis allocation-free.
//
// A Workspace may be reused across passes and across graphs (the arrays
// grow to the largest graph seen) but must not be shared by two goroutines
// at once; the parallel rewriter keeps one per worker.
type Workspace struct {
	epoch uint32
	leaf  []uint32 // stamp: node is a leaf of the current cone
	seen  []uint32 // stamp: node visited by the current traversal
	refEp []uint32 // stamp: ref[i] is valid in the current epoch
	ref   []int32  // cone-internal reference counts
	order []ID     // reusable node-list result buffer
	stack []ID     // reusable DFS stack
}

// NewWorkspace returns an empty workspace; the scratch arrays are sized on
// first use.
func NewWorkspace() *Workspace { return &Workspace{} }

// begin sizes the arrays for an n-node graph and opens a fresh epoch.
func (w *Workspace) begin(n int) {
	if len(w.leaf) < n {
		w.leaf = make([]uint32, n)
		w.seen = make([]uint32, n)
		w.refEp = make([]uint32, n)
		w.ref = make([]int32, n)
	}
	w.epoch++
	if w.epoch == 0 { // wrapped: old stamps would alias the new epoch
		clear(w.leaf)
		clear(w.seen)
		clear(w.refEp)
		w.epoch = 1
	}
}

// ConeNodesWS is ConeNodes with all scratch owned by w: the gate IDs in
// the cone of root bounded by leaves, not including the leaves. Unlike
// ConeNodes the order is unspecified — the hot-path callers only need the
// membership and the count, and skipping the sort matters at cut-
// enumeration volume. The result aliases w and is valid until the next
// call on w.
func (m *MIG) ConeNodesWS(w *Workspace, root ID, leaves []ID) []ID {
	w.begin(len(m.fanin))
	e := w.epoch
	for _, l := range leaves {
		w.leaf[l] = e
	}
	w.order = w.order[:0]
	if w.leaf[root] == e || !m.IsGate(root) {
		return w.order
	}
	w.stack = append(w.stack[:0], root)
	w.seen[root] = e
	for len(w.stack) > 0 {
		id := w.stack[len(w.stack)-1]
		w.stack = w.stack[:len(w.stack)-1]
		w.order = append(w.order, id)
		for _, ch := range m.fanin[id] {
			cid := ch.ID()
			if w.seen[cid] != e && w.leaf[cid] != e && m.IsGate(cid) {
				w.seen[cid] = e
				w.stack = append(w.stack, cid)
			}
		}
	}
	return w.order
}

// ConeSelfContainedWS reports whether the cone most recently computed by
// ConeNodesWS on w can be replaced without duplicating logic: every
// internal gate except the root must have all of its fanout inside the
// cone. nodes must be the (still valid) result of that ConeNodesWS call
// and fo must come from FanoutCounts of the same MIG.
func (m *MIG) ConeSelfContainedWS(w *Workspace, nodes []ID, root ID, fo []int) bool {
	e := w.epoch
	for _, id := range nodes {
		for _, ch := range m.fanin[id] {
			cid := ch.ID()
			if w.refEp[cid] != e {
				w.refEp[cid] = e
				w.ref[cid] = 0
			}
			w.ref[cid]++
		}
	}
	for _, id := range nodes {
		if id == root {
			continue
		}
		if w.refEp[id] != e || int(w.ref[id]) != fo[id] {
			return false
		}
	}
	return true
}

// SizeWS is Size with the visited buffer owned by w.
func (m *MIG) SizeWS(w *Workspace) int {
	w.begin(len(m.fanin))
	e := w.epoch
	w.stack = w.stack[:0]
	count := 0
	for _, o := range m.outputs {
		if id := o.ID(); m.IsGate(id) && w.seen[id] != e {
			w.seen[id] = e
			w.stack = append(w.stack, id)
		}
	}
	for len(w.stack) > 0 {
		id := w.stack[len(w.stack)-1]
		w.stack = w.stack[:len(w.stack)-1]
		count++
		for _, ch := range m.fanin[id] {
			if cid := ch.ID(); m.IsGate(cid) && w.seen[cid] != e {
				w.seen[cid] = e
				w.stack = append(w.stack, cid)
			}
		}
	}
	return count
}
