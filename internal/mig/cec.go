package mig

import (
	"fmt"
	"time"

	"mighash/internal/sat"
	"mighash/internal/sim"
)

// Combinational equivalence checking of two MIGs as a two-rung ladder:
// word-parallel simulation first — a few thousand patterns refute almost
// every inequivalent pair in microseconds — and the SAT miter only for
// pairs simulation cannot tell apart. SAT counterexamples flow back into
// the pattern pool (counterexample-guided), so a distinguishing input
// found once is the first probe tried against every later pair.

// DefaultSimPatterns is the prefilter budget of Equivalent: patterns are
// packed 64 per word, so the default costs 32 words per node and sweep.
const DefaultSimPatterns = 2048

// tseitin encodes every reachable gate of m into s, returning one SAT
// literal per primary output. piVars supplies the SAT variable of each
// primary input (shared between the two sides of a miter).
func tseitin(s *sat.Solver, m *MIG, piVars []int) []sat.Lit {
	lits := make([]sat.Lit, len(m.fanin))
	constVar := s.NewVar()
	s.AddClause(sat.NegLit(constVar))
	lits[0] = sat.PosLit(constVar)
	for i := 0; i < m.numPI; i++ {
		lits[i+1] = sat.PosLit(piVars[i])
	}
	conv := func(l Lit) sat.Lit {
		v := lits[l.ID()]
		if l.Comp() {
			v = v.Not()
		}
		return v
	}
	for id := m.numPI + 1; id < len(m.fanin); id++ {
		f := m.fanin[id]
		out := sat.PosLit(s.NewVar())
		s.Majority(out, conv(f[0]), conv(f[1]), conv(f[2]))
		lits[id] = out
	}
	outs := make([]sat.Lit, len(m.outputs))
	for i, o := range m.outputs {
		outs[i] = conv(o)
	}
	return outs
}

// EquivOptions tunes EquivalentOpt.
type EquivOptions struct {
	// Timeout bounds the SAT solver; zero means none. The simulation
	// prefilter is not budgeted — it is microseconds at any setting.
	Timeout time.Duration
	// SimPatterns is the prefilter budget, rounded up to a multiple of
	// 64. Zero means DefaultSimPatterns; negative disables the prefilter
	// (pure SAT, the pre-ladder behavior).
	SimPatterns int
	// Seed makes the random tail of the pattern ladder reproducible.
	// Ignored when Pool is set (the pool owns its seed).
	Seed uint64
	// Pool, when non-nil, supplies the patterns and accumulates
	// counterexamples across calls: SAT models and simulation refutations
	// are Added so later checks replay them first. A nil Pool gets a
	// private per-call pool seeded with Seed.
	Pool *sim.Pool
	// NoSAT makes the check refute-only: pairs the prefilter cannot tell
	// apart count as equivalent without a proof (EquivStats.Proven stays
	// false). This is the differential-verification mode — cheap enough
	// to run after every pass of every pipeline.
	NoSAT bool
}

// EquivStats reports how an equivalence check was decided.
type EquivStats struct {
	// SimPatterns is the number of patterns actually simulated.
	SimPatterns int
	// SimRefuted is set when the prefilter found a distinguishing
	// pattern — the SAT solver never ran.
	SimRefuted bool
	// SATRan is set when the SAT miter was built and solved.
	SATRan bool
	// Proven is set when the verdict is a proof (SAT UNSAT for
	// equivalence, any concrete counterexample for inequivalence) rather
	// than "simulation found nothing" under NoSAT.
	Proven bool
}

// Equivalent checks whether a and b compute the same functions output by
// output, running the simulation prefilter with default budgets before
// the SAT miter. It returns an error when the interfaces mismatch or the
// solver budget (timeout; zero means none) expires; a non-nil
// counterexample carries the full distinguishing input assignment and
// every differing output.
func Equivalent(a, b *MIG, timeout time.Duration) (bool, *Counterexample, error) {
	eq, ce, _, err := EquivalentOpt(a, b, EquivOptions{Timeout: timeout})
	return eq, ce, err
}

// EquivalentOpt is Equivalent with the verification ladder exposed: the
// prefilter budget and pattern pool, the refute-only mode, and statistics
// reporting which rung decided the answer.
func EquivalentOpt(a, b *MIG, opt EquivOptions) (bool, *Counterexample, EquivStats, error) {
	var st EquivStats
	if a.NumPIs() != b.NumPIs() {
		return false, nil, st, fmt.Errorf("mig: input count mismatch: %d vs %d", a.NumPIs(), b.NumPIs())
	}
	if a.NumPOs() != b.NumPOs() {
		return false, nil, st, fmt.Errorf("mig: output count mismatch: %d vs %d", a.NumPOs(), b.NumPOs())
	}
	pool := opt.Pool
	if opt.SimPatterns >= 0 {
		patterns := opt.SimPatterns
		if patterns == 0 {
			patterns = DefaultSimPatterns
		}
		w := (patterns + 63) / 64
		if pool == nil {
			pool = sim.NewPool(a.NumPIs(), opt.Seed)
		}
		if ce, n := simRefute(a, b, pool, w, nil); ce != nil {
			st.SimPatterns = n
			st.SimRefuted, st.Proven = true, true
			return false, ce, st, nil
		} else {
			st.SimPatterns = n
		}
	}
	if opt.NoSAT {
		// Refute-only: simulation found nothing; report equivalent without
		// a proof (Proven stays false).
		return true, nil, st, nil
	}

	st.SATRan = true
	s := sat.New()
	if opt.Timeout > 0 {
		s.Deadline = time.Now().Add(opt.Timeout)
	}
	piVars := make([]int, a.NumPIs())
	for i := range piVars {
		piVars[i] = s.NewVar()
	}
	outA := tseitin(s, a, piVars)
	outB := tseitin(s, b, piVars)
	// One XOR output per pair; the miter asserts that some pair differs.
	diff := make([]sat.Lit, len(outA))
	for i := range outA {
		d := sat.PosLit(s.NewVar())
		// d ↔ outA[i] ⊕ outB[i]
		s.AddClause(d.Not(), outA[i], outB[i])
		s.AddClause(d.Not(), outA[i].Not(), outB[i].Not())
		s.AddClause(d, outA[i].Not(), outB[i])
		s.AddClause(d, outA[i], outB[i].Not())
		diff[i] = d
	}
	s.AddClause(diff...)
	switch s.Solve() {
	case sat.Unsat:
		st.Proven = true
		return true, nil, st, nil
	case sat.Sat:
		st.Proven = true
		ce := &Counterexample{Inputs: make([]bool, len(piVars))}
		for i, v := range piVars {
			ce.Inputs[i] = s.Value(v)
		}
		// Replaying the model through the simulator yields every output it
		// distinguishes — the solver's difference literals only certify at
		// least one — and regression-checks the extraction itself.
		ce.Outputs = diffOutputs(a, b, ce.Inputs)
		if len(ce.Outputs) == 0 {
			// The replay disagreeing with the solver would mean a solver or
			// encoding bug; fall back to the certified literals rather than
			// report an empty counterexample.
			for i, d := range diff {
				if s.ValueLit(d) {
					ce.Outputs = append(ce.Outputs, i)
				}
			}
		}
		if len(ce.Outputs) > 0 {
			ce.Output = ce.Outputs[0]
		}
		if pool != nil {
			// Counterexample-guided: the next check over this pool replays
			// the distinguishing input before anything else.
			pool.Add(ce.Inputs)
		}
		return false, ce, st, nil
	default:
		return false, nil, st, fmt.Errorf("mig: equivalence check timed out after %v", opt.Timeout)
	}
}

// simRefute sweeps both graphs over 64·w pool patterns and extracts a
// counterexample from the earliest differing pattern, or nil when the
// batch cannot tell the graphs apart. ws may be nil for a private
// workspace; n reports the patterns simulated.
func simRefute(a, b *MIG, pool *sim.Pool, w int, ws *sim.Workspace) (ce *Counterexample, n int) {
	if ws == nil {
		ws = sim.NewWorkspace()
	}
	ca, cb := a.SimCircuit(), b.SimCircuit()
	inputs := ws.Inputs(ca.NumPIs, w)
	pool.Fill(inputs, w)
	// One workspace serves both sweeps; outputs are snapshotted into
	// per-call slices only when they differ.
	outA := make([]uint64, ca.NumPOs()*w)
	outB := make([]uint64, cb.NumPOs()*w)
	ca.Run(ws, inputs, w, outA)
	cb.Run(ws, inputs, w, outB)
	n = 64 * w
	q, _, differs := sim.Diff(outA, outB, w)
	if !differs {
		return nil, n
	}
	ce = &Counterexample{
		Inputs:  sim.Assignment(inputs, w, ca.NumPIs, q),
		Outputs: sim.DiffOutputs(outA, outB, w, q),
	}
	ce.Output = ce.Outputs[0]
	pool.Add(ce.Inputs)
	return ce, n
}

// diffOutputs evaluates both graphs on one assignment and returns every
// differing output index.
func diffOutputs(a, b *MIG, inputs []bool) []int {
	ra, rb := a.EvalBits(inputs), b.EvalBits(inputs)
	var outs []int
	for i := range ra {
		if ra[i] != rb[i] {
			outs = append(outs, i)
		}
	}
	return outs
}

// Counterexample is an input assignment on which two MIGs disagree.
type Counterexample struct {
	// Inputs is the full primary-input assignment, one value per PI.
	Inputs []bool
	// Outputs lists every primary output differing under Inputs, in
	// order; Output repeats the first for compatibility.
	Outputs []int
	Output  int
}

func (c *Counterexample) String() string {
	if len(c.Outputs) > 1 {
		return fmt.Sprintf("outputs %v differ on inputs %v", c.Outputs, c.Inputs)
	}
	return fmt.Sprintf("output %d differs on inputs %v", c.Output, c.Inputs)
}
