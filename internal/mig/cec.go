package mig

import (
	"fmt"
	"time"

	"mighash/internal/sat"
)

// Combinational equivalence checking of two MIGs by building a miter and
// handing it to the CDCL solver. This is how rewriting passes are verified
// on circuits too wide for exhaustive simulation.

// tseitin encodes every reachable gate of m into s, returning one SAT
// literal per primary output. piVars supplies the SAT variable of each
// primary input (shared between the two sides of a miter).
func tseitin(s *sat.Solver, m *MIG, piVars []int) []sat.Lit {
	lits := make([]sat.Lit, len(m.fanin))
	constVar := s.NewVar()
	s.AddClause(sat.NegLit(constVar))
	lits[0] = sat.PosLit(constVar)
	for i := 0; i < m.numPI; i++ {
		lits[i+1] = sat.PosLit(piVars[i])
	}
	conv := func(l Lit) sat.Lit {
		v := lits[l.ID()]
		if l.Comp() {
			v = v.Not()
		}
		return v
	}
	for id := m.numPI + 1; id < len(m.fanin); id++ {
		f := m.fanin[id]
		out := sat.PosLit(s.NewVar())
		s.Majority(out, conv(f[0]), conv(f[1]), conv(f[2]))
		lits[id] = out
	}
	outs := make([]sat.Lit, len(m.outputs))
	for i, o := range m.outputs {
		outs[i] = conv(o)
	}
	return outs
}

// Equivalent checks whether a and b compute the same functions output by
// output. It returns an error when the interfaces mismatch or the solver
// budget (timeout; zero means none) expires; a non-nil counterexample
// describes the first differing output.
func Equivalent(a, b *MIG, timeout time.Duration) (bool, *Counterexample, error) {
	if a.NumPIs() != b.NumPIs() {
		return false, nil, fmt.Errorf("mig: input count mismatch: %d vs %d", a.NumPIs(), b.NumPIs())
	}
	if a.NumPOs() != b.NumPOs() {
		return false, nil, fmt.Errorf("mig: output count mismatch: %d vs %d", a.NumPOs(), b.NumPOs())
	}
	s := sat.New()
	if timeout > 0 {
		s.Deadline = time.Now().Add(timeout)
	}
	piVars := make([]int, a.NumPIs())
	for i := range piVars {
		piVars[i] = s.NewVar()
	}
	outA := tseitin(s, a, piVars)
	outB := tseitin(s, b, piVars)
	// One XOR output per pair; the miter asserts that some pair differs.
	diff := make([]sat.Lit, len(outA))
	for i := range outA {
		d := sat.PosLit(s.NewVar())
		// d ↔ outA[i] ⊕ outB[i]
		s.AddClause(d.Not(), outA[i], outB[i])
		s.AddClause(d.Not(), outA[i].Not(), outB[i].Not())
		s.AddClause(d, outA[i].Not(), outB[i])
		s.AddClause(d, outA[i], outB[i].Not())
		diff[i] = d
	}
	s.AddClause(diff...)
	switch s.Solve() {
	case sat.Unsat:
		return true, nil, nil
	case sat.Sat:
		ce := &Counterexample{Inputs: make([]bool, len(piVars))}
		for i, v := range piVars {
			ce.Inputs[i] = s.Value(v)
		}
		for i, d := range diff {
			if s.ValueLit(d) {
				ce.Output = i
				break
			}
		}
		return false, ce, nil
	default:
		return false, nil, fmt.Errorf("mig: equivalence check timed out after %v", timeout)
	}
}

// Counterexample is an input assignment on which two MIGs disagree.
type Counterexample struct {
	Inputs []bool
	Output int // index of a differing primary output
}

func (c *Counterexample) String() string {
	return fmt.Sprintf("output %d differs on inputs %v", c.Output, c.Inputs)
}
