package mig

import (
	"math/rand"
	"testing"

	"mighash/internal/sim"
)

// mutate returns a clone of m with output j XOR-ed with input i — a
// ground-truth inequivalent mutant (it differs exactly on the
// assignments setting input i).
func mutate(m *MIG, j, i int) *MIG {
	c := m.Clone()
	c.SetOutput(j, c.Xor(c.Output(j), c.Input(i)))
	return c
}

// TestEquivalentOptPrefilterRefutesWithoutSAT is the acceptance check for
// the prefilter: a corpus of mutated circuits must be refuted by
// simulation alone, the SAT solver never invoked.
func TestEquivalentOptPrefilterRefutesWithoutSAT(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		m := randomMIG(rng, 4+rng.Intn(5), 10+rng.Intn(30), 1+rng.Intn(3))
		mut := mutate(m, rng.Intn(m.NumPOs()), rng.Intn(m.NumPIs()))
		eq, ce, st, err := EquivalentOpt(m, mut, EquivOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if eq {
			t.Fatalf("trial %d: mutant reported equivalent", trial)
		}
		if !st.SimRefuted || st.SATRan {
			t.Fatalf("trial %d: mutant not refuted by prefilter: %+v", trial, st)
		}
		if !st.Proven {
			t.Fatalf("trial %d: concrete counterexample not marked proven", trial)
		}
		if ce == nil || len(ce.Inputs) != m.NumPIs() || len(ce.Outputs) == 0 {
			t.Fatalf("trial %d: malformed counterexample %v", trial, ce)
		}
	}
}

// TestEquivalentOptNoSAT covers the refute-only mode: sim-clean pairs are
// reported equivalent but unproven, and the SAT solver stays cold.
func TestEquivalentOptNoSAT(t *testing.T) {
	m1 := New(2)
	m1.AddOutput(m1.Xor(m1.Input(0), m1.Input(1)))
	m2 := New(2)
	m2.AddOutput(m2.Mux(m2.Input(0), m2.Input(1).Not(), m2.Input(1)))
	eq, ce, st, err := EquivalentOpt(m1, m2, EquivOptions{NoSAT: true})
	if err != nil {
		t.Fatal(err)
	}
	if !eq || ce != nil {
		t.Fatalf("sim-clean pair refuted: %v", ce)
	}
	if st.Proven || st.SATRan {
		t.Fatalf("NoSAT check claims a proof: %+v", st)
	}
	if st.SimPatterns < DefaultSimPatterns {
		t.Fatalf("simulated %d patterns, want >= %d", st.SimPatterns, DefaultSimPatterns)
	}
}

// TestEquivalentOptPureSAT pins the pre-ladder behavior behind
// SimPatterns < 0: no simulation, straight to the miter.
func TestEquivalentOptPureSAT(t *testing.T) {
	m1 := New(2)
	m1.AddOutput(m1.And(m1.Input(0), m1.Input(1)))
	m2 := New(2)
	m2.AddOutput(m2.Or(m2.Input(0), m2.Input(1)))
	eq, ce, st, err := EquivalentOpt(m1, m2, EquivOptions{SimPatterns: -1})
	if err != nil {
		t.Fatal(err)
	}
	if eq || ce == nil {
		t.Fatal("AND vs OR reported equivalent")
	}
	if st.SimPatterns != 0 || st.SimRefuted || !st.SATRan || !st.Proven {
		t.Fatalf("unexpected stats for pure SAT: %+v", st)
	}
}

// TestCounterexampleListsAllOutputs is the regression test for the
// counterexample fix: every differing output must be reported (the old
// code only reported the first), and the assignment must replay to the
// same verdict through the word-parallel simulator.
func TestCounterexampleListsAllOutputs(t *testing.T) {
	// Outputs 0 and 1 swapped between the two graphs, output 2 shared:
	// whenever the inputs differ, outputs 0 AND 1 both disagree.
	build := func(swap bool) *MIG {
		m := New(2)
		and := m.And(m.Input(0), m.Input(1))
		or := m.Or(m.Input(0), m.Input(1))
		if swap {
			and, or = or, and
		}
		m.AddOutput(and)
		m.AddOutput(or)
		m.AddOutput(m.Input(0))
		return m
	}
	a, b := build(false), build(true)
	for _, mode := range []struct {
		name string
		opt  EquivOptions
	}{
		{"sim", EquivOptions{}},
		{"sat", EquivOptions{SimPatterns: -1}},
	} {
		eq, ce, _, err := EquivalentOpt(a, b, mode.opt)
		if err != nil {
			t.Fatal(err)
		}
		if eq || ce == nil {
			t.Fatalf("%s: swapped outputs reported equivalent", mode.name)
		}
		if len(ce.Outputs) != 2 || ce.Outputs[0] != 0 || ce.Outputs[1] != 1 {
			t.Fatalf("%s: Outputs = %v, want [0 1]", mode.name, ce.Outputs)
		}
		if ce.Output != ce.Outputs[0] {
			t.Fatalf("%s: Output = %d, want first of %v", mode.name, ce.Output, ce.Outputs)
		}
		// Replay the assignment through the word-parallel simulator: the
		// reported outputs, and only those, must differ.
		replayDiff := replaySim(t, a, b, ce.Inputs)
		if len(replayDiff) != len(ce.Outputs) {
			t.Fatalf("%s: replay differs on %v, counterexample says %v", mode.name, replayDiff, ce.Outputs)
		}
		for i := range replayDiff {
			if replayDiff[i] != ce.Outputs[i] {
				t.Fatalf("%s: replay differs on %v, counterexample says %v", mode.name, replayDiff, ce.Outputs)
			}
		}
	}
}

// replaySim runs one assignment through both compiled circuits on the
// word-parallel engine and returns the differing output indices.
func replaySim(t *testing.T, a, b *MIG, inputs []bool) []int {
	t.Helper()
	ca, cb := a.SimCircuit(), b.SimCircuit()
	ws := sim.NewWorkspace()
	in := make([]uint64, ca.NumPIs)
	for i, v := range inputs {
		if v {
			in[i] = 1
		}
	}
	outA := make([]uint64, ca.NumPOs())
	outB := make([]uint64, cb.NumPOs())
	ca.Run(ws, in, 1, outA)
	cb.Run(ws, in, 1, outB)
	return sim.DiffOutputs(outA, outB, 1, 0)
}

// TestEquivalentPoolFeedback checks the counterexample-guided loop: a SAT
// model recorded in a shared pool lets the prefilter refute the same pair
// by simulation alone on the next check.
func TestEquivalentPoolFeedback(t *testing.T) {
	// The pair differs on exactly one of 2^16 assignments (a single
	// minterm vs constant 0), so a 64-pattern random sweep misses it.
	const n = 16
	m1 := New(n)
	acc := Const1
	want := make([]bool, n)
	for i := 0; i < n; i++ {
		want[i] = i%3 == 0
		m1.AddOutput(Const0) // padding outputs keep the graphs multi-output
		l := m1.Input(i)
		if !want[i] {
			l = l.Not()
		}
		acc = m1.And(acc, l)
	}
	m1.SetOutput(0, acc)
	m2 := New(n)
	for i := 0; i < n; i++ {
		m2.AddOutput(Const0)
	}

	pool := sim.NewPool(n, 99)
	opt := EquivOptions{SimPatterns: 64, Pool: pool}
	eq, ce, st, err := EquivalentOpt(m1, m2, opt)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Fatal("single-minterm pair reported equivalent")
	}
	if !st.SATRan {
		// The deterministic 64-pattern sweep hitting the minterm would make
		// this test vacuous; the fixed seed keeps it from happening.
		t.Fatalf("prefilter refuted before SAT could demonstrate feedback: %+v", st)
	}
	for i := range want {
		if ce.Inputs[i] != want[i] {
			t.Fatalf("SAT model %v, want the unique minterm %v", ce.Inputs, want)
		}
	}
	if pool.Counterexamples() != 1 {
		t.Fatalf("pool holds %d counterexamples after SAT, want 1", pool.Counterexamples())
	}
	// Second check over the same pool: the replayed model refutes in the
	// prefilter, no SAT needed.
	eq, _, st, err = EquivalentOpt(m1, m2, opt)
	if err != nil {
		t.Fatal(err)
	}
	if eq || !st.SimRefuted || st.SATRan {
		t.Fatalf("pool feedback did not short-circuit SAT: eq=%v stats=%+v", eq, st)
	}
}
