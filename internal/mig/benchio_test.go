package mig

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// TestBENCHRoundTrip writes random MIGs to BENCH and reads them back,
// comparing output functions by exhaustive simulation.
func TestBENCHRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for round := 0; round < 15; round++ {
		pis := 3 + rng.Intn(4)
		m := New(pis)
		sigs := []Lit{Const0}
		for i := 0; i < pis; i++ {
			sigs = append(sigs, m.Input(i))
		}
		for g := 0; g < 15+rng.Intn(30); g++ {
			pick := func() Lit { return sigs[rng.Intn(len(sigs))].NotIf(rng.Intn(3) == 0) }
			sigs = append(sigs, m.Maj(pick(), pick(), pick()))
		}
		for o := 0; o < 1+rng.Intn(3); o++ {
			m.AddOutput(sigs[len(sigs)-1-rng.Intn(4)].NotIf(rng.Intn(2) == 0))
		}

		var buf bytes.Buffer
		if err := m.WriteBENCH(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadBENCH(&buf)
		if err != nil {
			t.Fatalf("round %d: %v\n%s", round, err, buf.String())
		}
		if back.NumPIs() != m.NumPIs() || back.NumPOs() != m.NumPOs() {
			t.Fatalf("round %d: interface changed to %d/%d", round, back.NumPIs(), back.NumPOs())
		}
		want := m.Simulate()
		got := back.Simulate()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round %d output %d: %v, want %v", round, i, got[i], want[i])
			}
		}
	}
}

// TestReadBENCHClassicGates parses a netlist using the traditional gate
// set and checks it against hand-computed functions.
func TestReadBENCHClassicGates(t *testing.T) {
	src := `
# c17-style example with every supported operator
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y1)
OUTPUT(y2)
OUTPUT(y3)
g1 = NAND(a, b)
g2 = NOR(b, c)
g3 = XOR(g1, g2)
g4 = AND(a, b, c)     # 3-input reduction
y1 = BUF(g3)
y2 = XNOR(g4, c)
one = CONST1
y3 = MAJ(a, b, one)
`
	m, err := ReadBENCH(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	sims := m.Simulate()
	for v := uint(0); v < 8; v++ {
		a := v&1 == 1
		b := v>>1&1 == 1
		c := v>>2&1 == 1
		g1 := !(a && b)
		g2 := !(b || c)
		want := []bool{g1 != g2, !((a && b && c) != c), a || b}
		for i := range want {
			if sims[i].Eval(v) != want[i] {
				t.Fatalf("assignment %03b output %d: got %v, want %v", v, i, sims[i].Eval(v), want[i])
			}
		}
	}
}

// TestReadBENCHForwardReferences: gate lines may appear before their
// operands are defined.
func TestReadBENCHForwardReferences(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
OUTPUT(y)
y = AND(later, a)
later = OR(a, b)
`
	m, err := ReadBENCH(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Simulate()[0]; got.Bits != 0b1010 { // (a∨b)∧a = a
		t.Errorf("forward-referenced netlist computes %v", got)
	}
}

// TestReadBENCHErrors covers the failure paths.
func TestReadBENCHErrors(t *testing.T) {
	cases := map[string]string{
		"cycle":       "INPUT(a)\nOUTPUT(y)\ny = AND(a, z)\nz = OR(a, y)\n",
		"unknown op":  "INPUT(a)\nOUTPUT(y)\ny = FOO(a)\n",
		"bad arity":   "INPUT(a)\nOUTPUT(y)\ny = MAJ(a, a)\n",
		"redefine":    "INPUT(a)\nOUTPUT(y)\ny = BUF(a)\ny = NOT(a)\n",
		"missing out": "INPUT(a)\nOUTPUT(y)\nz = NOT(a)\n",
		"no assign":   "INPUT(a)\nOUTPUT(y)\njust words\n",
	}
	for name, src := range cases {
		if _, err := ReadBENCH(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted malformed netlist", name)
		}
	}
}

// TestWriteBENCHConstantUse: the constant node gets declared when used.
func TestWriteBENCHConstantUse(t *testing.T) {
	m := New(2)
	m.AddOutput(m.And(m.Input(0), Const1)) // strash folds this to x0
	m.AddOutput(m.Maj(m.Input(0), m.Input(1), Const0))
	var buf bytes.Buffer
	if err := m.WriteBENCH(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "CONST0") {
		t.Fatalf("missing constant declaration:\n%s", buf.String())
	}
	back, err := ReadBENCH(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := m.Simulate()
	got := back.Simulate()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("output %d differs", i)
		}
	}
}
