package mig

import (
	"fmt"

	"mighash/internal/sim"
	"mighash/internal/tt"
)

// Simulate computes the truth table of every primary output. It requires
// NumPIs() <= tt.MaxVars; larger MIGs should use SimulateWords.
func (m *MIG) Simulate() []tt.TT {
	if m.numPI > tt.MaxVars {
		panic(fmt.Sprintf("mig: Simulate supports at most %d inputs, have %d", tt.MaxVars, m.numPI))
	}
	n := m.numPI
	tts := make([]tt.TT, len(m.fanin))
	tts[0] = tt.Const0(n)
	for i := 0; i < n; i++ {
		tts[i+1] = tt.Var(n, i)
	}
	for id := n + 1; id < len(m.fanin); id++ {
		f := m.fanin[id]
		a := tts[f[0].ID()].NotIf(f[0].Comp())
		b := tts[f[1].ID()].NotIf(f[1].Comp())
		c := tts[f[2].ID()].NotIf(f[2].Comp())
		tts[id] = tt.Maj(a, b, c)
	}
	out := make([]tt.TT, len(m.outputs))
	for i, o := range m.outputs {
		out[i] = tts[o.ID()].NotIf(o.Comp())
	}
	return out
}

// SimulateWords evaluates the MIG bit-parallel over 64 input patterns. The
// inputs slice holds one 64-bit pattern word per primary input; the result
// holds one word per primary output. This is the workhorse for randomized
// equivalence testing of circuits too wide for exhaustive simulation.
func (m *MIG) SimulateWords(inputs []uint64) []uint64 {
	if len(inputs) != m.numPI {
		panic(fmt.Sprintf("mig: SimulateWords needs %d input words, got %d", m.numPI, len(inputs)))
	}
	vals := make([]uint64, len(m.fanin))
	copy(vals[1:], inputs)
	for id := m.numPI + 1; id < len(m.fanin); id++ {
		f := m.fanin[id]
		a := vals[f[0].ID()]
		if f[0].Comp() {
			a = ^a
		}
		b := vals[f[1].ID()]
		if f[1].Comp() {
			b = ^b
		}
		c := vals[f[2].ID()]
		if f[2].Comp() {
			c = ^c
		}
		vals[id] = a&b | a&c | b&c
	}
	out := make([]uint64, len(m.outputs))
	for i, o := range m.outputs {
		v := vals[o.ID()]
		if o.Comp() {
			v = ^v
		}
		out[i] = v
	}
	return out
}

// EvalBits evaluates the MIG on a single assignment given as one bit per
// primary input (bit i of the slice element i>>6) and returns one bool per
// output. Convenience wrapper used by examples and tests.
func (m *MIG) EvalBits(assignment []bool) []bool {
	if len(assignment) != m.numPI {
		panic(fmt.Sprintf("mig: EvalBits needs %d inputs, got %d", m.numPI, len(assignment)))
	}
	words := make([]uint64, m.numPI)
	for i, v := range assignment {
		if v {
			words[i] = 1
		}
	}
	res := m.SimulateWords(words)
	out := make([]bool, len(res))
	for i, w := range res {
		out[i] = w&1 == 1
	}
	return out
}

// SimCircuit compiles the MIG into the flattened form of the word-parallel
// simulation engine. Literal encodings are identical, so compilation is one
// copy pass; the result is immutable and safe for concurrent sweeps. Dead
// gates are carried along — Run's cost is proportional to NumNodes, and
// callers that care compact first.
func (m *MIG) SimCircuit() *sim.Circuit {
	c := &sim.Circuit{
		NumPIs:  m.numPI,
		Fanin:   make([][3]sim.Lit, len(m.fanin)-1-m.numPI),
		Outputs: make([]sim.Lit, len(m.outputs)),
	}
	for id := m.numPI + 1; id < len(m.fanin); id++ {
		f := m.fanin[id]
		c.Fanin[id-m.numPI-1] = [3]sim.Lit{sim.Lit(f[0]), sim.Lit(f[1]), sim.Lit(f[2])}
	}
	for i, o := range m.outputs {
		c.Outputs[i] = sim.Lit(o)
	}
	return c
}

// ConeTT computes the local function of root in terms of the given leaves:
// leaf i is mapped to variable i. Every path from root must stop at a leaf
// or the constant node; the call panics if the cone escapes the leaves,
// which would indicate an invalid cut.
func (m *MIG) ConeTT(root Lit, leaves []ID) tt.TT {
	k := len(leaves)
	if k > tt.MaxVars {
		panic(fmt.Sprintf("mig: cone function with %d leaves exceeds %d variables", k, tt.MaxVars))
	}
	memo := make(map[ID]tt.TT, 8)
	memo[0] = tt.Const0(k)
	for i, l := range leaves {
		memo[l] = tt.Var(k, i)
	}
	var eval func(id ID) tt.TT
	eval = func(id ID) tt.TT {
		if f, ok := memo[id]; ok {
			return f
		}
		if !m.IsGate(id) {
			panic(fmt.Sprintf("mig: cone of %v escapes its leaves at node %d", root, id))
		}
		f := m.fanin[id]
		r := tt.Maj(
			eval(f[0].ID()).NotIf(f[0].Comp()),
			eval(f[1].ID()).NotIf(f[1].Comp()),
			eval(f[2].ID()).NotIf(f[2].Comp()),
		)
		memo[id] = r
		return r
	}
	return eval(root.ID()).NotIf(root.Comp())
}
