// Package mig implements Majority-Inverter Graphs.
//
// An MIG (Sec. II-B of the paper) is a directed acyclic graph whose
// non-terminal nodes all compute the ternary majority function 〈abc〉 and
// whose edges may be complemented. Terminals are the primary inputs and the
// constant-0 node; primary outputs are (possibly complemented) pointers to
// arbitrary nodes. MIGs subsume AND-inverter graphs because 〈0ab〉 = a∧b
// and 〈1ab〉 = a∨b, and they are universal.
//
// Nodes are identified by dense integer IDs: ID 0 is the constant-0 node,
// IDs 1..NumPIs() are the primary inputs, and higher IDs are majority
// gates. Gates are created strictly after their children, so ascending ID
// order is always a topological order. A signal is addressed by a Lit,
// which packs a node ID and a complement bit.
//
// Gate creation performs structural hashing with the majority-axiom
// normalizations 〈aab〉 = a and 〈aāb〉 = b, operand sorting
// (commutativity), and inverter canonicalization through the self-duality
// 〈abc〉 = ¬〈āb̄c̄〉, so structurally equivalent subgraphs are
// automatically shared. The strash is an open-addressing table owned by
// the graph and rebuilt on growth — no per-gate map allocations.
//
// Besides the structure itself the package provides analysis (levels,
// fanout counts, fanout-free regions, cone extraction), bit-parallel
// simulation, SAT-based combinational equivalence checking (Equivalent),
// the textual netlist format (ReadText/WriteText), BENCH interchange
// (ReadBENCH/WriteBENCH — the wire format of the HTTP optimization
// service, round-tripping byte-identically after one canonicalizing
// write), and DOT rendering.
//
// Concurrency contract: an *MIG is NOT safe for concurrent mutation —
// Maj, AddOutput, SetOutput and the readers that lazily touch shared
// state must stay on one goroutine. Pure readers (Fanin, Size, Depth,
// Levels, FanoutCounts, ConeNodes, WriteBENCH, …) are safe to call
// concurrently on a graph no goroutine is mutating; this is what lets
// rewriting evaluate cuts of a frozen graph in parallel. Workspace is
// per-goroutine scratch for the epoch-stamped cone traversals
// (ConeNodesWS and friends): one Workspace per concurrent analysis,
// never shared.
package mig
