package mig

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"

	"mighash/internal/tt"
)

func TestLitPacking(t *testing.T) {
	l := MakeLit(5, true)
	if l.ID() != 5 || !l.Comp() {
		t.Errorf("MakeLit broken: %v", l)
	}
	if l.Not().Comp() || l.Not().ID() != 5 {
		t.Errorf("Not broken: %v", l.Not())
	}
	if l.NotIf(false) != l || l.NotIf(true) != l.Not() {
		t.Error("NotIf broken")
	}
	if Const1 != Const0.Not() {
		t.Error("constants inconsistent")
	}
	if l.String() != "~5" || l.Not().String() != "5" {
		t.Errorf("String: %q %q", l.String(), l.Not().String())
	}
}

func TestTerminals(t *testing.T) {
	m := New(3)
	if m.NumPIs() != 3 || m.NumNodes() != 4 || m.NumGates() != 0 {
		t.Fatalf("fresh MIG wrong: %+v", m.Stats())
	}
	for i := 0; i < 3; i++ {
		in := m.Input(i)
		if !m.IsInput(in.ID()) || m.InputIndex(in.ID()) != i {
			t.Errorf("input %d misidentified", i)
		}
	}
	if m.IsGate(0) || m.IsGate(1) {
		t.Error("terminals classified as gates")
	}
}

func TestMajAxioms(t *testing.T) {
	m := New(3)
	a, b := m.Input(0), m.Input(1)
	if got := m.Maj(a, a, b); got != a {
		t.Errorf("〈aab〉 = %v, want %v", got, a)
	}
	if got := m.Maj(a, a.Not(), b); got != b {
		t.Errorf("〈aāb〉 = %v, want %v", got, b)
	}
	if got := m.Maj(Const0, Const1, b); got != b {
		t.Errorf("〈01b〉 = %v, want %v", got, b)
	}
	if got := m.Maj(Const0, Const0, b); got != Const0 {
		t.Errorf("〈00b〉 = %v, want const 0", got)
	}
	if m.NumGates() != 0 {
		t.Errorf("axiom applications created %d gates", m.NumGates())
	}
}

func TestStructuralHashing(t *testing.T) {
	m := New(3)
	a, b, c := m.Input(0), m.Input(1), m.Input(2)
	g1 := m.Maj(a, b, c)
	g2 := m.Maj(c, a, b) // commutativity
	if g1 != g2 {
		t.Error("commutative operands not hashed together")
	}
	g3 := m.Maj(a.Not(), b.Not(), c.Not()) // self-duality
	if g3 != g1.Not() {
		t.Errorf("self-dual gate not shared: %v vs %v", g3, g1.Not())
	}
	if m.NumGates() != 1 {
		t.Errorf("expected 1 gate, have %d", m.NumGates())
	}
}

func TestDerivedOps(t *testing.T) {
	m := New(2)
	a, b := m.Input(0), m.Input(1)
	m.AddOutput(m.And(a, b))
	m.AddOutput(m.Or(a, b))
	m.AddOutput(m.Xor(a, b))
	m.AddOutput(m.Mux(a, b, b.Not()))
	tts := m.Simulate()
	x, y := tt.Var(2, 0), tt.Var(2, 1)
	if tts[0] != x.And(y) {
		t.Errorf("And = %v", tts[0])
	}
	if tts[1] != x.Or(y) {
		t.Errorf("Or = %v", tts[1])
	}
	if tts[2] != x.Xor(y) {
		t.Errorf("Xor = %v", tts[2])
	}
	if tts[3] != tt.Mux(x, y, y.Not()) {
		t.Errorf("Mux = %v", tts[3])
	}
}

// TestFullAdderFig1 reproduces Fig. 1 of the paper: a full adder in three
// majority gates with depth 2.
func TestFullAdderFig1(t *testing.T) {
	m := New(3)
	a, b, cin := m.Input(0), m.Input(1), m.Input(2)
	sum, carry := m.FullAdder(a, b, cin)
	m.AddOutput(sum)
	m.AddOutput(carry)
	if got := m.Size(); got != 3 {
		t.Errorf("full adder size = %d, want 3 (Fig. 1)", got)
	}
	if got := m.Depth(); got != 2 {
		t.Errorf("full adder depth = %d, want 2 (Fig. 1)", got)
	}
	tts := m.Simulate()
	x, y, z := tt.Var(3, 0), tt.Var(3, 1), tt.Var(3, 2)
	if tts[0] != x.Xor(y).Xor(z) {
		t.Errorf("sum = %v, want xor3", tts[0])
	}
	if tts[1] != tt.Maj(x, y, z) {
		t.Errorf("carry = %v, want maj", tts[1])
	}
}

func TestSizeIgnoresDeadGates(t *testing.T) {
	m := New(3)
	a, b, c := m.Input(0), m.Input(1), m.Input(2)
	m.Maj(a, b, c) // dead gate: never connected to an output
	live := m.And(a, b)
	m.AddOutput(live)
	if m.NumGates() != 2 {
		t.Fatalf("expected 2 created gates, have %d", m.NumGates())
	}
	if m.Size() != 1 {
		t.Errorf("Size = %d, want 1 (dead gate must not count)", m.Size())
	}
}

func TestLevelsAndDepth(t *testing.T) {
	m := New(4)
	l1 := m.And(m.Input(0), m.Input(1))
	l2 := m.And(l1, m.Input(2))
	l3 := m.And(l2, m.Input(3))
	m.AddOutput(l3)
	if got := m.Depth(); got != 3 {
		t.Errorf("chain depth = %d, want 3", got)
	}
	lv := m.Levels()
	if lv[l1.ID()] != 1 || lv[l2.ID()] != 2 || lv[l3.ID()] != 3 {
		t.Errorf("levels wrong: %v", lv)
	}
}

func TestFanoutCounts(t *testing.T) {
	m := New(2)
	a, b := m.Input(0), m.Input(1)
	g := m.And(a, b)
	h := m.Or(g, a)
	m.AddOutput(h)
	m.AddOutput(g.Not())
	fo := m.FanoutCounts()
	if fo[g.ID()] != 2 { // used by h and by an output
		t.Errorf("fanout of g = %d, want 2", fo[g.ID()])
	}
	if fo[a.ID()] != 2 {
		t.Errorf("fanout of a = %d, want 2", fo[a.ID()])
	}
}

func TestCleanupDropsDeadNodes(t *testing.T) {
	m := New(3)
	a, b, c := m.Input(0), m.Input(1), m.Input(2)
	m.Maj(a, b, c)           // dead
	m.And(m.Maj(a, b, c), c) // dead
	out := m.Xor(a, b)       // live, 3 gates
	m.AddOutput(out.Not())
	clean, smap := m.Cleanup()
	if clean.Size() != 3 || clean.NumGates() != 3 {
		t.Errorf("cleanup kept %d gates, want 3", clean.NumGates())
	}
	if clean.NumPIs() != 3 || clean.NumPOs() != 1 {
		t.Error("cleanup changed the interface")
	}
	want := m.Simulate()
	got := clean.Simulate()
	if want[0] != got[0] {
		t.Error("cleanup changed the function")
	}
	if nl, ok := smap[out]; !ok || nl != clean.Output(0).Not() {
		t.Error("signal map inconsistent")
	}
}

func TestSimulateWordsAgainstTT(t *testing.T) {
	m := New(4)
	f := m.Maj(m.Xor(m.Input(0), m.Input(1)), m.Input(2), m.And(m.Input(3), m.Input(0)))
	m.AddOutput(f)
	want := m.Simulate()[0]
	inputs := make([]uint64, 4)
	for i := range inputs {
		inputs[i] = tt.Var(4, i).Bits // the 16 exhaustive patterns
	}
	got := m.SimulateWords(inputs)[0] & tt.Mask(4)
	if got != want.Bits {
		t.Errorf("word simulation %#x != tt simulation %v", got, want)
	}
}

func TestEvalBits(t *testing.T) {
	m := New(3)
	s, c := m.FullAdder(m.Input(0), m.Input(1), m.Input(2))
	m.AddOutput(s)
	m.AddOutput(c)
	for a := 0; a < 8; a++ {
		in := []bool{a&1 == 1, a&2 == 2, a&4 == 4}
		got := m.EvalBits(in)
		n := a&1 + a>>1&1 + a>>2&1
		if got[0] != (n&1 == 1) || got[1] != (n >= 2) {
			t.Fatalf("EvalBits(%03b) = %v", a, got)
		}
	}
}

func TestConeTT(t *testing.T) {
	m := New(4)
	a, b, c, d := m.Input(0), m.Input(1), m.Input(2), m.Input(3)
	g := m.And(a, b)
	h := m.Or(g, c)
	top := m.Xor(h, d)
	m.AddOutput(top)
	// Cone of h with leaves {g, c}: local function is x0 | x1.
	local := m.ConeTT(h, []ID{g.ID(), c.ID()})
	if local != tt.Var(2, 0).Or(tt.Var(2, 1)) {
		t.Errorf("cone function = %v", local)
	}
	// Whole cone of top over the inputs.
	full := m.ConeTT(top, []ID{a.ID(), b.ID(), c.ID(), d.ID()})
	if full != m.Simulate()[0] {
		t.Error("full cone disagrees with simulation")
	}
}

func TestConeTTPanicsOnEscape(t *testing.T) {
	m := New(2)
	g := m.And(m.Input(0), m.Input(1))
	m.AddOutput(g)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for an escaping cone")
		}
	}()
	m.ConeTT(g, []ID{m.Input(0).ID()}) // missing input 1
}

func TestFFRRoots(t *testing.T) {
	m := New(4)
	a, b, c, d := m.Input(0), m.Input(1), m.Input(2), m.Input(3)
	shared := m.And(a, b) // fanout 2 -> own region root
	u := m.Or(shared, c)  // single fanout -> belongs to top's region
	v := m.And(shared, d) // single fanout -> belongs to top's region
	top := m.Maj(u, v, a) // output root
	m.AddOutput(top)
	roots := m.FFRRoots()
	if roots[shared.ID()] != shared.ID() {
		t.Errorf("multi-fanout node should be its own root, got %d", roots[shared.ID()])
	}
	if roots[u.ID()] != top.ID() || roots[v.ID()] != top.ID() {
		t.Errorf("single-fanout nodes should chain to top: %d %d", roots[u.ID()], roots[v.ID()])
	}
	groups := m.FFRMembers()
	if len(groups[top.ID()]) != 3 { // u, v, top
		t.Errorf("top region has %d members, want 3", len(groups[top.ID()]))
	}
	if len(groups[shared.ID()]) != 1 {
		t.Errorf("shared region has %d members, want 1", len(groups[shared.ID()]))
	}
}

func TestConeIsReplaceable(t *testing.T) {
	m := New(4)
	a, b, c, d := m.Input(0), m.Input(1), m.Input(2), m.Input(3)
	inner := m.And(a, b)
	top := m.Or(inner, c)
	other := m.Xor(inner, d) // gives inner external fanout
	m.AddOutput(top)
	m.AddOutput(other)
	fo := m.FanoutCounts()
	leaves := []ID{a.ID(), b.ID(), c.ID()}
	if m.ConeIsReplaceable(top.ID(), leaves, fo) {
		t.Error("cone with escaping internal fanout reported replaceable")
	}
	// Without the second output the cone becomes replaceable.
	m2 := New(4)
	a2, b2, c2 := m2.Input(0), m2.Input(1), m2.Input(2)
	inner2 := m2.And(a2, b2)
	top2 := m2.Or(inner2, c2)
	m2.AddOutput(top2)
	fo2 := m2.FanoutCounts()
	if !m2.ConeIsReplaceable(top2.ID(), []ID{a2.ID(), b2.ID(), c2.ID()}, fo2) {
		t.Error("clean cone reported non-replaceable")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := New(2)
	m.AddOutput(m.And(m.Input(0), m.Input(1)))
	c := m.Clone()
	c.AddOutput(c.Or(c.Input(0), c.Input(1)))
	if m.NumPOs() != 1 || c.NumPOs() != 2 {
		t.Error("clone shares state with original")
	}
	if m.Simulate()[0] != c.Simulate()[0] {
		t.Error("clone changed existing function")
	}
}

// randomMIG builds a random MIG over n inputs with g gates for fuzzing.
func randomMIG(rng *rand.Rand, n, g, outs int) *MIG {
	m := New(n)
	sigs := []Lit{Const0}
	for i := 0; i < n; i++ {
		sigs = append(sigs, m.Input(i))
	}
	for i := 0; i < g; i++ {
		pick := func() Lit {
			return sigs[rng.Intn(len(sigs))].NotIf(rng.Intn(2) == 1)
		}
		sigs = append(sigs, m.Maj(pick(), pick(), pick()))
	}
	for i := 0; i < outs; i++ {
		m.AddOutput(sigs[len(sigs)-1-rng.Intn(minInt(len(sigs), 5))].NotIf(rng.Intn(2) == 1))
	}
	return m
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestCleanupPreservesFunctionFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 100; trial++ {
		m := randomMIG(rng, 5, 30, 3)
		clean, _ := m.Cleanup()
		want := m.Simulate()
		got := clean.Simulate()
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("trial %d: cleanup changed output %d", trial, i)
			}
		}
		if clean.Size() > m.Size() {
			t.Fatalf("trial %d: cleanup grew the MIG", trial)
		}
	}
}

func TestStrashNormalFormProperty(t *testing.T) {
	// Any way of writing the same majority over the same three signals must
	// return the identical literal.
	f := func(perm uint8, comps uint8) bool {
		m := New(3)
		base := [3]Lit{m.Input(0), m.Input(1), m.Input(2)}
		ref := m.Maj(base[0], base[1], base[2])
		p := Perms3[perm%6]
		a := base[p[0]]
		b := base[p[1]]
		c := base[p[2]]
		// Complement all three: self-dual, must give ref.Not().
		if comps&1 == 1 {
			a, b, c = a.Not(), b.Not(), c.Not()
			return m.Maj(a, b, c) == ref.Not()
		}
		return m.Maj(a, b, c) == ref
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Perms3 lists the six permutations of three elements (exported for reuse
// in other tests of this package).
var Perms3 = [6][3]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}

// TestDeepChainIterativeTraversals builds a majority chain hundreds of
// thousands of gates deep — the shape of a long ripple-carry path — and
// runs every traversal that used to be recursive. With the iterative
// implementations this completes in bounded stack space regardless of
// depth.
func TestDeepChainIterativeTraversals(t *testing.T) {
	const depth = 1 << 19
	m := New(2)
	x, y := m.Input(0), m.Input(1)
	g := m.Maj(Const1, x, y)
	for i := 1; i < depth; i++ {
		// Alternate complementation so no majority axiom fires and every
		// step creates a fresh gate one level deeper.
		g = m.Maj(g.NotIf(i%2 == 0), x, y.Not())
	}
	m.AddOutput(g)

	clean, _ := m.Cleanup() // recursive build would need one frame per gate
	if got := clean.Size(); got != depth {
		t.Fatalf("cleanup kept %d gates, want %d", got, depth)
	}
	if got := m.Depth(); got != depth {
		t.Fatalf("depth = %d, want %d", got, depth)
	}
	nodes := m.ConeNodes(g.ID(), []ID{x.ID(), y.ID()})
	if len(nodes) != depth {
		t.Fatalf("cone holds %d gates, want %d", len(nodes), depth)
	}
	for i := 1; i < len(nodes); i++ {
		if nodes[i-1] >= nodes[i] {
			t.Fatal("ConeNodes result not ascending")
		}
	}
	roots := m.FFRRoots() // recursive find would walk the chain once per node
	for _, id := range nodes {
		if roots[id] != g.ID() {
			t.Fatalf("gate %d has FFR root %d, want the chain head %d", id, roots[id], g.ID())
		}
	}
	fo := m.FanoutCounts()
	if !m.ConeIsReplaceable(g.ID(), []ID{x.ID(), y.ID()}, fo) {
		t.Fatal("single-fanout chain must be replaceable")
	}
}

// TestWorkspaceConeAnalysesMatchFresh cross-checks the epoch-stamped
// workspace variants against the allocation-per-call reference behaviour
// on random graphs, including immediately repeated queries that stress the
// epoch invalidation.
func TestWorkspaceConeAnalysesMatchFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	w := NewWorkspace()
	for trial := 0; trial < 50; trial++ {
		m := randomStrashedMIG(rng, 5, 40)
		fo := m.FanoutCounts()
		for id := m.NumPIs() + 1; id < m.NumNodes(); id++ {
			root := ID(id)
			f := m.Fanin(root)
			leaves := []ID{f[0].ID(), f[1].ID(), f[2].ID()}
			for rep := 0; rep < 2; rep++ {
				got := append([]ID(nil), m.ConeNodesWS(w, root, leaves)...)
				slices.Sort(got)
				want := m.ConeNodes(root, leaves)
				if !slices.Equal(got, want) {
					t.Fatalf("trial %d node %d: cone %v, want %v", trial, id, got, want)
				}
				gotRep := m.ConeSelfContainedWS(w, m.ConeNodesWS(w, root, leaves), root, fo)
				if wantRep := m.ConeIsReplaceable(root, leaves, fo); gotRep != wantRep {
					t.Fatalf("trial %d node %d: replaceable %v, want %v", trial, id, gotRep, wantRep)
				}
			}
		}
		if got, want := m.SizeWS(w), m.Size(); got != want {
			t.Fatalf("trial %d: SizeWS = %d, want %d", trial, got, want)
		}
	}
}

// randomStrashedMIG builds a random DAG for the workspace cross-checks.
func randomStrashedMIG(rng *rand.Rand, pis, gates int) *MIG {
	m := New(pis)
	sigs := []Lit{Const0}
	for i := 0; i < pis; i++ {
		sigs = append(sigs, m.Input(i))
	}
	for g := 0; g < gates; g++ {
		pick := func() Lit { return sigs[rng.Intn(len(sigs))].NotIf(rng.Intn(2) == 0) }
		sigs = append(sigs, m.Maj(pick(), pick(), pick()))
	}
	m.AddOutput(sigs[len(sigs)-1])
	return m
}

// TestStrashTableGrowAndClone hammers the open-addressing strash through
// several growth cycles and checks clones stay independent.
func TestStrashTableGrowAndClone(t *testing.T) {
	m := New(8)
	var sigs []Lit
	for i := 0; i < 8; i++ {
		sigs = append(sigs, m.Input(i))
	}
	rng := rand.New(rand.NewSource(59))
	for g := 0; g < 5000; g++ {
		a := sigs[rng.Intn(len(sigs))]
		b := sigs[rng.Intn(len(sigs))].NotIf(rng.Intn(2) == 0)
		c := sigs[rng.Intn(len(sigs))].NotIf(rng.Intn(2) == 0)
		sigs = append(sigs, m.Maj(a, b, c))
	}
	before := m.NumGates()
	c := m.Clone()
	// Re-creating any existing gate on either copy must hit the table.
	for g := 0; g < 1000; g++ {
		id := ID(m.NumPIs() + 1 + rng.Intn(before))
		f := m.Fanin(id)
		if got := m.Maj(f[0], f[1], f[2]); got.ID() != id {
			t.Fatalf("strash miss on original: gate %d rebuilt as %v", id, got)
		}
		if got := c.Maj(f[0], f[1], f[2]); got.ID() != id {
			t.Fatalf("strash miss on clone: gate %d rebuilt as %v", id, got)
		}
	}
	// Divergent growth: new gates on the clone must not leak into m.
	n := m.NumGates()
	c.Maj(sigs[len(sigs)-1], sigs[0], sigs[1].Not())
	if m.NumGates() != n {
		t.Fatal("clone shares gate storage with the original")
	}
}
