package mig_test

// The BENCH writer and parser must form a closed loop: parsing a written
// netlist and writing it again reproduces the file byte-for-byte. This is
// what lets the HTTP service hand optimized netlists back to clients that
// re-submit them (internal/server), and what makes netlists stable cache
// keys. Writing is canonicalizing — the first write drops dead gates and
// renumbers — so the property under test is idempotence from the first
// written form onward.

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"mighash/internal/circuits"
	"mighash/internal/mig"
)

// roundTrip asserts that m's BENCH rendering is a fixpoint of
// parse∘write and that parsing preserves the functions.
func roundTrip(t *testing.T, name string, m *mig.MIG) {
	t.Helper()
	var w1 bytes.Buffer
	if err := m.WriteBENCH(&w1); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	m2, err := mig.ReadBENCH(bytes.NewReader(w1.Bytes()))
	if err != nil {
		t.Fatalf("%s: first written form does not parse: %v", name, err)
	}
	var w2 bytes.Buffer
	if err := m2.WriteBENCH(&w2); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	m3, err := mig.ReadBENCH(bytes.NewReader(w2.Bytes()))
	if err != nil {
		t.Fatalf("%s: canonical form does not parse: %v", name, err)
	}
	var w3 bytes.Buffer
	if err := m3.WriteBENCH(&w3); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if !bytes.Equal(w2.Bytes(), w3.Bytes()) {
		t.Errorf("%s: parse→write is not idempotent;\nfirst:\n%s\nsecond:\n%s",
			name, w2.String(), w3.String())
	}
	if m2.NumPIs() != m.NumPIs() || m2.NumPOs() != m.NumPOs() {
		t.Errorf("%s: interface changed to %d/%d", name, m2.NumPIs(), m2.NumPOs())
	}
}

// TestBENCHWriteParseWriteIdentity drives the round-trip over random
// graphs (including dead gates, which the first write canonicalizes away)
// and checks functional preservation by exhaustive simulation.
func TestBENCHWriteParseWriteIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 20; round++ {
		pis := 3 + rng.Intn(4)
		m := mig.New(pis)
		sigs := []mig.Lit{mig.Const0}
		for i := 0; i < pis; i++ {
			sigs = append(sigs, m.Input(i))
		}
		for g := 0; g < 10+rng.Intn(40); g++ {
			pick := func() mig.Lit { return sigs[rng.Intn(len(sigs))].NotIf(rng.Intn(3) == 0) }
			sigs = append(sigs, m.Maj(pick(), pick(), pick()))
		}
		for o := 0; o < 1+rng.Intn(3); o++ {
			m.AddOutput(sigs[len(sigs)-1-rng.Intn(5)].NotIf(rng.Intn(2) == 0))
		}
		roundTrip(t, "random", m)

		var w bytes.Buffer
		if err := m.WriteBENCH(&w); err != nil {
			t.Fatal(err)
		}
		back, err := mig.ReadBENCH(strings.NewReader(w.String()))
		if err != nil {
			t.Fatal(err)
		}
		want, got := m.Simulate(), back.Simulate()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round %d output %d: %v, want %v", round, i, got[i], want[i])
			}
		}
	}
}

// TestBENCHRoundTripSuiteCircuit runs the identity check on a real
// arithmetic benchmark — the same class of netlist the HTTP service
// round-trips for clients.
func TestBENCHRoundTripSuiteCircuit(t *testing.T) {
	if testing.Short() {
		t.Skip("building the benchmark circuit is not short")
	}
	spec, ok := circuits.ByName("Sine")
	if !ok {
		t.Fatal("Sine benchmark missing")
	}
	roundTrip(t, "Sine", spec.Build())
}
