// Package aig implements And-Inverter Graphs, the homogeneous logic
// representation the paper positions MIGs against (Sec. I and II-A,
// refs [2], [6]). It provides the structure itself, conversions to and
// from MIGs, and simulation — enough to serve as the comparison baseline
// for the MIG-vs-AIG compactness experiments and as a second consumer of
// the exact-synthesis engine (minimum AND-chains, internal/exact).
//
// Role in the functional-hashing flow: none at optimization time — AIGs
// exist for the experimental comparisons (internal/exp) and as an
// interchange target (FromMIG materializes each majority gate as at most
// four ANDs with structural sharing).
//
// Concurrency contract: like *mig.MIG, an *AIG is not safe for concurrent
// mutation; pure readers on a frozen graph are. Conversions build fresh
// graphs and never modify their source.
package aig
