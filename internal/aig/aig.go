package aig

import (
	"fmt"

	"mighash/internal/mig"
	"mighash/internal/tt"
)

// ID is an AIG node identifier: 0 is the constant-0 node, 1..numPI the
// primary inputs, larger IDs the AND gates.
type ID uint32

// Lit is a signal: node ID with a complement bit in the lowest position,
// the same convention as package mig.
type Lit uint32

// The two constant signals.
const (
	Const0 Lit = 0
	Const1 Lit = 1
)

// MakeLit builds the signal for id, complemented when comp is set.
func MakeLit(id ID, comp bool) Lit {
	l := Lit(id) << 1
	if comp {
		l |= 1
	}
	return l
}

// ID returns the node the signal points to.
func (l Lit) ID() ID { return ID(l >> 1) }

// Comp reports whether the signal is complemented.
func (l Lit) Comp() bool { return l&1 == 1 }

// Not complements the signal.
func (l Lit) Not() Lit { return l ^ 1 }

// NotIf complements the signal when c is true.
func (l Lit) NotIf(c bool) Lit {
	if c {
		return l ^ 1
	}
	return l
}

// AIG is a DAG of two-input AND gates with complemented edges.
type AIG struct {
	fanin   [][2]Lit // fanin[id]; terminals hold zeroes
	numPI   int
	strash  map[[2]Lit]ID
	outputs []Lit
}

// New returns an empty AIG over the given primary inputs.
func New(numPIs int) *AIG {
	a := &AIG{numPI: numPIs, strash: make(map[[2]Lit]ID)}
	a.fanin = make([][2]Lit, 1+numPIs)
	return a
}

// NumPIs returns the primary input count.
func (a *AIG) NumPIs() int { return a.numPI }

// NumPOs returns the primary output count.
func (a *AIG) NumPOs() int { return len(a.outputs) }

// NumNodes returns the node count including terminals.
func (a *AIG) NumNodes() int { return len(a.fanin) }

// NumGates returns the number of AND gates ever created, including ones
// no longer reachable from the outputs.
func (a *AIG) NumGates() int { return len(a.fanin) - 1 - a.numPI }

// Size returns the number of AND gates reachable from the outputs — the
// standard AIG size metric, consistent with (*mig.MIG).Size.
func (a *AIG) Size() int {
	seen := make([]bool, len(a.fanin))
	var stack []ID
	push := func(id ID) {
		if a.IsGate(id) && !seen[id] {
			seen[id] = true
			stack = append(stack, id)
		}
	}
	for _, o := range a.outputs {
		push(o.ID())
	}
	size := 0
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		size++
		f := a.fanin[id]
		push(f[0].ID())
		push(f[1].ID())
	}
	return size
}

// Input returns the signal of primary input i (0-based).
func (a *AIG) Input(i int) Lit {
	if i < 0 || i >= a.numPI {
		panic(fmt.Sprintf("aig: no input %d", i))
	}
	return MakeLit(ID(i+1), false)
}

// IsGate reports whether id is an AND gate.
func (a *AIG) IsGate(id ID) bool { return int(id) > a.numPI && int(id) < len(a.fanin) }

// Fanin returns the two fanin signals of gate id.
func (a *AIG) Fanin(id ID) [2]Lit {
	if !a.IsGate(id) {
		panic(fmt.Sprintf("aig: node %d is not a gate", id))
	}
	return a.fanin[id]
}

// And returns x∧y, creating a gate unless it simplifies or exists.
func (a *AIG) And(x, y Lit) Lit {
	if x > y {
		x, y = y, x
	}
	switch {
	case x == Const0:
		return Const0
	case x == Const1:
		return y
	case x == y:
		return x
	case x == y.Not():
		return Const0
	}
	key := [2]Lit{x, y}
	if id, ok := a.strash[key]; ok {
		return MakeLit(id, false)
	}
	id := ID(len(a.fanin))
	a.fanin = append(a.fanin, key)
	a.strash[key] = id
	return MakeLit(id, false)
}

// Or returns x∨y via De Morgan.
func (a *AIG) Or(x, y Lit) Lit { return a.And(x.Not(), y.Not()).Not() }

// Xor returns x⊕y = (x∨y) ∧ ¬(x∧y), three AND gates.
func (a *AIG) Xor(x, y Lit) Lit {
	return a.And(a.And(x.Not(), y.Not()).Not(), a.And(x, y).Not())
}

// Mux returns s ? x : y.
func (a *AIG) Mux(s, x, y Lit) Lit {
	return a.Or(a.And(s, x), a.And(s.Not(), y))
}

// Maj returns 〈xyz〉 = (x∧y) ∨ ((x∨y)∧z), four AND gates.
func (a *AIG) Maj(x, y, z Lit) Lit {
	return a.Or(a.And(x, y), a.And(a.Or(x, y), z))
}

// AddOutput appends a primary output and returns its index.
func (a *AIG) AddOutput(l Lit) int {
	if int(l.ID()) >= len(a.fanin) {
		panic("aig: dangling output literal")
	}
	a.outputs = append(a.outputs, l)
	return len(a.outputs) - 1
}

// Outputs returns the output signals (owned by the AIG).
func (a *AIG) Outputs() []Lit { return a.outputs }

// Depth returns the AND levels on the longest terminal-to-output path.
func (a *AIG) Depth() int {
	levels := make([]int, len(a.fanin))
	for id := a.numPI + 1; id < len(a.fanin); id++ {
		f := a.fanin[id]
		l := levels[f[0].ID()]
		if l2 := levels[f[1].ID()]; l2 > l {
			l = l2
		}
		levels[id] = l + 1
	}
	depth := 0
	for _, o := range a.outputs {
		if l := levels[o.ID()]; l > depth {
			depth = l
		}
	}
	return depth
}

// Simulate returns one truth table per output; requires ≤ tt.MaxVars
// inputs.
func (a *AIG) Simulate() []tt.TT {
	vals := make([]tt.TT, len(a.fanin))
	vals[0] = tt.Const0(a.numPI)
	for i := 0; i < a.numPI; i++ {
		vals[i+1] = tt.Var(a.numPI, i)
	}
	at := func(l Lit) tt.TT { return vals[l.ID()].NotIf(l.Comp()) }
	for id := a.numPI + 1; id < len(a.fanin); id++ {
		f := a.fanin[id]
		vals[id] = at(f[0]).And(at(f[1]))
	}
	out := make([]tt.TT, len(a.outputs))
	for i, o := range a.outputs {
		out[i] = at(o)
	}
	return out
}

// EvalBits evaluates the AIG on one input assignment.
func (a *AIG) EvalBits(inputs []bool) []bool {
	if len(inputs) != a.numPI {
		panic(fmt.Sprintf("aig: %d inputs, want %d", len(inputs), a.numPI))
	}
	vals := make([]bool, len(a.fanin))
	copy(vals[1:], inputs)
	at := func(l Lit) bool { return vals[l.ID()] != l.Comp() }
	for id := a.numPI + 1; id < len(a.fanin); id++ {
		f := a.fanin[id]
		vals[id] = at(f[0]) && at(f[1])
	}
	out := make([]bool, len(a.outputs))
	for i, o := range a.outputs {
		out[i] = at(o)
	}
	return out
}

// FromMIG converts an MIG gate-by-gate: each majority becomes the
// four-AND gadget (x∧y) ∨ ((x∨y)∧z); structural hashing shares common
// subterms, so the factor is usually below four.
func FromMIG(m *mig.MIG) *AIG {
	a := New(m.NumPIs())
	lmap := make([]Lit, m.NumNodes())
	lmap[0] = Const0
	for i := 0; i < m.NumPIs(); i++ {
		lmap[m.Input(i).ID()] = a.Input(i)
	}
	at := func(l mig.Lit) Lit { return lmap[l.ID()].NotIf(l.Comp()) }
	for id := m.NumPIs() + 1; id < m.NumNodes(); id++ {
		f := m.Fanin(mig.ID(id))
		lmap[id] = a.Maj(at(f[0]), at(f[1]), at(f[2]))
	}
	for _, o := range m.Outputs() {
		a.AddOutput(at(o))
	}
	return a
}

// ToMIG converts gate-by-gate: AND is majority with a constant-0 operand,
// so the translation is size-preserving (Sec. II-B of the paper).
func (a *AIG) ToMIG() *mig.MIG {
	m := mig.New(a.numPI)
	lmap := make([]mig.Lit, len(a.fanin))
	lmap[0] = mig.Const0
	for i := 0; i < a.numPI; i++ {
		lmap[a.Input(i).ID()] = m.Input(i)
	}
	at := func(l Lit) mig.Lit { return lmap[l.ID()].NotIf(l.Comp()) }
	for id := a.numPI + 1; id < len(a.fanin); id++ {
		f := a.fanin[id]
		lmap[id] = m.And(at(f[0]), at(f[1]))
	}
	for _, o := range a.outputs {
		m.AddOutput(at(o))
	}
	return m
}
