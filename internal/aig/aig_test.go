package aig

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mighash/internal/mig"
	"mighash/internal/tt"
)

// TestAndSimplifications pins the strash normalizations.
func TestAndSimplifications(t *testing.T) {
	a := New(2)
	x, y := a.Input(0), a.Input(1)
	if got := a.And(x, Const0); got != Const0 {
		t.Errorf("x∧0 = %v", got)
	}
	if got := a.And(Const1, y); got != y {
		t.Errorf("1∧y = %v", got)
	}
	if got := a.And(x, x); got != x {
		t.Errorf("x∧x = %v", got)
	}
	if got := a.And(x, x.Not()); got != Const0 {
		t.Errorf("x∧x̄ = %v", got)
	}
	g1 := a.And(x, y)
	g2 := a.And(y, x)
	if g1 != g2 {
		t.Error("strash missed the commuted gate")
	}
	if a.NumGates() != 1 {
		t.Errorf("%d gates after one distinct AND", a.NumGates())
	}
	a.AddOutput(g1)
	if a.Size() != 1 {
		t.Errorf("reachable size %d, want 1", a.Size())
	}
}

// TestGadgets verifies Or/Xor/Mux/Maj against truth tables.
func TestGadgets(t *testing.T) {
	a := New(3)
	x, y, z := a.Input(0), a.Input(1), a.Input(2)
	a.AddOutput(a.Or(x, y))
	a.AddOutput(a.Xor(x, y))
	a.AddOutput(a.Mux(x, y, z))
	a.AddOutput(a.Maj(x, y, z))
	sims := a.Simulate()
	want := []tt.TT{
		tt.Var(3, 0).Or(tt.Var(3, 1)),
		tt.Var(3, 0).Xor(tt.Var(3, 1)),
		tt.Mux(tt.Var(3, 0), tt.Var(3, 1), tt.Var(3, 2)),
		tt.Maj(tt.Var(3, 0), tt.Var(3, 1), tt.Var(3, 2)),
	}
	for i := range want {
		if sims[i] != want[i] {
			t.Errorf("gadget %d computes %v, want %v", i, sims[i], want[i])
		}
	}
}

func randomMIG(rng *rand.Rand, pis, gates, pos int) *mig.MIG {
	m := mig.New(pis)
	sigs := []mig.Lit{mig.Const0}
	for i := 0; i < pis; i++ {
		sigs = append(sigs, m.Input(i))
	}
	for g := 0; g < gates; g++ {
		pick := func() mig.Lit { return sigs[rng.Intn(len(sigs))].NotIf(rng.Intn(3) == 0) }
		sigs = append(sigs, m.Maj(pick(), pick(), pick()))
	}
	for o := 0; o < pos; o++ {
		m.AddOutput(sigs[len(sigs)-1-rng.Intn(4)].NotIf(rng.Intn(2) == 0))
	}
	return m
}

// TestRoundTripMIG checks FromMIG/ToMIG preserve every output function.
func TestRoundTripMIG(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for round := 0; round < 15; round++ {
		m := randomMIG(rng, 4+rng.Intn(3), 20+rng.Intn(40), 3)
		want := m.Simulate()
		a := FromMIG(m)
		gotA := a.Simulate()
		back := a.ToMIG()
		gotM := back.Simulate()
		for i := range want {
			if gotA[i] != want[i] {
				t.Fatalf("round %d: AIG output %d computes %v, want %v", round, i, gotA[i], want[i])
			}
			if gotM[i] != want[i] {
				t.Fatalf("round %d: round-tripped MIG output %d differs", round, i)
			}
		}
		if a.Size() > 4*m.Size() {
			t.Errorf("round %d: conversion factor above 4: %d → %d", round, m.Size(), a.Size())
		}
		// The AND→MAJ direction is 1:1, but the MIG's richer strash
		// normalization (e.g. AND of complements folding onto a shared OR
		// node) can merge gates, so the MIG never comes out larger.
		if back.Size() > a.Size() {
			t.Errorf("round %d: AND→MAJ translation grew size %d → %d", round, a.Size(), back.Size())
		}
	}
}

// TestLitOpsQuick property-tests the literal arithmetic.
func TestLitOpsQuick(t *testing.T) {
	f := func(id uint16, comp bool) bool {
		l := MakeLit(ID(id), comp)
		return l.ID() == ID(id) && l.Comp() == comp &&
			l.Not().Not() == l && l.NotIf(false) == l && l.NotIf(true) == l.Not()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestEvalBitsAgreesWithSimulate cross-checks the two evaluators.
func TestEvalBitsAgreesWithSimulate(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	m := randomMIG(rng, 5, 30, 2)
	a := FromMIG(m)
	sims := a.Simulate()
	for v := 0; v < 32; v++ {
		in := make([]bool, 5)
		for i := range in {
			in[i] = v>>uint(i)&1 == 1
		}
		got := a.EvalBits(in)
		for i := range got {
			if got[i] != sims[i].Eval(uint(v)) {
				t.Fatalf("vector %d output %d mismatch", v, i)
			}
		}
	}
}
