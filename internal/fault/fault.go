package fault

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the root of every error a failpoint returns: callers
// that need to tell an injected failure from an organic one (the exact5
// circuit breaker, tests asserting degraded paths) match it with
// errors.Is. Production code must never special-case it for correctness —
// an injected error has to travel the same degradation path a real one
// would, or the injection proves nothing.
var ErrInjected = errors.New("fault: injected")

// active counts enabled failpoints. It is the only state the disabled
// fast path reads: Hit is one atomic load and a branch when no failpoint
// is enabled anywhere in the process (pinned at 0 allocs/op by test,
// mirroring internal/obs's nil-tracer contract).
var active atomic.Int64

var (
	mu     sync.RWMutex
	points = map[string]*point{}
)

// point is one enabled failpoint's parsed spec plus its firing state.
type point struct {
	mu        sync.Mutex
	prob      float64       // fire probability per eligible hit (default 1)
	skip      int64         // eligible hits to ignore before the first firing
	remaining int64         // firings left; -1 = unlimited
	delay     time.Duration // sleep before acting
	action    byte          // actNone, actError or actPanic
	msg       string        // message of the error/panic
	hits      int64         // times the point actually fired
}

const (
	actNone byte = iota // delay-only point: sleep, then behave normally
	actError
	actPanic
)

// Enable arms the named failpoint with a spec. The spec is `*`-separated
// terms — modifiers followed by at most one action:
//
//	0.5               fire with probability 0.5 per eligible hit
//	skip(n)           ignore the first n eligible hits
//	count(n)          fire at most n times, then return to no-op
//	delay(d)          sleep d (time.ParseDuration) before acting
//	return            inject an error wrapping ErrInjected
//	return(msg)       inject an error with the given message
//	panic             panic at the hit site
//	panic(msg)        panic with the given message
//
// "0.5*count(3)*return(disk full)" fails roughly every other hit, three
// times total. A spec with no return/panic term is a pure delay point.
// Enabling an already-enabled name replaces its spec and firing state.
func Enable(name, spec string) error {
	if name == "" {
		return fmt.Errorf("fault: empty failpoint name")
	}
	p, err := parse(spec)
	if err != nil {
		return fmt.Errorf("fault: %s: %w", name, err)
	}
	mu.Lock()
	if _, exists := points[name]; !exists {
		active.Add(1)
	}
	points[name] = p
	mu.Unlock()
	return nil
}

// EnableSpec arms many failpoints at once from a single string of
// `name=spec` pairs separated by `;` — the grammar of the migserve
// -fault dev flag. On error, points enabled by earlier pairs stay armed.
func EnableSpec(specs string) error {
	for _, pair := range strings.Split(specs, ";") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, spec, ok := strings.Cut(pair, "=")
		if !ok {
			return fmt.Errorf("fault: malformed pair %q (want name=spec)", pair)
		}
		if err := Enable(strings.TrimSpace(name), strings.TrimSpace(spec)); err != nil {
			return err
		}
	}
	return nil
}

// Disable disarms the named failpoint; unknown names are a no-op.
func Disable(name string) {
	mu.Lock()
	if _, exists := points[name]; exists {
		delete(points, name)
		active.Add(-1)
	}
	mu.Unlock()
}

// Reset disarms every failpoint, returning the process to the zero-cost
// state. Tests that Enable must defer a Reset (or Disable) so failpoints
// never leak across test cases.
func Reset() {
	mu.Lock()
	active.Add(-int64(len(points)))
	points = map[string]*point{}
	mu.Unlock()
}

// Hits reports how many times the named failpoint has fired (delayed,
// errored or — counted just before the unwind — panicked) since it was
// enabled. 0 for unknown names.
func Hits(name string) int64 {
	mu.RLock()
	p := points[name]
	mu.RUnlock()
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits
}

// Hit evaluates the named failpoint: a no-op returning nil unless the
// point is enabled and elects to fire, in which case it sleeps its
// delay and then panics or returns an error wrapping ErrInjected
// (or returns nil, for delay-only points). When no failpoint at all is
// enabled — the production state — Hit is a single atomic load.
func Hit(name string) error {
	if active.Load() == 0 {
		return nil
	}
	return hitSlow(name)
}

func hitSlow(name string) error {
	mu.RLock()
	p := points[name]
	mu.RUnlock()
	if p == nil {
		return nil
	}
	p.mu.Lock()
	if p.skip > 0 {
		p.skip--
		p.mu.Unlock()
		return nil
	}
	if p.remaining == 0 {
		p.mu.Unlock()
		return nil
	}
	if p.prob < 1 && rand.Float64() >= p.prob {
		p.mu.Unlock()
		return nil
	}
	if p.remaining > 0 {
		p.remaining--
	}
	p.hits++
	delay, action, msg := p.delay, p.action, p.msg
	p.mu.Unlock()

	if delay > 0 {
		time.Sleep(delay)
	}
	switch action {
	case actPanic:
		panic(fmt.Sprintf("fault: injected panic at %s: %s", name, msg))
	case actError:
		return fmt.Errorf("%w: %s (failpoint %s)", ErrInjected, msg, name)
	}
	return nil
}

// parse compiles one spec string into a point.
func parse(spec string) (*point, error) {
	p := &point{prob: 1, remaining: -1, action: actNone}
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("empty spec")
	}
	for _, term := range strings.Split(spec, "*") {
		term = strings.TrimSpace(term)
		head, arg := term, ""
		if i := strings.IndexByte(term, '('); i >= 0 {
			if !strings.HasSuffix(term, ")") {
				return nil, fmt.Errorf("unbalanced parentheses in %q", term)
			}
			head, arg = term[:i], term[i+1:len(term)-1]
		}
		switch head {
		case "skip":
			n, err := strconv.ParseInt(arg, 10, 64)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("bad skip count %q", arg)
			}
			p.skip = n
		case "count":
			n, err := strconv.ParseInt(arg, 10, 64)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("bad count %q", arg)
			}
			p.remaining = n
		case "delay":
			d, err := time.ParseDuration(arg)
			if err != nil || d < 0 {
				return nil, fmt.Errorf("bad delay %q", arg)
			}
			p.delay = d
		case "return":
			if p.action != actNone {
				return nil, fmt.Errorf("spec has more than one action")
			}
			p.action = actError
			if p.msg = arg; arg == "" {
				p.msg = "injected error"
			}
		case "panic":
			if p.action != actNone {
				return nil, fmt.Errorf("spec has more than one action")
			}
			p.action = actPanic
			if p.msg = arg; arg == "" {
				p.msg = "injected panic"
			}
		default:
			f, err := strconv.ParseFloat(head, 64)
			if err != nil || arg != "" || f <= 0 || f > 1 {
				return nil, fmt.Errorf("unknown term %q (want probability, skip(n), count(n), delay(d), return(msg) or panic(msg))", term)
			}
			p.prob = f
		}
	}
	return p, nil
}
