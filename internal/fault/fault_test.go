package fault

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestDisabledHitIsNilAndAllocationFree(t *testing.T) {
	Reset()
	if err := Hit("nobody/enabled-this"); err != nil {
		t.Fatalf("disabled Hit returned %v", err)
	}
	// The hot-path contract: with no failpoint enabled anywhere, Hit is
	// an atomic load — no allocation, no map lookup, no lock.
	if allocs := testing.AllocsPerRun(1000, func() {
		Hit("db/snapshot-write")
	}); allocs != 0 {
		t.Fatalf("disabled Hit allocates %.1f times per op, want 0", allocs)
	}
}

func TestUnknownNameIsNoOpWhileOthersEnabled(t *testing.T) {
	defer Reset()
	if err := Enable("some/point", "return(boom)"); err != nil {
		t.Fatal(err)
	}
	if err := Hit("other/point"); err != nil {
		t.Fatalf("unrelated failpoint fired: %v", err)
	}
	if err := Hit("some/point"); !errors.Is(err, ErrInjected) {
		t.Fatalf("enabled failpoint returned %v, want ErrInjected", err)
	}
}

func TestReturnDisableCycle(t *testing.T) {
	defer Reset()
	if err := Enable("t/ret", "return(disk full)"); err != nil {
		t.Fatal(err)
	}
	err := Hit("t/ret")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if !strings.Contains(err.Error(), "disk full") || !strings.Contains(err.Error(), "t/ret") {
		t.Fatalf("error %q should name the message and the failpoint", err)
	}
	Disable("t/ret")
	if err := Hit("t/ret"); err != nil {
		t.Fatalf("after Disable, err = %v", err)
	}
}

func TestCountAndSkip(t *testing.T) {
	defer Reset()
	if err := Enable("t/count", "skip(2)*count(3)*return"); err != nil {
		t.Fatal(err)
	}
	var fired int
	for i := 0; i < 10; i++ {
		if Hit("t/count") != nil {
			fired++
			if i < 2 {
				t.Fatalf("fired during the skip window (hit %d)", i)
			}
		}
	}
	if fired != 3 {
		t.Fatalf("fired %d times, want 3", fired)
	}
	if got := Hits("t/count"); got != 3 {
		t.Fatalf("Hits = %d, want 3", got)
	}
}

func TestDelayOnlyPoint(t *testing.T) {
	defer Reset()
	if err := Enable("t/delay", "delay(30ms)"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := Hit("t/delay"); err != nil {
		t.Fatalf("delay-only point returned %v", err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("Hit returned after %v, want ≥ 30ms", d)
	}
}

func TestPanicAction(t *testing.T) {
	defer Reset()
	if err := Enable("t/panic", "panic(kaboom)"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Hit did not panic")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "kaboom") || !strings.Contains(s, "t/panic") {
			t.Fatalf("panic value %v should name the message and the failpoint", r)
		}
		if got := Hits("t/panic"); got != 1 {
			t.Fatalf("Hits = %d, want 1", got)
		}
	}()
	Hit("t/panic")
}

func TestProbabilityZeroPointNineNineFiresEventually(t *testing.T) {
	defer Reset()
	if err := Enable("t/prob", "0.99*return"); err != nil {
		t.Fatal(err)
	}
	var fired int
	for i := 0; i < 1000; i++ {
		if Hit("t/prob") != nil {
			fired++
		}
	}
	// P(< 900 of 1000 at p = 0.99) is astronomically small; this is a
	// sanity bound, not a statistical test.
	if fired < 900 {
		t.Fatalf("p=0.99 point fired only %d/1000 times", fired)
	}
}

func TestEnableSpecMultiplePairs(t *testing.T) {
	defer Reset()
	err := EnableSpec("a/one=return(x); b/two=count(1)*return ;;c/three=delay(1ms)")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a/one", "b/two"} {
		if Hit(name) == nil {
			t.Errorf("%s did not fire", name)
		}
	}
	if err := Hit("c/three"); err != nil {
		t.Errorf("delay-only c/three returned %v", err)
	}
}

func TestSpecErrors(t *testing.T) {
	defer Reset()
	for _, spec := range []string{
		"", "bogus", "return(x)*panic", "count(x)*return", "1.5*return",
		"delay(notaduration)", "return(x", "skip(-1)*return",
	} {
		if err := Enable("t/bad", spec); err == nil {
			t.Errorf("spec %q was accepted", spec)
		}
	}
	if err := EnableSpec("missing-equals-sign"); err == nil {
		t.Error("malformed EnableSpec pair was accepted")
	}
	if err := Enable("", "return"); err == nil {
		t.Error("empty failpoint name was accepted")
	}
}

func TestReEnableReplacesSpecAndState(t *testing.T) {
	defer Reset()
	if err := Enable("t/re", "count(1)*return"); err != nil {
		t.Fatal(err)
	}
	Hit("t/re") // exhausts the count
	if Hit("t/re") != nil {
		t.Fatal("exhausted point still fires")
	}
	if err := Enable("t/re", "count(1)*return"); err != nil {
		t.Fatal(err)
	}
	if Hit("t/re") == nil {
		t.Fatal("re-enabled point did not fire")
	}
}

func BenchmarkHitDisabled(b *testing.B) {
	Reset()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Hit("db/snapshot-write")
	}
}
