// Package fault is the repository's zero-dependency, build-tag-free
// fault-injection layer: named failpoints threaded through every code
// path that touches the outside world (snapshot save/load and the
// temp-file rename in internal/db, exact-synthesis ladders, per-job
// execution in internal/engine, request handling and admission control
// in internal/server), so the chaos tests and the chaos-smoke CI job can
// prove each degraded mode instead of hoping for it.
//
// A failpoint is a call site — fault.Hit("db/snapshot-rename") — that is
// compiled into production builds but costs one atomic load and a branch
// while no failpoint is enabled (the zero-cost-off contract of
// internal/obs, pinned at 0 allocs/op by test). Enabling is explicit and
// process-local: fault.Enable in tests, or the migserve -fault dev flag
// via EnableSpec; there is no environment-variable backdoor.
//
// Specs compose modifiers and one action: "0.5*count(3)*return(EIO)"
// fails about every other hit, three times; "delay(5ms)" slows a path
// without failing it; "skip(1)*panic" panics on the second hit. Injected
// errors wrap ErrInjected so tests (and the exact5 circuit breaker) can
// tell injected failures from organic ones — production degradation
// paths themselves must treat both identically.
//
// The registered failpoints, their degraded behavior, the metric that
// exposes each, and the recovery path are tabulated in ARCHITECTURE.md's
// "Failure modes & degraded states" section.
//
// Concurrency: all package functions are safe for concurrent use; Hit is
// called from rewrite workers, engine workers, HTTP handlers and the
// snapshot loop at once. Enable/Disable/Reset serialize behind one
// mutex and are meant for test setup and process start, not hot paths.
package fault
