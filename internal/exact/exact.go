package exact

import (
	"context"
	"fmt"
	"time"

	"mighash/internal/mig"
	"mighash/internal/sat"
	"mighash/internal/tt"
)

// Options tunes the synthesis search.
type Options struct {
	// MaxGates caps the ladder search. Zero selects the Theorem 2 upper
	// bound 10·(2^(n-4)−1)+7 for n ≥ 4 and 7 below.
	MaxGates int
	// MaxConflicts bounds each SAT call; zero means unlimited.
	MaxConflicts int64
	// Timeout bounds the whole Minimum call; zero means unlimited.
	Timeout time.Duration
	// NoExtraPruning disables the sound search-space reductions that go
	// beyond the paper's encoding (all-gates-used and at-most-one
	// complemented operand). Mainly useful for ablation benchmarks.
	NoExtraPruning bool
}

// UpperBound returns the Theorem 2 bound on the size of an MIG for any
// n-variable function: C(n) ≤ 10·(2^(n-4)−1)+7 for n ≥ 4. Functions of
// fewer variables embed into four variables, so the n = 4 bound of 7
// applies to them as well (it is not tight there, which is harmless for a
// ladder cap).
func UpperBound(n int) int {
	if n <= 4 {
		return 7
	}
	return 10*(1<<uint(n-4)-1) + 7
}

// Decide determines whether an MIG with exactly k majority gates computes
// f, returning the extracted MIG on success. For k = 0 the answer is
// immediate: only constants and literals qualify. ctx cancels the SAT
// search (the result is then sat.Unknown); context.Background() runs
// uninterruptible.
func Decide(ctx context.Context, f tt.TT, k int, opt Options) (sat.Status, *mig.MIG) {
	st, m, _ := decide(ctx, f, k, opt)
	return st, m
}

// decide is Decide plus the number of SAT conflicts the step spent.
func decide(ctx context.Context, f tt.TT, k int, opt Options) (sat.Status, *mig.MIG, int64) {
	if k == 0 {
		if m, ok := trivialMIG(f); ok {
			return sat.Sat, m, 0
		}
		return sat.Unsat, nil, 0
	}
	e := newEncoding(ctx, f, k, opt)
	st := e.solver.Solve()
	conflicts := e.solver.Stats.Conflicts
	if st != sat.Sat {
		return st, nil, conflicts
	}
	m := e.extract()
	// Guard against encoder bugs: the extracted MIG must compute f.
	if got := m.Simulate()[0]; got != f {
		panic(fmt.Sprintf("exact: extracted MIG computes %v, want %v", got, f))
	}
	return sat.Sat, m, conflicts
}

// LadderStats reports the work one Minimum ladder spent: how many
// decision problems were solved, the SAT conflicts summed over them, and
// the gate count of the result (-1 when the ladder failed). These feed
// the per-ladder trace spans, which is how a heavy-tailed synthesis
// workload becomes attributable instead of an average.
type LadderStats struct {
	Steps     int
	Conflicts int64
	Gates     int
}

// Minimum synthesizes a minimum-size MIG for f by solving the decision
// problem for k = 0, 1, 2, … (Sec. III). It fails only when a budget
// expires or ctx is cancelled; a cancellation is reported as an error
// wrapping ctx.Err(), so callers can tell an abandoned ladder from a
// genuinely exhausted budget with errors.Is.
func Minimum(ctx context.Context, f tt.TT, opt Options) (*mig.MIG, error) {
	m, _, err := MinimumStats(ctx, f, opt)
	return m, err
}

// MinimumStats is Minimum with an accounting of the work the ladder
// spent. The stats are valid on failure too (Gates is then -1), so a
// budget-exhausted ladder still reports its conflicts.
func MinimumStats(ctx context.Context, f tt.TT, opt Options) (*mig.MIG, LadderStats, error) {
	ls := LadderStats{Gates: -1}
	maxGates := opt.MaxGates
	if maxGates == 0 {
		maxGates = UpperBound(f.N)
	}
	var deadline time.Time
	if opt.Timeout > 0 {
		deadline = time.Now().Add(opt.Timeout)
	}
	for k := 0; k <= maxGates; k++ {
		if err := ctx.Err(); err != nil {
			return nil, ls, fmt.Errorf("exact: ladder abandoned at k = %d for %v: %w", k, f, err)
		}
		stepOpt := opt
		if !deadline.IsZero() {
			remaining := time.Until(deadline)
			if remaining <= 0 {
				return nil, ls, fmt.Errorf("exact: timeout after %v while proving k ≥ %d for %v", opt.Timeout, k, f)
			}
			stepOpt.Timeout = remaining
		}
		st, m, conflicts := decide(ctx, f, k, stepOpt)
		ls.Steps++
		ls.Conflicts += conflicts
		switch st {
		case sat.Sat:
			ls.Gates = k
			return m, ls, nil
		case sat.Unknown:
			if err := ctx.Err(); err != nil {
				return nil, ls, fmt.Errorf("exact: ladder abandoned at k = %d for %v: %w", k, f, err)
			}
			return nil, ls, fmt.Errorf("exact: budget exhausted at k = %d for %v", k, f)
		}
	}
	return nil, ls, fmt.Errorf("exact: no MIG with ≤ %d gates for %v (bound too small?)", maxGates, f)
}

// trivialMIG returns an MIG of size 0 for f if one exists (constants and
// single literals).
func trivialMIG(f tt.TT) (*mig.MIG, bool) {
	m := mig.New(f.N)
	switch {
	case f.IsConst0():
		m.AddOutput(mig.Const0)
		return m, true
	case f.IsConst1():
		m.AddOutput(mig.Const1)
		return m, true
	}
	for i := 0; i < f.N; i++ {
		if f == tt.Var(f.N, i) {
			m.AddOutput(m.Input(i))
			return m, true
		}
		if f == tt.Var(f.N, i).Not() {
			m.AddOutput(m.Input(i).Not())
			return m, true
		}
	}
	return nil, false
}

// encoding is the CNF instance for one (f, k) decision problem.
type encoding struct {
	f      tt.TT
	n, k   int
	solver *sat.Solver

	sel    [][3][]int // sel[l][c][i]: child c of gate l+1 selects option i
	pol    [][3]int   // pol[l][c]: the edge is complemented
	b      [][]int    // b[l][j]: output of gate l+1 under assignment j
	a      [][3][]int // a[l][c][j]: input value
	outNeg int        // output edge polarity
}

func newEncoding(ctx context.Context, f tt.TT, k int, opt Options) *encoding {
	n := f.N
	e := &encoding{f: f, n: n, k: k, solver: sat.New()}
	s := e.solver
	if opt.MaxConflicts > 0 {
		s.MaxConflict = opt.MaxConflicts
	}
	if opt.Timeout > 0 {
		s.Deadline = time.Now().Add(opt.Timeout)
	}
	if ctx != nil && ctx.Done() != nil {
		s.Ctx = ctx
	}
	nj := 1 << uint(n)

	e.sel = make([][3][]int, k)
	e.pol = make([][3]int, k)
	e.b = make([][]int, k)
	e.a = make([][3][]int, k)
	for l := 0; l < k; l++ {
		domain := n + l + 1 // options: const 0, inputs 1..n, gates n+1..n+l
		for c := 0; c < 3; c++ {
			e.sel[l][c] = make([]int, domain)
			for i := range e.sel[l][c] {
				e.sel[l][c][i] = s.NewVar()
			}
			e.pol[l][c] = s.NewVar()
			e.a[l][c] = make([]int, nj)
			for j := range e.a[l][c] {
				e.a[l][c][j] = s.NewVar()
			}
		}
		e.b[l] = make([]int, nj)
		for j := range e.b[l] {
			e.b[l][j] = s.NewVar()
		}
	}
	e.outNeg = s.NewVar()

	for l := 0; l < k; l++ {
		domain := n + l + 1
		for c := 0; c < 3; c++ {
			s.ExactlyOne(lits(e.sel[l][c])...)
		}
		// Eq. (10): s1 < s2 < s3 — forbid any non-increasing pair.
		for c := 0; c < 2; c++ {
			for i1 := 0; i1 < domain; i1++ {
				for i2 := 0; i2 <= i1; i2++ {
					s.AddClause(sat.NegLit(e.sel[l][c][i1]), sat.NegLit(e.sel[l][c+1][i2]))
				}
			}
		}
		for j := 0; j < nj; j++ {
			// Eq. (4): majority semantics.
			s.Majority(sat.PosLit(e.b[l][j]),
				sat.PosLit(e.a[l][0][j]), sat.PosLit(e.a[l][1][j]), sat.PosLit(e.a[l][2][j]))
			for c := 0; c < 3; c++ {
				guard := sat.PosLit(e.sel[l][c][0])
				av := sat.PosLit(e.a[l][c][j])
				pv := sat.PosLit(e.pol[l][c])
				// Eq. (6): constant child — value is the edge polarity
				// (a complemented constant-0 edge delivers 1).
				s.EqualIf(guard, av, pv)
				// Eq. (7): input child.
				for v := 1; v <= e.n; v++ {
					guard = sat.PosLit(e.sel[l][c][v])
					bit := j>>(uint(v)-1)&1 == 1
					if bit {
						s.EqualIf(guard, av, pv.Not())
					} else {
						s.EqualIf(guard, av, pv)
					}
				}
				// Eq. (8): gate child.
				for g := 0; g < l; g++ {
					guard = sat.PosLit(e.sel[l][c][e.n+1+g])
					s.XorEqualIf(guard, av, sat.PosLit(e.b[g][j]), pv)
				}
			}
		}
	}
	// Eq. (9): the root gate computes f up to the output polarity.
	for j := 0; j < nj; j++ {
		bv := sat.PosLit(e.b[k-1][j])
		ov := sat.PosLit(e.outNeg)
		if e.f.Eval(uint(j)) {
			s.AddClause(ov, bv)
			s.AddClause(ov.Not(), bv.Not())
		} else {
			s.AddClause(ov, bv.Not())
			s.AddClause(ov.Not(), bv)
		}
	}
	if !opt.NoExtraPruning {
		// Every non-root gate must feed a later gate (a minimum MIG has no
		// dead gates, so this preserves the ladder's answers).
		for g := 0; g < k-1; g++ {
			var use []sat.Lit
			for l := g + 1; l < k; l++ {
				for c := 0; c < 3; c++ {
					use = append(use, sat.PosLit(e.sel[l][c][e.n+1+g]))
				}
			}
			s.AddClause(use...)
		}
		// At most one complemented operand per gate: self-duality lets any
		// gate with two or more complemented fanins be replaced by its dual
		// with the complement pushed to the fanouts, so restricting the
		// search keeps at least one minimum solution.
		for l := 0; l < k; l++ {
			s.AtMostOne(sat.PosLit(e.pol[l][0]), sat.PosLit(e.pol[l][1]), sat.PosLit(e.pol[l][2]))
		}
	}
	return e
}

func lits(vars []int) []sat.Lit {
	out := make([]sat.Lit, len(vars))
	for i, v := range vars {
		out[i] = sat.PosLit(v)
	}
	return out
}

// extract reads the model and reconstructs the MIG of Theorem 1.
func (e *encoding) extract() *mig.MIG {
	s := e.solver
	m := mig.New(e.n)
	gate := make([]mig.Lit, e.k)
	for l := 0; l < e.k; l++ {
		var ch [3]mig.Lit
		for c := 0; c < 3; c++ {
			choice := -1
			for i, v := range e.sel[l][c] {
				if s.Value(v) {
					choice = i
					break
				}
			}
			if choice < 0 {
				panic("exact: model has no selected child")
			}
			var base mig.Lit
			switch {
			case choice == 0:
				base = mig.Const0
			case choice <= e.n:
				base = m.Input(choice - 1)
			default:
				base = gate[choice-e.n-1]
			}
			ch[c] = base.NotIf(s.Value(e.pol[l][c]))
		}
		gate[l] = m.Maj(ch[0], ch[1], ch[2])
	}
	m.AddOutput(gate[e.k-1].NotIf(s.Value(e.outNeg)))
	return m
}
