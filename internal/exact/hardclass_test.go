package exact

import (
	"context"
	"os"
	"testing"
	"time"

	"mighash/internal/sat"
	"mighash/internal/tt"
)

// TestHardClassSplitTiming proves the paper's hardest instance — that
// S0,2 has no 6-gate MIG — with the cube-and-conquer solver. The proof
// takes minutes even parallelized (the paper's Z3 needed 16796 s), so the
// test only runs when MIGHASH_HARD=1 is set; cmd/migdb and
// `migbench -table 1 -live` exercise the same path.
func TestHardClassSplitTiming(t *testing.T) {
	if os.Getenv("MIGHASH_HARD") == "" {
		t.Skip("set MIGHASH_HARD=1 to run the minutes-long UNSAT proof")
	}
	f := tt.New(4, 0x1669)
	start := time.Now()
	st, _ := DecideSplit(context.Background(), f, 6, Options{}, 0)
	if st != sat.Unsat {
		t.Fatalf("k=6 for S0,2 returned %v", st)
	}
	t.Logf("S0,2 UNSAT at k=6 via split: %v", time.Since(start))
}
