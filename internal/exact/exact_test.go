package exact

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"mighash/internal/sat"
	"mighash/internal/tt"
)

func TestUpperBound(t *testing.T) {
	cases := map[int]int{1: 7, 2: 7, 3: 7, 4: 7, 5: 17, 6: 37}
	for n, want := range cases {
		if got := UpperBound(n); got != want {
			t.Errorf("UpperBound(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestTrivialSizeZero(t *testing.T) {
	for _, f := range []tt.TT{
		tt.Const0(3), tt.Const1(3),
		tt.Var(3, 0), tt.Var(3, 2).Not(),
	} {
		m, err := Minimum(context.Background(), f, Options{})
		if err != nil {
			t.Fatalf("Minimum(%v): %v", f, err)
		}
		if m.Size() != 0 {
			t.Errorf("Minimum(%v) has size %d, want 0", f, m.Size())
		}
		if got := m.Simulate()[0]; got != f {
			t.Errorf("Minimum(%v) computes %v", f, got)
		}
	}
}

func TestSingleGateFunctions(t *testing.T) {
	n := 3
	x, y, z := tt.Var(n, 0), tt.Var(n, 1), tt.Var(n, 2)
	for name, f := range map[string]tt.TT{
		"and":     x.And(y),
		"or":      x.Or(z),
		"maj":     tt.Maj(x, y, z),
		"nand":    x.And(y).Not(),
		"maj-nxy": tt.Maj(x.Not(), y, z),
	} {
		m, err := Minimum(context.Background(), f, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.Size() != 1 {
			t.Errorf("%s: size %d, want 1", name, m.Size())
		}
		if got := m.Simulate()[0]; got != f {
			t.Errorf("%s: computes %v, want %v", name, got, f)
		}
	}
}

func TestAndThree(t *testing.T) {
	// x∧y∧z requires exactly two majority gates.
	f := tt.Var(3, 0).And(tt.Var(3, 1)).And(tt.Var(3, 2))
	if st, _ := Decide(context.Background(), f, 1, Options{}); st != sat.Unsat {
		t.Error("AND3 should not fit in one gate")
	}
	st, m := Decide(context.Background(), f, 2, Options{})
	if st != sat.Sat {
		t.Fatal("AND3 should fit in two gates")
	}
	if got := m.Simulate()[0]; got != f {
		t.Errorf("AND3 MIG computes %v", got)
	}
}

func TestXor2NeedsThreeGates(t *testing.T) {
	f := tt.Var(2, 0).Xor(tt.Var(2, 1))
	m, err := Minimum(context.Background(), f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Size() != 3 {
		t.Errorf("XOR2 minimum size = %d, want 3", m.Size())
	}
	if got := m.Simulate()[0]; got != f {
		t.Errorf("XOR2 MIG computes %v", got)
	}
}

func TestFullAdderSumExact(t *testing.T) {
	// XOR3 has a 3-gate MIG (the full-adder sum of Fig. 1 shares the carry).
	f := tt.Var(3, 0).Xor(tt.Var(3, 1)).Xor(tt.Var(3, 2))
	m, err := Minimum(context.Background(), f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Size() > 3 {
		t.Errorf("XOR3 minimum size = %d, want ≤ 3", m.Size())
	}
	if got := m.Simulate()[0]; got != f {
		t.Errorf("XOR3 MIG computes %v", got)
	}
}

func TestMinimumRandom4VarConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 6; trial++ {
		f := tt.New(4, uint64(rng.Intn(1<<16)))
		m, err := Minimum(context.Background(), f, Options{Timeout: 2 * time.Minute})
		if err != nil {
			t.Fatalf("trial %d (%v): %v", trial, f, err)
		}
		if got := m.Simulate()[0]; got != f {
			t.Fatalf("trial %d: MIG computes %v, want %v", trial, got, f)
		}
		k := m.Size()
		if k > UpperBound(4) {
			t.Fatalf("trial %d: size %d exceeds Theorem 2 bound", trial, k)
		}
		if k > 0 {
			// Minimality: one gate fewer must be UNSAT.
			if st, _ := Decide(context.Background(), f, k-1, Options{}); st != sat.Unsat {
				t.Fatalf("trial %d: Decide(k-1) = %v, not UNSAT", trial, st)
			}
		}
	}
}

func TestPruningPreservesMinimum(t *testing.T) {
	// The extra pruning constraints must not change the ladder's answers.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 4; trial++ {
		f := tt.New(3, uint64(rng.Intn(1<<8)))
		m1, err1 := Minimum(context.Background(), f, Options{})
		m2, err2 := Minimum(context.Background(), f, Options{NoExtraPruning: true})
		if err1 != nil || err2 != nil {
			t.Fatalf("trial %d: %v %v", trial, err1, err2)
		}
		if m1.Size() != m2.Size() {
			t.Fatalf("trial %d (%v): pruned size %d != unpruned size %d",
				trial, f, m1.Size(), m2.Size())
		}
	}
}

func TestFiveVariableMajority(t *testing.T) {
	// Exact synthesis is "also applicable to functions with more than 4
	// inputs" (contribution 1): the 5-input majority has a 4-gate MIG.
	n := 5
	var f tt.TT = tt.Const0(n)
	// maj5(x) = 1 iff at least 3 of 5 inputs are set.
	var bits uint64
	for j := uint(0); j < 32; j++ {
		if popcount(j) >= 3 {
			bits |= 1 << j
		}
	}
	f = tt.New(n, bits)
	m, err := Minimum(context.Background(), f, Options{Timeout: 3 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Simulate()[0]; got != f {
		t.Errorf("maj5 MIG computes %v", got)
	}
	if m.Size() != 4 {
		t.Errorf("maj5 minimum size = %d, want 4", m.Size())
	}
}

func popcount(v uint) int {
	n := 0
	for ; v != 0; v &= v - 1 {
		n++
	}
	return n
}

func TestDecideBudget(t *testing.T) {
	f := tt.New(4, 0x1668) // a nontrivial function
	st, _ := Decide(context.Background(), f, 5, Options{MaxConflicts: 1})
	if st == sat.Sat {
		// A single conflict budget may still solve easy instances; accept.
		return
	}
	if st != sat.Unknown && st != sat.Unsat {
		t.Errorf("Decide with tiny budget = %v", st)
	}
}

func BenchmarkMinimumXor3(b *testing.B) {
	f := tt.Var(3, 0).Xor(tt.Var(3, 1)).Xor(tt.Var(3, 2))
	for i := 0; i < b.N; i++ {
		if _, err := Minimum(context.Background(), f, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
