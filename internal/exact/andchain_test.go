package exact

import (
	"context"
	"testing"

	"mighash/internal/npn"
	"mighash/internal/sat"
	"mighash/internal/tt"
)

// TestMinimumAIGKnownSizes pins classic AND-chain optima: AND2 = 1,
// OR2 = 1, XOR2 = 3, MAJ3 = 4, XOR3 = 6.
func TestMinimumAIGKnownSizes(t *testing.T) {
	cases := []struct {
		n    int
		bits uint64
		want int
		name string
	}{
		{2, 0x8, 1, "and2"},
		{2, 0xE, 1, "or2"},
		{2, 0x6, 3, "xor2"},
		{3, 0xE8, 4, "maj3"},
		{3, 0x96, 6, "xor3"},
		{3, 0xCA, 3, "mux"},
	}
	for _, c := range cases {
		f := tt.New(c.n, c.bits)
		a, err := MinimumAIG(f, Options{}, 1)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if a.Size() != c.want {
			t.Errorf("A(%s) = %d, want %d", c.name, a.Size(), c.want)
		}
		if got := a.Simulate()[0]; got != f {
			t.Errorf("%s: AIG computes %v", c.name, got)
		}
	}
}

// TestMinimumAIGNeverBeatsMIG checks the paper's premise exhaustively on
// every 3-variable NPN class: AND is a special case of majority, so
// C_MIG(f) ≤ C_AIG(f) must hold. Both optima are synthesized live, which
// keeps the test independent of the embedded database. Four-variable
// classes have multi-minute AND-chain UNSAT proofs and are covered by
// `migbench -aig` with a per-class budget instead.
func TestMinimumAIGNeverBeatsMIG(t *testing.T) {
	for _, f := range npn.Classes(3) {
		a, err := MinimumAIG(f, Options{}, 4)
		if err != nil {
			t.Fatal(err)
		}
		m, err := Minimum(context.Background(), f, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if m.Size() > a.Size() {
			t.Errorf("f=%v: C_MIG %d > C_AIG %d", f, m.Size(), a.Size())
		}
		if got := a.Simulate()[0]; got != f {
			t.Errorf("f=%v: AIG computes %v", f, got)
		}
	}
}

// TestDecideAIGUnsatBound: XOR2 has no 2-gate AND chain.
func TestDecideAIGUnsatBound(t *testing.T) {
	f := tt.New(2, 0x6)
	if st, _ := DecideAIG(f, 2, Options{}); st != sat.Unsat {
		t.Errorf("xor2 with 2 gates: %v", st)
	}
	if st, a := DecideAIG(f, 3, Options{}); st != sat.Sat || a.Size() != 3 {
		t.Errorf("xor2 with 3 gates: %v", st)
	}
}

// TestAndUpperBound pins the Shannon recurrence.
func TestAndUpperBound(t *testing.T) {
	for n, want := range map[int]int{1: 0, 2: 3, 3: 9, 4: 21, 5: 45} {
		if got := AndUpperBound(n); got != want {
			t.Errorf("AndUpperBound(%d) = %d, want %d", n, got, want)
		}
	}
}
