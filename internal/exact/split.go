package exact

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"mighash/internal/mig"
	"mighash/internal/sat"
	"mighash/internal/tt"
)

// DecideSplit solves the same decision problem as Decide by
// cube-and-conquer: the search space is partitioned on the operand triple
// of the root gate (the symmetry break of Eq. (10) makes the triples
// strictly increasing, so the C(n+k-1, 3) choices are disjoint and
// exhaustive), and the sub-instances are solved on `workers` goroutines.
// UNSAT requires every cube to be refuted — exactly the case where the
// single-solver ladder step is slow — while SAT returns as soon as any
// cube produces a model.
//
// The hardest Table I instance (proving that S0,2 needs more than 6
// gates) takes ~24 minutes sequentially and a few minutes split this way.
func DecideSplit(ctx context.Context, f tt.TT, k int, opt Options, workers int) (sat.Status, *mig.MIG) {
	if k < 2 {
		// Nothing worth splitting: a 0/1-gate instance is immediate.
		return Decide(ctx, f, k, opt)
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	n := f.N
	domain := n + k // operand options of the root gate: 0, x1..xn, g1..g_{k-1}

	type cube struct{ a, b, c int }
	var cubes []cube
	for a := 0; a < domain; a++ {
		for b := a + 1; b < domain; b++ {
			for c := b + 1; c < domain; c++ {
				cubes = append(cubes, cube{a, b, c})
			}
		}
	}

	var (
		wg      sync.WaitGroup
		next    int64 = -1
		found   atomic.Bool
		unknown atomic.Bool
		model   *mig.MIG
		mu      sync.Mutex
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if found.Load() {
					return
				}
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(cubes) {
					return
				}
				if ctx.Err() != nil {
					unknown.Store(true)
					return
				}
				cu := cubes[i]
				e := newEncoding(ctx, f, k, opt)
				root := k - 1
				ok := e.solver.AddClause(sat.PosLit(e.sel[root][0][cu.a])) &&
					e.solver.AddClause(sat.PosLit(e.sel[root][1][cu.b])) &&
					e.solver.AddClause(sat.PosLit(e.sel[root][2][cu.c]))
				if !ok {
					continue // cube contradicts the base constraints: refuted
				}
				switch e.solver.Solve() {
				case sat.Sat:
					m := e.extract()
					mu.Lock()
					if model == nil {
						model = m
					}
					mu.Unlock()
					found.Store(true)
					return
				case sat.Unknown:
					unknown.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	switch {
	case model != nil:
		return sat.Sat, model
	case unknown.Load():
		return sat.Unknown, nil
	default:
		return sat.Unsat, nil
	}
}

// MinimumParallel is Minimum with cube-and-conquer ladder steps for
// k ≥ splitFrom (the small steps are faster solved whole).
func MinimumParallel(ctx context.Context, f tt.TT, opt Options, workers, splitFrom int) (*mig.MIG, error) {
	if splitFrom <= 0 {
		splitFrom = 5
	}
	maxGates := opt.MaxGates
	if maxGates == 0 {
		maxGates = UpperBound(f.N)
	}
	for k := 0; k <= maxGates; k++ {
		var (
			st sat.Status
			m  *mig.MIG
		)
		if k >= splitFrom {
			st, m = DecideSplit(ctx, f, k, opt, workers)
		} else {
			st, m = Decide(ctx, f, k, opt)
		}
		switch st {
		case sat.Sat:
			return m, nil
		case sat.Unknown:
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("exact: ladder abandoned at k = %d for %v: %w", k, f, err)
			}
			return nil, errBudget(f, k)
		}
	}
	return nil, errBound(f, maxGates)
}

func errBudget(f tt.TT, k int) error {
	return fmt.Errorf("exact: budget exhausted at k = %d for %v", k, f)
}

func errBound(f tt.TT, maxGates int) error {
	return fmt.Errorf("exact: no MIG with ≤ %d gates for %v (bound too small?)", maxGates, f)
}
