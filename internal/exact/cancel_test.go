package exact

import (
	"context"
	"errors"
	"testing"
	"time"

	"mighash/internal/tt"
)

// TestMinimumCancellation pins the context plumbing through the ladder
// and into the SAT search: a Minimum call with no conflict or wall-clock
// budget of its own must return promptly once its context is cancelled —
// previously a runaway instance could only be abandoned by killing the
// process, which also made clean server-deadline behavior impossible.
func TestMinimumCancellation(t *testing.T) {
	// A dense 5-variable function: the ladder has to climb through
	// several nontrivial UNSAT proofs, far more work than the
	// cancellation window allows.
	f := tt.New(5, 0x9D2B64E817A3C55F)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	m, err := Minimum(ctx, f, Options{})
	elapsed := time.Since(start)
	if err == nil {
		// The machine solved it inside the window: make the race
		// deterministic by re-running with a pre-cancelled context.
		if m == nil {
			t.Fatal("nil MIG without error")
		}
		ctx2, cancel2 := context.WithCancel(context.Background())
		cancel2()
		if _, err = Minimum(ctx2, f, Options{}); err == nil {
			t.Fatal("Minimum succeeded under a cancelled context")
		}
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	// Generous bound: the point is "seconds, not the minutes a full
	// 5-variable ladder takes", not a tight latency SLA on loaded CI.
	if elapsed > 30*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

// TestMinimumParallelCancellation covers the cube-and-conquer path: a
// cancelled context must abandon DecideSplit's sub-instances too.
func TestMinimumParallelCancellation(t *testing.T) {
	f := tt.New(5, 0x6A3C55F19D2B64E8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MinimumParallel(ctx, f, Options{}, 4, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
}
