// Package exact implements exact synthesis of minimum Majority-Inverter
// Graphs (Sec. III of the paper), plus the complexity engines behind
// Table II: combinational complexity C(f) via SAT, expression length L(f)
// via dynamic programming, and minimum depth D(f) via level-set
// reachability.
//
// The paper encodes the decision problem "is there an MIG with k majority
// gates computing f" in SMT and solves it with Z3. The constraints are
// finite-domain, so this package bit-blasts the identical constraint system
// to CNF — one-hot select variables, per-assignment evaluation variables,
// the majority semantics of Eq. (4), the connection implications of
// Eq. (6)–(8), the output semantics of Eq. (9) and the operand-ordering
// symmetry break of Eq. (10) — and solves it with the internal CDCL solver.
// Minimality follows from the ladder search k = 0, 1, 2, … .
//
// Role in the functional-hashing flow: exact synthesis is both the
// offline half of the paper's Algorithm 1/2 — it produces the optimal
// MIG per NPN class that the database (internal/db) serves at rewrite
// time; the checked-in artifact internal/db/data/npn4.txt is generated
// through this package by cmd/migdb — and, since the 5-input extension,
// an online engine: db.OnDemand drives Minimum per previously-unseen
// 5-input class, under a per-class budget, from inside running
// optimization passes.
//
// Every ladder entry point takes a context.Context that cancels the
// underlying SAT search (polled at restart boundaries and every 64
// conflicts), so a caller — an HTTP request deadline, typically — can
// abandon a runaway instance; the resulting error wraps ctx.Err() to be
// distinguishable from an exhausted conflict or wall-clock budget.
//
// Concurrency contract: every synthesis call (Minimum, MinimumAIG, the
// complexity functions) builds a private SAT solver and scratch state, so
// independent calls may run on any number of goroutines; nothing in the
// package is shared mutable state.
package exact
