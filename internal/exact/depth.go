package exact

import (
	"fmt"
	"math/bits"
	"sort"

	"mighash/internal/npn"
	"mighash/internal/tt"
)

// Minimum-depth analysis (the D(f) column of Table II).
//
// Depth needs no SAT search: the set of functions computable by an MIG of
// depth ≤ d is F_d = F_{d-1} ∪ {〈abc〉 : a,b,c ∈ F_{d-1}}, with F_0 the
// constants and literals, because complement edges are free and every
// depth-d MIG is a majority of three depth-(d-1) MIGs. F_0..F_2 are small
// enough to close exhaustively. Membership of f in F_3 reduces — via the
// observation that 〈g1 g2 g3〉 = f iff the disagreement masks x_i = g_i⊕f
// are pairwise disjoint — to finding three pairwise-disjoint elements of
// X = {g⊕f : g ∈ F_2}, which a subset-OR table answers quickly. Whatever
// remains is depth ≥ 4, and a Shannon construction (two levels on top of
// exact 3-variable depths) certifies depth 4 from above.

// MinDepths returns D(f), the minimum MIG depth, for every function over n
// variables (n ≤ 4), indexed by truth-table value.
func MinDepths(n int) []int8 {
	if n < 0 || n > 4 {
		panic("exact: MinDepths supports up to 4 variables")
	}
	if n <= 3 {
		return minDepthsSmall(n)
	}
	return minDepths4()
}

// minDepthsSmall closes the level sets exhaustively; for n ≤ 3 the
// universe has at most 256 functions.
func minDepthsSmall(n int) []int8 {
	size := 1 << (1 << uint(n))
	mask := uint64(tt.Mask(n))
	depth := make([]int8, size)
	for i := range depth {
		depth[i] = -1
	}
	var frontier []uint64
	add := func(v uint64, d int8) {
		if depth[v] == -1 {
			depth[v] = d
			frontier = append(frontier, v)
		}
	}
	add(0, 0)
	add(mask, 0)
	for i := 0; i < n; i++ {
		v := tt.Var(n, i).Bits
		add(v, 0)
		add(^v&mask, 0)
	}
	members := append([]uint64(nil), frontier...)
	for d := int8(1); ; d++ {
		frontier = frontier[:0]
		for i := 0; i < len(members); i++ {
			for j := i; j < len(members); j++ {
				for k := j; k < len(members); k++ {
					a, b, c := members[i], members[j], members[k]
					add(a&b|a&c|b&c, d)
				}
			}
		}
		if len(frontier) == 0 {
			break
		}
		members = append(members, frontier...)
	}
	return depth
}

// minDepths4 computes exact depths for all 65536 functions of 4 variables.
func minDepths4() []int8 {
	const size = 1 << 16
	const mask = 0xFFFF
	depth := make([]int8, size)
	for i := range depth {
		depth[i] = -1
	}
	var members []uint32
	add := func(v uint32, d int8) {
		if depth[v] == -1 {
			depth[v] = d
			members = append(members, v)
		}
	}
	add(0, 0)
	add(mask, 0)
	for i := 0; i < 4; i++ {
		v := uint32(tt.Var(4, i).Bits)
		add(v, 0)
		add(^v&mask, 0)
	}
	// Levels 1 and 2 by exhaustive closure over the cumulative set.
	for d := int8(1); d <= 2; d++ {
		prev := append([]uint32(nil), members...)
		for i := 0; i < len(prev); i++ {
			for j := i; j < len(prev); j++ {
				ab := prev[i] & prev[j]
				xab := prev[i] ^ prev[j]
				for k := j; k < len(prev); k++ {
					add(ab|prev[k]&xab, d)
				}
			}
		}
	}
	f2 := append([]uint32(nil), members...) // all functions of depth ≤ 2

	// For each undecided f: X = {g⊕f : g ∈ f2}; f has depth 3 iff X
	// contains three pairwise-disjoint elements. Depth is NPN-invariant
	// (input permutation/negation and output negation change neither the
	// levels nor the structure), so the test runs once per NPN class and
	// the answer is broadcast to the whole orbit.
	scratch := make([]bool, size)
	repDepth := make(map[uint64]int8)
	for v := uint32(0); v < size; v++ {
		if depth[v] != -1 {
			continue
		}
		rep := npn.ClassOf4(tt.New(4, uint64(v))).Bits
		d, ok := repDepth[rep]
		if !ok {
			if hasThreeDisjoint(f2, uint32(rep), scratch) {
				d = 3
			} else {
				d = -1
			}
			repDepth[rep] = d
		}
		depth[v] = d
	}
	// Remaining functions are depth ≥ 4; certify ≤ 4 (and fill the value)
	// with a Shannon construction over exact 3-variable depths.
	d3 := minDepthsSmall(3)
	for v := uint32(0); v < size; v++ {
		if depth[v] != -1 {
			continue
		}
		f := tt.New(4, uint64(v))
		best := int8(127)
		for i := 0; i < 4; i++ {
			c0 := dropVar(f.Cofactor0(i), i)
			c1 := dropVar(f.Cofactor1(i), i)
			d := maxInt8(d3[c0.Bits], d3[c1.Bits]) + 2
			if d < best {
				best = d
			}
		}
		if best != 4 {
			panic(fmt.Sprintf("exact: function %04x escaped the depth analysis (bound %d)", v, best))
		}
		depth[v] = 4
	}
	return depth
}

// hasThreeDisjoint reports whether X = {g⊕f : g ∈ f2} contains three
// pairwise disjoint masks, which holds exactly when f = 〈g1 g2 g3〉 for
// some g1,g2,g3 ∈ f2 (at each truth-table bit at most one operand may
// disagree with the majority value). scratch must hold 65536 entries.
func hasThreeDisjoint(f2 []uint32, f uint32, scratch []bool) bool {
	const size = 1 << 16
	for i := range scratch {
		scratch[i] = false
	}
	xs := make([]uint32, len(f2))
	for i, g := range f2 {
		xs[i] = g ^ f
		scratch[xs[i]] = true
	}
	// anySubset[m]: some x ∈ X with x ⊆ m (subset-OR dynamic program).
	for b := uint32(1); b < size; b <<= 1 {
		for m := uint32(0); m < size; m++ {
			if m&b != 0 && scratch[m^b] {
				scratch[m] = true
			}
		}
	}
	// Scanning small masks first finds disjoint triples quickly for the
	// depth-3 classes; only the genuinely depth-4 classes pay a full scan.
	sort.Slice(xs, func(i, j int) bool { return bits.OnesCount32(xs[i]) < bits.OnesCount32(xs[j]) })
	for i, x1 := range xs {
		for _, x2 := range xs[i:] {
			if x1&x2 != 0 {
				continue
			}
			if scratch[^(x1|x2)&0xFFFF] {
				return true
			}
		}
	}
	return false
}

// dropVar removes non-support variable i from a 4-variable function,
// returning the 3-variable equivalent.
func dropVar(f tt.TT, i int) tt.TT {
	return f.SwapVars(i, 3).Shrink(3)
}

func maxInt8(a, b int8) int8 {
	if a > b {
		return a
	}
	return b
}
