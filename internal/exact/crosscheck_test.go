package exact_test

import (
	"context"
	"sync"
	"testing"

	"mighash/internal/db"
	"mighash/internal/exact"
	"mighash/internal/npn"
	"mighash/internal/tt"
)

// TestMinimumMatchesDatabaseFor3Vars cross-validates the live exact-
// synthesis engine against the embedded database on every NPN class of
// 3-variable functions: a 3-variable function embeds into 4 variables
// without changing its minimum MIG, so the two optima must agree. This
// catches regressions in either the encoding or the artifact.
func TestMinimumMatchesDatabaseFor3Vars(t *testing.T) {
	d, err := db.Load()
	if err != nil {
		t.Fatalf("embedded database: %v", err)
	}
	var wg sync.WaitGroup
	for _, rep := range npn.Classes(3) {
		rep := rep
		wg.Add(1)
		go func() {
			defer wg.Done()
			m, err := exact.Minimum(context.Background(), rep, exact.Options{})
			if err != nil {
				t.Errorf("class %v: %v", rep, err)
				return
			}
			if want := d.Size(rep.Expand(4)); m.Size() != want {
				t.Errorf("class %v: live synthesis %d gates, database %d", rep, m.Size(), want)
			}
			if got := m.Simulate()[0]; got != rep {
				t.Errorf("class %v: synthesized %v", rep, got)
			}
		}()
	}
	wg.Wait()
}

// TestMinimumMatchesDatabaseSample spot-checks random 4-variable
// functions the same way (full 222-class regeneration lives in cmd/migdb).
func TestMinimumMatchesDatabaseSample(t *testing.T) {
	d, err := db.Load()
	if err != nil {
		t.Fatalf("embedded database: %v", err)
	}
	// Fixed sample biased to cheap classes: exhaustive ≤4-gate ladder.
	samples := []uint64{0x0000, 0x00ff, 0x0f0f, 0xcafe, 0x1234, 0xfedc, 0x0660}
	for _, bits := range samples {
		f := tt.New(4, bits)
		want := d.Size(f)
		if want > 4 {
			continue // keep the test fast; big classes covered elsewhere
		}
		m, err := exact.Minimum(context.Background(), f, exact.Options{})
		if err != nil {
			t.Fatalf("f=%v: %v", f, err)
		}
		if m.Size() != want {
			t.Errorf("f=%v: live synthesis %d gates, database %d", f, m.Size(), want)
		}
	}
}
