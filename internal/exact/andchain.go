package exact

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mighash/internal/aig"
	"mighash/internal/sat"
	"mighash/internal/tt"
)

// Exact synthesis of minimum And-Inverter Graphs, the same decision-ladder
// construction as the MIG encoding of Sec. III but with two-input AND
// semantics. It powers the MIG-vs-AIG compactness comparison (the paper's
// premise that majority logic never loses against AND logic, Sec. I) and
// doubles as a second client of the CDCL solver.
//
// Encoding differences from the MIG case: two select slots per gate with
// strict ordering, no constant operand (a minimal AND chain never feeds a
// gate a constant), free edge polarities (NOR-style gates are required),
// and the usual all-gates-used pruning.

// AndUpperBound bounds the AND-chain size of any n-variable function via
// Shannon expansion: A(n+1) ≤ 2·A(n) + 3 with A(1) = 0.
func AndUpperBound(n int) int {
	ub := 0
	for i := 1; i < n; i++ {
		ub = 2*ub + 3
	}
	return ub
}

// aigEncoding is the CNF instance of one (f, k) AND-chain decision.
type aigEncoding struct {
	f      tt.TT
	n, k   int
	solver *sat.Solver

	sel    [][2][]int // sel[l][c][i]: slot c of gate l selects option i
	pol    [][2]int
	b      [][]int
	a      [][2][]int
	outNeg int
}

// option index i: 0..n-1 are inputs x1..xn, n+j is gate j (0-based).

func newAIGEncoding(f tt.TT, k int, opt Options) *aigEncoding {
	n := f.N
	e := &aigEncoding{f: f, n: n, k: k, solver: sat.New()}
	s := e.solver
	if opt.MaxConflicts > 0 {
		s.MaxConflict = opt.MaxConflicts
	}
	if opt.Timeout > 0 {
		s.Deadline = time.Now().Add(opt.Timeout)
	}
	nj := 1 << uint(n)

	e.sel = make([][2][]int, k)
	e.pol = make([][2]int, k)
	e.b = make([][]int, k)
	e.a = make([][2][]int, k)
	for l := 0; l < k; l++ {
		domain := n + l
		for c := 0; c < 2; c++ {
			e.sel[l][c] = make([]int, domain)
			for i := range e.sel[l][c] {
				e.sel[l][c][i] = s.NewVar()
			}
			e.pol[l][c] = s.NewVar()
			e.a[l][c] = make([]int, nj)
			for j := range e.a[l][c] {
				e.a[l][c][j] = s.NewVar()
			}
		}
		e.b[l] = make([]int, nj)
		for j := range e.b[l] {
			e.b[l][j] = s.NewVar()
		}
	}
	e.outNeg = s.NewVar()

	for l := 0; l < k; l++ {
		domain := n + l
		for c := 0; c < 2; c++ {
			s.ExactlyOne(lits(e.sel[l][c])...)
		}
		// Strict operand ordering s1 < s2 (the AND is symmetric).
		for i1 := 0; i1 < domain; i1++ {
			for i2 := 0; i2 <= i1; i2++ {
				s.AddClause(sat.NegLit(e.sel[l][0][i1]), sat.NegLit(e.sel[l][1][i2]))
			}
		}
		for j := 0; j < nj; j++ {
			// AND semantics: b ↔ a1 ∧ a2.
			bv := sat.PosLit(e.b[l][j])
			a1 := sat.PosLit(e.a[l][0][j])
			a2 := sat.PosLit(e.a[l][1][j])
			s.AddClause(a1.Not(), a2.Not(), bv)
			s.AddClause(a1, bv.Not())
			s.AddClause(a2, bv.Not())
			for c := 0; c < 2; c++ {
				av := sat.PosLit(e.a[l][c][j])
				pv := sat.PosLit(e.pol[l][c])
				for v := 0; v < e.n; v++ {
					guard := sat.PosLit(e.sel[l][c][v])
					if j>>uint(v)&1 == 1 {
						s.EqualIf(guard, av, pv.Not())
					} else {
						s.EqualIf(guard, av, pv)
					}
				}
				for g := 0; g < l; g++ {
					guard := sat.PosLit(e.sel[l][c][e.n+g])
					s.XorEqualIf(guard, av, sat.PosLit(e.b[g][j]), pv)
				}
			}
		}
	}
	for j := 0; j < nj; j++ {
		bv := sat.PosLit(e.b[k-1][j])
		ov := sat.PosLit(e.outNeg)
		if e.f.Eval(uint(j)) {
			s.AddClause(ov, bv)
			s.AddClause(ov.Not(), bv.Not())
		} else {
			s.AddClause(ov, bv.Not())
			s.AddClause(ov.Not(), bv)
		}
	}
	if !opt.NoExtraPruning {
		// Every non-root gate feeds a later gate.
		for g := 0; g < k-1; g++ {
			var use []sat.Lit
			for l := g + 1; l < k; l++ {
				for c := 0; c < 2; c++ {
					use = append(use, sat.PosLit(e.sel[l][c][e.n+g]))
				}
			}
			s.AddClause(use...)
		}
		// Every support variable is referenced somewhere.
		for v := 0; v < e.n; v++ {
			if !e.f.DependsOn(v) {
				continue
			}
			var use []sat.Lit
			for l := 0; l < k; l++ {
				for c := 0; c < 2; c++ {
					use = append(use, sat.PosLit(e.sel[l][c][v]))
				}
			}
			s.AddClause(use...)
		}
	}
	return e
}

// extract reads the model into an AIG.
func (e *aigEncoding) extract() *aig.AIG {
	s := e.solver
	a := aig.New(e.n)
	gate := make([]aig.Lit, e.k)
	for l := 0; l < e.k; l++ {
		var ch [2]aig.Lit
		for c := 0; c < 2; c++ {
			choice := -1
			for i, v := range e.sel[l][c] {
				if s.Value(v) {
					choice = i
					break
				}
			}
			if choice < 0 {
				panic("exact: AND-chain model has no selected child")
			}
			var base aig.Lit
			if choice < e.n {
				base = a.Input(choice)
			} else {
				base = gate[choice-e.n]
			}
			ch[c] = base.NotIf(s.Value(e.pol[l][c]))
		}
		gate[l] = a.And(ch[0], ch[1])
	}
	a.AddOutput(gate[e.k-1].NotIf(s.Value(e.outNeg)))
	return a
}

// trivialAIG handles k = 0: constants and literals.
func trivialAIG(f tt.TT) (*aig.AIG, bool) {
	a := aig.New(f.N)
	switch {
	case f.IsConst0():
		a.AddOutput(aig.Const0)
		return a, true
	case f.IsConst1():
		a.AddOutput(aig.Const1)
		return a, true
	}
	for i := 0; i < f.N; i++ {
		if f == tt.Var(f.N, i) {
			a.AddOutput(a.Input(i))
			return a, true
		}
		if f == tt.Var(f.N, i).Not() {
			a.AddOutput(a.Input(i).Not())
			return a, true
		}
	}
	return nil, false
}

// DecideAIG determines whether an AND chain with exactly k gates computes
// f.
func DecideAIG(f tt.TT, k int, opt Options) (sat.Status, *aig.AIG) {
	if k == 0 {
		if a, ok := trivialAIG(f); ok {
			return sat.Sat, a
		}
		return sat.Unsat, nil
	}
	e := newAIGEncoding(f, k, opt)
	st := e.solver.Solve()
	if st != sat.Sat {
		return st, nil
	}
	a := e.extract()
	if got := a.Simulate()[0]; got != f {
		panic(fmt.Sprintf("exact: extracted AIG computes %v, want %v", got, f))
	}
	return sat.Sat, a
}

// MinimumAIG synthesizes a minimum-size AIG for f by the decision ladder,
// cube-and-conquering steps with k ≥ 7 when workers allows.
func MinimumAIG(f tt.TT, opt Options, workers int) (*aig.AIG, error) {
	maxGates := opt.MaxGates
	if maxGates == 0 {
		maxGates = AndUpperBound(f.N)
	}
	var deadline time.Time
	if opt.Timeout > 0 {
		deadline = time.Now().Add(opt.Timeout)
	}
	for k := 0; k <= maxGates; k++ {
		stepOpt := opt
		if !deadline.IsZero() {
			remaining := time.Until(deadline)
			if remaining <= 0 {
				return nil, fmt.Errorf("exact: timeout while proving k ≥ %d for %v", k, f)
			}
			stepOpt.Timeout = remaining
		}
		var (
			st sat.Status
			a  *aig.AIG
		)
		if workers > 1 && k >= 7 {
			st, a = decideAIGSplit(f, k, stepOpt, workers)
		} else {
			st, a = DecideAIG(f, k, stepOpt)
		}
		switch st {
		case sat.Sat:
			return a, nil
		case sat.Unknown:
			return nil, errBudget(f, k)
		}
	}
	return nil, errBound(f, maxGates)
}

// decideAIGSplit partitions on the root gate's operand pair.
func decideAIGSplit(f tt.TT, k int, opt Options, workers int) (sat.Status, *aig.AIG) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	n := f.N
	domain := n + k - 1
	type cube struct{ a, b int }
	var cubes []cube
	for a := 0; a < domain; a++ {
		for b := a + 1; b < domain; b++ {
			cubes = append(cubes, cube{a, b})
		}
	}
	var (
		wg      sync.WaitGroup
		next    int64 = -1
		found   atomic.Bool
		unknown atomic.Bool
		model   *aig.AIG
		mu      sync.Mutex
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if found.Load() {
					return
				}
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(cubes) {
					return
				}
				cu := cubes[i]
				e := newAIGEncoding(f, k, opt)
				root := k - 1
				ok := e.solver.AddClause(sat.PosLit(e.sel[root][0][cu.a])) &&
					e.solver.AddClause(sat.PosLit(e.sel[root][1][cu.b]))
				if !ok {
					continue
				}
				switch e.solver.Solve() {
				case sat.Sat:
					m := e.extract()
					mu.Lock()
					if model == nil {
						model = m
					}
					mu.Unlock()
					found.Store(true)
					return
				case sat.Unknown:
					unknown.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	switch {
	case model != nil:
		return sat.Sat, model
	case unknown.Load():
		return sat.Unknown, nil
	default:
		return sat.Unsat, nil
	}
}
