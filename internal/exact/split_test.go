package exact

import (
	"context"
	"testing"

	"mighash/internal/sat"
	"mighash/internal/tt"
)

// TestDecideSplitAgreesWithDecide compares the cube-and-conquer decision
// against the monolithic solver on both satisfiable and unsatisfiable
// ladder steps.
func TestDecideSplitAgreesWithDecide(t *testing.T) {
	cases := []struct {
		bits uint64
		k    int
	}{
		{0x0001, 2}, // AND4-like class: C = 3, so k = 2 is UNSAT
		{0x0001, 3}, // and k = 3 is SAT
		{0x0096, 3},
		{0x0096, 4},
		{0x6996, 5}, // parity: around its optimum
	}
	for _, c := range cases {
		f := tt.New(4, c.bits)
		want, _ := Decide(context.Background(), f, c.k, Options{})
		got, m := DecideSplit(context.Background(), f, c.k, Options{}, 8)
		if got != want {
			t.Errorf("f=%v k=%d: split says %v, monolithic says %v", f, c.k, got, want)
		}
		if got == sat.Sat {
			if m == nil {
				t.Fatalf("f=%v k=%d: SAT without model", f, c.k)
			}
			if sim := m.Simulate()[0]; sim != f {
				t.Errorf("f=%v k=%d: model computes %v", f, c.k, sim)
			}
			if m.Size() > c.k {
				t.Errorf("f=%v k=%d: model has %d gates", f, c.k, m.Size())
			}
		}
	}
}

// TestMinimumParallelMatchesMinimum checks that the parallel ladder finds
// the same optimum sizes.
func TestMinimumParallelMatchesMinimum(t *testing.T) {
	for _, bits := range []uint64{0x0001, 0x0116, 0x0696, 0x1ee1} {
		f := tt.New(4, bits)
		seq, err := Minimum(context.Background(), f, Options{})
		if err != nil {
			t.Fatal(err)
		}
		par, err := MinimumParallel(context.Background(), f, Options{}, 8, 3)
		if err != nil {
			t.Fatal(err)
		}
		if seq.Size() != par.Size() {
			t.Errorf("f=%v: sequential %d gates, parallel %d", f, seq.Size(), par.Size())
		}
		if sim := par.Simulate()[0]; sim != f {
			t.Errorf("f=%v: parallel result computes %v", f, sim)
		}
	}
}
