package exact

import (
	"math/bits"
	"runtime"
	"sync"

	"mighash/internal/tt"
)

// Minimum expression length (the L(f) column of Table II).
//
// L(f) counts the operators of the smallest majority *expression* — an MIG
// without sharing, i.e. a tree with complement edges. Because a minimal
// tree of cost ℓ is a root over minimal subtrees whose costs sum to ℓ−1,
// L is computable by a breadth-first dynamic program over truth tables:
// frontier F_ℓ collects the functions first reached at cost ℓ, and level
// ℓ combines all cost partitions ℓ1+ℓ2+ℓ3 = ℓ−1. Operand complementation
// is absorbed by keeping every frontier complement-closed (a complemented
// root edge is free, so L(¬f) = L(f)).

// MinLengths returns L(f) for every function over n variables (n ≤ 4),
// indexed by truth-table value.
func MinLengths(n int) []int8 {
	if n < 0 || n > 4 {
		panic("exact: MinLengths supports up to 4 variables")
	}
	size := 1 << (1 << uint(n))
	mask := uint32(tt.Mask(n))
	cost := make([]int8, size)
	for i := range cost {
		cost[i] = -1
	}
	var frontiers [][]uint32
	level0 := []uint32{0, mask}
	for i := 0; i < n; i++ {
		v := uint32(tt.Var(n, i).Bits)
		level0 = append(level0, v, ^v&mask)
	}
	for _, v := range level0 {
		cost[v] = 0
	}
	frontiers = append(frontiers, dedup(level0))

	remaining := size - len(frontiers[0])
	for l := 1; remaining > 0; l++ {
		var found []uint32
		// All unordered cost partitions c1 ≤ c2 ≤ c3 with sum l-1.
		for c1 := 0; 3*c1 <= l-1; c1++ {
			for c2 := c1; c1+2*c2 <= l-1; c2++ {
				c3 := l - 1 - c1 - c2
				if c3 < c2 {
					continue
				}
				found = append(found, combineLevel(frontiers, cost, c1, c2, c3)...)
			}
		}
		frontier := make([]uint32, 0, len(found))
		for _, v := range found {
			if cost[v] == -1 {
				cost[v] = int8(l)
				frontier = append(frontier, v)
			}
		}
		remaining -= len(frontier)
		frontiers = append(frontiers, frontier)
		if l > 32 {
			panic("exact: expression-length DP failed to converge")
		}
	}
	return cost
}

// combineLevel enumerates maj(a,b,c) for a ∈ F_{c1}, b ∈ F_{c2}, c ∈ F_{c3}
// and returns the results not yet assigned a cost. The outer loop is
// sharded across CPUs; each worker collects hits in a private bitset so
// the shared cost array is only read.
func combineLevel(frontiers [][]uint32, cost []int8, c1, c2, c3 int) []uint32 {
	fa, fb, fc := frontiers[c1], frontiers[c2], frontiers[c3]
	if len(fa) == 0 || len(fb) == 0 || len(fc) == 0 {
		return nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(fa) {
		workers = len(fa)
	}
	hits := make([][]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := make([]uint64, (len(cost)+63)/64)
			for ia := w; ia < len(fa); ia += workers {
				a := fa[ia]
				jb0 := 0
				if c2 == c1 {
					jb0 = ia // same frontier: combinations, not permutations
				}
				for jb := jb0; jb < len(fb); jb++ {
					b := fb[jb]
					ab := a & b
					xab := a ^ b
					kc0 := 0
					if c3 == c2 {
						kc0 = jb
					}
					for _, c := range fc[kc0:] {
						r := ab | c&xab
						if cost[r] == -1 {
							local[r>>6] |= 1 << (r & 63)
						}
					}
				}
			}
			hits[w] = local
		}(w)
	}
	wg.Wait()
	words := (len(cost) + 63) / 64
	merged := make([]uint64, words)
	for _, local := range hits {
		for i, v := range local {
			merged[i] |= v
		}
	}
	var out []uint32
	for wi, v := range merged {
		for v != 0 {
			out = append(out, uint32(wi*64)+uint32(bits.TrailingZeros64(v)))
			v &= v - 1
		}
	}
	return out
}

func dedup(in []uint32) []uint32 {
	seen := map[uint32]bool{}
	var out []uint32
	for _, v := range in {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}
