package exact

import (
	"testing"

	"mighash/internal/npn"
	"mighash/internal/tt"
)

func TestMinDepthsTwoVars(t *testing.T) {
	d := MinDepths(2)
	check := func(f tt.TT, want int8, name string) {
		if got := d[f.Bits]; got != want {
			t.Errorf("D(%s) = %d, want %d", name, got, want)
		}
	}
	check(tt.Const0(2), 0, "const0")
	check(tt.Const1(2), 0, "const1")
	check(tt.Var(2, 0), 0, "x")
	check(tt.Var(2, 1).Not(), 0, "~y")
	check(tt.Var(2, 0).And(tt.Var(2, 1)), 1, "and")
	check(tt.Var(2, 0).Or(tt.Var(2, 1)), 1, "or")
	check(tt.Var(2, 0).Xor(tt.Var(2, 1)), 2, "xor")
}

func TestMinDepthsThreeVars(t *testing.T) {
	d := MinDepths(3)
	x, y, z := tt.Var(3, 0), tt.Var(3, 1), tt.Var(3, 2)
	if got := d[tt.Maj(x, y, z).Bits]; got != 1 {
		t.Errorf("D(maj3) = %d, want 1", got)
	}
	// The full-adder sum shows XOR3 is reachable at depth 2 (Fig. 1).
	if got := d[x.Xor(y).Xor(z).Bits]; got != 2 {
		t.Errorf("D(xor3) = %d, want 2", got)
	}
	if got := d[x.And(y).And(z).Bits]; got != 2 {
		t.Errorf("D(and3) = %d, want 2", got)
	}
	for v, dep := range d {
		if dep < 0 {
			t.Fatalf("function %02x has no depth", v)
		}
	}
}

// TestMinDepths4TableII reproduces the D(f) columns of Table II:
// classes 2/2/48/169/1 and functions 10/80/10260/55184/2 at depths 0..4.
func TestMinDepths4TableII(t *testing.T) {
	if testing.Short() {
		t.Skip("depth-4 analysis takes a few seconds")
	}
	d := MinDepths(4)
	funcCount := map[int8]int{}
	classes := map[int8]map[uint64]bool{}
	for v, dep := range d {
		if dep < 0 {
			t.Fatalf("function %04x has no depth", v)
		}
		funcCount[dep]++
		if classes[dep] == nil {
			classes[dep] = map[uint64]bool{}
		}
		classes[dep][npn.ClassOf4(tt.New(4, uint64(v))).Bits] = true
	}
	wantFuncs := map[int8]int{0: 10, 1: 80, 2: 10260, 3: 55184, 4: 2}
	wantClasses := map[int8]int{0: 2, 1: 2, 2: 48, 3: 169, 4: 1}
	for dep, want := range wantFuncs {
		if got := funcCount[dep]; got != want {
			t.Errorf("functions at depth %d: %d, want %d (Table II)", dep, got, want)
		}
	}
	for dep, want := range wantClasses {
		if got := len(classes[dep]); got != want {
			t.Errorf("classes at depth %d: %d, want %d (Table II)", dep, got, want)
		}
	}
	// The single deepest class is the parity function S_{1,3} ≡ S_{0,2,4}.
	parity := tt.Var(4, 0).Xor(tt.Var(4, 1)).Xor(tt.Var(4, 2)).Xor(tt.Var(4, 3))
	if got := d[parity.Bits]; got != 4 {
		t.Errorf("D(parity4) = %d, want 4", got)
	}
}

func TestMinLengthsTwoVars(t *testing.T) {
	l := MinLengths(2)
	if got := l[tt.Var(2, 0).And(tt.Var(2, 1)).Bits]; got != 1 {
		t.Errorf("L(and) = %d, want 1", got)
	}
	if got := l[tt.Var(2, 0).Xor(tt.Var(2, 1)).Bits]; got != 3 {
		t.Errorf("L(xor) = %d, want 3", got)
	}
	if got := l[tt.Const1(2).Bits]; got != 0 {
		t.Errorf("L(const) = %d, want 0", got)
	}
}

func TestMinLengthsThreeVarsComplete(t *testing.T) {
	l := MinLengths(3)
	for v, c := range l {
		if c < 0 {
			t.Fatalf("function %02x has no expression length", v)
		}
	}
	// L is invariant under complement (free output edge).
	for v := 0; v < 256; v++ {
		if l[v] != l[^uint32(v)&0xFF] {
			t.Fatalf("L not complement-invariant at %02x", v)
		}
	}
	// L ≥ C: a tree is a DAG. Check against single-gate functions.
	x, y, z := tt.Var(3, 0), tt.Var(3, 1), tt.Var(3, 2)
	if got := l[tt.Maj(x, y, z).Bits]; got != 1 {
		t.Errorf("L(maj3) = %d, want 1", got)
	}
	// XOR3 as a tree: 〈c̄out cin 〈a b c̄in〉〉 duplicates the carry, so the
	// expression needs 4 operators even though the DAG needs 3.
	if got := l[x.Xor(y).Xor(z).Bits]; got <= 2 {
		t.Errorf("L(xor3) = %d, suspiciously small", got)
	}
}

// TestMinLengths4TableII reproduces the L(f) columns of Table II.
func TestMinLengths4TableII(t *testing.T) {
	if testing.Short() {
		t.Skip("expression-length DP over 4 variables is expensive")
	}
	l := MinLengths(4)
	funcCount := map[int8]int{}
	classes := map[int8]map[uint64]bool{}
	for v, c := range l {
		if c < 0 {
			t.Fatalf("function %04x unreached", v)
		}
		funcCount[c]++
		if classes[c] == nil {
			classes[c] = map[uint64]bool{}
		}
		classes[c][npn.ClassOf4(tt.New(4, uint64(v))).Bits] = true
	}
	wantFuncs := map[int8]int{0: 10, 1: 80, 2: 640, 3: 3300, 4: 9312, 5: 28680, 6: 22568, 7: 832, 8: 80, 9: 34}
	wantClasses := map[int8]int{0: 2, 1: 2, 2: 5, 3: 18, 4: 37, 5: 84, 6: 63, 7: 7, 8: 2, 9: 2}
	for c, want := range wantFuncs {
		if got := funcCount[c]; got != want {
			t.Errorf("functions at L=%d: %d, want %d (Table II)", c, got, want)
		}
	}
	for c, want := range wantClasses {
		if got := len(classes[c]); got != want {
			t.Errorf("classes at L=%d: %d, want %d (Table II)", c, got, want)
		}
	}
}
