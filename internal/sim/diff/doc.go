// Package diff is the differential verification harness: it checks that
// an optimization pass preserved its graph's function by word-parallel
// simulation, cheaply enough to run after every pass of every pipeline in
// ordinary CI rather than on a smoke subset.
//
// A Check is refute-only — simulation can prove two graphs different but
// never identical — so the harness is the first rung of the verification
// ladder, with SAT (mig.Equivalent) as the proof rung for final results.
// What makes refute-only checking trustworthy in practice is volume and
// guidance: every pass of every iteration is swept over thousands of
// deterministic patterns, the pattern pool replays every counterexample
// ever found first, and the harness self-calibrates (Harness.Mutate)
// by verifying it refutes deliberately broken graphs.
//
// A Harness is safe for concurrent use across batch jobs: its counters
// are atomic and each call owns its scratch. Determinism: with a fixed
// Options.Seed the sweep is bit-identical across runs, platforms and
// worker counts.
package diff
