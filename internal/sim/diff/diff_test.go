package diff_test

import (
	"strings"
	"testing"

	"mighash/internal/circuits"
	"mighash/internal/engine"
	"mighash/internal/mig"
	"mighash/internal/sim/diff"
)

func adder() *mig.MIG {
	spec, _ := circuits.ByName("Adder")
	return spec.Build()
}

func TestCheckPassesOnEquivalent(t *testing.T) {
	h := diff.New(diff.Options{})
	m := adder()
	if err := h.Check(m, m.Clone()); err != nil {
		t.Fatalf("clone refuted: %v", err)
	}
	st := h.Stats()
	if st.Checks != 1 || st.Failures != 0 {
		t.Fatalf("stats = %+v, want 1 check, 0 failures", st)
	}
	if st.Patterns < diff.DefaultPatterns {
		t.Fatalf("swept %d patterns, want >= %d", st.Patterns, diff.DefaultPatterns)
	}
}

func TestCheckRefutesMutant(t *testing.T) {
	h := diff.New(diff.Options{})
	m := adder()
	err := h.Check(m, diff.Mutant(m, 3))
	if err == nil {
		t.Fatal("ground-truth mutant not refuted")
	}
	if st := h.Stats(); st.Failures != 1 {
		t.Fatalf("stats = %+v, want 1 failure", st)
	}
}

func TestMutantGroundTruth(t *testing.T) {
	// The XOR mutant must be inequivalent by construction; prove it with
	// the full SAT ladder rather than trusting simulation.
	m := adder()
	for k := 0; k < 4; k++ {
		eq, _, err := mig.Equivalent(m, diff.Mutant(m, k), 0)
		if err != nil {
			t.Fatal(err)
		}
		if eq {
			t.Fatalf("Mutant(%d) is equivalent to its source", k)
		}
	}
}

func TestCalibrate(t *testing.T) {
	for _, spec := range circuits.All() {
		h := diff.New(diff.Options{})
		m := spec.Build()
		const n = 8
		if got := h.Calibrate(m, n); got != n {
			t.Errorf("%s: refuted %d/%d ground-truth mutants", spec.Name, got, n)
		}
	}
}

func TestPassCheckNamesThePass(t *testing.T) {
	h := diff.New(diff.Options{})
	m := adder()
	err := h.PassCheck("rewrite", 2, m, diff.Mutant(m, 0))
	if err == nil {
		t.Fatal("mutant not refuted")
	}
	if !strings.Contains(err.Error(), "rewrite") || !strings.Contains(err.Error(), "iteration 2") {
		t.Fatalf("error does not identify the pass: %v", err)
	}
}

// TestHarnessVerifiesEveryPreset is the differential harness end to end:
// every preset pipeline over a suite circuit, every pass of every
// iteration re-checked against its input graph.
func TestHarnessVerifiesEveryPreset(t *testing.T) {
	m := adder()
	for _, preset := range []string{"resyn", "size", "depth", "quick", "resyn5", "size5"} {
		h := diff.New(diff.Options{})
		p, err := engine.Preset(preset)
		if err != nil {
			t.Fatal(err)
		}
		p.PassCheck = h.PassCheck
		if _, _, err := p.Run(m); err != nil {
			t.Fatalf("preset %s failed differential verification: %v", preset, err)
		}
		st := h.Stats()
		if st.Checks == 0 {
			t.Fatalf("preset %s: PassCheck hook never invoked", preset)
		}
		if st.Failures != 0 {
			t.Fatalf("preset %s: %d passes refuted", preset, st.Failures)
		}
	}
}

// TestPassCheckAbortsPipeline wires a hook that always fails and checks
// the engine aborts rather than shipping an unverified result.
func TestPassCheckAbortsPipeline(t *testing.T) {
	p, err := engine.Preset("quick")
	if err != nil {
		t.Fatal(err)
	}
	h := diff.New(diff.Options{})
	p.PassCheck = func(pass string, it int, before, after *mig.MIG) error {
		return h.PassCheck(pass, it, before, diff.Mutant(before, 0))
	}
	if _, _, err := p.Run(adder()); err == nil {
		t.Fatal("pipeline completed despite failing verification")
	}
}
