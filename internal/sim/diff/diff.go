package diff

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mighash/internal/mig"
	"mighash/internal/sim"
)

// DefaultPatterns is the per-check sweep budget. Per-pass checks run at
// pipeline volume (every pass × every iteration × every job), so the
// default is half the SAT prefilter's: still thousands of guided
// patterns, still microseconds per gate.
const DefaultPatterns = 1024

// Options tunes a Harness.
type Options struct {
	// Patterns per check, rounded up to a multiple of 64. Zero means
	// DefaultPatterns.
	Patterns int
	// Seed makes the random pattern tail reproducible; harnesses with the
	// same seed perform bit-identical sweeps.
	Seed uint64
}

// Stats is a snapshot of a harness's counters.
type Stats struct {
	// Checks is the number of graph pairs compared.
	Checks int64 `json:"checks"`
	// Patterns is the total number of input patterns simulated (each
	// evaluates both sides of its pair).
	Patterns int64 `json:"patterns"`
	// Failures is how many checks refuted equivalence.
	Failures int64 `json:"failures"`
	// Elapsed is the wall-clock time spent inside checks, summed across
	// concurrent callers (it can exceed real time on a busy batch).
	Elapsed time.Duration `json:"elapsed_ns"`
}

// PatternsPerSecond is the sweep throughput: patterns simulated per
// second of in-check wall clock.
func (s Stats) PatternsPerSecond() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Patterns) / s.Elapsed.Seconds()
}

// Harness runs differential simulation checks and accumulates their
// statistics and counterexamples. One harness is meant to cover a whole
// batch run: pools are shared per input width, so a counterexample found
// verifying one job sharpens every later check of every other job. All
// methods are safe for concurrent use.
type Harness struct {
	opt Options

	mu    sync.Mutex
	pools map[int]*sim.Pool

	checks   atomic.Int64
	patterns atomic.Int64
	failures atomic.Int64
	elapsed  atomic.Int64 // ns
}

// New returns a harness with the given options.
func New(opt Options) *Harness {
	if opt.Patterns <= 0 {
		opt.Patterns = DefaultPatterns
	}
	return &Harness{opt: opt, pools: make(map[int]*sim.Pool)}
}

// pool returns the shared pattern pool for circuits with n inputs.
func (h *Harness) pool(n int) *sim.Pool {
	h.mu.Lock()
	defer h.mu.Unlock()
	p, ok := h.pools[n]
	if !ok {
		p = sim.NewPool(n, h.opt.Seed)
		h.pools[n] = p
	}
	return p
}

// Check compares before and after by word-parallel simulation. It
// returns nil when no pattern tells them apart and an error carrying the
// counterexample otherwise; the counterexample is also recorded in the
// width's pool for every later check. Refute-only: a nil error is
// evidence, not proof.
func (h *Harness) Check(before, after *mig.MIG) error {
	start := time.Now()
	eq, ce, st, err := mig.EquivalentOpt(before, after, mig.EquivOptions{
		SimPatterns: h.opt.Patterns,
		Pool:        h.pool(before.NumPIs()),
		NoSAT:       true,
	})
	h.checks.Add(1)
	h.patterns.Add(int64(st.SimPatterns))
	h.elapsed.Add(int64(time.Since(start)))
	if err != nil {
		h.failures.Add(1)
		return err
	}
	if !eq {
		h.failures.Add(1)
		return fmt.Errorf("diff: graphs disagree: %v", ce)
	}
	return nil
}

// PassCheck is Check in the shape of the engine's per-pass verification
// hook (Pipeline.PassCheck): install it to re-check every executed pass
// of every iteration against its input graph. An error aborts that
// pipeline run and names the offending pass.
func (h *Harness) PassCheck(pass string, iteration int, before, after *mig.MIG) error {
	if err := h.Check(before, after); err != nil {
		return fmt.Errorf("pass %s (iteration %d) is not function-preserving: %w", pass, iteration, err)
	}
	return nil
}

// Stats snapshots the harness counters.
func (h *Harness) Stats() Stats {
	return Stats{
		Checks:   h.checks.Load(),
		Patterns: h.patterns.Load(),
		Failures: h.failures.Load(),
		Elapsed:  time.Duration(h.elapsed.Load()),
	}
}

// Mutant returns a copy of m with primary output k%NumPOs XOR-ed with
// primary input k%NumPIs. The mutant provably differs from m on exactly
// the assignments setting that input, making it a ground-truth
// inequivalent specimen for calibrating refutation (no mutation that
// merely perturbs a gate guarantees inequivalence — majority axioms can
// cancel it).
func Mutant(m *mig.MIG, k int) *mig.MIG {
	if m.NumPIs() == 0 || m.NumPOs() == 0 {
		panic("diff: Mutant needs at least one input and one output")
	}
	c := m.Clone()
	j := k % c.NumPOs()
	c.SetOutput(j, c.Xor(c.Output(j), c.Input(k%c.NumPIs())))
	return c
}

// Calibrate checks that the harness refutes n ground-truth-inequivalent
// mutants of m, returning how many it caught. A shortfall means the
// pattern budget is too small for this circuit — the self-test that
// keeps "every pass verified, zero failures" from being vacuous.
func (h *Harness) Calibrate(m *mig.MIG, n int) (refuted int) {
	for k := 0; k < n; k++ {
		if h.Check(m, Mutant(m, k)) != nil {
			refuted++
		}
	}
	return refuted
}
