package sim

import (
	"fmt"
	"sync"
)

// Pool generates the deterministic input patterns of a simulation sweep
// and accumulates the counterexamples that sharpen it. Every Fill lays
// out the same ladder:
//
//	pattern 0            all inputs 0
//	pattern 1            all inputs 1
//	next len(ces)        recorded counterexamples, oldest first
//	next NumPIs          walking one-hot (input i set, rest clear)
//	next NumPIs          walking one-cold (input i clear, rest set)
//	remainder            splitmix64 pseudo-random, seeded per (seed, input, word)
//
// Structural patterns that do not fit the batch are dropped from the
// back, so the constant and counterexample patterns always survive.
// The random tail of word w of input i depends only on (seed, i, w) —
// growing the batch keeps every earlier pattern bit-identical.
//
// A Pool is safe for concurrent use. Add records an input assignment —
// typically the model of a SAT counterexample — so every later Fill
// replays it first (counterexample-guided: an input that once
// distinguished two graphs is the cheapest probe against the next pair).
type Pool struct {
	n    int
	seed uint64

	mu  sync.Mutex
	ces [][]bool
}

// NewPool returns a pattern pool for circuits with numPIs inputs. Two
// pools with the same seed generate identical patterns.
func NewPool(numPIs int, seed uint64) *Pool {
	if numPIs < 0 {
		panic("sim: negative input count")
	}
	return &Pool{n: numPIs, seed: seed}
}

// NumPIs returns the input count the pool generates patterns for.
func (p *Pool) NumPIs() int { return p.n }

// Add records a counterexample assignment for every later Fill. The
// slice is copied. Assignments of the wrong width are rejected (an
// interface mismatch would silently desynchronize the pattern ladder).
func (p *Pool) Add(assignment []bool) {
	if len(assignment) != p.n {
		panic(fmt.Sprintf("sim: counterexample over %d inputs added to a %d-input pool", len(assignment), p.n))
	}
	p.mu.Lock()
	p.ces = append(p.ces, append([]bool(nil), assignment...))
	p.mu.Unlock()
}

// Counterexamples returns how many assignments have been recorded.
func (p *Pool) Counterexamples() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.ces)
}

// Fill writes NumPIs·w pattern words in Run's layout (input i occupies
// words [i·w, (i+1)·w)). See the type comment for the pattern ladder.
func (p *Pool) Fill(words []uint64, w int) {
	if len(words) != p.n*w {
		panic(fmt.Sprintf("sim: Fill needs %d words (%d PIs × %d), got %d", p.n*w, p.n, w, len(words)))
	}
	// Random base layer: every word gets its own splitmix64 output so the
	// pattern stream is position-stable under batch growth.
	for i := 0; i < p.n; i++ {
		row := words[i*w : (i+1)*w]
		for k := range row {
			row[k] = splitmix64(p.seed ^ mix(uint64(i), uint64(k)))
		}
	}
	patterns := 64 * w
	set := func(q, input int, v bool) {
		word, bit := q/64, uint(q%64)
		if v {
			words[input*w+word] |= 1 << bit
		} else {
			words[input*w+word] &^= 1 << bit
		}
	}
	q := 0
	stamp := func(f func(input int) bool) bool {
		if q >= patterns {
			return false
		}
		for i := 0; i < p.n; i++ {
			set(q, i, f(i))
		}
		q++
		return true
	}
	stamp(func(int) bool { return false })
	stamp(func(int) bool { return true })
	p.mu.Lock()
	ces := p.ces
	p.mu.Unlock()
	for _, ce := range ces {
		if !stamp(func(i int) bool { return ce[i] }) {
			return
		}
	}
	for hot := 0; hot < p.n; hot++ {
		if !stamp(func(i int) bool { return i == hot }) {
			return
		}
	}
	for cold := 0; cold < p.n; cold++ {
		if !stamp(func(i int) bool { return i != cold }) {
			return
		}
	}
}

// splitmix64 is the SplitMix64 output function: a bijective avalanche
// mixer whose successive seeds yield statistically independent words.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// mix folds an (input, word) coordinate into one seed offset.
func mix(i, k uint64) uint64 {
	return splitmix64(i*0x9E3779B97F4A7C15 + k + 1)
}
