package sim_test

import (
	"math/rand"
	"testing"

	"mighash/internal/circuits"
	"mighash/internal/mig"
	"mighash/internal/sim"
)

// evalScalar is the single-pattern reference evaluator the word-parallel
// engine is checked against.
func evalScalar(c *sim.Circuit, asn []bool) []bool {
	vals := make([]bool, c.NumNodes())
	copy(vals[1:], asn)
	at := func(l sim.Lit) bool { return vals[l.ID()] != l.Comp() }
	for gi, f := range c.Fanin {
		a, b, cc := at(f[0]), at(f[1]), at(f[2])
		vals[1+c.NumPIs+gi] = (a && b) || (cc && (a || b))
	}
	out := make([]bool, len(c.Outputs))
	for i, o := range c.Outputs {
		out[i] = at(o)
	}
	return out
}

// randomMIG builds a random MIG with n inputs, g gate attempts and p
// outputs. Strashing and the majority axioms may dedupe attempts, so the
// result has at most g gates.
func randomMIG(rng *rand.Rand, n, g, p int) *mig.MIG {
	m := mig.New(n)
	lits := []mig.Lit{mig.Const0}
	for i := 0; i < n; i++ {
		lits = append(lits, m.Input(i))
	}
	pick := func() mig.Lit {
		l := lits[rng.Intn(len(lits))]
		if rng.Intn(2) == 1 {
			l = l.Not()
		}
		return l
	}
	for i := 0; i < g; i++ {
		lits = append(lits, m.Maj(pick(), pick(), pick()))
	}
	for i := 0; i < p; i++ {
		m.AddOutput(pick())
	}
	return m
}

// TestRunMatchesScalar cross-checks the word-parallel sweep against the
// scalar reference on random graphs, pattern by pattern — this also pins
// the MIG→Circuit compiler, since the patterns replay through mig.EvalBits.
func TestRunMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ws := sim.NewWorkspace()
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(8)
		m := randomMIG(rng, n, 1+rng.Intn(40), 1+rng.Intn(4))
		c := m.SimCircuit()
		if err := c.Validate(); err != nil {
			t.Fatalf("compiled circuit invalid: %v", err)
		}
		const w = 3
		inputs := ws.Inputs(n, w)
		pool := sim.NewPool(n, uint64(trial))
		pool.Fill(inputs, w)
		out := ws.Outputs(c.NumPOs(), w)
		c.Run(ws, inputs, w, out)
		for q := 0; q < 64*w; q++ {
			asn := sim.Assignment(inputs, w, n, q)
			want := evalScalar(c, asn)
			mwant := m.EvalBits(asn)
			for o := range want {
				got := out[o*w+q/64]>>(uint(q)%64)&1 == 1
				if got != want[o] || got != mwant[o] {
					t.Fatalf("trial %d pattern %d output %d: words=%v scalar=%v mig=%v",
						trial, q, o, got, want[o], mwant[o])
				}
			}
		}
	}
}

func TestRunZeroAllocSteadyState(t *testing.T) {
	m := randomMIG(rand.New(rand.NewSource(2)), 6, 100, 3)
	c := m.SimCircuit()
	ws := sim.NewWorkspace()
	const w = 8
	pool := sim.NewPool(c.NumPIs, 42)
	inputs := ws.Inputs(c.NumPIs, w)
	out := ws.Outputs(c.NumPOs(), w)
	pool.Fill(inputs, w)
	c.Run(ws, inputs, w, out) // size the buffers
	allocs := testing.AllocsPerRun(100, func() {
		pool.Fill(inputs, w)
		c.Run(ws, inputs, w, out)
	})
	if allocs != 0 {
		t.Fatalf("steady-state sweep allocates %.1f objects/op, want 0", allocs)
	}
}

func TestPoolDeterministicAndStructural(t *testing.T) {
	const n, w = 5, 4
	a := make([]uint64, n*w)
	b := make([]uint64, n*w)
	sim.NewPool(n, 7).Fill(a, w)
	sim.NewPool(n, 7).Fill(b, w)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different patterns at word %d", i)
		}
	}
	sim.NewPool(n, 8).Fill(b, w)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical pattern batches")
	}
	// Pattern 0 is all-zero, pattern 1 all-ones.
	for i := 0; i < n; i++ {
		if asn := sim.Assignment(a, w, n, 0); asn[i] {
			t.Fatalf("pattern 0 sets input %d", i)
		}
		if asn := sim.Assignment(a, w, n, 1); !asn[i] {
			t.Fatalf("pattern 1 clears input %d", i)
		}
	}
	// Walking one-hot block starts right after the counterexamples (none).
	for hot := 0; hot < n; hot++ {
		asn := sim.Assignment(a, w, n, 2+hot)
		for i := 0; i < n; i++ {
			if asn[i] != (i == hot) {
				t.Fatalf("one-hot pattern %d wrong at input %d: %v", hot, i, asn)
			}
		}
	}
}

func TestPoolCounterexamplesReplayFirst(t *testing.T) {
	const n, w = 4, 2
	p := sim.NewPool(n, 3)
	ce := []bool{true, false, true, true}
	p.Add(ce)
	if p.Counterexamples() != 1 {
		t.Fatalf("Counterexamples() = %d, want 1", p.Counterexamples())
	}
	words := make([]uint64, n*w)
	p.Fill(words, w)
	if asn := sim.Assignment(words, w, n, 2); !equalBools(asn, ce) {
		t.Fatalf("pattern 2 = %v, want recorded counterexample %v", asn, ce)
	}
	// Growing the batch keeps earlier patterns stable.
	big := make([]uint64, n*2*w)
	p.Fill(big, 2*w)
	for q := 0; q < 64*w; q++ {
		if !equalBools(sim.Assignment(words, w, n, q), sim.Assignment(big, 2*w, n, q)) {
			t.Fatalf("pattern %d changed when the batch grew", q)
		}
	}
}

func equalBools(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestDiffAndAssignment(t *testing.T) {
	// Two one-output batches differing first at pattern 65 (word 1 bit 1)
	// and also on output 2 at the same pattern.
	const w = 2
	a := make([]uint64, 3*w)
	b := make([]uint64, 3*w)
	b[1] = 1 << 1          // output 0, word 1, bit 1 -> pattern 65
	b[2*w+1] = 1<<1 | 1<<5 // output 2 differs at patterns 65 and 69
	q, o, ok := sim.Diff(a, b, w)
	if !ok || q != 65 || o != 0 {
		t.Fatalf("Diff = (%d, %d, %v), want (65, 0, true)", q, o, ok)
	}
	outs := sim.DiffOutputs(a, b, w, 65)
	if len(outs) != 2 || outs[0] != 0 || outs[1] != 2 {
		t.Fatalf("DiffOutputs = %v, want [0 2]", outs)
	}
	if _, _, ok := sim.Diff(a, a, w); ok {
		t.Fatal("Diff reports a difference between identical batches")
	}
}

func TestValidate(t *testing.T) {
	bad := &sim.Circuit{NumPIs: 1, Fanin: [][3]sim.Lit{{sim.MakeLit(5, false), 0, 0}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("Validate accepted a forward reference")
	}
	badOut := &sim.Circuit{NumPIs: 1, Outputs: []sim.Lit{sim.MakeLit(9, true)}}
	if err := badOut.Validate(); err == nil {
		t.Fatal("Validate accepted an out-of-range output")
	}
	for _, spec := range circuits.All() {
		if spec.Name != "Sine" {
			continue
		}
		if err := spec.Build().SimCircuit().Validate(); err != nil {
			t.Fatalf("%s compiles to an invalid circuit: %v", spec.Name, err)
		}
	}
}
