package sim

import (
	"fmt"
	"math/bits"
)

// Lit is a signal of a flattened circuit: a node ID with a complement bit
// in the lowest position — the same encoding as mig.Lit, so compiling an
// MIG is a straight copy.
type Lit uint32

// MakeLit returns the literal for node id, complemented if comp is set.
func MakeLit(id uint32, comp bool) Lit {
	l := Lit(id) << 1
	if comp {
		l |= 1
	}
	return l
}

// ID returns the node the literal points to.
func (l Lit) ID() uint32 { return uint32(l >> 1) }

// Comp reports whether the literal is complemented.
func (l Lit) Comp() bool { return l&1 == 1 }

// Circuit is a flattened majority netlist ready for word-parallel
// evaluation. Node 0 is the constant-0 terminal, nodes 1..NumPIs are the
// primary inputs, and gate i of Fanin is node NumPIs+1+i; fanins always
// point at lower node IDs (topological order), which is what lets Run
// evaluate in one ascending sweep. A Circuit is immutable after
// construction and safe for concurrent use.
type Circuit struct {
	NumPIs  int
	Fanin   [][3]Lit
	Outputs []Lit
}

// NumNodes returns the node count including the constant and the inputs.
func (c *Circuit) NumNodes() int { return 1 + c.NumPIs + len(c.Fanin) }

// NumPOs returns the number of primary outputs.
func (c *Circuit) NumPOs() int { return len(c.Outputs) }

// Validate checks the topological-order and range invariants Run relies
// on. Compiled circuits (mig.MIG.SimCircuit) hold them by construction;
// hand-built ones should be validated once before simulation.
func (c *Circuit) Validate() error {
	for i, f := range c.Fanin {
		this := uint32(1 + c.NumPIs + i)
		for _, l := range f {
			if l.ID() >= this {
				return fmt.Errorf("sim: gate %d reads node %d (not topologically ordered)", this, l.ID())
			}
		}
	}
	n := uint32(c.NumNodes())
	for _, o := range c.Outputs {
		if o.ID() >= n {
			return fmt.Errorf("sim: output reads nonexistent node %d", o.ID())
		}
	}
	return nil
}

// Workspace holds the reusable simulation buffers of one goroutine. The
// value arrays grow to the largest circuit·batch seen and are reused, so
// steady-state sweeps are allocation-free (pinned by test). A Workspace
// must not be shared by two goroutines at once.
type Workspace struct {
	vals []uint64 // one W-word row per node
	in   []uint64 // reusable input-pattern buffer for callers
	out  []uint64 // reusable output buffer for callers
}

// NewWorkspace returns an empty workspace; buffers are sized on first use.
func NewWorkspace() *Workspace { return &Workspace{} }

// Inputs returns the workspace's input buffer sized for numPIs·w words.
// The contents are unspecified; fill it (Pool.Fill) before Run.
func (ws *Workspace) Inputs(numPIs, w int) []uint64 {
	ws.in = grow(ws.in, numPIs*w)
	return ws.in
}

// Outputs returns the workspace's output buffer sized for numPOs·w words.
func (ws *Workspace) Outputs(numPOs, w int) []uint64 {
	ws.out = grow(ws.out, numPOs*w)
	return ws.out
}

func grow(buf []uint64, n int) []uint64 {
	if cap(buf) < n {
		return make([]uint64, n)
	}
	return buf[:n]
}

// Run evaluates the circuit bit-parallel over a batch of 64·w input
// patterns. inputs holds NumPIs·w pattern words — input i occupies words
// [i·w, (i+1)·w), with pattern q at bit q%64 of word q/64 of each row —
// and out receives NumPOs·w words in the same layout. out may come from
// Workspace.Outputs; inputs and out must not alias.
func (c *Circuit) Run(ws *Workspace, inputs []uint64, w int, out []uint64) {
	if w <= 0 {
		panic(fmt.Sprintf("sim: batch of %d words", w))
	}
	if len(inputs) != c.NumPIs*w {
		panic(fmt.Sprintf("sim: need %d input words (%d PIs × %d), got %d", c.NumPIs*w, c.NumPIs, w, len(inputs)))
	}
	if len(out) != len(c.Outputs)*w {
		panic(fmt.Sprintf("sim: need %d output words (%d POs × %d), got %d", len(c.Outputs)*w, len(c.Outputs), w, len(out)))
	}
	vals := grow(ws.vals, c.NumNodes()*w)
	ws.vals = vals
	// Node 0 is constant zero; clearing only its row keeps begin cost
	// independent of history.
	clear(vals[:w])
	copy(vals[w:(1+c.NumPIs)*w], inputs)
	for gi, f := range c.Fanin {
		// One XOR with an all-ones/all-zero mask realizes the complement
		// branch-free; majority is four word operations.
		ma := -uint64(f[0] & 1)
		mb := -uint64(f[1] & 1)
		mc := -uint64(f[2] & 1)
		av := vals[int(f[0]>>1)*w:]
		bv := vals[int(f[1]>>1)*w:]
		cv := vals[int(f[2]>>1)*w:]
		dst := vals[(1+c.NumPIs+gi)*w:]
		for k := 0; k < w; k++ {
			a := av[k] ^ ma
			b := bv[k] ^ mb
			cc := cv[k] ^ mc
			dst[k] = a&b | cc&(a|b)
		}
	}
	for oi, o := range c.Outputs {
		m := -uint64(o & 1)
		src := vals[int(o>>1)*w:]
		dst := out[oi*w:]
		for k := 0; k < w; k++ {
			dst[k] = src[k] ^ m
		}
	}
}

// Diff compares two output batches of the same shape (numPOs·w words,
// Run's layout) and returns the index of the first differing pattern and
// the index of the first output differing on it. ok is false when the
// batches agree on every pattern.
func Diff(a, b []uint64, w int) (pattern, output int, ok bool) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("sim: Diff over mismatched batches (%d vs %d words)", len(a), len(b)))
	}
	numPOs := len(a) / w
	bestQ, bestO := -1, -1
	for o := 0; o < numPOs; o++ {
		for k := 0; k < w; k++ {
			if d := a[o*w+k] ^ b[o*w+k]; d != 0 {
				q := k*64 + bits.TrailingZeros64(d)
				if bestQ < 0 || q < bestQ {
					bestQ, bestO = q, o
				}
				break // later words of this output are later patterns
			}
		}
	}
	if bestQ < 0 {
		return 0, 0, false
	}
	return bestQ, bestO, true
}

// DiffOutputs returns every output index differing on pattern q, in order.
func DiffOutputs(a, b []uint64, w, q int) []int {
	numPOs := len(a) / w
	word, bit := q/64, uint(q%64)
	var outs []int
	for o := 0; o < numPOs; o++ {
		if (a[o*w+word]^b[o*w+word])>>bit&1 == 1 {
			outs = append(outs, o)
		}
	}
	return outs
}

// Assignment extracts pattern q of an input batch (numPIs·w words in
// Run's layout) as one bool per input.
func Assignment(inputs []uint64, w, numPIs, q int) []bool {
	word, bit := q/64, uint(q%64)
	asn := make([]bool, numPIs)
	for i := 0; i < numPIs; i++ {
		asn[i] = inputs[i*w+word]>>bit&1 == 1
	}
	return asn
}
