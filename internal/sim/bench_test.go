package sim_test

import (
	"testing"
	"time"

	"mighash/internal/circuits"
	"mighash/internal/mig"
	"mighash/internal/sim"
)

// sweepPatterns is the batch size the sweep benchmarks and the speedup
// gate share: mig.Equivalent's default prefilter budget.
const sweepPatterns = 2048

func benchCircuit(b testing.TB) *mig.MIG {
	spec, ok := circuits.ByName("Sine")
	if !ok {
		b.Fatal("suite circuit Sine missing")
	}
	return spec.Build()
}

// BenchmarkSimSweep measures the word-parallel engine sweeping the whole
// prefilter batch. Compare with BenchmarkSimSweepScalarEval: the ratio is
// the prefilter's speedup over evaluating one pattern at a time.
func BenchmarkSimSweep(b *testing.B) {
	m := benchCircuit(b)
	c := m.SimCircuit()
	ws := sim.NewWorkspace()
	const w = sweepPatterns / 64
	pool := sim.NewPool(c.NumPIs, 1)
	inputs := ws.Inputs(c.NumPIs, w)
	pool.Fill(inputs, w)
	out := ws.Outputs(c.NumPOs(), w)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Run(ws, inputs, w, out)
	}
	b.ReportMetric(float64(sweepPatterns)*float64(b.N)/b.Elapsed().Seconds(), "patterns/s")
}

// BenchmarkSimSweepScalarEval is the per-pattern baseline: the same batch
// evaluated one assignment at a time through mig.EvalBits, the way a
// check had to be done before the word-parallel engine existed.
func BenchmarkSimSweepScalarEval(b *testing.B) {
	m := benchCircuit(b)
	n := m.NumPIs()
	const w = sweepPatterns / 64
	inputs := make([]uint64, n*w)
	sim.NewPool(n, 1).Fill(inputs, w)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for q := 0; q < sweepPatterns; q++ {
			m.EvalBits(sim.Assignment(inputs, w, n, q))
		}
	}
	b.ReportMetric(float64(sweepPatterns)*float64(b.N)/b.Elapsed().Seconds(), "patterns/s")
}

// TestSimSweepSpeedup gates the tentpole's acceptance criterion: the
// word-parallel sweep must be at least 10× faster than per-pattern
// evaluation on a suite circuit. The expected ratio is well over 40×, so
// the 10× bar leaves a wide margin for noisy CI machines; the median of
// three trials smooths scheduler hiccups.
func TestSimSweepSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short mode")
	}
	m := benchCircuit(t)
	c := m.SimCircuit()
	ws := sim.NewWorkspace()
	n := c.NumPIs
	const w = sweepPatterns / 64
	inputs := ws.Inputs(n, w)
	sim.NewPool(n, 1).Fill(inputs, w)
	out := ws.Outputs(c.NumPOs(), w)
	c.Run(ws, inputs, w, out) // warm buffers

	median := func(f func()) time.Duration {
		var ds []time.Duration
		for i := 0; i < 3; i++ {
			start := time.Now()
			f()
			ds = append(ds, time.Since(start))
		}
		for i := range ds { // 3-element insertion sort
			for j := i; j > 0 && ds[j] < ds[j-1]; j-- {
				ds[j], ds[j-1] = ds[j-1], ds[j]
			}
		}
		return ds[1]
	}
	parallel := median(func() { c.Run(ws, inputs, w, out) })
	scalar := median(func() {
		for q := 0; q < sweepPatterns; q++ {
			m.EvalBits(sim.Assignment(inputs, w, n, q))
		}
	})
	ratio := float64(scalar) / float64(parallel)
	t.Logf("word-parallel %v vs scalar %v: %.1fx", parallel, scalar, ratio)
	if ratio < 10 {
		t.Errorf("word-parallel sweep only %.1fx faster than per-pattern eval, want >=10x", ratio)
	}
}
