// Package sim is the word-parallel simulation engine: it evaluates a
// whole majority-inverter netlist over 64 input patterns per uint64 word,
// and over multi-word batches for thousands of patterns per sweep. One
// majority gate costs four word operations (a&b | c&(a|b)) and one
// complemented edge costs one XOR with a precomputed mask, so a batch of
// 64·W patterns runs in roughly the time a scalar evaluator spends on a
// single pattern — the integer-factor speedup behind the verification
// ladder (simulate first, prove with SAT only what simulation cannot
// refute).
//
// The package is deliberately free of any dependency on internal/mig: it
// operates on a flattened Circuit (same literal encoding, node ID shifted
// left with a complement bit) that mig.MIG.SimCircuit compiles in one
// pass. That keeps the import direction mig → sim, so the equivalence
// checker in internal/mig can call the simulator without a cycle.
//
// Concurrency and determinism contract: a Circuit is immutable after
// construction and safe for concurrent use; a Workspace is the reusable
// scratch state of one goroutine (all simulation buffers grow to the
// largest circuit seen and are reused — steady-state sweeps allocate
// nothing) and must not be shared. Pattern generation (Pool) is
// deterministic in its seed: the same seed, input count and recorded
// counterexamples produce bit-identical pattern words on every run and
// platform, which is what makes simulation-based CI checks reproducible.
// A Pool is safe for concurrent use; recorded counterexamples
// (counterexample-guided refinement) take effect for every Fill that
// follows the Add.
package sim
