package sat

import (
	"context"
	"fmt"
	"sort"
	"time"
)

// Lit is a literal: variable index shifted left once, with the low bit set
// for negated literals.
type Lit uint32

// MkLit returns the literal of variable v, negated if neg is true.
func MkLit(v int, neg bool) Lit {
	l := Lit(v) << 1
	if neg {
		l |= 1
	}
	return l
}

// PosLit returns the positive literal of variable v.
func PosLit(v int) Lit { return Lit(v) << 1 }

// NegLit returns the negative literal of variable v.
func NegLit(v int) Lit { return Lit(v)<<1 | 1 }

// Var returns the variable index of l.
func (l Lit) Var() int { return int(l >> 1) }

// Sign reports whether l is negated.
func (l Lit) Sign() bool { return l&1 == 1 }

// Not returns the complement of l.
func (l Lit) Not() Lit { return l ^ 1 }

// String renders the literal in DIMACS-like form.
func (l Lit) String() string {
	if l.Sign() {
		return fmt.Sprintf("-%d", l.Var()+1)
	}
	return fmt.Sprintf("%d", l.Var()+1)
}

// Status is the result of a Solve call.
type Status int

// Solve outcomes.
const (
	Unknown Status = iota // budget exhausted before a decision was reached
	Sat                   // a satisfying assignment was found
	Unsat                 // the formula is unsatisfiable
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "SAT"
	case Unsat:
		return "UNSAT"
	default:
		return "UNKNOWN"
	}
}

const (
	lUndef int8 = 0
	lTrue  int8 = 1
	lFalse int8 = -1
)

type clause struct {
	lits    []Lit
	act     float64
	lbd     int32
	learnt  bool
	deleted bool
}

type watcher struct {
	cref    int32
	blocker Lit
}

// Stats collects solver counters, useful for the Table I runtime report.
type Stats struct {
	Conflicts    int64
	Decisions    int64
	Propagations int64
	Restarts     int64
	Learnt       int64
}

// Solver is a CDCL SAT solver. The zero value is not usable; create
// instances with New.
type Solver struct {
	clauses []clause
	watches [][]watcher

	assign  []int8  // current assignment per variable
	level   []int32 // decision level per assigned variable
	reason  []int32 // antecedent clause per assigned variable (-1 = decision)
	trail   []Lit
	trailLi []int // trail index delimiting each decision level
	qhead   int

	activity []float64
	varInc   float64
	polarity []bool // saved phases
	heap     *varHeap

	seen     []byte
	analyzeT []Lit // scratch for minimization

	ok          bool   // false once an empty clause is derived
	model       []int8 // assignment snapshot of the last Sat result
	firstLearnt int    // index of first learnt clause in clauses

	claInc      float64
	maxLearnts  float64
	lubyIdx     int64
	propBudget  int64
	MaxConflict int64           // conflict budget for a Solve call; <=0 means unlimited
	Deadline    time.Time       // wall-clock budget; zero means unlimited
	Ctx         context.Context // external cancellation; nil means none

	Stats Stats
}

// New returns an empty solver.
func New() *Solver {
	return &Solver{
		ok:          true,
		varInc:      1,
		claInc:      1,
		firstLearnt: -1,
		heap:        newVarHeap(),
	}
}

// NumVars returns the number of variables created so far.
func (s *Solver) NumVars() int { return len(s.assign) }

// NumClauses returns the number of problem (non-learnt) clauses.
func (s *Solver) NumClauses() int {
	n := 0
	for i := range s.clauses {
		if !s.clauses[i].learnt && !s.clauses[i].deleted {
			n++
		}
	}
	return n
}

// NewVar creates a fresh variable and returns its index.
func (s *Solver) NewVar() int {
	v := len(s.assign)
	s.assign = append(s.assign, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, -1)
	s.activity = append(s.activity, 0)
	s.polarity = append(s.polarity, true) // default phase: false (sign=true)
	s.seen = append(s.seen, 0)
	s.watches = append(s.watches, nil, nil)
	s.heap.insert(v, s.activity)
	return v
}

func (s *Solver) valueLit(l Lit) int8 {
	a := s.assign[l.Var()]
	if a == lUndef {
		return lUndef
	}
	if l.Sign() {
		return -a
	}
	return a
}

// Value returns the model value of variable v after a Sat result.
func (s *Solver) Value(v int) bool { return s.model[v] == lTrue }

// ValueLit returns the model value of literal l after a Sat result.
func (s *Solver) ValueLit(l Lit) bool {
	if l.Sign() {
		return s.model[l.Var()] == lFalse
	}
	return s.model[l.Var()] == lTrue
}

// AddClause adds a clause over the given literals. It returns false if the
// solver is already in an unsatisfiable state (now or as a result of this
// clause). Tautologies are silently dropped; duplicate literals are merged.
// Clauses may only be added at decision level 0 (i.e. between Solve calls).
func (s *Solver) AddClause(lits ...Lit) bool {
	if !s.ok {
		return false
	}
	s.cancelUntil(0) // a previous Solve may have left the model trail in place
	// Normalize: sort, remove duplicates, drop tautologies and literals
	// already false at level 0, succeed on literals already true.
	sort.Slice(lits, func(i, j int) bool { return lits[i] < lits[j] })
	out := lits[:0]
	var prev Lit = ^Lit(0)
	for _, l := range lits {
		if l == prev {
			continue
		}
		if prev != ^Lit(0) && l == prev.Not() {
			return true // tautology
		}
		switch s.valueLit(l) {
		case lTrue:
			return true // already satisfied
		case lFalse:
			prev = l
			continue // already falsified at level 0
		}
		out = append(out, l)
		prev = l
	}
	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		s.enqueue(out[0], -1)
		if s.propagate() != -1 {
			s.ok = false
			return false
		}
		return true
	}
	s.attachClause(s.pushClause(out, false))
	return true
}

func (s *Solver) pushClause(lits []Lit, learnt bool) int32 {
	c := clause{lits: append([]Lit(nil), lits...), learnt: learnt, act: s.claInc}
	cref := int32(len(s.clauses))
	s.clauses = append(s.clauses, c)
	if learnt {
		s.Stats.Learnt++
	}
	return cref
}

func (s *Solver) attachClause(cref int32) {
	c := &s.clauses[cref]
	s.watches[c.lits[0].Not()] = append(s.watches[c.lits[0].Not()], watcher{cref, c.lits[1]})
	s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], watcher{cref, c.lits[0]})
}

func (s *Solver) decisionLevel() int32 { return int32(len(s.trailLi)) }

func (s *Solver) enqueue(l Lit, from int32) {
	v := l.Var()
	if l.Sign() {
		s.assign[v] = lFalse
	} else {
		s.assign[v] = lTrue
	}
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

// propagate performs unit propagation and returns the reference of a
// conflicting clause, or -1 if no conflict arises.
func (s *Solver) propagate() int32 {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.Stats.Propagations++
		ws := s.watches[p]
		n := 0
	nextWatch:
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if s.valueLit(w.blocker) == lTrue {
				ws[n] = w
				n++
				continue
			}
			c := &s.clauses[w.cref]
			if c.deleted {
				continue
			}
			// Ensure the false literal is at position 1.
			if c.lits[0] == p.Not() {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			first := c.lits[0]
			if first != w.blocker && s.valueLit(first) == lTrue {
				ws[n] = watcher{w.cref, first}
				n++
				continue
			}
			// Look for a new literal to watch.
			for k := 2; k < len(c.lits); k++ {
				if s.valueLit(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], watcher{w.cref, first})
					continue nextWatch
				}
			}
			// Clause is unit or conflicting.
			ws[n] = w
			n++
			if s.valueLit(first) == lFalse {
				// Conflict: keep the remaining watchers and bail out.
				for i++; i < len(ws); i++ {
					ws[n] = ws[i]
					n++
				}
				s.watches[p] = ws[:n]
				s.qhead = len(s.trail)
				return w.cref
			}
			s.enqueue(first, w.cref)
		}
		s.watches[p] = ws[:n]
	}
	return -1
}

func (s *Solver) newDecisionLevel() { s.trailLi = append(s.trailLi, len(s.trail)) }

func (s *Solver) cancelUntil(lvl int32) {
	if s.decisionLevel() <= lvl {
		return
	}
	bound := s.trailLi[lvl]
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].Var()
		s.polarity[v] = s.trail[i].Sign()
		s.assign[v] = lUndef
		s.reason[v] = -1
		s.heap.insertIfAbsent(v, s.activity)
	}
	s.trail = s.trail[:bound]
	s.trailLi = s.trailLi[:lvl]
	s.qhead = len(s.trail)
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.heap.update(v, s.activity)
}

func (s *Solver) bumpClause(c *clause) {
	c.act += s.claInc
	if c.act > 1e20 {
		for i := range s.clauses {
			s.clauses[i].act *= 1e-20
		}
		s.claInc *= 1e-20
	}
}

// analyze performs first-UIP conflict analysis. It returns the learnt
// clause (asserting literal first) and the backtrack level.
func (s *Solver) analyze(confl int32) ([]Lit, int32) {
	learnt := []Lit{0} // reserve slot for the asserting literal
	counter := 0
	idx := len(s.trail) - 1
	var p Lit = ^Lit(0)

	for {
		c := &s.clauses[confl]
		if c.learnt {
			s.bumpClause(c)
		}
		start := 0
		if p != ^Lit(0) {
			start = 1
		}
		for _, q := range c.lits[start:] {
			v := q.Var()
			if s.seen[v] == 0 && s.level[v] > 0 {
				s.seen[v] = 1
				s.bumpVar(v)
				if s.level[v] >= s.decisionLevel() {
					counter++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		// Find the next literal of the current level on the trail.
		for s.seen[s.trail[idx].Var()] == 0 {
			idx--
		}
		p = s.trail[idx]
		idx--
		s.seen[p.Var()] = 0
		counter--
		if counter == 0 {
			break
		}
		confl = s.reason[p.Var()]
	}
	learnt[0] = p.Not()

	// Conflict-clause minimization: remove literals implied by the rest.
	s.analyzeT = s.analyzeT[:0]
	for _, l := range learnt[1:] {
		s.analyzeT = append(s.analyzeT, l)
		s.seen[l.Var()] = 1
	}
	j := 1
	for i := 1; i < len(learnt); i++ {
		if s.reason[learnt[i].Var()] == -1 || !s.litRedundant(learnt[i]) {
			learnt[j] = learnt[i]
			j++
		}
	}
	learnt = learnt[:j]
	for _, l := range s.analyzeT {
		s.seen[l.Var()] = 0
	}

	// Compute the backtrack level: the second-highest level in the clause.
	btLevel := int32(0)
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = s.level[learnt[1].Var()]
	}
	return learnt, btLevel
}

// litRedundant reports whether l is implied by the remaining learnt-clause
// literals, walking the implication graph (recursive minimization).
func (s *Solver) litRedundant(l Lit) bool {
	stack := []Lit{l}
	top := len(s.analyzeT)
	for len(stack) > 0 {
		v := stack[len(stack)-1].Var()
		stack = stack[:len(stack)-1]
		cref := s.reason[v]
		c := &s.clauses[cref]
		for _, q := range c.lits {
			qv := q.Var()
			if qv == v || s.seen[qv] != 0 || s.level[qv] == 0 {
				continue
			}
			if s.reason[qv] == -1 {
				// Decision variable not in the clause: l is not redundant;
				// undo the markings added during this check.
				for _, m := range s.analyzeT[top:] {
					s.seen[m.Var()] = 0
				}
				s.analyzeT = s.analyzeT[:top]
				return false
			}
			s.seen[qv] = 1
			s.analyzeT = append(s.analyzeT, q)
			stack = append(stack, q)
		}
	}
	return true
}

func (s *Solver) computeLBD(lits []Lit) int32 {
	levels := map[int32]struct{}{}
	for _, l := range lits {
		levels[s.level[l.Var()]] = struct{}{}
	}
	return int32(len(levels))
}

func (s *Solver) reduceDB() {
	// Collect learnt clauses that are not reasons for current assignments.
	locked := make(map[int32]bool)
	for _, l := range s.trail {
		if r := s.reason[l.Var()]; r >= 0 {
			locked[r] = true
		}
	}
	var learnts []int32
	for i := range s.clauses {
		c := &s.clauses[i]
		if c.learnt && !c.deleted && !locked[int32(i)] && len(c.lits) > 2 {
			learnts = append(learnts, int32(i))
		}
	}
	sort.Slice(learnts, func(a, b int) bool {
		ca, cb := &s.clauses[learnts[a]], &s.clauses[learnts[b]]
		if ca.lbd != cb.lbd {
			return ca.lbd > cb.lbd
		}
		return ca.act < cb.act
	})
	for _, cref := range learnts[:len(learnts)/2] {
		if s.clauses[cref].lbd <= 2 {
			continue
		}
		s.clauses[cref].deleted = true
	}
	// Purge deleted clauses from the watch lists.
	for li := range s.watches {
		ws := s.watches[li]
		n := 0
		for _, w := range ws {
			if !s.clauses[w.cref].deleted {
				ws[n] = w
				n++
			}
		}
		s.watches[li] = ws[:n]
	}
}

// luby returns the i-th element (0-based) of the Luby restart sequence
// 1, 1, 2, 1, 1, 2, 4, …
func luby(i int64) int64 {
	size, seq := int64(1), uint(0)
	for size < i+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != i {
		size = (size - 1) >> 1
		seq--
		i %= size
	}
	return 1 << seq
}

// Solve searches for a satisfying assignment under the given assumptions.
// It returns Sat, Unsat, or Unknown when the conflict or wall-clock budget
// is exhausted.
func (s *Solver) Solve(assumptions ...Lit) Status {
	if !s.ok {
		return Unsat
	}
	s.cancelUntil(0)
	if s.propagate() != -1 {
		s.ok = false
		return Unsat
	}
	s.maxLearnts = float64(len(s.clauses))/3 + 1000
	s.lubyIdx = 0
	conflictsAtStart := s.Stats.Conflicts

	for {
		budget := luby(s.lubyIdx) * 100
		s.lubyIdx++
		st := s.search(budget, assumptions)
		if st == Sat {
			s.model = append(s.model[:0], s.assign...)
			s.cancelUntil(0)
			return Sat
		}
		if st == Unsat {
			return Unsat
		}
		if s.MaxConflict > 0 && s.Stats.Conflicts-conflictsAtStart >= s.MaxConflict {
			s.cancelUntil(0)
			return Unknown
		}
		if !s.Deadline.IsZero() && time.Now().After(s.Deadline) {
			s.cancelUntil(0)
			return Unknown
		}
		if s.Ctx != nil && s.Ctx.Err() != nil {
			s.cancelUntil(0)
			return Unknown
		}
		s.Stats.Restarts++
	}
}

func (s *Solver) search(budget int64, assumptions []Lit) Status {
	conflicts := int64(0)
	for {
		confl := s.propagate()
		if confl != -1 {
			conflicts++
			s.Stats.Conflicts++
			if s.decisionLevel() == 0 {
				s.ok = false
				return Unsat
			}
			learnt, btLevel := s.analyze(confl)
			s.cancelUntil(btLevel)
			if len(learnt) == 1 {
				s.enqueue(learnt[0], -1)
			} else {
				cref := s.pushClause(learnt, true)
				s.clauses[cref].lbd = s.computeLBD(learnt)
				s.attachClause(cref)
				s.enqueue(learnt[0], cref)
			}
			s.varInc /= 0.95
			s.claInc /= 0.999
			if float64(s.countLearnts()) > s.maxLearnts {
				s.maxLearnts *= 1.3
				s.reduceDB()
			}
			continue
		}
		if conflicts >= budget {
			s.cancelUntil(0)
			return Unknown
		}
		// Poll external cancellation inside long search episodes too —
		// restart boundaries alone can be hundreds of thousands of
		// conflicts apart late in a run. Every 64 conflicts keeps the
		// mutex-guarded Err read off the propagation fast path.
		if s.Ctx != nil && conflicts&63 == 0 && conflicts > 0 && s.Ctx.Err() != nil {
			s.cancelUntil(0)
			return Unknown
		}
		// Place assumptions first, then decide.
		next := ^Lit(0)
		for int(s.decisionLevel()) < len(assumptions) {
			a := assumptions[s.decisionLevel()]
			switch s.valueLit(a) {
			case lTrue:
				s.newDecisionLevel() // already satisfied: dummy level
				continue
			case lFalse:
				return Unsat // conflicts with earlier assumptions/clauses
			}
			next = a
			break
		}
		if next == ^Lit(0) {
			v := s.pickBranchVar()
			if v == -1 {
				return Sat
			}
			next = MkLit(v, s.polarity[v])
			s.Stats.Decisions++
		}
		s.newDecisionLevel()
		s.enqueue(next, -1)
	}
}

func (s *Solver) countLearnts() int {
	n := 0
	for i := range s.clauses {
		if s.clauses[i].learnt && !s.clauses[i].deleted {
			n++
		}
	}
	return n
}

func (s *Solver) pickBranchVar() int {
	for {
		v := s.heap.pop(s.activity)
		if v == -1 {
			return -1
		}
		if s.assign[v] == lUndef {
			return v
		}
	}
}
