package sat

// varHeap is an indexed binary max-heap over variable activities, used for
// VSIDS branching. Activities live in the solver; the heap stores variable
// indices plus each variable's position for O(log n) updates.
type varHeap struct {
	data []int // heap of variable indices
	pos  []int // pos[v] = index of v in data, or -1
}

func newVarHeap() *varHeap { return &varHeap{} }

func (h *varHeap) grow(v int) {
	for len(h.pos) <= v {
		h.pos = append(h.pos, -1)
	}
}

func (h *varHeap) contains(v int) bool { return v < len(h.pos) && h.pos[v] >= 0 }

func (h *varHeap) insert(v int, act []float64) {
	h.grow(v)
	if h.pos[v] >= 0 {
		return
	}
	h.pos[v] = len(h.data)
	h.data = append(h.data, v)
	h.up(h.pos[v], act)
}

func (h *varHeap) insertIfAbsent(v int, act []float64) {
	if !h.contains(v) {
		h.insert(v, act)
	}
}

// update restores the heap property after v's activity increased.
func (h *varHeap) update(v int, act []float64) {
	if h.contains(v) {
		h.up(h.pos[v], act)
	}
}

// pop removes and returns the variable with the highest activity, or -1 if
// the heap is empty.
func (h *varHeap) pop(act []float64) int {
	if len(h.data) == 0 {
		return -1
	}
	top := h.data[0]
	last := h.data[len(h.data)-1]
	h.data = h.data[:len(h.data)-1]
	h.pos[top] = -1
	if len(h.data) > 0 {
		h.data[0] = last
		h.pos[last] = 0
		h.down(0, act)
	}
	return top
}

func (h *varHeap) up(i int, act []float64) {
	v := h.data[i]
	for i > 0 {
		parent := (i - 1) / 2
		pv := h.data[parent]
		if act[pv] >= act[v] {
			break
		}
		h.data[i] = pv
		h.pos[pv] = i
		i = parent
	}
	h.data[i] = v
	h.pos[v] = i
}

func (h *varHeap) down(i int, act []float64) {
	v := h.data[i]
	for {
		l := 2*i + 1
		if l >= len(h.data) {
			break
		}
		best := l
		if r := l + 1; r < len(h.data) && act[h.data[r]] > act[h.data[l]] {
			best = r
		}
		bv := h.data[best]
		if act[v] >= act[bv] {
			break
		}
		h.data[i] = bv
		h.pos[bv] = i
		i = best
	}
	h.data[i] = v
	h.pos[v] = i
}
