package sat

import (
	"math/rand"
	"testing"
)

func TestLitBasics(t *testing.T) {
	l := MkLit(3, false)
	if l.Var() != 3 || l.Sign() || l != PosLit(3) {
		t.Errorf("positive literal broken: %v", l)
	}
	n := l.Not()
	if n.Var() != 3 || !n.Sign() || n != NegLit(3) {
		t.Errorf("negation broken: %v", n)
	}
	if n.Not() != l {
		t.Error("double negation is not identity")
	}
	if l.String() != "4" || n.String() != "-4" {
		t.Errorf("String: %q %q", l.String(), n.String())
	}
}

func TestEmptyFormulaSat(t *testing.T) {
	s := New()
	if got := s.Solve(); got != Sat {
		t.Errorf("empty formula: %v", got)
	}
}

func TestSingleUnit(t *testing.T) {
	s := New()
	v := s.NewVar()
	s.AddClause(PosLit(v))
	if s.Solve() != Sat {
		t.Fatal("unit formula should be SAT")
	}
	if !s.Value(v) {
		t.Error("unit literal not satisfied")
	}
}

func TestContradictingUnits(t *testing.T) {
	s := New()
	v := s.NewVar()
	s.AddClause(PosLit(v))
	if ok := s.AddClause(NegLit(v)); ok {
		t.Error("adding contradicting unit should report failure")
	}
	if s.Solve() != Unsat {
		t.Error("contradicting units should be UNSAT")
	}
}

func TestTautologyDropped(t *testing.T) {
	s := New()
	v := s.NewVar()
	w := s.NewVar()
	s.AddClause(PosLit(v), NegLit(v), PosLit(w))
	if s.NumClauses() != 0 {
		t.Errorf("tautology retained: %d clauses", s.NumClauses())
	}
	if s.Solve() != Sat {
		t.Error("should be SAT")
	}
}

func TestSimpleImplicationChain(t *testing.T) {
	// x0 ∧ (x0→x1) ∧ (x1→x2) ∧ ... must force all true.
	s := New()
	const n = 50
	vars := make([]int, n)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	s.AddClause(PosLit(vars[0]))
	for i := 0; i+1 < n; i++ {
		s.Implies(PosLit(vars[i]), PosLit(vars[i+1]))
	}
	if s.Solve() != Sat {
		t.Fatal("chain should be SAT")
	}
	for i, v := range vars {
		if !s.Value(v) {
			t.Fatalf("variable %d not forced true", i)
		}
	}
}

func TestUnsatTriangle(t *testing.T) {
	// (a∨b)(¬a∨b)(a∨¬b)(¬a∨¬b) is UNSAT.
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(PosLit(a), PosLit(b))
	s.AddClause(NegLit(a), PosLit(b))
	s.AddClause(PosLit(a), NegLit(b))
	s.AddClause(NegLit(a), NegLit(b))
	if s.Solve() != Unsat {
		t.Error("should be UNSAT")
	}
}

// pigeonhole encodes PHP(holes+1, holes), which is unsatisfiable.
func pigeonhole(s *Solver, pigeons, holes int) {
	v := make([][]int, pigeons)
	for p := range v {
		v[p] = make([]int, holes)
		for h := range v[p] {
			v[p][h] = s.NewVar()
		}
	}
	for p := 0; p < pigeons; p++ {
		lits := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			lits[h] = PosLit(v[p][h])
		}
		s.AddClause(lits...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(NegLit(v[p1][h]), NegLit(v[p2][h]))
			}
		}
	}
}

func TestPigeonholeUnsat(t *testing.T) {
	for holes := 2; holes <= 6; holes++ {
		s := New()
		pigeonhole(s, holes+1, holes)
		if got := s.Solve(); got != Unsat {
			t.Errorf("PHP(%d,%d) = %v, want UNSAT", holes+1, holes, got)
		}
	}
}

func TestPigeonholeSat(t *testing.T) {
	s := New()
	pigeonhole(s, 5, 5) // equal pigeons and holes is satisfiable
	if got := s.Solve(); got != Sat {
		t.Errorf("PHP(5,5) = %v, want SAT", got)
	}
}

func TestAssumptions(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(PosLit(a), PosLit(b))
	if s.Solve(NegLit(a), NegLit(b)) != Unsat {
		t.Error("assumptions ¬a,¬b should make it UNSAT")
	}
	if s.Solve(NegLit(a)) != Sat {
		t.Fatal("assumption ¬a should be SAT")
	}
	if s.Value(a) || !s.Value(b) {
		t.Error("model violates assumption")
	}
	// The solver must remain usable and satisfiable without assumptions.
	if s.Solve() != Sat {
		t.Error("solver unusable after assumption UNSAT")
	}
}

func TestIncrementalAddBetweenSolves(t *testing.T) {
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(PosLit(a), PosLit(b))
	if s.Solve() != Sat {
		t.Fatal("phase 1 should be SAT")
	}
	s.AddClause(NegLit(a))
	s.AddClause(NegLit(b), PosLit(c))
	if s.Solve() != Sat {
		t.Fatal("phase 2 should be SAT")
	}
	if s.Value(a) || !s.Value(b) || !s.Value(c) {
		t.Error("phase 2 model wrong")
	}
	s.AddClause(NegLit(c))
	if s.Solve() != Unsat {
		t.Error("phase 3 should be UNSAT")
	}
}

func TestConflictBudget(t *testing.T) {
	s := New()
	pigeonhole(s, 9, 8) // hard enough to exceed a tiny budget
	s.MaxConflict = 5
	if got := s.Solve(); got != Unknown {
		t.Skipf("instance solved within 5 conflicts (%v); budget path untested", got)
	}
	s.MaxConflict = 0
	if got := s.Solve(); got != Unsat {
		t.Errorf("after lifting budget: %v, want UNSAT", got)
	}
}

// bruteForce decides satisfiability of a small CNF by enumeration.
func bruteForce(nVars int, cnf [][]Lit) bool {
	for m := 0; m < 1<<uint(nVars); m++ {
		ok := true
		for _, cl := range cnf {
			sat := false
			for _, l := range cl {
				val := (m>>uint(l.Var()))&1 == 1
				if val != l.Sign() {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func TestRandom3SATAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2016))
	for trial := 0; trial < 300; trial++ {
		nVars := 4 + rng.Intn(9) // 4..12 variables
		nCls := 2 + rng.Intn(nVars*5)
		cnf := make([][]Lit, nCls)
		for i := range cnf {
			k := 1 + rng.Intn(3)
			cl := make([]Lit, k)
			for j := range cl {
				cl[j] = MkLit(rng.Intn(nVars), rng.Intn(2) == 1)
			}
			cnf[i] = cl
		}
		s := New()
		for v := 0; v < nVars; v++ {
			s.NewVar()
		}
		for _, cl := range cnf {
			s.AddClause(cl...)
		}
		got := s.Solve()
		want := bruteForce(nVars, cnf)
		if (got == Sat) != want {
			t.Fatalf("trial %d: solver=%v bruteforce=%v cnf=%v", trial, got, want, cnf)
		}
		if got == Sat {
			// Verify the model actually satisfies every clause.
			for ci, cl := range cnf {
				sat := false
				for _, l := range cl {
					if s.ValueLit(l) {
						sat = true
						break
					}
				}
				if !sat {
					t.Fatalf("trial %d: model does not satisfy clause %d", trial, ci)
				}
			}
		}
	}
}

func TestEncodingHelpers(t *testing.T) {
	t.Run("ExactlyOne", func(t *testing.T) {
		s := New()
		lits := make([]Lit, 5)
		for i := range lits {
			lits[i] = PosLit(s.NewVar())
		}
		s.ExactlyOne(lits...)
		if s.Solve() != Sat {
			t.Fatal("exactly-one should be SAT")
		}
		count := 0
		for _, l := range lits {
			if s.ValueLit(l) {
				count++
			}
		}
		if count != 1 {
			t.Errorf("exactly-one model sets %d literals", count)
		}
		// Forcing two of them true must be UNSAT.
		if s.Solve(lits[0], lits[3]) != Unsat {
			t.Error("two true literals should violate exactly-one")
		}
	})
	t.Run("Majority", func(t *testing.T) {
		s := New()
		out, a, b, c := PosLit(s.NewVar()), PosLit(s.NewVar()), PosLit(s.NewVar()), PosLit(s.NewVar())
		s.Majority(out, a, b, c)
		for m := 0; m < 8; m++ {
			as := []Lit{a, b, c}
			for i := range as {
				if m>>uint(i)&1 == 0 {
					as[i] = as[i].Not()
				}
			}
			if s.Solve(as...) != Sat {
				t.Fatalf("majority inputs %03b should be consistent", m)
			}
			wantOut := m&3 == 3 || m&5 == 5 || m&6 == 6
			if s.ValueLit(out) != wantOut {
				t.Fatalf("majority(%03b) = %v, want %v", m, s.ValueLit(out), wantOut)
			}
		}
	})
	t.Run("XorEqualIf", func(t *testing.T) {
		s := New()
		g, a, b, c := PosLit(s.NewVar()), PosLit(s.NewVar()), PosLit(s.NewVar()), PosLit(s.NewVar())
		s.XorEqualIf(g, a, b, c)
		// With the guard asserted, a must equal b⊕c for all 4 (b,c) pairs.
		for m := 0; m < 4; m++ {
			bl, cl := b, c
			if m&1 == 0 {
				bl = bl.Not()
			}
			if m&2 == 0 {
				cl = cl.Not()
			}
			if s.Solve(g, bl, cl) != Sat {
				t.Fatal("guarded XOR inconsistent")
			}
			want := (m&1 == 1) != (m&2 == 2)
			if s.ValueLit(a) != want {
				t.Fatalf("xor(%02b): a=%v want %v", m, s.ValueLit(a), want)
			}
		}
		// With the guard false, a is unconstrained.
		if s.Solve(g.Not(), a, b, c) != Sat || s.Solve(g.Not(), a.Not(), b, c) != Sat {
			t.Error("guard=false should leave a free")
		}
	})
}

func TestStatsPopulated(t *testing.T) {
	s := New()
	pigeonhole(s, 6, 5)
	s.Solve()
	if s.Stats.Conflicts == 0 || s.Stats.Propagations == 0 {
		t.Errorf("stats not collected: %+v", s.Stats)
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i)); got != w {
			t.Errorf("luby(%d) = %d, want %d", i, got, w)
		}
	}
}

func BenchmarkPigeonhole87(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New()
		pigeonhole(s, 8, 7)
		if s.Solve() != Unsat {
			b.Fatal("PHP(8,7) must be UNSAT")
		}
	}
}
