// Package sat implements a conflict-driven clause-learning (CDCL) SAT
// solver in pure Go.
//
// The paper solves its exact-synthesis decision problems with the Z3 SMT
// solver. The constraints of Sec. III are finite-domain Boolean constraints,
// so they bit-blast directly to CNF; this package provides the solver for
// the resulting formulas. The design follows the classic MiniSat recipe:
// two-watched-literal propagation, first-UIP conflict analysis with
// recursive clause minimization, VSIDS variable activities with phase
// saving, Luby restarts, and activity/LBD-based learnt-clause deletion.
//
// Role in the functional-hashing flow: the solver is an offline substrate.
// It powers exact synthesis (internal/exact) when the minimum-MIG database
// is generated, and combinational equivalence checking (internal/mig's
// Equivalent) when optimized graphs are verified. It is never on the
// rewriting hot path.
//
// Concurrency contract: a Solver is single-goroutine — it mutates its
// clause database, trail and activity state on every call and performs no
// locking. Run concurrent SAT work by giving each goroutine its own
// Solver; distinct solvers share nothing.
package sat
