package sat

// Encoding helpers shared by the exact-synthesis CNF construction. All
// helpers add clauses to the solver and report the solver's health like
// AddClause does.

// AtMostOne adds pairwise at-most-one constraints over lits. The quadratic
// encoding is the right choice here: exact-synthesis select domains have at
// most n+k ≤ a dozen values.
func (s *Solver) AtMostOne(lits ...Lit) bool {
	ok := true
	for i := 0; i < len(lits); i++ {
		for j := i + 1; j < len(lits); j++ {
			ok = s.AddClause(lits[i].Not(), lits[j].Not()) && ok
		}
	}
	return ok
}

// ExactlyOne adds an exactly-one constraint over lits.
func (s *Solver) ExactlyOne(lits ...Lit) bool {
	ok := s.AddClause(lits...)
	return s.AtMostOne(lits...) && ok
}

// Implies adds the clause a → b.
func (s *Solver) Implies(a, b Lit) bool { return s.AddClause(a.Not(), b) }

// EqualIf adds guard → (a ↔ b): whenever guard holds, literals a and b take
// the same value.
func (s *Solver) EqualIf(guard, a, b Lit) bool {
	ok := s.AddClause(guard.Not(), a.Not(), b)
	return s.AddClause(guard.Not(), a, b.Not()) && ok
}

// XorEqualIf adds guard → (a ↔ b⊕c): the XOR-link clauses used to connect a
// gate input to a (possibly complemented) child output, Eq. (6)-(8) of the
// paper.
func (s *Solver) XorEqualIf(guard, a, b, c Lit) bool {
	ok := s.AddClause(guard.Not(), a.Not(), b, c)
	ok = s.AddClause(guard.Not(), a.Not(), b.Not(), c.Not()) && ok
	ok = s.AddClause(guard.Not(), a, b.Not(), c) && ok
	return s.AddClause(guard.Not(), a, b, c.Not()) && ok
}

// Majority adds out ↔ 〈a b c〉, the six ternary clauses of Eq. (4).
func (s *Solver) Majority(out, a, b, c Lit) bool {
	ok := s.AddClause(a.Not(), b.Not(), out)
	ok = s.AddClause(a.Not(), c.Not(), out) && ok
	ok = s.AddClause(b.Not(), c.Not(), out) && ok
	ok = s.AddClause(a, b, out.Not()) && ok
	ok = s.AddClause(a, c, out.Not()) && ok
	return s.AddClause(b, c, out.Not()) && ok
}
