// Package extract selects a globally best cover from a choice graph.
//
// The choice-aware rewriter (internal/rewrite with Options.Extract) does
// not commit replacements greedily; it records, per live gate, a menu of
// ways to implement that gate — keeping its original fanins, or
// instantiating one of the database candidates of one of its admissible
// cuts — and hands the menu to this package. Select then picks one
// choice per gate actually needed, minimizing a size or depth objective
// over the whole graph rather than cut by cut. This is the e-graph
// extraction problem specialized to the rewriter's setting: the classes
// are the gates of the input MIG, the enodes are the recorded (cut,
// candidate) pairs, and acyclicity is structural (every dependency has a
// strictly smaller node ID).
//
// Exact extraction over a DAG is NP-hard, so Select layers three
// deterministic passes: tree-cost estimates, a marginal-cost cover that
// prices already-needed dependencies at zero (the DAG-sharing baseline,
// iterated a few rounds against its own demand set), and an exact
// tree-DP over small fanout-free regions — where the choice graph is an
// in-tree and dynamic programming is optimal under fixed external
// prices. Every pass is a pure function of the graph, so the selection
// is bit-identical across runs and worker counts.
package extract

import (
	"cmp"
	"slices"

	"mighash/internal/mig"
)

// Objective selects what Select minimizes.
type Objective int

const (
	// Size minimizes the number of selected gates, breaking ties toward
	// lower output arrival. The default.
	Size Objective = iota
	// Depth minimizes the output arrival time, breaking ties toward
	// fewer gates. Arrival minimization is exact: the per-node optimal
	// arrivals are simultaneously achievable (an induction over the
	// topological order), so the cover realizes them.
	Depth
)

func (o Objective) String() string {
	if o == Depth {
		return "depth"
	}
	return "size"
}

// MaxDeps is the maximum dependencies a choice may carry: five cut
// leaves, or the three fanins of a kept gate.
const MaxDeps = 5

// Choice is one way to implement a node: pay Cost gates and require the
// first N entries of Deps to be implemented first. DepD[i] is the gate
// count of the longest path from the choice's output down to Deps[i]
// inside the choice's own structure, so a cover's arrival times fall out
// of the selection without consulting the original graph.
//
// Sig, when positive, is a duplicate-cone signature: choices with equal
// Sig build bit-identical structure (the same implementation over the
// same dependency literals), so a cover that selects two of them pays
// Cost once — the second instance merges into the first. This is where
// functional hashing beats a greedy walk: two structurally different
// cones computing NPN-equivalent functions over the same leaves look
// unrelated to structural hashing, but their menus share a signature,
// and the selector can fold both onto one implementation. Zero means
// the choice has no cross-node identity.
type Choice struct {
	Cost int32
	Ref  int32 // caller payload, returned through Selection.Pick indices
	Sig  int32
	N    uint8
	Deps [MaxDeps]mig.ID
	DepD [MaxDeps]int8
}

// Graph is a choice graph in flat arena form. Node v's choices are
// Arena[Off[v]:Off[v+1]]; nodes without choices (terminals — constants
// and inputs — plus dead gates) have an empty range. Every dependency of
// every choice must have a strictly smaller node ID than its owner, and
// every node reachable from Outputs through any combination of choices
// must either carry at least one choice or be a terminal.
type Graph struct {
	NumNodes int
	Off      []int32  // len NumNodes+1, ascending
	Arena    []Choice // all choices, grouped by node
	Outputs  []mig.ID // demand roots (duplicates are fine)
	// FFRRoot, when non-nil, maps every node to the root of its
	// fanout-free region in the original graph (roots map to
	// themselves). It enables the exact tree-DP refinement; nil skips
	// that pass.
	FFRRoot []mig.ID
}

// Choices returns node v's menu (aliases the arena).
func (g *Graph) Choices(v mig.ID) []Choice { return g.Arena[g.Off[v]:g.Off[v+1]] }

func (g *Graph) hasChoices(v mig.ID) bool { return g.Off[v] < g.Off[v+1] }

// Options tunes Select.
type Options struct {
	// Objective selects the size or depth objective (default Size).
	Objective Objective
	// Rounds iterates the marginal-cost cover against the previous
	// round's demand set (default 2; the best-scoring round wins).
	Rounds int
	// ExactFFRLimit caps the fanout-free-region size the exact tree-DP
	// refinement attempts, in choice-bearing nodes (0 selects the
	// default of 48; negative disables the pass).
	ExactFFRLimit int
}

func (o Options) withDefaults() Options {
	if o.Rounds <= 0 {
		o.Rounds = 2
	}
	if o.ExactFFRLimit == 0 {
		o.ExactFFRLimit = 48
	}
	if o.ExactFFRLimit < 0 {
		o.ExactFFRLimit = 0
	}
	return o
}

// Stats reports one extraction.
type Stats struct {
	Choices      int   // choices offered across all nodes
	Covered      int   // nodes the selected cover implements
	Replacements int   // covered nodes implemented by a database candidate
	Merged       int   // selected choices folded onto an equal-signature twin
	Gates        int64 // modelled gate count of the cover
	Arrival      int32 // modelled output arrival of the cover
	ExactRegions int   // fanout-free regions refined by the tree-DP
	ExactWins    int   // DP batches that beat the marginal cover
}

// Selection is Select's result: Pick[v] indexes node v's menu (as
// returned by Graph.Choices), or -1 when v is not needed by the cover
// (or is a terminal).
type Selection struct {
	Pick  []int32
	Stats Stats
}

// selector carries one Select invocation's scratch state.
type selector struct {
	g        *Graph
	opt      Options
	est      []int64 // tree-cost estimate per node (sharing ignored)
	arr      []int32 // optimal achievable arrival per node
	sigCount []int32 // offered choices per signature (index 0 unused)
}

// Select picks a cover of g under opt. It is deterministic: the same
// graph and options always yield the same selection.
func Select(g *Graph, opt Options) Selection {
	opt = opt.withDefaults()
	s := &selector{g: g, opt: opt}
	maxSig := int32(0)
	for i := range g.Arena {
		if sg := g.Arena[i].Sig; sg > maxSig {
			maxSig = sg
		}
	}
	s.sigCount = make([]int32, maxSig+1)
	for i := range g.Arena {
		if sg := g.Arena[i].Sig; sg > 0 {
			s.sigCount[sg]++
		}
	}
	s.estimate()

	pick, need := s.cover(nil)
	gates, arrival := s.score(pick, need)
	best, bestNeed := pick, need
	bestGates, bestArr := gates, arrival
	for round := 1; round < opt.Rounds; round++ {
		pick, need = s.cover(bestNeed)
		gates, arrival = s.score(pick, need)
		if !s.better(gates, arrival, bestGates, bestArr) {
			break
		}
		best, bestNeed, bestGates, bestArr = pick, need, gates, arrival
	}

	st := Stats{Gates: bestGates, Arrival: bestArr}
	for v := 0; v < g.NumNodes; v++ {
		st.Choices += int(g.Off[v+1] - g.Off[v])
	}
	if g.FFRRoot != nil && opt.ExactFFRLimit > 0 {
		if dp, dpNeed, regions := s.refineFFR(best, bestNeed); regions > 0 {
			st.ExactRegions = regions
			if dpGates, dpArr := s.score(dp, dpNeed); s.better(dpGates, dpArr, bestGates, bestArr) {
				best, bestGates, bestArr = dp, dpGates, dpArr
				st.ExactWins++
				st.Gates, st.Arrival = bestGates, bestArr
			}
		}
	}
	_, need = s.needOf(best)
	sigSeen := make([]bool, len(s.sigCount))
	for v := 0; v < g.NumNodes; v++ {
		if need[v] && g.hasChoices(mig.ID(v)) {
			st.Covered++
			c := &g.Arena[g.Off[v]+best[v]]
			if c.Ref >= 0 {
				st.Replacements++
			}
			if c.Sig > 0 {
				if sigSeen[c.Sig] {
					st.Merged++
				}
				sigSeen[c.Sig] = true
			}
		} else {
			best[v] = -1
		}
	}
	return Selection{Pick: best, Stats: st}
}

// better reports whether (gates, arr) beats (bGates, bArr) under the
// objective, strictly.
func (s *selector) better(gates int64, arr int32, bGates int64, bArr int32) bool {
	if s.opt.Objective == Depth {
		return arr < bArr || (arr == bArr && gates < bGates)
	}
	return gates < bGates || (gates == bGates && arr < bArr)
}

// estimate fills est (tree cost, sharing ignored — an admissible
// optimistic price for not-yet-needed dependencies) and arr (optimal
// achievable arrival) bottom-up.
func (s *selector) estimate() {
	g := s.g
	s.est = make([]int64, g.NumNodes)
	s.arr = make([]int32, g.NumNodes)
	for v := 0; v < g.NumNodes; v++ {
		choices := g.Choices(mig.ID(v))
		if len(choices) == 0 {
			continue // terminal: free, arrival 0
		}
		bestE := int64(1) << 60
		bestA := int32(1) << 30
		for i := range choices {
			c := &choices[i]
			e := int64(c.Cost)
			a := int32(0)
			for j := 0; j < int(c.N); j++ {
				d := c.Deps[j]
				e += s.est[d]
				if da := s.arr[d] + int32(c.DepD[j]); da > a {
					a = da
				}
			}
			if e < bestE {
				bestE = e
			}
			if a < bestA {
				bestA = a
			}
		}
		s.est[v], s.arr[v] = bestE, bestA
	}
}

// cover runs one marginal-cost sweep in descending node order: every
// choice-bearing node gets the pick minimizing the objective key at its
// turn, pricing dependencies already demanded — in this sweep, or in
// the previous round's cover when prevNeed is non-nil — at zero.
// Dependencies always have smaller IDs, so by the time a node is
// visited every demand on it from the cover above is known; only needed
// nodes propagate demand, but un-needed nodes are assigned a pick too,
// so a later refinement that redirects demand onto them finds a valid
// implementation.
func (s *selector) cover(prevNeed []bool) (pick []int32, need []bool) {
	g := s.g
	pick = make([]int32, g.NumNodes)
	need = make([]bool, g.NumNodes)
	sigTaken := make([]bool, len(s.sigCount))
	for i := range pick {
		pick[i] = -1
	}
	for _, o := range g.Outputs {
		need[o] = true
	}
	for v := g.NumNodes - 1; v >= 0; v-- {
		if !g.hasChoices(mig.ID(v)) {
			continue
		}
		choices := g.Choices(mig.ID(v))
		bestI := int32(0)
		bestM := int64(1) << 60
		bestA := int32(1) << 30
		bestC := int32(1 << 30)
		for i := range choices {
			c := &choices[i]
			marg := int64(c.Cost)
			// Duplicate-cone pricing: an implementation already selected
			// elsewhere merges structurally, so a second instance is free;
			// one still unselected but offered at n nodes is amortized
			// optimistically (the twin comparison and the round re-score
			// keep optimism safe).
			if c.Sig > 0 {
				if sigTaken[c.Sig] {
					marg = 0
				} else if n := int64(s.sigCount[c.Sig]); n > 1 {
					marg = (marg + n - 1) / n
				}
			}
			a := int32(0)
			for j := 0; j < int(c.N); j++ {
				d := c.Deps[j]
				if g.hasChoices(d) && !need[d] && (prevNeed == nil || !prevNeed[d]) {
					marg += s.est[d]
				}
				if da := s.arr[d] + int32(c.DepD[j]); da > a {
					a = da
				}
			}
			// At equal primary key, prefer the lower direct Cost before
			// comparing arrivals: est-priced dependencies can still become
			// free through sharing with consumers not yet swept, while a
			// choice's own Cost is locked in.
			var take bool
			if s.opt.Objective == Depth {
				take = a < bestA || (a == bestA && (marg < bestM || (marg == bestM && c.Cost < bestC)))
			} else {
				take = marg < bestM || (marg == bestM && (c.Cost < bestC || (c.Cost == bestC && a < bestA)))
			}
			if take {
				bestI, bestM, bestA, bestC = int32(i), marg, a, c.Cost
			}
		}
		pick[v] = bestI
		if need[v] {
			c := &choices[bestI]
			if c.Sig > 0 {
				sigTaken[c.Sig] = true
			}
			for j := 0; j < int(c.N); j++ {
				need[c.Deps[j]] = true
			}
		}
	}
	return pick, need
}

// refineFFR runs the exact tree-DP over small fanout-free regions and
// returns a refined copy of pick, its demand set, and how many regions
// were attempted. Inside one region the choice graph is an in-tree —
// internal nodes feed exactly one consumer — so the subtree costs of a
// choice's dependencies are disjoint and bottom-up DP is exact under
// the external prices (needed elsewhere: zero; not needed: the tree
// estimate). Externally demanded internal nodes keep their cover pick
// (their cost is sunk either way) and are priced zero. The refinement
// is adopted by the caller only when the full re-score beats the cover,
// so an external price that shifted under it can never regress the
// result.
func (s *selector) refineFFR(pick []int32, need []bool) ([]int32, []bool, int) {
	g := s.g
	// extDemand: demanded from outside the node's own region (an output,
	// or a needed node of another region referencing it).
	ext := make([]bool, g.NumNodes)
	for _, o := range g.Outputs {
		ext[o] = true
	}
	// adopters[sig] counts needed cover picks carrying each signature, so
	// the DP can price an implementation some *other* node already pays
	// for at zero.
	adopters := make([]int32, len(s.sigCount))
	for v := 0; v < g.NumNodes; v++ {
		if !need[v] || !g.hasChoices(mig.ID(v)) || pick[v] < 0 {
			continue
		}
		c := &g.Arena[g.Off[v]+pick[v]]
		if c.Sig > 0 {
			adopters[c.Sig]++
		}
		for j := 0; j < int(c.N); j++ {
			if d := c.Deps[j]; g.FFRRoot[d] != g.FFRRoot[v] {
				ext[d] = true
			}
		}
	}
	perm := make([]int32, 0, g.NumNodes)
	for v := 0; v < g.NumNodes; v++ {
		if g.hasChoices(mig.ID(v)) {
			perm = append(perm, int32(v))
		}
	}
	slices.SortFunc(perm, func(a, b int32) int {
		if c := cmp.Compare(g.FFRRoot[a], g.FFRRoot[b]); c != 0 {
			return c
		}
		return cmp.Compare(a, b)
	})
	out := slices.Clone(pick)
	dpCost := make([]int64, g.NumNodes)
	dpArr := make([]int32, g.NumNodes)
	dpPick := make([]int32, g.NumNodes)
	inRegion := make([]int32, g.NumNodes)
	serial := int32(0)
	regions := 0
	for a := 0; a < len(perm); {
		b := a
		for b < len(perm) && g.FFRRoot[perm[b]] == g.FFRRoot[perm[a]] {
			b++
		}
		nodes := perm[a:b]
		a = b
		root := nodes[len(nodes)-1] // the region root has the largest ID
		if len(nodes) < 2 || len(nodes) > s.opt.ExactFFRLimit || !need[root] {
			continue
		}
		regions++
		serial++
		for _, v := range nodes {
			inRegion[v] = serial
		}
		for _, vi := range nodes {
			if ext[vi] && vi != root {
				// Implementation fixed by the cover; consumers inside the
				// region see it as already paid.
				dpCost[vi], dpArr[vi], dpPick[vi] = 0, s.arr[vi], out[vi]
				continue
			}
			choices := g.Choices(mig.ID(vi))
			bestI := int32(0)
			bestC := int64(1) << 60
			bestA := int32(1) << 30
			bestD := int32(1 << 30)
			for i := range choices {
				c := &choices[i]
				cost := int64(c.Cost)
				if c.Sig > 0 {
					others := adopters[c.Sig]
					if need[vi] && out[vi] >= 0 && g.Arena[g.Off[vi]+out[vi]].Sig == c.Sig {
						others-- // vi's own cover pick must not subsidize itself
					}
					if others > 0 {
						cost = 0
					}
				}
				arr := int32(0)
				for j := 0; j < int(c.N); j++ {
					d := c.Deps[j]
					da := s.arr[d]
					switch {
					case inRegion[d] == serial && !ext[d]:
						cost += dpCost[d]
						da = dpArr[d]
					case need[d] || !g.hasChoices(d):
						// already paid, or a terminal: free
					default:
						cost += s.est[d]
					}
					if da += int32(c.DepD[j]); da > arr {
						arr = da
					}
				}
				// Same tie-break order as cover, so the passes agree on
				// equal-cost menus.
				var take bool
				if s.opt.Objective == Depth {
					take = arr < bestA || (arr == bestA && (cost < bestC || (cost == bestC && c.Cost < bestD)))
				} else {
					take = cost < bestC || (cost == bestC && (c.Cost < bestD || (c.Cost == bestD && arr < bestA)))
				}
				if take {
					bestI, bestC, bestA, bestD = int32(i), cost, arr, c.Cost
				}
			}
			dpCost[vi], dpArr[vi], dpPick[vi] = bestC, bestA, bestI
		}
		for _, vi := range nodes {
			if !(ext[vi] && vi != root) {
				out[vi] = dpPick[vi]
			}
		}
	}
	if regions == 0 {
		return out, need, 0
	}
	_, outNeed := s.needOf(out)
	return out, outNeed, regions
}

// needOf recomputes the true demand set of a pick vector (descending
// sweep from the outputs). It returns the covered-node count alongside.
func (s *selector) needOf(pick []int32) (int, []bool) {
	g := s.g
	need := make([]bool, g.NumNodes)
	for _, o := range g.Outputs {
		need[o] = true
	}
	covered := 0
	for v := g.NumNodes - 1; v >= 0; v-- {
		if !need[v] || !g.hasChoices(mig.ID(v)) {
			continue
		}
		covered++
		p := pick[v]
		if p < 0 {
			p = 0 // default to the first choice if the pick never ran
		}
		c := &g.Arena[g.Off[v]+p]
		for j := 0; j < int(c.N); j++ {
			need[c.Deps[j]] = true
		}
	}
	return covered, need
}

// score computes the modelled cost of a pick vector: total gates of the
// true demand set and the realized output arrival. Equal-signature picks
// are priced once — the commit's structural hashing folds the second
// instance onto the first, so the model follows.
func (s *selector) score(pick []int32, need []bool) (gates int64, arrival int32) {
	g := s.g
	level := make([]int32, g.NumNodes)
	sigSeen := make([]bool, len(s.sigCount))
	for v := 0; v < g.NumNodes; v++ {
		if !need[v] || !g.hasChoices(mig.ID(v)) {
			continue
		}
		p := pick[v]
		if p < 0 {
			p = 0
		}
		c := &g.Arena[g.Off[v]+p]
		if c.Sig > 0 && sigSeen[c.Sig] {
			// merged: already built by an earlier equal-signature pick
		} else {
			gates += int64(c.Cost)
			if c.Sig > 0 {
				sigSeen[c.Sig] = true
			}
		}
		a := int32(0)
		for j := 0; j < int(c.N); j++ {
			if da := level[c.Deps[j]] + int32(c.DepD[j]); da > a {
				a = da
			}
		}
		level[v] = a
	}
	for _, o := range g.Outputs {
		if level[o] > arrival {
			arrival = level[o]
		}
	}
	return gates, arrival
}
