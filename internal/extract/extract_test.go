package extract

import (
	"testing"

	"mighash/internal/mig"
)

// graph builds a Graph from per-node menus. Node IDs follow the mig
// convention (0 = const, 1..pis = inputs); menus[v] lists node v's
// choices.
func graph(numNodes int, menus map[int][]Choice, outputs ...mig.ID) *Graph {
	g := &Graph{NumNodes: numNodes, Outputs: outputs}
	g.Off = make([]int32, numNodes+1)
	for v := 0; v < numNodes; v++ {
		g.Off[v+1] = g.Off[v] + int32(len(menus[v]))
		g.Arena = append(g.Arena, menus[v]...)
	}
	return g
}

func choice(cost int, ref int, deps ...mig.ID) Choice {
	c := Choice{Cost: int32(cost), Ref: int32(ref), N: uint8(len(deps))}
	copy(c.Deps[:], deps)
	for i := range deps {
		c.DepD[i] = 1
	}
	return c
}

// TestSelectPrefersSharing: two outputs can each keep their gate (cost 1
// per gate, 4 total via a shared middle node) or use a "cut" that
// bypasses the middle node (cost 2 each). Locally the cut looks as good
// as keeping, but globally keeping shares the middle node. The cover
// must find the sharing.
func TestSelectPrefersSharing(t *testing.T) {
	// Nodes: 1,2 = inputs; 3 = shared; 4,5 = roots (outputs).
	g := graph(6, map[int][]Choice{
		3: {choice(1, -1, 1, 2)},
		4: {choice(1, -1, 3, 1), choice(2, 0, 1, 2)},
		5: {choice(1, -1, 3, 2), choice(2, 1, 1, 2)},
	}, 4, 5)
	sel := Select(g, Options{})
	if got := sel.Stats.Gates; got != 3 {
		t.Fatalf("cover costs %d gates, want 3 (keep both roots, share node 3)", got)
	}
	for _, v := range []mig.ID{4, 5} {
		if c := g.Choices(v)[sel.Pick[v]]; c.Ref != -1 {
			t.Fatalf("node %d picked replacement %d instead of keeping", v, c.Ref)
		}
	}
	if sel.Pick[3] < 0 {
		t.Fatal("shared node 3 not covered")
	}
}

// TestSelectTakesGlobalReplacement: a replacement that is locally
// neutral (cost equals the kept cone) wins once both consumers use it —
// zero-gain choices must survive into the cover where sharing pays.
func TestSelectTakesCheaperCut(t *testing.T) {
	// Node 4 = gate over inputs 1..3 (keep cost 1), node 5 = gate over
	// 4 and 1 (keep cost 1, total 2), with a cut choice implementing 5
	// straight from inputs at cost 1 — strictly cheaper globally when 4
	// has no other consumer.
	g := graph(6, map[int][]Choice{
		4: {choice(1, -1, 1, 2, 3)},
		5: {choice(1, -1, 4, 1), choice(1, 7, 1, 2, 3)},
	}, 5)
	sel := Select(g, Options{})
	if got := sel.Stats.Gates; got != 1 {
		t.Fatalf("cover costs %d gates, want 1 (bypass node 4)", got)
	}
	if c := g.Choices(5)[sel.Pick[5]]; c.Ref != 7 {
		t.Fatalf("node 5 picked %d, want the Ref=7 cut", c.Ref)
	}
	if sel.Pick[4] != -1 {
		t.Fatal("bypassed node 4 still covered")
	}
	if sel.Stats.Replacements != 1 {
		t.Fatalf("Replacements = %d, want 1", sel.Stats.Replacements)
	}
}

// TestSelectDepthObjective: under the depth objective a deeper-but-
// smaller choice loses to a shallower-but-larger one, and vice versa
// under size.
func TestSelectDepthObjective(t *testing.T) {
	deep := choice(1, -1, 1, 2)
	deep.DepD = [MaxDeps]int8{4, 4}
	shallow := choice(3, 0, 1, 2)
	shallow.DepD = [MaxDeps]int8{1, 1}
	menus := map[int][]Choice{3: {deep, shallow}}

	bySize := Select(graph(4, menus, 3), Options{Objective: Size})
	if c := graph(4, menus, 3).Choices(3)[bySize.Pick[3]]; c.Ref != -1 {
		t.Fatal("size objective did not pick the 1-gate choice")
	}
	if bySize.Stats.Arrival != 4 {
		t.Fatalf("size cover arrival %d, want 4", bySize.Stats.Arrival)
	}
	byDepth := Select(graph(4, menus, 3), Options{Objective: Depth})
	if c := graph(4, menus, 3).Choices(3)[byDepth.Pick[3]]; c.Ref != 0 {
		t.Fatal("depth objective did not pick the shallow choice")
	}
	if byDepth.Stats.Arrival != 1 || byDepth.Stats.Gates != 3 {
		t.Fatalf("depth cover (gates %d, arrival %d), want (3, 1)",
			byDepth.Stats.Gates, byDepth.Stats.Arrival)
	}
}

// TestSelectExactFFR: the greedy cover commits the root to a marginal-
// best choice whose subtree turns out expensive; the tree-DP sees the
// whole region and must find the cheaper decomposition.
func TestSelectExactFFR(t *testing.T) {
	// Region {3, 4, 5} rooted at 5 (an in-tree: 3 and 4 feed only 5).
	// Root menu: keep (cost 1 + subtrees of 3 and 4) or a flat cut
	// (cost 3 from inputs). est(3) = est(4) = 1, so keeping promises
	// 1+1+1 = 3 — a tie the greedy breaks toward keep (first choice in
	// menu order loses to... tie-break picks lower index). Make node
	// 3's only choice cost 2 so keeping really costs 4: only the DP
	// (or a rescore round) sees it. The flat cut at cost 3 must win.
	g := graph(6, map[int][]Choice{
		3: {choice(2, 5, 1, 2)},
		4: {choice(1, -1, 1, 2)},
		5: {choice(1, -1, 3, 4), choice(3, 9, 1, 2)},
	}, 5)
	g.FFRRoot = []mig.ID{0, 1, 2, 5, 5, 5}
	sel := Select(g, Options{Rounds: 1})
	if got := sel.Stats.Gates; got != 3 {
		t.Fatalf("cover costs %d gates, want 3 (the flat cut)", got)
	}
	if c := g.Choices(5)[sel.Pick[5]]; c.Ref != 9 {
		t.Fatalf("root picked %d, want the Ref=9 flat cut", c.Ref)
	}
	if sel.Stats.ExactRegions == 0 {
		t.Fatal("tree-DP attempted no regions")
	}
}

// TestSelectDeterministic: repeated selections of the same graph are
// identical, and every needed node is covered (no dangling picks).
func TestSelectDeterministic(t *testing.T) {
	menus := map[int][]Choice{
		4: {choice(1, -1, 1, 2), choice(2, 0, 1, 2, 3)},
		5: {choice(1, -1, 4, 3), choice(2, 1, 1, 2, 3)},
		6: {choice(1, -1, 4, 5), choice(3, 2, 1, 2, 3)},
	}
	g := graph(7, menus, 6)
	g.FFRRoot = []mig.ID{0, 1, 2, 3, 6, 6, 6}
	a := Select(g, Options{})
	for i := 0; i < 5; i++ {
		b := Select(g, Options{})
		for v := range a.Pick {
			if a.Pick[v] != b.Pick[v] {
				t.Fatalf("run %d picked %d for node %d, first run picked %d", i, b.Pick[v], v, a.Pick[v])
			}
		}
	}
	// Dangling check: every dep of every selected choice is a terminal
	// or itself selected.
	for v := range a.Pick {
		if a.Pick[v] < 0 {
			continue
		}
		c := g.Choices(mig.ID(v))[a.Pick[v]]
		for j := 0; j < int(c.N); j++ {
			d := c.Deps[j]
			if g.hasChoices(d) && a.Pick[d] < 0 {
				t.Fatalf("node %d depends on %d, which has no pick", v, d)
			}
		}
	}
}
