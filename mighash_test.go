package mighash_test

import (
	"context"
	"math/rand"
	"testing"

	"mighash"
)

// These integration tests exercise the public façade only — everything an
// external user of the library can reach — across the full pipeline:
// word-level construction → depth optimization → functional hashing →
// technology mapping, with SAT-based equivalence checking throughout.

func loadDB(t testing.TB) *mighash.Database {
	t.Helper()
	d, err := mighash.LoadDatabase()
	if err != nil {
		t.Fatalf("embedded database: %v", err)
	}
	return d
}

// TestPublicPipeline runs the whole flow on a 16-bit adder-comparator.
func TestPublicPipeline(t *testing.T) {
	b := mighash.NewCircuitBuilder(32)
	x := b.Inputs(0, 16)
	y := b.Inputs(16, 16)
	sum, cout := b.Add(x, y, mighash.Const0)
	b.Outputs(sum)
	b.M.AddOutput(cout)
	b.M.AddOutput(b.Geq(x, y))
	m := b.M

	flat, dst := mighash.OptimizeDepth(m, mighash.DepthOptions{SizeFactor: 4})
	if dst.DepthAfter >= dst.DepthBefore {
		t.Errorf("no depth improvement: %v", dst)
	}

	d := loadDB(t)
	for _, v := range []struct {
		name string
		opt  mighash.RewriteOptions
	}{
		{"TF", mighash.VariantTF}, {"T", mighash.VariantT},
		{"TFD", mighash.VariantTFD}, {"TD", mighash.VariantTD},
		{"BF", mighash.VariantBF},
	} {
		opt, st := mighash.Optimize(flat, d, v.opt)
		if st.SizeAfter > st.SizeBefore {
			t.Errorf("%s: size grew %v", v.name, st)
		}
		eq, ce, err := mighash.Equivalent(m, opt, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Fatalf("%s: pipeline broke the circuit: %v", v.name, ce)
		}
		cover := mighash.MapLUT(opt, mighash.MapOptions{})
		if cover.Area == 0 || cover.Depth == 0 {
			t.Errorf("%s: degenerate cover %v", v.name, cover)
		}
	}
}

// TestPublicEngine drives the batch-optimization engine through the
// façade: a preset script over batch jobs, with cache stats surfaced.
func TestPublicEngine(t *testing.T) {
	build := func() *mighash.MIG {
		b := mighash.NewCircuitBuilder(16)
		sum, cout := b.Add(b.Inputs(0, 8), b.Inputs(8, 8), mighash.Const0)
		b.Outputs(sum)
		b.M.AddOutput(cout)
		return b.M
	}
	p, err := mighash.PipelineScript("resyn")
	if err != nil {
		t.Fatal(err)
	}
	p.DB = loadDB(t)
	jobs := []mighash.BatchJob{
		{Name: "adder8a", M: build()},
		{Name: "adder8b", M: build()},
	}
	results, err := mighash.RunBatch(context.Background(), p, jobs, mighash.BatchOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if r.Name != jobs[i].Name {
			t.Fatalf("result %d out of order: %q", i, r.Name)
		}
		eq, ce, err := mighash.Equivalent(jobs[i].M, r.M, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Fatalf("%s: engine broke the circuit: %v", r.Name, ce)
		}
		if r.Stats.CacheHits+r.Stats.CacheMisses == 0 {
			t.Errorf("%s: no NPN-cache traffic recorded", r.Name)
		}
	}
	if names := mighash.PipelineScripts(); len(names) < 6 {
		t.Errorf("script registry too small: %v", names)
	}
	cone := mighash.SplitOutputs(jobs[0].M, "adder8a")
	if len(cone) != jobs[0].M.NumPOs() {
		t.Errorf("SplitOutputs: %d cones for %d outputs", len(cone), jobs[0].M.NumPOs())
	}
}

// TestPublicExactSynthesis drives the exact engine through the façade.
func TestPublicExactSynthesis(t *testing.T) {
	maj := mighash.NewTT(3, 0xE8)
	m, err := mighash.ExactMinimum(context.Background(), maj, mighash.ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Size() != 1 {
		t.Errorf("majority needs %d gates, want 1", m.Size())
	}
	if got, want := mighash.TheoremBound(6), 37; got != want {
		t.Errorf("TheoremBound(6) = %d, want %d", got, want)
	}
}

// TestPublicDatabase checks classification and database access.
func TestPublicDatabase(t *testing.T) {
	if got := mighash.NumNPNClasses4(); got != 222 {
		t.Fatalf("NumNPNClasses4 = %d", got)
	}
	d := loadDB(t)
	rng := rand.New(rand.NewSource(71))
	for i := 0; i < 50; i++ {
		f := mighash.NewTT(4, rng.Uint64()&0xFFFF)
		rep, tr := mighash.CanonizeNPN(f)
		if tr.Apply(rep) != f {
			t.Fatalf("transform does not reconstruct %v", f)
		}
		if d.Size(f) < 0 {
			t.Fatalf("class of %v missing from database", f)
		}
	}
}

// TestPublicBenchmarks spot-checks the generator registry.
func TestPublicBenchmarks(t *testing.T) {
	if got := len(mighash.Benchmarks()); got != 8 {
		t.Fatalf("%d benchmarks, want 8", got)
	}
	spec, ok := mighash.BenchmarkByName("Sine")
	if !ok {
		t.Fatal("Sine missing")
	}
	m := spec.Build()
	if m.NumPIs() != 24 || m.NumPOs() != 25 {
		t.Fatalf("Sine signature %d/%d", m.NumPIs(), m.NumPOs())
	}
	in := make([]bool, 24)
	got, want := m.EvalBits(in), spec.Model(in)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sine(0) output %d mismatch", i)
		}
	}
}
