// Benchmarks regenerating every table and figure of the paper, plus
// ablations of the design choices documented in DESIGN.md. Run with
//
//	go test -bench=. -benchmem
//
// Naming: BenchmarkTableX / BenchmarkFigX mirror the paper's artifacts;
// BenchmarkAblation* quantify internal design choices.
package mighash

import (
	"context"
	"runtime"
	"testing"

	"mighash/internal/circuits"
	"mighash/internal/db"
	"mighash/internal/depthopt"
	"mighash/internal/engine"
	"mighash/internal/exact"
	"mighash/internal/exp"
	"mighash/internal/mapper"
	"mighash/internal/mig"
	"mighash/internal/npn"
	"mighash/internal/rewrite"
	"mighash/internal/sat"
	"mighash/internal/tt"
)

// ------------------------------------------------------------- Figures

// BenchmarkFig1FullAdder builds the paper's Fig. 1 MIG.
func BenchmarkFig1FullAdder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := mig.New(3)
		s, c := m.FullAdder(m.Input(0), m.Input(1), m.Input(2))
		m.AddOutput(s)
		m.AddOutput(c)
		if m.Size() != 3 || m.Depth() != 2 {
			b.Fatal("full adder is not the Fig. 1 structure")
		}
	}
}

// BenchmarkFig2S02 instantiates the optimal 7-gate MIG of the hardest
// NPN class from the database.
func BenchmarkFig2S02(b *testing.B) {
	d := db.MustLoad()
	f := exp.S02()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := mig.New(4)
		l, ok := d.Build(m, f, []mig.Lit{m.Input(0), m.Input(1), m.Input(2), m.Input(3)})
		if !ok {
			b.Fatal("S0,2 missing")
		}
		m.AddOutput(l)
		if m.Size() != 7 {
			b.Fatalf("size %d", m.Size())
		}
	}
}

// ------------------------------------------------------------- Table I

// BenchmarkTableI_ExactSynthesisUpTo5 re-measures the exact-synthesis
// ladder for every class of optimum size ≤ 5 (214 of the 222 classes;
// the remaining 36 classes need minutes and are covered by cmd/migdb and
// `migbench -table 1 -live`).
func BenchmarkTableI_ExactSynthesisUpTo5(b *testing.B) {
	d := db.MustLoad()
	var reps []tt.TT
	for _, e := range d.Entries() {
		if e.Size() <= 5 {
			reps = append(reps, e.Rep)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := reps[i%len(reps)]
		if _, err := exact.Minimum(context.Background(), rep, exact.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableI_DecisionUnsat measures one UNSAT ladder step (k = 4
// for a class of optimum size 5), the dominant cost of Table I.
func BenchmarkTableI_DecisionUnsat(b *testing.B) {
	d := db.MustLoad()
	var rep tt.TT
	for _, e := range d.Entries() {
		if e.Size() == 5 {
			rep = e.Rep
			break
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, _ := exact.Decide(context.Background(), rep, 4, exact.Options{})
		if st != sat.Unsat {
			b.Fatalf("k=4 decision returned %v", st)
		}
	}
}

// ------------------------------------------------------------- Table II

// BenchmarkTableII_Lengths runs the L(f) dynamic program for all 65536
// functions.
func BenchmarkTableII_Lengths(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if l := exact.MinLengths(4); l[0x6996] == 0 {
			b.Fatal("parity cannot have length 0")
		}
	}
}

// BenchmarkTableII_Depths runs the D(f) reachability engine for all
// 65536 functions.
func BenchmarkTableII_Depths(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if d := exact.MinDepths(4); d[0x6996] != 4 {
			b.Fatal("parity must have depth 4")
		}
	}
}

// BenchmarkTableII_NPNClassification canonicalizes every 4-variable
// function (the classification pass behind Tables I and II).
func BenchmarkTableII_NPNClassification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		n := 0
		for v := 0; v < 1<<16; v++ {
			if npn.ClassOf4(tt.New(4, uint64(v))).Bits == uint64(v) {
				n++
			}
		}
		if n != 222 {
			b.Fatalf("%d classes", n)
		}
	}
}

// ------------------------------------------------------- Tables III / IV

// tableIIIStart caches the prepared starting points per benchmark.
var tableIIIStart = map[string]*mig.MIG{}

func startingPoint(b *testing.B, name string) *mig.MIG {
	b.Helper()
	if m, ok := tableIIIStart[name]; ok {
		return m
	}
	spec, ok := circuits.ByName(name)
	if !ok {
		b.Fatalf("unknown benchmark %q", name)
	}
	m := exp.PrepareStart(spec)
	tableIIIStart[name] = m
	return m
}

// benchVariant runs one functional-hashing variant on one benchmark,
// driven through the engine as the production flow does. One single-pass
// pipeline iteration is a bare rewrite.Run plus the engine's fixed
// per-run overhead (a fresh NPN cut-cache and pipeline bookkeeping), so
// these numbers are not directly comparable with pre-engine baselines.
func benchVariant(b *testing.B, name string, opt rewrite.Options) {
	start := startingPoint(b, name)
	p := engine.New(engine.RewritePass(opt))
	p.MaxIterations = 1
	p.DB = db.MustLoad()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, st, err := p.Run(start)
		if err != nil {
			b.Fatal(err)
		}
		// Guard the pass itself: PipelineStats.SizeAfter reports the kept
		// best and can never regress, but the raw pass output can.
		for _, ps := range st.Passes {
			if ps.SizeAfter > ps.SizeBefore {
				b.Fatalf("pass grew the graph: %v", ps)
			}
		}
	}
}

func BenchmarkTableIII_Sine_TF(b *testing.B)  { benchVariant(b, "Sine", rewrite.TF) }
func BenchmarkTableIII_Sine_T(b *testing.B)   { benchVariant(b, "Sine", rewrite.T) }
func BenchmarkTableIII_Sine_TFD(b *testing.B) { benchVariant(b, "Sine", rewrite.TFD) }
func BenchmarkTableIII_Sine_TD(b *testing.B)  { benchVariant(b, "Sine", rewrite.TD) }
func BenchmarkTableIII_Sine_BF(b *testing.B)  { benchVariant(b, "Sine", rewrite.BF) }
func BenchmarkTableIII_Max_BF(b *testing.B)   { benchVariant(b, "Max", rewrite.BF) }
func BenchmarkTableIII_Adder_BF(b *testing.B) { benchVariant(b, "Adder", rewrite.BF) }

// BenchmarkTableIII_PrepareStart measures the starting-point generation
// (circuit construction plus algebraic depth optimization).
func BenchmarkTableIII_PrepareStart(b *testing.B) {
	spec, _ := circuits.ByName("Max")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := exp.PrepareStart(spec)
		if m.Size() == 0 {
			b.Fatal("empty start")
		}
	}
}

// BenchmarkTableIV_Mapping measures the 6-LUT cover of the Sine
// benchmark's BF-optimized MIG.
func BenchmarkTableIV_Mapping(b *testing.B) {
	d := db.MustLoad()
	opt, _ := rewrite.Run(startingPoint(b, "Sine"), d, rewrite.BF)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := mapper.Map(opt, mapper.Options{})
		if r.Area == 0 {
			b.Fatal("empty cover")
		}
	}
}

// -------------------------------------------------------------- Engine

// BenchmarkEngine_ResynSine runs the composite resyn script to
// convergence on the Sine benchmark: the engine's iterated-pipeline
// overhead and the NPN cut-cache in one number.
func BenchmarkEngine_ResynSine(b *testing.B) {
	start := startingPoint(b, "Sine")
	p, err := engine.Preset("resyn")
	if err != nil {
		b.Fatal(err)
	}
	p.DB = db.MustLoad()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, st, err := p.Run(start)
		if err != nil {
			b.Fatal(err)
		}
		if st.CacheHits == 0 {
			b.Fatalf("resyn recorded no cache hits: %v", st)
		}
	}
}

// BenchmarkEngine_Batch1 vs BatchNumCPU measure the worker-pool speedup
// of optimizing the two small arithmetic benchmarks concurrently.
func benchBatch(b *testing.B, workers int) {
	jobs := []engine.Job{
		{Name: "Sine", M: startingPoint(b, "Sine")},
		{Name: "Max", M: startingPoint(b, "Max")},
	}
	p, err := engine.Preset("size")
	if err != nil {
		b.Fatal(err)
	}
	p.DB = db.MustLoad()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := engine.RunBatch(context.Background(), p, jobs, engine.BatchOptions{Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
}

func BenchmarkEngine_Batch1(b *testing.B)      { benchBatch(b, 1) }
func BenchmarkEngine_BatchNumCPU(b *testing.B) { benchBatch(b, runtime.NumCPU()) }

// BenchmarkEngine_NPNCacheHit vs NPNLookupUncached isolate what one
// cut-cache hit saves over a fresh canonicalization + database lookup.
func BenchmarkEngine_NPNCacheHit(b *testing.B) {
	d := db.MustLoad()
	c := db.NewCache()
	for v := 0; v < 1<<16; v++ {
		d.LookupCached(tt.New(4, uint64(v)), c)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok, hit := d.LookupCached(tt.New(4, uint64(i&0xFFFF)), c); !ok || !hit {
			b.Fatal("warm cache missed")
		}
	}
}

func BenchmarkEngine_NPNLookupUncached(b *testing.B) {
	d := db.MustLoad()
	for i := 0; i < b.N; i++ {
		if _, _, ok := d.Lookup(tt.New(4, uint64(i&0xFFFF))); !ok {
			b.Fatal("class missing")
		}
	}
}

// ------------------------------------------------------------ Ablations

// BenchmarkAblation_CutCap8 vs 64 quantifies the priority-cut cap of the
// rewriter (DESIGN.md §3).
func BenchmarkAblation_CutCap8(b *testing.B) {
	benchVariant(b, "Sine", rewrite.Options{FFR: true, MaxCuts: 8})
}
func BenchmarkAblation_CutCap64(b *testing.B) {
	benchVariant(b, "Sine", rewrite.Options{FFR: true, MaxCuts: 64})
}

// BenchmarkAblation_BFCandidates2 vs 16 quantifies the bottom-up
// candidate-list cap of Algorithm 2.
func BenchmarkAblation_BFCandidates2(b *testing.B) {
	benchVariant(b, "Sine", rewrite.Options{BottomUp: true, FFR: true, MaxCandidates: 2})
}
func BenchmarkAblation_BFCandidates16(b *testing.B) {
	benchVariant(b, "Sine", rewrite.Options{BottomUp: true, FFR: true, MaxCandidates: 16})
}

// BenchmarkAblation_ZeroGain allows size-neutral, depth-improving
// replacements.
func BenchmarkAblation_ZeroGain(b *testing.B) {
	benchVariant(b, "Sine", rewrite.Options{FFR: true, AllowZeroGain: true})
}

// BenchmarkAblation_ExactPruning measures the encoding's extra pruning
// (all-gates-used, ≤1 complemented operand) on a 5-gate class.
func BenchmarkAblation_ExactPruning(b *testing.B) {
	f := pickSize5Class(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exact.Minimum(context.Background(), f, exact.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_ExactNoPruning(b *testing.B) {
	f := pickSize5Class(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exact.Minimum(context.Background(), f, exact.Options{NoExtraPruning: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func pickSize5Class(b *testing.B) tt.TT {
	b.Helper()
	for _, e := range db.MustLoad().Entries() {
		if e.Size() == 5 {
			return e.Rep
		}
	}
	b.Fatal("no size-5 class")
	return tt.TT{}
}

// BenchmarkAblation_DepthOptBudget quantifies the depth optimizer's size
// budget (SizeFactor 1.2 vs 8) on the Max benchmark.
func BenchmarkAblation_DepthOptBudget12(b *testing.B) { benchDepthOpt(b, 1.2) }
func BenchmarkAblation_DepthOptBudget80(b *testing.B) { benchDepthOpt(b, 8) }

func benchDepthOpt(b *testing.B, factor float64) {
	spec, _ := circuits.ByName("Max")
	m := spec.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _ := depthopt.Optimize(m, depthopt.Options{SizeFactor: factor, MaxPasses: 40})
		if res.Depth() > m.Depth() {
			b.Fatal("depth grew")
		}
	}
}

// BenchmarkAblation_AdderArchitectures contrasts the two adder
// constructions the depth experiments reference: the algebraic optimizer
// flattening a ripple adder vs building the Kogge-Stone prefix structure
// directly.
func BenchmarkAblation_AdderFlattenRipple(b *testing.B) {
	spec, _ := circuits.ByName("Adder")
	m := spec.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _ := depthopt.Optimize(m, depthopt.Options{SizeFactor: 8, MaxPasses: 40})
		if res.Depth() >= m.Depth() {
			b.Fatal("no flattening")
		}
	}
}

func BenchmarkAblation_AdderKoggeStone(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bb := circuits.NewBuilder(256)
		sum, cout := bb.AddKoggeStone(bb.Inputs(0, 128), bb.Inputs(128, 128), mig.Const0)
		bb.Outputs(sum)
		bb.M.AddOutput(cout)
		if bb.M.Depth() >= 128 {
			b.Fatal("prefix adder too deep")
		}
	}
}
