// Package mighash is a self-contained Go implementation of
//
//	M. Soeken, L. G. Amarù, P.-E. Gaillardon, G. De Micheli:
//	"Optimizing Majority-Inverter Graphs with Functional Hashing",
//	DATE 2016,
//
// including every substrate the paper depends on: truth tables, NPN
// classification, a CDCL SAT solver, SAT-based exact synthesis of minimum
// MIGs, the precomputed optimal-MIG database for all 222 NPN classes of
// 4-variable functions, cut enumeration, the five functional-hashing
// variants (TF, T, TFD, TD, BF), algebraic depth optimization, k-LUT
// technology mapping and generators for the arithmetic benchmarks of the
// experimental section.
//
// Beyond the paper, the internal/engine subsystem scales the single-shot
// passes into a batch-optimization engine: composable pass pipelines with
// run-to-convergence semantics, a concurrency-safe sharded NPN cut-cache,
// and a bounded worker pool for optimizing many graphs at once.
// Functional hashing extends past the paper's 4-input database to
// on-demand 5-input hashing: Canonize5 semi-canonicalizes 5-variable
// functions without the exhaustive transform sweep, and an Exact5Store
// learns each class's minimum MIG by budgeted exact synthesis on first
// contact (the TF5/T5/TFD5/TD5 variants and resyn5/size5 scripts),
// persisting the learned database across processes alongside the
// cut-cache. Choice-aware extraction (the x-variants and the resyn-x /
// depth-x scripts) replaces the greedy per-cut commit with a two-phase
// scheme: record every profitable (cut, candidate) pair into a choice
// graph, then extract a globally best cover under a size or depth
// objective — never worse than the greedy result, often strictly
// better. The
// rewriting hot path is allocation-free in the steady state — cuts carry
// their truth tables, cone analysis uses epoch-stamped workspaces — and
// parallelizes inside a single graph: best cuts of independent fanout-
// free regions are evaluated concurrently and committed deterministically
// (Pipeline.Workers / RewriteOptions.Workers), producing bit-identical
// results at any worker count. The internal/server subsystem serves the
// engine over HTTP (cmd/migserve): JSON requests carrying BENCH/MIG
// netlists, streamed per-pass statistics, and per-request deadlines and
// size limits — embed it with NewOptimizeServer. The internal/obs
// subsystem threads a zero-overhead-when-off span tracer from the HTTP
// request down to individual SAT ladders (NewTracer / StartSpan),
// exporting Chrome trace-event JSON and Prometheus latency histograms.
// Verification is a ladder: the internal/sim word-parallel simulator
// (64 patterns per machine word) refutes cheaply with a deterministic,
// counterexample-replaying pattern pool, and the SAT miter proves what
// simulation cannot refute — EquivalentOpt exposes the rungs, and the
// internal/sim/diff harness re-checks every pass of every pipeline.
//
// This root package is the stable public surface; the examples/ directory
// only uses what is exported here. See README.md for a quickstart and the
// package tour.
package mighash

import (
	"context"
	"io"

	"mighash/internal/aig"
	"mighash/internal/circuits"
	"mighash/internal/db"
	"mighash/internal/depthopt"
	"mighash/internal/engine"
	"mighash/internal/exact"
	"mighash/internal/extract"
	"mighash/internal/mapper"
	"mighash/internal/mig"
	"mighash/internal/npn"
	"mighash/internal/obs"
	"mighash/internal/qor"
	"mighash/internal/rewrite"
	"mighash/internal/server"
	"mighash/internal/sim"
	"mighash/internal/tt"
)

// Core MIG data structure (Sec. II-B of the paper).
type (
	// MIG is a majority-inverter graph: a DAG of three-input majority
	// gates with complemented edges.
	MIG = mig.MIG
	// Lit is an MIG signal: node ID plus complement bit.
	Lit = mig.Lit
	// ID is an MIG node identifier.
	ID = mig.ID
	// MIGStats summarizes a graph (inputs, outputs, size, depth).
	MIGStats = mig.Stats
	// Counterexample is a distinguishing input found by CEC.
	Counterexample = mig.Counterexample
)

// The two constant signals.
const (
	Const0 = mig.Const0
	Const1 = mig.Const1
)

// NewMIG returns an empty graph over the given primary inputs.
func NewMIG(numPIs int) *MIG { return mig.New(numPIs) }

// ReadMIG parses the textual netlist format written by MIG.WriteText.
func ReadMIG(r io.Reader) (*MIG, error) { return mig.ReadText(r) }

// ReadBENCH parses a BENCH netlist (the ISCAS/LGSynth dialect used by ABC
// and academic tools, extended with a ternary MAJ gate) into an MIG;
// AND/OR/NAND/NOR/NOT/BUF/XOR/XNOR gates are lowered onto majority
// gadgets. The inverse is the MIG.WriteBENCH method; writing is
// canonicalizing, and parse→write is idempotent from the first written
// form, so netlists round-trip byte-identically.
func ReadBENCH(r io.Reader) (*MIG, error) { return mig.ReadBENCH(r) }

// Equivalent proves or refutes functional equivalence of two MIGs
// (combinational equivalence checking): a word-parallel simulation
// prefilter refutes cheap inequivalences, the built-in SAT solver
// proves the rest.
var Equivalent = mig.Equivalent

// Equivalence checking with the verification ladder exposed: how many
// patterns the simulation prefilter sweeps, whether SAT may run at all,
// and which rung decided the answer.
type (
	// EquivOptions tunes EquivalentOpt: the SAT timeout, the simulation
	// pattern budget (negative disables the prefilter), a shared
	// counterexample-replaying pattern pool, and the refute-only NoSAT
	// mode used for per-pass differential verification.
	EquivOptions = mig.EquivOptions
	// EquivStats reports how an equivalence check was decided: patterns
	// simulated, whether simulation refuted, whether SAT ran, and
	// whether the verdict is a proof.
	EquivStats = mig.EquivStats
)

// EquivalentOpt is Equivalent with the verification ladder exposed; the
// returned Counterexample (if any) carries the full input assignment
// and every differing output.
var EquivalentOpt = mig.EquivalentOpt

// SimPool is the deterministic simulation pattern ladder shared across
// equivalence checks: constants, recorded counterexamples (replayed
// first), walking patterns, then a seeded random tail. Sharing one pool
// across EquivalentOpt calls makes checking counterexample-guided —
// every SAT model found is replayed by all later checks. Safe for
// concurrent use.
type SimPool = sim.Pool

// NewSimPool returns a pattern pool for the given primary-input count;
// the seed fixes the random tail, making sweeps bit-reproducible.
var NewSimPool = sim.NewPool

// Truth tables (up to 6 variables in one machine word).
type TT = tt.TT

// NewTT builds an n-variable truth table from its bit string; bit j holds
// f on the assignment with binary encoding j.
func NewTT(n int, bits uint64) TT { return tt.New(n, bits) }

// VarTT returns the projection x_i over n variables.
func VarTT(n, i int) TT { return tt.Var(n, i) }

// NPN classification (Sec. II-D).
type NPNTransform = npn.Transform

// CanonizeNPN returns the NPN class representative of f and a transform
// t with Apply(t, rep) = f.
var CanonizeNPN = npn.Canonize

// CanonizeNPN5 returns the semi-canonical NPN representative of a
// 5-variable function — a true class invariant computed from cofactor
// signatures instead of the exhaustive transform sweep — and a transform
// t with Apply(t, rep) = f. It keys the on-demand 5-input database.
var CanonizeNPN5 = npn.Canonize5

// NumNPNClasses4 is the number of NPN classes of 4-variable functions.
func NumNPNClasses4() int { return npn.NumClasses4() }

// Exact synthesis (Sec. III).
type ExactOptions = exact.Options

// ExactMinimum synthesizes a minimum-size MIG for f by the paper's
// SAT-encoded decision ladder. The context cancels the underlying SAT
// search, so runaway instances can be abandoned (server deadlines do
// exactly that); pass context.Background() for an uninterruptible run.
var ExactMinimum = exact.Minimum

// TheoremBound is the Theorem 2 upper bound 10·(2^(n−4)−1)+7 on C(n).
var TheoremBound = db.Bound

// Optimal-MIG database (Sec. IV).
type Database = db.DB

// LoadDatabase returns the embedded, simulation-verified database of
// minimum MIGs for all 222 NPN classes.
var LoadDatabase = db.Load

// Functional hashing — the paper's primary contribution (Sec. IV).
type (
	RewriteOptions = rewrite.Options
	RewriteStats   = rewrite.Stats
)

// The five paper variants: Top-down/Bottom-up, Fanout-free regions,
// Depth-preserving.
var (
	VariantTF  = rewrite.TF
	VariantT   = rewrite.T
	VariantTFD = rewrite.TFD
	VariantTD  = rewrite.TD
	VariantBF  = rewrite.BF
)

// The 5-input extensions of the top-down variants: five-leaf cuts
// resolved through the on-demand exact-synthesis store
// (RewriteOptions.Exact5).
var (
	VariantTF5  = rewrite.TF5
	VariantT5   = rewrite.T5
	VariantTFD5 = rewrite.TFD5
	VariantTD5  = rewrite.TD5
)

// Choice-aware extraction (internal/extract + internal/rewrite; beyond
// the paper): the x-variants do not commit each profitable cut
// greedily — they record every profitable (cut, candidate) pair into a
// choice graph and extract a globally best cover over the whole graph
// (e-graph extraction specialized to the rewriter). The extracted
// result is never worse than the greedy twin on the same input, and
// bit-identical at any worker count. RewriteOptions.Extract switches a
// top-down variant into this mode; RewriteOptions.ExtractObjective
// picks what the cover minimizes.
type ExtractObjective = extract.Objective

// The two extraction objectives: gate count (the default) or output
// arrival time.
const (
	ExtractSize  = extract.Size
	ExtractDepth = extract.Depth
)

// The choice-aware (x) variants of the top-down rewriters, driven by
// the resyn-x and depth-x preset scripts.
var (
	VariantTFx  = rewrite.TFx
	VariantTx   = rewrite.Tx
	VariantTF5x = rewrite.TF5x
	VariantT5x  = rewrite.T5x
	VariantTxd  = rewrite.Txd
)

// Optimize applies one functional-hashing pass, returning a fresh
// optimized MIG and its statistics.
var Optimize = rewrite.Run

// RewriteWorkspace owns the reusable scratch buffers of rewriting passes
// (cut arenas, cone-analysis stamps, decision memos); installing one in
// RewriteOptions.Workspace makes repeated passes allocation-free. Must
// not be shared by concurrent runs.
type RewriteWorkspace = rewrite.Workspace

// NewRewriteWorkspace returns an empty rewrite workspace; buffers are
// sized on first use.
var NewRewriteWorkspace = rewrite.NewWorkspace

// NPNCache is the concurrency-safe, sharded memo of NPN canonicalization
// + database lookups shared by pipelines and batch workers. It persists
// across processes — Snapshot/Restore and SaveFile/LoadFile serialize it
// as a checksummed binary snapshot that rebinds entries through the
// loading database — and SetLimit bounds it with second-chance eviction.
type NPNCache = db.Cache

// NewNPNCache returns an empty cut-cache ready for concurrent use.
var NewNPNCache = db.NewCache

// On-demand 5-input functional hashing: at five inputs the ~616k NPN
// classes rule out a precomputed artifact, so the database is learned —
// each class's minimum MIG is synthesized on first contact under a
// deterministic budget and memoized by semi-canonical representative.
type (
	// Exact5Store is the lazy 5-input database: concurrency-safe,
	// negative-caching budget-blown classes, cancellable per lookup.
	Exact5Store = db.OnDemand
	// Exact5Options tunes the per-class synthesis budget (gate ladder
	// cap, SAT conflict budget, optional wall-clock bound).
	Exact5Options = db.OnDemandOptions
)

// NewExact5Store returns an empty on-demand store; share one across
// pipelines and batch workers so every class is synthesized once.
var NewExact5Store = db.NewOnDemand

// SaveOptimizationState atomically snapshots the NPN cut-cache and the
// learned 5-input store (either may be nil) into one width-tagged,
// checksummed file that warm-starts future processes.
var SaveOptimizationState = db.SaveSnapshotFile

// LoadOptimizationState restores a combined snapshot, rebinding cache
// entries through the given database and re-verifying learned classes;
// corrupt files degrade to a cold state.
var LoadOptimizationState = db.LoadSnapshotFile

// Optimization engine: composable pass pipelines and concurrent batch
// optimization (internal/engine; beyond the paper).
type (
	// Pipeline is a named optimization script run to convergence.
	Pipeline = engine.Pipeline
	// Pass is one step of a pipeline.
	Pass = engine.Pass
	// PipelineStats reports one pipeline run.
	PipelineStats = engine.PipelineStats
	// PassStats reports one executed pass.
	PassStats = engine.PassStats
	// BatchJob is one named MIG in a batch run.
	BatchJob = engine.Job
	// BatchResult is the outcome of one BatchJob.
	BatchResult = engine.Result
	// BatchOptions tunes RunBatch (workers, shared cache, on-disk cache
	// snapshot for cross-process warm-starts).
	BatchOptions = engine.BatchOptions
)

// NewPipeline builds a custom pipeline over the given passes.
var NewPipeline = engine.New

// PipelineScript returns a preset script by name ("resyn", "size",
// "depth", "quick", or any pass name).
var PipelineScript = engine.Preset

// PipelineScripts lists every preset script name.
var PipelineScripts = engine.PresetNames

// PipelinePass resolves a pass by script name (TF, T, TFD, TD, BF,
// depthopt).
var PipelinePass = engine.PassByName

// RunBatch optimizes many MIGs concurrently on a bounded worker pool with
// deterministic result ordering and context cancellation.
func RunBatch(ctx context.Context, p *Pipeline, jobs []BatchJob, opt BatchOptions) ([]BatchResult, error) {
	return engine.RunBatch(ctx, p, jobs, opt)
}

// SplitOutputs decomposes an MIG into one batch job per output cone.
var SplitOutputs = engine.SplitOutputs

// HTTP optimization service (internal/server; beyond the paper): the
// engine served over HTTP with JSON netlists in and out, streaming
// per-pass stats, and bounded per-request work. cmd/migserve is the
// stand-alone binary; these exports let programs embed the service in
// their own http.Server. See the README's "The HTTP API" section.
type (
	// ServerConfig tunes an optimization server (limits, deadlines,
	// concurrency, cache sharing and on-disk cache persistence). The
	// zero value uses sane defaults.
	ServerConfig = server.Config
	// OptimizeServer is the HTTP optimization service; it implements
	// http.Handler.
	OptimizeServer = server.Server
	// OptimizeRequest is the body of POST /v1/optimize.
	OptimizeRequest = server.OptimizeRequest
	// OptimizeResponse is one optimization result on the wire.
	OptimizeResponse = server.OptimizeResponse
	// OptimizeBatchRequest is the body of POST /v1/optimize/batch.
	OptimizeBatchRequest = server.BatchRequest
	// OptimizeBatchJob is one netlist of a batch request.
	OptimizeBatchJob = server.BatchJobRequest
	// OptimizeBatchResponse is the body of a batch response.
	OptimizeBatchResponse = server.BatchResponse
	// OptimizeStreamEvent is one JSON line of a streaming response.
	OptimizeStreamEvent = server.StreamEvent
	// OptimizeScriptSpec selects the pipeline of a request (preset name
	// or custom pass list, iteration cap, intra-graph workers).
	OptimizeScriptSpec = server.ScriptSpec
	// OptimizeScriptInfo describes one preset script in GET /v1/scripts.
	OptimizeScriptInfo = server.ScriptInfo
)

// NewOptimizeServer builds the HTTP optimization service; mount its
// Handler on any mux or listen with http.ListenAndServe directly.
var NewOptimizeServer = server.New

// Observability (internal/obs; beyond the paper): a zero-dependency
// span tracer and latency histograms threaded through the engine, the
// rewriters, the exact-synthesis ladders and the HTTP service. With no
// tracer in the context every span call is a nil-receiver no-op that
// allocates nothing, so instrumented hot paths cost nothing when
// tracing is off.
type (
	// Tracer collects spans for one traced run; export them as
	// Chrome trace-event JSON with WriteTrace/SaveTrace (loadable in
	// chrome://tracing or Perfetto).
	Tracer = obs.Tracer
	// TracerOptions configures span retention and the per-span-end
	// callback that feeds histograms.
	TracerOptions = obs.Options
	// TraceSpan is one timed, attributed operation; nil is a valid
	// receiver for every method.
	TraceSpan = obs.Span
	// LatencyHistogram is a fixed-bucket concurrency-safe duration
	// histogram rendered in Prometheus exposition format.
	LatencyHistogram = obs.Histogram
)

// NewTracer returns a tracer; install it with TraceContext to activate
// the spans of everything called under that context.
var NewTracer = obs.New

// TraceContext returns a context carrying the tracer; engine, rewrite
// and exact-synthesis code called under it records spans.
var TraceContext = obs.ContextWithTracer

// StartSpan opens a child span of the context's current span (or a root
// span of its tracer). It returns a nil span — every method a no-op —
// when the context carries neither, so callers never branch.
var StartSpan = obs.Start

// NewLatencyHistogram returns a histogram over the given upper bounds
// (DefaultDurationBuckets when none are given).
var NewLatencyHistogram = obs.NewHistogram

// Algebraic depth optimization (the substrate behind the paper's
// "heavily optimized" starting points, refs [3], [4]).
type (
	DepthOptions = depthopt.Options
	DepthStats   = depthopt.Stats
)

// OptimizeDepth reduces depth by majority-axiom reassociation.
var OptimizeDepth = depthopt.Optimize

// Technology mapping (Table IV substrate).
type (
	MapOptions = mapper.Options
	MapResult  = mapper.Result
)

// MapLUT covers an MIG with K-input LUTs (priority-cut mapping).
var MapLUT = mapper.Map

// Benchmark circuit generators (Sec. V workloads).
type BenchmarkSpec = circuits.Spec

// Benchmarks returns the eight EPFL-signature arithmetic circuits.
var Benchmarks = circuits.All

// BenchmarkByName looks up one benchmark generator.
var BenchmarkByName = circuits.ByName

// Word-level circuit construction.
type (
	Word           = circuits.Word
	CircuitBuilder = circuits.Builder
)

// NewCircuitBuilder returns a word-level builder over a fresh MIG.
var NewCircuitBuilder = circuits.NewBuilder

// And-Inverter Graph baseline (Sec. I and II-A of the paper).
type AIG = aig.AIG

// NewAIG returns an empty And-Inverter Graph.
var NewAIG = aig.New

// AIGFromMIG converts an MIG to an AIG (each majority gate becomes at
// most four ANDs; structural hashing shares subterms).
var AIGFromMIG = aig.FromMIG

// ExactMinimumAIG synthesizes a minimum AND-chain for f, the AIG
// counterpart of ExactMinimum used by the MIG-vs-AIG comparison.
var ExactMinimumAIG = exact.MinimumAIG

// Durable QoR (quality-of-results) trend store: one append-only JSON
// line per circuit × preset run, with build provenance and a
// noise-aware regression gate (see cmd/migtrend -history/-gate).
type (
	// QoRRecord is one circuit × preset outcome: gates, depth, runtime,
	// per-pass breakdown, cache and exact-synthesis counters, provenance.
	QoRRecord = qor.Record
	// QoRProvenance pins where a record came from: git SHA (and dirty
	// bit), timestamp, Go version, OS/arch, GOMAXPROCS.
	QoRProvenance = qor.Provenance
	// QoRPassTime is one pass's share of a record's runtime.
	QoRPassTime = qor.PassTime
	// QoRRun groups the records of one run ID for trend rendering.
	QoRRun = qor.Run
	// QoRReadStats counts lines skipped while reading a history file
	// (malformed JSON, unknown schema versions, torn tails).
	QoRReadStats = qor.ReadStats
	// QoRGateOptions tunes the regression gate's runtime noise handling
	// (relative tolerance plus an absolute floor).
	QoRGateOptions = qor.GateOptions
	// QoRGateReport is a gate comparison: per-circuit and suite-level
	// verdicts between a baseline run and the current run.
	QoRGateReport = qor.GateReport
	// QoRVerdict is one gated metric's old/new comparison.
	QoRVerdict = qor.Verdict
)

// CollectQoRProvenance captures the running binary's provenance from
// build info (go build embeds VCS metadata; go run does not).
var CollectQoRProvenance = qor.CollectProvenance

// QoRFromResult converts one engine batch result into a QoR record.
var QoRFromResult = qor.FromResult

// NewQoRRunID derives a sortable run identifier from provenance
// (UTC timestamp plus abbreviated commit).
var NewQoRRunID = qor.NewRunID

// ReadQoRFile reads a qor.jsonl history, skipping unreadable lines
// (a missing file is an empty history, not an error).
var ReadQoRFile = qor.ReadFile

// AppendQoRFile appends records to a qor.jsonl history, creating the
// file and its directory as needed.
var AppendQoRFile = qor.AppendFile

// MergeQoR merges histories, deduplicating by (run, circuit, script)
// with first-wins, sorted by provenance time.
var MergeQoR = qor.Merge

// GroupQoRRuns splits records into per-run groups, newest last.
var GroupQoRRuns = qor.GroupRuns

// CompareQoR gates the current run against a baseline run: gates and
// depth compare exactly, runtime within GateOptions tolerance.
var CompareQoR = qor.Compare
