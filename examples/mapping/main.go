// Technology mapping (Table IV of the paper): map the Sine benchmark to
// 6-input LUTs before and after functional hashing and compare area and
// depth of the covers.
//
//	go run ./examples/mapping
package main

import (
	"fmt"
	"log"

	"mighash"
)

func main() {
	spec, _ := mighash.BenchmarkByName("Sine")
	m := spec.Build()
	start, _ := mighash.OptimizeDepth(m, mighash.DepthOptions{SizeFactor: 8, MaxPasses: 40})
	db, err := mighash.LoadDatabase()
	if err != nil {
		log.Fatal(err)
	}

	base := mighash.MapLUT(start, mighash.MapOptions{})
	fmt.Printf("starting point: %v → %v\n", start.Stats(), base)

	for _, v := range []struct {
		name string
		opt  mighash.RewriteOptions
	}{{"TF", mighash.VariantTF}, {"BF", mighash.VariantBF}, {"TFD", mighash.VariantTFD}} {
		opt, _ := mighash.Optimize(start, db, v.opt)
		cover := mighash.MapLUT(opt, mighash.MapOptions{})
		fmt.Printf("%-4s: %v → %v (area %+.1f%%)\n", v.name, opt.Stats(), cover,
			100*(float64(cover.Area)/float64(base.Area)-1))
	}

	// LUT size sweep on the BF-optimized graph: smaller LUTs trade area
	// for depth exactly like a standard-cell library would.
	opt, _ := mighash.Optimize(start, db, mighash.VariantBF)
	fmt.Println("\nLUT size sweep on the BF result:")
	for k := 3; k <= 6; k++ {
		fmt.Printf("  K=%d: %v\n", k, mighash.MapLUT(opt, mighash.MapOptions{K: k}))
	}
}
