// Exact synthesis (Sec. III of the paper): find minimum-size MIGs with
// the SAT-encoded decision ladder, and reconstruct the paper's Fig. 2 —
// the optimal 7-gate MIG of the hardest 4-variable NPN class, the
// symmetric function S0,2.
//
//	go run ./examples/exactsynth
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"mighash"
)

func main() {
	// Live exact synthesis of the 3-input XOR: the ladder proves that no
	// MIG with fewer than 3 majority gates computes it.
	xor3 := mighash.NewTT(3, 0x96)
	start := time.Now()
	m, err := mighash.ExactMinimum(context.Background(), xor3, mighash.ExactOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("xor3 = %v: minimum MIG has %d gates, depth %d (%v)\n",
		xor3, m.Size(), m.Depth(), time.Since(start).Round(time.Millisecond))

	// S0,2(x1..x4) — true iff zero or two inputs are true — is the single
	// most expensive class (Table I: 7 gates). Re-deriving that by SAT
	// takes minutes, so the embedded database (computed once by cmd/migdb
	// with the same engine) is the natural source.
	var s02 uint64
	for j := uint(0); j < 16; j++ {
		pc := j&1 + j>>1&1 + j>>2&1 + j>>3&1
		if pc == 0 || pc == 2 {
			s02 |= 1 << j
		}
	}
	f := mighash.NewTT(4, s02)
	db, err := mighash.LoadDatabase()
	if err != nil {
		log.Fatal(err)
	}
	fig2 := mighash.NewMIG(4)
	leaves := []mighash.Lit{fig2.Input(0), fig2.Input(1), fig2.Input(2), fig2.Input(3)}
	out, ok := db.Build(fig2, f, leaves)
	if !ok {
		log.Fatal("S0,2 missing from the database")
	}
	fig2.AddOutput(out)
	if fig2.Simulate()[0] != f {
		log.Fatal("database entry does not compute S0,2")
	}
	fmt.Printf("S0,2 = %v: optimal MIG has %d gates, depth %d (Fig. 2)\n",
		f, fig2.Size(), fig2.Depth())
	fmt.Println("\nDOT of the Fig. 2 structure:")
	if err := fig2.WriteDOT(os.Stdout, "s02"); err != nil {
		log.Fatal(err)
	}

	// The Theorem 2 bound, constructively: any 6-variable function fits
	// in 10·(2^2−1)+7 = 37 gates.
	g := mighash.NewTT(6, 0xFEDCBA9876543210)
	upper, err := db.SynthesizeUpper(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTheorem 2: built a %d-gate MIG for a 6-variable function (bound %d)\n",
		upper.Size(), mighash.TheoremBound(6))
}
