// Fig. 1 as a word-level construction: a 64-bit ripple-carry adder built
// from the full-adder gadget, flattened by algebraic depth optimization
// and verified against machine arithmetic.
//
//	go run ./examples/fulladder
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mighash"
)

func main() {
	const w = 64
	b := mighash.NewCircuitBuilder(2 * w)
	x := b.Inputs(0, w)
	y := b.Inputs(w, w)
	sum, cout := b.Add(x, y, mighash.Const0)
	b.Outputs(sum)
	b.M.AddOutput(cout)
	m := b.M
	fmt.Printf("ripple-carry adder: %v\n", m.Stats())

	// The depth optimizer rediscovers a carry-lookahead-like structure —
	// the transformation highlighted in the paper's introduction.
	flat, st := mighash.OptimizeDepth(m, mighash.DepthOptions{SizeFactor: 8, MaxPasses: 40})
	fmt.Printf("depth-optimized:    %v\n", st)

	// Validate both against uint64 arithmetic on random operands.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 1000; trial++ {
		a, c := rng.Uint64(), rng.Uint64()
		in := make([]bool, 2*w)
		for i := 0; i < w; i++ {
			in[i] = a>>uint(i)&1 == 1
			in[w+i] = c>>uint(i)&1 == 1
		}
		want, carry := a+c, a+c < a
		for _, g := range []*mighash.MIG{m, flat} {
			out := g.EvalBits(in)
			var got uint64
			for i := 0; i < w; i++ {
				if out[i] {
					got |= 1 << uint(i)
				}
			}
			if got != want || out[w] != carry {
				log.Fatalf("trial %d: %d+%d = %d carry %v, circuit says %d carry %v",
					trial, a, c, want, carry, got, out[w])
			}
		}
	}
	fmt.Println("1000 random additions verified on both structures")
}
