// Arithmetic workload (Sec. V of the paper, one Table III row): generate
// the 64×64 multiplier, depth-optimize it into a "best result" starting
// point, then compare all five functional-hashing variants on it.
//
//	go run ./examples/arith [benchmark]
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"mighash"
)

func main() {
	name := "Multiplier"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	spec, ok := mighash.BenchmarkByName(name)
	if !ok {
		log.Fatalf("unknown benchmark %q (try Adder, Divisor, Log2, Max, Multiplier, Sine, Square-root, Square)", name)
	}
	m := spec.Build()
	fmt.Printf("%s (%d/%d): generated %v\n", spec.Name, spec.NumPIs, spec.NumPOs, m.Stats())

	// Emulate the paper's heavily optimized starting points: aggressive
	// algebraic depth optimization, as in the flows behind the EPFL best
	// results.
	start, dst := mighash.OptimizeDepth(m, mighash.DepthOptions{SizeFactor: 8, MaxPasses: 40})
	fmt.Printf("starting point: %v\n", dst)

	variants := []struct {
		name string
		opt  mighash.RewriteOptions
	}{
		{"TF", mighash.VariantTF}, {"T", mighash.VariantT},
		{"TFD", mighash.VariantTFD}, {"TD", mighash.VariantTD},
		{"BF", mighash.VariantBF},
	}
	db, err := mighash.LoadDatabase()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-5s %10s %8s %10s %10s\n", "var", "size", "depth", "size ratio", "runtime")
	for _, v := range variants {
		opt, st := mighash.Optimize(start, db, v.opt)
		fmt.Printf("%-5s %10d %8d %10.3f %10s\n", v.name, st.SizeAfter, st.DepthAfter,
			float64(st.SizeAfter)/float64(st.SizeBefore), st.Elapsed.Round(1000000))
		verify(start, opt, spec.NumPIs, v.name)
	}
}

// verify compares the optimized graph against the starting point on
// random vectors (SAT CEC over a 64×64 multiplier is intractable; the
// library's rewrite tests prove equivalence exhaustively on small
// graphs).
func verify(a, b *mighash.MIG, pis int, name string) {
	rng := rand.New(rand.NewSource(1))
	for v := 0; v < 4; v++ {
		in := make([]bool, pis)
		for i := range in {
			in[i] = rng.Intn(2) == 1
		}
		x, y := a.EvalBits(in), b.EvalBits(in)
		for i := range x {
			if x[i] != y[i] {
				log.Fatalf("%s: output %d differs on random vector %d", name, i, v)
			}
		}
	}
}
