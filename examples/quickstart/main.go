// Quickstart: build the paper's Fig. 1 full adder as an MIG, inspect it,
// optimize it with functional hashing and prove the result equivalent.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"mighash"
)

func main() {
	// A full adder: sum = a ⊕ b ⊕ cin, cout = 〈a b cin〉. The MIG needs
	// just three majority gates (Fig. 1 of the paper).
	m := mighash.NewMIG(3)
	a, b, cin := m.Input(0), m.Input(1), m.Input(2)
	cout := m.Maj(a, b, cin)
	sum := m.Maj(cout.Not(), cin, m.Maj(a, b, cin.Not()))
	m.AddOutput(sum)
	m.AddOutput(cout)
	fmt.Printf("full adder: %v\n", m.Stats())

	// Truth tables by exhaustive simulation: 3 inputs fit in one word.
	for i, f := range m.Simulate() {
		fmt.Printf("  output %d: %v\n", i, f)
	}

	// Functional hashing with the embedded optimal-MIG database. The
	// full adder is already minimum, so the pass must not grow it.
	db, err := mighash.LoadDatabase()
	if err != nil {
		log.Fatal(err)
	}
	opt, stats := mighash.Optimize(m, db, mighash.VariantBF)
	fmt.Printf("after functional hashing: %v\n", stats)

	// Equivalence is checked with the built-in SAT solver.
	eq, ce, err := mighash.Equivalent(m, opt, 0)
	if err != nil {
		log.Fatal(err)
	}
	if !eq {
		log.Fatalf("optimizer broke the adder: %v", ce)
	}
	fmt.Println("SAT equivalence check passed")

	// Render the structure for graphviz.
	fmt.Println("\nDOT of the full adder (pipe into `dot -Tsvg`):")
	if err := m.WriteDOT(os.Stdout, "full_adder"); err != nil {
		log.Fatal(err)
	}
}
