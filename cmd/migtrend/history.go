package main

import (
	"fmt"
	"io"
	"log"
	"path/filepath"
	"strings"
	"time"

	"mighash/internal/qor"
)

// recordsFromArtifact extracts trend-store records from one parsed
// migpipe artifact. Modern artifacts carry them verbatim in the qor
// field; older ones are synthesized from the results block with a run ID
// derived from the file name, so pre-qor BENCH_*.json blobs still enter
// the durable history (with zero provenance rather than none at all).
func recordsFromArtifact(file string, rep report) []qor.Record {
	if len(rep.Qor) > 0 {
		return rep.Qor
	}
	run := rep.Run
	if run == "" {
		run = strings.TrimSuffix(filepath.Base(file), ".json")
	}
	var recs []qor.Record
	for _, r := range rep.Results {
		if r.Error != "" {
			continue
		}
		recs = append(recs, qor.Record{
			Schema:     qor.SchemaVersion,
			Run:        run,
			Circuit:    r.Name,
			Script:     rep.Script,
			Gates:      r.Stats.SizeAfter,
			Depth:      r.Stats.DepthAfter,
			Runtime:    r.Stats.Elapsed,
			Provenance: rep.Provenance,
		})
	}
	return recs
}

// runHistory is the -history flow: fold the artifacts' records into the
// durable store at <dir>/qor.jsonl (append-only, deduplicated against
// what is already there), render the multi-run trajectory, and — with
// -gate — compare the newest run against its predecessor, returning a
// nonzero exit code on regression.
func runHistory(w io.Writer, dir string, cols []column, gate bool, opt qor.GateOptions) int {
	path := filepath.Join(dir, qor.HistoryFile)
	existing, stats, err := qor.ReadFile(path)
	if err != nil {
		log.Printf("reading %s: %v", path, err)
		return 1
	}
	if stats.Skipped > 0 {
		log.Printf("%s: skipped %d unreadable line(s)", path, stats.Skipped)
	}
	type key struct{ run, circuit, script string }
	have := map[key]bool{}
	for _, r := range existing {
		have[key{r.Run, r.Circuit, r.Script}] = true
	}
	var fresh []qor.Record
	for _, c := range cols {
		for _, r := range recordsFromArtifact(c.file, c.rep) {
			k := key{r.Run, r.Circuit, r.Script}
			if have[k] {
				continue
			}
			have[k] = true
			fresh = append(fresh, r)
		}
	}
	if err := qor.AppendFile(path, fresh); err != nil {
		log.Printf("appending %s: %v", path, err)
		return 1
	}
	runs := qor.GroupRuns(append(existing, fresh...))
	if len(runs) == 0 {
		log.Print("history is empty: nothing to render or gate")
		return 1
	}
	renderHistory(w, runs)
	if !gate {
		return 0
	}
	cur := runs[len(runs)-1]
	base, ok := baselineFor(runs, cur)
	if !ok {
		fmt.Fprintf(w, "\nQoR gate: no baseline run for %s yet — gate passes vacuously.\n", cur.Label())
		return 0
	}
	rep := qor.Compare(base.Records, cur.Records, opt)
	fmt.Fprintln(w)
	rep.WriteTable(w)
	if rep.Regressed {
		return 1
	}
	return 0
}

// baselineFor picks the gate baseline for the newest run: the most
// recent earlier run of the same script. Mixed-script runs fall back to
// the immediately preceding run — Compare pairs by (circuit, script), so
// a script mismatch degrades to "no overlap", never a bogus verdict.
func baselineFor(runs []qor.Run, cur qor.Run) (qor.Run, bool) {
	for i := len(runs) - 2; i >= 0; i-- {
		if cur.Script == "" || runs[i].Script == cur.Script {
			return runs[i], true
		}
	}
	return qor.Run{}, false
}

// renderHistory writes the multi-run trajectory: one row per
// (circuit, script), one column per run (newest last, capped at the
// most recent runs so the table stays readable as history accretes),
// each cell gates/depth with the gate delta against the previous
// displayed run when it changed.
func renderHistory(w io.Writer, runs []qor.Run) {
	const maxCols = 8
	total := len(runs)
	if len(runs) > maxCols {
		runs = runs[len(runs)-maxCols:]
	}
	type key struct{ circuit, script string }
	var order []key
	seen := map[key]bool{}
	scripts := map[string]map[string]bool{} // circuit -> scripts seen
	cells := make([]map[key]qor.Record, len(runs))
	for i, run := range runs {
		cells[i] = map[key]qor.Record{}
		for _, r := range run.Records {
			k := key{r.Circuit, r.Script}
			if !seen[k] {
				seen[k] = true
				order = append(order, k)
				if scripts[r.Circuit] == nil {
					scripts[r.Circuit] = map[string]bool{}
				}
				scripts[r.Circuit][r.Script] = true
			}
			cells[i][k] = r
		}
	}
	fmt.Fprintf(w, "### QoR history (%d of %d runs, gates/depth)\n\n", len(runs), total)
	fmt.Fprint(w, "| circuit |")
	for _, run := range runs {
		fmt.Fprintf(w, " %s |", run.Label())
	}
	fmt.Fprintln(w)
	fmt.Fprint(w, "|---|")
	for range runs {
		fmt.Fprint(w, "---:|")
	}
	fmt.Fprintln(w)
	for _, k := range order {
		label := k.circuit
		if len(scripts[k.circuit]) > 1 {
			label = fmt.Sprintf("%s (%s)", k.circuit, k.script)
		}
		fmt.Fprintf(w, "| %s |", label)
		for i := range runs {
			rec, ok := cells[i][k]
			if !ok {
				fmt.Fprint(w, " – |")
				continue
			}
			cell := fmt.Sprintf("%d/%d", rec.Gates, rec.Depth)
			if prev, ok := prevCell(cells, i, k); ok && prev.Gates != rec.Gates {
				cell += fmt.Sprintf(" (%+d)", rec.Gates-prev.Gates)
			}
			fmt.Fprintf(w, " %s |", cell)
		}
		fmt.Fprintln(w)
	}
	// The totals row covers only keys present in every displayed run —
	// summing a run that lost a circuit as-is would fake an improvement.
	common := make([]key, 0, len(order))
	for _, k := range order {
		everywhere := true
		for i := range runs {
			if _, ok := cells[i][k]; !ok {
				everywhere = false
				break
			}
		}
		if everywhere {
			common = append(common, k)
		}
	}
	if len(common) > 0 {
		fmt.Fprint(w, "| **total gates** |")
		prevSum := 0
		for i := range runs {
			sum := 0
			for _, k := range common {
				sum += cells[i][k].Gates
			}
			cell := fmt.Sprintf("**%d**", sum)
			if i > 0 && sum != prevSum {
				cell += fmt.Sprintf(" (%+d)", sum-prevSum)
			}
			prevSum = sum
			fmt.Fprintf(w, " %s |", cell)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
	if len(common) < len(order) {
		fmt.Fprintf(w, "Totals cover the %d of %d circuit rows present in every displayed run.\n\n",
			len(common), len(order))
	}
	for i, run := range runs {
		var rt time.Duration
		for _, r := range run.Records {
			rt += r.Runtime
		}
		fmt.Fprintf(w, "- **%s**: %d circuits, total runtime %v — %s\n",
			run.Label(), len(cells[i]), rt.Round(time.Millisecond), run.Records[0].Provenance.Describe())
	}
}

// prevCell finds the key's record in the nearest earlier displayed run,
// so deltas survive a run that skipped the circuit.
func prevCell[K comparable](cells []map[K]qor.Record, i int, k K) (qor.Record, bool) {
	for j := i - 1; j >= 0; j-- {
		if rec, ok := cells[j][k]; ok {
			return rec, true
		}
	}
	return qor.Record{}, false
}
