// Command migtrend merges migpipe -json artifacts into one markdown
// size/depth/runtime trajectory table, so the per-PR BENCH_*.json files
// the CI uploads become a readable history instead of a pile of blobs
// (the ROADMAP's "plot the trajectories" item).
//
// Usage:
//
//	migtrend BENCH_rewrite.json BENCH_npn5.json   # table on stdout
//	migtrend -label resyn=BENCH_a.json -label resyn5=BENCH_b.json
//	go run ./cmd/migtrend BENCH_*.json >> "$GITHUB_STEP_SUMMARY"
//
// Each artifact contributes one column group (size/depth per circuit);
// labels default to the artifact's script name, deduplicated by file
// name. Files that do not parse as migpipe reports are skipped with a
// warning so a mixed artifact directory can be globbed wholesale.
//
// With -history <dir> the tool maintains the durable QoR trend store
// instead: artifact records are appended to <dir>/qor.jsonl and the
// multi-run trajectory (with deltas) is rendered from the full store.
// Adding -gate compares the newest run against its predecessor and
// exits nonzero with a verdict table on regression — the CI's hard QoR
// gate:
//
//	migtrend -history qor-history BENCH_resyn.json           # append + render
//	migtrend -history qor-history -gate BENCH_resyn.json     # append + gate
//	migtrend -history qor-history -gate -runtime-tolerance 1.0 BENCH_*.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"mighash/internal/qor"
)

// report mirrors the subset of migpipe's -json output migtrend needs;
// unknown fields are ignored, so the tool reads old artifacts too.
type report struct {
	Script  string        `json:"script"`
	Jobs    int           `json:"jobs"`
	Elapsed time.Duration `json:"elapsed_ns"`
	// Run/Provenance/Qor are the trend-store block modern migpipe builds
	// emit; absent in older artifacts, whose records are synthesized from
	// Results instead (see recordsFromArtifact).
	Run        string         `json:"run"`
	Provenance qor.Provenance `json:"provenance"`
	Qor        []qor.Record   `json:"qor"`
	Results    []struct {
		Name  string `json:"name"`
		Error string `json:"error"`
		Stats struct {
			SizeBefore  int           `json:"size_before"`
			SizeAfter   int           `json:"size_after"`
			DepthBefore int           `json:"depth_before"`
			DepthAfter  int           `json:"depth_after"`
			Elapsed     time.Duration `json:"elapsed_ns"`
			Passes      []struct {
				Name    string        `json:"name"`
				Elapsed time.Duration `json:"elapsed_ns"`
			} `json:"passes"`
		} `json:"stats"`
	} `json:"results"`
	Exact5Synths   int `json:"exact5_synths"`
	Exact5Entries  int `json:"exact5_entries"`
	Exact5Timeouts int `json:"exact5_timeouts"`
	ExtractChoices int `json:"extract_choices"`
	ExtractSaved   int `json:"extract_saved"`
	Verify         *struct {
		Mode               string        `json:"mode"`
		PassChecks         int64         `json:"pass_checks"`
		Patterns           int64         `json:"patterns"`
		PatternsPerSecond  float64       `json:"patterns_per_second"`
		Failures           int64         `json:"failures"`
		CalibrationRefuted int           `json:"calibration_refuted"`
		CalibrationTotal   int           `json:"calibration_total"`
		SimElapsed         time.Duration `json:"sim_elapsed_ns"`
		SATElapsed         time.Duration `json:"sat_elapsed_ns"`
		SATProofs          int           `json:"sat_proofs"`
	} `json:"verify"`
}

type column struct {
	label string
	file  string
	rep   report
}

type labelFlag []string

func (l *labelFlag) String() string     { return strings.Join(*l, ",") }
func (l *labelFlag) Set(v string) error { *l = append(*l, v); return nil }

func main() {
	log.SetFlags(0)
	log.SetPrefix("migtrend: ")
	var labels labelFlag
	flag.Var(&labels, "label", "name=file pair; repeatable (default: the artifact's script name)")
	historyDir := flag.String("history", "", "durable QoR store directory: append artifact records to <dir>/qor.jsonl and render the multi-run trajectory")
	gate := flag.Bool("gate", false, "with -history: gate the newest run against its predecessor, exit nonzero on regression")
	runtimeTol := flag.Float64("runtime-tolerance", 0.5, "allowed relative runtime growth before the gate fails (negative disables runtime gating)")
	runtimeFloor := flag.Duration("runtime-floor", 250*time.Millisecond, "absolute runtime growth a regression must also exceed")
	flag.Parse()

	// Every input path skips-and-warns rather than aborting: one corrupt
	// or schema-unknown blob in a globbed artifact directory must not
	// take down the whole trend render (or worse, the CI gate).
	var cols []column
	for _, lv := range labels {
		name, file, ok := strings.Cut(lv, "=")
		if !ok {
			log.Printf("skipping -label %q: want name=file", lv)
			continue
		}
		rep, err := readReport(file)
		if err != nil {
			log.Printf("skipping %s: %v", file, err)
			continue
		}
		cols = append(cols, column{label: name, file: file, rep: rep})
	}
	for _, file := range flag.Args() {
		rep, err := readReport(file)
		if err != nil {
			log.Printf("skipping %s: %v", file, err)
			continue
		}
		label := rep.Script
		if label == "" {
			label = strings.TrimSuffix(filepath.Base(file), ".json")
		}
		cols = append(cols, column{label: label, file: file, rep: rep})
	}
	if *gate && *historyDir == "" {
		log.Fatal("-gate requires -history <dir>")
	}
	if *historyDir != "" {
		opt := qor.GateOptions{RuntimeTolerance: *runtimeTol, RuntimeFloor: *runtimeFloor}
		os.Exit(runHistory(os.Stdout, *historyDir, cols, *gate, opt))
	}
	if len(cols) == 0 {
		log.Fatal("no readable artifacts (pass migpipe -json outputs)")
	}
	dedupeLabels(cols)
	render(os.Stdout, cols)
}

func readReport(path string) (report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return report{}, err
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return report{}, fmt.Errorf("%s: %v", path, err)
	}
	if len(rep.Results) == 0 {
		return report{}, fmt.Errorf("%s: no results (not a migpipe -json artifact?)", path)
	}
	return rep, nil
}

// dedupeLabels suffixes repeated labels so columns stay tell-apart-able
// when the same script was run twice (cold/warm pairs).
func dedupeLabels(cols []column) {
	seen := map[string]int{}
	for i := range cols {
		seen[cols[i].label]++
		if n := seen[cols[i].label]; n > 1 {
			cols[i].label = fmt.Sprintf("%s#%d", cols[i].label, n)
		}
	}
}

// render writes the markdown trajectory table: one row per circuit with
// each artifact's optimized size/depth, then totals and runtime rows.
func render(w *os.File, cols []column) {
	// Circuit order: first artifact wins, later ones append novelties.
	var order []string
	index := map[string]bool{}
	for _, c := range cols {
		for _, r := range c.rep.Results {
			if !index[r.Name] {
				index[r.Name] = true
				order = append(order, r.Name)
			}
		}
	}
	fmt.Fprintf(w, "### Optimization trajectory (%d artifacts)\n\n", len(cols))
	fmt.Fprint(w, "| circuit |")
	for _, c := range cols {
		fmt.Fprintf(w, " %s size |  depth |", c.label)
	}
	fmt.Fprintln(w)
	fmt.Fprint(w, "|---|")
	for range cols {
		fmt.Fprint(w, "---:|---:|")
	}
	fmt.Fprintln(w)
	for _, name := range order {
		fmt.Fprintf(w, "| %s |", name)
		for _, c := range cols {
			size, depth := "–", "–"
			for _, r := range c.rep.Results {
				if r.Name != name {
					continue
				}
				if r.Error != "" {
					size, depth = "err", "err"
				} else {
					size = fmt.Sprint(r.Stats.SizeAfter)
					depth = fmt.Sprint(r.Stats.DepthAfter)
				}
				break
			}
			fmt.Fprintf(w, " %s | %s |", size, depth)
		}
		fmt.Fprintln(w)
	}
	// Totals only cover circuits present and error-free in every column:
	// summing an errored or absent circuit as zero would render a broken
	// run as a huge apparent improvement.
	complete := map[string]bool{}
	for _, name := range order {
		ok := true
		for _, c := range cols {
			found := false
			for _, r := range c.rep.Results {
				if r.Name == name && r.Error == "" {
					found = true
					break
				}
			}
			if !found {
				ok = false
				break
			}
		}
		complete[name] = ok
	}
	nComplete := 0
	for _, name := range order {
		if complete[name] {
			nComplete++
		}
	}
	fmt.Fprint(w, "| **total** |")
	for _, c := range cols {
		size, depth := 0, 0
		for _, r := range c.rep.Results {
			if complete[r.Name] {
				size += r.Stats.SizeAfter
				depth += r.Stats.DepthAfter
			}
		}
		fmt.Fprintf(w, " **%d** | **%d** |", size, depth)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w)
	if nComplete < len(order) {
		fmt.Fprintf(w, "Totals cover the %d of %d circuits present and error-free in every artifact.\n\n",
			nComplete, len(order))
	}
	for _, c := range cols {
		fmt.Fprintf(w, "- **%s**: %d jobs in %v", c.label, c.rep.Jobs, c.rep.Elapsed.Round(time.Millisecond))
		if c.rep.Exact5Synths > 0 || c.rep.Exact5Entries > 0 {
			fmt.Fprintf(w, "; exact5: %d classes learned, %d ladders (%d budget-blown)",
				c.rep.Exact5Entries, c.rep.Exact5Synths, c.rep.Exact5Timeouts)
		}
		if c.rep.ExtractChoices > 0 {
			fmt.Fprintf(w, "; extract: %s choices, saved %d gates over greedy",
				humanCount(int64(c.rep.ExtractChoices)), c.rep.ExtractSaved)
		}
		if v := c.rep.Verify; v != nil {
			fmt.Fprintf(w, "; verify %s:", v.Mode)
			if v.PassChecks > 0 {
				fmt.Fprintf(w, " %d sim checks, %s patterns (%s/s), %d failures, calibration %d/%d in %v;",
					v.PassChecks, humanCount(v.Patterns), humanCount(int64(v.PatternsPerSecond)),
					v.Failures, v.CalibrationRefuted, v.CalibrationTotal, v.SimElapsed.Round(time.Millisecond))
			}
			if v.SATProofs > 0 || v.SATElapsed > 0 {
				fmt.Fprintf(w, " %d SAT proofs in %v", v.SATProofs, v.SATElapsed.Round(time.Millisecond))
			}
		}
		fmt.Fprintln(w)
	}
	renderPassTotals(w, cols)
}

// humanCount renders a counter with a k/M suffix so the verify bullet
// stays one readable line at CI pattern volumes.
func humanCount(n int64) string {
	switch {
	case n >= 1_000_000:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 10_000:
		return fmt.Sprintf("%.0fk", float64(n)/1e3)
	default:
		return fmt.Sprint(n)
	}
}

// renderPassTotals answers "where did the time go": per-pass wall-clock
// totals summed across every circuit, one column per artifact, with the
// share of that artifact's summed pass time. Artifacts written before
// migpipe recorded per-pass stats simply contribute dashes, so the
// section degrades gracefully on mixed artifact directories.
func renderPassTotals(w *os.File, cols []column) {
	// Pass order: first artifact wins, later ones append novelties —
	// same convention as the circuit rows above.
	var order []string
	index := map[string]bool{}
	totals := make([]map[string]time.Duration, len(cols))
	sums := make([]time.Duration, len(cols))
	any := false
	for i, c := range cols {
		totals[i] = map[string]time.Duration{}
		for _, r := range c.rep.Results {
			for _, p := range r.Stats.Passes {
				if !index[p.Name] {
					index[p.Name] = true
					order = append(order, p.Name)
				}
				totals[i][p.Name] += p.Elapsed
				sums[i] += p.Elapsed
				any = true
			}
		}
	}
	if !any {
		return
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "### Where the time went")
	fmt.Fprintln(w)
	fmt.Fprint(w, "| pass |")
	for _, c := range cols {
		fmt.Fprintf(w, " %s | share |", c.label)
	}
	fmt.Fprintln(w)
	fmt.Fprint(w, "|---|")
	for range cols {
		fmt.Fprint(w, "---:|---:|")
	}
	fmt.Fprintln(w)
	for _, name := range order {
		fmt.Fprintf(w, "| %s |", name)
		for i := range cols {
			d, ok := totals[i][name]
			if !ok {
				fmt.Fprint(w, " – | – |")
				continue
			}
			share := 0.0
			if sums[i] > 0 {
				share = 100 * float64(d) / float64(sums[i])
			}
			fmt.Fprintf(w, " %v | %.1f%% |", d.Round(time.Millisecond), share)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprint(w, "| **total** |")
	for i := range cols {
		if len(totals[i]) == 0 {
			fmt.Fprint(w, " – | – |")
			continue
		}
		fmt.Fprintf(w, " **%v** | 100%% |", sums[i].Round(time.Millisecond))
	}
	fmt.Fprintln(w)
}
