package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mighash/internal/qor"
)

// TestMain doubles as the re-exec shim: tests below exec the test
// binary with MIGTREND_RUN_MAIN=1 to run the real main() in a child
// process, so exit codes — the gate's contract with CI — are pinned
// for real instead of simulated.
func TestMain(m *testing.M) {
	if os.Getenv("MIGTREND_RUN_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func runTrend(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "MIGTREND_RUN_MAIN=1")
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	err := cmd.Run()
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("exec %v: %v", args, err)
	}
	return out.String(), errb.String(), code
}

func qrec(run, circuit, script string, gates, depth int, rt time.Duration, at time.Time) qor.Record {
	return qor.Record{
		Schema: qor.SchemaVersion, Run: run, Circuit: circuit, Script: script,
		Gates: gates, Depth: depth, Runtime: rt,
		Provenance: qor.Provenance{Time: at, OS: "linux", Arch: "amd64", GOMAXPROCS: 2},
	}
}

// historyDir materializes a two-run synthetic store: a baseline and a
// current run whose Adder gate count is the parameter.
func historyDir(t *testing.T, curAdderGates int) string {
	t.Helper()
	dir := t.TempDir()
	t0 := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	recs := []qor.Record{
		qrec("base", "Adder", "resyn", 100, 10, time.Second, t0),
		qrec("base", "Max", "resyn", 200, 20, 2*time.Second, t0),
		qrec("cur", "Adder", "resyn", curAdderGates, 10, time.Second, t0.Add(time.Hour)),
		qrec("cur", "Max", "resyn", 200, 20, 2*time.Second, t0.Add(time.Hour)),
	}
	if err := qor.AppendFile(filepath.Join(dir, qor.HistoryFile), recs); err != nil {
		t.Fatal(err)
	}
	return dir
}

// The acceptance-criteria test: -gate on a clean history exits 0, on a
// history with an injected +1-gate regression exits nonzero, both with
// a readable verdict table.
func TestGateExitCodes(t *testing.T) {
	out, stderr, code := runTrend(t, "-history", historyDir(t, 100), "-gate")
	if code != 0 {
		t.Fatalf("clean history gate exit = %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(out, "QoR gate: PASS") {
		t.Errorf("clean gate output missing PASS verdict:\n%s", out)
	}

	out, _, code = runTrend(t, "-history", historyDir(t, 101), "-gate")
	if code == 0 {
		t.Fatal("a +1-gate regression exited 0")
	}
	for _, want := range []string{"QoR gate: FAIL", "Adder", "REGRESSED", "+1"} {
		if !strings.Contains(out, want) {
			t.Errorf("regressed gate output missing %q:\n%s", want, out)
		}
	}
}

func TestGateNoBaseline(t *testing.T) {
	dir := t.TempDir()
	t0 := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	err := qor.AppendFile(filepath.Join(dir, qor.HistoryFile), []qor.Record{
		qrec("only", "Adder", "resyn", 100, 10, time.Second, t0),
	})
	if err != nil {
		t.Fatal(err)
	}
	out, stderr, code := runTrend(t, "-history", dir, "-gate")
	if code != 0 {
		t.Fatalf("single-run gate exit = %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(out, "vacuously") {
		t.Errorf("no-baseline gate output:\n%s", out)
	}
}

func TestGateRuntimeToleranceFlag(t *testing.T) {
	mk := func(curRuntime time.Duration) string {
		dir := t.TempDir()
		t0 := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
		err := qor.AppendFile(filepath.Join(dir, qor.HistoryFile), []qor.Record{
			qrec("base", "Adder", "resyn", 100, 10, 10*time.Second, t0),
			qrec("cur", "Adder", "resyn", 100, 10, curRuntime, t0.Add(time.Hour)),
		})
		if err != nil {
			t.Fatal(err)
		}
		return dir
	}
	// +40% is inside the default 50% tolerance…
	if _, _, code := runTrend(t, "-history", mk(14*time.Second), "-gate"); code != 0 {
		t.Error("+40% runtime failed the default 50% tolerance gate")
	}
	// …but outside a tightened one.
	if _, _, code := runTrend(t, "-history", mk(14*time.Second), "-gate", "-runtime-tolerance", "0.2"); code == 0 {
		t.Error("+40% runtime passed a 20% tolerance gate")
	}
	// And a disabled runtime gate never fails on runtime alone.
	if _, _, code := runTrend(t, "-history", mk(time.Hour), "-gate", "-runtime-tolerance", "-1"); code != 0 {
		t.Error("runtime gated with -runtime-tolerance -1")
	}
}

// writeArtifact writes a minimal migpipe -json artifact to dir.
func writeArtifact(t *testing.T, dir, name string, art map[string]any) string {
	t.Helper()
	raw, err := json.Marshal(art)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestHistoryIngestsArtifactsAndDedupes(t *testing.T) {
	dir := t.TempDir()
	hist := filepath.Join(dir, "history")
	t0 := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	art := writeArtifact(t, dir, "BENCH_resyn.json", map[string]any{
		"script": "resyn",
		"run":    "r1",
		"results": []map[string]any{
			{"name": "Adder", "stats": map[string]any{"size_after": 100, "depth_after": 10}},
		},
		"qor": []qor.Record{qrec("r1", "Adder", "resyn", 100, 10, time.Second, t0)},
	})
	if out, stderr, code := runTrend(t, "-history", hist, art); code != 0 {
		t.Fatalf("history append exit = %d\nstdout: %s\nstderr: %s", code, out, stderr)
	}
	recs, _, err := qor.ReadFile(filepath.Join(hist, qor.HistoryFile))
	if err != nil || len(recs) != 1 {
		t.Fatalf("store after first append: %d records, err %v", len(recs), err)
	}
	// Feeding the same artifact again must not duplicate its records —
	// the CI re-downloads the artifact chain on every run.
	if _, _, code := runTrend(t, "-history", hist, art); code != 0 {
		t.Fatal("second append failed")
	}
	recs, _, err = qor.ReadFile(filepath.Join(hist, qor.HistoryFile))
	if err != nil || len(recs) != 1 {
		t.Fatalf("store after re-append: %d records, err %v (dedupe broken)", len(recs), err)
	}
}

func TestHistorySynthesizesLegacyArtifacts(t *testing.T) {
	dir := t.TempDir()
	hist := filepath.Join(dir, "history")
	// A pre-qor artifact: results only, no run/provenance/qor block.
	art := writeArtifact(t, dir, "BENCH_old.json", map[string]any{
		"script": "size",
		"results": []map[string]any{
			{"name": "Adder", "stats": map[string]any{"size_after": 90, "depth_after": 9}},
			{"name": "Broken", "error": "boom"},
		},
	})
	out, stderr, code := runTrend(t, "-history", hist, art)
	if code != 0 {
		t.Fatalf("legacy append exit = %d, stderr: %s", code, stderr)
	}
	recs, _, err := qor.ReadFile(filepath.Join(hist, qor.HistoryFile))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Run != "BENCH_old" || recs[0].Gates != 90 || recs[0].Script != "size" {
		t.Errorf("synthesized records = %+v", recs)
	}
	if !strings.Contains(out, "QoR history") {
		t.Errorf("trajectory table missing:\n%s", out)
	}
}

func TestSkipAndWarnOnBadInputs(t *testing.T) {
	dir := t.TempDir()
	good := writeArtifact(t, dir, "BENCH_good.json", map[string]any{
		"script": "resyn",
		"results": []map[string]any{
			{"name": "Adder", "stats": map[string]any{"size_after": 100, "depth_after": 10}},
		},
	})
	garbage := filepath.Join(dir, "garbage.json")
	if err := os.WriteFile(garbage, []byte("not json at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	notAReport := writeArtifact(t, dir, "shapes.json", map[string]any{"unrelated": true})
	out, stderr, code := runTrend(t,
		"-label", "malformed-no-equals",
		"-label", "gone="+filepath.Join(dir, "missing.json"),
		good, garbage, notAReport)
	if code != 0 {
		t.Fatalf("exit = %d with one good artifact present, stderr: %s", code, stderr)
	}
	if !strings.Contains(out, "Adder") {
		t.Errorf("good artifact not rendered:\n%s", out)
	}
	if n := strings.Count(stderr, "skipping"); n != 4 {
		t.Errorf("skip warnings = %d, want 4:\n%s", n, stderr)
	}
}

func TestGateRequiresHistory(t *testing.T) {
	_, stderr, code := runTrend(t, "-gate")
	if code == 0 {
		t.Fatal("-gate without -history exited 0")
	}
	if !strings.Contains(stderr, "-history") {
		t.Errorf("stderr: %s", stderr)
	}
}

func TestRenderHistoryDeltas(t *testing.T) {
	t0 := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	runs := qor.GroupRuns([]qor.Record{
		qrec("r1", "Adder", "resyn", 100, 10, time.Second, t0),
		qrec("r1", "Max", "resyn", 200, 20, time.Second, t0),
		qrec("r2", "Adder", "resyn", 97, 10, time.Second, t0.Add(time.Hour)),
		qrec("r2", "Max", "resyn", 200, 20, time.Second, t0.Add(time.Hour)),
	})
	var sb strings.Builder
	renderHistory(&sb, runs)
	out := sb.String()
	for _, want := range []string{"QoR history (2 of 2 runs", "97/10 (-3)", "**300**", "**297** (-3)", "gomaxprocs=2"} {
		if !strings.Contains(out, want) {
			t.Errorf("history table missing %q:\n%s", want, out)
		}
	}
}
