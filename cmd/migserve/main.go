// Command migserve runs the HTTP optimization service: an HTTP (JSON)
// front end over the batch-optimization engine that accepts BENCH/MIG
// netlists, optimizes them with a named pass script, and returns the
// optimized netlists plus per-pass statistics.
//
// Usage:
//
//	migserve                          # listen on :8080
//	migserve -addr :9090 -concurrency 8 -sharedcache
//	migserve -max-body 4194304 -timeout 30s -max-timeout 2m
//	migserve -cache-file /var/lib/migserve/npn.cache -cache-snapshot 2m
//	migserve -trace-dir /tmp/traces -slow-log 2s   # per-request Chrome traces
//	migserve -pprof-addr localhost:6060            # pprof on a private listener
//
// With -cache-file the shared NPN cut-cache — and the on-demand 5-input
// exact-synthesis store behind the resyn5/size5/TF5… scripts — survives
// restarts: the snapshot is restored on startup (a corrupt file degrades
// to a cold cache with a logged error), re-written every -cache-snapshot
// interval, and drained to disk one final time during SIGTERM shutdown.
// -cache-limit bounds the cache with second-chance eviction, and
// -synth-conflicts/-synth-budget/-synth-gates bound each 5-input class's
// first-contact synthesis; request deadlines cancel in-flight ladders.
//
// The service degrades rather than dies: handler and per-job panics are
// caught, counted and answered with a 500 naming the request ID; every
// 503 (saturated pool or the admission-control watermark shedding
// requests that cannot meet their deadline) carries a Retry-After hint;
// and -breaker-failures arms a circuit breaker that pauses 5-input
// exact synthesis after that many consecutive failed ladders, resolving
// lookups as plain misses until -breaker-cooldown expires (results stay
// correct — only the optional 5-cut replacements pause). -fault arms
// named failpoints for chaos testing and must never reach production.
// The full failure-mode table is in ARCHITECTURE.md ("Failure modes &
// degraded states").
//
// Endpoints (see internal/server and the README's HTTP API section):
//
//	POST /v1/optimize        optimize one netlist
//	POST /v1/optimize/batch  optimize many netlists concurrently
//	GET  /v1/scripts         list available scripts
//	GET  /v1/stats           live per-preset QoR aggregates (JSON)
//	GET  /healthz            liveness probe
//	GET  /metrics            Prometheus-style counters
//
// Observability: every response carries a generated X-Request-ID, and
// /metrics always exposes duration histograms for requests, passes,
// exact-synthesis ladders and slot-pool waits. With -trace-dir each
// optimization request additionally writes a Chrome trace-event JSON
// named <request-id>.json (loadable in chrome://tracing or Perfetto);
// with -slow-log requests over the threshold emit one structured JSON
// log line. -pprof-addr serves net/http/pprof on a separate listener —
// keep it on localhost or behind a firewall; it is off by default and
// never shares the service port.
//
// The process shuts down gracefully on SIGINT/SIGTERM: in-flight requests
// get a drain window, new connections are refused immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mighash/internal/db"
	"mighash/internal/fault"
	"mighash/internal/server"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("migserve: ")
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		maxBody     = flag.Int64("max-body", 0, "request body byte cap (0 = 16 MiB default)")
		maxGates    = flag.Int("max-gates", 0, "parsed netlist gate cap (0 = default, <0 = unlimited)")
		timeout     = flag.Duration("timeout", 0, "default per-request optimization deadline (0 = 60s)")
		maxTimeout  = flag.Duration("max-timeout", 0, "cap on client-requested deadlines (0 = 5m)")
		concurrency = flag.Int("concurrency", 0, "optimization jobs in flight at once (0 = NumCPU)")
		maxWorkers  = flag.Int("max-workers", 0, "cap on per-request intra-graph workers (0 = 4)")
		shared      = flag.Bool("sharedcache", false, "share one NPN cut-cache across all requests")
		cacheFile   = flag.String("cache-file", "", "persist the shared cache to this snapshot file (implies -sharedcache)")
		cacheSnap   = flag.Duration("cache-snapshot", 0, "periodic cache snapshot interval (0 = 5m, <0 = shutdown-only)")
		cacheLimit  = flag.Int("cache-limit", 0, "bound on shared-cache entries, second-chance evicted (0 = unbounded)")
		synthConfl  = flag.Int64("synth-conflicts", 0, "per-class SAT conflict budget of 5-input exact synthesis (0 = default, <0 = unlimited)")
		synthTime   = flag.Duration("synth-budget", 0, "per-class wall-clock budget of 5-input exact synthesis (0 = none)")
		synthGates  = flag.Int("synth-gates", 0, "ladder cap of 5-input exact synthesis (0 = default)")
		synthLimit  = flag.Int("synth-limit", 0, "bound on learned 5-input classes, second-chance evicted (0 = unbounded)")
		brkFails    = flag.Int("breaker-failures", 0, "consecutive failed synthesis ladders that trip the exact5 circuit breaker (0 = breaker off)")
		brkCooldown = flag.Duration("breaker-cooldown", 0, "how long a tripped exact5 breaker stays open (0 = 30s default)")
		faultSpec   = flag.String("fault", "", "DEV ONLY: arm failpoints, e.g. 'db/snapshot-rename=return;server/shed=0.1*return' (see internal/fault)")
		drain       = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain window")
		traceDir    = flag.String("trace-dir", "", "write one Chrome trace-event JSON per optimization request into this directory")
		slowLog     = flag.Duration("slow-log", 0, "log a structured JSON line for optimization requests slower than this (0 = off)")
		pprofAddr   = flag.String("pprof-addr", "", "serve net/http/pprof on this separate listener (empty = off; keep it private)")
	)
	flag.Parse()

	if *faultSpec != "" {
		if err := fault.EnableSpec(*faultSpec); err != nil {
			log.Fatalf("-fault: %v", err)
		}
		log.Printf("WARNING: fault injection armed (-fault %q) — this process will deliberately fail; never use in production", *faultSpec)
	}
	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			log.Fatalf("creating trace directory: %v", err)
		}
	}
	srv, err := server.New(server.Config{
		MaxBodyBytes:          *maxBody,
		MaxGates:              *maxGates,
		DefaultTimeout:        *timeout,
		MaxTimeout:            *maxTimeout,
		MaxConcurrent:         *concurrency,
		MaxWorkersPerRequest:  *maxWorkers,
		SharedCache:           *shared,
		CacheFile:             *cacheFile,
		CacheSnapshotInterval: *cacheSnap,
		CacheLimit:            *cacheLimit,
		Synth5: db.OnDemandOptions{
			MaxConflicts:    *synthConfl,
			Timeout:         *synthTime,
			MaxGates:        *synthGates,
			Limit:           *synthLimit,
			BreakerFailures: *brkFails,
			BreakerCooldown: *brkCooldown,
		},
		TraceDir:    *traceDir,
		SlowRequest: *slowLog,
	})
	if err != nil {
		log.Fatal(err)
	}

	if *pprofAddr != "" {
		// pprof gets its own listener and its own mux: the profiling
		// surface must never ride on the public service port, and the
		// explicit mux keeps anything else off DefaultServeMux from
		// leaking in. The listener is bound before serving starts so a
		// taken port fails loudly at startup, not silently at first use.
		pl, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			log.Fatalf("pprof listener: %v", err)
		}
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("pprof listening on %s", pl.Addr())
			if err := http.Serve(pl, pmux); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("pprof server: %v", err)
			}
		}()
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	// ListenAndServe returns the moment Shutdown begins, so main must
	// wait for the drain to finish before exiting or in-flight requests
	// die with the process.
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		log.Printf("shutting down (drain %v)", *drain)
		shCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := hs.Shutdown(shCtx); err != nil {
			log.Printf("forced shutdown: %v", err)
			hs.Close()
		}
	}()
	log.Printf("listening on %s", *addr)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-drained
	// After the HTTP drain the cache is quiescent: write the final
	// snapshot so the next process warm-starts from the full working set.
	if err := srv.Close(); err != nil {
		log.Printf("closing server: %v", err)
	}
}
