// Command migserve runs the HTTP optimization service: an HTTP (JSON)
// front end over the batch-optimization engine that accepts BENCH/MIG
// netlists, optimizes them with a named pass script, and returns the
// optimized netlists plus per-pass statistics.
//
// Usage:
//
//	migserve                          # listen on :8080
//	migserve -addr :9090 -concurrency 8 -sharedcache
//	migserve -max-body 4194304 -timeout 30s -max-timeout 2m
//	migserve -cache-file /var/lib/migserve/npn.cache -cache-snapshot 2m
//
// With -cache-file the shared NPN cut-cache — and the on-demand 5-input
// exact-synthesis store behind the resyn5/size5/TF5… scripts — survives
// restarts: the snapshot is restored on startup (a corrupt file degrades
// to a cold cache with a logged error), re-written every -cache-snapshot
// interval, and drained to disk one final time during SIGTERM shutdown.
// -cache-limit bounds the cache with second-chance eviction, and
// -synth-conflicts/-synth-budget/-synth-gates bound each 5-input class's
// first-contact synthesis; request deadlines cancel in-flight ladders.
//
// Endpoints (see internal/server and the README's HTTP API section):
//
//	POST /v1/optimize        optimize one netlist
//	POST /v1/optimize/batch  optimize many netlists concurrently
//	GET  /v1/scripts         list available scripts
//	GET  /healthz            liveness probe
//	GET  /metrics            Prometheus-style counters
//
// The process shuts down gracefully on SIGINT/SIGTERM: in-flight requests
// get a drain window, new connections are refused immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"mighash/internal/db"
	"mighash/internal/server"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("migserve: ")
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		maxBody     = flag.Int64("max-body", 0, "request body byte cap (0 = 16 MiB default)")
		maxGates    = flag.Int("max-gates", 0, "parsed netlist gate cap (0 = default, <0 = unlimited)")
		timeout     = flag.Duration("timeout", 0, "default per-request optimization deadline (0 = 60s)")
		maxTimeout  = flag.Duration("max-timeout", 0, "cap on client-requested deadlines (0 = 5m)")
		concurrency = flag.Int("concurrency", 0, "optimization jobs in flight at once (0 = NumCPU)")
		maxWorkers  = flag.Int("max-workers", 0, "cap on per-request intra-graph workers (0 = 4)")
		shared      = flag.Bool("sharedcache", false, "share one NPN cut-cache across all requests")
		cacheFile   = flag.String("cache-file", "", "persist the shared cache to this snapshot file (implies -sharedcache)")
		cacheSnap   = flag.Duration("cache-snapshot", 0, "periodic cache snapshot interval (0 = 5m, <0 = shutdown-only)")
		cacheLimit  = flag.Int("cache-limit", 0, "bound on shared-cache entries, second-chance evicted (0 = unbounded)")
		synthConfl  = flag.Int64("synth-conflicts", 0, "per-class SAT conflict budget of 5-input exact synthesis (0 = default, <0 = unlimited)")
		synthTime   = flag.Duration("synth-budget", 0, "per-class wall-clock budget of 5-input exact synthesis (0 = none)")
		synthGates  = flag.Int("synth-gates", 0, "ladder cap of 5-input exact synthesis (0 = default)")
		drain       = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain window")
	)
	flag.Parse()

	srv, err := server.New(server.Config{
		MaxBodyBytes:          *maxBody,
		MaxGates:              *maxGates,
		DefaultTimeout:        *timeout,
		MaxTimeout:            *maxTimeout,
		MaxConcurrent:         *concurrency,
		MaxWorkersPerRequest:  *maxWorkers,
		SharedCache:           *shared,
		CacheFile:             *cacheFile,
		CacheSnapshotInterval: *cacheSnap,
		CacheLimit:            *cacheLimit,
		Synth5: db.OnDemandOptions{
			MaxConflicts: *synthConfl,
			Timeout:      *synthTime,
			MaxGates:     *synthGates,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	// ListenAndServe returns the moment Shutdown begins, so main must
	// wait for the drain to finish before exiting or in-flight requests
	// die with the process.
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		log.Printf("shutting down (drain %v)", *drain)
		shCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := hs.Shutdown(shCtx); err != nil {
			log.Printf("forced shutdown: %v", err)
			hs.Close()
		}
	}()
	log.Printf("listening on %s", *addr)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-drained
	// After the HTTP drain the cache is quiescent: write the final
	// snapshot so the next process warm-starts from the full working set.
	if err := srv.Close(); err != nil {
		log.Printf("closing server: %v", err)
	}
}
