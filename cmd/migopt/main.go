// Command migopt optimizes an MIG with a functional-hashing variant. The
// input is either a generated benchmark (-bench) or an MIG text file
// (-in, format of internal/mig's WriteText). The optimized graph can be
// written back as text or DOT.
//
// Files ending in .bench are read and written in BENCH format (with the
// MAJ extension); anything else uses the internal text format.
//
// Optimization runs on the engine's pass pipelines: -variant selects a
// single-pass script, -script a composite one ("resyn", "size", "depth",
// "quick"), and -iters repeats the script up to a fixpoint.
//
// Usage:
//
//	migopt -bench Multiplier -variant BF
//	migopt -in circuit.bench -variant TFD -out optimized.bench
//	migopt -bench Sine -prepare -variant TF    # depth-optimize first
//	migopt -bench Sine -script resyn -iters 10 # interleaved, to convergence
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"mighash/internal/circuits"
	"mighash/internal/db"
	"mighash/internal/depthopt"
	"mighash/internal/engine"
	"mighash/internal/mig"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("migopt: ")
	var (
		bench   = flag.String("bench", "", "generated benchmark name (Adder, Divisor, Log2, Max, Multiplier, Sine, Square-root, Square)")
		in      = flag.String("in", "", "input MIG text file")
		variant = flag.String("variant", "BF", "functional-hashing variant: TF, T, TFD, TD or BF")
		script  = flag.String("script", "", "engine pass script (overrides -variant; see migpipe -scripts)")
		iters   = flag.Int("iters", 1, "max script iterations (runs to convergence when >1)")
		prepare = flag.Bool("prepare", false, "run the algebraic depth optimizer before hashing")
		out     = flag.String("out", "", "write the optimized MIG as text")
		dot     = flag.String("dot", "", "write the optimized MIG as DOT")
		verify  = flag.Bool("verify", true, "verify optimization by SAT equivalence checking")
	)
	flag.Parse()

	name := *script
	if name == "" {
		name = *variant
	}
	pipe, err := engine.Preset(name)
	if err != nil {
		log.Fatal(err)
	}
	pipe.MaxIterations = *iters
	var m *mig.MIG
	switch {
	case *bench != "" && *in != "":
		log.Fatal("use either -bench or -in, not both")
	case *bench != "":
		spec, ok := circuits.ByName(*bench)
		if !ok {
			log.Fatalf("unknown benchmark %q", *bench)
		}
		m = spec.Build()
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		var rerr error
		if strings.HasSuffix(*in, ".bench") {
			m, rerr = mig.ReadBENCH(f)
		} else {
			m, rerr = mig.ReadText(f)
		}
		f.Close()
		if rerr != nil {
			log.Fatal(rerr)
		}
	default:
		log.Fatal("no input: use -bench or -in")
	}
	fmt.Printf("input: %v\n", m.Stats())

	if *prepare {
		var st depthopt.Stats
		m, st = depthopt.Optimize(m, depthopt.Options{SizeFactor: 8, MaxPasses: 40})
		fmt.Printf("prepared: %v\n", st)
	}

	if pipe.DB, err = db.Load(); err != nil {
		log.Fatalf("embedded database unavailable (run cmd/migdb): %v", err)
	}
	res, st, err := pipe.Run(m)
	if err != nil {
		log.Fatal(err)
	}
	for _, ps := range st.Passes {
		fmt.Printf("  %v\n", ps)
	}
	fmt.Printf("optimized: %v\n", st)

	if *verify {
		eq, ce, err := mig.Equivalent(m, res, 0)
		if err != nil {
			log.Fatalf("equivalence check failed to run: %v", err)
		}
		if !eq {
			log.Fatalf("MISCOMPARE: optimized MIG differs, counterexample %v", ce)
		}
		fmt.Println("verified: optimized MIG is equivalent (SAT CEC)")
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		var werr error
		if strings.HasSuffix(*out, ".bench") {
			werr = res.WriteBENCH(f)
		} else {
			werr = res.WriteText(f)
		}
		if werr != nil {
			log.Fatal(werr)
		}
		f.Close()
	}
	if *dot != "" {
		f, err := os.Create(*dot)
		if err != nil {
			log.Fatal(err)
		}
		if err := res.WriteDOT(f, "optimized"); err != nil {
			log.Fatal(err)
		}
		f.Close()
	}
}
