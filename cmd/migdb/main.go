// Command migdb regenerates the functional-hashing database artifact:
// minimum MIGs for all 222 NPN classes of 4-variable functions, computed
// with the exact-synthesis engine (Sec. III of the paper) and written in
// the text format embedded by internal/db.
//
// Usage:
//
//	migdb [-o internal/db/data/npn4.txt] [-workers N] [-timeout D] [-v]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"mighash/internal/db"
	"mighash/internal/exact"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("migdb: ")
	var (
		out     = flag.String("o", "internal/db/data/npn4.txt", "output artifact path")
		workers = flag.Int("workers", 0, "parallel synthesis workers (0 = NumCPU)")
		timeout = flag.Duration("timeout", 0, "per-class synthesis timeout (0 = none)")
		verbose = flag.Bool("v", false, "log every synthesized class")
	)
	flag.Parse()

	start := time.Now()
	opt := exact.Options{Timeout: *timeout}
	d, err := db.Generate(opt, *workers, func(done, total int, e db.Entry) {
		if *verbose {
			log.Printf("[%3d/%d] %04x k=%d depth=%d (%v)", done, total, e.Rep.Bits, e.Size(), e.Depth, e.GenTime)
		} else if done%25 == 0 || done == total {
			log.Printf("%d/%d classes", done, total)
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	if err := d.Write(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}

	var total time.Duration
	maxK := 0
	for _, e := range d.Entries() {
		total += e.GenTime
		if e.Size() > maxK {
			maxK = e.Size()
		}
	}
	fmt.Printf("wrote %s: %d classes, max size %d, cpu %v, wall %v\n",
		*out, d.Len(), maxK, total.Round(time.Millisecond), time.Since(start).Round(time.Millisecond))
}
