// Command migexact synthesizes a minimum-size MIG for a Boolean function
// given as a truth-table constant (Sec. III of the paper).
//
// Usage:
//
//	migexact -n 4 -f 0x1669            # S0,2: takes a while, needs 7 gates
//	migexact -n 3 -f 0x96 -dot xor.dot # 3-input XOR
//	migexact -n 4 -f 0xCAFE -timeout 30s
//
// The truth table is read LSB-first: bit j of the constant is the value
// of f on the assignment with binary encoding j (x1 the least significant
// input).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"time"

	"mighash/internal/exact"
	"mighash/internal/tt"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("migexact: ")
	var (
		n       = flag.Int("n", 4, "number of input variables (1-6)")
		fstr    = flag.String("f", "", "truth table as a hex or decimal constant")
		timeout = flag.Duration("timeout", 0, "overall synthesis timeout (0 = none)")
		dot     = flag.String("dot", "", "write the minimum MIG as DOT")
	)
	flag.Parse()
	if *fstr == "" {
		log.Fatal("no function: use -f 0x<tt>")
	}
	bits, err := strconv.ParseUint(*fstr, 0, 64)
	if err != nil {
		log.Fatalf("bad truth table %q: %v", *fstr, err)
	}
	if *n < 1 || *n > tt.MaxVars {
		log.Fatalf("unsupported variable count %d", *n)
	}
	f := tt.New(*n, bits&tt.Mask(*n))

	start := time.Now()
	m, err := exact.Minimum(context.Background(), f, exact.Options{Timeout: *timeout})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("f = %v over %d variables\n", f, *n)
	fmt.Printf("minimum MIG: %d majority gates, depth %d (%v)\n",
		m.Size(), m.Depth(), time.Since(start).Round(time.Millisecond))
	if got := m.Simulate()[0]; got != f {
		log.Fatalf("internal error: synthesized %v", got)
	}
	if *dot != "" {
		w, err := os.Create(*dot)
		if err != nil {
			log.Fatal(err)
		}
		if err := m.WriteDOT(w, "exact"); err != nil {
			log.Fatal(err)
		}
		w.Close()
	}
	if err := m.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
