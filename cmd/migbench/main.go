// Command migbench regenerates the paper's experimental tables and
// figures (Sec. V) and prints them in the paper's layout.
//
// Usage:
//
//	migbench -table 1            # Table I (recorded synthesis times)
//	migbench -table 1 -live      # Table I, re-measuring exact synthesis
//	migbench -table 2            # Table II complexity distributions
//	migbench -table 3            # Table III functional hashing (size/depth)
//	migbench -table 4            # Table IV mapped area/depth
//	migbench -figures            # Figures 1 and 2 (stats + DOT)
//	migbench -thm2               # Theorem 2 constructive check
//	migbench -all                # everything
//
// -benchmarks restricts Tables III/IV to a comma-separated subset.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"mighash/internal/db"
	"mighash/internal/exact"
	"mighash/internal/exp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("migbench: ")
	var (
		table      = flag.Int("table", 0, "table to print (1-4)")
		figures    = flag.Bool("figures", false, "print Figures 1 and 2")
		thm2       = flag.Bool("thm2", false, "run the Theorem 2 check")
		aigcmp     = flag.Bool("aig", false, "compare optimal MIG vs AIG sizes over all 222 classes")
		converge   = flag.String("converge", "", "repeat BF on the named benchmark until fixpoint")
		aigTimeout = flag.Duration("aigtimeout", 10*time.Second, "per-class budget for -aig (0 = none)")
		all        = flag.Bool("all", false, "print everything")
		live       = flag.Bool("live", false, "re-measure Table I by re-running exact synthesis")
		workers    = flag.Int("workers", 0, "parallel workers for -live (0 = NumCPU)")
		benchmarks = flag.String("benchmarks", "", "comma-separated benchmark subset for Tables III/IV")
		nomap      = flag.Bool("nomap", false, "skip LUT mapping (Table III only)")
	)
	flag.Parse()
	if !*figures && !*thm2 && !*aigcmp && *converge == "" && !*all && *table == 0 {
		*all = true
	}

	d, err := db.Load()
	if err != nil {
		log.Fatalf("embedded database unavailable (run cmd/migdb): %v", err)
	}
	var names []string
	if *benchmarks != "" {
		names = strings.Split(*benchmarks, ",")
	}

	if *all || *table == 1 {
		fmt.Println("== Table I: optimal MIGs for all 4-variable NPN classes ==")
		rows := exp.TableI(d)
		if *live {
			fmt.Println("(re-measuring exact synthesis on this machine; this takes a while)")
			var err error
			rows, err = exp.TableILive(exact.Options{}, *workers)
			if err != nil {
				log.Fatal(err)
			}
		}
		fmt.Println(exp.FormatTableI(rows))
	}
	if *all || *table == 2 {
		fmt.Println("== Table II: complexity of 4-variable MIGs (C, L, D) ==")
		fmt.Println(exp.FormatTableII(exp.TableII(d)))
	}
	if *all || *thm2 {
		fmt.Println("== Theorem 2: C(n) ≤ 10·(2^(n−4)−1)+7, constructive ==")
		rows, err := exp.Theorem2(d, 200)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(exp.FormatTheorem2(rows))
	}
	if *all || *table == 3 || *table == 4 {
		withMap := !*nomap || *table == 4 || *all
		fmt.Println("== Tables III/IV workloads: generated EPFL-signature circuits ==")
		rows, err := exp.Arithmetic(d, names, withMap)
		if err != nil {
			log.Fatal(err)
		}
		if *all || *table == 3 {
			fmt.Println("== Table III: functional hashing (MIG size and depth) ==")
			fmt.Println(exp.FormatTableIII(rows))
		}
		if withMap && (*all || *table == 4) {
			fmt.Println("== Table IV: area and depth after technology mapping (6-LUT) ==")
			fmt.Println(exp.FormatTableIV(rows))
		}
	}
	if *converge != "" {
		fmt.Println("== Repeated functional hashing (Sec. V closing remark) ==")
		rows, err := exp.Converge(d, *converge, exp.Variants[4].Opt, 10)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(exp.FormatConverge(*converge, exp.Variants[4].Name, rows))
	}
	if *aigcmp {
		fmt.Println("== MIG vs AIG: optimal sizes per NPN class (C_MIG ≤ C_AIG everywhere) ==")
		rows, err := exp.AIGComparison(d, exact.Options{Timeout: *aigTimeout}, *workers)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(exp.FormatAIGComparison(rows))
	}
	if *all || *figures {
		m1, st1 := exp.Figure1()
		fmt.Printf("== Figure 1: full adder MIG (%v) ==\n", st1)
		m1.WriteDOT(os.Stdout, "fig1_full_adder")
		m2, st2, err := exp.Figure2(d)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== Figure 2: optimal MIG for S0,2 (%v) ==\n", st2)
		m2.WriteDOT(os.Stdout, "fig2_s02")
	}
}
