// Command migbench regenerates the paper's experimental tables and
// figures (Sec. V) and prints them in the paper's layout, or — with
// -json — as one machine-readable JSON document per run, suitable for
// capturing benchmark trajectories from CI.
//
// Usage:
//
//	migbench -table 1            # Table I (recorded synthesis times)
//	migbench -table 1 -live      # Table I, re-measuring exact synthesis
//	migbench -table 2            # Table II complexity distributions
//	migbench -table 3            # Table III functional hashing (size/depth)
//	migbench -table 4            # Table IV mapped area/depth
//	migbench -figures            # Figures 1 and 2 (stats + DOT)
//	migbench -thm2               # Theorem 2 constructive check
//	migbench -all                # everything
//	migbench -all -json          # everything, as JSON on stdout
//
// -benchmarks restricts Tables III/IV to a comma-separated subset.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"mighash/internal/db"
	"mighash/internal/exact"
	"mighash/internal/exp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("migbench: ")
	var (
		table      = flag.Int("table", 0, "table to print (1-4)")
		figures    = flag.Bool("figures", false, "print Figures 1 and 2")
		thm2       = flag.Bool("thm2", false, "run the Theorem 2 check")
		aigcmp     = flag.Bool("aig", false, "compare optimal MIG vs AIG sizes over all 222 classes")
		converge   = flag.String("converge", "", "repeat BF on the named benchmark until fixpoint")
		aigTimeout = flag.Duration("aigtimeout", 10*time.Second, "per-class budget for -aig (0 = none)")
		all        = flag.Bool("all", false, "print everything")
		live       = flag.Bool("live", false, "re-measure Table I by re-running exact synthesis")
		workers    = flag.Int("workers", 0, "parallel workers for -live (0 = NumCPU)")
		benchmarks = flag.String("benchmarks", "", "comma-separated benchmark subset for Tables III/IV")
		nomap      = flag.Bool("nomap", false, "skip LUT mapping (Table III only)")
		jsonOut    = flag.Bool("json", false, "emit one machine-readable JSON document instead of tables")
	)
	flag.Parse()
	if !*figures && !*thm2 && !*aigcmp && *converge == "" && !*all && *table == 0 {
		*all = true
	}

	d, err := db.Load()
	if err != nil {
		log.Fatalf("embedded database unavailable (run cmd/migdb): %v", err)
	}
	var names []string
	if *benchmarks != "" {
		names = strings.Split(*benchmarks, ",")
	}

	// With -json, every requested section is collected here and emitted
	// as one document at the end instead of the paper-layout tables.
	report := map[string]any{}
	// format is deferred so -json runs never pay for table rendering.
	section := func(key string, v any, heading string, format func() string) {
		if *jsonOut {
			report[key] = v
			return
		}
		fmt.Println(heading)
		fmt.Println(format())
	}

	if *all || *table == 1 {
		rows := exp.TableI(d)
		if *live {
			if !*jsonOut {
				fmt.Println("(re-measuring exact synthesis on this machine; this takes a while)")
			}
			var err error
			rows, err = exp.TableILive(exact.Options{}, *workers)
			if err != nil {
				log.Fatal(err)
			}
		}
		section("table1", rows,
			"== Table I: optimal MIGs for all 4-variable NPN classes ==",
			func() string { return exp.FormatTableI(rows) })
	}
	if *all || *table == 2 {
		rows := exp.TableII(d)
		section("table2", rows,
			"== Table II: complexity of 4-variable MIGs (C, L, D) ==",
			func() string { return exp.FormatTableII(rows) })
	}
	if *all || *thm2 {
		rows, err := exp.Theorem2(d, 200)
		if err != nil {
			log.Fatal(err)
		}
		section("theorem2", rows,
			"== Theorem 2: C(n) ≤ 10·(2^(n−4)−1)+7, constructive ==",
			func() string { return exp.FormatTheorem2(rows) })
	}
	if *all || *table == 3 || *table == 4 {
		withMap := !*nomap || *table == 4 || *all
		rows, err := exp.Arithmetic(d, names, withMap)
		if err != nil {
			log.Fatal(err)
		}
		if *jsonOut {
			// One BenchRow slice backs both tables (Table IV's area/depth
			// columns are fields of the same rows), so it is stored once.
			report["arithmetic"] = rows
		} else {
			fmt.Println("== Tables III/IV workloads: generated EPFL-signature circuits ==")
			if *all || *table == 3 {
				fmt.Println("== Table III: functional hashing (MIG size and depth) ==")
				fmt.Println(exp.FormatTableIII(rows))
			}
			if withMap && (*all || *table == 4) {
				fmt.Println("== Table IV: area and depth after technology mapping (6-LUT) ==")
				fmt.Println(exp.FormatTableIV(rows))
			}
		}
	}
	if *converge != "" {
		rows, err := exp.Converge(d, *converge, exp.Variants[4].Opt, 10)
		if err != nil {
			log.Fatal(err)
		}
		section("converge", map[string]any{"benchmark": *converge, "variant": exp.Variants[4].Name, "rows": rows},
			"== Repeated functional hashing (Sec. V closing remark) ==",
			func() string { return exp.FormatConverge(*converge, exp.Variants[4].Name, rows) })
	}
	if *aigcmp {
		rows, err := exp.AIGComparison(d, exact.Options{Timeout: *aigTimeout}, *workers)
		if err != nil {
			log.Fatal(err)
		}
		section("aig", rows,
			"== MIG vs AIG: optimal sizes per NPN class (C_MIG ≤ C_AIG everywhere) ==",
			func() string { return exp.FormatAIGComparison(rows) })
	}
	if *all || *figures {
		m1, st1 := exp.Figure1()
		m2, st2, err := exp.Figure2(d)
		if err != nil {
			log.Fatal(err)
		}
		if *jsonOut {
			report["figures"] = map[string]any{"fig1": st1, "fig2": st2}
		} else {
			fmt.Printf("== Figure 1: full adder MIG (%v) ==\n", st1)
			m1.WriteDOT(os.Stdout, "fig1_full_adder")
			fmt.Printf("== Figure 2: optimal MIG for S0,2 (%v) ==\n", st2)
			m2.WriteDOT(os.Stdout, "fig2_s02")
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			log.Fatal(err)
		}
	}
}
