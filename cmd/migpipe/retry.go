package main

import (
	"bytes"
	"context"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"time"
)

// retryPolicy retries the remote optimize exchange on transient,
// idempotent failures only: connection errors (the request never reached
// a handler), 503s (the server refused admission — saturated pool or the
// shed watermark — and did no work), and other 5xx responses whose body
// has not been consumed (optimization is pure, so replaying the request
// cannot double any effect). 4xx responses are the client's own fault
// and are never retried.
//
// Backoff is capped exponential with full jitter — attempt n sleeps a
// uniform draw from [0, min(Cap, Base·2ⁿ)] — so a fleet of clients
// hammering a recovering server decorrelates instead of thundering. A
// Retry-After header on the failed response is honored as a floor on
// the sleep: the server's own estimate of its backlog beats any local
// guess.
type retryPolicy struct {
	MaxRetries int           // additional attempts after the first (0 = fail fast)
	Base       time.Duration // first backoff step
	Cap        time.Duration // backoff ceiling
}

// post issues the request, retrying per the policy, and reports how many
// attempts were spent. On success (or any non-retryable status) the
// response is returned with its body unread; when retries run out the
// last 5xx response (or the last connection error) is handed back so the
// caller can surface the server's own message.
func (p retryPolicy) post(ctx context.Context, client *http.Client, url, contentType string, body []byte) (*http.Response, int, error) {
	attempts := 0
	for {
		attempts++
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return nil, attempts, err
		}
		req.Header.Set("Content-Type", contentType)
		resp, err := client.Do(req)
		if err == nil && resp.StatusCode < 500 {
			return resp, attempts, nil
		}
		if ctx.Err() != nil {
			// A deadline or cancellation is not transient; don't burn the
			// remaining attempts against a dead context.
			if err == nil {
				resp.Body.Close()
			}
			return nil, attempts, ctx.Err()
		}
		var retryAfter time.Duration
		if err == nil {
			if attempts > p.MaxRetries {
				return resp, attempts, nil
			}
			retryAfter = parseRetryAfter(resp.Header.Get("Retry-After"))
			// Drain so the keep-alive connection is reusable next attempt.
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		} else if attempts > p.MaxRetries {
			return nil, attempts, err
		}
		if serr := sleepCtx(ctx, p.backoff(attempts-1, retryAfter)); serr != nil {
			return nil, attempts, serr
		}
	}
}

// backoff computes the sleep before retry number attempt (0-based):
// capped exponential with full jitter, floored by the server's
// Retry-After hint when one was given.
func (p retryPolicy) backoff(attempt int, retryAfter time.Duration) time.Duration {
	bound := p.Base
	for i := 0; i < attempt && bound < p.Cap; i++ {
		bound *= 2
	}
	if bound > p.Cap {
		bound = p.Cap
	}
	d := bound
	if bound > 0 {
		d = time.Duration(rand.Int63n(int64(bound) + 1))
	}
	if d < retryAfter {
		d = retryAfter
	}
	return d
}

// parseRetryAfter reads the delay-seconds form of Retry-After (the only
// form migserve emits); anything else — absent, malformed, an HTTP date —
// degrades to zero, i.e. "no floor".
func parseRetryAfter(h string) time.Duration {
	secs, err := strconv.Atoi(h)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// sleepCtx sleeps for d unless the context dies first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
